package vfs

import (
	"bytes"
	"math/rand"
	"testing"

	"essio/internal/blockio"
	"essio/internal/buffercache"
	"essio/internal/disk"
	"essio/internal/driver"
	"essio/internal/extfs"
	"essio/internal/sim"
	"essio/internal/trace"
)

type rig struct {
	e    *sim.Engine
	d    *disk.Disk
	ring *trace.Ring
	bc   *buffercache.Cache
	fs   *extfs.FS
	t    *Table
}

func newRig(t *testing.T) *rig {
	t.Helper()
	e := sim.NewEngine(1)
	t.Cleanup(e.Close)
	d := disk.New(e, disk.DefaultParams())
	q := blockio.New(e)
	ring := trace.NewRing(1 << 18)
	drv := driver.New(e, d, q, 0, ring)
	drv.SetLevel(driver.LevelFull)
	bc := buffercache.New(e, q, 2048)
	r := &rig{e: e, d: d, ring: ring, bc: bc}
	r.run(t, func(p *sim.Proc) {
		fs, err := extfs.Mkfs(p, bc, 0, 2*extfs.BlocksPerGroup)
		if err != nil {
			t.Errorf("mkfs: %v", err)
			return
		}
		r.fs = fs
		r.t = NewTable(fs)
	})
	return r
}

func (r *rig) run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	r.e.Spawn("test", fn)
	r.e.RunUntilIdle()
}

func TestCreateWriteReadClose(t *testing.T) {
	r := newRig(t)
	payload := []byte("the quick brown fox")
	r.run(t, func(p *sim.Proc) {
		fd, err := r.t.Create(p, "/f")
		if err != nil {
			t.Fatal(err)
		}
		if n, err := r.t.Write(p, fd, payload); err != nil || n != len(payload) {
			t.Fatalf("Write = %d, %v", n, err)
		}
		if _, err := r.t.Lseek(p, fd, 0, SeekSet); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 64)
		n, err := r.t.Read(p, fd, buf)
		if err != nil || n != len(payload) {
			t.Fatalf("Read = %d, %v", n, err)
		}
		if !bytes.Equal(buf[:n], payload) {
			t.Fatalf("read %q", buf[:n])
		}
		if err := r.t.Close(fd); err != nil {
			t.Fatal(err)
		}
		if r.t.OpenCount() != 0 {
			t.Fatalf("OpenCount = %d", r.t.OpenCount())
		}
	})
}

func TestOpenExistingAndEOF(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		fd, err := r.t.Create(p, "/x")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.t.Write(p, fd, []byte("abc")); err != nil {
			t.Fatal(err)
		}
		r.t.Close(fd)

		fd2, err := r.t.Open(p, "/x")
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 10)
		n, err := r.t.Read(p, fd2, buf)
		if err != nil || n != 3 {
			t.Fatalf("Read = %d, %v", n, err)
		}
		n, err = r.t.Read(p, fd2, buf)
		if err != nil || n != 0 {
			t.Fatalf("Read at EOF = %d, %v", n, err)
		}
	})
}

func TestCreateTruncatesExisting(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		fd, _ := r.t.Create(p, "/t")
		r.t.Write(p, fd, bytes.Repeat([]byte{1}, 5000))
		r.t.Close(fd)
		fd2, err := r.t.Create(p, "/t")
		if err != nil {
			t.Fatal(err)
		}
		st, err := r.t.Stat(p, fd2)
		if err != nil || st.Size != 0 {
			t.Fatalf("Stat = %+v, %v", st, err)
		}
	})
}

func TestLseekVariants(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		fd, _ := r.t.Create(p, "/s")
		r.t.Write(p, fd, make([]byte, 100))
		if pos, _ := r.t.Lseek(p, fd, 10, SeekSet); pos != 10 {
			t.Fatalf("SeekSet -> %d", pos)
		}
		if pos, _ := r.t.Lseek(p, fd, 5, SeekCur); pos != 15 {
			t.Fatalf("SeekCur -> %d", pos)
		}
		if pos, _ := r.t.Lseek(p, fd, -20, SeekEnd); pos != 80 {
			t.Fatalf("SeekEnd -> %d", pos)
		}
		if _, err := r.t.Lseek(p, fd, -200, SeekSet); err == nil {
			t.Fatal("negative seek must fail")
		}
		if _, err := r.t.Lseek(p, fd, 0, 99); err == nil {
			t.Fatal("bad whence must fail")
		}
	})
}

func TestAppendAlwaysAtEnd(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		fd, _ := r.t.Create(p, "/log")
		r.t.Write(p, fd, []byte("one\n"))
		r.t.Lseek(p, fd, 0, SeekSet)
		if _, err := r.t.Append(p, fd, []byte("two\n")); err != nil {
			t.Fatal(err)
		}
		st, _ := r.t.Stat(p, fd)
		if st.Size != 8 {
			t.Fatalf("Size = %d, want 8", st.Size)
		}
		buf := make([]byte, 16)
		r.t.Lseek(p, fd, 0, SeekSet)
		n, _ := r.t.Read(p, fd, buf)
		if string(buf[:n]) != "one\ntwo\n" {
			t.Fatalf("contents %q", buf[:n])
		}
	})
}

func TestBadDescriptors(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		if _, err := r.t.Read(p, 42, make([]byte, 1)); err == nil {
			t.Error("read on bad fd must fail")
		}
		if _, err := r.t.Write(p, 42, []byte("x")); err == nil {
			t.Error("write on bad fd must fail")
		}
		if err := r.t.Close(42); err == nil {
			t.Error("close on bad fd must fail")
		}
		if _, err := r.t.Open(p, "/missing"); err == nil {
			t.Error("open of missing file must fail")
		}
	})
}

func TestFsyncPersists(t *testing.T) {
	r := newRig(t)
	payload := bytes.Repeat([]byte{0x31}, 3000)
	var sector uint32
	r.run(t, func(p *sim.Proc) {
		fd, _ := r.t.Create(p, "/d")
		r.t.Write(p, fd, payload)
		if err := r.t.Fsync(p, fd); err != nil {
			t.Fatal(err)
		}
		ino, _ := r.t.Ino(fd)
		s, err := r.fs.BlockOfFile(p, ino, 0)
		if err != nil {
			t.Fatal(err)
		}
		sector = s
	})
	out := make([]byte, 1024)
	if err := r.d.ReadAt(sector, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, payload[:1024]) {
		t.Fatal("fsync did not reach the platters")
	}
}

func TestSequentialReadGrowsRequests(t *testing.T) {
	r := newRig(t)
	// Write a 256 KB file, sync, then stream it through a cold cache and
	// check the physical read sizes approach the 16 KB read-ahead limit.
	size := 256 * 1024
	r.run(t, func(p *sim.Proc) {
		fd, _ := r.t.Create(p, "/image")
		r.t.Write(p, fd, make([]byte, size))
		r.t.Fsync(p, fd)
		r.t.Close(fd)
	})
	// Fresh cache over the same disk.
	q2 := blockio.New(r.e)
	ring2 := trace.NewRing(1 << 18)
	drv2 := driver.New(r.e, r.d, q2, 0, ring2)
	drv2.SetLevel(driver.LevelFull)
	bc2 := buffercache.New(r.e, q2, 2048)
	r.run(t, func(p *sim.Proc) {
		fs2, err := extfs.Mount(p, bc2, 0)
		if err != nil {
			t.Fatal(err)
		}
		t2 := NewTable(fs2)
		fd, err := t2.Open(p, "/image")
		if err != nil {
			t.Fatal(err)
		}
		ring2.Drain(0)
		buf := make([]byte, 4096)
		for {
			n, err := t2.Read(p, fd, buf)
			if err != nil {
				t.Fatal(err)
			}
			if n == 0 {
				break
			}
		}
	})
	recs := ring2.Drain(0)
	var maxKB, total int
	for _, rec := range recs {
		if rec.Op != trace.Read || rec.Origin != trace.OriginData {
			continue
		}
		total++
		if rec.KB() > maxKB {
			maxKB = rec.KB()
		}
	}
	if total == 0 {
		t.Fatal("no data reads observed")
	}
	if maxKB < 12 {
		t.Fatalf("max read request = %d KB; read-ahead should approach 16 KB", maxKB)
	}
	if total >= size/1024 {
		t.Fatalf("%d physical reads for %d blocks; no merging happened", total, size/1024)
	}
}

func TestRandomReadsStaySmall(t *testing.T) {
	r := newRig(t)
	size := 256 * 1024
	r.run(t, func(p *sim.Proc) {
		fd, _ := r.t.Create(p, "/rand")
		r.t.Write(p, fd, make([]byte, size))
		r.t.Fsync(p, fd)
		r.t.Close(fd)
	})
	q2 := blockio.New(r.e)
	ring2 := trace.NewRing(1 << 18)
	drv2 := driver.New(r.e, r.d, q2, 0, ring2)
	drv2.SetLevel(driver.LevelFull)
	bc2 := buffercache.New(r.e, q2, 2048)
	rng := rand.New(rand.NewSource(7))
	r.run(t, func(p *sim.Proc) {
		fs2, err := extfs.Mount(p, bc2, 0)
		if err != nil {
			t.Fatal(err)
		}
		t2 := NewTable(fs2)
		fd, err := t2.Open(p, "/rand")
		if err != nil {
			t.Fatal(err)
		}
		ring2.Drain(0)
		buf := make([]byte, 1024)
		for i := 0; i < 40; i++ {
			off := int64(rng.Intn(size-1024)) &^ 1023
			if _, err := t2.Lseek(p, fd, off, SeekSet); err != nil {
				t.Fatal(err)
			}
			if _, err := t2.Read(p, fd, buf); err != nil {
				t.Fatal(err)
			}
		}
	})
	recs := ring2.Drain(0)
	big := 0
	for _, rec := range recs {
		if rec.Op == trace.Read && rec.Origin == trace.OriginData && rec.KB() > 8 {
			big++
		}
	}
	// Random access resets the window to 4 blocks + the request itself;
	// large streaming-size requests must stay rare.
	if big > 5 {
		t.Fatalf("%d large requests under random access", big)
	}
}

func TestSetOrigin(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		fd, _ := r.t.Create(p, "/syslog")
		if err := r.t.SetOrigin(fd, trace.OriginLog); err != nil {
			t.Fatal(err)
		}
		r.t.Append(p, fd, []byte("kernel: boot\n"))
		r.t.Fsync(p, fd)
	})
	recs := r.ring.Drain(0)
	found := false
	for _, rec := range recs {
		if rec.Origin == trace.OriginLog && rec.Op == trace.Write {
			found = true
		}
	}
	if !found {
		t.Fatal("no log-tagged writes observed")
	}
}

// Failure injection: a media error under a file's data blocks must surface
// as a read error to the caller and must not poison the cache.
func TestMediaErrorPropagates(t *testing.T) {
	r := newRig(t)
	var dataSector uint32
	r.run(t, func(p *sim.Proc) {
		fd, err := r.t.Create(p, "/fragile")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.t.Write(p, fd, bytes.Repeat([]byte{7}, 4096)); err != nil {
			t.Fatal(err)
		}
		if err := r.t.Fsync(p, fd); err != nil {
			t.Fatal(err)
		}
		ino, _ := r.t.Ino(fd)
		dataSector, _ = r.fs.BlockOfFile(p, ino, 0)
		r.t.Close(fd)
	})
	// Damage the platter under the first data block, then force cold reads.
	r.d.MarkBad(dataSector, 2)
	r.bc.InvalidateClean()
	r.run(t, func(p *sim.Proc) {
		fd, err := r.t.Open(p, "/fragile")
		if err != nil {
			t.Fatal(err) // metadata may be cached; open should work
		}
		buf := make([]byte, 1024)
		if _, err := r.t.Read(p, fd, buf); err == nil {
			t.Fatal("read over a media defect must fail")
		}
	})
	// Repair the disk: the same read must now succeed (the cache did not
	// keep a poisoned buffer).
	r.d.ClearBad()
	r.run(t, func(p *sim.Proc) {
		fd, err := r.t.Open(p, "/fragile")
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 1024)
		n, err := r.t.Read(p, fd, buf)
		if err != nil || n != 1024 || buf[0] != 7 {
			t.Fatalf("read after repair = %d, %v, buf[0]=%d", n, err, buf[0])
		}
	})
}

// Regression test: the VFS must honor the cache's configured read-ahead
// window (it once read a constant, making the window knob a no-op).
func TestReadAheadHonorsCacheWindow(t *testing.T) {
	maxRead := func(window int) int {
		e := sim.NewEngine(1)
		defer e.Close()
		d := disk.New(e, disk.DefaultParams())
		q := blockio.New(e)
		ring := trace.NewRing(1 << 18)
		drv := driver.New(e, d, q, 0, ring)
		drv.SetLevel(driver.LevelFull)
		bc := buffercache.New(e, q, 2048)
		var fs *extfs.FS
		e.Spawn("setup", func(p *sim.Proc) {
			var err error
			fs, err = extfs.Mkfs(p, bc, 0, 2*extfs.BlocksPerGroup)
			if err != nil {
				t.Error(err)
				return
			}
			tab := NewTable(fs)
			fd, _ := tab.Create(p, "/stream")
			tab.Write(p, fd, make([]byte, 256*1024))
			tab.Fsync(p, fd)
			tab.Close(fd)
		})
		e.RunUntilIdle()
		// Cold cache, configured window.
		q2 := blockio.New(e)
		ring2 := trace.NewRing(1 << 18)
		drv2 := driver.New(e, d, q2, 0, ring2)
		drv2.SetLevel(driver.LevelFull)
		bc2 := buffercache.New(e, q2, 2048)
		bc2.SetReadAhead(window)
		max := 0
		e.Spawn("read", func(p *sim.Proc) {
			fs2, err := extfs.Mount(p, bc2, 0)
			if err != nil {
				t.Error(err)
				return
			}
			tab := NewTable(fs2)
			fd, err := tab.Open(p, "/stream")
			if err != nil {
				t.Error(err)
				return
			}
			ring2.Drain(0)
			buf := make([]byte, 4096)
			for {
				n, err := tab.Read(p, fd, buf)
				if err != nil || n == 0 {
					break
				}
			}
		})
		e.RunUntilIdle()
		for _, rec := range ring2.Drain(0) {
			if rec.Op == trace.Read && rec.Origin == trace.OriginData && rec.KB() > max {
				max = rec.KB()
			}
		}
		return max
	}
	off := maxRead(0)
	narrow := maxRead(4)
	wide := maxRead(32)
	if off > 4 {
		t.Errorf("window off: max read %d KB, want ~1-4", off)
	}
	if narrow >= wide {
		t.Errorf("window 4 gives max %d KB, window 32 gives %d KB; wider window must allow larger requests", narrow, wide)
	}
}
