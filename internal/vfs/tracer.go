package vfs

import (
	"essio/internal/sim"
)

// IOEvent is one application-visible file operation — what instrumenting
// the I/O *library* would have captured, as the studies the paper contrasts
// itself with did. Comparing these against the driver-level trace
// quantifies the system traffic (paging, metadata, logging, write-back)
// that library-level instrumentation misses.
type IOEvent struct {
	Time  sim.Time
	Write bool
	Bytes int
	Path  string
}

// Tracer receives application-level I/O events.
type Tracer interface {
	RecordIO(ev IOEvent)
}

// Collector is a simple Tracer that retains every event and running totals.
type Collector struct {
	Events     []IOEvent
	ReadCalls  int
	WriteCalls int
	ReadBytes  int64
	WriteBytes int64
}

// RecordIO implements Tracer.
func (c *Collector) RecordIO(ev IOEvent) {
	c.Events = append(c.Events, ev)
	if ev.Write {
		c.WriteCalls++
		c.WriteBytes += int64(ev.Bytes)
	} else {
		c.ReadCalls++
		c.ReadBytes += int64(ev.Bytes)
	}
}

// Calls reports the total number of recorded operations.
func (c *Collector) Calls() int { return c.ReadCalls + c.WriteCalls }

// Reset discards all recorded events and totals.
func (c *Collector) Reset() { *c = Collector{} }

// SetTracer attaches an application-level tracer to this descriptor table;
// nil detaches. Only explicit Read/Write/Append calls are recorded —
// exactly the surface a C-library instrumentation sees.
func (t *Table) SetTracer(tr Tracer) { t.tracer = tr }

func (t *Table) recordIO(p *sim.Proc, f *File, write bool, n int) {
	if t.tracer == nil || n <= 0 {
		return
	}
	t.tracer.RecordIO(IOEvent{Time: p.Now(), Write: write, Bytes: n, Path: f.name})
}
