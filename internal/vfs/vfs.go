// Package vfs provides the file-descriptor layer over extfs: open / create /
// read / write / lseek / fsync / close with per-file sequential read-ahead.
//
// Read-ahead is the mechanism behind the paper's "requests approaching
// 16 KB" during the wavelet image read: a detected sequential stream grows
// its prefetch window block by block up to the cache's 16 KB limit, and the
// prefetched blocks merge in the elevator into large physical requests.
// Competing streams disturb the pattern, which is why the paper sees the
// request size fluctuate below the full window.
package vfs

import (
	"fmt"

	"essio/internal/extfs"
	"essio/internal/iotrace"
	"essio/internal/sim"
	"essio/internal/trace"
)

// File is an open file with a seek position and read-ahead state.
type File struct {
	fs   *extfs.FS
	ino  uint32
	pos  int64
	name string

	// Sequential read detection.
	nextSeqBlock uint32 // block we expect next if the stream is sequential
	raWindow     int    // current read-ahead window in blocks
	raNext       uint32 // next block not yet prefetched
	origin       trace.Origin
}

// Table is a per-process file descriptor table.
type Table struct {
	fs      *extfs.FS
	files   map[int]*File
	next    int
	tracer  Tracer
	journal *iotrace.Journal
}

// SetJournal attaches the node's per-request I/O journal; nil detaches.
// With a journal attached and tracing enabled, each Read/Write/Append
// becomes the root span of a request journey: the table mints a journey
// ID, tags the calling process with it for the op's duration, and
// journals the app span when the op returns.
func (t *Table) SetJournal(j *iotrace.Journal) { t.journal = j }

// beginOp opens a request journey for one file op: it mints the journey
// ID and tags the process so deeper layers attribute their events to
// it. Returns (0, 0) with tracing off.
func (t *Table) beginOp(p *sim.Proc) (sim.Time, uint64) {
	if !t.journal.Enabled() {
		return 0, 0
	}
	req := t.journal.NewRequestID()
	p.SetIOTag(req)
	return p.Now(), req
}

// endOp closes the journey: journals the app span and clears the tag.
func (t *Table) endOp(p *sim.Proc, start sim.Time, req uint64, write bool, n int) {
	if req == 0 {
		return
	}
	p.SetIOTag(0)
	st := iotrace.StageAppRead
	if write {
		st = iotrace.StageAppWrite
	}
	t.journal.Add(p.Now(), p.Now().Sub(start), st, req, int64(n))
}

// NewTable returns an empty descriptor table over fs.
func NewTable(fs *extfs.FS) *Table {
	return &Table{fs: fs, files: make(map[int]*File), next: 3} // 0-2 "reserved"
}

// FS returns the underlying filesystem.
func (t *Table) FS() *extfs.FS { return t.fs }

func (t *Table) install(f *File) int {
	fd := t.next
	t.next++
	t.files[fd] = f
	return fd
}

func (t *Table) file(fd int) (*File, error) {
	f, ok := t.files[fd]
	if !ok {
		return nil, fmt.Errorf("vfs: bad file descriptor %d", fd)
	}
	return f, nil
}

// Open opens an existing file for reading and writing.
func (t *Table) Open(p *sim.Proc, path string) (int, error) {
	ino, err := t.fs.Lookup(p, path)
	if err != nil {
		return -1, err
	}
	st, err := t.fs.Stat(p, ino)
	if err != nil {
		return -1, err
	}
	if st.Mode != extfs.ModeFile {
		return -1, fmt.Errorf("vfs: open of non-file %q", path)
	}
	return t.install(&File{fs: t.fs, ino: ino, name: path, origin: trace.OriginData}), nil
}

// Create creates (or truncates) a file and opens it.
func (t *Table) Create(p *sim.Proc, path string) (int, error) {
	return t.CreateIn(p, path, -1)
}

// CreateIn creates a file with a block-group placement hint and opens it.
func (t *Table) CreateIn(p *sim.Proc, path string, group int) (int, error) {
	ino, err := t.fs.Lookup(p, path)
	if err == nil {
		if terr := t.fs.Truncate(p, ino); terr != nil {
			return -1, terr
		}
	} else {
		ino, err = t.fs.CreateIn(p, path, group)
		if err != nil {
			return -1, err
		}
	}
	return t.install(&File{fs: t.fs, ino: ino, name: path, origin: trace.OriginData}), nil
}

// SetOrigin overrides the trace origin tag for I/O through this descriptor
// (the kernel's own daemons tag their files OriginLog / OriginTrace).
func (t *Table) SetOrigin(fd int, origin trace.Origin) error {
	f, err := t.file(fd)
	if err != nil {
		return err
	}
	f.origin = origin
	return nil
}

// Close removes the descriptor. Data may still be dirty in the cache.
func (t *Table) Close(fd int) error {
	if _, ok := t.files[fd]; !ok {
		return fmt.Errorf("vfs: close of bad descriptor %d", fd)
	}
	delete(t.files, fd)
	return nil
}

// OpenCount reports how many descriptors are open.
func (t *Table) OpenCount() int { return len(t.files) }

// Whence values for Lseek.
const (
	SeekSet = 0
	SeekCur = 1
	SeekEnd = 2
)

// Lseek repositions the file offset and returns the new position.
func (t *Table) Lseek(p *sim.Proc, fd int, off int64, whence int) (int64, error) {
	f, err := t.file(fd)
	if err != nil {
		return 0, err
	}
	var base int64
	switch whence {
	case SeekSet:
		base = 0
	case SeekCur:
		base = f.pos
	case SeekEnd:
		st, err := t.fs.Stat(p, f.ino)
		if err != nil {
			return 0, err
		}
		base = st.Size
	default:
		return 0, fmt.Errorf("vfs: bad whence %d", whence)
	}
	np := base + off
	if np < 0 {
		return 0, fmt.Errorf("vfs: seek to negative offset %d", np)
	}
	f.pos = np
	return np, nil
}

// Read reads up to len(buf) bytes at the current position, advancing it.
// Returns 0 at end of file.
func (t *Table) Read(p *sim.Proc, fd int, buf []byte) (int, error) {
	f, err := t.file(fd)
	if err != nil {
		return 0, err
	}
	start, req := t.beginOp(p)
	f.updateReadAhead(p, len(buf))
	n, err := t.fs.ReadAt(p, f.ino, f.pos, buf, f.origin)
	f.pos += int64(n)
	t.endOp(p, start, req, false, n)
	t.recordIO(p, f, false, n)
	return n, err
}

// updateReadAhead detects sequential streams and prefetches ahead of pos.
func (f *File) updateReadAhead(p *sim.Proc, want int) {
	startBlock := uint32(f.pos / extfs.BlockSize)
	max := 0
	if f.fs != nil {
		max = f.maxWindow()
	}
	if max == 0 {
		return
	}
	if startBlock == f.nextSeqBlock && f.pos != 0 || (f.pos == 0 && startBlock == 0 && f.raWindow > 0) {
		// Sequential continuation: grow the window.
		f.raWindow *= 2
		if f.raWindow > max {
			f.raWindow = max
		}
	} else if f.pos == 0 || startBlock != f.nextSeqBlock {
		// Fresh or non-sequential access: modest initial window.
		f.raWindow = 4
		f.raNext = startBlock
	}
	blocksWanted := uint32((want + extfs.BlockSize - 1) / extfs.BlockSize)
	f.nextSeqBlock = startBlock + blocksWanted
	// Prefetch [raNext, startBlock+wanted+window).
	target := startBlock + blocksWanted + uint32(f.raWindow)
	if f.raNext < startBlock {
		f.raNext = startBlock
	}
	if target > f.raNext {
		_ = f.fs.PrefetchFile(p, f.ino, f.raNext, target-f.raNext, f.origin)
		f.raNext = target
	}
}

// maxWindow is the cache-imposed read-ahead limit in blocks.
func (f *File) maxWindow() int { return f.fs.ReadAheadWindow() }

// Write writes data at the current position, advancing it.
func (t *Table) Write(p *sim.Proc, fd int, data []byte) (int, error) {
	f, err := t.file(fd)
	if err != nil {
		return 0, err
	}
	start, req := t.beginOp(p)
	n, err := t.fs.WriteAt(p, f.ino, f.pos, data, f.origin)
	f.pos += int64(n)
	t.endOp(p, start, req, true, n)
	t.recordIO(p, f, true, n)
	return n, err
}

// Append writes data at end of file regardless of the current position and
// leaves the position after the appended bytes (O_APPEND semantics).
func (t *Table) Append(p *sim.Proc, fd int, data []byte) (int, error) {
	f, err := t.file(fd)
	if err != nil {
		return 0, err
	}
	st, err := t.fs.Stat(p, f.ino)
	if err != nil {
		return 0, err
	}
	start, req := t.beginOp(p)
	n, err := t.fs.WriteAt(p, f.ino, st.Size, data, f.origin)
	f.pos = st.Size + int64(n)
	t.endOp(p, start, req, true, n)
	t.recordIO(p, f, true, n)
	return n, err
}

// Fsync flushes all dirty cache buffers to disk (whole-cache sync, as early
// kernels did).
func (t *Table) Fsync(p *sim.Proc, fd int) error {
	if _, err := t.file(fd); err != nil {
		return err
	}
	return t.fs.Sync(p)
}

// Stat stats an open descriptor.
func (t *Table) Stat(p *sim.Proc, fd int) (extfs.Stat, error) {
	f, err := t.file(fd)
	if err != nil {
		return extfs.Stat{}, err
	}
	return t.fs.Stat(p, f.ino)
}

// Ino exposes the inode behind a descriptor (the VM maps executables by
// inode).
func (t *Table) Ino(fd int) (uint32, error) {
	f, err := t.file(fd)
	if err != nil {
		return 0, err
	}
	return f.ino, nil
}

// Pos reports the current file position.
func (t *Table) Pos(fd int) (int64, error) {
	f, err := t.file(fd)
	if err != nil {
		return 0, err
	}
	return f.pos, nil
}
