// Package vetutil holds the helpers shared by the essvet analyzers:
// suppression-directive parsing, package gating, and test-file
// detection. Every analyzer of internal/vetters honors the
//
//	//essvet:ignore [analyzer...]
//
// directive: it suppresses diagnostics of the named analyzers (all
// analyzers when the list is empty) on its own line and on the line
// directly below, so it works both as a trailing comment and as a
// stand-alone line above the flagged statement, mirroring the
// staticcheck //lint:ignore convention.
package vetutil

import (
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// IgnorePrefix is the comment prefix of the suppression directive.
const IgnorePrefix = "//essvet:ignore"

// Ignores records, per file line, which analyzers are suppressed there.
type Ignores struct {
	fset  *token.FileSet
	lines map[string]map[int][]string // filename → line → analyzer names ("" = all)
}

// ParseIgnores collects every //essvet:ignore directive of the files
// under analysis.
func ParseIgnores(pass *analysis.Pass) *Ignores {
	ig := &Ignores{fset: pass.Fset, lines: make(map[string]map[int][]string)}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, IgnorePrefix)
				if !ok {
					continue
				}
				if text != "" && text[0] != ' ' && text[0] != '\t' {
					continue // e.g. //essvet:ignorance
				}
				pos := pass.Fset.Position(c.Pos())
				m := ig.lines[pos.Filename]
				if m == nil {
					m = make(map[int][]string)
					ig.lines[pos.Filename] = m
				}
				names := strings.Fields(text)
				if len(names) == 0 {
					names = []string{""}
				}
				// The directive covers its own line (trailing-comment
				// form) and the next (stand-alone form).
				m[pos.Line] = append(m[pos.Line], names...)
				m[pos.Line+1] = append(m[pos.Line+1], names...)
			}
		}
	}
	return ig
}

// Suppressed reports whether a diagnostic of the named analyzer at pos
// is covered by an ignore directive.
func (ig *Ignores) Suppressed(pos token.Pos, analyzer string) bool {
	p := ig.fset.Position(pos)
	for _, name := range ig.lines[p.Filename][p.Line] {
		if name == "" || name == analyzer {
			return true
		}
	}
	return false
}

// InTestFile reports whether pos lies in a _test.go file. The essvet
// analyzers skip test files: tests discard errors and iterate maps
// deliberately, and flagging them would bury the production findings.
func InTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// PathGated reports whether pkgPath matches any of the comma-separated
// path substrings in gates (e.g. "internal/sim,internal/synth").
func PathGated(pkgPath, gates string) bool {
	for _, g := range strings.Split(gates, ",") {
		g = strings.TrimSpace(g)
		if g != "" && strings.Contains(pkgPath, g) {
			return true
		}
	}
	return false
}
