// Alias-tracking helpers shared by the analyzers that police zero-copy
// views (spanretain, mmapalias): marking variables as tracked, deciding
// whether an expression denotes tracked storage through re-slicing and
// column selection, recognizing the trace-package calls that hand views
// out, and detecting closure captures. Both analyzers run the same
// fixpoint over assignments; only what they *report* about a tracked
// view differs (retention vs. mutation/staleness).

package vetutil

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/types/typeutil"
)

// Mark records the object of an identifier as tracked, reporting growth.
func Mark(info *types.Info, expr ast.Expr, tracked map[types.Object]bool) bool {
	id, ok := expr.(*ast.Ident)
	if !ok || id.Name == "_" {
		return false
	}
	obj := info.Defs[id]
	if obj == nil {
		obj = info.Uses[id]
	}
	if obj == nil || tracked[obj] {
		return false
	}
	tracked[obj] = true
	return true
}

// IsTracked reports whether expr denotes a tracked view, a re-slice of
// one (slicing shares the backing buffer; only an element copy or
// append breaks the alias), or a column selected from a tracked batch
// view (view.Times and friends alias the same reused storage).
func IsTracked(info *types.Info, expr ast.Expr, tracked map[types.Object]bool) bool {
	switch e := expr.(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		return obj != nil && tracked[obj]
	case *ast.SliceExpr:
		return IsTracked(info, e.X, tracked)
	case *ast.ParenExpr:
		return IsTracked(info, e.X, tracked)
	case *ast.SelectorExpr:
		return IsTracked(info, e.X, tracked)
	}
	return false
}

// IsTracePkg matches this repo's trace package and identically laid-out
// test stubs.
func IsTracePkg(path string) bool {
	return path == "trace" || len(path) > 6 && path[len(path)-6:] == "/trace"
}

// TraceMethodCall reports whether call statically invokes a method with
// one of the given names declared in a trace package.
func TraceMethodCall(info *types.Info, call *ast.CallExpr, names ...string) bool {
	fn := typeutil.StaticCallee(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	found := false
	for _, n := range names {
		if fn.Name() == n {
			found = true
			break
		}
	}
	if !found {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return IsTracePkg(fn.Pkg().Path())
}

// CapturesTracked reports whether the closure body references a tracked
// variable declared outside the closure (a true capture; views the
// closure obtains itself are its own function's concern).
func CapturesTracked(info *types.Info, fl *ast.FuncLit, tracked map[types.Object]bool) bool {
	found := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			obj := info.Uses[id]
			if obj != nil && tracked[obj] && (obj.Pos() < fl.Pos() || obj.Pos() > fl.End()) {
				found = true
			}
		}
		return true
	})
	return found
}

// NamedOf unwraps pointers and aliases down to the named type, or nil.
func NamedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := types.Unalias(t).(*types.Named)
	return n
}
