package colparity_test

import (
	"testing"

	"essio/internal/vetters/vettest"
)

func TestColParity(t *testing.T) { vettest.Run(t, "colparity") }
