// Stub of the repo's trace package for the colparity fixtures: a
// Record with derived accessors and its struct-of-arrays ColBatch.
package trace

// Record is one trace record.
type Record struct {
	Time   int64
	Sector uint32
	Count  uint16
	Op     uint8
}

// Bytes is the transfer size in bytes (reads Count).
func (r Record) Bytes() int64 { return int64(r.Count) * 512 }

// KB is the transfer size in kilobytes (reads Count).
func (r Record) KB() float64 { return float64(r.Bytes()) / 1024 }

// End is the first sector past the transfer (reads Sector and Count).
func (r Record) End() uint32 { return r.Sector + uint32(r.Count) }

// Summary is an accessor the analyzer has no table entry for: callers
// are assumed to read every field through it.
func (r Record) Summary() string { return "" }

// ColBatch is the struct-of-arrays view of a run of records.
type ColBatch struct {
	Times   []int64
	Sectors []uint32
	Counts  []uint16
	Ops     []uint8
}

// Len is the number of records in the batch.
func (b *ColBatch) Len() int { return len(b.Times) }

// Record reassembles row i.
func (b *ColBatch) Record(i int) Record {
	return Record{Time: b.Times[i], Sector: b.Sectors[i], Count: b.Counts[i], Op: b.Ops[i]}
}
