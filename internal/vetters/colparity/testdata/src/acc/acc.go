// Fixtures for the colparity analyzer: accumulators whose columnar
// fast path drops state the row path reads, next to the delegating,
// reassembling, and annotated shapes that legitimately pass.
package acc

import "essvet.test/internal/trace"

// missing reads Sector and Count by row but only mirrors Sectors.
type missing struct{ sum uint64 }

func (a *missing) Add(r trace.Record) error {
	a.sum += uint64(r.Sector) + uint64(r.Count)
	return nil
}

func (a *missing) AddCols(cols *trace.ColBatch) error { // want `AddCols of missing does not read column Counts but Add reads field Count`
	for _, s := range cols.Sectors {
		a.sum += uint64(s)
	}
	return nil
}

// viaKB reads Count through the KB accessor; Len alone covers nothing.
type viaKB struct{ kb float64 }

func (a *viaKB) Add(r trace.Record) error {
	a.kb += r.KB()
	return nil
}

func (a *viaKB) AddCols(cols *trace.ColBatch) error { // want `AddCols of viaKB does not read column Counts but Add reads field Count`
	_ = cols.Len()
	return nil
}

// viaEnd reads Sector and Count through the End accessor.
type viaEnd struct{ max uint32 }

func (a *viaEnd) Add(r trace.Record) error {
	if e := r.End(); e > a.max {
		a.max = e
	}
	return nil
}

func (a *viaEnd) AddCols(cols *trace.ColBatch) error { // want `column Counts` `column Sectors`
	_ = cols.Len()
	return nil
}

// wholesale hands the record on whole, so every field counts.
type wholesale struct{ out []trace.Record }

func (a *wholesale) Add(r trace.Record) error {
	a.out = append(a.out, r)
	return nil
}

func (a *wholesale) AddCols(cols *trace.ColBatch) error { // want `column Times` `column Ops`
	for i := range cols.Sectors {
		_ = cols.Sectors[i]
		_ = cols.Counts[i]
	}
	return nil
}

// summarizing reads through an accessor the analyzer cannot model, so
// every field counts; Ops is the one column left unread.
type summarizing struct{ s string }

func (a *summarizing) Add(r trace.Record) error {
	a.s = r.Summary()
	return nil
}

func (a *summarizing) AddCols(cols *trace.ColBatch) error { // want `AddCols of summarizing does not read column Ops but Add reads field Op`
	_ = cols.Times
	_ = cols.Sectors
	_ = cols.Counts
	return nil
}

// delegating hands the whole batch to another consumer: fine.
type delegating struct{ inner *missing }

func (a *delegating) Add(r trace.Record) error { return a.inner.Add(r) }

func (a *delegating) AddCols(cols *trace.ColBatch) error { return a.inner.AddCols(cols) }

// reassembling rebuilds rows with cols.Record, touching every column:
// fine.
type reassembling struct{ sum uint64 }

func (a *reassembling) Add(r trace.Record) error {
	a.sum += uint64(r.Sector)
	return nil
}

func (a *reassembling) AddCols(cols *trace.ColBatch) error {
	for i := 0; i < cols.Len(); i++ {
		r := cols.Record(i)
		a.sum += uint64(r.Sector)
	}
	return nil
}

// matched mirrors exactly what its row path reads: fine.
type matched struct {
	last int64
	sum  uint64
}

func (a *matched) Add(r trace.Record) error {
	a.last = r.Time
	a.sum += uint64(r.Count)
	return nil
}

func (a *matched) AddCols(cols *trace.ColBatch) error {
	for i, t := range cols.Times {
		a.last = t
		a.sum += uint64(cols.Counts[i])
	}
	return nil
}

// recounted deliberately drops the Count column: the marker names the
// field and the invariant.
type recounted struct{ sum uint64 }

func (a *recounted) Add(r trace.Record) error {
	a.sum += uint64(r.Sector) + uint64(r.Count)
	return nil
}

// AddCols folds sector state only; byte counts are recomputed from the
// sector deltas downstream.
//
//essvet:colignore Count recomputed from the sector column downstream
func (a *recounted) AddCols(cols *trace.ColBatch) error {
	for _, s := range cols.Sectors {
		a.sum += uint64(s)
	}
	return nil
}

// rowOnly opts its whole columnar path out with a bare marker.
type rowOnly struct{ n int }

func (a *rowOnly) Add(r trace.Record) error {
	a.n += int(r.Count)
	return nil
}

//essvet:colignore
func (a *rowOnly) AddCols(cols *trace.ColBatch) error {
	a.n += cols.Len()
	return nil
}

// suppressed uses the generic ignore directive instead.
type suppressed struct{ n int }

func (a *suppressed) Add(r trace.Record) error {
	a.n += int(r.Count)
	return nil
}

//essvet:ignore colparity migration shim, row path is authoritative
func (a *suppressed) AddCols(cols *trace.ColBatch) error {
	_ = cols.Len()
	return nil
}
