// Package colparity defines an analyzer enforcing the repo's
// row/column parity invariant: the columnar fast path (AddCols over a
// trace.ColBatch) of every accumulator must consume the same record
// state as its row path (Add over a trace.Record). The two paths are
// kept semantically identical — CharacterizeColumnar is only a valid
// substitute for the row oracle because each AddCols folds exactly what
// folding Add over the batch would — and a field newly read by Add but
// never mirrored into AddCols desyncs them silently: columnar results
// stay plausible, they just stop counting the new state.
//
// For any type declaring both
//
//	func (a *T) Add(r trace.Record) error
//	func (a *T) AddCols(cols *trace.ColBatch) error
//
// in the same package, the analyzer computes the set of Record fields
// Add reads — direct selectors (r.Sector), the derived accessors
// (r.KB() and r.Bytes() read Count, r.End() reads Sector and Count),
// and every field at once when the record is used whole (passed along,
// stored, appended) — and requires AddCols to reference the
// corresponding column slice (field Sector → cols.Sectors). Handing the
// whole batch to another ColBatch consumer, or calling a ColBatch
// method other than Len (cols.Record(i), cols.AppendTo, cols.Slice),
// counts as referencing every column, so delegating implementations
// pass without annotation.
//
// Columns intentionally not mirrored — state the columnar path
// recomputes another way, or row-only bookkeeping — carry an explicit
// marker line in the AddCols doc comment:
//
//	//essvet:colignore Pending queue depth is re-derived from the op column
//
// A bare //essvet:colignore marker exempts the whole method.
package colparity

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"essio/internal/vetters/vetutil"
)

// Marker is the comment prefix exempting one column (or the whole
// AddCols method, when bare) from the parity check.
const Marker = "//essvet:colignore"

// name is the analyzer name, referenced from run without creating an
// initialization cycle through Analyzer.
const name = "colparity"

// Analyzer is the colparity analyzer.
var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "check that accumulator AddCols methods read every column their Add reads\n\n" +
		"A type with both Add(trace.Record) and AddCols(*trace.ColBatch) must\n" +
		"reference, in AddCols, the column slice of every Record field Add reads\n" +
		"(or carry a //essvet:colignore marker); otherwise a field added to the row\n" +
		"path silently vanishes from the columnar fast path.",
	Run: run,
}

// accessorReads maps the Record accessor methods to the fields they
// read; any other trace-package method called on a record is treated as
// reading every field.
var accessorReads = map[string][]string{
	"Bytes": {"Count"},
	"KB":    {"Count"},
	"End":   {"Sector", "Count"},
}

func run(pass *analysis.Pass) (interface{}, error) {
	ignores := vetutil.ParseIgnores(pass)

	// Pair Add and AddCols declarations by receiver type.
	type pair struct{ add, addCols *ast.FuncDecl }
	pairs := make(map[*types.Named]*pair)
	var order []*types.Named // report in declaration order
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			if fd.Name.Name != "Add" && fd.Name.Name != "AddCols" {
				continue
			}
			if vetutil.InTestFile(pass.Fset, fd.Pos()) {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig := obj.Type().(*types.Signature)
			recv := vetutil.NamedOf(sig.Recv().Type())
			if recv == nil || recv.Obj().Pkg() != pass.Pkg || sig.Params().Len() != 1 {
				continue
			}
			pt := sig.Params().At(0).Type()
			p := pairs[recv]
			if p == nil {
				p = &pair{}
				pairs[recv] = p
				order = append(order, recv)
			}
			switch fd.Name.Name {
			case "Add":
				if traceNamed(pt, "Record") != nil {
					p.add = fd
				}
			case "AddCols":
				if traceNamed(pt, "ColBatch") != nil {
					p.addCols = fd
				}
			}
		}
	}
	for _, recv := range order {
		p := pairs[recv]
		if p.add == nil || p.addCols == nil {
			continue
		}
		checkPair(pass, ignores, recv, p.add, p.addCols)
	}
	return nil, nil
}

// traceNamed unwraps pointers and reports the named type if it has the
// given name and is declared in a trace package.
func traceNamed(t types.Type, typeName string) *types.Named {
	n := vetutil.NamedOf(t)
	if n == nil || n.Obj().Name() != typeName || n.Obj().Pkg() == nil {
		return nil
	}
	if !vetutil.IsTracePkg(n.Obj().Pkg().Path()) {
		return nil
	}
	return n
}

// checkPair verifies one Add/AddCols pair.
func checkPair(pass *analysis.Pass, ignores *vetutil.Ignores, recv *types.Named, add, addCols *ast.FuncDecl) {
	recordType := traceNamed(methodParamType(pass, add), "Record")
	st, ok := recordType.Underlying().(*types.Struct)
	if !ok {
		return
	}

	wants, wantAll := recordReads(pass, add.Body, recordType)
	covered, coverAll := columnReads(pass, addCols.Body)
	exempt, exemptAll := colignoreMarks(addCols.Doc)
	if exemptAll || coverAll {
		return
	}

	for i := 0; i < st.NumFields(); i++ {
		field := st.Field(i).Name()
		if field == "_" || exempt[field] {
			continue
		}
		if !wantAll && !wants[field] {
			continue
		}
		col := field + "s"
		if covered[col] {
			continue
		}
		if ignores.Suppressed(addCols.Name.Pos(), name) {
			continue
		}
		pass.Reportf(addCols.Name.Pos(),
			"AddCols of %s does not read column %s but Add reads field %s; the columnar fast path silently drops it (read cols.%s or mark //essvet:colignore %s why)",
			recv.Obj().Name(), col, field, col, field)
	}
}

// methodParamType returns the sole parameter type of a method decl.
func methodParamType(pass *analysis.Pass, fd *ast.FuncDecl) types.Type {
	obj := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	return obj.Type().(*types.Signature).Params().At(0).Type()
}

// recordReads collects the Record fields the row path reads: direct
// field selectors, accessor methods, and — conservatively — all fields
// whenever a record value is used whole (call argument, assignment,
// composite literal, return, channel send): whatever receives it may
// read anything.
func recordReads(pass *analysis.Pass, body *ast.BlockStmt, record *types.Named) (fields map[string]bool, all bool) {
	fields = make(map[string]bool)
	recordTyped := func(e ast.Expr) bool {
		t := pass.TypesInfo.TypeOf(e)
		return t != nil && vetutil.NamedOf(t) == record
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if !recordTyped(n.X) {
				return true
			}
			switch obj := pass.TypesInfo.Uses[n.Sel].(type) {
			case *types.Var:
				if obj.IsField() {
					fields[obj.Name()] = true
				}
			case *types.Func:
				if reads, ok := accessorReads[obj.Name()]; ok {
					for _, f := range reads {
						fields[f] = true
					}
				} else {
					all = true // unknown accessor: assume it reads everything
				}
			}
		case *ast.CallExpr:
			for _, arg := range n.Args {
				if recordTyped(arg) {
					all = true
				}
			}
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				if recordTyped(rhs) {
					all = true
				}
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					elt = kv.Value
				}
				if recordTyped(elt) {
					all = true
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if recordTyped(r) {
					all = true
				}
			}
		case *ast.SendStmt:
			if recordTyped(n.Value) {
				all = true
			}
		}
		return true
	})
	return fields, all
}

// columnReads collects the ColBatch columns the columnar path
// references. Passing the batch to another consumer, or calling any
// batch method besides Len, touches every column at once.
func columnReads(pass *analysis.Pass, body *ast.BlockStmt) (cols map[string]bool, all bool) {
	cols = make(map[string]bool)
	batchTyped := func(e ast.Expr) bool {
		return traceNamed(pass.TypesInfo.TypeOf(e), "ColBatch") != nil
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if !batchTyped(n.X) {
				return true
			}
			switch obj := pass.TypesInfo.Uses[n.Sel].(type) {
			case *types.Var:
				if obj.IsField() {
					cols[obj.Name()] = true
				}
			case *types.Func:
				if obj.Name() != "Len" {
					all = true // Record(i), AppendTo, Slice... gather every column
				}
			}
		case *ast.CallExpr:
			for _, arg := range n.Args {
				if batchTyped(arg) {
					all = true // delegation: the callee reads what it needs
				}
			}
		}
		return true
	})
	return cols, all
}

// colignoreMarks parses the //essvet:colignore markers of an AddCols
// doc comment: each marker line exempts the named field, and a bare
// marker exempts the whole method.
func colignoreMarks(doc *ast.CommentGroup) (fields map[string]bool, all bool) {
	fields = make(map[string]bool)
	if doc == nil {
		return fields, false
	}
	for _, c := range doc.List {
		rest, ok := strings.CutPrefix(c.Text, Marker)
		if !ok {
			continue
		}
		if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
			continue
		}
		names := strings.Fields(rest)
		if len(names) == 0 {
			all = true
			continue
		}
		fields[names[0]] = true
	}
	return fields, all
}
