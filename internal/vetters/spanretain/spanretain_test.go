package spanretain_test

import (
	"testing"

	"essio/internal/vetters/vettest"
)

func TestSpanRetain(t *testing.T) { vettest.Run(t, "spanretain") }
