// Package spanretain defines an analyzer enforcing the zero-copy span
// contract of the batch layer: record slices handed out by the
// NextSpan methods of trace sources, and the batch passed into an
// AddBatch implementation, are views of a reused 64 KiB codec buffer.
// They are valid only until the next call into the source; retaining
// one — storing it in a struct field or global, sending it on a
// channel, stashing it in a map, or capturing it in a closure that
// outlives the call — aliases memory that the next refill silently
// overwrites. The bug never crashes: the retained span just starts
// describing different records.
//
// The columnar batch layer carries the same contract: the *ColBatch
// views handed out by NextCols/nextCols, and the batch passed into an
// AddCols implementation, alias reused column buffers (or a read-only
// mmap window), as do the column slices selected from them
// (view.Times, view.Sectors, ...).
//
// The analyzer tracks, within each function body,
//
//   - variables bound to the result of a NextSpan/nextSpan or
//     NextCols/nextCols call on a trace-package type,
//   - the slice parameter of an AddBatch method implementation
//     (BatchSink documents "recs must not be retained"), and
//   - the pointer parameter of an AddCols method implementation
//     (ColSink carries the same clause),
//
// including aliases made by plain assignment, re-slicing, or column
// selection, and flags any retention point. Escaping the span on
// purpose (an adapter that forwards it under the same contract) is
// suppressed with //essvet:ignore spanretain.
package spanretain

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"essio/internal/vetters/vetutil"
)

// name is the analyzer name, referenced from run without creating an
// initialization cycle through Analyzer.
const name = "spanretain"

// Analyzer is the spanretain analyzer.
var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "flag retention of zero-copy record spans from the trace batch layer\n\n" +
		"Spans returned by NextSpan, column views returned by NextCols, and batches\n" +
		"passed to AddBatch/AddCols are backed by reused codec buffers (or read-only\n" +
		"mmap windows) and are invalid after the next source call; storing them in\n" +
		"fields, globals, maps, or channels, or capturing them in escaping closures,\n" +
		"aliases memory the next refill overwrites. Copy first.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ignores := vetutil.ParseIgnores(pass)

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}, func(n ast.Node) {
		var body *ast.BlockStmt
		tracked := make(map[types.Object]bool)
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body == nil {
				return
			}
			body = fn.Body
			if fn.Recv != nil && (fn.Name.Name == "AddBatch" || fn.Name.Name == "AddCols") {
				trackBatchParam(pass, fn, tracked)
			}
		case *ast.FuncLit:
			body = fn.Body
		}
		if vetutil.InTestFile(pass.Fset, body.Pos()) {
			return
		}
		collectSpanVars(pass, body, tracked)
		if len(tracked) == 0 {
			return
		}
		checkRetention(pass, ignores, body, tracked)
	})
	return nil, nil
}

// trackBatchParam marks the batch parameter of an AddBatch ([]Record)
// or AddCols (*ColBatch) method implementing the trace sink contracts.
func trackBatchParam(pass *analysis.Pass, fn *ast.FuncDecl, tracked map[types.Object]bool) {
	obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
	if !ok {
		return
	}
	sig := obj.Type().(*types.Signature)
	if sig.Params().Len() != 1 {
		return
	}
	switch sig.Params().At(0).Type().Underlying().(type) {
	case *types.Slice, *types.Pointer:
	default:
		return
	}
	if len(fn.Type.Params.List) == 1 && len(fn.Type.Params.List[0].Names) == 1 {
		if v, ok := pass.TypesInfo.Defs[fn.Type.Params.List[0].Names[0]].(*types.Var); ok {
			tracked[v] = true
		}
	}
}

// collectSpanVars finds variables bound to NextSpan results and their
// aliases, iterating assignments to a fixpoint within the body.
func collectSpanVars(pass *analysis.Pass, body *ast.BlockStmt, tracked map[types.Object]bool) {
	for {
		grew := false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) < 1 || len(as.Rhs) < 1 {
				return true
			}
			// span, err := src.NextSpan(n)  — the span is Lhs[0].
			if call, ok := as.Rhs[0].(*ast.CallExpr); ok && len(as.Rhs) == 1 && isSpanCall(pass, call) {
				if vetutil.Mark(pass.TypesInfo, as.Lhs[0], tracked) {
					grew = true
				}
				return true
			}
			// alias := span   or   alias := span[i:j]
			if len(as.Lhs) == len(as.Rhs) {
				for i, rhs := range as.Rhs {
					if vetutil.IsTracked(pass.TypesInfo, rhs, tracked) {
						if id, ok := as.Lhs[i].(*ast.Ident); ok {
							if vetutil.Mark(pass.TypesInfo, id, tracked) {
								grew = true
							}
						}
					}
				}
			}
			return true
		})
		if !grew {
			return
		}
	}
}

// isSpanCall reports whether call invokes a view-returning NextSpan or
// NextCols method declared in a trace package.
func isSpanCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	return vetutil.TraceMethodCall(pass.TypesInfo, call, "NextSpan", "nextSpan", "NextCols", "nextCols")
}

// checkRetention reports every point where a tracked span escapes the
// call frame.
func checkRetention(pass *analysis.Pass, ignores *vetutil.Ignores, body *ast.BlockStmt, tracked map[types.Object]bool) {
	report := func(pos ast.Node, what string) {
		if ignores.Suppressed(pos.Pos(), name) {
			return
		}
		pass.Reportf(pos.Pos(),
			"zero-copy record span %s; the backing buffer is reused on the next source call — copy the records first (append([]trace.Record(nil), span...))", what)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) || !vetutil.IsTracked(pass.TypesInfo, rhs, tracked) {
					continue
				}
				switch lhs := n.Lhs[i].(type) {
				case *ast.SelectorExpr:
					report(n, "stored in a struct field")
				case *ast.IndexExpr:
					report(n, "stored in a map or slice element")
				case *ast.Ident:
					if v, ok := pass.TypesInfo.ObjectOf(lhs).(*types.Var); ok && isPkgLevel(v) {
						report(n, "stored in a package-level variable")
					}
				}
			}
		case *ast.SendStmt:
			if vetutil.IsTracked(pass.TypesInfo, n.Value, tracked) {
				report(n, "sent on a channel")
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				e := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				if vetutil.IsTracked(pass.TypesInfo, e, tracked) {
					report(n, "stored in a composite literal")
				}
			}
		case *ast.CallExpr:
			// append(list, span) stores the slice header itself;
			// append(dst, span...) copies elements and is fine.
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" && isBuiltin(pass, id) {
				for _, arg := range n.Args[min(1, len(n.Args)):] {
					if vetutil.IsTracked(pass.TypesInfo, arg, tracked) && n.Ellipsis == 0 {
						report(n, "appended as a slice value")
					}
				}
			}
		case *ast.DeferStmt:
			// A deferred or spawned closure runs after — or concurrently
			// with — further source calls, when the span is already stale.
			if fl, ok := n.Call.Fun.(*ast.FuncLit); ok && vetutil.CapturesTracked(pass.TypesInfo, fl, tracked) {
				report(n, "captured by a deferred closure that runs after the span is stale")
			}
		case *ast.GoStmt:
			if fl, ok := n.Call.Fun.(*ast.FuncLit); ok && vetutil.CapturesTracked(pass.TypesInfo, fl, tracked) {
				report(n, "captured by a goroutine racing the span's reuse")
			}
		case *ast.FuncLit:
			if vetutil.CapturesTracked(pass.TypesInfo, n, tracked) && !immediatelyInvoked(body, n) {
				report(n, "captured by a closure that may outlive the span")
			}
			return false // don't descend: inner body already scanned as its own function
		}
		return true
	})
}

// isBuiltin reports whether id resolves to the predeclared builtin of
// the same name rather than a shadowing declaration.
func isBuiltin(pass *analysis.Pass, id *ast.Ident) bool {
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return true // conservatively builtin when unresolved
	}
	_, ok := obj.(*types.Builtin)
	return ok
}

// isPkgLevel reports whether v is declared at package scope.
func isPkgLevel(v *types.Var) bool {
	return v.Parent() != nil && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// immediatelyInvoked reports whether fl appears only as the function of
// a direct call (an IIFE), which cannot outlive the current statement.
func immediatelyInvoked(body *ast.BlockStmt, fl *ast.FuncLit) bool {
	invoked := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && call.Fun == fl {
			invoked = true
		}
		return !invoked
	})
	return invoked
}
