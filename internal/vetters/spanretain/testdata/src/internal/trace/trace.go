// Stub of the repo's trace package for the spanretain fixtures: a
// source whose NextSpan hands out views of a reused buffer.
package trace

// Record is one trace record.
type Record struct{ Sector uint32 }

// Reader hands out zero-copy spans of its decode buffer.
type Reader struct{ buf []Record }

// NextSpan returns up to max ready records, valid until the next call.
func (r *Reader) NextSpan(max int) ([]Record, error) {
	if max > len(r.buf) {
		max = len(r.buf)
	}
	return r.buf[:max], nil
}

// ColBatch is a struct-of-arrays view of a run of records.
type ColBatch struct {
	Times   []int64
	Sectors []uint32
}

// ColReader hands out zero-copy column views of its decode buffers.
type ColReader struct{ batch ColBatch }

// NextCols returns a column view, valid until the next call.
func (r *ColReader) NextCols(max int) (*ColBatch, error) {
	return &r.batch, nil
}
