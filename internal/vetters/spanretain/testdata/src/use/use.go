// Fixtures for the spanretain analyzer: every retention point for a
// zero-copy span, next to the legitimate consume-and-copy patterns.
package use

import "essvet.test/internal/trace"

var global []trace.Record

type holder struct {
	spans [][]trace.Record
	buf   []trace.Record
	ch    chan []trace.Record
}

func (h *holder) storeField(r *trace.Reader) {
	span, _ := r.NextSpan(64)
	h.buf = span // want `zero-copy record span stored in a struct field`
}

func (h *holder) storeGlobal(r *trace.Reader) {
	span, _ := r.NextSpan(64)
	global = span // want `zero-copy record span stored in a package-level variable`
}

func (h *holder) send(r *trace.Reader) {
	span, _ := r.NextSpan(64)
	h.ch <- span // want `zero-copy record span sent on a channel`
}

func (h *holder) aliasReslice(r *trace.Reader) {
	span, _ := r.NextSpan(64)
	s2 := span[:1]
	h.buf = s2 // want `zero-copy record span stored in a struct field`
}

func (h *holder) appendValue(r *trace.Reader) {
	span, _ := r.NextSpan(64)
	h.spans = append(h.spans, span) // want `zero-copy record span appended as a slice value`
}

func (h *holder) goroutine(r *trace.Reader) {
	span, _ := r.NextSpan(64)
	go func() { // want `zero-copy record span captured by a goroutine racing the span's reuse`
		sum(span)
	}()
}

func (h *holder) deferred(r *trace.Reader) {
	span, _ := r.NextSpan(64)
	defer func() { // want `zero-copy record span captured by a deferred closure`
		sum(span)
	}()
}

func (h *holder) escaping(r *trace.Reader) func() int {
	span, _ := r.NextSpan(64)
	return func() int { return len(span) } // want `zero-copy record span captured by a closure that may outlive the span`
}

// consume reads the span before the next source call: fine.
func consume(r *trace.Reader) uint32 {
	span, _ := r.NextSpan(64)
	return sum(span)
}

// copyFirst breaks the alias with an element copy: fine.
func (h *holder) copyFirst(r *trace.Reader) {
	span, _ := r.NextSpan(64)
	h.buf = append([]trace.Record(nil), span...)
}

// sink must not retain its AddBatch parameter.
type sink struct {
	last []trace.Record
}

func (s *sink) AddBatch(recs []trace.Record) error {
	s.last = recs // want `zero-copy record span stored in a struct field`
	return nil
}

// forwarder passes the batch on under the same contract: fine.
type forwarder struct {
	dst *sink
}

func (f *forwarder) AddBatch(recs []trace.Record) error {
	return f.dst.AddBatch(recs)
}

// adapter opts out with the ignore directive.
func (h *holder) adapter(r *trace.Reader) {
	span, _ := r.NextSpan(64)
	h.buf = span //essvet:ignore spanretain consumed before the next refill
}

func sum(span []trace.Record) uint32 {
	var t uint32
	for _, rec := range span {
		t += rec.Sector
	}
	return t
}

// Columnar views carry the same contract as record spans.

type colHolder struct {
	view    *trace.ColBatch
	sectors []uint32
	all     [][]uint32
}

func (h *colHolder) storeView(r *trace.ColReader) {
	view, _ := r.NextCols(64)
	h.view = view // want `zero-copy record span stored in a struct field`
}

func (h *colHolder) storeColumn(r *trace.ColReader) {
	view, _ := r.NextCols(64)
	h.sectors = view.Sectors // want `zero-copy record span stored in a struct field`
}

func (h *colHolder) aliasColumnReslice(r *trace.ColReader) {
	view, _ := r.NextCols(64)
	secs := view.Sectors[:1]
	h.sectors = secs // want `zero-copy record span stored in a struct field`
}

func (h *colHolder) appendColumn(r *trace.ColReader) {
	view, _ := r.NextCols(64)
	h.all = append(h.all, view.Sectors) // want `zero-copy record span appended as a slice value`
}

func (h *colHolder) goroutineView(r *trace.ColReader) {
	view, _ := r.NextCols(64)
	go func() { // want `zero-copy record span captured by a goroutine racing the span's reuse`
		sumCol(view.Sectors)
	}()
}

// consumeCols folds the view before the next call: fine.
func consumeCols(r *trace.ColReader) uint32 {
	view, _ := r.NextCols(64)
	return sumCol(view.Sectors)
}

// copyColumnFirst breaks the alias with an element copy: fine.
func (h *colHolder) copyColumnFirst(r *trace.ColReader) {
	view, _ := r.NextCols(64)
	h.sectors = append([]uint32(nil), view.Sectors...)
}

// colSink must not retain its AddCols parameter or its columns.
type colSink struct {
	last    *trace.ColBatch
	sectors []uint32
}

func (s *colSink) AddCols(cols *trace.ColBatch) error {
	s.last = cols            // want `zero-copy record span stored in a struct field`
	s.sectors = cols.Sectors // want `zero-copy record span stored in a struct field`
	return nil
}

// colForwarder passes the view on under the same contract: fine.
type colForwarder struct {
	dst *colSink
}

func (f *colForwarder) AddCols(cols *trace.ColBatch) error {
	return f.dst.AddCols(cols)
}

func sumCol(secs []uint32) uint32 {
	var t uint32
	for _, s := range secs {
		t += s
	}
	return t
}
