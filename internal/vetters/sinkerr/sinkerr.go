// Package sinkerr defines an analyzer enforcing the trace-sink error
// contract: every error returned by a sink on the trace write path —
// Sink.Add, BatchSink.AddBatch, and the Flush/Close of any type
// implementing those interfaces — must be consumed. A dropped sink
// error truncates or corrupts a trace file silently, and everything
// downstream (characterization, model fitting, replay) then analyzes
// data that was never written; Recorder and TraceTracker both report
// exactly this class of silent-corruption bug in trace tooling.
//
// Discarding explicitly with `_ = sink.Close()` is accepted as a
// visible decision; calling the method as a bare statement, or in a
// defer/go statement where the result vanishes, is flagged.
package sinkerr

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"essio/internal/vetters/vetutil"
)

// name is the analyzer name, referenced from run without creating an
// initialization cycle through Analyzer.
const name = "sinkerr"

// Analyzer is the sinkerr analyzer.
var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "flag discarded errors from trace sink Add/AddBatch/Flush/Close calls\n\n" +
		"Sinks report encoding and I/O failures through their error result; a\n" +
		"call that drops it lets a truncated or unwritten trace pass silently\n" +
		"into analysis. Errors must be checked or explicitly assigned to _.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// checked are the method names the analyzer audits.
var checked = map[string]bool{"Add": true, "AddBatch": true, "Flush": true, "Close": true}

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ignores := vetutil.ParseIgnores(pass)

	nodes := []ast.Node{(*ast.ExprStmt)(nil), (*ast.DeferStmt)(nil), (*ast.GoStmt)(nil)}
	ins.Preorder(nodes, func(n ast.Node) {
		var call *ast.CallExpr
		var ok bool
		kind := ""
		switch st := n.(type) {
		case *ast.ExprStmt:
			call, ok = st.X.(*ast.CallExpr)
		case *ast.DeferStmt:
			call, ok, kind = st.Call, true, "defer "
		case *ast.GoStmt:
			call, ok, kind = st.Call, true, "go "
		}
		if !ok || call == nil {
			return
		}
		fn := typeutil.StaticCallee(pass.TypesInfo, call)
		if fn == nil || !checked[fn.Name()] || !isSinkMethod(fn) {
			return
		}
		if vetutil.InTestFile(pass.Fset, call.Pos()) ||
			ignores.Suppressed(call.Pos(), name) {
			return
		}
		pass.Reportf(call.Pos(),
			"%serror result of (%s).%s is discarded; a failed trace write would pass silently (check it or assign to _)",
			kind, recvTypeString(fn), fn.Name())
	})
	return nil, nil
}

// isSinkMethod reports whether fn is an error-returning method of a
// type that belongs to a trace package and implements its Sink or
// BatchSink interface.
func isSinkMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	res := sig.Results()
	if res.Len() == 0 || !isErrorType(res.At(res.Len()-1).Type()) {
		return false
	}
	pkg := fn.Pkg()
	if pkg == nil || !isTracePkg(pkg.Path()) {
		return false
	}
	recv := sig.Recv().Type()
	for _, name := range []string{"Sink", "BatchSink"} {
		obj, ok := pkg.Scope().Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		iface, ok := obj.Type().Underlying().(*types.Interface)
		if !ok {
			continue
		}
		if types.Implements(recv, iface) || types.Implements(types.NewPointer(recv), iface) {
			return true
		}
	}
	return false
}

// isTracePkg reports whether path names this repo's trace package (or a
// test stub laid out the same way).
func isTracePkg(path string) bool {
	return path == "trace" || len(path) > 6 && path[len(path)-6:] == "/trace"
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// recvTypeString renders the receiver type for diagnostics.
func recvTypeString(fn *types.Func) string {
	sig := fn.Type().(*types.Signature)
	return types.TypeString(sig.Recv().Type(), types.RelativeTo(fn.Pkg()))
}
