package sinkerr_test

import (
	"testing"

	"essio/internal/vetters/vettest"
)

func TestSinkErr(t *testing.T) { vettest.Run(t, "sinkerr") }
