// Stub of the repo's trace package, laid out the way sinkerr expects:
// Sink/BatchSink interfaces plus a concrete sink implementing them.
package trace

// Record is one trace record.
type Record struct{ Sector uint32 }

// Sink consumes records one at a time.
type Sink interface{ Add(Record) error }

// BatchSink consumes whole batches.
type BatchSink interface{ AddBatch([]Record) error }

// Writer is a buffered sink; all four audited methods return error.
type Writer struct{}

func (w *Writer) Add(Record) error        { return nil }
func (w *Writer) AddBatch([]Record) error { return nil }
func (w *Writer) Flush() error            { return nil }
func (w *Writer) Close() error            { return nil }

// FileSource is a reader; its Close is not on the write path and the
// analyzer must leave it alone.
type FileSource struct{}

func (f *FileSource) Close() error { return nil }
