// Fixtures for the sinkerr analyzer: every way a sink error can be
// dropped, next to the accepted ways of consuming it.
package use

import "essvet.test/internal/trace"

func Bare(w *trace.Writer, r trace.Record) {
	w.Add(r) // want `error result of \(\*Writer\)\.Add is discarded`
}

func BareBatch(w *trace.Writer, recs []trace.Record) {
	w.AddBatch(recs) // want `error result of \(\*Writer\)\.AddBatch is discarded`
}

func Deferred(w *trace.Writer) {
	defer w.Flush() // want `defer error result of \(\*Writer\)\.Flush is discarded`
}

func Spawned(w *trace.Writer) {
	go w.Close() // want `go error result of \(\*Writer\)\.Close is discarded`
}

// Checked consumes every error: fine.
func Checked(w *trace.Writer, r trace.Record) error {
	if err := w.Add(r); err != nil {
		return err
	}
	return w.Flush()
}

// Discarded makes the drop explicit and visible: fine.
func Discarded(w *trace.Writer) {
	_ = w.Close()
}

// Reader closes a source, not a sink: fine.
func Reader(f *trace.FileSource) {
	f.Close()
}

// Suppressed opts out with the ignore directive.
func Suppressed(w *trace.Writer) {
	//essvet:ignore sinkerr crash-only teardown
	w.Close()
}
