package mmapalias_test

import (
	"testing"

	"essio/internal/vetters/vettest"
)

func TestMmapAlias(t *testing.T) { vettest.Run(t, "mmapalias") }
