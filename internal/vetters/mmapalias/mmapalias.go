// Package mmapalias defines an analyzer enforcing the read-only and
// single-window contracts of the zero-copy columnar views. The *ColBatch
// handed out by NextCols over an mmap-backed source aliases the mapped
// file directly — internal/trace/colmmap.go rebinds the raw on-disk
// columns with unsafe.Slice when the encoding and alignment allow —
// so its column slices are views of memory the process must treat as
// read-only and that the next NextCols or Close call invalidates.
// Where spanretain polices *retention* of such views, mmapalias polices
// *mutation and staleness*:
//
//   - writing through a view element (view.Times[i] = t, increment,
//     copy into a tracked column) faults on a read-only mapping — or,
//     on the heap-backed fallback sources that share the NextCols
//     contract, silently corrupts the codec's reuse buffer;
//   - appending to a tracked column either writes into the mapped page
//     (spare capacity) or reallocates and retains a stale alias, so
//     append(view.Times, ...) is flagged in both shapes;
//   - using a view after a later NextCols or Close on any source in the
//     same function reads through a recycled window: the memory is
//     unmapped or refilled, and the view silently describes different
//     records.
//
// The same tracking applies to the *ColBatch parameter of an AddCols
// implementation, which receives such views directly. Deliberate
// violations in the trace package's own plumbing are suppressed with
// //essvet:ignore mmapalias and a comment naming the invariant.
package mmapalias

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"essio/internal/vetters/vetutil"
)

// name is the analyzer name, referenced from run without creating an
// initialization cycle through Analyzer.
const name = "mmapalias"

// Analyzer is the mmapalias analyzer.
var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "flag writes to and stale uses of zero-copy mmap-aliased column views\n\n" +
		"Column views returned by NextCols (and the batch passed to AddCols) may\n" +
		"alias a read-only memory-mapped trace file; writing through them faults or\n" +
		"corrupts the codec buffer, appending to them writes into or retains mapped\n" +
		"pages, and using them after a later NextCols/Close reads recycled memory.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ignores := vetutil.ParseIgnores(pass)

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}, func(n ast.Node) {
		var body *ast.BlockStmt
		tracked := make(map[types.Object]bool)
		bound := make(map[types.Object]token.Pos) // object → end of its binding stmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body == nil {
				return
			}
			body = fn.Body
			if fn.Recv != nil && fn.Name.Name == "AddCols" {
				trackColsParam(pass, fn, tracked, bound)
			}
		case *ast.FuncLit:
			body = fn.Body
		}
		if vetutil.InTestFile(pass.Fset, body.Pos()) {
			return
		}
		collectViews(pass, body, tracked, bound)
		if len(tracked) == 0 {
			return
		}
		checkWrites(pass, ignores, body, tracked)
		checkStale(pass, ignores, body, tracked, bound)
	})
	return nil, nil
}

// trackColsParam marks the *ColBatch parameter of an AddCols method.
func trackColsParam(pass *analysis.Pass, fn *ast.FuncDecl, tracked map[types.Object]bool, bound map[types.Object]token.Pos) {
	obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
	if !ok {
		return
	}
	sig := obj.Type().(*types.Signature)
	if sig.Params().Len() != 1 {
		return
	}
	if _, ok := sig.Params().At(0).Type().Underlying().(*types.Pointer); !ok {
		return
	}
	if len(fn.Type.Params.List) == 1 && len(fn.Type.Params.List[0].Names) == 1 {
		if v, ok := pass.TypesInfo.Defs[fn.Type.Params.List[0].Names[0]].(*types.Var); ok {
			tracked[v] = true
			bound[v] = fn.Type.End()
		}
	}
}

// isViewCall reports whether call hands out a columnar view.
func isViewCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	return vetutil.TraceMethodCall(pass.TypesInfo, call, "NextCols", "nextCols")
}

// isInvalidatingCall reports whether call recycles previously handed-out
// views: a further NextCols refill or a Close that drops the mapping.
func isInvalidatingCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	return vetutil.TraceMethodCall(pass.TypesInfo, call, "NextCols", "nextCols", "Close")
}

// collectViews finds variables bound to NextCols results and their
// aliases, iterating assignments to a fixpoint within the body.
func collectViews(pass *analysis.Pass, body *ast.BlockStmt, tracked map[types.Object]bool, bound map[types.Object]token.Pos) {
	for {
		grew := false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) < 1 || len(as.Rhs) < 1 {
				return true
			}
			// view, err := src.NextCols(n) — the view is Lhs[0].
			if call, ok := as.Rhs[0].(*ast.CallExpr); ok && len(as.Rhs) == 1 && isViewCall(pass, call) {
				if vetutil.Mark(pass.TypesInfo, as.Lhs[0], tracked) {
					grew = true
					if id, ok := as.Lhs[0].(*ast.Ident); ok {
						if obj := pass.TypesInfo.Defs[id]; obj != nil {
							bound[obj] = as.End()
						} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
							bound[obj] = as.End()
						}
					}
				}
				return true
			}
			// alias := view   or   col := view.Times[i:j]
			if len(as.Lhs) == len(as.Rhs) {
				for i, rhs := range as.Rhs {
					if vetutil.IsTracked(pass.TypesInfo, rhs, tracked) {
						if id, ok := as.Lhs[i].(*ast.Ident); ok {
							if vetutil.Mark(pass.TypesInfo, id, tracked) {
								grew = true
								if obj := pass.TypesInfo.Defs[id]; obj != nil {
									bound[obj] = as.End()
								} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
									bound[obj] = as.End()
								}
							}
						}
					}
				}
			}
			return true
		})
		if !grew {
			return
		}
	}
}

// checkWrites reports every mutation through a tracked view.
func checkWrites(pass *analysis.Pass, ignores *vetutil.Ignores, body *ast.BlockStmt, tracked map[types.Object]bool) {
	report := func(pos ast.Node, what string) {
		if ignores.Suppressed(pos.Pos(), name) {
			return
		}
		pass.Reportf(pos.Pos(),
			"%s a zero-copy column view; NextCols views may alias a read-only mmap window — copy the columns first (trace.CopyCols)", what)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // analyzed as its own function when visited
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if idx, ok := lhs.(*ast.IndexExpr); ok && vetutil.IsTracked(pass.TypesInfo, idx.X, tracked) {
					report(n, "write through")
				}
			}
		case *ast.IncDecStmt:
			if idx, ok := n.X.(*ast.IndexExpr); ok && vetutil.IsTracked(pass.TypesInfo, idx.X, tracked) {
				report(n, "write through")
			}
		case *ast.CallExpr:
			id, ok := n.Fun.(*ast.Ident)
			if !ok || len(n.Args) == 0 {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			_, builtin := obj.(*types.Builtin)
			if obj != nil && !builtin {
				return true
			}
			switch id.Name {
			case "append":
				if vetutil.IsTracked(pass.TypesInfo, n.Args[0], tracked) {
					report(n, "append to")
				}
			case "copy":
				if vetutil.IsTracked(pass.TypesInfo, n.Args[0], tracked) {
					report(n, "copy into")
				}
			}
		}
		return true
	})
}

// checkStale reports uses of a view after a later NextCols/Close call
// recycled its window. The check is source-ordered within the body: an
// invalidating call strictly between a view's binding and a use means
// the use reads a recycled window on every straight-line execution, and
// loop re-bindings are their own binding point, so single-view loops
// (view := src.NextCols(); consume(view)) stay clean.
func checkStale(pass *analysis.Pass, ignores *vetutil.Ignores, body *ast.BlockStmt, tracked map[types.Object]bool, bound map[types.Object]token.Pos) {
	var invalidations []token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			return false // deferred Close runs at exit, after every use
		case *ast.FuncLit:
			return false // not straight-line: its calls fire when it runs
		case *ast.CallExpr:
			if isInvalidatingCall(pass, n) {
				invalidations = append(invalidations, n.Pos())
			}
		}
		return true
	})
	if len(invalidations) == 0 {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // analyzed as its own function when visited
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || !tracked[obj] {
			return true
		}
		b, ok := bound[obj]
		if !ok || id.Pos() <= b {
			return true
		}
		for _, inv := range invalidations {
			if inv > b && inv < id.Pos() {
				if !ignores.Suppressed(id.Pos(), name) {
					pass.Reportf(id.Pos(),
						"use of column view %s after a later NextCols/Close recycled its window; the view describes unmapped or refilled memory — copy needed columns before refilling", id.Name)
				}
				return true
			}
		}
		return true
	})
}
