// Stub of the repo's trace package for the mmapalias fixtures: a
// source whose NextCols hands out views that may alias a read-only
// memory mapping until the next NextCols or Close.
package trace

// ColBatch is the struct-of-arrays view of a run of records.
type ColBatch struct {
	Times   []int64
	Sectors []uint32
}

// Source hands out zero-copy column views of its current window.
type Source struct {
	batch ColBatch
	open  bool
}

// NextCols returns a column view, valid until the next call or Close.
func (s *Source) NextCols(max int) (*ColBatch, error) { return &s.batch, nil }

// Close drops the window mapping.
func (s *Source) Close() error {
	s.open = false
	return nil
}
