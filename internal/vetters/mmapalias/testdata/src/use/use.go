// Fixtures for the mmapalias analyzer: every mutation and staleness
// shape for a zero-copy column view, next to the copy-first and
// consume-before-refill patterns that legitimately pass.
package use

import "essvet.test/internal/trace"

func writeElem(r *trace.Source) {
	view, _ := r.NextCols(64)
	view.Times[0] = 42 // want `write through a zero-copy column view`
}

func incElem(r *trace.Source) {
	view, _ := r.NextCols(64)
	view.Sectors[0]++ // want `write through a zero-copy column view`
}

func appendCol(r *trace.Source) []int64 {
	view, _ := r.NextCols(64)
	return append(view.Times, 99) // want `append to a zero-copy column view`
}

func copyInto(r *trace.Source, src []int64) {
	view, _ := r.NextCols(64)
	copy(view.Times, src) // want `copy into a zero-copy column view`
}

// aliasWrite mutates through a second name for the same column.
func aliasWrite(r *trace.Source) {
	view, _ := r.NextCols(64)
	times := view.Times
	times[1] = 7 // want `write through a zero-copy column view`
}

// stale holds the first window across the refill that recycles it.
func stale(r *trace.Source) int64 {
	first, _ := r.NextCols(64)
	second, _ := r.NextCols(64)
	sum(second.Times)
	return first.Times[0] // want `use of column view first after a later NextCols/Close recycled its window`
}

// closed reads the view after the mapping is dropped.
func closed(r *trace.Source) int64 {
	view, _ := r.NextCols(64)
	r.Close()
	return sum(view.Times) // want `use of column view view after a later NextCols/Close recycled its window`
}

// consume reads each window before the next refill: fine, the loop
// re-binding is its own binding point.
func consume(r *trace.Source) int64 {
	var t int64
	for i := 0; i < 4; i++ {
		view, err := r.NextCols(64)
		if err != nil {
			return t
		}
		t += sum(view.Times)
	}
	return t
}

// deferredClose unmaps at function exit, after every use: fine.
func deferredClose(r *trace.Source) int64 {
	view, _ := r.NextCols(64)
	defer r.Close()
	return sum(view.Times)
}

// copyFirst breaks the alias with an element copy before mutating: fine.
func copyFirst(r *trace.Source) {
	view, _ := r.NextCols(64)
	times := append([]int64(nil), view.Times...)
	times[0] = 42
}

// copyOut reads through the view as a copy source: fine.
func copyOut(r *trace.Source, dst []int64) {
	view, _ := r.NextCols(64)
	copy(dst, view.Times)
}

// scaler mutates the batch handed to AddCols, which may be such a view.
type scaler struct{}

func (s *scaler) AddCols(cols *trace.ColBatch) error {
	cols.Times[0] = 0 // want `write through a zero-copy column view`
	return nil
}

// summer only reads its AddCols batch: fine.
type summer struct{ total int64 }

func (s *summer) AddCols(cols *trace.ColBatch) error {
	s.total += sum(cols.Times)
	return nil
}

// rewriteInPlace opts out with the ignore directive: the codec owns the
// buffer of this heap-backed source.
func rewriteInPlace(r *trace.Source) {
	view, _ := r.NextCols(64)
	view.Times[0] = 0 //essvet:ignore mmapalias heap-backed source, codec owns the buffer
}

func sum(ts []int64) int64 {
	var t int64
	for _, v := range ts {
		t += v
	}
	return t
}
