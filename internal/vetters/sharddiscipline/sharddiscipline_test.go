package sharddiscipline_test

import (
	"testing"

	"essio/internal/vetters/vettest"
)

func TestShardDiscipline(t *testing.T) { vettest.Run(t, "sharddiscipline") }
