// Package sharddiscipline defines an analyzer enforcing the sharded
// engine's isolation discipline. The conservative parallel simulation
// (sim.Shards) is only deterministic because each shard's Engine is
// touched by exactly one goroutine per lookahead window and all
// cross-shard effects are staged through Engine.Cross, which the
// barrier replays in (time, node, seq) order. Code that reaches into
// another shard's engine directly — scheduling work on an engine fetched
// through a lookup, capturing an engine in an ad-hoc goroutine, or
// drawing from an engine's seeded randomness off its own goroutine —
// bypasses that staging and desyncs shard counts silently.
//
// In the gated packages (-shardpkgs, default internal/sim and
// internal/cluster) the analyzer flags:
//
//   - scheduling or seeded-state methods (At, After, Every, Spawn,
//     SpawnAt, Rand) invoked on an engine obtained from a call
//     expression (s.Engine(i).At(...), c.EngineOf(n).Spawn(...)):
//     cross-shard injection must go through Engine.Cross, or the call
//     must be hoisted into setup/coordinator context and suppressed
//     with a justified //essvet:ignore sharddiscipline;
//   - goroutines capturing an engine variable from the enclosing scope:
//     window workers pass the engine as a parameter and join at the
//     barrier, so a capture marks an engine shared with an unmanaged
//     goroutine (a method's own receiver is exempt — an engine-owned
//     helper goroutine is same-shard by construction);
//   - Engine.Rand calls inside a goroutine not marked with the
//     barrier-worker ignore convention (//essvet:ignore determinism on
//     the go statement): seeded state consumed off the owning goroutine
//     races the window scheduler even when the values look stable.
package sharddiscipline

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"essio/internal/vetters/vetutil"
)

// name is the analyzer name, referenced from run without creating an
// initialization cycle through Analyzer.
const name = "sharddiscipline"

// DefaultGates are the package-path substrings the analyzer is
// restricted to by default: the sharded engine and its cluster driver.
var DefaultGates = "internal/sim,internal/cluster"

// shardpkgs holds the -shardpkgs flag value.
var shardpkgs = DefaultGates

// Analyzer is the sharddiscipline analyzer.
var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "flag cross-shard engine access that bypasses Cross staging or barrier joins\n\n" +
		"Sharded simulation stays deterministic only while each Engine is driven by\n" +
		"one goroutine per window and cross-shard effects go through Engine.Cross;\n" +
		"scheduling on a looked-up engine, capturing an engine in an ad-hoc\n" +
		"goroutine, or drawing engine randomness off-thread desyncs shards silently.",
	Run: run,
}

func init() {
	Analyzer.Flags.StringVar(&shardpkgs, "shardpkgs", DefaultGates,
		"comma-separated package path substrings the check is restricted to")
}

// stateMethods are the Engine methods that mutate scheduling or seeded
// state and therefore must not be invoked across shards mid-run.
var stateMethods = map[string]bool{
	"At": true, "After": true, "Every": true,
	"Spawn": true, "SpawnAt": true, "Rand": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !vetutil.PathGated(pass.Pkg.Path(), shardpkgs) {
		return nil, nil
	}
	ignores := vetutil.ParseIgnores(pass)
	for _, f := range pass.Files {
		if len(f.Decls) > 0 && vetutil.InTestFile(pass.Fset, f.Decls[0].Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, ignores, fd)
		}
	}
	return nil, nil
}

// checkFunc applies all three rules inside one function body.
func checkFunc(pass *analysis.Pass, ignores *vetutil.Ignores, fd *ast.FuncDecl) {
	recv := receiverObj(pass, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkLookupChain(pass, ignores, n)
		case *ast.GoStmt:
			checkGoroutine(pass, ignores, n, recv)
		}
		return true
	})
}

// checkLookupChain flags s.Engine(i).At(...) shapes: a scheduling or
// seeded-state method on an engine that is itself a call result, i.e. a
// shard lookup rather than the engine the surrounding code owns.
func checkLookupChain(pass *analysis.Pass, ignores *vetutil.Ignores, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !stateMethods[sel.Sel.Name] {
		return
	}
	inner, ok := sel.X.(*ast.CallExpr)
	if !ok || !isEngine(pass.TypesInfo.TypeOf(inner)) {
		return
	}
	if ignores.Suppressed(call.Pos(), name) {
		return
	}
	pass.Reportf(call.Pos(),
		"%s called on an engine obtained from a lookup; cross-shard scheduling must be staged through Engine.Cross (or run in coordinator context with a justified //essvet:ignore %s)",
		sel.Sel.Name, name)
}

// checkGoroutine flags goroutines that capture an engine from the
// enclosing scope (rule 2) and Rand calls inside goroutines lacking the
// barrier-worker marker (rule 3).
func checkGoroutine(pass *analysis.Pass, ignores *vetutil.Ignores, g *ast.GoStmt, recv types.Object) {
	fl, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	barrierMarked := ignores.Suppressed(g.Pos(), "determinism") || ignores.Suppressed(g.Pos(), name)

	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[n]
			if obj == nil || obj == recv || !isEngine(obj.Type()) {
				return true
			}
			if obj.Pos() >= fl.Pos() && obj.Pos() <= fl.End() {
				return true // the worker's own parameter or local
			}
			if barrierMarked || ignores.Suppressed(n.Pos(), name) {
				return true
			}
			pass.Reportf(g.Pos(),
				"goroutine captures shard engine %s; pass the engine as a parameter and join at a barrier, or stage the work through Engine.Cross", n.Name)
			return false
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Rand" || !isEngine(pass.TypesInfo.TypeOf(sel.X)) {
				return true
			}
			if barrierMarked || ignores.Suppressed(n.Pos(), name) {
				return true
			}
			pass.Reportf(n.Pos(),
				"engine randomness drawn inside an unmarked goroutine; seeded state off the owning goroutine races the window scheduler (mark the go statement //essvet:ignore determinism if it is barrier-joined)")
		}
		return true
	})
}

// receiverObj returns the receiver object of a method decl, or nil.
func receiverObj(pass *analysis.Pass, fd *ast.FuncDecl) types.Object {
	if fd.Recv == nil || len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return nil
	}
	return pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]
}

// isEngine reports whether t is the sharded simulator's Engine type
// (named Engine, declared in a sim package), unwrapping pointers.
func isEngine(t types.Type) bool {
	if t == nil {
		return false
	}
	n := vetutil.NamedOf(t)
	if n == nil || n.Obj().Name() != "Engine" || n.Obj().Pkg() == nil {
		return false
	}
	path := n.Obj().Pkg().Path()
	return path == "sim" || len(path) > 4 && path[len(path)-4:] == "/sim"
}
