// Package outside sits off the gated package paths: the same shapes
// that are flagged inside internal/sim and internal/cluster pass here
// without comment.
package outside

import "essvet.test/internal/sim"

// Ungated schedules on a looked-up engine, which only the gated
// packages are held to.
func Ungated(s *sim.Shards, i int) {
	s.Engine(i).At(0, "tick", func() {})
}
