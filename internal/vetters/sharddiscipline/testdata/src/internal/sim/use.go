// Fixtures for the sharddiscipline analyzer inside the gated sim
// package: lookup-chain scheduling, engine-capturing goroutines, and
// off-thread randomness, next to the owned-engine and barrier-worker
// shapes that legitimately pass.
package sim

// crossSchedule schedules on a looked-up shard engine directly.
func crossSchedule(s *Shards, i int) {
	s.Engine(i).At(100, "tick", func() {}) // want `At called on an engine obtained from a lookup`
}

// crossSpawn starts work on another shard without staging it.
func crossSpawn(s *Shards, i int) {
	s.Engine(i).Spawn("w", func() {}) // want `Spawn called on an engine obtained from a lookup`
}

// crossRand drains another shard's seeded stream.
func crossRand(s *Shards, i int) uint64 {
	return s.Engine(i).Rand() // want `Rand called on an engine obtained from a lookup`
}

// coordinator runs between windows with engines quiescent; the ignore
// names the invariant.
func coordinator(s *Shards, i int) {
	//essvet:ignore sharddiscipline coordinator context, engines quiescent
	s.Engine(i).SpawnAt(0, "boot", func() {})
}

// ownEngine schedules on the engine the caller owns: fine.
func ownEngine(e *Engine) {
	e.At(100, "tick", func() {})
}

// capture leaks the engine into an ad-hoc goroutine.
func capture(e *Engine, done chan struct{}) {
	go func() { // want `goroutine captures shard engine e`
		e.Spawn("late", func() {})
		close(done)
	}()
}

// worker passes the engine as a parameter and is marked with the
// barrier-worker convention: fine.
func worker(e *Engine, done chan struct{}) {
	//essvet:ignore determinism barrier-joined window worker
	go func(eng *Engine) {
		_ = eng.Rand()
		close(done)
	}(e)
}

// unmarked draws engine randomness inside an unmarked goroutine.
func unmarked(e *Engine, done chan struct{}) {
	go func(eng *Engine) {
		_ = eng.Rand() // want `engine randomness drawn inside an unmarked goroutine`
		close(done)
	}(e)
}

// pump is engine-owned: a method's receiver goroutine is same-shard by
// construction.
func (e *Engine) pump(done chan struct{}) {
	go func() {
		e.Spawn("pump", func() {})
		close(done)
	}()
}
