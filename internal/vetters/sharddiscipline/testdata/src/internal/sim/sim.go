// Package sim stubs the sharded engine for the sharddiscipline
// fixtures: an Engine with the scheduling and seeded-state surface the
// analyzer polices, and the Shards lookup that hands engines out.
package sim

// Engine is one shard's event engine.
type Engine struct {
	node int
	rng  uint64
}

// At schedules fn at absolute time t.
func (e *Engine) At(t int64, name string, fn func()) {}

// After schedules fn after delay d.
func (e *Engine) After(d int64, name string, fn func()) {}

// Every schedules fn periodically.
func (e *Engine) Every(d int64, name string, fn func()) {}

// Spawn starts a process now.
func (e *Engine) Spawn(name string, fn func()) {}

// SpawnAt starts a process at time t.
func (e *Engine) SpawnAt(t int64, name string, fn func()) {}

// Rand draws from the engine's seeded stream.
func (e *Engine) Rand() uint64 {
	e.rng = e.rng*6364136223846793005 + 1442695040888963407
	return e.rng
}

// Cross stages a cross-shard effect for barrier replay.
func (e *Engine) Cross(node int, t int64, name string, fn func()) {}

// Shards is the set of per-shard engines.
type Shards struct{ engines []*Engine }

// Engine returns shard i's engine.
func (s *Shards) Engine(i int) *Engine { return s.engines[i] }
