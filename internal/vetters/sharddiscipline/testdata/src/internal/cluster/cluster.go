// Fixtures for the sharddiscipline analyzer in the gated cluster
// package: the multi-node driver's engine lookups.
package cluster

import "essvet.test/internal/sim"

// Cluster maps nodes to their shard engines.
type Cluster struct {
	engines map[int]*sim.Engine
}

// EngineOf returns the engine simulating a node.
func (c *Cluster) EngineOf(node int) *sim.Engine { return c.engines[node] }

// SpawnOn schedules directly on a node's engine mid-run.
func (c *Cluster) SpawnOn(node int, name string, fn func()) {
	c.EngineOf(node).Spawn(name, fn) // want `Spawn called on an engine obtained from a lookup`
}

// SpawnOnQuiescent is the coordinator-context variant: fine with the
// justified ignore.
func (c *Cluster) SpawnOnQuiescent(node int, name string, fn func()) {
	//essvet:ignore sharddiscipline coordinator context, engines quiescent between windows
	c.EngineOf(node).Spawn(name, fn)
}
