package sarif_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"essio/internal/vetters/sarif"
)

// fixedDiags is the golden input: deliberately unsorted, with a repeated
// analyzer, so the test pins sorting and rule deduplication too.
func fixedDiags() []sarif.Diagnostic {
	return []sarif.Diagnostic{
		{Analyzer: "spanretain", File: "internal/essd/ingest.go", Line: 88, Col: 3,
			Message: "trace span retained across NextSpan"},
		{Analyzer: "colparity", File: "internal/analysis/cols.go", Line: 41, Col: 18,
			Message: "AddCols of SummaryAcc does not read column Ops but Add reads field Op"},
		{Analyzer: "colparity", File: "internal/analysis/cols.go", Line: 12, Col: 18,
			Message: "AddCols of RateAcc does not read column Times but Add reads field Time"},
	}
}

func TestEncodeGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := sarif.Encode(&buf, "essvet", fixedDiags()); err != nil {
		t.Fatal(err)
	}
	goldenPath := filepath.Join("testdata", "golden.sarif")
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("SARIF output differs from %s:\ngot:\n%s\nwant:\n%s", goldenPath, buf.Bytes(), want)
	}
}

// TestEncodeDeterministic re-encodes a shuffled copy and demands
// byte-identical output; the baseline diff workflow depends on it.
func TestEncodeDeterministic(t *testing.T) {
	diags := fixedDiags()
	shuffled := []sarif.Diagnostic{diags[2], diags[0], diags[1]}
	var a, b bytes.Buffer
	if err := sarif.Encode(&a, "essvet", diags); err != nil {
		t.Fatal(err)
	}
	if err := sarif.Encode(&b, "essvet", shuffled); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("encoding is order-sensitive; SARIF output must be deterministic")
	}
}

func TestParseVetJSON(t *testing.T) {
	stdout := []byte(`# essio/internal/analysis
{
	"essio/internal/analysis": {
		"colparity": [
			{
				"posn": "/repo/internal/analysis/cols.go:41:18",
				"message": "AddCols of SummaryAcc does not read column Ops but Add reads field Op"
			}
		]
	}
}
`)
	stderr := []byte(`# essio/internal/essd
{
	"essio/internal/essd": {
		"spanretain": [
			{
				"posn": "/repo/internal/essd/ingest.go:88:3",
				"message": "trace span retained across NextSpan"
			}
		]
	}
}
`)
	diags, err := sarif.ParseVetJSON(stdout, stderr)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %+v", len(diags), diags)
	}
	// Sorted by file: analysis/cols.go before essd/ingest.go.
	if diags[0].Analyzer != "colparity" || diags[0].Line != 41 || diags[0].Col != 18 {
		t.Errorf("diags[0] = %+v", diags[0])
	}
	if diags[1].Analyzer != "spanretain" || diags[1].File != "/repo/internal/essd/ingest.go" {
		t.Errorf("diags[1] = %+v", diags[1])
	}
}

func TestParseVetJSONEmpty(t *testing.T) {
	diags, err := sarif.ParseVetJSON(nil, []byte("# essio/internal/trace\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("got %d diagnostics from empty run", len(diags))
	}
}

func TestBaselineFilter(t *testing.T) {
	diags := fixedDiags()
	b := &sarif.Baseline{Findings: []sarif.BaselineEntry{
		{Analyzer: "spanretain", File: "internal/essd/ingest.go",
			Message: "trace span retained across NextSpan"},
	}}
	accepted, fresh := b.Filter(diags)
	if len(accepted) != 1 || accepted[0].Analyzer != "spanretain" {
		t.Errorf("accepted = %+v, want the spanretain finding", accepted)
	}
	if len(fresh) != 2 {
		t.Errorf("fresh = %+v, want both colparity findings", fresh)
	}
}

// TestBaselineRoundTrip checks FromDiagnostics output survives
// ParseBaseline and then absorbs the same findings.
func TestBaselineRoundTrip(t *testing.T) {
	diags := fixedDiags()
	data, err := os.ReadFile(filepath.Join("..", "..", "..", ".essvet-baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	checked, err := sarif.ParseBaseline(data)
	if err != nil {
		t.Fatalf("checked-in baseline does not parse: %v", err)
	}
	if accepted, _ := checked.Filter(diags); len(accepted) != 0 {
		t.Errorf("checked-in baseline unexpectedly accepts findings: %+v", accepted)
	}

	b := sarif.FromDiagnostics(diags)
	roundTripped, err := sarif.ParseBaseline(mustJSON(t, b))
	if err != nil {
		t.Fatal(err)
	}
	accepted, fresh := roundTripped.Filter(diags)
	if len(accepted) != len(diags) || len(fresh) != 0 {
		t.Errorf("round-tripped baseline: accepted %d fresh %d, want %d/0",
			len(accepted), len(fresh), len(diags))
	}
}

func mustJSON(t *testing.T, b *sarif.Baseline) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := sarif.EncodeBaseline(&buf, b); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
