// Package sarif turns the diagnostics of a `go vet -json` run into
// SARIF 2.1.0, the static-analysis interchange format CI systems ingest
// (GitHub code scanning, review tooling), and filters them against a
// checked-in baseline so a gate can fail only on *new* findings. It is
// shared by cmd/essvet's -sarif mode and the vettest golden harness:
// both consume the same per-package JSON stream the go command emits
// for vet tools, so the parser lives here once.
package sarif

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
)

// Diagnostic is one analyzer finding with its position split out.
type Diagnostic struct {
	Analyzer string // analyzer name ("colparity", "spanretain", ...)
	File     string
	Line     int
	Col      int
	Message  string
}

// posnRE splits a file:line:col position.
var posnRE = regexp.MustCompile(`^(.*):(\d+):(\d+)$`)

// ParseVetJSON decodes the stream of per-package JSON objects `go vet
// -json` emits — maps of package → analyzer → diagnostics, with
// "# package" comment lines interleaved — from both output streams (the
// go command has moved the JSON between them across releases). The
// returned diagnostics are sorted by file, line, analyzer, message so
// downstream encoders and diffs are stable run to run.
func ParseVetJSON(stdout, stderr []byte) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, raw := range [][]byte{stdout, stderr} {
		// Drop "# package" comment lines, keep JSON.
		var jsonText bytes.Buffer
		for _, line := range bytes.Split(raw, []byte("\n")) {
			if bytes.HasPrefix(bytes.TrimSpace(line), []byte("#")) {
				continue
			}
			jsonText.Write(line)
			jsonText.WriteByte('\n')
		}
		dec := json.NewDecoder(&jsonText)
		for dec.More() {
			var byPkg map[string]map[string][]struct {
				Posn    string `json:"posn"`
				Message string `json:"message"`
			}
			if err := dec.Decode(&byPkg); err != nil {
				if raw = bytes.TrimSpace(raw); len(raw) == 0 {
					break
				}
				return diags, err
			}
			for _, byAnalyzer := range byPkg {
				for analyzer, list := range byAnalyzer {
					for _, d := range list {
						m := posnRE.FindStringSubmatch(d.Posn)
						if m == nil {
							continue
						}
						line, _ := strconv.Atoi(m[2])
						col, _ := strconv.Atoi(m[3])
						diags = append(diags, Diagnostic{
							Analyzer: analyzer,
							File:     m[1],
							Line:     line,
							Col:      col,
							Message:  d.Message,
						})
					}
				}
			}
		}
	}
	Sort(diags)
	return diags, nil
}

// Sort orders diagnostics by file, line, analyzer, message.
func Sort(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// SARIF 2.1.0 document skeleton; only the fields the format requires
// plus the ones CI viewers actually render.
type (
	sarifLog struct {
		Version string     `json:"version"`
		Schema  string     `json:"$schema"`
		Runs    []sarifRun `json:"runs"`
	}
	sarifRun struct {
		Tool    sarifTool     `json:"tool"`
		Results []sarifResult `json:"results"`
	}
	sarifTool struct {
		Driver sarifDriver `json:"driver"`
	}
	sarifDriver struct {
		Name  string      `json:"name"`
		Rules []sarifRule `json:"rules"`
	}
	sarifRule struct {
		ID string `json:"id"`
	}
	sarifResult struct {
		RuleID    string          `json:"ruleId"`
		Level     string          `json:"level"`
		Message   sarifMessage    `json:"message"`
		Locations []sarifLocation `json:"locations"`
	}
	sarifMessage struct {
		Text string `json:"text"`
	}
	sarifLocation struct {
		PhysicalLocation sarifPhysical `json:"physicalLocation"`
	}
	sarifPhysical struct {
		ArtifactLocation sarifArtifact `json:"artifactLocation"`
		Region           sarifRegion   `json:"region"`
	}
	sarifArtifact struct {
		URI string `json:"uri"`
	}
	sarifRegion struct {
		StartLine   int `json:"startLine"`
		StartColumn int `json:"startColumn"`
	}
)

const schemaURI = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"

// Encode writes diags as an indented SARIF 2.1.0 log for the named
// tool. Output is deterministic: diagnostics are sorted, the rule table
// is the sorted set of analyzer names, and encoding/json keeps struct
// field order.
func Encode(w io.Writer, tool string, diags []Diagnostic) error {
	sorted := append([]Diagnostic(nil), diags...)
	Sort(sorted)

	seen := make(map[string]bool)
	var rules []sarifRule
	for _, d := range sorted {
		if !seen[d.Analyzer] {
			seen[d.Analyzer] = true
			rules = append(rules, sarifRule{ID: d.Analyzer})
		}
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })

	results := make([]sarifResult, 0, len(sorted))
	for _, d := range sorted {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "warning",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: d.File},
					Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Col},
				},
			}},
		})
	}
	doc := sarifLog{
		Version: "2.1.0",
		Schema:  schemaURI,
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: tool, Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// BaselineEntry identifies one accepted finding. Line and column are
// deliberately excluded: unrelated edits move findings around, and a
// baseline that rots on every reflow fails the build for the wrong
// person. Analyzer + file + message pins a finding tightly enough.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
}

// Baseline is the checked-in set of accepted findings.
type Baseline struct {
	Findings []BaselineEntry `json:"findings"`
}

// EncodeBaseline writes a baseline in the checked-in file's format
// (indented, trailing newline), so regenerating it produces a minimal
// diff.
func EncodeBaseline(w io.Writer, b *Baseline) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// ParseBaseline decodes a baseline file.
func ParseBaseline(data []byte) (*Baseline, error) {
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("sarif: bad baseline: %w", err)
	}
	return &b, nil
}

// FromDiagnostics converts current findings into baseline form, for
// regenerating the checked-in file after accepting them.
func FromDiagnostics(diags []Diagnostic) *Baseline {
	b := &Baseline{Findings: []BaselineEntry{}}
	for _, d := range diags {
		b.Findings = append(b.Findings, BaselineEntry{Analyzer: d.Analyzer, File: d.File, Message: d.Message})
	}
	return b
}

// Filter splits diags into the ones covered by the baseline and the new
// ones a gate should fail on. Each baseline entry absorbs any number of
// identical findings (a suppressed pattern repeated in one file stays
// suppressed).
func (b *Baseline) Filter(diags []Diagnostic) (accepted, fresh []Diagnostic) {
	known := make(map[BaselineEntry]bool, len(b.Findings))
	for _, e := range b.Findings {
		known[e] = true
	}
	for _, d := range diags {
		if known[BaselineEntry{Analyzer: d.Analyzer, File: d.File, Message: d.Message}] {
			accepted = append(accepted, d)
		} else {
			fresh = append(fresh, d)
		}
	}
	return accepted, fresh
}
