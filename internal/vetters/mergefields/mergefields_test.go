package mergefields_test

import (
	"testing"

	"essio/internal/vetters/vettest"
)

func TestMergeFields(t *testing.T) { vettest.Run(t, "mergefields") }
