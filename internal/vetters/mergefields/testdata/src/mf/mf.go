// Fixtures for the mergefields analyzer: accumulators whose Merge must
// reference every receiver field.
package mf

// Good merges every field.
type Good struct{ count, bytes int }

func (g *Good) Merge(o *Good) {
	g.count += o.count
	g.bytes += o.bytes
}

// Bad forgets bytes.
type Bad struct{ count, bytes int }

func (b *Bad) Merge(o *Bad) { // want `Merge of Bad does not reference field bytes`
	b.count += o.count
}

// Marked exempts a construction-time field with the field marker.
type Marked struct {
	count int
	label string //essvet:mergeignore identical across shards by construction
}

func (m *Marked) Merge(o *Marked) { m.count += o.count }

// Whole assigns through the receiver, touching every field at once.
type Whole struct{ a, b int }

func (w *Whole) Merge(o *Whole) { *w = *o }

// Opaque is exempted wholesale by a marker in the method doc comment.
type Opaque struct{ a, b int }

//essvet:mergeignore state is reconciled by the caller
func (p *Opaque) Merge(o *Opaque) {}

// Line-level suppression with the generic ignore directive.
type Quiet struct{ a, b int }

//essvet:ignore mergefields b is rebuilt lazily on Profile
func (q *Quiet) Merge(o *Quiet) { q.a += o.a }

// NotMerge takes a different parameter type, so it is not the
// accumulator Merge shape and is not checked.
type NotMerge struct{ a int }

type other struct{}

func (n *NotMerge) Merge(o *other) {}
