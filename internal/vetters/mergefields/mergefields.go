// Package mergefields defines an analyzer enforcing the repo's
// accumulator-merge invariant: the parallel characterization drivers
// (core.ProfileParallel, experiment.RunAllWorkers, essanalyze -workers)
// are only exact because every accumulator's Merge folds *every* piece
// of state its Add path can touch. A field added to an accumulator but
// forgotten in Merge desyncs the sharded pass from the sequential
// oracle silently — results stay plausible, they are just wrong.
//
// The analyzer requires that any method
//
//	func (a *T) Merge(b *T)
//
// on a struct type T declared in the same package reference every field
// of T inside its body. Fields that are intentionally not merged —
// construction-time configuration asserted equal instead, derived
// caches — carry an explicit marker on the field declaration:
//
//	width uint32 //essvet:mergeignore geometry is asserted equal
//
// A //essvet:mergeignore marker in the Merge method's doc comment
// exempts the whole method.
package mergefields

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"essio/internal/vetters/vetutil"
)

// Marker is the comment prefix exempting a field (or a whole Merge
// method, when placed in its doc comment) from the check.
const Marker = "//essvet:mergeignore"

// name is the analyzer name, referenced from run without creating an
// initialization cycle through Analyzer.
const name = "mergefields"

// Analyzer is the mergefields analyzer.
var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "check that accumulator Merge methods reference every field of the receiver struct\n\n" +
		"A Merge(*T) method on struct T must read or write each field of T (or the\n" +
		"field must carry a //essvet:mergeignore marker); otherwise a field added to\n" +
		"an accumulator silently desyncs parallel merges from the sequential pass.",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	ignores := vetutil.ParseIgnores(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "Merge" || fd.Recv == nil || fd.Body == nil {
				continue
			}
			if vetutil.InTestFile(pass.Fset, fd.Pos()) {
				continue
			}
			checkMerge(pass, ignores, fd)
		}
	}
	return nil, nil
}

// checkMerge verifies one Merge method.
func checkMerge(pass *analysis.Pass, ignores *vetutil.Ignores, fd *ast.FuncDecl) {
	obj := pass.TypesInfo.Defs[fd.Name]
	fn, ok := obj.(*types.Func)
	if !ok {
		return
	}
	sig := fn.Type().(*types.Signature)
	recvNamed := namedOf(sig.Recv().Type())
	if recvNamed == nil || recvNamed.Obj().Pkg() != pass.Pkg {
		return
	}
	st, ok := recvNamed.Underlying().(*types.Struct)
	if !ok {
		return
	}
	// Merge must take exactly one parameter of the receiver's own type.
	if sig.Params().Len() != 1 || namedOf(sig.Params().At(0).Type()) != recvNamed {
		return
	}
	if commentHasMarker(fd.Doc) {
		return
	}

	want := make(map[*types.Var]bool, st.NumFields())
	for i := 0; i < st.NumFields(); i++ {
		fv := st.Field(i)
		if fv.Name() != "_" {
			want[fv] = true
		}
	}
	exemptMarkedFields(pass, recvNamed, want)

	// A whole-struct assignment through the receiver (*a = *b, or a = b
	// on a value receiver) touches every field at once.
	recvVar, _ := pass.TypesInfo.Defs[receiverIdent(fd)].(*types.Var)
	used := make(map[*types.Var]bool)
	all := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if v, ok := pass.TypesInfo.Uses[n].(*types.Var); ok && want[v] {
				used[v] = true
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if isReceiverValue(pass, lhs, recvVar) {
					all = true
				}
			}
		}
		return true
	})
	if all {
		return
	}

	for i := 0; i < st.NumFields(); i++ {
		fv := st.Field(i)
		if !want[fv] || used[fv] {
			continue
		}
		if ignores.Suppressed(fd.Name.Pos(), name) {
			continue
		}
		pass.Reportf(fd.Name.Pos(),
			"Merge of %s does not reference field %s; a sharded pass will drop its state (merge it or mark the field //essvet:mergeignore)",
			recvNamed.Obj().Name(), fv.Name())
	}
}

// receiverIdent returns the receiver name identifier of fd, or nil for
// an anonymous receiver.
func receiverIdent(fd *ast.FuncDecl) *ast.Ident {
	if len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		return fd.Recv.List[0].Names[0]
	}
	return nil
}

// isReceiverValue reports whether expr denotes the whole receiver value
// (recv or *recv).
func isReceiverValue(pass *analysis.Pass, expr ast.Expr, recv *types.Var) bool {
	if recv == nil {
		return false
	}
	if star, ok := expr.(*ast.StarExpr); ok {
		expr = star.X
	}
	id, ok := expr.(*ast.Ident)
	return ok && pass.TypesInfo.Uses[id] == recv
}

// exemptMarkedFields drops fields whose declaration carries the
// //essvet:mergeignore marker from the wanted set.
func exemptMarkedFields(pass *analysis.Pass, named *types.Named, want map[*types.Var]bool) {
	specPos := named.Obj().Pos()
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok || ts.Name.Pos() != specPos {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return false
			}
			for _, field := range st.Fields.List {
				if !commentHasMarker(field.Doc) && !commentHasMarker(field.Comment) {
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						delete(want, v)
					}
				}
				if len(field.Names) == 0 { // embedded field
					for v := range want {
						if v.Embedded() && v.Pos() >= field.Pos() && v.Pos() <= field.End() {
							delete(want, v)
						}
					}
				}
			}
			return false
		})
	}
}

// commentHasMarker reports whether any comment of cg starts with the
// mergeignore marker.
func commentHasMarker(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.HasPrefix(c.Text, Marker) {
			return true
		}
	}
	return false
}

// namedOf unwraps pointers and aliases down to the named type, or nil.
func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := types.Unalias(t).(*types.Named)
	return n
}
