// Package vetters assembles the essvet static-analysis suite: the
// custom golang.org/x/tools/go/analysis analyzers that machine-check
// this repository's correctness invariants — exact accumulator merges
// (mergefields), seed-pure simulation and deterministic output order
// (determinism), consumed sink errors (sinkerr), and unretained
// zero-copy batch spans (spanretain). cmd/essvet runs them over the
// tree; see DESIGN.md §"Checked invariants".
package vetters

import (
	"golang.org/x/tools/go/analysis"

	"essio/internal/vetters/determinism"
	"essio/internal/vetters/mergefields"
	"essio/internal/vetters/sinkerr"
	"essio/internal/vetters/spanretain"
)

// All returns every essvet analyzer, in stable name order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		determinism.Analyzer,
		mergefields.Analyzer,
		sinkerr.Analyzer,
		spanretain.Analyzer,
	}
}
