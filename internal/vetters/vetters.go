// Package vetters assembles the essvet static-analysis suite: the
// custom golang.org/x/tools/go/analysis analyzers that machine-check
// this repository's correctness invariants — row/column parity of
// accumulator fast paths (colparity), exact accumulator merges
// (mergefields), seed-pure simulation and deterministic output order
// (determinism), read-only mmap-aliased column views (mmapalias),
// cross-shard engine isolation (sharddiscipline), consumed sink errors
// (sinkerr), and unretained zero-copy batch spans (spanretain) — plus
// two stock x/tools passes the repo's concurrency patterns make
// load-bearing: copylocks (the barrier WaitGroups and engine mutexes
// must never be copied) and nilfunc (comparisons of funcs against nil,
// the shape of a staged Cross callback check gone wrong). cmd/essvet
// runs them over the tree; see DESIGN.md §"Checked invariants".
package vetters

import (
	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/copylock"
	"golang.org/x/tools/go/analysis/passes/nilfunc"

	"essio/internal/vetters/colparity"
	"essio/internal/vetters/determinism"
	"essio/internal/vetters/mergefields"
	"essio/internal/vetters/mmapalias"
	"essio/internal/vetters/sharddiscipline"
	"essio/internal/vetters/sinkerr"
	"essio/internal/vetters/spanretain"
)

// All returns every essvet analyzer, in stable name order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		colparity.Analyzer,
		copylock.Analyzer,
		determinism.Analyzer,
		mergefields.Analyzer,
		mmapalias.Analyzer,
		nilfunc.Analyzer,
		sharddiscipline.Analyzer,
		sinkerr.Analyzer,
		spanretain.Analyzer,
	}
}
