// Fixtures for the determinism analyzer, ungated half: wall clocks are
// fine here, but map-ordered output is flagged in every package.
package report

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Stamp uses the wall clock outside the gated packages: fine.
func Stamp() int64 { return time.Now().Unix() }

func PrintAll(m map[string]int) {
	for k, v := range m { // want `range over map emits in iteration order`
		fmt.Println(k, v)
	}
}

func BuildString(m map[string]int) string {
	var b strings.Builder
	for k := range m { // want `range over map emits in iteration order`
		b.WriteString(k)
	}
	return b.String()
}

func DebugDump(m map[string]int) {
	for k := range m { // want `range over map emits in iteration order`
		println(k)
	}
}

func CollectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want `range over map appends in iteration order and the slice is never sorted`
		keys = append(keys, k)
	}
	return keys
}

// CollectSorted is the collect-sort-emit idiom: fine.
func CollectSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// CollectLocalSort sorts through a package-local helper: fine.
func CollectLocalSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sortKeys(keys)
	return keys
}

func sortKeys(keys []string) { sort.Strings(keys) }

// Sum aggregates commutatively; iteration order cannot show: fine.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// SuppressedEmit opts out with the ignore directive.
func SuppressedEmit(m map[string]int) {
	//essvet:ignore determinism debugging helper, order irrelevant
	for k := range m {
		fmt.Println(k)
	}
}

// Spawn uses a raw goroutine outside the gated packages: fine.
func Spawn(fn func()) { go fn() }

// Wait sleeps on the wall clock outside the gated packages: fine.
func Wait() { time.Sleep(time.Millisecond) }

// cache is a package-level map outside the gated packages: fine.
var cache = map[string]int{}
