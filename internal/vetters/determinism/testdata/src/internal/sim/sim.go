// Fixtures for the determinism analyzer, gated half: this path matches
// internal/sim, so wall clocks and the global rand source are forbidden.
package sim

import (
	"math/rand"
	"time"
)

func Clock() int64 {
	t := time.Now() // want `time.Now in a seeded package makes runs unrepeatable`
	return t.Unix()
}

func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time.Since in a seeded package makes runs unrepeatable`
}

func Draw() int {
	return rand.Intn(6) // want `global rand.Intn draws from the process-wide source`
}

// Seeded derives all randomness from an explicit seed: constructors and
// generator methods are allowed.
func Seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6)
}

// Suppressed carries the ignore directive on the line above the call.
func Suppressed() int64 {
	//essvet:ignore determinism startup banner only
	return time.Now().Unix()
}
