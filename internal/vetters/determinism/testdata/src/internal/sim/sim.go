// Fixtures for the determinism analyzer, gated half: this path matches
// internal/sim, so wall clocks and the global rand source are forbidden.
package sim

import (
	"math/rand"
	"time"
)

func Clock() int64 {
	t := time.Now() // want `time.Now in a seeded package makes runs unrepeatable`
	return t.Unix()
}

func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time.Since in a seeded package makes runs unrepeatable`
}

func Draw() int {
	return rand.Intn(6) // want `global rand.Intn draws from the process-wide source`
}

// Seeded derives all randomness from an explicit seed: constructors and
// generator methods are allowed.
func Seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6)
}

// Suppressed carries the ignore directive on the line above the call.
func Suppressed() int64 {
	//essvet:ignore determinism startup banner only
	return time.Now().Unix()
}

// Shard discipline, half one: wall-clock waits are forbidden alongside
// wall-clock reads — simulated delays belong to the engine.
func Delay() {
	time.Sleep(time.Second) // want `time.Sleep blocks on the wall clock`
}

func Poll() <-chan time.Time {
	return time.After(time.Second) // want `time.After blocks on the wall clock`
}

// Shard discipline, half two: raw goroutines escape the window-barrier
// synchronization of the sharded engine.
func Fork(fn func()) {
	go fn() // want `go statement in a seeded package escapes the shard barrier discipline`
}

// ForkJoined is a barrier-joined worker and says so.
func ForkJoined(fn func()) {
	go fn() //essvet:ignore determinism — barrier-joined window worker
}

// registry is package-level mutable state reachable from every shard.
var registry = map[string]int{} // want `package-level map registry in a seeded package is shared across shards`

// table hangs its map off a struct (per-engine ownership): fine, as are
// function-local maps.
type table struct{ m map[string]int }

func Local(t table) int {
	m := map[string]int{"a": 1}
	return m["a"] + len(t.m)
}
