// Fixtures for the determinism analyzer over the observability layer:
// this path matches internal/obs, so wall clocks are forbidden (metric
// values must derive from sim time or record counts), and snapshot
// emission must be sorted, never raw map order.
package obs

import (
	"fmt"
	"sort"
	"time"
)

type registry struct {
	counters map[string]uint64
}

func (r *registry) SpanClock() int64 {
	return time.Now().UnixMicro() // want `time.Now in a seeded package makes runs unrepeatable`
}

// SnapshotUnsorted emits counters in raw map order: two renderings of
// the same registry would differ, so the analyzer flags the loop.
func (r *registry) SnapshotUnsorted() []string {
	var out []string
	for name, v := range r.counters { // want `range over map appends in iteration order and the slice is never sorted`
		out = append(out, fmt.Sprintf("%s %d", name, v))
	}
	return out
}

// Snapshot is the required collect-sort-emit idiom: keys gathered, then
// sorted, then read back in key order.
func (r *registry) Snapshot() []string {
	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]string, 0, len(names))
	for _, name := range names {
		out = append(out, fmt.Sprintf("%s %d", name, r.counters[name]))
	}
	return out
}

// TextUnsorted writes directly from the map range — flagged even though
// nothing is appended.
func (r *registry) TextUnsorted() {
	for name, v := range r.counters { // want `range over map emits in iteration order`
		fmt.Printf("%s %d\n", name, v)
	}
}
