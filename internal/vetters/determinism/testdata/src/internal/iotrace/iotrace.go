// Fixtures for the determinism analyzer over the request-tracing
// layer: this path matches internal/iotrace, so journaled events may
// only be stamped with simulation time — a wall clock here would make
// the exported trace differ between same-seed runs even though every
// simulated event is identical.
package iotrace

import (
	"math/rand"
	"time"
)

type event struct {
	Time int64
	Req  uint64
}

type journal struct {
	events []event
}

// AddWallClocked stamps the event with the host clock instead of the
// engine's virtual time — the exact bug the gate exists to catch.
func (j *journal) AddWallClocked(req uint64) {
	j.events = append(j.events, event{
		Time: time.Now().UnixMicro(), // want `time.Now in a seeded package makes runs unrepeatable`
		Req:  req,
	})
}

// SampleDrop drops events via the process-wide rand source, so two
// same-seed runs would keep different journal suffixes.
func (j *journal) SampleDrop() bool {
	return rand.Intn(100) < 5 // want `global rand.Intn draws from the process-wide source`
}

// Add is the required form: the caller passes the simulation clock and
// any sampling derives from an explicitly seeded generator.
func (j *journal) Add(now int64, req uint64, r *rand.Rand) {
	if r != nil && r.Intn(100) < 5 {
		return
	}
	j.events = append(j.events, event{Time: now, Req: req})
}
