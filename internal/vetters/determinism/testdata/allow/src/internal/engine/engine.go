// Package engine is a deterministic package swept into the gates by
// the broadened -detpkgs=internal/ this suite runs with; unlike its
// essd sibling it is not on the allowlist, so wall-clock use here must
// still be flagged.
package engine

import "time"

func Step() time.Time {
	return time.Now() // want `time.Now in a seeded package`
}
