// Package essd stands in for the daemon boundary: this suite gates all
// of internal/ via -detpkgs, and the default -detallow must still
// exempt the daemon — wall clocks, goroutines, and package state are
// its job. Nothing in this file may be flagged.
package essd

import "time"

var sessions = map[string]int{}

func Serve() time.Time {
	go func() { sessions["x"]++ }()
	return time.Now()
}
