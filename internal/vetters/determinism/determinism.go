// Package determinism defines an analyzer guarding the reproducibility
// invariant of the simulation and synthesis layers: every experiment
// and every synthetic trace must be a pure function of its seed. Wall
// clocks and the process-global math/rand source break that silently —
// runs still succeed, they are just unrepeatable — so their use is
// forbidden in the gated packages (internal/sim, internal/synth,
// internal/cluster, internal/apps, internal/obs, internal/iotrace by
// default; see -detpkgs). The observability and tracing layers are
// gated for the same reason: their snapshots and journals must be
// byte-identical across same-seed runs, so metric values and event
// timestamps may never derive from wall time.
//
// The analyzer also flags, in every package, range-over-map loops whose
// bodies emit — print, write, encode, or append into a slice that is
// never sorted afterwards — because Go randomizes map iteration order
// and such loops make output nondeterministic run to run. The fix is
// the usual one: collect the keys, sort them, then emit in key order.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"essio/internal/vetters/vetutil"
)

// DefaultGates lists the package-path substrings in which wall-clock
// and global-randomness use is forbidden. The sharded-simulation layers
// (sim, cluster, pvm, ethernet) are additionally held to the shard
// rules: no raw goroutines outside the barrier discipline and no
// package-level maps reachable from several shards at once.
const DefaultGates = "internal/sim,internal/synth,internal/cluster,internal/apps,internal/obs,internal/pvm,internal/ethernet,internal/iotrace"

// DefaultAllow lists package-path substrings exempt from the gates even
// when -detpkgs matches them. The daemon boundary lives here: essd
// serves real traffic, so wall clocks, goroutines, and the network are
// its job — only the deterministic machinery it invokes is gated. The
// allowlist keeps that exemption stable under broadened -detpkgs
// sweeps (e.g. auditing with -detpkgs=internal/).
const DefaultAllow = "internal/essd"

// name is the analyzer name, referenced from run without creating an
// initialization cycle through Analyzer.
const name = "determinism"

// Analyzer is the determinism analyzer.
var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "forbid wall clocks, global math/rand, and unsorted map-order output\n\n" +
		"Simulation and synthesis packages must derive all randomness from an\n" +
		"explicit seed: time.Now/time.Since and the package-level math/rand\n" +
		"functions are flagged there. In every package, a range over a map whose\n" +
		"body prints, writes, encodes, or appends without a subsequent sort is\n" +
		"flagged, because map iteration order changes between runs.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var (
	gates string
	allow string
)

func init() {
	Analyzer.Flags.StringVar(&gates, "detpkgs", DefaultGates,
		"comma-separated package-path substrings where wall-clock/global-rand use is forbidden")
	Analyzer.Flags.StringVar(&allow, "detallow", DefaultAllow,
		"comma-separated package-path substrings exempt from -detpkgs gating (daemon-boundary packages)")
}

// randConstructors are the math/rand package-level functions that build
// explicitly seeded generators and are therefore allowed.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ignores := vetutil.ParseIgnores(pass)
	gated := vetutil.PathGated(pass.Pkg.Path(), gates) &&
		!vetutil.PathGated(pass.Pkg.Path(), allow)
	if gated {
		checkClockAndRand(pass, ins, ignores)
		checkShardSharing(pass, ins, ignores)
	}
	checkMapOrder(pass, ins, ignores)
	return nil, nil
}

// checkClockAndRand flags time.Now/time.Since and package-level
// math/rand functions in gated packages.
func checkClockAndRand(pass *analysis.Pass, ins *inspector.Inspector, ignores *vetutil.Ignores) {
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		fn := typeutil.StaticCallee(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return
		}
		if vetutil.InTestFile(pass.Fset, call.Pos()) ||
			ignores.Suppressed(call.Pos(), name) {
			return
		}
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			return // methods (e.g. (*rand.Rand).Intn) are fine: the source is explicit
		}
		switch fn.Pkg().Path() {
		case "time":
			switch fn.Name() {
			case "Now", "Since", "Until":
				pass.Reportf(call.Pos(),
					"time.%s in a seeded package makes runs unrepeatable; thread sim.Time or a seed-derived value instead",
					fn.Name())
			case "Sleep", "After", "Tick", "AfterFunc", "NewTimer", "NewTicker":
				pass.Reportf(call.Pos(),
					"time.%s blocks on the wall clock; simulated delays must go through the engine (After/Every/Proc.Sleep)",
					fn.Name())
			}
		case "math/rand", "math/rand/v2":
			if !randConstructors[fn.Name()] {
				pass.Reportf(call.Pos(),
					"global rand.%s draws from the process-wide source; use an explicitly seeded rand.New(...) generator",
					fn.Name())
			}
		}
	})
}

// checkShardSharing enforces the shard discipline in gated packages:
// raw go statements bypass the window-barrier synchronization the
// sharded engine provides (only barrier-joined workers, annotated with
// //essvet:ignore determinism, may spawn), and package-level maps are
// mutable state reachable from every shard at once — a data race the
// moment two engines advance in parallel.
func checkShardSharing(pass *analysis.Pass, ins *inspector.Inspector, ignores *vetutil.Ignores) {
	ins.Preorder([]ast.Node{(*ast.GoStmt)(nil)}, func(n ast.Node) {
		g := n.(*ast.GoStmt)
		if vetutil.InTestFile(pass.Fset, g.Pos()) ||
			ignores.Suppressed(g.Pos(), name) {
			return
		}
		pass.Reportf(g.Pos(),
			"go statement in a seeded package escapes the shard barrier discipline; spawn through the engine, or annotate a barrier-joined worker with //essvet:ignore determinism")
	})
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, nm := range vs.Names {
					obj := pass.TypesInfo.Defs[nm]
					if obj == nil {
						continue
					}
					if _, isMap := obj.Type().Underlying().(*types.Map); !isMap {
						continue
					}
					if vetutil.InTestFile(pass.Fset, nm.Pos()) ||
						ignores.Suppressed(nm.Pos(), name) {
						continue
					}
					pass.Reportf(nm.Pos(),
						"package-level map %s in a seeded package is shared across shards without synchronization; hang it off a per-engine or per-node struct", nm.Name)
				}
			}
		}
	}
}

// emitNames are method names whose call inside a map-range body writes
// output in iteration order.
var emitNames = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true, "Fprintf": true, "Fprintln": true, "Fprint": true,
	"Printf": true, "Println": true, "Print": true,
}

// fmtEmit are fmt package functions that emit (Sprint* only formats).
var fmtEmit = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// sortFuncs are the sort/slices functions that impose an order on the
// slice passed as their first argument.
var sortFuncs = map[string]map[string]bool{
	"sort": {
		"Sort": true, "Stable": true, "Slice": true, "SliceStable": true,
		"Strings": true, "Ints": true, "Float64s": true,
	},
	"slices": {"Sort": true, "SortFunc": true, "SortStableFunc": true},
}

// isSortCall reports the object of the slice being sorted when call is
// a recognized sort, or nil. Besides the sort/slices standard library
// entry points, any function whose name starts with "sort" (such as a
// package-local sortBinsByV helper) counts as sorting its argument.
func isSortCall(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	fn := typeutil.StaticCallee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || len(call.Args) == 0 {
		return nil
	}
	localSorter := strings.HasPrefix(fn.Name(), "sort") || strings.HasPrefix(fn.Name(), "Sort")
	if !sortFuncs[fn.Pkg().Path()][fn.Name()] && !localSorter {
		return nil
	}
	// Unwrap adapter layers like sort.Sort(sort.Reverse(sort.IntSlice(x))).
	arg := call.Args[0]
	for {
		inner, ok := arg.(*ast.CallExpr)
		if !ok || len(inner.Args) == 0 {
			break
		}
		arg = inner.Args[0]
	}
	id, ok := arg.(*ast.Ident)
	if !ok {
		return nil
	}
	return pass.TypesInfo.Uses[id]
}

// checkMapOrder flags map-range loops that emit in iteration order.
func checkMapOrder(pass *analysis.Pass, ins *inspector.Inspector, ignores *vetutil.Ignores) {
	ins.WithStack([]ast.Node{(*ast.RangeStmt)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		rng := n.(*ast.RangeStmt)
		if _, ok := pass.TypesInfo.TypeOf(rng.X).Underlying().(*types.Map); !ok {
			return true
		}
		if vetutil.InTestFile(pass.Fset, rng.Pos()) ||
			ignores.Suppressed(rng.Pos(), name) {
			return true
		}

		var emitCall *ast.CallExpr
		appended := make(map[types.Object]bool)
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok || emitCall != nil {
				return emitCall == nil
			}
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "append" && len(call.Args) > 0 {
					if id, ok := call.Args[0].(*ast.Ident); ok {
						if obj := pass.TypesInfo.Uses[id]; obj != nil {
							appended[obj] = true
						}
					}
				}
				if fun.Name == "print" || fun.Name == "println" {
					if _, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); ok {
						emitCall = call
					}
				}
			case *ast.SelectorExpr:
				fn := typeutil.StaticCallee(pass.TypesInfo, call)
				if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && fmtEmit[fn.Name()] {
					emitCall = call
					return false
				}
				// Method call that writes: receiver order = map order.
				if fn != nil {
					if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && emitNames[fn.Name()] {
						emitCall = call
						return false
					}
				}
			}
			return true
		})

		if emitCall != nil {
			pass.Reportf(rng.Pos(),
				"range over map emits in iteration order, which Go randomizes; collect and sort the keys, then emit in key order")
			return true
		}
		if len(appended) == 0 {
			return true
		}
		// Appends are fine when some appended slice is sorted after the
		// loop in the same enclosing function body (the collect-sort-emit
		// idiom); otherwise the slice keeps map order.
		var encl ast.Node
		for i := len(stack) - 1; i >= 0; i-- {
			if fd, ok := stack[i].(*ast.FuncDecl); ok {
				encl = fd.Body
				break
			}
			if fl, ok := stack[i].(*ast.FuncLit); ok {
				encl = fl.Body
				break
			}
		}
		if encl == nil {
			return true
		}
		sortedAfter := false
		ast.Inspect(encl, func(m ast.Node) bool {
			if sortedAfter {
				return false
			}
			call, ok := m.(*ast.CallExpr)
			if !ok || call.Pos() < rng.End() {
				return true
			}
			if obj := isSortCall(pass, call); obj != nil && appended[obj] {
				sortedAfter = true
			}
			return true
		})
		if !sortedAfter {
			pass.Reportf(rng.Pos(),
				"range over map appends in iteration order and the slice is never sorted; sort it (or the keys) before use")
		}
		return true
	})
}
