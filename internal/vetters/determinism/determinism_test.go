package determinism_test

import (
	"path/filepath"
	"testing"

	"essio/internal/vetters/vettest"
)

func TestDeterminism(t *testing.T) { vettest.Run(t, "determinism") }

// TestDeterminismAllowlist broadens the gates to every internal/
// package and checks that the default -detallow still exempts the
// daemon boundary (internal/essd) while sibling packages are gated.
func TestDeterminismAllowlist(t *testing.T) {
	vettest.RunDir(t, "determinism",
		filepath.Join("testdata", "allow", "src"),
		"-determinism.detpkgs=internal/")
}
