package determinism_test

import (
	"testing"

	"essio/internal/vetters/vettest"
)

func TestDeterminism(t *testing.T) { vettest.Run(t, "determinism") }
