// Package vettest is the golden-file test harness for the essvet
// analyzers, an offline analogue of go/analysis/analysistest that
// exercises the real delivery pipeline end to end: it builds
// cmd/essvet, copies an analyzer's testdata tree into a throwaway
// module, runs `go vet -vettool=essvet -json -<analyzer> ./...` there,
// and diffs the emitted diagnostics against `// want` expectations in
// the testdata sources.
//
// Expectation syntax, on the line the diagnostic is reported at:
//
//	x.f = span // want `regexp matching the message`
//	y()        // want `first` `second`
//
// Both backquoted and double-quoted regexps are accepted. Every want
// must be matched by a diagnostic on its line and every diagnostic
// must be claimed by a want, so suites encode positive and negative
// cases in the same files.
package vettest

import (
	"bytes"
	"fmt"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"essio/internal/vetters/sarif"
)

// Run checks one analyzer against the testdata tree rooted next to the
// calling test (testdata/src/** becomes the throwaway module).
func Run(t *testing.T, analyzer string) {
	t.Helper()
	RunDir(t, analyzer, filepath.Join("testdata", "src"))
}

// RunDir is Run against an explicit testdata tree, with optional extra
// analyzer flags (already in go vet spelling, e.g.
// "-determinism.detpkgs=internal/"). Suites use it to pin down flag
// behaviour — alternate gates, allowlists — that the default tree
// cannot express, since want expectations are baked into the sources.
func RunDir(t *testing.T, analyzer, src string, flags ...string) {
	t.Helper()
	root := repoRoot(t)
	tool := buildTool(t, root)

	mod := t.TempDir()
	wants, err := copyTree(src, mod)
	if err != nil {
		t.Fatalf("copy testdata: %v", err)
	}
	if err := os.WriteFile(filepath.Join(mod, "go.mod"),
		[]byte("module essvet.test\n\ngo 1.22\n"), 0o666); err != nil {
		t.Fatal(err)
	}

	diags := runVet(t, tool, mod, analyzer, flags)
	compare(t, mod, analyzer, wants, diags)
}

// want is one expected diagnostic.
type want struct {
	file string // path relative to the module root
	line int
	re   *regexp.Regexp
	hit  bool
}

// diag is one diagnostic go vet reported.
type diag struct {
	file    string
	line    int
	message string
	claimed bool
}

var (
	buildOnce sync.Once
	builtTool string
	buildErr  error
)

// buildTool compiles cmd/essvet once per test process.
func buildTool(t *testing.T, root string) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "essvet-tool-*")
		if err != nil {
			buildErr = err
			return
		}
		builtTool = filepath.Join(dir, "essvet")
		cmd := exec.Command("go", "build", "-o", builtTool, "./cmd/essvet")
		cmd.Dir = root
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = fmt.Errorf("build essvet: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return builtTool
}

// repoRoot locates the module root of the repository under test.
func repoRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		t.Fatal("vettest must run inside the repository module")
	}
	return filepath.Dir(gomod)
}

// wantRE extracts expectation regexps from a source line.
var wantRE = regexp.MustCompile(`//\s*want\s+(.+)$`)

// copyTree copies the testdata source tree into the module root and
// parses // want expectations along the way.
func copyTree(src, dst string) ([]*want, error) {
	var wants []*want
	err := filepath.WalkDir(src, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		if d.IsDir() {
			if rel == "." {
				return nil
			}
			return os.MkdirAll(filepath.Join(dst, rel), 0o777)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if strings.HasSuffix(rel, ".go") {
			for i, line := range strings.Split(string(data), "\n") {
				m := wantRE.FindStringSubmatch(line)
				if m == nil {
					continue
				}
				for _, pat := range splitPatterns(m[1]) {
					re, err := regexp.Compile(pat)
					if err != nil {
						return fmt.Errorf("%s:%d: bad want pattern %q: %v", rel, i+1, pat, err)
					}
					wants = append(wants, &want{file: rel, line: i + 1, re: re})
				}
			}
		}
		return os.WriteFile(filepath.Join(dst, rel), data, 0o666)
	})
	return wants, err
}

// splitPatterns parses the payload of a want comment: a sequence of
// backquoted or double-quoted regexps.
func splitPatterns(s string) []string {
	var pats []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return pats
			}
			pats = append(pats, s[1:1+end])
			s = strings.TrimSpace(s[2+end:])
		case '"':
			// Re-quote through the Go lexer to honor escapes.
			rest := s[1:]
			end := strings.IndexByte(rest, '"')
			for end > 0 && rest[end-1] == '\\' {
				next := strings.IndexByte(rest[end+1:], '"')
				if next < 0 {
					end = -1
					break
				}
				end += 1 + next
			}
			if end < 0 {
				return pats
			}
			unq, err := strconv.Unquote(s[:end+2])
			if err != nil {
				return pats
			}
			pats = append(pats, unq)
			s = strings.TrimSpace(s[end+2:])
		default:
			return pats
		}
	}
	return pats
}

// runVet executes the vet tool over the throwaway module, enabling only
// the analyzer under test, and parses the JSON diagnostics.
func runVet(t *testing.T, tool, mod, analyzer string, flags []string) []*diag {
	t.Helper()
	args := append([]string{"vet", "-vettool=" + tool, "-json", "-" + analyzer}, flags...)
	cmd := exec.Command("go", append(args, "./...")...)
	cmd.Dir = mod
	cmd.Env = append(os.Environ(), "GOWORK=off", "GOPROXY=off", "GOFLAGS=")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	// go vet exits non-zero when diagnostics are reported; that is not a
	// harness failure. A failed build or tool crash leaves no JSON.
	runErr := cmd.Run()

	diags, perr := parseVetJSON(stdout.Bytes(), stderr.Bytes(), mod)
	if perr != nil {
		t.Fatalf("go vet output not parseable: %v\nstderr:\n%s", perr, stderr.String())
	}
	if runErr != nil && diags == nil && stdout.Len() == 0 && stderr.Len() > 0 {
		t.Fatalf("go vet failed: %v\n%s", runErr, stderr.String())
	}
	return diags
}

// parseVetJSON decodes the stream of per-package JSON objects go vet
// -json emits through the shared sarif parser (which also sorts), then
// relativizes positions to the throwaway module root.
func parseVetJSON(stdout, stderr []byte, mod string) ([]*diag, error) {
	parsed, err := sarif.ParseVetJSON(stdout, stderr)
	if err != nil {
		return nil, err
	}
	var diags []*diag
	for _, d := range parsed {
		file := d.File
		if rel, err := filepath.Rel(mod, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
		diags = append(diags, &diag{file: file, line: d.Line, message: d.Message})
	}
	return diags, nil
}

// compare matches diagnostics against expectations both ways.
func compare(t *testing.T, mod, analyzer string, wants []*want, diags []*diag) {
	t.Helper()
	for _, w := range wants {
		for _, d := range diags {
			if d.claimed || d.file != w.file || d.line != w.line || !w.re.MatchString(d.message) {
				continue
			}
			d.claimed, w.hit = true, true
			break
		}
		if !w.hit {
			t.Errorf("%s:%d: expected %s diagnostic matching %q, got none", w.file, w.line, analyzer, w.re)
		}
	}
	for _, d := range diags {
		if !d.claimed {
			t.Errorf("%s:%d: unexpected %s diagnostic: %s", d.file, d.line, analyzer, d.message)
		}
	}
}
