// Package synth generates synthetic driver traces from a fitted
// model.WorkloadModel. The generator is a trace.Source: a seeded,
// deterministic sampler that emits an unbounded, time-ordered record
// stream with the model's request-size mixture, read/write mix,
// burst-aware arrival process, spatial band distribution with hot-sector
// skew, and run-length sequentiality — so synthetic workloads flow
// through every existing consumer (analysis accumulators,
// core.Characterize, the encoders, replay.Replay) unchanged.
//
// Scaling knobs turn one measured workload into a family: stretch the
// duration arbitrarily, change the node count (aggregate rate scales
// proportionally; per-node rate is preserved), multiply the request rate,
// or override the read fraction.
package synth

import (
	"fmt"
	"io"
	"math"
	"math/rand/v2"

	"essio/internal/model"
	"essio/internal/sim"
	"essio/internal/trace"
)

// Options are the generator's scaling knobs. The zero value reproduces
// the model as measured, unbounded.
type Options struct {
	// Seed selects the deterministic random stream; equal seeds yield
	// identical traces.
	Seed uint64
	// Duration bounds the generated trace in virtual time (0 =
	// unbounded; Next never returns io.EOF).
	Duration sim.Duration
	// Nodes overrides the node count (0 = the model's). Aggregate
	// request rate scales with the node count, per-node rate stays as
	// measured.
	Nodes int
	// RateMultiplier scales the arrival rate (0 = 1).
	RateMultiplier float64
	// OverrideReadFraction replaces every origin's read share with
	// ReadFraction when set.
	OverrideReadFraction bool
	ReadFraction         float64
	// Start is the timestamp of the first record (default 0).
	Start sim.Time
}

// maxZipfRanks bounds the per-band inverse-CDF table a generator builds
// for hot-sector sampling.
const maxZipfRanks = 1 << 16

// Generator emits a synthetic trace from a workload model. It implements
// trace.Source; records come out in nondecreasing time order.
type Generator struct {
	m    *model.WorkloadModel
	opts Options
	rng  *rand.Rand

	gapScale float64 // divisor applied to sampled gaps
	nodes    int
	limit    sim.Time // 0 = unbounded

	origins []originSampler
	originP []float64 // cumulative

	bands []bandSampler
	bandP []float64 // cumulative

	baseGap, burstGap sampler
	baseCal, burstCal float64 // per-state gap calibration factors
	pToBurst, pToBase float64 // rebalanced per-second transitions
	pending           sampler

	burst     bool // current arrival state
	t         sim.Time
	started   bool
	done      bool
	sec       int64 // seconds since Start already state-stepped
	burstSecs int64 // seconds spent in the burst state so far

	runs map[uint8]run
}

// run is a node's in-progress sequential run: the next sector and the
// band it is confined to.
type run struct {
	end, lo, hi uint32
}

type originSampler struct {
	origin       trace.Origin
	readFraction float64
	sizes        sampler
}

type bandSampler struct {
	lo, width uint32
	ranks     []float64 // cumulative Zipf CDF over sector ranks
}

// sampler draws from a discrete histogram by inverse CDF.
type sampler struct {
	vals []int
	cum  []float64
}

func newSampler(bins []model.HistBin) sampler {
	s := sampler{vals: make([]int, len(bins)), cum: make([]float64, len(bins))}
	acc := 0.0
	for i, b := range bins {
		s.vals[i] = b.V
		acc += b.P
		s.cum[i] = acc
	}
	return s
}

func (s *sampler) empty() bool { return len(s.vals) == 0 }

func (s *sampler) draw(rng *rand.Rand) int {
	u := rng.Float64() * s.cum[len(s.cum)-1]
	lo, hi := 0, len(s.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return s.vals[lo]
}

// New returns a deterministic generator for m under the given options.
func New(m *model.WorkloadModel, opts Options) (*Generator, error) {
	if m.Requests == 0 {
		return nil, fmt.Errorf("synth: model %q is empty", m.Label)
	}
	if len(m.Origins) == 0 {
		return nil, fmt.Errorf("synth: model %q has no origin mixture", m.Label)
	}
	g := &Generator{
		m:    m,
		opts: opts,
		rng:  rand.New(rand.NewPCG(opts.Seed, 0x657373696f2d7331)),
	}
	g.nodes = opts.Nodes
	if g.nodes == 0 {
		g.nodes = m.Nodes
	}
	if g.nodes <= 0 || g.nodes > 256 {
		return nil, fmt.Errorf("synth: node count %d out of range [1,256]", g.nodes)
	}
	mult := opts.RateMultiplier
	if mult == 0 {
		mult = 1
	}
	if mult < 0 {
		return nil, fmt.Errorf("synth: negative rate multiplier %g", mult)
	}
	g.gapScale = mult * float64(g.nodes) / float64(m.Nodes)
	if opts.Duration > 0 {
		g.limit = opts.Start.Add(opts.Duration)
	}

	for _, o := range m.Origins {
		tag, err := trace.ParseOrigin(o.Origin)
		if err != nil {
			return nil, fmt.Errorf("synth: model %q: %w", m.Label, err)
		}
		rf := o.ReadFraction
		if opts.OverrideReadFraction {
			rf = opts.ReadFraction
			if rf < 0 || rf > 1 {
				return nil, fmt.Errorf("synth: read fraction %g out of [0,1]", rf)
			}
		}
		g.origins = append(g.origins, originSampler{
			origin:       tag,
			readFraction: rf,
			sizes:        newSampler(o.SizeSectors),
		})
		prev := 0.0
		if len(g.originP) > 0 {
			prev = g.originP[len(g.originP)-1]
		}
		g.originP = append(g.originP, prev+o.P)
	}

	for _, b := range m.Bands {
		g.bands = append(g.bands, newBandSampler(b))
		prev := 0.0
		if len(g.bandP) > 0 {
			prev = g.bandP[len(g.bandP)-1]
		}
		g.bandP = append(g.bandP, prev+b.P)
	}
	if len(g.bands) == 0 {
		return nil, fmt.Errorf("synth: model %q has no spatial bands", m.Label)
	}

	g.baseGap = newSampler(m.Arrival.BaseGapUS)
	g.burstGap = newSampler(m.Arrival.BurstGapUS)
	if g.baseGap.empty() && g.burstGap.empty() {
		// No fitted gaps (single-record model): fall back to the
		// overall inter-arrival histogram, then to a constant rate.
		g.baseGap = newSampler(m.InterArrivalUS)
		if g.baseGap.empty() {
			us := int(1e6 / math.Max(m.MeanRate, 1))
			g.baseGap = newSampler([]model.HistBin{{V: bucketOf(us), P: 1}})
		}
	}
	if g.baseGap.empty() {
		g.baseGap = g.burstGap
	}
	if g.burstGap.empty() {
		g.burstGap = g.baseGap
	}
	g.pending = newSampler(m.Pending)
	g.baseCal = calibrate(g.baseGap, m.Arrival.BaseRate, m.MeanRate)
	g.burstCal = calibrate(g.burstGap, m.Arrival.BurstRate, m.MeanRate)

	// The measured state occupancy PBase determines the long-run rate, but
	// on short phase-structured traces the per-second transition MLEs can
	// imply a different stationary distribution. Rebalance the chain so its
	// stationary occupancy equals the measured one, preserving the overall
	// mixing speed (the sum of the transition probabilities).
	mix := m.Arrival.PBaseToBurst + m.Arrival.PBurstToBase
	g.pToBurst = mix * (1 - m.Arrival.PBase)
	g.pToBase = mix * m.Arrival.PBase

	g.t = opts.Start
	g.burst = g.rng.Float64() >= m.Arrival.PBase
	g.runs = make(map[uint8]run)
	return g, nil
}

// calibrate returns the multiplicative gap correction aligning a state's
// sampler with its fitted rate. Resampling a log2-bucketed histogram is
// uniform within each bucket, while the measured gaps may concentrate
// near bucket edges, so the raw sampler mean can drift from 1/rate by up
// to 1.5x; scaling the positive gaps restores the state's request rate
// without changing the distribution's shape.
func calibrate(s sampler, rate, fallbackRate float64) float64 {
	if rate <= 0 {
		rate = fallbackRate
	}
	if rate <= 0 {
		return 1
	}
	var mean, mass float64
	for i, v := range s.vals {
		p := s.cum[i]
		if i > 0 {
			p -= s.cum[i-1]
		}
		mass += p
		if v >= 0 {
			// Mean of a uniform draw over [low, 2*low).
			mean += p * 1.5 * float64(model.GapBucketLow(v))
		}
	}
	if mass <= 0 || mean <= 0 {
		return 1
	}
	return (1e6 / rate) * mass / mean
}

// bucketOf is the log2 bucket holding a gap of us microseconds.
func bucketOf(us int) int {
	b := 0
	for us > 1 {
		us >>= 1
		b++
	}
	return b
}

// newBandSampler precomputes the inverse CDF of the band's Zipf
// rank-frequency law, capped at maxZipfRanks ranks.
func newBandSampler(b model.BandModel) bandSampler {
	n := b.Sectors
	if n < 1 {
		n = 1
	}
	if n > maxZipfRanks {
		n = maxZipfRanks
	}
	bs := bandSampler{lo: b.Lo, width: b.Hi - b.Lo}
	if n == 1 || b.ZipfS == 0 {
		// Uniform within the band; an empty rank table signals it.
		return bs
	}
	bs.ranks = make([]float64, n)
	acc := 0.0
	for r := 0; r < n; r++ {
		acc += zipfWeight(r+1, b.ZipfS)
		bs.ranks[r] = acc
	}
	return bs
}

func zipfWeight(rank int, s float64) float64 {
	return math.Pow(float64(rank), -s)
}

// sector draws a starting sector within the band: a Zipf rank mapped onto
// the band by a fixed multiplicative shuffle, so the band's hot "sectors"
// are stable positions across the whole generated trace.
func (b *bandSampler) sector(rng *rand.Rand) uint32 {
	if b.width == 0 {
		return b.lo
	}
	if b.ranks == nil {
		return b.lo + uint32(rng.Uint64()%uint64(b.width))
	}
	u := rng.Float64() * b.ranks[len(b.ranks)-1]
	lo, hi := 0, len(b.ranks)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if b.ranks[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	// Knuth multiplicative shuffle spreads ranks across the band.
	return b.lo + uint32((uint64(lo)*2654435761)%uint64(b.width))
}

// Next emits the next synthetic record. It returns io.EOF once the
// configured duration is exhausted; with no duration it never ends.
func (g *Generator) Next() (trace.Record, error) {
	if g.done {
		return trace.Record{}, io.EOF
	}
	if g.started {
		g.advance()
	} else {
		g.started = true // first record fires at Start
	}
	if g.limit > 0 && g.t >= g.limit {
		g.done = true
		return trace.Record{}, io.EOF
	}
	return g.emit(), nil
}

// advance moves the clock to the next arrival: a gap sampled from the
// current state's histogram, with the modulating chain stepped at every
// second boundary the gap crosses. A state flip mid-gap truncates the
// gap at the flip boundary and redraws the remaining wait from the new
// state — the modulated rate takes effect immediately, so a burst phase
// that begins inside a long base-state silence starts emitting at the
// boundary instead of silently consuming the rest of the silence (which
// would erode the fitted state occupancy and with it the mean rate).
func (g *Generator) advance() {
	for {
		gs, cal := &g.baseGap, g.baseCal
		if g.burst {
			gs, cal = &g.burstGap, g.burstCal
		}
		v := gs.draw(g.rng)
		if v < 0 {
			return // zero gap: the next request shares this timestamp
		}
		low := model.GapBucketLow(v)
		gap := low + sim.Duration(g.rng.Int64N(int64(low)))
		gap = sim.Duration(float64(gap)*cal/g.gapScale + 0.5)
		if gap <= 0 {
			gap = 1
		}
		target := g.t.Add(gap)

		flipped := false
		for {
			boundary := g.opts.Start.Add(sim.Duration(g.sec+1) * sim.Second)
			if boundary > target {
				break
			}
			g.sec++
			flipped = g.step()
			if flipped {
				g.t = boundary
				break
			}
		}
		if !flipped {
			g.t = target
			return
		}
	}
}

// steerTau is the occupancy-correction horizon in seconds: a deficit of
// one second shifts the flip odds by 1/steerTau.
const steerTau = 10.0

// step rolls the modulating chain at one second boundary and reports
// whether the state flipped. The flip probabilities are steered toward
// the fitted occupancy: a typical trace holds only tens of phase cycles,
// so an uncorrected chain's realized occupancy — and with it the mean
// rate — carries ~20% relative noise per run. The steering nudges the
// odds in proportion to the accumulated occupancy deficit, leaving phase
// lengths locally geometric.
func (g *Generator) step() bool {
	up, down := g.pToBurst, g.pToBase
	d := (1-g.m.Arrival.PBase)*float64(g.sec) - float64(g.burstSecs)
	if d > 0 {
		up *= 1 + d/steerTau
		down /= 1 + d/steerTau
	} else {
		down *= 1 - d/steerTau
		up /= 1 - d/steerTau
	}
	flipped := false
	if g.burst {
		if g.rng.Float64() < down {
			g.burst = false
			flipped = true
		}
	} else {
		if g.rng.Float64() < up {
			g.burst = true
			flipped = true
		}
	}
	if g.burst {
		g.burstSecs++
	}
	return flipped
}

// emit samples one record at the current clock.
func (g *Generator) emit() trace.Record {
	// Mixture component.
	oi := searchCum(g.originP, g.rng.Float64()*g.originP[len(g.originP)-1])
	o := &g.origins[oi]

	r := trace.Record{
		Time:   g.t,
		Origin: o.origin,
		Op:     trace.Write,
		Node:   uint8(g.rng.Uint64() % uint64(g.nodes)),
	}
	if g.rng.Float64() < o.readFraction {
		r.Op = trace.Read
	}
	r.Count = uint16(o.sizes.draw(g.rng))
	if !g.pending.empty() {
		r.Pending = uint16(g.pending.draw(g.rng))
	}

	// Placement: continue the node's sequential run with probability
	// SeqP, otherwise draw a band and a skewed sector within it. A run
	// is confined to its band — continuation past the band boundary
	// wraps to the band start, like allocation wrapping within a zone —
	// so run length is independent of the band and long runs cannot
	// drift the spatial distribution away from the fitted proportions.
	if st, ok := g.runs[r.Node]; ok && g.rng.Float64() < g.m.SeqP &&
		st.lo+uint32(r.Count) <= st.hi {
		s := st.end
		if s+uint32(r.Count) > st.hi {
			s = st.lo
		}
		r.Sector = s
		g.runs[r.Node] = run{end: r.End(), lo: st.lo, hi: st.hi}
	} else {
		bi := searchCum(g.bandP, g.rng.Float64()*g.bandP[len(g.bandP)-1])
		r.Sector = g.bands[bi].sector(g.rng)
		if r.Sector+uint32(r.Count) > g.m.DiskSectors {
			if uint32(r.Count) >= g.m.DiskSectors {
				r.Sector = 0
			} else {
				r.Sector = g.m.DiskSectors - uint32(r.Count)
			}
		}
		lo := g.bands[bi].lo
		hi := lo + g.bands[bi].width
		if hi > g.m.DiskSectors {
			hi = g.m.DiskSectors
		}
		g.runs[r.Node] = run{end: r.End(), lo: lo, hi: hi}
	}
	return r
}

// searchCum finds the first index whose cumulative weight reaches u.
func searchCum(cum []float64, u float64) int {
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Generate drains up to n records from a fresh generator into a slice,
// the batch convenience over the streaming Source.
func Generate(m *model.WorkloadModel, opts Options, n int) ([]trace.Record, error) {
	g, err := New(m, opts)
	if err != nil {
		return nil, err
	}
	recs := make([]trace.Record, 0, n)
	for len(recs) < n {
		r, err := g.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return recs, err
		}
		recs = append(recs, r)
	}
	return recs, nil
}
