package synth

import (
	"io"
	"math"
	"math/rand"
	"testing"

	"essio/internal/model"
	"essio/internal/replay"
	"essio/internal/sim"
	"essio/internal/trace"
)

// baseModel fits a reference model from a deterministic handcrafted trace
// with the paper's three request populations (1 KB log writes, bursty
// 4 KB paging, sequential 16 KB data reads).
func baseModel(tb testing.TB) *model.WorkloadModel {
	tb.Helper()
	rng := rand.New(rand.NewSource(21))
	recs := make([]trace.Record, 0, 8000)
	t := sim.Time(0)
	seqEnd := uint32(0)
	for i := 0; i < 8000; i++ {
		var r trace.Record
		r.Node = uint8(rng.Intn(4))
		switch x := rng.Float64(); {
		case x < 0.4:
			r.Op = trace.Write
			r.Origin = trace.OriginLog
			r.Count = 2
			r.Sector = 1000000 + uint32(rng.Intn(500))*2
			t = t.Add(sim.Duration(20000 + rng.Intn(300000)))
		case x < 0.7:
			r.Op = trace.Write
			if rng.Float64() < 0.3 {
				r.Op = trace.Read
			}
			r.Origin = trace.OriginSwap
			r.Count = 8
			r.Sector = 40000 + uint32(rng.Intn(100))*8
			t = t.Add(sim.Duration(rng.Intn(3000)))
		default:
			r.Op = trace.Read
			r.Origin = trace.OriginData
			r.Count = 32
			if seqEnd != 0 && rng.Float64() < 0.7 {
				r.Sector = seqEnd
			} else {
				r.Sector = 150000 + uint32(rng.Intn(1000))*32
			}
			seqEnd = r.Sector + 32
			t = t.Add(sim.Duration(rng.Intn(20000)))
		}
		r.Time = t
		r.Pending = uint16(rng.Intn(4))
		recs = append(recs, r)
	}
	return model.FitSlice("base", recs, 0, 1024000, 0)
}

func collectFor(tb testing.TB, m *model.WorkloadModel, opts Options) []trace.Record {
	tb.Helper()
	g, err := New(m, opts)
	if err != nil {
		tb.Fatal(err)
	}
	recs, err := trace.Collect(g)
	if err != nil {
		tb.Fatal(err)
	}
	return recs
}

func TestDeterministicForSeed(t *testing.T) {
	m := baseModel(t)
	opts := Options{Seed: 9, Duration: 60 * sim.Second}
	a := collectFor(t, m, opts)
	b := collectFor(t, m, opts)
	if len(a) == 0 {
		t.Fatal("no records generated")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed produced %d then %d records", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at record %d: %v vs %v", i, a[i], b[i])
		}
	}

	opts.Seed = 10
	c := collectFor(t, m, opts)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestRecordsValidAndOrdered(t *testing.T) {
	m := baseModel(t)
	recs := collectFor(t, m, Options{Seed: 1, Duration: 120 * sim.Second})
	if len(recs) < 100 {
		t.Fatalf("only %d records in 120s", len(recs))
	}
	limit := sim.Time(0).Add(120 * sim.Second)
	for i, r := range recs {
		if i > 0 && r.Time < recs[i-1].Time {
			t.Fatalf("record %d goes back in time", i)
		}
		if r.Time >= limit {
			t.Fatalf("record %d at %v beyond duration", i, r.Time)
		}
		if r.End() > m.DiskSectors {
			t.Fatalf("record %d overruns the disk: %v", i, r)
		}
		if int(r.Node) >= m.Nodes {
			t.Fatalf("record %d on node %d of %d", i, r.Node, m.Nodes)
		}
		if r.Count == 0 {
			t.Fatalf("record %d has zero length", i)
		}
	}
}

func TestUnboundedGeneration(t *testing.T) {
	g, err := New(baseModel(t), Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		if _, err := g.Next(); err != nil {
			t.Fatalf("unbounded generator ended at record %d: %v", i, err)
		}
	}
}

func TestRateMultiplier(t *testing.T) {
	m := baseModel(t)
	n1 := len(collectFor(t, m, Options{Seed: 4, Duration: 120 * sim.Second}))
	n3 := len(collectFor(t, m, Options{Seed: 4, Duration: 120 * sim.Second, RateMultiplier: 3}))
	ratio := float64(n3) / float64(n1)
	if ratio < 2.2 || ratio > 3.8 {
		t.Fatalf("3x rate multiplier changed record count by %.2fx (%d -> %d)", ratio, n1, n3)
	}
}

func TestNodeScaling(t *testing.T) {
	m := baseModel(t) // fitted from 4 nodes
	recs := collectFor(t, m, Options{Seed: 5, Duration: 120 * sim.Second, Nodes: 8})
	n4 := len(collectFor(t, m, Options{Seed: 5, Duration: 120 * sim.Second}))
	for i, r := range recs {
		if int(r.Node) >= 8 {
			t.Fatalf("record %d on node %d with 8 nodes", i, r.Node)
		}
	}
	seen := make(map[uint8]bool)
	for _, r := range recs {
		seen[r.Node] = true
	}
	if len(seen) < 6 {
		t.Errorf("only %d of 8 nodes carried traffic", len(seen))
	}
	ratio := float64(len(recs)) / float64(n4)
	if ratio < 1.5 || ratio > 2.6 {
		t.Errorf("doubling nodes changed aggregate records by %.2fx, want ~2x", ratio)
	}
}

func TestReadFractionOverride(t *testing.T) {
	m := baseModel(t)
	allW := collectFor(t, m, Options{Seed: 6, Duration: 60 * sim.Second, OverrideReadFraction: true})
	for i, r := range allW {
		if r.Op != trace.Write {
			t.Fatalf("record %d is a read under a 0 read-fraction override", i)
		}
	}
	allR := collectFor(t, m, Options{Seed: 6, Duration: 60 * sim.Second, OverrideReadFraction: true, ReadFraction: 1})
	for i, r := range allR {
		if r.Op != trace.Read {
			t.Fatalf("record %d is a write under a 1 read-fraction override", i)
		}
	}
}

// TestRoundTripSelfConsistency is the subsystem's core property: a model
// fitted on a trace generated from that same model must be statistically
// indistinguishable (within tolerance) from the original, at more than
// one seed.
func TestRoundTripSelfConsistency(t *testing.T) {
	m := baseModel(t)
	tol := model.DefaultTolerance()
	for _, seed := range []uint64{1, 2} {
		g, err := New(m, Options{Seed: seed, Duration: 300 * sim.Second})
		if err != nil {
			t.Fatal(err)
		}
		refit := model.NewFitter("refit", 0, m.DiskSectors, m.BandSectors)
		if _, err := trace.Copy(refit, g); err != nil {
			t.Fatal(err)
		}
		d := model.Distance(m, refit.Model())
		if err := d.Check(tol); err != nil {
			t.Errorf("seed %d: %v\n%v", seed, err, d)
		}
	}
}

// TestSyntheticFlowsThroughReplay checks the acceptance path: generated
// records are plain trace records, so replay consumes them unchanged.
func TestSyntheticFlowsThroughReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("replay of a synthetic minute is not short")
	}
	m := baseModel(t)
	recs := collectFor(t, m, Options{Seed: 8, Duration: 30 * sim.Second})
	rep, err := replay.Replay(recs, replay.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != len(recs) {
		t.Fatalf("replayed %d of %d records", rep.Requests, len(recs))
	}
	if rep.Elapsed <= 0 || rep.PhysReqs == 0 {
		t.Fatalf("degenerate replay report: %+v", rep)
	}
}

func TestNewRejectsBadOptions(t *testing.T) {
	m := baseModel(t)
	if _, err := New(m, Options{Nodes: 1000}); err == nil {
		t.Error("accepted out-of-range node count")
	}
	if _, err := New(m, Options{RateMultiplier: -1}); err == nil {
		t.Error("accepted negative rate multiplier")
	}
	if _, err := New(m, Options{OverrideReadFraction: true, ReadFraction: 2}); err == nil {
		t.Error("accepted read fraction 2")
	}
	if _, err := New(&model.WorkloadModel{}, Options{}); err == nil {
		t.Error("accepted empty model")
	}
}

func TestGenerateBatch(t *testing.T) {
	m := baseModel(t)
	recs, err := Generate(m, Options{Seed: 2}, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 500 {
		t.Fatalf("Generate returned %d records, want 500", len(recs))
	}
}

func TestMeanRatePreserved(t *testing.T) {
	m := baseModel(t)
	recs := collectFor(t, m, Options{Seed: 11, Duration: 300 * sim.Second})
	rate := float64(len(recs)) / 300
	if math.Abs(rate-m.MeanRate)/m.MeanRate > 0.25 {
		t.Fatalf("generated rate %.2f vs fitted %.2f", rate, m.MeanRate)
	}
}

func TestEOFIsSticky(t *testing.T) {
	g, err := New(baseModel(t), Options{Seed: 1, Duration: sim.Second})
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := g.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := g.Next(); err != io.EOF {
		t.Fatalf("Next after EOF: %v", err)
	}
}
