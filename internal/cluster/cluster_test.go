package cluster

import (
	"testing"

	"essio/internal/kernel"
	"essio/internal/sim"
	"essio/internal/trace"
)

// smallCluster boots a 4-node machine (full 16 nodes is exercised by the
// experiment harness; 4 keeps unit tests fast).
func smallCluster(t *testing.T) *Cluster {
	t.Helper()
	c, err := New(Config{Nodes: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestBootAllNodes(t *testing.T) {
	c := smallCluster(t)
	if len(c.Nodes) != 4 {
		t.Fatalf("nodes = %d", len(c.Nodes))
	}
	for i, n := range c.Nodes {
		if !n.Booted().IsComplete() || n.Booted().Err() != nil {
			t.Fatalf("node %d not booted: %v", i, n.Booted().Err())
		}
		if n.Cfg.NodeID != uint8(i) {
			t.Fatalf("node %d has id %d", i, n.Cfg.NodeID)
		}
	}
	if len(c.NodeFS()) != 4 {
		t.Fatal("NodeFS wrong length")
	}
}

func TestInstallAndLaunchEverywhere(t *testing.T) {
	c := smallCluster(t)
	ran := make([]bool, 4)
	prog := &kernel.Program{
		Name: "probe", ImagePath: "/usr/bin/probe", TextBytes: 16 * 1024,
		Main: func(ctx *kernel.Process) {
			ctx.ComputeFlops(1e5)
			ran[ctx.Node().Cfg.NodeID] = true
		},
	}
	if err := c.Install(prog); err != nil {
		t.Fatal(err)
	}
	procs := c.Launch(prog)
	if len(procs) != 4 {
		t.Fatalf("launched %d", len(procs))
	}
	_, ok := c.WaitAll(procs, 10*sim.Minute)
	if !ok {
		t.Fatal("programs did not finish")
	}
	for i, r := range ran {
		if !r {
			t.Fatalf("rank on node %d never ran", i)
		}
	}
}

func TestTracingControlAndMerge(t *testing.T) {
	c := smallCluster(t)
	c.StartTracing()
	c.RunFor(2 * sim.Minute)
	c.StopTracing()
	traces := c.Traces()
	nonEmpty := 0
	for _, tr := range traces {
		if len(tr) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty == 0 {
		t.Fatal("no node traced anything in 2 minutes of daemon activity")
	}
	merged := c.MergedTrace()
	total := 0
	for _, tr := range traces {
		total += len(tr)
	}
	if len(merged) != total {
		t.Fatalf("merged %d records, want %d", len(merged), total)
	}
	for i := 1; i < len(merged); i++ {
		if merged[i].Time < merged[i-1].Time {
			t.Fatal("merged trace not time-ordered")
		}
	}
	// Records must carry their node ids.
	seen := map[uint8]bool{}
	for _, r := range merged {
		seen[r.Node] = true
	}
	if len(seen) != nonEmpty {
		t.Fatalf("merged trace covers %d nodes, want %d", len(seen), nonEmpty)
	}
}

func TestStopTracingStopsRecords(t *testing.T) {
	c := smallCluster(t)
	c.StartTracing()
	c.RunFor(time1)
	c.StopTracing()
	counts := make([]int, len(c.Nodes))
	for i, tr := range c.Traces() {
		counts[i] = len(tr)
	}
	c.RunFor(2 * sim.Minute)
	for i, tr := range c.Traces() {
		if len(tr) != counts[i] {
			t.Fatalf("node %d traced %d records after StopTracing (was %d)", i, len(tr), counts[i])
		}
	}
}

const time1 = 2 * sim.Minute

func TestDeterministicClusterTraces(t *testing.T) {
	run := func() []trace.Record {
		c, err := New(Config{Nodes: 2, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		c.StartTracing()
		c.RunFor(3 * sim.Minute)
		c.StopTracing()
		return c.MergedTrace()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestNodesShapeIndependently(t *testing.T) {
	// Custom per-node config must be honored.
	c, err := New(Config{
		Nodes: 2,
		Seed:  1,
		Node: func(i int) kernel.Config {
			cfg := kernel.DefaultConfig(uint8(i))
			if i == 1 {
				cfg.DisableSelfTrace = true
			}
			return cfg
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.StartTracing()
	c.RunFor(5 * sim.Minute)
	for _, r := range c.Nodes[1].Trace() {
		if r.Origin == trace.OriginTrace {
			t.Fatal("node 1 traced self-traffic despite DisableSelfTrace")
		}
	}
}

func TestBadConfig(t *testing.T) {
	if _, err := New(Config{Nodes: 300}); err == nil {
		t.Fatal("want error for 300 nodes")
	}
}
