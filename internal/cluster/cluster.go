// Package cluster assembles the 16-node Beowulf machine: one kernel.Node
// per workstation, a shared dual-rail ethernet, a PVM system spanning the
// nodes, and helpers for installing programs on every node, launching one
// rank per node, and collecting the per-disk traces the experiments
// analyze.
//
// The machine always runs on a sim.Shards group — a set of per-node-group
// engines advancing under conservative lookahead equal to the wire latency.
// With Shards=1 that degenerates to the classic sequential run; any other
// shard count executes the byte-identical schedule in parallel.
package cluster

import (
	"fmt"
	"sort"

	"essio/internal/driver"
	"essio/internal/ethernet"
	"essio/internal/extfs"
	"essio/internal/iotrace"
	"essio/internal/kernel"
	"essio/internal/obs"
	"essio/internal/pvm"
	"essio/internal/sim"
	"essio/internal/trace"
	"essio/internal/vfs"
)

// Config describes the machine.
type Config struct {
	Nodes int   // default 16
	Seed  int64 // experiment seed (engines, per-node daemon jitter)
	// Shards selects how many engines the nodes are spread over. 0 and 1
	// both mean one engine (the sequential schedule); counts above Nodes
	// are clamped. Results are byte-identical at every setting.
	Shards int
	// Node customizes per-node kernel configuration; nil uses defaults.
	Node func(i int) kernel.Config
	// Net configures the interconnect; zero value uses defaults.
	Net ethernet.Params
	// BootTimeout bounds the virtual time allowed for booting (default
	// 10 minutes).
	BootTimeout sim.Duration
}

// Cluster is the running machine.
type Cluster struct {
	Shards *sim.Shards
	Nodes  []*kernel.Node
	Net    *ethernet.Net
	PVM    *pvm.System

	shardOf []int // node index -> shard index
}

// New builds and boots the cluster, returning after every node's init has
// completed (virtual time advances past boot).
func New(cfg Config) (*Cluster, error) {
	if cfg.Nodes == 0 {
		cfg.Nodes = 16
	}
	if cfg.Nodes < 1 || cfg.Nodes > 255 {
		return nil, fmt.Errorf("cluster: %d nodes unsupported", cfg.Nodes)
	}
	if cfg.BootTimeout == 0 {
		cfg.BootTimeout = 10 * sim.Minute
	}
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	if shards > cfg.Nodes {
		shards = cfg.Nodes
	}
	netParams := cfg.Net
	if netParams.Rails == 0 {
		netParams = ethernet.DefaultParams()
	}
	c := &Cluster{
		Shards:  sim.NewShards(shards, netParams.Latency),
		shardOf: make([]int, cfg.Nodes),
	}
	// Contiguous blocks: node i lives on shard i*shards/nodes, so shard
	// membership is a pure function of (nodes, shards).
	for i := 0; i < cfg.Nodes; i++ {
		c.shardOf[i] = i * shards / cfg.Nodes
	}
	c.Net = ethernet.NewSharded(c.Shards, netParams)
	c.PVM = pvm.NewDistributed(c.EngineOf, c.Net)
	c.PVM.SetJournals(func(node int) *iotrace.Journal { return c.Nodes[node].Journal })
	for i := 0; i < cfg.Nodes; i++ {
		kcfg := kernel.DefaultConfig(uint8(i))
		if cfg.Node != nil {
			kcfg = cfg.Node(i)
			kcfg.NodeID = uint8(i)
		}
		kcfg.Seed = cfg.Seed
		c.Nodes = append(c.Nodes, kernel.NewNode(c.EngineOf(i), kcfg).Boot())
	}
	deadline := c.Now().Add(cfg.BootTimeout)
	for {
		booted := true
		for _, n := range c.Nodes {
			if !n.Booted().IsComplete() {
				booted = false
				break
			}
		}
		if booted {
			break
		}
		if c.Now() >= deadline {
			return nil, fmt.Errorf("cluster: boot incomplete after %v", cfg.BootTimeout)
		}
		c.RunFor(sim.Second)
	}
	for _, n := range c.Nodes {
		if err := n.Booted().Err(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Close releases the engines (kills daemon goroutines).
func (c *Cluster) Close() { c.Shards.Close() }

// Now reports the cluster-wide virtual time.
func (c *Cluster) Now() sim.Time { return c.Shards.Now() }

// Run advances virtual time to the given instant on every shard.
func (c *Cluster) Run(until sim.Time) { c.Shards.Run(until) }

// RunFor advances virtual time by d.
func (c *Cluster) RunFor(d sim.Duration) { c.Shards.Run(c.Now().Add(d)) }

// EngineOf returns the engine node i runs on.
func (c *Cluster) EngineOf(node int) *sim.Engine {
	return c.Shards.Engine(c.shardOf[node])
}

// ShardOf reports which shard a node lives on.
func (c *Cluster) ShardOf(node int) int { return c.shardOf[node] }

// SpawnOn starts a coroutine on node i's engine. Coordinator context only
// (between Run windows).
func (c *Cluster) SpawnOn(node int, name string, fn func(*sim.Proc)) *sim.Proc {
	// The lookup-then-Spawn below is safe only because SpawnOn is a
	// coordinator-context API: callers hold the whole cluster between Run
	// windows, every shard is quiescent at the barrier, and the spawned
	// process first runs inside the next window on its own engine.
	//essvet:ignore sharddiscipline — coordinator context, engines quiescent between Run windows
	return c.EngineOf(node).Spawn(name, fn)
}

// Install writes a program image onto every node, waiting for completion.
// Each install runs on its node's own engine; completion flags are per-node
// slots, written by the owning shard and read only between windows.
func (c *Cluster) Install(prog *kernel.Program) error {
	errs := make([]error, len(c.Nodes))
	done := make([]bool, len(c.Nodes))
	for i, n := range c.Nodes {
		i, n := i, n
		c.SpawnOn(i, fmt.Sprintf("install%d", i), func(p *sim.Proc) {
			errs[i] = n.InstallImage(p, prog)
			done[i] = true
		})
	}
	deadline := c.Now().Add(30 * sim.Minute)
	for c.Now() < deadline {
		all := true
		for _, d := range done {
			if !d {
				all = false
				break
			}
		}
		if all {
			break
		}
		c.RunFor(sim.Second)
	}
	for _, d := range done {
		if !d {
			return fmt.Errorf("cluster: install of %s timed out", prog.Name)
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// DropCaches invalidates every clean buffer on every node, so subsequent
// file access and demand paging start cold — the state of a machine whose
// software was installed well before the measurement.
func (c *Cluster) DropCaches() int {
	n := 0
	for _, node := range c.Nodes {
		n += node.BC.InvalidateClean()
	}
	return n
}

// StartTracing resets collectors (both the driver-level trace and the
// application-level I/O log) and enables full instrumentation on every node
// (the experiment's ioctl moment).
func (c *Cluster) StartTracing() {
	for _, n := range c.Nodes {
		n.ResetTrace()
		n.AppIO.Reset()
		n.Journal.Reset()
		n.EnableTracing(driver.LevelFull)
	}
}

// AppEvents returns every node's application-level I/O events, merged.
// Per-node event sequences are shard-invariant and the input order (node
// major, generation order minor) is fixed, so the sorted merge is too.
func (c *Cluster) AppEvents() []vfs.IOEvent {
	var out []vfs.IOEvent
	for _, n := range c.Nodes {
		out = append(out, n.AppIO.Events...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out
}

// StopTracing disables instrumentation.
func (c *Cluster) StopTracing() {
	for _, n := range c.Nodes {
		n.DisableTracing()
	}
}

// SetObsLevel switches every node's metric collection level through the
// driver ioctl, returning node 0's prior level.
func (c *Cluster) SetObsLevel(l obs.Level) obs.Level {
	var prior obs.Level
	for i, n := range c.Nodes {
		p := n.SetObsLevel(l)
		if i == 0 {
			prior = p
		}
	}
	return prior
}

// ObsSnapshot merges every node's metric registry into one cluster-wide
// snapshot and adds the simulation's scheduler metrics (events dispatched
// summed over shards, barrier-sampled queue high-water). Node registries
// being per-node and both scheduler metrics shard-invariant, the result is
// byte-identical for a given seed and workload at any shard count.
func (c *Cluster) ObsSnapshot() *obs.Snapshot {
	eng := obs.New(obs.Counters)
	eng.Counter("sim/events_fired").Add(c.Shards.EventsFired())
	eng.Gauge("sim/queue_high_water").Set(int64(c.Shards.QueueHighWater()))
	s := eng.Snapshot()
	for _, n := range c.Nodes {
		s.Merge(n.Obs.Snapshot())
	}
	return s
}

// IOTrace returns every node's request journal merged into the
// (Time, Node, Seq) total order — the input to the Chrome export and
// the analysis lenses. Per-node journals are shard-invariant (appends
// are engine-serialized) and the order is total, so the merged journal
// is byte-identical at any shard or worker count.
func (c *Cluster) IOTrace() []iotrace.Event {
	per := make([][]iotrace.Event, len(c.Nodes))
	for i, n := range c.Nodes {
		per[i] = n.Journal.Events()
	}
	return iotrace.Merge(per...)
}

// IOTraceDropped totals ring-capacity evictions across the nodes; a
// non-zero value means the journal is a suffix of the run.
func (c *Cluster) IOTraceDropped() uint64 {
	var n uint64
	for _, node := range c.Nodes {
		n += node.Journal.Dropped()
	}
	return n
}

// Traces returns each node's collected trace.
func (c *Cluster) Traces() [][]trace.Record {
	out := make([][]trace.Record, len(c.Nodes))
	for i, n := range c.Nodes {
		out[i] = n.Trace()
	}
	return out
}

// MergedTrace returns all nodes' records merged in time order.
func (c *Cluster) MergedTrace() []trace.Record {
	return trace.Merge(c.Traces()...)
}

// Launch starts one instance of each given program per node (progs[i] runs
// on node i when len(progs)==len(Nodes); a single program is replicated on
// every node) and returns the processes.
func (c *Cluster) Launch(prog *kernel.Program) []*kernel.Process {
	procs := make([]*kernel.Process, len(c.Nodes))
	for i, n := range c.Nodes {
		procs[i] = n.Spawn(prog)
	}
	return procs
}

// WaitAll advances virtual time until every process exits or the deadline
// passes, returning the completion time and whether all finished.
func (c *Cluster) WaitAll(procs []*kernel.Process, deadline sim.Duration) (sim.Time, bool) {
	limit := c.Now().Add(deadline)
	for {
		alive := false
		for _, pr := range procs {
			if !pr.Done().IsComplete() {
				alive = true
				break
			}
		}
		if !alive {
			return c.Now(), true
		}
		if c.Now() >= limit {
			return c.Now(), false
		}
		c.RunFor(sim.Second)
	}
}

// NodeFS lists each node's filesystem in node order (for wiring PIOUS).
func (c *Cluster) NodeFS() []*extfs.FS {
	out := make([]*extfs.FS, len(c.Nodes))
	for i, n := range c.Nodes {
		out[i] = n.FS
	}
	return out
}
