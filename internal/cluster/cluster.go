// Package cluster assembles the 16-node Beowulf machine: one kernel.Node
// per workstation, a shared dual-rail ethernet, a PVM system spanning the
// nodes, and helpers for installing programs on every node, launching one
// rank per node, and collecting the per-disk traces the experiments
// analyze.
package cluster

import (
	"fmt"
	"sort"

	"essio/internal/driver"
	"essio/internal/ethernet"
	"essio/internal/extfs"
	"essio/internal/kernel"
	"essio/internal/obs"
	"essio/internal/pvm"
	"essio/internal/sim"
	"essio/internal/trace"
	"essio/internal/vfs"
)

// Config describes the machine.
type Config struct {
	Nodes int   // default 16
	Seed  int64 // engine seed
	// Node customizes per-node kernel configuration; nil uses defaults.
	Node func(i int) kernel.Config
	// Net configures the interconnect; zero value uses defaults.
	Net ethernet.Params
	// BootTimeout bounds the virtual time allowed for booting (default
	// 10 minutes).
	BootTimeout sim.Duration
}

// Cluster is the running machine.
type Cluster struct {
	E     *sim.Engine
	Nodes []*kernel.Node
	Net   *ethernet.Net
	PVM   *pvm.System
}

// New builds and boots the cluster, returning after every node's init has
// completed (virtual time advances past boot).
func New(cfg Config) (*Cluster, error) {
	if cfg.Nodes == 0 {
		cfg.Nodes = 16
	}
	if cfg.Nodes < 1 || cfg.Nodes > 255 {
		return nil, fmt.Errorf("cluster: %d nodes unsupported", cfg.Nodes)
	}
	if cfg.BootTimeout == 0 {
		cfg.BootTimeout = 10 * sim.Minute
	}
	netParams := cfg.Net
	if netParams.Rails == 0 {
		netParams = ethernet.DefaultParams()
	}
	e := sim.NewEngine(cfg.Seed)
	c := &Cluster{E: e}
	c.Net = ethernet.New(e, netParams)
	c.PVM = pvm.New(e, c.Net)
	for i := 0; i < cfg.Nodes; i++ {
		kcfg := kernel.DefaultConfig(uint8(i))
		if cfg.Node != nil {
			kcfg = cfg.Node(i)
			kcfg.NodeID = uint8(i)
		}
		c.Nodes = append(c.Nodes, kernel.NewNode(e, kcfg).Boot())
	}
	deadline := e.Now().Add(cfg.BootTimeout)
	for {
		booted := true
		for _, n := range c.Nodes {
			if !n.Booted().IsComplete() {
				booted = false
				break
			}
		}
		if booted {
			break
		}
		if e.Now() >= deadline {
			return nil, fmt.Errorf("cluster: boot incomplete after %v", cfg.BootTimeout)
		}
		e.Run(e.Now().Add(sim.Second))
	}
	for _, n := range c.Nodes {
		if err := n.Booted().Err(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Close releases the engine (kills daemon goroutines).
func (c *Cluster) Close() { c.E.Close() }

// Install writes a program image onto every node, waiting for completion.
func (c *Cluster) Install(prog *kernel.Program) error {
	errs := make([]error, len(c.Nodes))
	done := 0
	for i, n := range c.Nodes {
		i, n := i, n
		c.E.Spawn(fmt.Sprintf("install%d", i), func(p *sim.Proc) {
			errs[i] = n.InstallImage(p, prog)
			done++
		})
	}
	deadline := c.E.Now().Add(30 * sim.Minute)
	for done < len(c.Nodes) && c.E.Now() < deadline {
		c.E.Run(c.E.Now().Add(sim.Second))
	}
	if done < len(c.Nodes) {
		return fmt.Errorf("cluster: install of %s timed out", prog.Name)
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// DropCaches invalidates every clean buffer on every node, so subsequent
// file access and demand paging start cold — the state of a machine whose
// software was installed well before the measurement.
func (c *Cluster) DropCaches() int {
	n := 0
	for _, node := range c.Nodes {
		n += node.BC.InvalidateClean()
	}
	return n
}

// StartTracing resets collectors (both the driver-level trace and the
// application-level I/O log) and enables full instrumentation on every node
// (the experiment's ioctl moment).
func (c *Cluster) StartTracing() {
	for _, n := range c.Nodes {
		n.ResetTrace()
		n.AppIO.Reset()
		n.EnableTracing(driver.LevelFull)
	}
}

// AppEvents returns every node's application-level I/O events, merged.
func (c *Cluster) AppEvents() []vfs.IOEvent {
	var out []vfs.IOEvent
	for _, n := range c.Nodes {
		out = append(out, n.AppIO.Events...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out
}

// StopTracing disables instrumentation.
func (c *Cluster) StopTracing() {
	for _, n := range c.Nodes {
		n.DisableTracing()
	}
}

// SetObsLevel switches every node's metric collection level through the
// driver ioctl, returning node 0's prior level.
func (c *Cluster) SetObsLevel(l obs.Level) obs.Level {
	var prior obs.Level
	for i, n := range c.Nodes {
		p := n.SetObsLevel(l)
		if i == 0 {
			prior = p
		}
	}
	return prior
}

// ObsSnapshot merges every node's metric registry into one cluster-wide
// snapshot and adds the shared simulation engine's scheduler metrics
// (events dispatched, event-queue high-water). Node registries being
// per-node and the merge exact, the result is deterministic for a given
// seed and workload.
func (c *Cluster) ObsSnapshot() *obs.Snapshot {
	eng := obs.New(obs.Counters)
	eng.Counter("sim/events_fired").Add(c.E.EventsFired())
	eng.Gauge("sim/queue_high_water").Set(int64(c.E.QueueHighWater()))
	s := eng.Snapshot()
	for _, n := range c.Nodes {
		s.Merge(n.Obs.Snapshot())
	}
	return s
}

// Traces returns each node's collected trace.
func (c *Cluster) Traces() [][]trace.Record {
	out := make([][]trace.Record, len(c.Nodes))
	for i, n := range c.Nodes {
		out[i] = n.Trace()
	}
	return out
}

// MergedTrace returns all nodes' records merged in time order.
func (c *Cluster) MergedTrace() []trace.Record {
	return trace.Merge(c.Traces()...)
}

// Launch starts one instance of each given program per node (progs[i] runs
// on node i when len(progs)==len(Nodes); a single program is replicated on
// every node) and returns the processes.
func (c *Cluster) Launch(prog *kernel.Program) []*kernel.Process {
	procs := make([]*kernel.Process, len(c.Nodes))
	for i, n := range c.Nodes {
		procs[i] = n.Spawn(prog)
	}
	return procs
}

// WaitAll advances virtual time until every process exits or the deadline
// passes, returning the completion time and whether all finished.
func (c *Cluster) WaitAll(procs []*kernel.Process, deadline sim.Duration) (sim.Time, bool) {
	limit := c.E.Now().Add(deadline)
	for {
		alive := false
		for _, pr := range procs {
			if !pr.Done().IsComplete() {
				alive = true
				break
			}
		}
		if !alive {
			return c.E.Now(), true
		}
		if c.E.Now() >= limit {
			return c.E.Now(), false
		}
		c.E.Run(c.E.Now().Add(sim.Second))
	}
}

// NodeFS lists each node's filesystem in node order (for wiring PIOUS).
func (c *Cluster) NodeFS() []*extfs.FS {
	out := make([]*extfs.FS, len(c.Nodes))
	for i, n := range c.Nodes {
		out[i] = n.FS
	}
	return out
}
