// Package procfs models the proc filesystem transport the study used to
// move trace data out of the kernel: the instrumented driver appends records
// to an in-kernel ring (the kernel message facility), and user space reads
// them back as a byte stream from what looks like a regular file in /proc —
// no specialized kernel code needed, exactly as the paper describes.
package procfs

import (
	"fmt"
	"sort"

	"essio/internal/sim"
	"essio/internal/trace"
)

// File is a readable proc entry. Reads are process-context (they may sleep
// in a fuller OS; here they complete immediately but keep the signature).
type File interface {
	Read(p *sim.Proc, buf []byte) (int, error)
}

// FS is one node's proc filesystem: a flat registry of named entries.
type FS struct {
	entries map[string]File
}

// New returns an empty proc filesystem.
func New() *FS {
	return &FS{entries: make(map[string]File)}
}

// Register adds an entry under a name such as "iotrace" or "meminfo".
func (fs *FS) Register(name string, f File) {
	fs.entries[name] = f
}

// Open looks up an entry.
func (fs *FS) Open(name string) (File, error) {
	f, ok := fs.entries[name]
	if !ok {
		return nil, fmt.Errorf("procfs: no entry %q", name)
	}
	return f, nil
}

// Names lists the registered entries, sorted.
func (fs *FS) Names() []string {
	out := make([]string, 0, len(fs.entries))
	for n := range fs.entries {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// TraceFile streams binary-encoded trace records out of the kernel ring.
// Partial records never appear: a Read returns whole records only.
type TraceFile struct {
	ring *trace.Ring
}

// NewTraceFile wraps a driver trace ring.
func NewTraceFile(ring *trace.Ring) *TraceFile {
	return &TraceFile{ring: ring}
}

// Read fills buf with as many whole encoded records as fit and are
// available, returning the byte count (0 when the ring is empty).
func (f *TraceFile) Read(p *sim.Proc, buf []byte) (int, error) {
	max := len(buf) / trace.RecordSize
	if max == 0 {
		return 0, fmt.Errorf("procfs: buffer smaller than one record (%d bytes)", trace.RecordSize)
	}
	recs := f.ring.Drain(max)
	n := 0
	for _, r := range recs {
		n += r.Marshal(buf[n:])
	}
	return n, nil
}

// Available reports how many records are waiting.
func (f *TraceFile) Available() int { return f.ring.Len() }

// TextFile serves dynamically generated text (meminfo-style entries).
type TextFile struct {
	gen func() string
}

// NewTextFile wraps a generator function.
func NewTextFile(gen func() string) *TextFile {
	return &TextFile{gen: gen}
}

// Read copies the generated text into buf (truncating if needed).
func (f *TextFile) Read(p *sim.Proc, buf []byte) (int, error) {
	s := f.gen()
	n := copy(buf, s)
	return n, nil
}
