package procfs

import (
	"testing"

	"essio/internal/sim"
	"essio/internal/trace"
)

func run(t *testing.T, e *sim.Engine, fn func(p *sim.Proc)) {
	t.Helper()
	e.Spawn("test", fn)
	e.RunUntilIdle()
}

func TestRegistryOpenAndNames(t *testing.T) {
	fs := New()
	tf := NewTraceFile(trace.NewRing(16))
	fs.Register("iotrace", tf)
	fs.Register("meminfo", NewTextFile(func() string { return "mem: ok" }))
	if _, err := fs.Open("iotrace"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("nope"); err == nil {
		t.Fatal("want error for missing entry")
	}
	names := fs.Names()
	if len(names) != 2 || names[0] != "iotrace" || names[1] != "meminfo" {
		t.Fatalf("Names = %v", names)
	}
}

func TestTraceFileStreamsWholeRecords(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Close()
	ring := trace.NewRing(64)
	for i := 0; i < 5; i++ {
		ring.Append(trace.Record{Time: sim.Time(i), Sector: uint32(100 + i), Count: 2})
	}
	tf := NewTraceFile(ring)
	if tf.Available() != 5 {
		t.Fatalf("Available = %d", tf.Available())
	}
	run(t, e, func(p *sim.Proc) {
		// Buffer holds 3 whole records plus change: only 3 must come out.
		buf := make([]byte, 3*trace.RecordSize+7)
		n, err := tf.Read(p, buf)
		if err != nil {
			t.Error(err)
			return
		}
		if n != 3*trace.RecordSize {
			t.Errorf("Read = %d bytes, want 3 whole records", n)
			return
		}
		for i := 0; i < 3; i++ {
			rec, err := trace.UnmarshalRecord(buf[i*trace.RecordSize:])
			if err != nil {
				t.Error(err)
				return
			}
			if rec.Sector != uint32(100+i) {
				t.Errorf("record %d sector = %d", i, rec.Sector)
			}
		}
		// Remaining two drain on the next read.
		n, err = tf.Read(p, buf)
		if err != nil || n != 2*trace.RecordSize {
			t.Errorf("second Read = %d, %v", n, err)
		}
		n, err = tf.Read(p, buf)
		if err != nil || n != 0 {
			t.Errorf("empty Read = %d, %v", n, err)
		}
	})
}

func TestTraceFileTinyBuffer(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Close()
	tf := NewTraceFile(trace.NewRing(4))
	run(t, e, func(p *sim.Proc) {
		if _, err := tf.Read(p, make([]byte, 3)); err == nil {
			t.Error("want error for sub-record buffer")
		}
	})
}

func TestTextFile(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Close()
	calls := 0
	f := NewTextFile(func() string { calls++; return "free frames: 42\n" })
	run(t, e, func(p *sim.Proc) {
		buf := make([]byte, 64)
		n, err := f.Read(p, buf)
		if err != nil || string(buf[:n]) != "free frames: 42\n" {
			t.Errorf("Read = %q, %v", buf[:n], err)
		}
		// Truncation.
		small := make([]byte, 4)
		n, err = f.Read(p, small)
		if err != nil || n != 4 {
			t.Errorf("small Read = %d, %v", n, err)
		}
	})
	if calls != 2 {
		t.Fatalf("generator called %d times", calls)
	}
}
