// Runtime complement to the essvet mergefields analyzer: where the
// static check proves every accumulator field is *referenced* by Merge,
// MergeDrops proves the reference actually *propagates* state. It
// perturbs each field of a donor accumulator by reflection and asserts
// the merge result changes; a field whose perturbation is invisible
// after Merge is exactly the silent-desync bug the parallel drivers
// cannot afford (results stay plausible, they are just wrong).
//
// The check is behavioral, so it needs live accumulators: the caller
// supplies a constructor and a feed function that plays shard 0 into
// the receiver and shard 1 (a time-contiguous continuation) into the
// donor, mirroring how the parallel pass actually splits a trace.
// Fields that are construction-time configuration — the ones carrying
// //essvet:mergeignore markers — are passed as ignores, keeping the two
// checkers' exemption lists cross-validating each other.

package core

import (
	"fmt"
	"reflect"
	"unsafe"
)

// MergeDrops reports the fields of an accumulator whose state a Merge
// call drops. newAcc must return a pointer to a fresh accumulator with
// a Merge method; feed folds shard 0 or 1 of a sample workload into it.
// For each non-ignored field, a donor is built, fed shard 1, perturbed
// in that field, and merged into a shard-0 receiver; if the result
// never differs from an unperturbed merge (a Merge panic counts as
// noticing, since geometry and anchor asserts read the field), the
// field is reported. A non-nil error means the check itself could not
// run, not that a field was dropped.
func MergeDrops(newAcc func() any, feed func(acc any, shard int), ignore ...string) ([]string, error) {
	rv := reflect.ValueOf(newAcc())
	if rv.Kind() != reflect.Pointer || rv.Elem().Kind() != reflect.Struct {
		return nil, fmt.Errorf("mergecheck: accumulator is %s, need pointer to struct", rv.Kind())
	}
	if _, ok := rv.Type().MethodByName("Merge"); !ok {
		return nil, fmt.Errorf("mergecheck: %s has no Merge method", rv.Type())
	}
	baseline, err := mergeWith(newAcc, feed, -1, 0)
	if err != nil {
		return nil, fmt.Errorf("mergecheck: unperturbed merge failed: %v", err)
	}

	ignored := make(map[string]bool, len(ignore))
	for _, n := range ignore {
		ignored[n] = true
	}
	st := rv.Elem().Type()
	var drops []string
	for i := 0; i < st.NumField(); i++ {
		f := st.Field(i)
		if f.Name == "_" || ignored[f.Name] {
			continue
		}
		propagated := false
		for variant := 0; variant < 2; variant++ {
			got, err := mergeWith(newAcc, feed, i, variant)
			if err != nil || !reflect.DeepEqual(got, baseline) {
				propagated = true
				break
			}
		}
		if !propagated {
			drops = append(drops, f.Name)
		}
	}
	return drops, nil
}

// mergeWith merges a shard-1 donor — with struct field index perturbed,
// or unperturbed when field is -1 — into a shard-0 receiver, converting
// a Merge panic into an error.
func mergeWith(newAcc func() any, feed func(any, int), field, variant int) (acc any, err error) {
	recv, donor := newAcc(), newAcc()
	feed(recv, 0)
	feed(donor, 1)
	if field >= 0 {
		perturb(writable(reflect.ValueOf(donor).Elem().Field(field)), variant)
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	reflect.ValueOf(recv).MethodByName("Merge").Call([]reflect.Value{reflect.ValueOf(donor)})
	return recv, nil
}

// perturb mutates every reachable leaf under v — numbers shifted, bools
// flipped, strings extended, maps given a fresh entry — so that any
// Merge that reads the enclosing field sees the change. The two
// variants shift numbers in opposite directions, catching fields that
// only propagate through min- or max-style comparisons. Reports whether
// anything was changed.
func perturb(v reflect.Value, variant int) bool {
	switch v.Kind() {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		d := delta(v.Type().Bits())
		if variant == 1 {
			d = -d
		}
		if n := v.Int() + d; !v.OverflowInt(n) {
			v.SetInt(n)
		} else {
			v.SetInt(v.Int() - d)
		}
		return true
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		d := uint64(delta(v.Type().Bits()))
		if variant == 1 && v.Uint() >= d {
			v.SetUint(v.Uint() - d)
		} else if n := v.Uint() + d; !v.OverflowUint(n) {
			v.SetUint(n)
		} else {
			v.SetUint(v.Uint() - d)
		}
		return true
	case reflect.Float32, reflect.Float64:
		if variant == 1 {
			v.SetFloat(-v.Float() - 1.5)
		} else {
			v.SetFloat(v.Float() + 0.5)
		}
		return true
	case reflect.Bool:
		v.SetBool(!v.Bool())
		return true
	case reflect.String:
		v.SetString(v.String() + "~")
		return true
	case reflect.Pointer:
		if v.IsNil() {
			if !v.CanSet() {
				return false
			}
			v.Set(reflect.New(v.Type().Elem()))
		}
		return perturb(v.Elem(), variant)
	case reflect.Struct:
		changed := false
		for i := 0; i < v.NumField(); i++ {
			if perturb(writable(v.Field(i)), variant) {
				changed = true
			}
		}
		return changed
	case reflect.Array:
		changed := false
		for i := 0; i < v.Len(); i++ {
			if perturb(v.Index(i), variant) {
				changed = true
			}
		}
		return changed
	case reflect.Slice:
		if v.Len() == 0 {
			if !v.CanSet() {
				return false
			}
			e := reflect.New(v.Type().Elem()).Elem()
			perturb(e, variant)
			v.Set(reflect.Append(v, e))
			return true
		}
		changed := false
		for i := 0; i < v.Len(); i++ {
			if perturb(v.Index(i), variant) {
				changed = true
			}
		}
		return changed
	case reflect.Map:
		if !v.CanSet() && v.IsNil() {
			return false
		}
		if v.IsNil() {
			v.Set(reflect.MakeMap(v.Type()))
		}
		// Map values are not addressable: copy out, perturb, store back.
		for _, k := range v.MapKeys() {
			e := reflect.New(v.Type().Elem()).Elem()
			e.Set(v.MapIndex(k))
			perturb(e, variant)
			v.SetMapIndex(k, e)
		}
		// A fresh key exercises the adopt-new-entries path of the merge.
		nk := reflect.New(v.Type().Key()).Elem()
		perturb(nk, variant)
		nv := reflect.New(v.Type().Elem()).Elem()
		perturb(nv, variant)
		v.SetMapIndex(nk, nv)
		return true
	}
	return false
}

// delta picks a perturbation magnitude by integer width: large enough to
// cross time-bucket boundaries on 64-bit nanosecond fields, small enough
// not to overflow narrow counters.
func delta(bits int) int64 {
	switch {
	case bits >= 64:
		return 1 << 40
	case bits >= 32:
		return 1 << 20
	case bits >= 16:
		return 1 << 9
	default:
		return 3
	}
}

// writable returns v made settable, rebasing unexported fields through
// their address; accumulator state is almost entirely unexported, and
// the checker must mutate it without exported setters.
func writable(v reflect.Value) reflect.Value {
	if v.CanSet() || !v.CanAddr() {
		return v
	}
	return reflect.NewAt(v.Type(), unsafe.Pointer(v.UnsafeAddr())).Elem()
}
