package core

import (
	"strings"
	"testing"

	"essio/internal/sim"
	"essio/internal/trace"
)

// syntheticTrace builds a workload with known structure: a sequential read
// stream, a paging burst, and periodic log writes with a hot sector.
func syntheticTrace() []trace.Record {
	var recs []trace.Record
	t := sim.Time(0)
	// Sequential 16 KB reads (streaming).
	for i := 0; i < 50; i++ {
		recs = append(recs, trace.Record{
			Time: t, Sector: uint32(200000 + i*32), Count: 32,
			Op: trace.Read, Origin: trace.OriginData,
		})
		t = t.Add(100 * sim.Millisecond)
	}
	// 4 KB paging.
	for i := 0; i < 30; i++ {
		recs = append(recs, trace.Record{
			Time: t, Sector: uint32(41000 + i*8), Count: 8,
			Op: trace.Write, Origin: trace.OriginSwap,
		})
		t = t.Add(50 * sim.Millisecond)
	}
	// Log writes hammering one sector.
	for i := 0; i < 60; i++ {
		recs = append(recs, trace.Record{
			Time: t, Sector: 1007000, Count: 2,
			Op: trace.Write, Origin: trace.OriginLog,
		})
		t = t.Add(sim.Second)
	}
	return recs
}

func TestCharacterizeBasics(t *testing.T) {
	recs := syntheticTrace()
	p := Characterize("synthetic", recs, 60*sim.Second, 1, 1024000)
	if p.Summary.Reads != 50 || p.Summary.Writes != 90 {
		t.Fatalf("summary = %+v", p.Summary)
	}
	if p.Classes.Large != 50 || p.Classes.Page4K != 30 || p.Classes.Block1K != 60 {
		t.Fatalf("classes = %+v", p.Classes)
	}
	if p.Origins[trace.OriginSwap] != 30 {
		t.Fatalf("origins = %v", p.Origins)
	}
	// The sequential stream makes up a large share of back-to-back
	// contiguity.
	if p.SeqFraction < 0.4 {
		t.Fatalf("SeqFraction = %v", p.SeqFraction)
	}
	// Hot sector is the log block.
	if len(p.Hottest) == 0 || p.Hottest[0].Sector != 1007000 {
		t.Fatalf("hottest = %v", p.Hottest)
	}
	if p.BurstIndex <= 1 {
		t.Fatalf("BurstIndex = %v; workload is bursty", p.BurstIndex)
	}
	if p.MeanInterAccess <= 0 {
		t.Fatalf("MeanInterAccess = %v", p.MeanInterAccess)
	}
	out := p.String()
	for _, want := range []string{"synthetic", "sizes:", "sequential:", "hottest", "origins:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestCharacterizeEmpty(t *testing.T) {
	p := Characterize("empty", nil, 0, 0, 1024000)
	if p.Summary.Reads != 0 || p.SeqFraction != 0 || p.BurstIndex != 0 {
		t.Fatalf("%+v", p)
	}
	if p.PagingShare() != 0 {
		t.Fatal("paging share of empty trace")
	}
	d := p.Derive(16)
	if d.ReadAheadKB != 0 {
		t.Fatalf("empty derive = %+v", d)
	}
	_ = p.String()
}

func TestPagingShare(t *testing.T) {
	recs := []trace.Record{{Count: 8}, {Count: 8}, {Count: 2}, {Count: 2}}
	p := Characterize("x", recs, sim.Second, 1, 1024000)
	if p.PagingShare() != 0.5 {
		t.Fatalf("PagingShare = %v", p.PagingShare())
	}
}

func TestDeriveSequentialWorkload(t *testing.T) {
	p := Characterize("seq", syntheticTrace(), 60*sim.Second, 1, 1024000)
	d := p.Derive(16)
	if d.ReadAheadKB < 16 {
		t.Fatalf("sequential workload should keep or widen read-ahead: %+v", d)
	}
	if d.WritePolicy != "write-back" {
		t.Fatalf("bursty write-heavy load should stay write-back: %+v", d)
	}
	if len(d.Rationale) == 0 {
		t.Fatal("no rationale")
	}
}

func TestDeriveRandomReadWorkload(t *testing.T) {
	// Smooth, random, read-dominated 1 KB traffic.
	var recs []trace.Record
	for i := 0; i < 200; i++ {
		recs = append(recs, trace.Record{
			Time: sim.Time(i) * sim.Time(sim.Second), Sector: uint32((i * 37717) % 1000000),
			Count: 2, Op: trace.Read, Origin: trace.OriginData,
		})
	}
	p := Characterize("rand", recs, 200*sim.Second, 1, 1024000)
	d := p.Derive(16)
	if d.ReadAheadKB > 4 {
		t.Fatalf("random workload should shrink read-ahead: %+v", d)
	}
	if d.WritePolicy != "write-through" {
		t.Fatalf("read-dominated load: %+v", d)
	}
}

func TestDerivePagingHeavyWorkload(t *testing.T) {
	var recs []trace.Record
	for i := 0; i < 100; i++ {
		recs = append(recs, trace.Record{
			Time: sim.Time(i * 1000), Sector: uint32(41000 + (i%50)*8),
			Count: 8, Op: trace.Op(i % 2), Origin: trace.OriginSwap,
		})
	}
	p := Characterize("thrash", recs, 10*sim.Second, 1, 1024000)
	d := p.Derive(16)
	if d.SuggestedMemoryMB <= 16 {
		t.Fatalf("paging-heavy load should suggest more memory: %+v", d)
	}
}

func TestDeriveLogDominatedWorkload(t *testing.T) {
	var recs []trace.Record
	for i := 0; i < 100; i++ {
		recs = append(recs, trace.Record{
			Time: sim.Time(i * 1000), Sector: 1007000, Count: 2,
			Op: trace.Write, Origin: trace.OriginTrace,
		})
	}
	p := Characterize("logs", recs, 100*sim.Second, 1, 1024000)
	d := p.Derive(16)
	if !d.SeparateLogDisk {
		t.Fatalf("log-dominated load should suggest a log device: %+v", d)
	}
	if d.HotSectorCacheKB == 0 {
		t.Fatalf("hot sector present; want cache suggestion: %+v", d)
	}
}

func TestSeqFractionPerNode(t *testing.T) {
	// Interleaved nodes: each node's stream is contiguous even though the
	// merged order alternates.
	var recs []trace.Record
	for i := 0; i < 20; i++ {
		recs = append(recs, trace.Record{
			Time: sim.Time(i), Node: uint8(i % 2),
			Sector: uint32(1000*(i%2) + (i/2)*4), Count: 4, Op: trace.Read,
		})
	}
	p := Characterize("x", recs, sim.Second, 2, 1024000)
	if p.SeqFraction < 0.9 {
		t.Fatalf("per-node sequentiality lost in merge: %v", p.SeqFraction)
	}
}
