package core_test

import (
	"testing"

	"essio/internal/core"
	"essio/internal/sim"
	"essio/internal/trace"
)

// colBatch builds a columnar workload exercising every column.
func colBatch() *trace.ColBatch {
	b := new(trace.ColBatch)
	for i := 0; i < 48; i++ {
		b.AppendRecord(trace.Record{
			Time:    sim.Time(i) * sim.Time(sim.Second/8),
			Sector:  uint32(1000 * i),
			Count:   uint16(8 + i%3),
			Pending: uint16(i % 5),
			Op:      trace.Op(i % 2),
			Node:    uint8(i % 2),
			Origin:  trace.Origin(i % 7),
		})
	}
	return b
}

// leakyColAcc drops the sector column in AddCols on purpose: the
// checker must notice that perturbing Sectors changes nothing.
type leakyColAcc struct {
	timeSum sim.Time
	secSum  uint64
}

func (l *leakyColAcc) AddCols(cols *trace.ColBatch) error {
	for _, t := range cols.Times {
		l.timeSum += t
	}
	// Sectors deliberately ignored; secSum stays zero.
	return nil
}

func TestColDropsCatchesDroppedColumn(t *testing.T) {
	drops, err := core.ColDrops(
		func() any { return &leakyColAcc{} },
		colBatch(),
		[]string{"Time", "Sector"},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(drops) != 1 || drops[0] != "Sector" {
		t.Fatalf("drops = %v, want [Sector]", drops)
	}
}

func TestColDropsHonorsIgnores(t *testing.T) {
	drops, err := core.ColDrops(
		func() any { return &leakyColAcc{} },
		colBatch(),
		[]string{"Time", "Sector"},
		"Sector",
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(drops) != 0 {
		t.Fatalf("drops = %v, want none with Sector ignored", drops)
	}
}

func TestColDropsRejectsBadInput(t *testing.T) {
	if _, err := core.ColDrops(func() any { return &struct{ x int }{} }, colBatch(), nil); err == nil {
		t.Fatal("expected error for type without AddCols")
	}
	if _, err := core.ColDrops(func() any { return &leakyColAcc{} }, new(trace.ColBatch), nil); err == nil {
		t.Fatal("expected error for empty batch")
	}
	if _, err := core.ColDrops(func() any { return &leakyColAcc{} }, colBatch(), []string{"Bogus"}); err == nil {
		t.Fatal("expected error for unknown field")
	}
}

// TestProfilerAddColsPropagatesEveryColumn runs the mutation check over
// the full Profiler: its row path reads every Record field (directly or
// through the sub-accumulators it feeds), its AddCols carries no
// //essvet:colignore marker, so the field list is all seven and the
// ignore list is empty — byte-mirroring the static markers.
func TestProfilerAddColsPropagatesEveryColumn(t *testing.T) {
	drops, err := core.ColDrops(
		func() any {
			p := core.NewProfiler("wl", sim.Duration(10*sim.Second), 2, 1<<20)
			p.SetAnchor(0)
			return p
		},
		colBatch(),
		[]string{"Time", "Sector", "Count", "Pending", "Op", "Node", "Origin"},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(drops) > 0 {
		t.Fatalf("Profiler.AddCols drops columns of fields %v", drops)
	}
}
