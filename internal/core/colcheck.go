// Runtime complement to the essvet colparity analyzer: where the static
// check proves every row-path field is *referenced* by AddCols, ColDrops
// proves the reference actually *propagates* state. It perturbs one
// column of a donor ColBatch at a time and asserts the accumulator's
// AddCols output changes; a column whose perturbation is invisible is
// exactly the silent row/column desync CharacterizeColumnar cannot
// afford (columnar results stay plausible, they just stop depending on
// that column).
//
// The check is behavioral, so it needs a live batch: the caller supplies
// a constructor, a sample batch, and the list of columns the
// accumulator's row path reads (the colparity "wants" set). Columns
// intentionally not mirrored — the ones carrying //essvet:colignore
// markers on AddCols — are passed as ignores, keeping the two checkers'
// exemption lists byte-mirroring each other, just as MergeDrops ignores
// mirror the //essvet:mergeignore field markers.

package core

import (
	"fmt"
	"reflect"

	"essio/internal/trace"
)

// colSink is the AddCols surface ColDrops drives.
type colSink interface {
	AddCols(*trace.ColBatch) error
}

// ColDrops reports the Record fields whose column an accumulator's
// AddCols drops. newAcc must return a pointer to a fresh accumulator
// implementing AddCols; batch is a non-empty sample workload; fields
// names the trace.Record fields the accumulator's row path reads (the
// colparity wants set), each mapped to its ColBatch column by the
// field→field+"s" convention (Sector → Sectors). For each non-ignored
// field, a clone of batch is perturbed in that column only and folded
// into a fresh accumulator; if the result never differs from the
// unperturbed fold (an AddCols error or panic counts as noticing, since
// geometry and validity checks read the column), the field is reported.
// A non-nil error means the check itself could not run, not that a
// column was dropped.
func ColDrops(newAcc func() any, batch *trace.ColBatch, fields []string, ignore ...string) ([]string, error) {
	if batch == nil || batch.Len() == 0 {
		return nil, fmt.Errorf("colcheck: need a non-empty sample batch")
	}
	if _, ok := newAcc().(colSink); !ok {
		return nil, fmt.Errorf("colcheck: %T has no AddCols method", newAcc())
	}
	bt := reflect.TypeOf(trace.ColBatch{})
	for _, field := range fields {
		f, ok := bt.FieldByName(field + "s")
		if !ok || f.Type.Kind() != reflect.Slice {
			return nil, fmt.Errorf("colcheck: %q is not a Record field with a ColBatch column", field)
		}
	}

	baseline, err := foldCols(newAcc, batch, "", 0)
	if err != nil {
		return nil, fmt.Errorf("colcheck: unperturbed AddCols failed: %v", err)
	}

	ignored := make(map[string]bool, len(ignore))
	for _, n := range ignore {
		ignored[n] = true
	}
	var drops []string
	for _, field := range fields {
		if ignored[field] {
			continue
		}
		propagated := false
		for variant := 0; variant < 2; variant++ {
			got, err := foldCols(newAcc, batch, field+"s", variant)
			if err != nil || !reflect.DeepEqual(got, baseline) {
				propagated = true
				break
			}
		}
		if !propagated {
			drops = append(drops, field)
		}
	}
	return drops, nil
}

// foldCols folds a clone of batch — with the named column perturbed, or
// pristine when col is empty — into a fresh accumulator, converting an
// AddCols panic or error into an error.
func foldCols(newAcc func() any, batch *trace.ColBatch, col string, variant int) (acc any, err error) {
	clone := new(trace.ColBatch)
	clone.AppendCols(batch)
	if col != "" {
		// ColBatch columns are exported slices, so no unsafe rebasing is
		// needed; the shared perturb walker shifts every element (delta
		// sized by element width, direction by variant).
		perturb(reflect.ValueOf(clone).Elem().FieldByName(col), variant)
	}
	a := newAcc()
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	if err := a.(colSink).AddCols(clone); err != nil {
		return nil, err
	}
	return a, nil
}
