package core_test

import (
	"math/rand"
	"testing"

	"essio/internal/core"
	"essio/internal/obs"
	"essio/internal/sim"
	"essio/internal/trace"
)

// obsPerNode builds a seeded multi-node workload for the parallel
// characterizer.
func obsPerNode(seed int64, nodes, perNode int) [][]trace.Record {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]trace.Record, nodes)
	for n := range out {
		recs := make([]trace.Record, perNode)
		t := sim.Time(rng.Intn(1000))
		for i := range recs {
			t += sim.Time(rng.Intn(5000))
			recs[i] = trace.Record{
				Time:    t,
				Sector:  uint32(rng.Intn(1 << 20)),
				Count:   uint16(2 << rng.Intn(5)),
				Pending: uint16(rng.Intn(8)),
				Op:      trace.Op(rng.Intn(2)),
				Node:    uint8(n),
				Origin:  trace.Origin(rng.Intn(7)),
			}
		}
		out[n] = recs
	}
	return out
}

// TestProfileParallelObsDeterministic proves the acceptance invariant:
// same seed, same workload → byte-identical metric snapshots (text and
// JSON) regardless of worker count, at every collection level. Run with
// -race in CI to catch unsynchronized registry sharing.
func TestProfileParallelObsDeterministic(t *testing.T) {
	perNode := obsPerNode(7, 16, 400)
	for _, level := range []obs.Level{obs.Counters, obs.Full} {
		ref := obs.New(level)
		refProf := core.ProfileParallelObs("det", perNode, 30*sim.Second, 16, 1<<20, 1, ref)
		refText := ref.Snapshot().Text()
		refJSON, err := ref.Snapshot().JSON()
		if err != nil {
			t.Fatal(err)
		}
		if ref.Snapshot().Counter("pipeline/accumulate/records") != 16*400 {
			t.Fatalf("level %v: accumulate records = %d, want %d",
				level, ref.Snapshot().Counter("pipeline/accumulate/records"), 16*400)
		}
		for _, workers := range []int{2, 4, 8} {
			reg := obs.New(level)
			prof := core.ProfileParallelObs("det", perNode, 30*sim.Second, 16, 1<<20, workers, reg)
			if prof.Summary.Reads != refProf.Summary.Reads {
				t.Errorf("level %v workers %d: profile diverged from sequential", level, workers)
			}
			if got := reg.Snapshot().Text(); got != refText {
				t.Errorf("level %v workers %d: snapshot text differs from sequential:\n--- got\n%s--- want\n%s",
					level, workers, got, refText)
			}
			gotJSON, err := reg.Snapshot().JSON()
			if err != nil {
				t.Fatal(err)
			}
			if string(gotJSON) != string(refJSON) {
				t.Errorf("level %v workers %d: snapshot JSON differs from sequential", level, workers)
			}
		}
	}
}

// TestProfileParallelObsNilRegistry proves the unobserved path still
// produces the sequential profile (ProfileParallel delegates here).
func TestProfileParallelObsNilRegistry(t *testing.T) {
	perNode := obsPerNode(11, 4, 100)
	var merged []trace.Record
	for _, t := range perNode {
		merged = append(merged, t...)
	}
	want := core.Characterize("t", trace.Merge(merged), 30*sim.Second, 4, 1<<20)
	got := core.ProfileParallelObs("t", perNode, 30*sim.Second, 4, 1<<20, 4, nil)
	if got.Summary.Reads != want.Summary.Reads || got.SeqFraction != want.SeqFraction {
		t.Errorf("unobserved parallel profile diverged from sequential oracle")
	}
}
