package core_test

import (
	"testing"

	"essio/internal/core"
	"essio/internal/sim"
	"essio/internal/trace"
)

// leakyAcc drops field b in Merge on purpose: the checker must notice.
type leakyAcc struct {
	a, b int
}

func (l *leakyAcc) Merge(o *leakyAcc) { l.a += o.a }

func TestMergeDropsCatchesDroppedField(t *testing.T) {
	drops, err := core.MergeDrops(
		func() any { return &leakyAcc{} },
		func(acc any, shard int) {
			l := acc.(*leakyAcc)
			l.a, l.b = shard+1, shard+2
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(drops) != 1 || drops[0] != "b" {
		t.Fatalf("drops = %v, want [b]", drops)
	}
}

func TestMergeDropsRejectsNonAccumulators(t *testing.T) {
	if _, err := core.MergeDrops(func() any { return &struct{ x int }{} }, func(any, int) {}); err == nil {
		t.Fatal("expected error for type without Merge")
	}
}

// feedProfiler plays a two-shard workload: shard 1 is a time-contiguous
// continuation of shard 0, the split the parallel driver produces.
func feedProfiler(acc any, shard int) {
	p := acc.(*core.Profiler)
	p.SetAnchor(0)
	base := sim.Time(shard) * sim.Time(5*sim.Second)
	for i := 0; i < 40; i++ {
		p.Add(trace.Record{
			Time:    base + sim.Time(i)*sim.Time(sim.Second/8),
			Sector:  uint32(1000*i + shard*64),
			Count:   uint16(8 + i%3),
			Pending: uint16(i % 5),
			Op:      trace.Op(i % 2),
			Node:    uint8(i % 2),
			Origin:  trace.Origin(i % 7),
		})
	}
}

func TestProfilerMergePropagatesEveryField(t *testing.T) {
	drops, err := core.MergeDrops(
		func() any {
			return core.NewProfiler("wl", sim.Duration(10*sim.Second), 2, 1<<20)
		},
		feedProfiler,
		// Construction-time configuration, identical across shards; the
		// same five fields carry //essvet:mergeignore in stream.go, and
		// the two exemption lists must stay in lockstep. om holds the
		// per-worker observability handles, whose registries merge on
		// their own (see ProfileParallelObs).
		"label", "nodes", "duration", "diskSectors", "om",
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(drops) > 0 {
		t.Fatalf("Profiler.Merge drops state of fields %v", drops)
	}
}
