// Package core is the study's primary contribution as a reusable library:
// the workload characterizer. It consumes instrumented-driver traces and
// produces the full characterization the paper derives — request-size
// classes, read/write mix and rates, sequentiality, burstiness, spatial and
// temporal locality — plus the paper's stated next step: integrating those
// measurements into a parameter set for system design and tuning.
package core

import (
	"fmt"
	"sort"
	"strings"

	"essio/internal/analysis"
	"essio/internal/sim"
	"essio/internal/trace"
)

// Profile is the complete characterization of one traced workload.
type Profile struct {
	Label       string
	Nodes       int
	Duration    sim.Duration
	DiskSectors uint32

	Summary analysis.Summary
	Classes analysis.SizeClasses
	Origins map[trace.Origin]int

	// Bands is the spatial distribution in 100 K-sector bands; ParetoFrac
	// is the band fraction carrying 80 % of requests.
	Bands      []analysis.Band
	ParetoFrac float64

	// Hottest lists the most revisited sectors of disk 0; MeanInterAccess
	// is the paper's average time between accesses to the same sector.
	Hottest         []analysis.Heat
	MeanInterAccess sim.Duration

	// SeqFraction is the fraction of requests that begin exactly where
	// the previous request on the same disk ended (physical
	// sequentiality).
	SeqFraction float64

	// BurstIndex is the peak 1-second request count divided by the mean
	// (1 = perfectly smooth).
	BurstIndex float64

	// Queue summarizes the driver-queue depth recorded with every request.
	Queue analysis.QueueStats
}

// bandWidth is the paper's spatial bucket size.
const bandWidth = 100000

// Characterize computes a Profile from a merged multi-node trace. It is
// the batch form of the streaming Profiler sink.
func Characterize(label string, recs []trace.Record, duration sim.Duration, nodes int, diskSectors uint32) *Profile {
	p := NewProfiler(label, duration, nodes, diskSectors)
	for _, r := range recs {
		p.Add(r)
	}
	return p.Profile()
}

// String renders the profile as a report block.
func (p *Profile) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "workload profile: %s\n", p.Label)
	fmt.Fprintf(&b, "  %s\n", p.Summary)
	total := p.Classes.Block1K + p.Classes.Page4K + p.Classes.Large + p.Classes.Other
	if total > 0 {
		fmt.Fprintf(&b, "  sizes: 1KB %.1f%%  4KB %.1f%%  >=8KB %.1f%%  other %.1f%%\n",
			100*float64(p.Classes.Block1K)/float64(total),
			100*float64(p.Classes.Page4K)/float64(total),
			100*float64(p.Classes.Large)/float64(total),
			100*float64(p.Classes.Other)/float64(total))
	}
	fmt.Fprintf(&b, "  sequential: %.1f%%  burst index: %.1f  queue: mean %.2f max %d (busy %.0f%%)\n",
		100*p.SeqFraction, p.BurstIndex, p.Queue.MeanPending, p.Queue.MaxPending, 100*p.Queue.BusyFrac)
	fmt.Fprintf(&b, "  spatial: 80%% of requests in %.0f%% of %dK-sector bands\n",
		100*p.ParetoFrac, bandWidth/1000)
	if len(p.Hottest) > 0 {
		fmt.Fprintf(&b, "  hottest sectors (disk 0):")
		for _, h := range p.Hottest {
			fmt.Fprintf(&b, " %d(%d)", h.Sector, h.Count)
		}
		fmt.Fprintf(&b, "\n  mean same-sector revisit: %.1fs\n", p.MeanInterAccess.Seconds())
	}
	// Origin validation of the size-based inference.
	keys := make([]int, 0, len(p.Origins))
	for o := range p.Origins {
		keys = append(keys, int(o))
	}
	sort.Ints(keys)
	fmt.Fprintf(&b, "  origins:")
	for _, o := range keys {
		fmt.Fprintf(&b, " %s=%d", trace.Origin(o), p.Origins[trace.Origin(o)])
	}
	fmt.Fprintf(&b, "\n")
	return b.String()
}

// PagingShare reports the fraction of requests that are 4 KB (the paging
// class).
func (p *Profile) PagingShare() float64 {
	total := p.Classes.Block1K + p.Classes.Page4K + p.Classes.Large + p.Classes.Other
	if total == 0 {
		return 0
	}
	return float64(p.Classes.Page4K) / float64(total)
}

// DesignParams is the tuning parameter set the paper proposes deriving from
// the characterization ("our next step is to integrate these data into a
// parameter set that can be used for system design and tuning").
type DesignParams struct {
	// ReadAheadKB is the suggested sequential read-ahead window.
	ReadAheadKB int
	// WritePolicy is "write-back" (bursty, log-dominated loads) or
	// "write-through" (read-dominated loads with few writes).
	WritePolicy string
	// SuggestedMemoryMB is the node memory that would eliminate most of
	// the observed paging traffic.
	SuggestedMemoryMB int
	// SeparateLogDisk suggests moving logging off the data disk when log
	// plus trace traffic dominates.
	SeparateLogDisk bool
	// HotSectorCacheKB sizes a small non-volatile cache that would absorb
	// the hottest sectors.
	HotSectorCacheKB int
	// Rationale explains each choice.
	Rationale []string
}

// Derive computes tuning suggestions from the profile.
func (p *Profile) Derive(memoryMB int) DesignParams {
	var d DesignParams
	total := p.Classes.Block1K + p.Classes.Page4K + p.Classes.Large + p.Classes.Other
	if total == 0 {
		return d
	}
	// Read-ahead: profitable when the workload shows sequentiality or
	// large streaming requests.
	largeFrac := float64(p.Classes.Large) / float64(total)
	switch {
	case p.SeqFraction > 0.3 || largeFrac > 0.1:
		d.ReadAheadKB = 32
		d.Rationale = append(d.Rationale, "strong sequentiality: widen read-ahead to 32 KB")
	case p.SeqFraction > 0.1 || largeFrac > 0.01:
		d.ReadAheadKB = 16
		d.Rationale = append(d.Rationale, "moderate sequentiality: keep 16 KB read-ahead")
	default:
		d.ReadAheadKB = 4
		d.Rationale = append(d.Rationale, "little sequentiality: shrink read-ahead to 4 KB")
	}
	// Write policy: write-back wins when writes dominate and arrive in
	// log-style bursts.
	if p.Summary.WritePct > 60 && p.BurstIndex > 2 {
		d.WritePolicy = "write-back"
		d.Rationale = append(d.Rationale, "bursty write-dominated load: keep write-back with periodic flush")
	} else {
		d.WritePolicy = "write-through"
		d.Rationale = append(d.Rationale, "read-dominated or smooth load: write-through is safe and simple")
	}
	// Memory: each doubling roughly halves the paging class; suggest
	// enough doublings to bring paging under 5 % of requests.
	d.SuggestedMemoryMB = memoryMB
	paging := p.PagingShare()
	for paging > 0.05 && d.SuggestedMemoryMB < memoryMB*8 {
		d.SuggestedMemoryMB *= 2
		paging /= 2
	}
	if d.SuggestedMemoryMB > memoryMB {
		d.Rationale = append(d.Rationale,
			fmt.Sprintf("4 KB paging is %.0f%% of requests: grow memory to ~%d MB",
				100*p.PagingShare(), d.SuggestedMemoryMB))
	}
	// Logging placement.
	logShare := float64(p.Origins[trace.OriginLog]+p.Origins[trace.OriginTrace]) / float64(total)
	if logShare > 0.3 {
		d.SeparateLogDisk = true
		d.Rationale = append(d.Rationale,
			fmt.Sprintf("logging+instrumentation is %.0f%% of traffic: dedicate a log device", 100*logShare))
	}
	// Hot-sector cache: cover the observed hot spots.
	if len(p.Hottest) > 0 && p.Hottest[0].Count > 10 {
		d.HotSectorCacheKB = len(p.Hottest) * 4
		d.Rationale = append(d.Rationale, "persistent hot sectors: a small pinned cache absorbs them")
	}
	return d
}
