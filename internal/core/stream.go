// The streaming characterizer: a trace.Sink that builds the full Profile
// in one incremental pass, so full-scale traces can be profiled straight
// from a file or a live node merge without materializing them.

package core

import (
	"essio/internal/analysis"
	"essio/internal/obs"
	"essio/internal/sim"
	"essio/internal/trace"
)

// Profiler accumulates a complete workload Profile record by record. It
// implements trace.Sink; feed it a trace (in time order, as drivers emit
// it) and call Profile once the stream ends. Characterize is its batch
// form.
type Profiler struct {
	// Construction-time configuration: every shard of a parallel pass is
	// built with identical values, so Merge keeps the receiver's copy.
	label       string          //essvet:mergeignore identical across shards by construction
	nodes       int             //essvet:mergeignore identical across shards by construction
	duration    sim.Duration    //essvet:mergeignore identical across shards by construction
	diskSectors uint32          //essvet:mergeignore identical across shards by construction
	om          profilerMetrics //essvet:mergeignore per-worker handles; registries merge separately

	summary *analysis.SummaryAcc
	classes *analysis.SizeClassAcc
	origins *analysis.OriginAcc
	bands   *analysis.BandsAcc
	rate    *analysis.RateAcc
	pending *analysis.PendingAcc

	// Temporal locality is a per-disk property; node 0 is the
	// representative disk, as in the paper's Figure 8.
	node0Heat  *analysis.HeatAcc
	node0Inter *analysis.InterAccessAcc

	// Back-to-back physical sequentiality per disk. firstSector remembers
	// each disk's first observed request so Merge can replay the
	// sequentiality check across a shard boundary.
	lastEnd       map[uint8]uint32
	firstSector   map[uint8]uint32
	seq, seqTotal int
}

// NewProfiler returns a streaming characterizer for one traced workload.
func NewProfiler(label string, duration sim.Duration, nodes int, diskSectors uint32) *Profiler {
	return &Profiler{
		label:       label,
		nodes:       nodes,
		duration:    duration,
		diskSectors: diskSectors,
		summary:     analysis.NewSummaryAcc(label, duration, nodes),
		classes:     analysis.NewSizeClassAcc(),
		origins:     analysis.NewOriginAcc(),
		bands:       analysis.NewBandsAcc(bandWidth, diskSectors),
		rate:        analysis.NewRateAcc(),
		pending:     analysis.NewPendingAcc(),
		node0Heat:   analysis.NewHeatAcc(),
		node0Inter:  analysis.NewInterAccessAcc(),
		lastEnd:     make(map[uint8]uint32),
		firstSector: make(map[uint8]uint32),
	}
}

// SetAnchor pins the time origin of the 1-second activity bins. A
// parallel driver anchors every worker at the earliest record time of the
// whole trace so per-shard rate binning matches the sequential pass; see
// analysis.RateAcc.SetAnchor. Must be called before the first Add.
func (p *Profiler) SetAnchor(t0 sim.Time) { p.rate.SetAnchor(t0) }

// profilerMetrics holds the characterizer's observability handles; the
// zero value records nothing.
type profilerMetrics struct {
	stage    *obs.Stage
	batchLen *obs.Histogram
	span     *obs.StageTimer
}

// Instrument registers the characterizer's pipeline metrics in reg: the
// pipeline/accumulate stage counts records, batches, and bytes folded
// in; at Full a batch-length histogram and a span per AddBatch record
// the flow's shape. The span clock is the stage's own record counter —
// pure record arithmetic, so observed runs stay deterministic at any
// worker count.
func (p *Profiler) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	st := reg.Stage("accumulate")
	tr := obs.NewTracer(reg, func() int64 { return int64(st.Records()) })
	p.om = profilerMetrics{
		stage:    st,
		batchLen: reg.Histogram("pipeline/accumulate/batch_len", obs.ExpBuckets(64, 4, 8)),
		span:     tr.Stage("accumulate"),
	}
}

// Add folds one record into every metric of the profile.
func (p *Profiler) Add(r trace.Record) error {
	p.add(r)
	p.om.stage.Observe(1, trace.RecordSize)
	return nil
}

// add is the uncounted per-record fold shared by Add and AddBatch.
func (p *Profiler) add(r trace.Record) {
	p.summary.Add(r)
	p.classes.Add(r)
	p.origins.Add(r)
	p.bands.Add(r)
	p.rate.Add(r)
	p.pending.Add(r)
	if r.Node == 0 {
		p.node0Heat.Add(r)
		p.node0Inter.Add(r)
	}
	if end, ok := p.lastEnd[r.Node]; ok {
		p.seqTotal++
		if r.Sector == end {
			p.seq++
		}
	} else {
		p.firstSector[r.Node] = r.Sector
	}
	p.lastEnd[r.Node] = r.End()
}

// AddBatch folds a whole batch of records into the profile, amortizing
// the per-record interface dispatch of batched copies. Observation is
// per batch, not per record, keeping the instrumented hot path cheap.
func (p *Profiler) AddBatch(recs []trace.Record) error {
	sp := p.om.span.Start()
	for _, r := range recs {
		p.add(r)
	}
	p.om.stage.ObserveBatch(len(recs), len(recs)*trace.RecordSize)
	p.om.batchLen.Observe(int64(len(recs)))
	sp.End()
	return nil
}

// AddCols folds a whole columnar batch into the profile. The six
// whole-trace accumulators each scan just the columns they read; node-0
// temporal locality and per-disk sequentiality fuse into one pass over
// the node/sector/count/time columns. The per-disk tail state must stay
// in the maps (Merge replays and perturbs them per field), but within a
// batch it is cached in dense node-indexed arrays, so the two map
// operations per record of the row path become two per (node, batch).
func (p *Profiler) AddCols(cols *trace.ColBatch) error {
	sp := p.om.span.Start()
	p.summary.AddCols(cols)
	p.classes.AddCols(cols)
	p.origins.AddCols(cols)
	p.bands.AddCols(cols)
	p.rate.AddCols(cols)
	p.pending.AddCols(cols)

	var (
		end    [256]uint32
		endOK  [256]bool
		loaded [256]bool
	)
	nodes, secs := cols.Nodes, cols.Sectors
	cnts, times := cols.Counts, cols.Times
	for i, node := range nodes {
		sec := secs[i]
		if node == 0 {
			p.node0Heat.Observe(sec)
			p.node0Inter.Observe(sec, times[i])
		}
		if !loaded[node] {
			loaded[node] = true
			if e, ok := p.lastEnd[node]; ok {
				end[node], endOK[node] = e, true
			} else {
				// First record ever seen for this disk: remember its
				// opening sector for Merge's boundary replay, exactly
				// as the row path does.
				p.firstSector[node] = sec
			}
		}
		if endOK[node] {
			p.seqTotal++
			if sec == end[node] {
				p.seq++
			}
		}
		end[node] = sec + uint32(cnts[i])
		endOK[node] = true
	}
	for n, ok := range loaded {
		if ok {
			p.lastEnd[uint8(n)] = end[n]
		}
	}

	p.om.stage.ObserveBatch(cols.Len(), cols.Len()*trace.RecordSize)
	p.om.batchLen.Observe(int64(cols.Len()))
	sp.End()
	return nil
}

// Merge folds another profiler into p, leaving p exactly as if it had
// consumed both record streams in one pass. It is exact when the shards
// are node-disjoint (each disk's records went wholly to one profiler, as
// the parallel driver arranges) or when o saw a time-contiguous
// continuation of p's stream; in either case both profilers must share a
// rate anchor (SetAnchor) for the activity bins to line up.
func (p *Profiler) Merge(o *Profiler) {
	p.summary.Merge(o.summary)
	p.classes.Merge(o.classes)
	p.origins.Merge(o.origins)
	p.bands.Merge(o.bands)
	p.rate.Merge(o.rate)
	p.pending.Merge(o.pending)
	p.node0Heat.Merge(o.node0Heat)
	p.node0Inter.Merge(o.node0Inter)

	// Replay the per-disk back-to-back check across the shard boundary,
	// then adopt o's per-disk tail state.
	p.seq += o.seq
	p.seqTotal += o.seqTotal
	for node, sector := range o.firstSector {
		if end, ok := p.lastEnd[node]; ok {
			p.seqTotal++
			if sector == end {
				p.seq++
			}
		} else {
			p.firstSector[node] = sector
		}
	}
	for node, end := range o.lastEnd {
		p.lastEnd[node] = end
	}
}

// Profile finalizes the characterization.
func (p *Profiler) Profile() *Profile {
	prof := &Profile{
		Label:       p.label,
		Nodes:       p.nodes,
		Duration:    p.duration,
		DiskSectors: p.diskSectors,
		Summary:     p.summary.Summary(),
		Classes:     p.classes.Classes(),
		Origins:     p.origins.Breakdown(),
		Queue:       p.pending.Stats(),
	}
	prof.Bands = p.bands.Bands()
	prof.ParetoFrac = analysis.Pareto(prof.Bands, 0.8)
	prof.Hottest = analysis.Hottest(p.node0Heat.Heat(p.duration), 5)
	prof.MeanInterAccess, _ = p.node0Inter.Result()
	if p.seqTotal > 0 {
		prof.SeqFraction = float64(p.seq) / float64(p.seqTotal)
	}
	prof.BurstIndex = burstFromRates(p.rate.Points())
	return prof
}

// burstFromRates is peak-to-mean of a 1-second arrival profile.
func burstFromRates(rates []analysis.Point) float64 {
	if len(rates) == 0 {
		return 0
	}
	var sum, peak float64
	for _, pt := range rates {
		sum += pt.V
		if pt.V > peak {
			peak = pt.V
		}
	}
	mean := sum / float64(len(rates))
	if mean == 0 {
		return 0
	}
	return peak / mean
}
