package core

// The Profiler's columnar fold must be indistinguishable from the
// per-record fold — including the per-disk sequentiality maps the
// column path caches in dense arrays, and the first-sector bookkeeping
// Merge replays across shard boundaries.

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"essio/internal/sim"
	"essio/internal/trace"
)

// mkProfStream builds a time-ordered multi-node stream with frequent
// back-to-back sequential pairs so the seq/seqTotal counters move.
func mkProfStream(rng *rand.Rand) []trace.Record {
	recs := make([]trace.Record, rng.Intn(800))
	var t sim.Time
	next := map[uint8]uint32{}
	for i := range recs {
		t += sim.Time(rng.Intn(int(sim.Second / 8)))
		node := uint8(rng.Intn(4))
		sec, ok := next[node]
		if !ok || rng.Intn(3) == 0 {
			sec = uint32(rng.Intn(1 << 20))
		}
		count := uint16(1 + rng.Intn(64))
		next[node] = sec + uint32(count)
		recs[i] = trace.Record{
			Time:    t,
			Sector:  sec,
			Count:   count,
			Pending: uint16(rng.Intn(4)),
			Op:      trace.Op(rng.Intn(2)),
			Node:    node,
			Origin:  trace.Origin(rng.Intn(7)),
		}
	}
	return recs
}

func TestQuickProfilerColsMatchRows(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		recs := mkProfStream(rng)
		rows := NewProfiler("wl", 70*sim.Second, 4, 1<<20)
		cols := NewProfiler("wl", 70*sim.Second, 4, 1<<20)
		for _, r := range recs {
			if err := rows.Add(r); err != nil {
				return false
			}
		}
		var b trace.ColBatch
		rest := recs
		for len(rest) > 0 {
			n := 1 + rng.Intn(len(rest))
			b.Reset()
			b.AppendRecords(rest[:n])
			if err := cols.AddCols(&b); err != nil {
				return false
			}
			rest = rest[n:]
		}
		if !reflect.DeepEqual(rows, cols) {
			return false
		}
		// The derived profiles must agree too (belt and braces: Profile
		// walks every accumulator).
		return reflect.DeepEqual(rows.Profile(), cols.Profile())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestProfilerColsThenMerge drives two shard profilers — one fed rows,
// one fed columns — through the Merge boundary replay and requires the
// same merged state, proving the column path maintains the maps Merge
// depends on.
func TestProfilerColsThenMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	recsA := mkProfStream(rng)
	recsB := mkProfStream(rng)

	viaRows := func() *Profiler {
		a := NewProfiler("wl", 70*sim.Second, 4, 1<<20)
		b := NewProfiler("wl", 70*sim.Second, 4, 1<<20)
		a.SetAnchor(0)
		b.SetAnchor(0)
		for _, r := range recsA {
			a.Add(r)
		}
		for _, r := range recsB {
			b.Add(r)
		}
		a.Merge(b)
		return a
	}()
	viaCols := func() *Profiler {
		a := NewProfiler("wl", 70*sim.Second, 4, 1<<20)
		b := NewProfiler("wl", 70*sim.Second, 4, 1<<20)
		a.SetAnchor(0)
		b.SetAnchor(0)
		var batch trace.ColBatch
		batch.AppendRecords(recsA)
		a.AddCols(&batch)
		batch.Reset()
		batch.AppendRecords(recsB)
		b.AddCols(&batch)
		a.Merge(b)
		return a
	}()
	if !reflect.DeepEqual(viaRows, viaCols) {
		t.Fatal("merged profiler state diverged between row and columnar shard feeds")
	}
}
