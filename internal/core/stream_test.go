package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"essio/internal/sim"
	"essio/internal/trace"
)

// TestProfilerMatchesCharacterize feeds the streaming Profiler one record
// at a time from a Source and checks the result is identical to the batch
// Characterize of the same trace — the single-pass path must change
// nothing about the paper's characterization.
func TestProfilerMatchesCharacterize(t *testing.T) {
	f := func(seed int64, durSecs uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		recs := make([]trace.Record, rng.Intn(300))
		for i := range recs {
			recs[i] = trace.Record{
				Time:    sim.Time(rng.Intn(30)) * sim.Time(sim.Second),
				Sector:  uint32(rng.Intn(40)) * 25000,
				Count:   uint16(rng.Intn(64) + 1),
				Pending: uint16(rng.Intn(5)),
				Op:      trace.Op(rng.Intn(2)),
				Node:    uint8(rng.Intn(4)),
				Origin:  trace.Origin(rng.Intn(7)),
			}
		}
		duration := sim.Duration(durSecs) * sim.Second
		p := NewProfiler("quick", duration, 4, 1024000)
		if _, err := trace.Copy(p, trace.SliceSource(recs)); err != nil {
			return false
		}
		return reflect.DeepEqual(p.Profile(), Characterize("quick", recs, duration, 4, 1024000))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestProfilerOnSyntheticTrace pins the streaming path on the package's
// structured synthetic workload.
func TestProfilerOnSyntheticTrace(t *testing.T) {
	recs := syntheticTrace()
	p := NewProfiler("synthetic", 60*sim.Second, 1, 1024000)
	for _, r := range recs {
		if err := p.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(p.Profile(), Characterize("synthetic", recs, 60*sim.Second, 1, 1024000)) {
		t.Fatal("streaming profile diverged from batch")
	}
}
