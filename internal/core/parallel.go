// The multi-core characterizer: per-node traces sharded across workers,
// one Profiler per worker, folded back together with the exact
// accumulator merges. Output is deterministic and identical to the
// single-threaded Characterize of the merged trace.

package core

import (
	"runtime"
	"sort"
	"sync"

	"essio/internal/obs"
	"essio/internal/sim"
	"essio/internal/trace"
)

// ProfileParallel computes the same Profile as Characterize of the merged
// per-node traces, sharding the per-node traces across workers. workers
// <= 0 uses GOMAXPROCS. Every metric of the profile is either
// order-insensitive or per-disk, so node-disjoint sharding plus the
// accumulator Merge methods reproduce the sequential result exactly: the
// per-second rate bins are anchored at the earliest record of the whole
// trace, and per-node traces are normalized to (Time, Node, Sector) order
// first — the same normalization the sequential merge applies.
func ProfileParallel(label string, perNode [][]trace.Record, duration sim.Duration, nodes int, diskSectors uint32, workers int) *Profile {
	return ProfileParallelObs(label, perNode, duration, nodes, diskSectors, workers, nil)
}

// ProfileParallelObs is ProfileParallel with pipeline observability:
// each worker collects into a private registry at reg's level, and the
// per-worker registries are merged into reg after the workers join —
// the same shard-and-merge discipline as the profilers themselves, so
// the resulting metrics are byte-identical at any worker count. A nil
// reg runs unobserved.
func ProfileParallelObs(label string, perNode [][]trace.Record, duration sim.Duration, nodes int, diskSectors uint32, workers int, reg *obs.Registry) *Profile {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(perNode) {
		workers = len(perNode)
	}
	if workers < 1 {
		workers = 1
	}

	// Normalize the shards and find the earliest record of the whole trace
	// — the rate-bin anchor a sequential pass over the merged stream would
	// use — before any worker starts.
	traces := make([][]trace.Record, 0, len(perNode))
	anchored := false
	var t0 sim.Time
	for _, t := range perNode {
		t = normalizeTrace(t)
		traces = append(traces, t)
		if len(t) > 0 && (!anchored || t[0].Time < t0) {
			t0 = t[0].Time
			anchored = true
		}
	}

	if workers == 1 {
		p := NewProfiler(label, duration, nodes, diskSectors)
		p.Instrument(reg)
		if anchored {
			p.SetAnchor(t0)
		}
		for _, t := range traces {
			p.AddBatch(t)
		}
		return p.Profile()
	}

	profs := make([]*Profiler, workers)
	regs := make([]*obs.Registry, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		p := NewProfiler(label, duration, nodes, diskSectors)
		if reg != nil {
			regs[w] = obs.New(reg.Level())
			p.Instrument(regs[w])
		}
		if anchored {
			p.SetAnchor(t0)
		}
		profs[w] = p
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(traces); i += workers {
				p.AddBatch(traces[i])
			}
		}(w)
	}
	wg.Wait()

	for _, p := range profs[1:] {
		profs[0].Merge(p)
	}
	for _, r := range regs {
		reg.Merge(r)
	}
	return profs[0].Profile()
}

// normalizeTrace returns t in (Time, Node, Sector) order, stably sorting
// a copy when needed — the per-node counterpart of the normalization
// trace.MergeSlices applies, so sharded workers see each node's records
// in exactly the order the sequential merged pass would.
func normalizeTrace(t []trace.Record) []trace.Record {
	if trace.SortedByKey(t) {
		return t
	}
	c := make([]trace.Record, len(t))
	copy(c, t)
	sort.SliceStable(c, func(a, b int) bool { return trace.Less(c[a], c[b]) })
	return c
}
