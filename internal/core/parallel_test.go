package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"essio/internal/sim"
	"essio/internal/trace"
)

// mkPerNode builds per-node traces with clustered keys (tied timestamps,
// repeated sectors) so every order-sensitive metric is stressed. sorted
// controls whether each node's records arrive time-ordered like real
// driver captures or deliberately shuffled.
func mkPerNode(rng *rand.Rand, sorted bool) [][]trace.Record {
	nodes := 1 + rng.Intn(6)
	perNode := make([][]trace.Record, nodes)
	for n := range perNode {
		recs := make([]trace.Record, rng.Intn(300))
		for i := range recs {
			recs[i] = trace.Record{
				Time:    sim.Time(rng.Intn(30)) * sim.Time(sim.Second),
				Sector:  uint32(rng.Intn(10)) * 50000,
				Count:   uint16(rng.Intn(64) + 1),
				Pending: uint16(rng.Intn(4)),
				Op:      trace.Op(rng.Intn(2)),
				Node:    uint8(n),
				Origin:  trace.Origin(rng.Intn(7)),
			}
		}
		if sorted {
			recs = normalizeTrace(recs)
		}
		perNode[n] = recs
	}
	return perNode
}

func TestQuickProfileParallelMatchesSequential(t *testing.T) {
	const diskSectors = 1024000
	for _, sorted := range []bool{true, false} {
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			perNode := mkPerNode(rng, sorted)
			want := Characterize("t", trace.Merge(perNode...), 30*sim.Second, len(perNode), diskSectors)
			for _, workers := range []int{1, 2, 8} {
				got := ProfileParallel("t", perNode, 30*sim.Second, len(perNode), diskSectors, workers)
				if !reflect.DeepEqual(got, want) {
					t.Logf("workers=%d sorted=%v seed=%d:\n got %+v\nwant %+v", workers, sorted, seed, got, want)
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Fatalf("sorted=%v: %v", sorted, err)
		}
	}
}

// TestProfilerMergeConcatenation splits one merged stream at an arbitrary
// point — the chunked-file sharding shape — and requires the folded
// profilers to equal the sequential pass.
func TestProfilerMergeConcatenation(t *testing.T) {
	const diskSectors = 1024000
	rng := rand.New(rand.NewSource(17))
	merged := trace.Merge(mkPerNode(rng, true)...)
	if len(merged) < 10 {
		t.Fatal("fixture too small")
	}
	want := Characterize("t", merged, 30*sim.Second, 4, diskSectors)
	for _, cut := range []int{0, 1, len(merged) / 3, len(merged) - 1, len(merged)} {
		a := NewProfiler("t", 30*sim.Second, 4, diskSectors)
		b := NewProfiler("t", 30*sim.Second, 4, diskSectors)
		a.SetAnchor(merged[0].Time)
		b.SetAnchor(merged[0].Time)
		a.AddBatch(merged[:cut])
		b.AddBatch(merged[cut:])
		a.Merge(b)
		if got := a.Profile(); !reflect.DeepEqual(got, want) {
			t.Fatalf("cut=%d:\n got %+v\nwant %+v", cut, got, want)
		}
	}
}
