package sim

// Completion is a one-shot event. Processes wait on it; once Complete is
// called all present and future waiters proceed immediately. Completions
// carry an optional error so I/O submitters can observe failures.
type Completion struct {
	e         *Engine
	done      bool
	err       error
	waiters   []*Proc
	callbacks []func(error)
}

// NewCompletion returns an incomplete completion bound to e.
func NewCompletion(e *Engine) *Completion {
	return &Completion{e: e}
}

// Complete fires the completion with a nil error.
func (c *Completion) Complete() { c.CompleteErr(nil) }

// CompleteErr fires the completion, recording err for waiters. Completing an
// already-complete completion is a no-op.
func (c *Completion) CompleteErr(err error) {
	if c.done {
		return
	}
	c.done = true
	c.err = err
	ws := c.waiters
	c.waiters = nil
	for _, p := range ws {
		c.e.schedule(c.e.now, func() { c.e.switchTo(p) })
	}
	cbs := c.callbacks
	c.callbacks = nil
	for _, fn := range cbs {
		c.e.schedule(c.e.now, func() { fn(err) })
	}
}

// OnComplete registers fn to run in engine context when the completion
// fires. If it already fired, fn is scheduled immediately.
func (c *Completion) OnComplete(fn func(error)) {
	if c.done {
		err := c.err
		c.e.schedule(c.e.now, func() { fn(err) })
		return
	}
	c.callbacks = append(c.callbacks, fn)
}

// IsComplete reports whether Complete has been called.
func (c *Completion) IsComplete() bool { return c.done }

// Err returns the error recorded at completion (nil before completion).
func (c *Completion) Err() error { return c.err }

// Wait blocks p until the completion fires and returns the recorded error.
// If the completion already fired, Wait returns immediately.
func (c *Completion) Wait(p *Proc) error {
	if !c.done {
		c.waiters = append(c.waiters, p)
		p.park()
	}
	return c.err
}

// WaitQueue is a FIFO list of sleeping processes, the simulation analogue of
// a kernel wait queue. Wakers choose how many sleepers to release.
type WaitQueue struct {
	e        *Engine
	sleepers []*Proc
}

// NewWaitQueue returns an empty wait queue bound to e.
func NewWaitQueue(e *Engine) *WaitQueue {
	return &WaitQueue{e: e}
}

// Len reports the number of sleeping processes.
func (w *WaitQueue) Len() int { return len(w.sleepers) }

// Sleep parks p on the queue until some waker releases it.
func (w *WaitQueue) Sleep(p *Proc) {
	w.sleepers = append(w.sleepers, p)
	p.park()
}

// WakeOne releases the longest-sleeping process, reporting whether one was
// released.
func (w *WaitQueue) WakeOne() bool {
	if len(w.sleepers) == 0 {
		return false
	}
	p := w.sleepers[0]
	copy(w.sleepers, w.sleepers[1:])
	w.sleepers = w.sleepers[:len(w.sleepers)-1]
	w.e.schedule(w.e.now, func() { w.e.switchTo(p) })
	return true
}

// WakeAll releases every sleeping process in FIFO order.
func (w *WaitQueue) WakeAll() {
	for w.WakeOne() {
	}
}

// Semaphore is a counting semaphore with FIFO wakeup.
type Semaphore struct {
	count int
	wq    *WaitQueue
}

// NewSemaphore returns a semaphore with the given initial count.
func NewSemaphore(e *Engine, count int) *Semaphore {
	return &Semaphore{count: count, wq: NewWaitQueue(e)}
}

// Acquire takes one unit, sleeping until one is available.
func (s *Semaphore) Acquire(p *Proc) {
	for s.count <= 0 {
		s.wq.Sleep(p)
	}
	s.count--
}

// TryAcquire takes one unit if available without sleeping.
func (s *Semaphore) TryAcquire() bool {
	if s.count <= 0 {
		return false
	}
	s.count--
	return true
}

// Release returns one unit and wakes one sleeper if any.
func (s *Semaphore) Release() {
	s.count++
	s.wq.WakeOne()
}

// Available reports the current count.
func (s *Semaphore) Available() int { return s.count }

// Barrier blocks processes until a fixed number have arrived, then releases
// them all. Reusable for successive rounds.
type Barrier struct {
	e       *Engine
	parties int
	arrived int
	wq      *WaitQueue
}

// NewBarrier returns a barrier for the given number of parties.
func NewBarrier(e *Engine, parties int) *Barrier {
	if parties <= 0 {
		panic("sim: barrier needs at least one party")
	}
	return &Barrier{e: e, parties: parties, wq: NewWaitQueue(e)}
}

// Await blocks p until parties processes have called Await for this round.
func (b *Barrier) Await(p *Proc) {
	b.arrived++
	if b.arrived == b.parties {
		b.arrived = 0
		b.wq.WakeAll()
		return
	}
	b.wq.Sleep(p)
}
