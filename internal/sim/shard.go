package sim

import (
	"fmt"
	"sort"
	"sync"
)

// Shards runs several engines as one conservatively synchronized
// simulation. Each engine owns a disjoint partition of the model (per-node
// state in the cluster) and advances independently inside bounded time
// windows; engines only interact at window barriers, where cross-shard
// messages staged during the window are sorted into a total order and
// injected into their target engines.
//
// The window discipline is classic conservative lookahead: every window is
// [T, T+L) where T is the globally earliest pending event and L is the
// lookahead — the minimum latency of any cross-shard interaction. A message
// sent at time t inside the window is delivered no earlier than t+L ≥ T+L,
// i.e. always in a strictly later window, so engines never see a message
// for their past and no rollback is needed.
//
// Determinism is by construction, not by accident of goroutine timing:
//   - Window boundaries depend only on virtual event times, which are
//     identical at any shard count.
//   - Cross-shard messages carry a (time, node, sequence) stamp; the
//     barrier sorts all staged messages by that total order before
//     injecting them, so target-engine scheduling order — and therefore
//     firing order — is identical whether the senders shared one engine or
//     ran on sixteen.
//   - Within a window, concurrently running engines touch only their own
//     partition; the barrier join is the single synchronization point.
//
// One shard degenerates to a sequential simulation that still runs the
// same windowed algorithm, which is what makes shards=1 and shards=N
// byte-identical.
type Shards struct {
	engines   []*Engine
	lookahead Duration
	services  []BarrierService
	pending   []xmsg
	now       Time
	windowEnd Time
	inBarrier bool
	queueHW   int
	closed    bool
}

// BarrierService is a shared-resource model that cannot run inside a
// window (its state spans shards — the ethernet rails, for instance).
// During a window, shards stage requests into service-private per-shard
// buffers; at each barrier the coordinator calls Window, and the service
// processes all staged requests in (time, node, sequence) order on the
// coordinator goroutine, injecting any resulting deliveries via Inject.
type BarrierService interface {
	// Window processes requests staged during the window ending at end.
	Window(end Time)
}

// xmsg is a cross-shard message: a callback to fire at time at on engine
// to, stamped with the sender's (node, seq) for deterministic ordering.
type xmsg struct {
	to   *Engine
	at   Time
	node int
	seq  uint64
	fn   func()
}

// NewShards builds n engines coupled under the given lookahead (the
// minimum cross-shard delivery latency, typically the interconnect's
// propagation delay). Sharded engines have no Rand stream: randomness must
// come from explicitly seeded per-node sources so draw order cannot depend
// on the shard layout.
func NewShards(n int, lookahead Duration) *Shards {
	if n < 1 {
		panic("sim: NewShards needs at least one shard")
	}
	if lookahead <= 0 {
		panic("sim: NewShards needs positive lookahead")
	}
	s := &Shards{lookahead: lookahead}
	for i := 0; i < n; i++ {
		s.engines = append(s.engines, &Engine{
			parked: make(chan struct{}),
			owner:  s,
			shard:  i,
		})
	}
	return s
}

// Size reports the number of shards.
func (s *Shards) Size() int { return len(s.engines) }

// Engine returns shard i's engine.
func (s *Shards) Engine(i int) *Engine { return s.engines[i] }

// Lookahead reports the window length.
func (s *Shards) Lookahead() Duration { return s.lookahead }

// Now reports the coordinator clock: the time the last Run advanced to.
func (s *Shards) Now() Time { return s.now }

// AddService registers a shared-resource model processed at each barrier.
// Services run in registration order.
func (s *Shards) AddService(svc BarrierService) { s.services = append(s.services, svc) }

// EventsFired sums executed events across all engines. The global event
// set is identical at any shard count, so this total is too.
func (s *Shards) EventsFired() uint64 {
	var n uint64
	for _, e := range s.engines {
		n += e.fired
	}
	return n
}

// QueueHighWater reports the most events pending across all engines as
// sampled at barrier cuts. Barrier cuts fall at identical virtual times at
// any shard count, so the value is shard-invariant (unlike the per-engine
// exact high-water, which depends on how schedules interleave on a shared
// engine).
func (s *Shards) QueueHighWater() int { return s.queueHW }

// Run advances all engines to until under the window discipline. Events
// scheduled at until itself still execute, matching Engine.Run.
func (s *Shards) Run(until Time) {
	if s.closed {
		panic("sim: Run on closed shards")
	}
	for {
		start, ok := s.earliest()
		if !ok || start > until {
			break
		}
		end := start.Add(s.lookahead)
		if end > until+1 {
			end = until + 1
		}
		s.window(end)
	}
	for _, e := range s.engines {
		if e.now < until {
			e.now = until
		}
	}
	if s.now < until {
		s.now = until
	}
}

// RunUntilIdle advances windows until no engine has pending events.
func (s *Shards) RunUntilIdle() {
	if s.closed {
		panic("sim: RunUntilIdle on closed shards")
	}
	for {
		start, ok := s.earliest()
		if !ok {
			break
		}
		s.window(start.Add(s.lookahead))
	}
	for _, e := range s.engines {
		if e.now > s.now {
			s.now = e.now
		}
	}
}

// earliest reports the globally earliest pending event time.
func (s *Shards) earliest() (Time, bool) {
	var min Time
	found := false
	for _, e := range s.engines {
		if at, ok := e.next(); ok && (!found || at < min) {
			min, found = at, true
		}
	}
	return min, found
}

// window runs every engine with work before end, in parallel when more
// than one has any, then synchronizes at the barrier.
func (s *Shards) window(end Time) {
	var active []*Engine
	for _, e := range s.engines {
		if at, ok := e.next(); ok && at < end {
			active = append(active, e)
		}
	}
	switch len(active) {
	case 0:
	case 1:
		active[0].runWindow(end)
	default:
		var wg sync.WaitGroup
		for _, e := range active {
			wg.Add(1)
			go func(e *Engine) { //essvet:ignore determinism — barrier-joined window worker
				defer wg.Done()
				e.runWindow(end)
			}(e)
		}
		wg.Wait()
	}
	s.barrier(end)
}

// barrier drains every engine's outbox, lets services process their staged
// requests, then injects all resulting messages in (time, node, sequence)
// order. Runs on the coordinator goroutine after the window join.
func (s *Shards) barrier(end Time) {
	s.windowEnd = end
	s.inBarrier = true
	for _, e := range s.engines {
		if len(e.outbox) == 0 {
			continue
		}
		s.pending = append(s.pending, e.outbox...)
		for i := range e.outbox {
			e.outbox[i].fn = nil
		}
		e.outbox = e.outbox[:0]
	}
	for _, svc := range s.services {
		svc.Window(end)
	}
	// (at, node, seq) stamps are unique — same-node messages share a
	// monotone per-engine counter, different nodes differ in node — so
	// this order is total and identical at any shard count.
	sort.Slice(s.pending, func(i, j int) bool {
		a, b := s.pending[i], s.pending[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.node != b.node {
			return a.node < b.node
		}
		return a.seq < b.seq
	})
	for _, m := range s.pending {
		m.to.schedule(m.at, m.fn)
	}
	for i := range s.pending {
		s.pending[i].fn = nil
	}
	s.pending = s.pending[:0]
	s.inBarrier = false
	total := 0
	for _, e := range s.engines {
		total += len(e.events)
	}
	if total > s.queueHW {
		s.queueHW = total
	}
}

// Inject schedules a cross-shard delivery from a BarrierService.
// Coordinator context only (inside Window). at must not precede the
// current window's end, or a target engine could have already run past it.
func (s *Shards) Inject(to *Engine, at Time, node int, seq uint64, fn func()) {
	if !s.inBarrier {
		panic("sim: Inject outside a barrier")
	}
	if at < s.windowEnd {
		panic(fmt.Sprintf("sim: Inject at %v inside the window ending %v breaks lookahead", at, s.windowEnd))
	}
	s.pending = append(s.pending, xmsg{to: to, at: at, node: node, seq: seq, fn: fn})
}

// Close closes every engine (killing their processes, stopping tickers,
// releasing events). Safe to call more than once.
func (s *Shards) Close() {
	if s.closed {
		return
	}
	s.closed = true
	for _, e := range s.engines {
		e.Close()
	}
	s.pending = nil
	s.services = nil
}

// Cross schedules fn at time at on engine to from shard context. node is
// the sending node's index, the middle component of the deterministic
// (time, node, sequence) delivery order. In sharded mode the message is
// staged and injected at the next barrier — at must be at least the
// lookahead past the sender's clock. On a standalone engine Cross is a
// plain schedule (to must be the engine itself).
func (e *Engine) Cross(to *Engine, node int, at Time, fn func()) {
	if e.owner == nil {
		if to != e {
			panic("sim: Cross between unrelated engines")
		}
		e.schedule(at, fn)
		return
	}
	if to.owner != e.owner {
		panic("sim: Cross to an engine of a different Shards group")
	}
	if at < e.now.Add(e.owner.lookahead) {
		panic(fmt.Sprintf("sim: Cross delivery at %v within lookahead of %v", at, e.now))
	}
	e.outbox = append(e.outbox, xmsg{to: to, at: at, node: node, seq: e.Stamp(), fn: fn})
}

// Stamp allocates the next cross-shard sequence number for work staged
// from this engine. Cross uses it internally; BarrierServices use it to
// give their staged requests the same per-node total order as Cross
// messages (the counter is shared, so one node's sends and service
// requests are mutually ordered).
func (e *Engine) Stamp() uint64 {
	n := e.xseq
	e.xseq++
	return n
}
