// Package sim provides a deterministic, process-oriented discrete-event
// simulation engine.
//
// The engine advances a virtual clock with microsecond resolution and runs
// simulated processes as coroutine-style goroutines: exactly one process (or
// engine callback) executes at a time, and the order of execution is fully
// determined by (event time, scheduling sequence number). Given the same
// seed and the same sequence of Spawn/After calls, a simulation is
// bit-for-bit reproducible.
package sim

import "fmt"

// Time is an absolute virtual time in microseconds since simulation start.
type Time int64

// Duration is a span of virtual time in microseconds.
type Duration int64

// Common durations, patterned after time.Duration but in virtual time.
const (
	Microsecond Duration = 1
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
	Minute      Duration = 60 * Second
)

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e6 }

// Seconds reports d as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e6 }

// Milliseconds reports d as floating-point milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / 1e3 }

func (t Time) String() string {
	return fmt.Sprintf("%.6fs", t.Seconds())
}

func (d Duration) String() string {
	return fmt.Sprintf("%.6fs", d.Seconds())
}

// DurationOf converts floating-point seconds to a Duration, rounding to the
// nearest microsecond.
func DurationOf(seconds float64) Duration {
	return Duration(seconds*1e6 + 0.5)
}
