package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestClockStartsAtZero(t *testing.T) {
	e := NewEngine(1)
	defer e.Close()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
}

func TestAfterAdvancesClock(t *testing.T) {
	e := NewEngine(1)
	defer e.Close()
	var at Time
	e.After(5*Millisecond, func() { at = e.Now() })
	e.RunUntilIdle()
	if at != Time(5*Millisecond) {
		t.Fatalf("event fired at %v, want 5ms", at)
	}
}

func TestEventOrderingByTime(t *testing.T) {
	e := NewEngine(1)
	defer e.Close()
	var order []int
	e.After(3*Second, func() { order = append(order, 3) })
	e.After(1*Second, func() { order = append(order, 1) })
	e.After(2*Second, func() { order = append(order, 2) })
	e.RunUntilIdle()
	if fmt.Sprint(order) != "[1 2 3]" {
		t.Fatalf("order = %v", order)
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	e := NewEngine(1)
	defer e.Close()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.After(Second, func() { order = append(order, i) })
	}
	e.RunUntilIdle()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d; same-time events must run FIFO", i, v)
		}
	}
}

func TestRunStopsAtBound(t *testing.T) {
	e := NewEngine(1)
	defer e.Close()
	fired := 0
	e.After(1*Second, func() { fired++ })
	e.After(2*Second, func() { fired++ })
	e.After(3*Second, func() { fired++ })
	e.Run(Time(2 * Second))
	if fired != 2 {
		t.Fatalf("fired = %d, want 2 (events at t<=bound inclusive)", fired)
	}
	if e.Now() != Time(2*Second) {
		t.Fatalf("Now() = %v, want exactly the bound", e.Now())
	}
	e.RunUntilIdle()
	if fired != 3 {
		t.Fatalf("fired = %d after RunUntilIdle, want 3", fired)
	}
}

func TestRunAdvancesClockToBoundWhenIdle(t *testing.T) {
	e := NewEngine(1)
	defer e.Close()
	e.Run(Time(10 * Second))
	if e.Now() != Time(10*Second) {
		t.Fatalf("Now() = %v, want 10s", e.Now())
	}
}

func TestEverymRepeats(t *testing.T) {
	e := NewEngine(1)
	defer e.Close()
	var times []Time
	e.Every(Second, func() { times = append(times, e.Now()) })
	e.Run(Time(5*Second + 500*Millisecond))
	if len(times) != 5 {
		t.Fatalf("got %d ticks, want 5", len(times))
	}
	for i, tm := range times {
		if tm != Time((i+1))*Time(Second) {
			t.Fatalf("tick %d at %v", i, tm)
		}
	}
}

func TestProcSleep(t *testing.T) {
	e := NewEngine(1)
	defer e.Close()
	var wake Time
	e.Spawn("sleeper", func(p *Proc) {
		p.Sleep(7 * Second)
		wake = p.Now()
	})
	e.RunUntilIdle()
	if wake != Time(7*Second) {
		t.Fatalf("woke at %v, want 7s", wake)
	}
}

func TestProcSerialized(t *testing.T) {
	// Two processes interleaving sleeps must alternate deterministically.
	e := NewEngine(1)
	defer e.Close()
	var log []string
	mk := func(name string) func(*Proc) {
		return func(p *Proc) {
			for i := 0; i < 3; i++ {
				log = append(log, fmt.Sprintf("%s%d@%v", name, i, p.Now()))
				p.Sleep(2 * Second)
			}
		}
	}
	e.Spawn("a", mk("a"))
	e.SpawnAt(Time(Second), "b", mk("b"))
	e.RunUntilIdle()
	want := "[a0@0.000000s b0@1.000000s a1@2.000000s b1@3.000000s a2@4.000000s b2@5.000000s]"
	if fmt.Sprint(log) != want {
		t.Fatalf("log = %v\nwant  %v", log, want)
	}
}

func TestCompletionWakesWaiters(t *testing.T) {
	e := NewEngine(1)
	defer e.Close()
	c := NewCompletion(e)
	var woke []Time
	for i := 0; i < 3; i++ {
		e.Spawn("w", func(p *Proc) {
			if err := c.Wait(p); err != nil {
				t.Errorf("Wait err = %v", err)
			}
			woke = append(woke, p.Now())
		})
	}
	e.After(4*Second, c.Complete)
	e.RunUntilIdle()
	if len(woke) != 3 {
		t.Fatalf("woke %d waiters, want 3", len(woke))
	}
	for _, w := range woke {
		if w != Time(4*Second) {
			t.Fatalf("waiter woke at %v, want 4s", w)
		}
	}
}

func TestCompletionAfterFireIsImmediate(t *testing.T) {
	e := NewEngine(1)
	defer e.Close()
	c := NewCompletion(e)
	c.CompleteErr(fmt.Errorf("boom"))
	var got error
	e.Spawn("w", func(p *Proc) { got = c.Wait(p) })
	e.RunUntilIdle()
	if got == nil || got.Error() != "boom" {
		t.Fatalf("Wait returned %v, want boom", got)
	}
}

func TestCompletionDoubleCompleteKeepsFirstErr(t *testing.T) {
	e := NewEngine(1)
	defer e.Close()
	c := NewCompletion(e)
	c.CompleteErr(fmt.Errorf("first"))
	c.CompleteErr(fmt.Errorf("second"))
	if c.Err().Error() != "first" {
		t.Fatalf("Err() = %v, want first", c.Err())
	}
}

func TestWaitQueueFIFO(t *testing.T) {
	e := NewEngine(1)
	defer e.Close()
	wq := NewWaitQueue(e)
	var order []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		e.Spawn(name, func(p *Proc) {
			wq.Sleep(p)
			order = append(order, name)
		})
	}
	e.After(Second, func() {
		if wq.Len() != 3 {
			t.Errorf("Len = %d, want 3", wq.Len())
		}
		wq.WakeOne()
	})
	e.After(2*Second, func() { wq.WakeAll() })
	e.RunUntilIdle()
	if fmt.Sprint(order) != "[a b c]" {
		t.Fatalf("order = %v", order)
	}
}

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	e := NewEngine(1)
	defer e.Close()
	sem := NewSemaphore(e, 2)
	active, maxActive := 0, 0
	for i := 0; i < 5; i++ {
		e.Spawn("u", func(p *Proc) {
			sem.Acquire(p)
			active++
			if active > maxActive {
				maxActive = active
			}
			p.Sleep(Second)
			active--
			sem.Release()
		})
	}
	e.RunUntilIdle()
	if maxActive != 2 {
		t.Fatalf("maxActive = %d, want 2", maxActive)
	}
	if sem.Available() != 2 {
		t.Fatalf("Available = %d, want 2", sem.Available())
	}
}

func TestSemaphoreTryAcquire(t *testing.T) {
	e := NewEngine(1)
	defer e.Close()
	sem := NewSemaphore(e, 1)
	if !sem.TryAcquire() {
		t.Fatal("first TryAcquire failed")
	}
	if sem.TryAcquire() {
		t.Fatal("second TryAcquire succeeded")
	}
	sem.Release()
	if !sem.TryAcquire() {
		t.Fatal("TryAcquire after Release failed")
	}
}

func TestBarrierReleasesTogether(t *testing.T) {
	e := NewEngine(1)
	defer e.Close()
	b := NewBarrier(e, 3)
	var released []Time
	for i := 0; i < 3; i++ {
		d := Duration(i+1) * Second
		e.Spawn("p", func(p *Proc) {
			p.Sleep(d)
			b.Await(p)
			released = append(released, p.Now())
		})
	}
	e.RunUntilIdle()
	if len(released) != 3 {
		t.Fatalf("released %d, want 3", len(released))
	}
	for _, r := range released {
		if r != Time(3*Second) {
			t.Fatalf("released at %v, want 3s (last arrival)", r)
		}
	}
}

func TestBarrierReusable(t *testing.T) {
	e := NewEngine(1)
	defer e.Close()
	b := NewBarrier(e, 2)
	rounds := 0
	for i := 0; i < 2; i++ {
		e.Spawn("p", func(p *Proc) {
			for r := 0; r < 3; r++ {
				p.Sleep(Second)
				b.Await(p)
			}
			rounds++
		})
	}
	e.RunUntilIdle()
	if rounds != 2 {
		t.Fatalf("rounds = %d, want both processes through 3 rounds", rounds)
	}
}

func TestCloseKillsParkedProcs(t *testing.T) {
	e := NewEngine(1)
	started, finished := 0, 0
	e.Spawn("stuck", func(p *Proc) {
		started++
		NewWaitQueue(e).Sleep(p) // sleeps forever
		finished++
	})
	e.RunUntilIdle()
	e.Close()
	if started != 1 || finished != 0 {
		t.Fatalf("started=%d finished=%d; killed proc must not resume its body", started, finished)
	}
	e.Close() // double close must be safe
}

func TestDeterminismSameSeedSameTrace(t *testing.T) {
	run := func(seed int64) []string {
		e := NewEngine(seed)
		defer e.Close()
		var log []string
		for i := 0; i < 4; i++ {
			name := fmt.Sprintf("p%d", i)
			e.Spawn(name, func(p *Proc) {
				for j := 0; j < 5; j++ {
					d := Duration(e.Rand().Intn(1000)+1) * Millisecond
					p.Sleep(d)
					log = append(log, fmt.Sprintf("%s@%v", name, p.Now()))
				}
			})
		}
		e.RunUntilIdle()
		return log
	}
	a, b := run(42), run(42)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed produced different logs:\n%v\n%v", a, b)
	}
	c := run(43)
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatalf("different seeds produced identical logs (suspicious)")
	}
}

func TestNegativeSleepClamped(t *testing.T) {
	e := NewEngine(1)
	defer e.Close()
	var at Time
	e.Spawn("p", func(p *Proc) {
		p.Sleep(-5 * Second)
		at = p.Now()
	})
	e.RunUntilIdle()
	if at != 0 {
		t.Fatalf("negative sleep advanced clock to %v", at)
	}
}

func TestYieldRunsOthersFirst(t *testing.T) {
	e := NewEngine(1)
	defer e.Close()
	var order []string
	e.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	e.Spawn("b", func(p *Proc) {
		order = append(order, "b1")
	})
	e.RunUntilIdle()
	if fmt.Sprint(order) != "[a1 b1 a2]" {
		t.Fatalf("order = %v", order)
	}
}

// Property: any batch of sleeps wakes in sorted time order.
func TestQuickSleepOrdering(t *testing.T) {
	f := func(ds []uint16) bool {
		if len(ds) == 0 {
			return true
		}
		if len(ds) > 64 {
			ds = ds[:64]
		}
		e := NewEngine(7)
		defer e.Close()
		var wakes []Time
		for _, d := range ds {
			d := Duration(d) * Microsecond
			e.Spawn("p", func(p *Proc) {
				p.Sleep(d)
				wakes = append(wakes, p.Now())
			})
		}
		e.RunUntilIdle()
		return sort.SliceIsSorted(wakes, func(i, j int) bool { return wakes[i] < wakes[j] })
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: DurationOf round-trips seconds to microsecond precision.
func TestQuickDurationOf(t *testing.T) {
	f := func(us uint32) bool {
		d := Duration(us)
		return DurationOf(d.Seconds()) == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeHelpers(t *testing.T) {
	tm := Time(1500 * Millisecond)
	if tm.Seconds() != 1.5 {
		t.Fatalf("Seconds = %v", tm.Seconds())
	}
	if tm.Add(500*Millisecond) != Time(2*Second) {
		t.Fatalf("Add failed")
	}
	if tm.Sub(Time(Second)) != 500*Millisecond {
		t.Fatalf("Sub failed")
	}
	if (2 * Second).Milliseconds() != 2000 {
		t.Fatalf("Milliseconds failed")
	}
	if tm.String() != "1.500000s" {
		t.Fatalf("String = %q", tm.String())
	}
}

func TestRunOnClosedEnginePanics(t *testing.T) {
	e := NewEngine(1)
	e.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("want panic running a closed engine")
		}
	}()
	e.Run(Time(Second))
}

func TestEveryZeroPanics(t *testing.T) {
	e := NewEngine(1)
	defer e.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for zero period")
		}
	}()
	e.Every(0, func() {})
}

func TestEventsFiredCounts(t *testing.T) {
	e := NewEngine(1)
	defer e.Close()
	for i := 0; i < 5; i++ {
		e.After(Duration(i)*Millisecond, func() {})
	}
	e.RunUntilIdle()
	if e.EventsFired() != 5 {
		t.Fatalf("EventsFired = %d", e.EventsFired())
	}
}

func TestOnCompleteCallbacks(t *testing.T) {
	e := NewEngine(1)
	defer e.Close()
	c := NewCompletion(e)
	got := 0
	c.OnComplete(func(err error) {
		if err != nil {
			t.Errorf("err = %v", err)
		}
		got++
	})
	e.After(Second, c.Complete)
	e.RunUntilIdle()
	if got != 1 {
		t.Fatalf("callback fired %d times", got)
	}
	// Registering after completion fires immediately (next event round).
	c.OnComplete(func(error) { got++ })
	e.RunUntilIdle()
	if got != 2 {
		t.Fatalf("late callback fired %d times total", got)
	}
}

func TestSpawnAtFuture(t *testing.T) {
	e := NewEngine(1)
	defer e.Close()
	var started Time
	e.SpawnAt(Time(3*Second), "late", func(p *Proc) {
		started = p.Now()
	})
	e.RunUntilIdle()
	if started != Time(3*Second) {
		t.Fatalf("started at %v", started)
	}
}
