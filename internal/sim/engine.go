package sim

import (
	"fmt"
	"math/rand"
)

// event is a scheduled callback. Events fire in (at, seq) order so that two
// events scheduled for the same instant fire in the order they were
// scheduled, which makes runs deterministic.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// eventHeap is a typed 4-ary implicit heap ordered by (at, seq). A 4-ary
// layout halves the tree depth of the binary form, and the typed methods
// avoid the interface{} boxing of container/heap on the hot step() path
// (the loser-tree merge in internal/trace is the precedent).
type eventHeap []*event

func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push appends ev and sifts it up.
func (h *eventHeap) push(ev *event) {
	*h = append(*h, ev)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !eventLess(s[i], s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

// pop removes and returns the minimum event.
func (h *eventHeap) pop() *event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = nil
	s = s[:n]
	*h = s
	// Sift down.
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if eventLess(s[c], s[best]) {
				best = c
			}
		}
		if !eventLess(s[best], s[i]) {
			break
		}
		s[i], s[best] = s[best], s[i]
		i = best
	}
	return top
}

// Ticker is the handle for a recurring event created with Every. Stopping
// it prevents all future ticks; the engine keeps no reference to a stopped
// ticker's closure past its final (skipped) firing.
type Ticker struct {
	stopped bool
}

// Stop cancels all future ticks. Safe to call more than once, from engine
// or process context.
func (t *Ticker) Stop() { t.stopped = true }

// Stopped reports whether Stop has been called.
func (t *Ticker) Stopped() bool { return t.stopped }

// Engine is a discrete-event simulator. The zero value is not usable; create
// engines with NewEngine (standalone) or NewShards (one engine per shard).
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	free    []*event      // recycled events, reused by schedule
	parked  chan struct{} // process -> engine: "I have blocked"
	cur     *Proc
	procs   []*Proc
	closed  bool
	rng     *rand.Rand
	tickers []*Ticker
	// Sharded mode (nil owner means standalone).
	owner  *Shards
	shard  int
	xseq   uint64 // per-engine stamp counter for cross-shard ordering
	outbox []xmsg // cross-shard messages staged during the current window
	// stats
	fired   uint64
	queueHW int // most events ever pending at once
}

// NewEngine returns an engine whose clock starts at 0 and whose random
// stream is seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{
		parked: make(chan struct{}),
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random stream. It must only be
// used from simulation context (process bodies and scheduled callbacks).
// Engines created by NewShards have no stream: randomness there must come
// from explicitly seeded per-node sources so draw order cannot depend on
// the shard layout.
func (e *Engine) Rand() *rand.Rand {
	if e.rng == nil {
		panic("sim: Rand unavailable on a sharded engine; use a per-node seeded source")
	}
	return e.rng
}

// EventsFired reports how many events have executed so far.
func (e *Engine) EventsFired() uint64 { return e.fired }

// QueueHighWater reports the deepest the event queue has ever been — a
// deterministic load signal the observability layer exports. Sharded runs
// use Shards.QueueHighWater instead, which samples at barrier cuts so the
// value is identical at any shard count.
func (e *Engine) QueueHighWater() int { return e.queueHW }

// Shard reports this engine's index within its Shards group (0 when
// standalone).
func (e *Engine) Shard() int { return e.shard }

// schedule enqueues fn to run at time at (engine context).
func (e *Engine) schedule(at Time, fn func()) *event {
	if at < e.now {
		at = e.now
	}
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.at, ev.seq, ev.fn = at, e.seq, fn
	} else {
		ev = &event{at: at, seq: e.seq, fn: fn}
	}
	e.seq++
	e.events.push(ev)
	if n := len(e.events); n > e.queueHW {
		e.queueHW = n
	}
	return ev
}

// At schedules fn to run in engine context at absolute time at. Times in the
// past are clamped to the present.
func (e *Engine) At(at Time, fn func()) { e.schedule(at, fn) }

// After schedules fn to run in engine context after d has elapsed.
func (e *Engine) After(d Duration, fn func()) { e.schedule(e.now.Add(d), fn) }

// Every schedules fn to run in engine context every period, starting after
// the first period elapses, until the returned ticker is stopped or the
// engine closes. The tick closure holds no event pointer, so a stopped
// ticker's state is released after its next (skipped) firing.
func (e *Engine) Every(period Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: Every with non-positive period")
	}
	t := &Ticker{}
	e.tickers = append(e.tickers, t)
	var tick func()
	tick = func() {
		if t.stopped {
			return
		}
		fn()
		e.After(period, tick)
	}
	e.After(period, tick)
	return t
}

// recycle returns an executed event to the free list.
func (e *Engine) recycle(ev *event) {
	ev.fn = nil
	e.free = append(e.free, ev)
}

// step pops and executes the earliest event. It reports false when no events
// remain.
func (e *Engine) step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := e.events.pop()
	if ev.fn == nil { // cancelled
		e.free = append(e.free, ev)
		return true
	}
	e.now = ev.at
	e.fired++
	fn := ev.fn
	e.recycle(ev)
	fn()
	return true
}

// Run executes events until the clock would pass until, then sets the clock
// to until exactly. Events scheduled at until itself still execute.
func (e *Engine) Run(until Time) {
	if e.closed {
		panic("sim: Run on closed engine")
	}
	if e.owner != nil {
		panic("sim: Run on a sharded engine; drive the Shards coordinator instead")
	}
	for len(e.events) > 0 && e.events[0].at <= until {
		e.step()
	}
	if e.now < until {
		e.now = until
	}
}

// runWindow executes events strictly before the window cap. Called by the
// Shards coordinator; the engine may be driven by a different OS goroutine
// each window (the coordinator's join provides the happens-before edge).
func (e *Engine) runWindow(limit Time) {
	for len(e.events) > 0 && e.events[0].at < limit {
		e.step()
	}
}

// next reports the earliest pending event time and whether one exists.
func (e *Engine) next() (Time, bool) {
	if len(e.events) == 0 {
		return 0, false
	}
	return e.events[0].at, true
}

// RunUntilIdle executes events until none remain.
func (e *Engine) RunUntilIdle() {
	if e.closed {
		panic("sim: RunUntilIdle on closed engine")
	}
	if e.owner != nil {
		panic("sim: RunUntilIdle on a sharded engine; drive the Shards coordinator instead")
	}
	for e.step() {
	}
}

// Close terminates all parked processes so their goroutines exit, stops
// every ticker created with Every, and releases all pending events
// (including the recurring tick closures Every keeps alive). The engine
// must not be used afterwards. It is safe to call Close more than once.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	for _, p := range e.procs {
		if !p.done {
			p.killed = true
			p.resume <- struct{}{}
			<-e.parked
		}
	}
	for _, t := range e.tickers {
		t.stopped = true
	}
	e.tickers = nil
	e.events = nil
	e.free = nil
	e.outbox = nil
}

// killedErr is the sentinel panic value used to unwind killed processes.
type killedErr struct{ name string }

func (k killedErr) String() string { return "sim: process " + k.name + " killed" }

// Proc is a simulated process. A Proc's body function runs on its own
// goroutine but is strictly serialized with all other simulation activity
// on its engine: it only runs while the engine has handed control to it,
// and hands control back whenever it blocks (Sleep, Completion.Wait,
// WaitQueue.Sleep, Yield).
type Proc struct {
	e      *Engine
	name   string
	resume chan struct{}
	done   bool
	killed bool
	iotag  uint64
}

// Name reports the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// SetIOTag tags the process with the I/O request journey currently
// executing on it (0 clears the tag). The vfs layer sets the tag for
// the span of each file op; lower layers running on the same process
// (extfs, buffer cache, pager) read it to attribute their events to the
// originating request without threading an ID through every signature.
func (p *Proc) SetIOTag(tag uint64) { p.iotag = tag }

// IOTag reports the I/O request journey tagged on this process, or 0.
func (p *Proc) IOTag() uint64 { return p.iotag }

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.e }

// Now reports current virtual time.
func (p *Proc) Now() Time { return p.e.now }

// Spawn creates a process running fn and schedules it to start at the
// current virtual time.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	return e.SpawnAt(e.now, name, fn)
}

// SpawnAt creates a process running fn, starting at time at.
func (e *Engine) SpawnAt(at Time, name string, fn func(p *Proc)) *Proc {
	p := &Proc{e: e, name: name, resume: make(chan struct{})}
	e.procs = append(e.procs, p)
	go func() { //essvet:ignore determinism — engine-owned coroutine, serialized by park/resume
		// The final park signal is deferred so that even abnormal
		// goroutine exits (runtime.Goexit, e.g. t.Fatal in tests)
		// release the engine instead of deadlocking it.
		defer func() {
			p.done = true
			e.parked <- struct{}{}
		}()
		<-p.resume
		if p.killed {
			return
		}
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killedErr); ok {
					return // clean unwind of a killed process
				}
				panic(fmt.Sprintf("sim: process %q panicked: %v", name, r))
			}
		}()
		fn(p)
	}()
	e.schedule(at, func() { e.switchTo(p) })
	return p
}

// switchTo transfers control to p until it parks or terminates. Engine
// context only.
func (e *Engine) switchTo(p *Proc) {
	if p.done {
		return
	}
	prev := e.cur
	e.cur = p
	p.resume <- struct{}{}
	<-e.parked
	e.cur = prev
}

// park blocks the calling process until the engine resumes it. Process
// context only.
func (p *Proc) park() {
	p.e.parked <- struct{}{}
	<-p.resume
	if p.killed {
		panic(killedErr{p.name})
	}
}

// Sleep suspends the process for d of virtual time.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	e := p.e
	e.schedule(e.now.Add(d), func() { e.switchTo(p) })
	p.park()
}

// Yield reschedules the process at the current instant, letting every other
// event already scheduled for this instant run first.
func (p *Proc) Yield() { p.Sleep(0) }

// Done reports whether the process body has returned.
func (p *Proc) Done() bool { return p.done }
