package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// event is a scheduled callback. Events fire in (at, seq) order so that two
// events scheduled for the same instant fire in the order they were
// scheduled, which makes runs deterministic.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. The zero value is not usable; create
// engines with NewEngine.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	parked chan struct{} // process -> engine: "I have blocked"
	cur    *Proc
	procs  []*Proc
	closed bool
	rng    *rand.Rand
	// stats
	fired   uint64
	queueHW int // most events ever pending at once
}

// NewEngine returns an engine whose clock starts at 0 and whose random
// stream is seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{
		parked: make(chan struct{}),
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random stream. It must only be
// used from simulation context (process bodies and scheduled callbacks).
func (e *Engine) Rand() *rand.Rand { return e.rng }

// EventsFired reports how many events have executed so far.
func (e *Engine) EventsFired() uint64 { return e.fired }

// QueueHighWater reports the deepest the event queue has ever been — a
// deterministic load signal the observability layer exports.
func (e *Engine) QueueHighWater() int { return e.queueHW }

// schedule enqueues fn to run at time at (engine context).
func (e *Engine) schedule(at Time, fn func()) *event {
	if at < e.now {
		at = e.now
	}
	ev := &event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	if n := len(e.events); n > e.queueHW {
		e.queueHW = n
	}
	return ev
}

// At schedules fn to run in engine context at absolute time at. Times in the
// past are clamped to the present.
func (e *Engine) At(at Time, fn func()) { e.schedule(at, fn) }

// After schedules fn to run in engine context after d has elapsed.
func (e *Engine) After(d Duration, fn func()) { e.schedule(e.now.Add(d), fn) }

// Every schedules fn to run in engine context every period, starting after
// the first period elapses, until the engine stops.
func (e *Engine) Every(period Duration, fn func()) {
	if period <= 0 {
		panic("sim: Every with non-positive period")
	}
	var tick func()
	tick = func() {
		fn()
		e.After(period, tick)
	}
	e.After(period, tick)
}

// step pops and executes the earliest event. It reports false when no events
// remain.
func (e *Engine) step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	if ev.fn == nil { // cancelled
		return true
	}
	e.now = ev.at
	e.fired++
	ev.fn()
	return true
}

// Run executes events until the clock would pass until, then sets the clock
// to until exactly. Events scheduled at until itself still execute.
func (e *Engine) Run(until Time) {
	if e.closed {
		panic("sim: Run on closed engine")
	}
	for len(e.events) > 0 && e.events[0].at <= until {
		e.step()
	}
	if e.now < until {
		e.now = until
	}
}

// RunUntilIdle executes events until none remain.
func (e *Engine) RunUntilIdle() {
	if e.closed {
		panic("sim: RunUntilIdle on closed engine")
	}
	for e.step() {
	}
}

// Close terminates all parked processes so their goroutines exit. The engine
// must not be used afterwards. It is safe to call Close more than once.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	for _, p := range e.procs {
		if !p.done {
			p.killed = true
			p.resume <- struct{}{}
			<-e.parked
		}
	}
	e.events = nil
}

// killedErr is the sentinel panic value used to unwind killed processes.
type killedErr struct{ name string }

func (k killedErr) String() string { return "sim: process " + k.name + " killed" }

// Proc is a simulated process. A Proc's body function runs on its own
// goroutine but is strictly serialized with all other simulation activity:
// it only runs while the engine has handed control to it, and hands control
// back whenever it blocks (Sleep, Completion.Wait, WaitQueue.Sleep, Yield).
type Proc struct {
	e      *Engine
	name   string
	resume chan struct{}
	done   bool
	killed bool
}

// Name reports the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.e }

// Now reports current virtual time.
func (p *Proc) Now() Time { return p.e.now }

// Spawn creates a process running fn and schedules it to start at the
// current virtual time.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	return e.SpawnAt(e.now, name, fn)
}

// SpawnAt creates a process running fn, starting at time at.
func (e *Engine) SpawnAt(at Time, name string, fn func(p *Proc)) *Proc {
	p := &Proc{e: e, name: name, resume: make(chan struct{})}
	e.procs = append(e.procs, p)
	go func() {
		// The final park signal is deferred so that even abnormal
		// goroutine exits (runtime.Goexit, e.g. t.Fatal in tests)
		// release the engine instead of deadlocking it.
		defer func() {
			p.done = true
			e.parked <- struct{}{}
		}()
		<-p.resume
		if p.killed {
			return
		}
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killedErr); ok {
					return // clean unwind of a killed process
				}
				panic(fmt.Sprintf("sim: process %q panicked: %v", name, r))
			}
		}()
		fn(p)
	}()
	e.schedule(at, func() { e.switchTo(p) })
	return p
}

// switchTo transfers control to p until it parks or terminates. Engine
// context only.
func (e *Engine) switchTo(p *Proc) {
	if p.done {
		return
	}
	prev := e.cur
	e.cur = p
	p.resume <- struct{}{}
	<-e.parked
	e.cur = prev
}

// park blocks the calling process until the engine resumes it. Process
// context only.
func (p *Proc) park() {
	p.e.parked <- struct{}{}
	<-p.resume
	if p.killed {
		panic(killedErr{p.name})
	}
}

// Sleep suspends the process for d of virtual time.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	e := p.e
	e.schedule(e.now.Add(d), func() { e.switchTo(p) })
	p.park()
}

// Yield reschedules the process at the current instant, letting every other
// event already scheduled for this instant run first.
func (p *Proc) Yield() { p.Sleep(0) }

// Done reports whether the process body has returned.
func (p *Proc) Done() bool { return p.done }
