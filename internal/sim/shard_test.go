package sim

import (
	"reflect"
	"testing"
)

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: want panic", what)
		}
	}()
	fn()
}

func TestShardsCrossOrdering(t *testing.T) {
	s := NewShards(2, Millisecond)
	defer s.Close()
	e0, e1 := s.Engine(0), s.Engine(1)
	var got []string
	e0.At(Time(0), func() {
		at := e0.Now().Add(Millisecond)
		// Stamp order is n5, n2a, n2b; delivery order must follow
		// (time, node, seq): node 2 first, then node 5.
		e0.Cross(e1, 5, at, func() { got = append(got, "n5") })
		e0.Cross(e1, 2, at, func() { got = append(got, "n2a") })
		e0.Cross(e1, 2, at, func() { got = append(got, "n2b") })
	})
	s.RunUntilIdle()
	if want := []string{"n2a", "n2b", "n5"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("delivery order %v, want %v", got, want)
	}
	if e1.Now() < Time(0).Add(Millisecond) {
		t.Fatalf("receiver clock %v never reached delivery time", e1.Now())
	}
}

// shardWorkload drives a fixed cross-communicating workload over nodes
// logical nodes spread across s's engines and returns each node's event
// log. The logs must be identical at any shard count.
func shardWorkload(s *Shards, nodes int) ([][]Time, uint64) {
	logs := make([][]Time, nodes)
	n := s.Size()
	for node := 0; node < nodes; node++ {
		node := node
		rcv := (node + 1) % nodes
		e := s.Engine(node * n / nodes)
		dst := s.Engine(rcv * n / nodes)
		i := 0
		var step func()
		step = func() {
			logs[node] = append(logs[node], e.Now())
			i++
			if i >= 20 {
				return
			}
			e.After(Duration(node+1)*100*Microsecond, step)
			// Cross-shard (or same-engine, depending on layout) message:
			// the delivery appends to the receiving node's log, which its
			// engine owns.
			e.Cross(dst, node, e.Now().Add(Millisecond+Duration(i)*Microsecond), func() {
				logs[rcv] = append(logs[rcv], dst.Now())
			})
		}
		e.At(Time(0).Add(Duration(node)*Microsecond), step)
	}
	s.RunUntilIdle()
	return logs, s.EventsFired()
}

func TestShardsMatchSingleShard(t *testing.T) {
	const nodes = 4
	base, baseFired := shardWorkload(NewShards(1, Millisecond), nodes)
	for _, count := range []int{2, 4} {
		s := NewShards(count, Millisecond)
		logs, fired := shardWorkload(s, nodes)
		if fired != baseFired {
			t.Fatalf("shards=%d fired %d events, shards=1 fired %d", count, fired, baseFired)
		}
		if !reflect.DeepEqual(logs, base) {
			t.Fatalf("shards=%d logs diverge from sequential run", count)
		}
		s.Close()
	}
}

func TestShardsRunAdvancesClocks(t *testing.T) {
	s := NewShards(3, Millisecond)
	defer s.Close()
	fired := false
	s.Engine(1).At(Time(0).Add(Second), func() { fired = true })
	until := Time(0).Add(2 * Second)
	s.Run(until)
	if !fired {
		t.Fatal("event within horizon never fired")
	}
	if s.Now() != until {
		t.Fatalf("Now = %v, want %v", s.Now(), until)
	}
	for i := 0; i < s.Size(); i++ {
		if got := s.Engine(i).Now(); got != until {
			t.Fatalf("shard %d clock %v, want %v", i, got, until)
		}
	}
}

func TestShardsGuards(t *testing.T) {
	s := NewShards(2, Millisecond)
	defer s.Close()
	e := s.Engine(0)
	mustPanic(t, "Run on sharded engine", func() { e.Run(Time(100)) })
	mustPanic(t, "RunUntilIdle on sharded engine", func() { e.RunUntilIdle() })
	mustPanic(t, "Rand on sharded engine", func() { e.Rand() })
	mustPanic(t, "Cross within lookahead", func() {
		e.Cross(s.Engine(1), 0, e.Now().Add(Microsecond), func() {})
	})
	other := NewShards(1, Millisecond)
	defer other.Close()
	mustPanic(t, "Cross between groups", func() {
		e.Cross(other.Engine(0), 0, e.Now().Add(Second), func() {})
	})
	mustPanic(t, "Inject outside barrier", func() {
		s.Inject(e, Time(0).Add(Second), 0, 0, func() {})
	})
	mustPanic(t, "zero shards", func() { NewShards(0, Millisecond) })
	mustPanic(t, "zero lookahead", func() { NewShards(1, 0) })
}

func TestStandaloneCross(t *testing.T) {
	e := NewEngine(1)
	defer e.Close()
	fired := false
	e.Cross(e, 0, Time(0).Add(Second), func() { fired = true })
	e.RunUntilIdle()
	if !fired {
		t.Fatal("standalone Cross never delivered")
	}
	e2 := NewEngine(2)
	defer e2.Close()
	mustPanic(t, "standalone Cross to another engine", func() {
		e.Cross(e2, 0, Time(0).Add(Second), func() {})
	})
}

func TestTickerStopHaltsTicks(t *testing.T) {
	e := NewEngine(1)
	defer e.Close()
	n := 0
	tk := e.Every(Second, func() { n++ })
	e.Run(Time(0).Add(3 * Second))
	if n != 3 {
		t.Fatalf("ticks = %d, want 3", n)
	}
	tk.Stop()
	if !tk.Stopped() {
		t.Fatal("Stopped() false after Stop")
	}
	e.Run(e.Now().Add(5 * Second))
	if n != 3 {
		t.Fatalf("ticker fired %d times after Stop", n-3)
	}
}

// TestCloseReleasesTickers guards the Every leak: Close must stop
// recurring closures so a closed engine retains no scheduled events.
func TestCloseReleasesTickers(t *testing.T) {
	e := NewEngine(1)
	tk := e.Every(Second, func() {})
	e.Run(Time(0).Add(2 * Second))
	e.Close()
	if !tk.Stopped() {
		t.Fatal("Close left the ticker running")
	}
	e.Close() // idempotent
}

func TestShardsQueueHighWater(t *testing.T) {
	s := NewShards(2, Millisecond)
	defer s.Close()
	for i := 0; i < 10; i++ {
		i := i
		s.Engine(i%2).At(Time(0).Add(Duration(i+1)*Second), func() {})
	}
	s.RunUntilIdle()
	if hw := s.QueueHighWater(); hw < 1 || hw > 10 {
		t.Fatalf("queue high-water %d out of range", hw)
	}
	if s.EventsFired() != 10 {
		t.Fatalf("EventsFired = %d, want 10", s.EventsFired())
	}
}
