package trace

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"essio/internal/sim"
)

func fileTestRecords() []Record {
	return []Record{
		{Time: sim.Time(1000), Sector: 40000, Count: 8, Op: Write, Node: 1, Origin: OriginSwap},
		{Time: sim.Time(2500), Sector: 150000, Count: 32, Op: Read, Node: 0, Origin: OriginData},
		{Time: sim.Time(9000), Sector: 1000002, Count: 2, Pending: 3, Op: Write, Node: 2, Origin: OriginLog},
	}
}

func writeTempTrace(t *testing.T, name string, text bool) (string, []Record) {
	t.Helper()
	recs := fileTestRecords()
	path := filepath.Join(t.TempDir(), name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if text {
		if err := WriteText(f, recs); err != nil {
			t.Fatal(err)
		}
	} else {
		if err := WriteAll(f, recs); err != nil {
			t.Fatal(err)
		}
	}
	return path, recs
}

func TestOpenFileSourceExplicitFormats(t *testing.T) {
	for _, tc := range []struct {
		name   string
		text   bool
		format string
	}{
		{"bin.trc", false, FormatBinary},
		{"text.tsv", true, FormatText},
	} {
		path, want := writeTempTrace(t, tc.name, tc.text)
		src, err := OpenFileSource(path, tc.format)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Collect(src)
		if cerr := src.Close(); cerr != nil {
			t.Fatal(cerr)
		}
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: read %v, want %v", tc.name, got, want)
		}
		if src.Format() != tc.format {
			t.Errorf("%s: format %q, want %q", tc.name, src.Format(), tc.format)
		}
	}
}

func TestOpenFileSourceSniffs(t *testing.T) {
	for _, tc := range []struct {
		name string
		text bool
		want string
	}{
		{"auto-bin.trc", false, FormatBinary},
		{"auto-text.trc", true, FormatText},
	} {
		path, wantRecs := writeTempTrace(t, tc.name, tc.text)
		for _, format := range []string{FormatAuto, ""} {
			src, err := OpenFileSource(path, format)
			if err != nil {
				t.Fatal(err)
			}
			if src.Format() != tc.want {
				t.Errorf("%s: sniffed %q, want %q", tc.name, src.Format(), tc.want)
			}
			got, err := Collect(src)
			src.Close()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, wantRecs) {
				t.Errorf("%s: sniffed read differs", tc.name)
			}
		}
	}
}

func TestOpenFileSourceErrors(t *testing.T) {
	if _, err := OpenFileSource("does-not-exist.trc", FormatAuto); err == nil {
		t.Error("missing file accepted")
	}
	path, _ := writeTempTrace(t, "x.trc", false)
	if _, err := OpenFileSource(path, "csv"); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestOpenFileSourceEmptyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.trc")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := OpenFileSource(path, FormatAuto)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	recs, err := Collect(src)
	if err != nil || len(recs) != 0 {
		t.Fatalf("empty file: recs=%v err=%v", recs, err)
	}
}
