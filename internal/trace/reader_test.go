package trace

import (
	"bytes"
	"io"
	"reflect"
	"testing"

	"essio/internal/sim"
)

// onlyReader hides every method of the wrapped reader except Read, so
// the source under test cannot cheat by seeking.
type onlyReader struct{ r io.Reader }

func (o onlyReader) Read(p []byte) (int, error) { return o.r.Read(p) }

func readerTestRecords() []Record {
	return []Record{
		{Time: 1000, Sector: 8, Count: 2, Op: Read, Node: 0, Origin: OriginData},
		{Time: 2500, Sector: 10, Count: 8, Pending: 1, Op: Write, Node: 1, Origin: OriginMeta},
		{Time: 9000, Sector: 512, Count: 32, Op: Read, Node: 2, Origin: OriginPaging},
	}
}

func TestReaderSourceSniffsBothFormats(t *testing.T) {
	recs := readerTestRecords()
	var bin, txt bytes.Buffer
	if err := WriteAll(&bin, recs); err != nil {
		t.Fatal(err)
	}
	tw := NewTextWriter(&txt)
	for _, r := range recs {
		if err := tw.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name, format, want string
		data               []byte
	}{
		{"binary auto", FormatAuto, FormatBinary, bin.Bytes()},
		{"text auto", "", FormatText, txt.Bytes()},
		{"binary explicit", FormatBinary, FormatBinary, bin.Bytes()},
		{"text explicit", FormatText, FormatText, txt.Bytes()},
	} {
		src, err := NewReaderSource(onlyReader{bytes.NewReader(tc.data)}, tc.format)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if src.Format() != tc.want {
			t.Errorf("%s: format = %q, want %q", tc.name, src.Format(), tc.want)
		}
		got, err := Collect(src)
		if err != nil {
			t.Fatalf("%s: collect: %v", tc.name, err)
		}
		if !reflect.DeepEqual(got, recs) {
			t.Errorf("%s: records differ:\n got %v\nwant %v", tc.name, got, recs)
		}
	}
}

func TestReaderSourceBatchReads(t *testing.T) {
	var recs []Record
	for i := 0; i < 3*DefaultBatchLen/2; i++ {
		recs = append(recs, Record{Time: sim.Time(i + 1), Sector: uint32(i), Count: 1})
	}
	var bin bytes.Buffer
	if err := WriteAll(&bin, recs); err != nil {
		t.Fatal(err)
	}
	src, err := NewReaderSource(onlyReader{&bin}, FormatAuto)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]Record, DefaultBatchLen)
	var got []Record
	for {
		n, err := src.NextBatch(buf)
		got = append(got, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("batch read returned %d records, want %d (or contents differ)", len(got), len(recs))
	}
}

func TestReaderSourceEmptyAndBadFormat(t *testing.T) {
	src, err := NewReaderSource(onlyReader{bytes.NewReader(nil)}, FormatAuto)
	if err != nil {
		t.Fatal(err)
	}
	if src.Format() != FormatBinary {
		t.Errorf("empty stream sniffed as %q, want %q", src.Format(), FormatBinary)
	}
	if _, err := src.Next(); err != io.EOF {
		t.Errorf("empty stream Next error = %v, want io.EOF", err)
	}

	if _, err := NewReaderSource(onlyReader{bytes.NewReader(nil)}, "csv"); err == nil {
		t.Error("unknown format accepted")
	}
}
