package trace

import (
	"bufio"
	"fmt"
	"io"
)

// ReaderSource is a Source decoding a trace stream from an arbitrary
// io.Reader — a pipe, a network connection, an HTTP request body —
// without ever seeking. Format sniffing peeks through a buffered
// reader instead of rewinding, so stdin pipelines and live ingestion
// work on the same open path files use. It is also a BatchSource:
// binary streams decode whole 64 KiB buffers per NextBatch, text
// streams fall back to a per-record fill.
type ReaderSource struct {
	src    Source
	batch  BatchSource
	col    ColSource // non-nil when the stream is columnar
	format string
}

// NewReaderSource wraps r as a streaming trace Source. format is
// FormatBinary, FormatText, FormatCol, or FormatAuto (the empty string
// means FormatAuto); auto-detection peeks at the first bytes without
// consuming them, so it needs no Seek. It is the non-seeking core of
// OpenFileSource and the ingest path of essd.
func NewReaderSource(r io.Reader, format string) (*ReaderSource, error) {
	switch format {
	case FormatBinary, FormatText, FormatCol, FormatAuto:
	case "":
		format = FormatAuto
	default:
		return nil, fmt.Errorf("trace: unknown format %q (want %s, %s, %s, or %s)",
			format, FormatBinary, FormatText, FormatCol, FormatAuto)
	}
	br := bufio.NewReaderSize(r, batchBytes)
	if format == FormatAuto {
		var err error
		format, err = sniffReader(br)
		if err != nil {
			return nil, err
		}
	}
	s := &ReaderSource{format: format}
	switch format {
	case FormatText:
		s.src = NewTextReader(br)
	case FormatCol:
		cr := NewColReader(br)
		s.src, s.col = cr, cr
	default:
		// NewReader re-wraps br in a same-sized bufio.Reader, which
		// bufio collapses to br itself: no double buffering.
		s.src = NewReader(br)
	}
	return s, nil
}

// Next yields the next record of the stream.
func (s *ReaderSource) Next() (Record, error) { return s.src.Next() }

// NextBatch yields up to len(buf) records of the stream.
func (s *ReaderSource) NextBatch(buf []Record) (int, error) {
	if s.batch == nil {
		s.batch = ToBatchSource(s.src)
	}
	return s.batch.NextBatch(buf)
}

// Format reports the resolved encoding: FormatBinary, FormatText, or
// FormatCol.
func (s *ReaderSource) Format() string { return s.format }

// colNative reveals the inner columnar decoder when the stream is
// columnar, nil otherwise; the AsColSource probe.
func (s *ReaderSource) colNative() ColSource { return s.col }

// sniffReader decides among the binary, text, and columnar encodings by
// peeking at the first bytes of br without consuming them. The columnar
// magic is checked first — its leading byte is non-printable, so it can
// never be mistaken for text, and no binary record stream is misread as
// columnar because the magic check wins before the printability scan.
// The text format is pure printable ASCII with tabs and newlines (it
// opens with a header line); binary records contain NUL padding and
// timestamp bytes within the first RecordSize bytes.
func sniffReader(br *bufio.Reader) (string, error) {
	buf, err := br.Peek(256)
	if err != nil && err != io.EOF {
		return "", err
	}
	if len(buf) == 0 {
		// An empty stream is a valid empty trace in either encoding.
		return FormatBinary, nil
	}
	if len(buf) >= len(colMagic) && [len(colMagic)]byte(buf[:len(colMagic)]) == colMagic {
		return FormatCol, nil
	}
	for _, b := range buf {
		if b == '\t' || b == '\n' || b == '\r' {
			continue
		}
		if b < 0x20 || b > 0x7e {
			return FormatBinary, nil
		}
	}
	return FormatText, nil
}
