package trace

// Stage observation for the streaming pipeline: ObserveSource and
// ObserveSink wrap a Source or Sink so that every record, batch, and
// byte crossing that point of the pipeline is counted into an
// obs.Stage. The wrappers are capability-preserving — a batching or
// span-capable input stays batching and span-capable, so Copy keeps its
// zero-copy fast paths — and counting is record-arithmetic only (count ×
// RecordSize), never wall time, so observed pipelines stay
// deterministic.

import "essio/internal/obs"

// ObserveSource wraps src so records pulled from it are counted into
// st. A nil stage returns src unchanged — observation off costs
// nothing.
func ObserveSource(src Source, st *obs.Stage) Source {
	if st == nil {
		return src
	}
	if cs, ok := AsColSource(src); ok {
		if _, batch := src.(BatchSource); batch {
			return &observedColSource{observedSource{src: src, st: st}, cs}
		}
	}
	switch src.(type) {
	case spanSource:
		return &observedSpanSource{observedSource{src: src, st: st}}
	case BatchSource:
		return &observedBatchSource{observedSource{src: src, st: st}}
	}
	return &observedSource{src: src, st: st}
}

// observedSource counts per-record pulls.
type observedSource struct {
	src Source
	st  *obs.Stage
}

func (o *observedSource) Next() (Record, error) {
	r, err := o.src.Next()
	if err == nil {
		o.st.Observe(1, RecordSize)
	}
	return r, err
}

// observedBatchSource additionally counts whole batches.
type observedBatchSource struct{ observedSource }

func (o *observedBatchSource) NextBatch(buf []Record) (int, error) {
	n, err := o.src.(BatchSource).NextBatch(buf)
	if n > 0 {
		o.st.ObserveBatch(n, n*RecordSize)
	}
	return n, err
}

// observedSpanSource additionally passes zero-copy span reads through.
type observedSpanSource struct{ observedSource }

func (o *observedSpanSource) NextSpan(max int) ([]Record, error) {
	span, err := o.src.(spanSource).NextSpan(max)
	if len(span) > 0 {
		o.st.ObserveBatch(len(span), len(span)*RecordSize)
	}
	return span, err
}

// observedColSource additionally counts whole column views, keeping the
// columnar fast path under observation.
type observedColSource struct {
	observedSource
	cs ColSource
}

func (o *observedColSource) NextBatch(buf []Record) (int, error) {
	n, err := o.src.(BatchSource).NextBatch(buf)
	if n > 0 {
		o.st.ObserveBatch(n, n*RecordSize)
	}
	return n, err
}

func (o *observedColSource) NextCols(max int) (*ColBatch, error) {
	cols, err := o.cs.NextCols(max)
	if cols != nil && cols.Len() > 0 {
		o.st.ObserveBatch(cols.Len(), cols.Len()*RecordSize)
	}
	return cols, err
}

// ObserveSink wraps dst so records pushed into it are counted into st.
// A nil stage returns dst unchanged. The wrapper of a BatchSink is a
// BatchSink, and of a columnar BatchSink a ColSink too.
func ObserveSink(dst Sink, st *obs.Stage) Sink {
	if st == nil {
		return dst
	}
	if _, ok := dst.(ColSink); ok {
		if _, batch := dst.(BatchSink); batch {
			return &observedColSink{observedBatchSink{observedSink{dst: dst, st: st}}}
		}
	}
	if _, ok := dst.(BatchSink); ok {
		return &observedBatchSink{observedSink{dst: dst, st: st}}
	}
	return &observedSink{dst: dst, st: st}
}

// observedSink counts per-record pushes.
type observedSink struct {
	dst Sink
	st  *obs.Stage
}

func (o *observedSink) Add(r Record) error {
	if err := o.dst.Add(r); err != nil {
		return err
	}
	o.st.Observe(1, RecordSize)
	return nil
}

// observedBatchSink additionally counts whole batches.
type observedBatchSink struct{ observedSink }

func (o *observedBatchSink) AddBatch(recs []Record) error {
	if err := o.dst.(BatchSink).AddBatch(recs); err != nil {
		return err
	}
	o.st.ObserveBatch(len(recs), len(recs)*RecordSize)
	return nil
}

// observedColSink additionally counts whole column views.
type observedColSink struct{ observedBatchSink }

func (o *observedColSink) AddCols(cols *ColBatch) error {
	if err := o.dst.(ColSink).AddCols(cols); err != nil {
		return err
	}
	o.st.ObserveBatch(cols.Len(), cols.Len()*RecordSize)
	return nil
}
