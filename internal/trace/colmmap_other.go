//go:build !unix

package trace

import (
	"errors"
	"os"
)

// mmapFile is unavailable on this platform; OpenFileSource falls back to
// the streaming columnar decoder.
func mmapFile(f *os.File) ([]byte, func() error, error) {
	return nil, nil, errors.New("trace: mmap unsupported on this platform")
}
