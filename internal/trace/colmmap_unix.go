//go:build unix

package trace

import (
	"errors"
	"os"
	"syscall"
)

// mmapFile maps f read-only in its entirety and returns the bytes with
// an unmap function. An empty file maps to an empty (nil) image.
func mmapFile(f *os.File) ([]byte, func() error, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	if !mmapSizeOK(size) {
		return nil, nil, errors.New("trace: col: file too large to map")
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
