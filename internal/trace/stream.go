package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// Source is a pull iterator over trace records. Next returns io.EOF once
// the stream is exhausted; any other error is terminal. Sources let the
// capture→analysis path process traces of arbitrary length in bounded
// memory: readers decode incrementally, merges hold one bounded buffer per
// input, and accumulators consume records as they appear.
type Source interface {
	Next() (Record, error)
}

// Sink is a push consumer of trace records. Analysis accumulators, trace
// writers, and fan-out tees all implement Sink so a single pass over a
// Source can feed every consumer at once.
type Sink interface {
	Add(Record) error
}

// sliceSource iterates over an in-memory trace.
type sliceSource struct {
	recs []Record
	i    int
}

// SliceSource adapts an in-memory trace to the Source interface. The
// returned Source is also a BatchSource, and batch consumers read the
// backing slice without copying.
func SliceSource(recs []Record) Source { return &sliceSource{recs: recs} }

func (s *sliceSource) Next() (Record, error) {
	if s.i >= len(s.recs) {
		return Record{}, io.EOF
	}
	r := s.recs[s.i]
	s.i++
	return r, nil
}

// NextBatch copies up to len(buf) records out of the backing slice.
func (s *sliceSource) NextBatch(buf []Record) (int, error) {
	n := copy(buf, s.recs[s.i:])
	s.i += n
	if s.i >= len(s.recs) {
		return n, io.EOF
	}
	return n, nil
}

// NextSpan returns a view of up to max ready records of the backing slice
// without copying.
func (s *sliceSource) NextSpan(max int) ([]Record, error) {
	if s.i >= len(s.recs) {
		return nil, io.EOF
	}
	span := s.recs[s.i:]
	if len(span) > max {
		span = span[:max]
	}
	s.i += len(span)
	return span, nil
}

// Collector is a Sink that materializes the stream as a slice, the adapter
// back to the batch world. It consumes whole batches with a single append.
type Collector struct {
	Recs []Record
}

// NewCollector returns a Collector pre-sized for capacity records, so
// known-length paths avoid append regrowth.
func NewCollector(capacity int) *Collector {
	if capacity <= 0 {
		return &Collector{}
	}
	return &Collector{Recs: make([]Record, 0, capacity)}
}

// Add appends r.
func (c *Collector) Add(r Record) error {
	c.Recs = append(c.Recs, r)
	return nil
}

// AddBatch appends a whole batch at once.
func (c *Collector) AddBatch(recs []Record) error {
	c.Recs = append(c.Recs, recs...)
	return nil
}

// AddCols appends a whole columnar batch, transposing once.
func (c *Collector) AddCols(cols *ColBatch) error {
	c.Recs = cols.AppendTo(c.Recs)
	return nil
}

// Collect drains src into a slice.
func Collect(src Source) ([]Record, error) { return CollectSize(src, 0) }

// CollectSize drains src into a slice pre-sized for sizeHint records; the
// hint eliminates append regrowth when the stream length is known.
func CollectSize(src Source, sizeHint int) ([]Record, error) {
	c := NewCollector(sizeHint)
	if _, err := Copy(c, src); err != nil {
		return c.Recs, err
	}
	return c.Recs, nil
}

// Copy streams every record from src into dst and reports how many records
// were transferred. It stops at the first error from either side. When src
// batches (every source of this package does), records move in whole
// buffers, and a dst that implements BatchSink receives them without
// per-record dispatch. When both ends are columnar — a columnar-native
// source feeding a ColSink — column views move straight across and no
// record is ever materialized.
func Copy(dst Sink, src Source) (int, error) {
	if cd, ok := dst.(ColSink); ok {
		if cs, ok := AsColSource(src); ok {
			return CopyCols(cd, cs)
		}
	}
	switch src.(type) {
	case spanSource, BatchSource:
		return copyBatched(dst, newSpanReader(src, DefaultBatchLen))
	}
	n := 0
	for {
		r, err := src.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		if err := dst.Add(r); err != nil {
			return n, err
		}
		n++
	}
}

// CopyBatches streams every record from src into dst at batch granularity
// and reports how many records were transferred; the batch form of Copy.
func CopyBatches(dst BatchSink, src BatchSource) (int, error) {
	return copyBatched(FromBatchSink(dst), newSpanReader(src, DefaultBatchLen))
}

// copyBatched moves whole spans from in to dst.
func copyBatched(dst Sink, in *spanReader) (int, error) {
	bd, batched := dst.(BatchSink)
	n := 0
	for {
		span, err := in.nextSpan()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		if batched {
			if err := bd.AddBatch(span); err != nil {
				return n, err
			}
			n += len(span)
			continue
		}
		for _, r := range span {
			if err := dst.Add(r); err != nil {
				return n, err
			}
			n++
		}
	}
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Record) error

// Add calls f(r).
func (f SinkFunc) Add(r Record) error { return f(r) }

// tee fans each record out to several sinks. It forwards whole batches to
// sinks that accept them and whole columnar batches to columnar sinks.
type tee struct {
	sinks   []Sink
	batched []BatchSink // non-nil where the sink batches
	cols    []ColSink   // non-nil where the sink is columnar
	scratch []Record    // lazy row materialization for AddCols
}

// Tee returns a Sink that forwards every record to each sink in order, so
// one pass over a trace feeds any number of accumulators. The returned
// Sink is also a BatchSink and a ColSink: batches fan out whole to
// batch-aware sinks and record by record to the rest, and columnar
// batches fan out as column views to columnar sinks — rows are
// materialized at most once per batch, and only if some sink needs them.
func Tee(sinks ...Sink) Sink {
	t := &tee{
		sinks:   sinks,
		batched: make([]BatchSink, len(sinks)),
		cols:    make([]ColSink, len(sinks)),
	}
	for i, s := range sinks {
		if bs, ok := s.(BatchSink); ok {
			t.batched[i] = bs
		}
		if cs, ok := s.(ColSink); ok {
			t.cols[i] = cs
		}
	}
	return t
}

func (t *tee) Add(r Record) error {
	for _, s := range t.sinks {
		if err := s.Add(r); err != nil {
			return err
		}
	}
	return nil
}

// AddCols fans a columnar batch out to every sink: column views to
// columnar sinks, materialized rows (built at most once) to the rest.
func (t *tee) AddCols(cols *ColBatch) error {
	var recs []Record
	for i, s := range t.sinks {
		if cs := t.cols[i]; cs != nil {
			if err := cs.AddCols(cols); err != nil {
				return err
			}
			continue
		}
		if recs == nil {
			t.scratch = cols.AppendTo(t.scratch[:0])
			recs = t.scratch
		}
		if bs := t.batched[i]; bs != nil {
			if err := bs.AddBatch(recs); err != nil {
				return err
			}
			continue
		}
		for _, r := range recs {
			if err := s.Add(r); err != nil {
				return err
			}
		}
	}
	return nil
}

// AddBatch fans a whole batch out to every sink.
func (t *tee) AddBatch(recs []Record) error {
	for i, s := range t.sinks {
		if bs := t.batched[i]; bs != nil {
			if err := bs.AddBatch(recs); err != nil {
				return err
			}
			continue
		}
		for _, r := range recs {
			if err := s.Add(r); err != nil {
				return err
			}
		}
	}
	return nil
}

// less is the trace ordering: (Time, Node, Sector).
func less(a, b Record) bool {
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	if a.Node != b.Node {
		return a.Node < b.Node
	}
	return a.Sector < b.Sector
}

// Less reports the trace ordering for callers outside the package that
// must reproduce the merge order exactly (the parallel characterizer
// normalizes per-node shards with it).
func Less(a, b Record) bool { return less(a, b) }

// SortedByKey reports whether recs is already ordered by (Time, Node,
// Sector), the exported form of the merge's pre-sort check.
func SortedByKey(recs []Record) bool { return sortedByKey(recs) }

// sortedByKey reports whether recs is already ordered by (Time, Node,
// Sector).
func sortedByKey(recs []Record) bool {
	for i := 1; i < len(recs); i++ {
		if less(recs[i], recs[i-1]) {
			return false
		}
	}
	return true
}

// MergeSlices returns a streaming k-way merge over in-memory per-node
// traces. Inputs that are not already key-ordered are stably sorted on a
// pre-sized private copy first, so the merged order is identical to Merge
// for any input.
func MergeSlices(traces ...[]Record) Source {
	srcs := make([]Source, len(traces))
	for i, t := range traces {
		if !sortedByKey(t) {
			c := make([]Record, len(t))
			copy(c, t)
			sort.SliceStable(c, func(a, b int) bool { return less(c[a], c[b]) })
			t = c
		}
		srcs[i] = SliceSource(t)
	}
	return MergeSources(srcs...)
}

// Reader decodes the binary trace format incrementally. It batches: each
// refill decodes a whole 64 KiB buffer of fixed-size records, and both the
// per-record Next and the batch NextBatch draw from it.
type Reader struct {
	br   *bufio.Reader
	raw  [batchBytes]byte
	recs []Record // decode scratch for span reads
}

// NewReader returns a streaming decoder for the binary trace format.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, batchBytes)}
}

// Next decodes the next record, returning io.EOF at a clean end of stream.
func (d *Reader) Next() (Record, error) {
	_, err := io.ReadFull(d.br, d.raw[:recordSize])
	if err == io.EOF {
		return Record{}, io.EOF
	}
	if err != nil {
		return Record{}, fmt.Errorf("trace: read: %w", err)
	}
	return UnmarshalRecord(d.raw[:recordSize])
}

// NextBatch decodes up to len(buf) records in one pass over a whole
// encoded buffer, returning how many records are valid. A trailing
// partial record surfaces as the same error the per-record path reports.
func (d *Reader) NextBatch(buf []Record) (int, error) {
	want := len(buf)
	if want > batchBytes/recordSize {
		want = batchBytes / recordSize
	}
	if want == 0 {
		return 0, nil
	}
	nb, err := io.ReadFull(d.br, d.raw[:want*recordSize])
	full := nb / recordSize
	for i := 0; i < full; i++ {
		r, uerr := UnmarshalRecord(d.raw[i*recordSize:])
		if uerr != nil {
			return i, uerr
		}
		buf[i] = r
	}
	switch err {
	case nil:
		return full, nil
	case io.EOF, io.ErrUnexpectedEOF:
		if nb%recordSize != 0 {
			return full, fmt.Errorf("trace: read: %w", io.ErrUnexpectedEOF)
		}
		return full, io.EOF
	default:
		return full, fmt.Errorf("trace: read: %w", err)
	}
}

// NextSpan decodes up to max records into an internal scratch buffer and
// returns a view of it, valid until the next call.
func (d *Reader) NextSpan(max int) ([]Record, error) {
	if max > DefaultBatchLen {
		max = DefaultBatchLen
	}
	if d.recs == nil {
		d.recs = make([]Record, DefaultBatchLen)
	}
	n, err := d.NextBatch(d.recs[:max])
	return d.recs[:n], err
}

// Writer encodes records to the binary trace format incrementally. It is a
// Sink and a BatchSink — AddBatch marshals whole 64 KiB buffers per write
// call. Call Flush when the stream ends.
type Writer struct {
	bw  *bufio.Writer
	raw [batchBytes]byte
}

// NewWriter returns a streaming encoder for the binary trace format.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, batchBytes)}
}

// Add encodes one record.
func (t *Writer) Add(r Record) error {
	r.Marshal(t.raw[:recordSize])
	if _, err := t.bw.Write(t.raw[:recordSize]); err != nil {
		return fmt.Errorf("trace: write: %w", err)
	}
	return nil
}

// AddBatch encodes a whole batch, marshaling records into full 64 KiB
// buffers before each write call.
func (t *Writer) AddBatch(recs []Record) error {
	const perBuf = batchBytes / recordSize * recordSize
	off := 0
	for _, r := range recs {
		if off+recordSize > perBuf {
			if _, err := t.bw.Write(t.raw[:off]); err != nil {
				return fmt.Errorf("trace: write: %w", err)
			}
			off = 0
		}
		r.Marshal(t.raw[off:])
		off += recordSize
	}
	if off > 0 {
		if _, err := t.bw.Write(t.raw[:off]); err != nil {
			return fmt.Errorf("trace: write: %w", err)
		}
	}
	return nil
}

// Flush writes any buffered encoding to the underlying writer.
func (t *Writer) Flush() error { return t.bw.Flush() }
