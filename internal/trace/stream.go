package trace

import (
	"bufio"
	"container/heap"
	"fmt"
	"io"
	"sort"
)

// Source is a pull iterator over trace records. Next returns io.EOF once
// the stream is exhausted; any other error is terminal. Sources let the
// capture→analysis path process traces of arbitrary length in bounded
// memory: readers decode incrementally, merges hold one record per input,
// and accumulators consume records as they appear.
type Source interface {
	Next() (Record, error)
}

// Sink is a push consumer of trace records. Analysis accumulators, trace
// writers, and fan-out tees all implement Sink so a single pass over a
// Source can feed every consumer at once.
type Sink interface {
	Add(Record) error
}

// sliceSource iterates over an in-memory trace.
type sliceSource struct {
	recs []Record
	i    int
}

// SliceSource adapts an in-memory trace to the Source interface.
func SliceSource(recs []Record) Source { return &sliceSource{recs: recs} }

func (s *sliceSource) Next() (Record, error) {
	if s.i >= len(s.recs) {
		return Record{}, io.EOF
	}
	r := s.recs[s.i]
	s.i++
	return r, nil
}

// Collector is a Sink that materializes the stream as a slice, the adapter
// back to the batch world.
type Collector struct {
	Recs []Record
}

// Add appends r.
func (c *Collector) Add(r Record) error {
	c.Recs = append(c.Recs, r)
	return nil
}

// Collect drains src into a slice.
func Collect(src Source) ([]Record, error) {
	var c Collector
	if _, err := Copy(&c, src); err != nil {
		return c.Recs, err
	}
	return c.Recs, nil
}

// Copy streams every record from src into dst and reports how many records
// were transferred. It stops at the first error from either side.
func Copy(dst Sink, src Source) (int, error) {
	n := 0
	for {
		r, err := src.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		if err := dst.Add(r); err != nil {
			return n, err
		}
		n++
	}
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Record) error

// Add calls f(r).
func (f SinkFunc) Add(r Record) error { return f(r) }

// tee fans each record out to several sinks.
type tee struct {
	sinks []Sink
}

// Tee returns a Sink that forwards every record to each sink in order, so
// one pass over a trace feeds any number of accumulators.
func Tee(sinks ...Sink) Sink { return &tee{sinks: sinks} }

func (t *tee) Add(r Record) error {
	for _, s := range t.sinks {
		if err := s.Add(r); err != nil {
			return err
		}
	}
	return nil
}

// less is the trace ordering: (Time, Node, Sector).
func less(a, b Record) bool {
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	if a.Node != b.Node {
		return a.Node < b.Node
	}
	return a.Sector < b.Sector
}

// mergeItem is one heap entry of the k-way merge.
type mergeItem struct {
	rec Record
	src int
}

// mergeHeap orders items by (Time, Node, Sector) with ties broken by source
// index, which makes the merge reproduce a stable sort of the concatenated
// inputs exactly.
type mergeHeap []mergeItem

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	if less(h[i].rec, h[j].rec) {
		return true
	}
	if less(h[j].rec, h[i].rec) {
		return false
	}
	return h[i].src < h[j].src
}
func (h mergeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)   { *h = append(*h, x.(mergeItem)) }
func (h *mergeHeap) Pop() any {
	old := *h
	it := old[len(old)-1]
	*h = old[:len(old)-1]
	return it
}

// mergeSource streams the k-way merge, holding one record per live input.
type mergeSource struct {
	srcs []Source
	h    mergeHeap
	init bool
}

// MergeSources returns a Source yielding the records of all inputs merged
// by (Time, Node, Sector). Each input must already be ordered by that key
// (per-node driver traces are, since rings preserve arrival order); ties
// across inputs resolve in input order, matching the stable sort the
// batch Merge performs. Memory use is one buffered record per input
// regardless of trace length.
func MergeSources(srcs ...Source) Source { return &mergeSource{srcs: srcs} }

func (m *mergeSource) Next() (Record, error) {
	if !m.init {
		m.init = true
		m.h = make(mergeHeap, 0, len(m.srcs))
		for i, s := range m.srcs {
			r, err := s.Next()
			if err == io.EOF {
				continue
			}
			if err != nil {
				return Record{}, err
			}
			m.h = append(m.h, mergeItem{rec: r, src: i})
		}
		heap.Init(&m.h)
	}
	if len(m.h) == 0 {
		return Record{}, io.EOF
	}
	it := m.h[0]
	r, err := m.srcs[it.src].Next()
	switch {
	case err == io.EOF:
		heap.Pop(&m.h)
	case err != nil:
		return Record{}, err
	default:
		m.h[0] = mergeItem{rec: r, src: it.src}
		heap.Fix(&m.h, 0)
	}
	return it.rec, nil
}

// sortedByKey reports whether recs is already ordered by (Time, Node,
// Sector).
func sortedByKey(recs []Record) bool {
	for i := 1; i < len(recs); i++ {
		if less(recs[i], recs[i-1]) {
			return false
		}
	}
	return true
}

// MergeSlices returns a streaming k-way merge over in-memory per-node
// traces. Inputs that are not already key-ordered are stably sorted on a
// private copy first, so the merged order is identical to Merge for any
// input.
func MergeSlices(traces ...[]Record) Source {
	srcs := make([]Source, len(traces))
	for i, t := range traces {
		if !sortedByKey(t) {
			t = append([]Record(nil), t...)
			sort.SliceStable(t, func(a, b int) bool { return less(t[a], t[b]) })
		}
		srcs[i] = SliceSource(t)
	}
	return MergeSources(srcs...)
}

// Reader decodes the binary trace format incrementally: one record per
// Next call, without slurping the whole file.
type Reader struct {
	br  *bufio.Reader
	buf [recordSize]byte
}

// NewReader returns a streaming decoder for the binary trace format.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 1<<16)}
}

// Next decodes the next record, returning io.EOF at a clean end of stream.
func (d *Reader) Next() (Record, error) {
	_, err := io.ReadFull(d.br, d.buf[:])
	if err == io.EOF {
		return Record{}, io.EOF
	}
	if err != nil {
		return Record{}, fmt.Errorf("trace: read: %w", err)
	}
	return UnmarshalRecord(d.buf[:])
}

// Writer encodes records to the binary trace format incrementally. It is a
// Sink; call Flush when the stream ends.
type Writer struct {
	bw  *bufio.Writer
	buf [recordSize]byte
}

// NewWriter returns a streaming encoder for the binary trace format.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 1<<16)}
}

// Add encodes one record.
func (t *Writer) Add(r Record) error {
	r.Marshal(t.buf[:])
	if _, err := t.bw.Write(t.buf[:]); err != nil {
		return fmt.Errorf("trace: write: %w", err)
	}
	return nil
}

// Flush writes any buffered encoding to the underlying writer.
func (t *Writer) Flush() error { return t.bw.Flush() }
