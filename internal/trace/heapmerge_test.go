package trace

// The container/heap k-way merge the loser tree replaced, kept verbatim
// as a test oracle and benchmark baseline: the loser tree must reproduce
// its output record for record, and the benchmarks below quantify what
// removing the heap's `any` boxing and two-comparison sift paths bought.

import (
	"container/heap"
	"io"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"essio/internal/sim"
)

// heapItem is one buffered head record of a merge input.
type heapItem struct {
	rec Record
	src int
}

// recHeap orders items by (Time, Node, Sector) with ties broken by input
// index, through the standard heap interface.
type recHeap []heapItem

func (h recHeap) Len() int { return len(h) }
func (h recHeap) Less(i, j int) bool {
	if less(h[i].rec, h[j].rec) {
		return true
	}
	if less(h[j].rec, h[i].rec) {
		return false
	}
	return h[i].src < h[j].src
}
func (h recHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *recHeap) Push(x any)   { *h = append(*h, x.(heapItem)) }
func (h *recHeap) Pop() any     { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// heapMergeSource is the old per-record heap merge.
type heapMergeSource struct {
	srcs []Source
	h    recHeap
	init bool
}

func heapMergeSources(srcs ...Source) Source {
	return &heapMergeSource{srcs: srcs}
}

func (m *heapMergeSource) start() error {
	m.init = true
	for i, s := range m.srcs {
		rec, err := s.Next()
		if err == io.EOF {
			continue
		}
		if err != nil {
			return err
		}
		m.h = append(m.h, heapItem{rec: rec, src: i})
	}
	heap.Init(&m.h)
	return nil
}

func (m *heapMergeSource) Next() (Record, error) {
	if !m.init {
		if err := m.start(); err != nil {
			return Record{}, err
		}
	}
	if len(m.h) == 0 {
		return Record{}, io.EOF
	}
	it := m.h[0]
	rec, err := m.srcs[it.src].Next()
	switch {
	case err == io.EOF:
		heap.Pop(&m.h)
	case err != nil:
		return Record{}, err
	default:
		m.h[0].rec = rec
		heap.Fix(&m.h, 0)
	}
	return it.rec, nil
}

func TestQuickLoserTreeMatchesHeapMergeSorted(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		traces := mkRandTraces(rng)
		for _, tr := range traces {
			sort.SliceStable(tr, func(a, b int) bool { return less(tr[a], tr[b]) })
		}
		mk := func() []Source {
			srcs := make([]Source, len(traces))
			for i, tr := range traces {
				srcs[i] = SliceSource(tr)
			}
			return srcs
		}
		want, err := Collect(heapMergeSources(mk()...))
		if err != nil {
			return false
		}
		got, err := Collect(MergeSources(mk()...))
		if err != nil {
			return false
		}
		if len(want) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLoserTreeMatchesHeapMergeUnsorted(t *testing.T) {
	// Unsorted inputs go through the Merge normalization on both sides;
	// the loser tree must still match the heap record for record.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		traces := mkRandTraces(rng)
		normalized := make([]Source, len(traces))
		for i, tr := range traces {
			c := make([]Record, len(tr))
			copy(c, tr)
			sort.SliceStable(c, func(a, b int) bool { return less(c[a], c[b]) })
			normalized[i] = SliceSource(c)
		}
		want, err := Collect(heapMergeSources(normalized...))
		if err != nil {
			return false
		}
		got := Merge(traces...)
		if len(want) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// benchMergeTraces builds nNodes sorted per-node traces of perNode records.
func benchMergeTraces(nNodes, perNode int) [][]Record {
	traces := make([][]Record, nNodes)
	for n := range traces {
		recs := make([]Record, perNode)
		for i := range recs {
			recs[i] = Record{
				Time:   sim.Time(i*nNodes+n) * sim.Time(sim.Millisecond),
				Node:   uint8(n),
				Sector: uint32((i * 64) % 200000),
				Count:  uint16(2 + i%8),
				Op:     Op(i % 2),
			}
		}
		traces[n] = recs
	}
	return traces
}

func benchSources(traces [][]Record) []Source {
	srcs := make([]Source, len(traces))
	for i, tr := range traces {
		srcs[i] = SliceSource(tr)
	}
	return srcs
}

// BenchmarkMergeHeap is the old heap merge drained one record per Next.
func BenchmarkMergeHeap(b *testing.B) {
	traces := benchMergeTraces(16, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := drainRecords(heapMergeSources(benchSources(traces)...))
		if err != nil || n != 16*4096 {
			b.Fatalf("n=%d err=%v", n, err)
		}
	}
}

// BenchmarkMergeLoserTree is the loser tree drained one record per Next —
// the structural win alone, batching aside.
func BenchmarkMergeLoserTree(b *testing.B) {
	traces := benchMergeTraces(16, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := drainRecords(MergeSources(benchSources(traces)...))
		if err != nil || n != 16*4096 {
			b.Fatalf("n=%d err=%v", n, err)
		}
	}
}

// BenchmarkMergeLoserTreeBatch is the loser tree drained a whole buffer
// per NextBatch — the full batched path.
func BenchmarkMergeLoserTreeBatch(b *testing.B) {
	traces := benchMergeTraces(16, 4096)
	buf := make([]Record, DefaultBatchLen)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := MergeSources(benchSources(traces)...).(BatchSource)
		n := 0
		for {
			k, err := src.NextBatch(buf)
			n += k
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
		}
		if n != 16*4096 {
			b.Fatalf("n=%d", n)
		}
	}
}

func drainRecords(src Source) (int, error) {
	n := 0
	for {
		_, err := src.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		n++
	}
}
