package trace

import (
	"bytes"
	"reflect"
	"testing"
)

// validateRecord checks the invariants the hardened decoders guarantee on
// every record they accept.
func validateRecord(t *testing.T, r Record) {
	t.Helper()
	if r.Time < 0 {
		t.Fatalf("decoder accepted negative time: %+v", r)
	}
	if r.Op > Write {
		t.Fatalf("decoder accepted invalid op: %+v", r)
	}
	if int(r.Origin) >= len(originNames) {
		t.Fatalf("decoder accepted invalid origin: %+v", r)
	}
}

func FuzzDecodeBinary(f *testing.F) {
	var valid bytes.Buffer
	if err := WriteAll(&valid, fileTestRecords()); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:RecordSize])
	f.Add(valid.Bytes()[:RecordSize-1]) // truncated record
	f.Add([]byte{})
	f.Add(make([]byte, RecordSize))   // zero record
	f.Add(make([]byte, 3*RecordSize)) // several zero records
	corrupt := append([]byte(nil), valid.Bytes()...)
	corrupt[16] = 0xff // invalid op
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := ReadAll(bytes.NewReader(data))
		if err != nil {
			return // malformed input must error, never panic
		}
		for _, r := range recs {
			validateRecord(t, r)
		}
		// Accepted input must round-trip exactly.
		var out bytes.Buffer
		if err := WriteAll(&out, recs); err != nil {
			t.Fatal(err)
		}
		again, err := ReadAll(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-decoding our own encoding: %v", err)
		}
		if len(again) == 0 {
			again = []Record{}
		}
		if len(recs) == 0 {
			recs = []Record{}
		}
		if !reflect.DeepEqual(again, recs) {
			t.Fatalf("binary round trip diverged: %v vs %v", again, recs)
		}
	})
}

func FuzzDecodeColumnar(f *testing.F) {
	var valid bytes.Buffer
	if err := WriteCol(&valid, fileTestRecords()); err != nil {
		f.Fatal(err)
	}
	vb := valid.Bytes()
	f.Add(vb)
	f.Add([]byte{})
	f.Add(vb[:len(colMagic)]) // magic only: empty trace
	// Truncated headers: cut inside the magic, inside the block header,
	// and inside the first column payload.
	f.Add(vb[:len(colMagic)-3])
	f.Add(vb[:len(colMagic)+colHeaderLen/2])
	f.Add(vb[:len(vb)-5])
	// Corrupt varint runs: continuation bits forced high in a payload.
	corruptVarint := append([]byte(nil), vb...)
	for i := len(colMagic) + colHeaderLen; i < len(corruptVarint); i++ {
		corruptVarint[i] |= 0x80
	}
	f.Add(corruptVarint)
	// Column-length mismatch: the header claims more records than the
	// encoded columns carry.
	overCount := append([]byte(nil), vb...)
	overCount[len(colMagic)] = 0xff
	f.Add(overCount)
	zeroCount := append([]byte(nil), vb...)
	zeroCount[len(colMagic)] = 0
	f.Add(zeroCount)
	// Bogus encoding tags and oversized column declarations.
	badEnc := append([]byte(nil), vb...)
	badEnc[len(colMagic)+4] = 0x7f
	f.Add(badEnc)
	bigCol := append([]byte(nil), vb...)
	bigCol[len(colMagic)+4+3] = 0xff // high byte of column 0's size
	f.Add(bigCol)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := ReadCol(bytes.NewReader(data))
		if err != nil {
			return // malformed input must error, never panic
		}
		for _, r := range recs {
			validateRecord(t, r)
		}
		// Accepted input must round-trip exactly, and the mapped decoder
		// must agree with the streaming one on the re-encoded bytes.
		var out bytes.Buffer
		if err := WriteCol(&out, recs); err != nil {
			t.Fatal(err)
		}
		again, err := ReadCol(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-decoding our own encoding: %v", err)
		}
		if len(again) == 0 {
			again = []Record{}
		}
		if len(recs) == 0 {
			recs = []Record{}
		}
		if !reflect.DeepEqual(again, recs) {
			t.Fatalf("columnar round trip diverged: %v vs %v", again, recs)
		}
		ms, err := newMappedColSource(out.Bytes())
		if err != nil {
			t.Fatalf("mapped decoder rejected our own encoding: %v", err)
		}
		mapped := []Record{}
		for {
			r, err := ms.Next()
			if err != nil {
				break
			}
			mapped = append(mapped, r)
		}
		if !reflect.DeepEqual(mapped, recs) {
			t.Fatalf("mapped decode diverged: %v vs %v", mapped, recs)
		}
	})
}

func FuzzDecodeText(f *testing.F) {
	var valid bytes.Buffer
	if err := WriteText(&valid, fileTestRecords()); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.String())
	f.Add(textHeader + "\n")
	f.Add("")
	f.Add("# comment only\n")
	f.Add("0.000001\tR\t100\t8\t0\t0\tdata\n")
	f.Add("0.000001\tR\t100\t8\t0\t0\tbogus\n")   // bad origin
	f.Add("NaN\tR\t100\t8\t0\t0\tdata\n")         // bad time
	f.Add("-1\tW\t100\t8\t0\t0\tdata\n")          // negative time
	f.Add("1e300\tW\t100\t8\t0\t0\tdata\n")       // out-of-range time
	f.Add("0.5\tX\t100\t8\t0\t0\tdata\n")         // bad op
	f.Add("0.5\tR\t100\t8\t0\t0\n")               // missing field
	f.Add("0.5\tR\t99999999999\t8\t0\t0\tdata\n") // sector overflow
	f.Add("0.5\tR\t100\t8\t0\t999\tdata\n")       // node overflow
	f.Add("time_s\top\tsector\tcount\tpending\tnode\torigin\n0.25\tW\t7\t2\t1\t3\tswap\n")

	f.Fuzz(func(t *testing.T, text string) {
		recs, err := ReadText(bytes.NewReader([]byte(text)))
		if err != nil {
			return // malformed input must error, never panic
		}
		for _, r := range recs {
			validateRecord(t, r)
		}
		// Accepted input must survive an encode/decode cycle unchanged:
		// the parser's time bound keeps the seconds conversion exact.
		var out bytes.Buffer
		if err := WriteText(&out, recs); err != nil {
			t.Fatal(err)
		}
		again, err := ReadText(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-parsing our own encoding: %v", err)
		}
		if len(again) == 0 {
			again = []Record{}
		}
		if len(recs) == 0 {
			recs = []Record{}
		}
		if !reflect.DeepEqual(again, recs) {
			t.Fatalf("text round trip diverged: %v vs %v", again, recs)
		}
	})
}
