package trace

// Equivalence suite for the columnar codec: the row pipeline is the
// oracle, so every columnar path — encoder, streaming decoder, mapped
// decoder, the batch adapters — must reproduce the row results record
// for record.

import (
	"bytes"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"

	"essio/internal/sim"
)

// mkColRecords builds a trace that exercises every column encoding:
// stretches of monotone timestamps and near-sequential sectors (delta
// wins), constant op/node/origin runs (RLE wins), and random jumps that
// force the raw fallback.
func mkColRecords(rng *rand.Rand) []Record {
	n := rng.Intn(3 * colBlockLen)
	recs := make([]Record, n)
	var t sim.Time
	var sec uint32
	for i := range recs {
		switch rng.Intn(4) {
		case 0: // sequential stretch
			t += sim.Time(rng.Intn(1000))
			sec += uint32(rng.Intn(64))
		default: // jump
			t += sim.Time(rng.Intn(int(sim.Second)))
			sec = rng.Uint32()
		}
		recs[i] = Record{
			Time:    t,
			Sector:  sec,
			Count:   uint16(rng.Intn(256) + 1),
			Pending: uint16(rng.Intn(16)),
			Op:      Op(rng.Intn(2)),
			Node:    uint8(rng.Intn(16)),
			Origin:  Origin(rng.Intn(7)),
		}
	}
	return recs
}

func TestColRoundTripFixed(t *testing.T) {
	recs := fileTestRecords()
	var buf bytes.Buffer
	if err := WriteCol(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCol(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("columnar round trip diverged:\n got %v\nwant %v", got, recs)
	}
}

func TestColEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCol(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != len(colMagic) {
		t.Fatalf("empty columnar stream is %d bytes, want %d (magic only)", buf.Len(), len(colMagic))
	}
	got, err := ReadCol(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty stream decoded to %d records", len(got))
	}
	// A zero-byte stream is an empty trace too, mirroring the row codec.
	got, err = ReadCol(bytes.NewReader(nil))
	if err != nil || len(got) != 0 {
		t.Fatalf("zero-byte stream: recs=%d err=%v", len(got), err)
	}
}

// TestQuickColRoundTrip pins the codec record-exact against the row
// representation across randomized traces.
func TestQuickColRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		recs := mkColRecords(rng)
		var buf bytes.Buffer
		if err := WriteCol(&buf, recs); err != nil {
			return false
		}
		got, err := ReadCol(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return false
		}
		if len(recs) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, recs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickColWriterPathsIdentical requires the three encoder entry
// points — Add, AddBatch, AddCols — to emit byte-identical files.
func TestQuickColWriterPathsIdentical(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		recs := mkColRecords(rng)

		var perRecord bytes.Buffer
		w := NewColWriter(&perRecord)
		for _, r := range recs {
			if err := w.Add(r); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}

		var batched bytes.Buffer
		bw := NewColWriter(&batched)
		if err := bw.AddBatch(recs); err != nil {
			return false
		}
		if err := bw.Flush(); err != nil {
			return false
		}

		var cols ColBatch
		cols.AppendRecords(recs)
		var colled bytes.Buffer
		cw := NewColWriter(&colled)
		if err := cw.AddCols(&cols); err != nil {
			return false
		}
		if err := cw.Flush(); err != nil {
			return false
		}

		return bytes.Equal(perRecord.Bytes(), batched.Bytes()) &&
			bytes.Equal(perRecord.Bytes(), colled.Bytes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// drainCols collects every record a ColSource yields through NextCols.
func drainCols(t *testing.T, src ColSource) []Record {
	t.Helper()
	var out []Record
	for {
		view, err := src.NextCols(0)
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		if view.Len() == 0 {
			t.Fatal("NextCols returned an empty view without error")
		}
		out = view.AppendTo(out)
	}
}

// TestQuickMappedMatchesReader decodes the same encoding through the
// buffered ColReader and the zero-copy mapped source and requires
// identical records — the mmap path's aliasing must be invisible.
func TestQuickMappedMatchesReader(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		recs := mkColRecords(rng)
		var buf bytes.Buffer
		if err := WriteCol(&buf, recs); err != nil {
			return false
		}
		want, err := ReadCol(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return false
		}
		ms, err := newMappedColSource(buf.Bytes())
		if err != nil {
			return false
		}
		got := drainCols(t, ms)
		if len(want) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestMappedRowAccessors drains the mapped source through Next and
// NextBatch with an awkward buffer size; all row views must agree.
func TestMappedRowAccessors(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	recs := mkColRecords(rng)
	var buf bytes.Buffer
	if err := WriteCol(&buf, recs); err != nil {
		t.Fatal(err)
	}

	ms, err := newMappedColSource(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	var byNext []Record
	for {
		r, err := ms.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		byNext = append(byNext, r)
	}
	if !reflect.DeepEqual(byNext, recs) {
		t.Fatal("mapped Next diverged from input records")
	}

	ms2, err := newMappedColSource(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	var byBatch []Record
	batch := make([]Record, 37) // deliberately misaligned with block size
	for {
		n, err := ms2.NextBatch(batch)
		byBatch = append(byBatch, batch[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(byBatch, recs) {
		t.Fatal("mapped NextBatch diverged from input records")
	}
}

// TestQuickColAdapters checks the batch adapters: a row source lifted by
// ToColSource, a columnar source lowered by FromColSource, and a slice
// batch served by SliceColSource must all reproduce the records.
func TestQuickColAdapters(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		recs := mkColRecords(rng)

		lifted := drainCols(t, ToColSource(SliceSource(recs)))
		if !recsEqual(lifted, recs) {
			return false
		}

		var buf bytes.Buffer
		if err := WriteCol(&buf, recs); err != nil {
			return false
		}
		lowered, err := Collect(FromColSource(NewColReader(bytes.NewReader(buf.Bytes()))))
		if err != nil || !recsEqual(lowered, recs) {
			return false
		}

		var cols ColBatch
		cols.AppendRecords(recs)
		sliced, err := Collect(SliceColSource(&cols))
		return err == nil && recsEqual(sliced, recs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func recsEqual(a, b []Record) bool {
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	return reflect.DeepEqual(a, b)
}

// TestOpenFileSourceCol writes a columnar file and opens it both with an
// explicit format and by sniffing; the open source must expose a native
// columnar view (mmap-backed where the platform allows).
func TestOpenFileSourceCol(t *testing.T) {
	recs := fileTestRecords()
	path := filepath.Join(t.TempDir(), "trace.col")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteCol(f, recs); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	for _, format := range []string{FormatCol, ""} {
		src, err := OpenFileSource(path, format)
		if err != nil {
			t.Fatalf("open %q: %v", format, err)
		}
		if src.Format() != FormatCol {
			t.Fatalf("format %q: sniffed %q, want %q", format, src.Format(), FormatCol)
		}
		if _, ok := AsColSource(src); !ok {
			t.Fatalf("format %q: columnar file source has no native column view", format)
		}
		got, err := Collect(src)
		if err != nil {
			t.Fatal(err)
		}
		if err := src.Close(); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, recs) {
			t.Fatalf("format %q: records diverged", format)
		}
	}
}

// TestReaderSourceColSniff feeds a columnar stream through the sniffing
// reader used for stdin and uploads.
func TestReaderSourceColSniff(t *testing.T) {
	recs := fileTestRecords()
	var buf bytes.Buffer
	if err := WriteCol(&buf, recs); err != nil {
		t.Fatal(err)
	}
	rs, err := NewReaderSource(bytes.NewReader(buf.Bytes()), "")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Format() != FormatCol {
		t.Fatalf("sniffed %q, want %q", rs.Format(), FormatCol)
	}
	if _, ok := AsColSource(rs); !ok {
		t.Fatal("sniffed columnar reader source has no native column view")
	}
	got, err := Collect(rs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatal("sniffed columnar stream diverged")
	}
}

// TestCopyColFastPath routes a columnar source into a columnar sink via
// Copy and checks the column fast path produces the same file as the
// row-by-row oracle.
func TestCopyColFastPath(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	recs := mkColRecords(rng)
	var in bytes.Buffer
	if err := WriteCol(&in, recs); err != nil {
		t.Fatal(err)
	}

	var viaCopy bytes.Buffer
	w := NewColWriter(&viaCopy)
	n, err := Copy(w, NewColReader(bytes.NewReader(in.Bytes())))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if n != len(recs) {
		t.Fatalf("Copy moved %d records, want %d", n, len(recs))
	}

	var viaRows bytes.Buffer
	rw := NewColWriter(&viaRows)
	for _, r := range recs {
		if err := rw.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := rw.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(viaCopy.Bytes(), viaRows.Bytes()) {
		t.Fatal("columnar Copy fast path produced different bytes than row-by-row encoding")
	}
}

// benchColRecords is the merged form of the 16×4096 merge fixture, the
// same stream the root CharacterizeStreaming benchmarks consume.
func benchColRecords() []Record {
	traces := benchMergeTraces(16, 4096)
	return Merge(traces...)
}

func BenchmarkColWrite(b *testing.B) {
	recs := benchColRecords()
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		w := NewColWriter(&buf)
		if err := w.AddBatch(recs); err != nil {
			b.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(recs) * RecordSize))
	b.ReportMetric(float64(buf.Len())/float64(len(recs)*RecordSize), "ratio")
}

func BenchmarkColRead(b *testing.B) {
	recs := benchColRecords()
	var buf bytes.Buffer
	if err := WriteCol(&buf, recs); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	b.SetBytes(int64(len(recs) * RecordSize))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := NewColReader(bytes.NewReader(data))
		n := 0
		for {
			view, err := d.NextCols(0)
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			n += view.Len()
		}
		if n != len(recs) {
			b.Fatalf("decoded %d records, want %d", n, len(recs))
		}
	}
}

// BenchmarkColMmapScan drains the zero-copy mapped decoder — the state
// the accumulators see when a columnar file is opened through mmap.
func BenchmarkColMmapScan(b *testing.B) {
	recs := benchColRecords()
	var buf bytes.Buffer
	if err := WriteCol(&buf, recs); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	b.SetBytes(int64(len(recs) * RecordSize))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ms, err := newMappedColSource(data)
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for {
			view, err := ms.NextCols(0)
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			n += view.Len()
		}
		if n != len(recs) {
			b.Fatalf("decoded %d records, want %d", n, len(recs))
		}
	}
}

// TestMergeRunCopyStability pins the loser tree's bulk run copying on
// the adversarial case: every input holds the same key many times, so
// stability (FIFO by input index) is the only thing ordering the output.
func TestMergeRunCopyStability(t *testing.T) {
	const inputs, per = 4, 100
	traces := make([][]Record, inputs)
	for n := range traces {
		recs := make([]Record, per)
		for i := range recs {
			recs[i] = Record{
				Time:    sim.Time(sim.Second),
				Sector:  4096,
				Count:   uint16(i + 1), // payload marks position within input
				Node:    0,             // identical keys across ALL inputs
				Pending: uint16(n),     // payload marks source input
			}
		}
		traces[n] = recs
	}
	mk := func() []Source {
		srcs := make([]Source, inputs)
		for i, tr := range traces {
			srcs[i] = SliceSource(tr)
		}
		return srcs
	}
	want, err := Collect(heapMergeSources(mk()...))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(MergeSources(mk()...))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("run-copying merge broke stability on all-equal keys")
	}
}
