// Record batches: the throughput layer of the streaming pipeline. The
// per-record Source/Sink interfaces keep the pipeline composable, but they
// cost one interface dispatch per record at every stage. BatchSource and
// BatchSink move whole record buffers across stage boundaries instead, so
// dispatch overhead is amortized over DefaultBatchLen records; adapters in
// both directions keep every per-record Source and Sink working unchanged,
// and Copy picks the widest path both ends support.

package trace

import "io"

// batchBytes is the codec's I/O granularity: encode and decode move whole
// 64 KiB buffers of fixed-size records per call into the underlying reader
// or writer instead of one record at a time.
const batchBytes = 64 << 10

// DefaultBatchLen is the record count of a default batch buffer: as many
// fixed-size records as fit the 64 KiB codec granularity.
const DefaultBatchLen = batchBytes / RecordSize

// BatchSource is a pull iterator over record batches. NextBatch fills up
// to len(buf) records and reports how many were written. Like io.Reader,
// it may return n > 0 together with io.EOF; callers must consume the
// records before acting on the error, and subsequent calls return 0,
// io.EOF. Any other error is terminal.
type BatchSource interface {
	NextBatch(buf []Record) (int, error)
}

// BatchSink is a push consumer of record batches. AddBatch consumes every
// record of recs or returns the first error; recs must not be retained.
type BatchSink interface {
	AddBatch(recs []Record) error
}

// spanSource is an optional refinement of BatchSource for sources that can
// expose ready records without copying them into a caller buffer: NextSpan
// returns up to max records valid only until the next call. Slice sources
// return views of the backing slice and the binary Reader returns its
// decode scratch, so the k-way merge reads both with zero per-record
// copies.
type spanSource interface {
	NextSpan(max int) ([]Record, error)
}

// ToBatchSource adapts src to the batch interface: sources that already
// batch are returned unchanged, per-record sources are wrapped in a
// Next-per-record fill loop.
func ToBatchSource(src Source) BatchSource {
	if bs, ok := src.(BatchSource); ok {
		return bs
	}
	return &recordBatcher{src: src}
}

// recordBatcher fills batches one Next call at a time, the compatibility
// path for per-record sources under batch consumers.
type recordBatcher struct {
	src Source
}

func (b *recordBatcher) NextBatch(buf []Record) (int, error) {
	for i := range buf {
		r, err := b.src.Next()
		if err == io.EOF {
			return i, io.EOF
		}
		if err != nil {
			return i, err
		}
		buf[i] = r
	}
	return len(buf), nil
}

// ToBatchSink adapts dst to the batch interface: sinks that already batch
// are returned unchanged, per-record sinks are wrapped in an Add-per-record
// drain loop.
func ToBatchSink(dst Sink) BatchSink {
	if bs, ok := dst.(BatchSink); ok {
		return bs
	}
	return &recordDrainer{dst: dst}
}

// recordDrainer drains batches one Add call at a time.
type recordDrainer struct {
	dst Sink
}

func (d *recordDrainer) AddBatch(recs []Record) error {
	for _, r := range recs {
		if err := d.dst.Add(r); err != nil {
			return err
		}
	}
	return nil
}

// FromBatchSource adapts a batch source back to the per-record interface,
// buffering one batch between Next calls.
func FromBatchSource(bs BatchSource) Source {
	if s, ok := bs.(Source); ok {
		return s
	}
	return &batchUnpacker{in: newSpanReader(bs, DefaultBatchLen)}
}

// batchUnpacker yields a buffered batch one record per Next.
type batchUnpacker struct {
	in   *spanReader
	span []Record
	pos  int
}

func (u *batchUnpacker) Next() (Record, error) {
	if u.pos >= len(u.span) {
		span, err := u.in.nextSpan()
		if err != nil {
			return Record{}, err
		}
		// The buffered span is fully consumed before the next nextSpan
		// call refills it, so holding it across Next calls is safe.
		u.span, u.pos = span, 0 //essvet:ignore spanretain
	}
	r := u.span[u.pos]
	u.pos++
	return r, nil
}

// FromBatchSink adapts a batch sink back to the per-record interface. The
// adapter forwards each record as a one-element batch; it does not buffer,
// so no Flush is needed.
func FromBatchSink(bs BatchSink) Sink {
	if s, ok := bs.(Sink); ok {
		return s
	}
	return &singleBatcher{dst: bs}
}

// singleBatcher forwards records as one-element batches through a reused
// buffer. It is also a BatchSink passing whole batches straight through,
// so wrapping a batch sink for per-record compatibility never costs the
// batched paths anything.
type singleBatcher struct {
	dst BatchSink
	one [1]Record
}

func (s *singleBatcher) Add(r Record) error {
	s.one[0] = r
	return s.dst.AddBatch(s.one[:])
}

func (s *singleBatcher) AddBatch(recs []Record) error { return s.dst.AddBatch(recs) }

// spanReader pulls zero-copy spans from sources that support them and
// falls back to batching into a private buffer for everything else. It is
// how the merge and the adapters read any Source at batch granularity.
type spanReader struct {
	sp     spanSource  // non-nil when the source exposes spans
	bs     BatchSource // otherwise batches into buf
	buf    []Record
	bufLen int
	eof    bool
}

// newSpanReader wraps src for span reads of at most bufLen records.
func newSpanReader(src any, bufLen int) *spanReader {
	r := &spanReader{bufLen: bufLen}
	switch s := src.(type) {
	case spanSource:
		r.sp = s
	case BatchSource:
		r.bs = s
	case Source:
		r.bs = ToBatchSource(s)
	default:
		panic("trace: span reader needs a Source or BatchSource")
	}
	return r
}

// nextSpan returns the next non-empty run of records, io.EOF at end of
// stream, or a terminal error. The returned slice is valid until the next
// call.
func (r *spanReader) nextSpan() ([]Record, error) {
	if r.eof {
		return nil, io.EOF
	}
	for {
		if r.sp != nil {
			span, err := r.sp.NextSpan(r.bufLen)
			if err == io.EOF {
				r.eof = true
				if len(span) > 0 {
					return span, nil
				}
				return nil, io.EOF
			}
			if err != nil {
				return nil, err
			}
			if len(span) > 0 {
				return span, nil
			}
			continue
		}
		if r.buf == nil {
			r.buf = make([]Record, r.bufLen)
		}
		n, err := r.bs.NextBatch(r.buf)
		if err == io.EOF {
			r.eof = true
			if n > 0 {
				return r.buf[:n], nil
			}
			return nil, io.EOF
		}
		if err != nil {
			return nil, err
		}
		if n > 0 {
			return r.buf[:n], nil
		}
	}
}
