package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"essio/internal/sim"
)

// WriteText writes records as tab-separated text with a header line, the
// interchange format for spreadsheets and plotting scripts.
func WriteText(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "time_s\top\tsector\tcount\tpending\tnode\torigin"); err != nil {
		return err
	}
	for _, r := range recs {
		_, err := fmt.Fprintf(bw, "%.6f\t%s\t%d\t%d\t%d\t%d\t%s\n",
			r.Time.Seconds(), r.Op, r.Sector, r.Count, r.Pending, r.Node, r.Origin)
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// originFromString inverts Origin.String.
func originFromString(s string) (Origin, error) {
	for i, name := range originNames {
		if s == name {
			return Origin(i), nil
		}
	}
	return 0, fmt.Errorf("trace: unknown origin %q", s)
}

// ReadText parses the tab-separated format produced by WriteText.
func ReadText(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var recs []Record
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "time_s") || strings.HasPrefix(text, "#") {
			continue
		}
		f := strings.Split(text, "\t")
		if len(f) != 7 {
			return recs, fmt.Errorf("trace: line %d has %d fields, want 7", line, len(f))
		}
		secs, err := strconv.ParseFloat(f[0], 64)
		if err != nil {
			return recs, fmt.Errorf("trace: line %d time: %w", line, err)
		}
		var rec Record
		rec.Time = sim.Time(sim.DurationOf(secs))
		switch f[1] {
		case "R":
			rec.Op = Read
		case "W":
			rec.Op = Write
		default:
			return recs, fmt.Errorf("trace: line %d op %q", line, f[1])
		}
		sector, err := strconv.ParseUint(f[2], 10, 32)
		if err != nil {
			return recs, fmt.Errorf("trace: line %d sector: %w", line, err)
		}
		rec.Sector = uint32(sector)
		count, err := strconv.ParseUint(f[3], 10, 16)
		if err != nil {
			return recs, fmt.Errorf("trace: line %d count: %w", line, err)
		}
		rec.Count = uint16(count)
		pending, err := strconv.ParseUint(f[4], 10, 16)
		if err != nil {
			return recs, fmt.Errorf("trace: line %d pending: %w", line, err)
		}
		rec.Pending = uint16(pending)
		node, err := strconv.ParseUint(f[5], 10, 8)
		if err != nil {
			return recs, fmt.Errorf("trace: line %d node: %w", line, err)
		}
		rec.Node = uint8(node)
		rec.Origin, err = originFromString(f[6])
		if err != nil {
			return recs, fmt.Errorf("trace: line %d: %w", line, err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return recs, err
	}
	return recs, nil
}
