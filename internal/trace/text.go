package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"essio/internal/sim"
)

// maxTextSeconds bounds a parsed timestamp: far beyond any simulated
// span, and small enough that the seconds-to-microseconds float
// conversion is exact, so text round trips are lossless.
const maxTextSeconds = 1e9

// textHeader is the column header line of the tab-separated format.
const textHeader = "time_s\top\tsector\tcount\tpending\tnode\torigin"

// TextWriter encodes records as tab-separated text incrementally. It is a
// Sink; the header line is written before the first record and Flush must
// be called when the stream ends.
type TextWriter struct {
	bw     *bufio.Writer
	header bool
}

// NewTextWriter returns a streaming encoder for the tab-separated format.
func NewTextWriter(w io.Writer) *TextWriter {
	return &TextWriter{bw: bufio.NewWriter(w)}
}

// Add writes one record (and the header, on first use).
func (t *TextWriter) Add(r Record) error {
	if !t.header {
		if err := t.writeHeader(); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(t.bw, "%.6f\t%s\t%d\t%d\t%d\t%d\t%s\n",
		r.Time.Seconds(), r.Op, r.Sector, r.Count, r.Pending, r.Node, r.Origin)
	return err
}

func (t *TextWriter) writeHeader() error {
	t.header = true
	_, err := fmt.Fprintln(t.bw, textHeader)
	return err
}

// Flush writes the header (if no record was ever added) and any buffered
// text to the underlying writer.
func (t *TextWriter) Flush() error {
	if !t.header {
		if err := t.writeHeader(); err != nil {
			return err
		}
	}
	return t.bw.Flush()
}

// WriteText writes records as tab-separated text with a header line, the
// interchange format for spreadsheets and plotting scripts. It is the
// batch form of the streaming TextWriter sink.
func WriteText(w io.Writer, recs []Record) error {
	tw := NewTextWriter(w)
	for _, r := range recs {
		if err := tw.Add(r); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// ParseOrigin inverts Origin.String.
func ParseOrigin(s string) (Origin, error) {
	for i, name := range originNames {
		if s == name {
			return Origin(i), nil
		}
	}
	return 0, fmt.Errorf("trace: unknown origin %q", s)
}

// parseTextLine decodes one data line. skip is true for blank, header, and
// comment lines.
func parseTextLine(text string, line int) (rec Record, skip bool, err error) {
	text = strings.TrimSpace(text)
	if text == "" || strings.HasPrefix(text, "time_s") || strings.HasPrefix(text, "#") {
		return Record{}, true, nil
	}
	f := strings.Split(text, "\t")
	if len(f) != 7 {
		return Record{}, false, fmt.Errorf("trace: line %d has %d fields, want 7", line, len(f))
	}
	secs, err := strconv.ParseFloat(f[0], 64)
	if err != nil {
		return Record{}, false, fmt.Errorf("trace: line %d time: %w", line, err)
	}
	if math.IsNaN(secs) || secs < 0 || secs > maxTextSeconds {
		return Record{}, false, fmt.Errorf("trace: line %d time %q out of range", line, f[0])
	}
	rec.Time = sim.Time(sim.DurationOf(secs))
	switch f[1] {
	case "R":
		rec.Op = Read
	case "W":
		rec.Op = Write
	default:
		return Record{}, false, fmt.Errorf("trace: line %d op %q", line, f[1])
	}
	sector, err := strconv.ParseUint(f[2], 10, 32)
	if err != nil {
		return Record{}, false, fmt.Errorf("trace: line %d sector: %w", line, err)
	}
	rec.Sector = uint32(sector)
	count, err := strconv.ParseUint(f[3], 10, 16)
	if err != nil {
		return Record{}, false, fmt.Errorf("trace: line %d count: %w", line, err)
	}
	rec.Count = uint16(count)
	pending, err := strconv.ParseUint(f[4], 10, 16)
	if err != nil {
		return Record{}, false, fmt.Errorf("trace: line %d pending: %w", line, err)
	}
	rec.Pending = uint16(pending)
	node, err := strconv.ParseUint(f[5], 10, 8)
	if err != nil {
		return Record{}, false, fmt.Errorf("trace: line %d node: %w", line, err)
	}
	rec.Node = uint8(node)
	rec.Origin, err = ParseOrigin(f[6])
	if err != nil {
		return Record{}, false, fmt.Errorf("trace: line %d: %w", line, err)
	}
	return rec, false, nil
}

// TextReader parses the tab-separated format incrementally: one record per
// Next call, skipping headers and comments, without reading the whole file
// first.
type TextReader struct {
	sc   *bufio.Scanner
	line int
}

// NewTextReader returns a streaming parser for the tab-separated format.
func NewTextReader(r io.Reader) *TextReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	return &TextReader{sc: sc}
}

// Next parses the next data line, returning io.EOF at end of input.
func (t *TextReader) Next() (Record, error) {
	for t.sc.Scan() {
		t.line++
		rec, skip, err := parseTextLine(t.sc.Text(), t.line)
		if err != nil {
			return Record{}, err
		}
		if skip {
			continue
		}
		return rec, nil
	}
	if err := t.sc.Err(); err != nil {
		return Record{}, err
	}
	return Record{}, io.EOF
}

// ReadText parses the tab-separated format produced by WriteText. It is
// the batch form of the streaming TextReader source.
func ReadText(r io.Reader) ([]Record, error) {
	return Collect(NewTextReader(r))
}
