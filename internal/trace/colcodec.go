// Columnar on-disk trace codec (FormatCol). A file is an 8-byte magic
// followed by self-describing blocks of up to colBlockLen records; each
// block stores the seven record columns independently:
//
//	block  := count:u32le, 7 × (enc:u8, size:u32le), 7 × column payload
//	column := padding to an 8-byte file offset, then size bytes
//
// Encodings are chosen per column per block, falling back to raw
// fixed-width little-endian whenever compression would not be strictly
// smaller:
//
//	raw    (0) fixed-width little-endian values
//	delta  (1) zigzag varint deltas from the previous value (prev = 0)
//	varint (2) plain unsigned varints
//	rle    (3) runs of {length:uvarint, value:u8}
//
// Timestamps are near-monotone and sectors near-sequential, so delta
// collapses both to ~1 byte per record; ops/nodes/origins are long runs
// under RLE. The 8-byte payload alignment is relative to the file start,
// which a page-aligned mmap preserves — that is what lets the mapped
// source alias raw columns in place instead of decoding them.

package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"essio/internal/sim"
)

// FormatCol selects the columnar trace format ("col").
const FormatCol = "col"

// colMagic opens every columnar trace file. The first byte is
// non-printable so the format sniffer can never mistake columnar data
// for text, and no binary record starts a valid stream with it by
// construction of the check order (magic is tested first).
var colMagic = [8]byte{0xEC, 'E', 'S', 'S', 'C', 'O', 'L', '1'}

// Column encodings.
const (
	colEncRaw    = 0 // fixed-width little-endian
	colEncDelta  = 1 // zigzag varint deltas
	colEncVarint = 2 // plain unsigned varints
	colEncRLE    = 3 // {runlen uvarint, value byte} runs
)

const (
	// colColumns is the column count per block: times, sectors, counts,
	// pendings, ops, nodes, origins — in that order.
	colColumns = 7
	// colHeaderLen is the fixed block header size.
	colHeaderLen = 4 + colColumns*5
	// colAlign is the file-offset alignment of every column payload.
	colAlign = 8
	// colBlockLen is the writer's records-per-block target.
	colBlockLen = 4096
	// colMaxBlockLen bounds the decoder's per-block allocation against
	// corrupt counts.
	colMaxBlockLen = 1 << 20
	// colMaxValBytes is the longest encoding of one value in any
	// non-raw encoding (a 10-byte uvarint); RLE adds its value byte per
	// run, bounded by one per record.
	colMaxValBytes = 10
)

// colRawWidth is the fixed raw byte width of each column.
var colRawWidth = [colColumns]int{8, 4, 2, 2, 1, 1, 1}

// colPadding supplies alignment zeroes.
var colPadding [colAlign]byte

// zigzag maps signed deltas onto unsigned varint space, small-magnitude
// first.
func zigzag(d int64) uint64 { return uint64(d<<1) ^ uint64(d>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// encodeTimeCol encodes timestamps as zigzag deltas, raw when not
// strictly smaller.
func encodeTimeCol(dst []byte, ts []sim.Time) (byte, []byte) {
	var prev int64
	for _, t := range ts {
		dst = binary.AppendUvarint(dst, zigzag(int64(t)-prev))
		prev = int64(t)
	}
	if len(dst) >= 8*len(ts) {
		dst = dst[:0]
		for _, t := range ts {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(t))
		}
		return colEncRaw, dst
	}
	return colEncDelta, dst
}

// encodeSectorCol encodes sectors as zigzag deltas, raw when not
// strictly smaller.
func encodeSectorCol(dst []byte, secs []uint32) (byte, []byte) {
	var prev int64
	for _, s := range secs {
		dst = binary.AppendUvarint(dst, zigzag(int64(s)-prev))
		prev = int64(s)
	}
	if len(dst) >= 4*len(secs) {
		dst = dst[:0]
		for _, s := range secs {
			dst = binary.LittleEndian.AppendUint32(dst, s)
		}
		return colEncRaw, dst
	}
	return colEncDelta, dst
}

// uvarintLen is the encoded size of u in bytes.
func uvarintLen(u uint64) int {
	n := 1
	for u >= 0x80 {
		u >>= 7
		n++
	}
	return n
}

// encodeU16Col encodes 16-bit values as plain varints or — when the
// column is dominated by runs of equal values, as queue depths are —
// as {runlen, value} pairs; raw little-endian when neither is strictly
// smaller. A first sizing pass picks the winner so only one encoding is
// materialized.
func encodeU16Col(dst []byte, vals []uint16) (byte, []byte) {
	varintLen, rleLen := 0, 0
	for i := 0; i < len(vals); {
		v := vals[i]
		j := i + 1
		for j < len(vals) && vals[j] == v {
			j++
		}
		rleLen += uvarintLen(uint64(j-i)) + 2
		varintLen += (j - i) * uvarintLen(uint64(v))
		i = j
	}
	switch {
	case rleLen < varintLen && rleLen < 2*len(vals):
		for i := 0; i < len(vals); {
			v := vals[i]
			j := i + 1
			for j < len(vals) && vals[j] == v {
				j++
			}
			dst = binary.AppendUvarint(dst, uint64(j-i))
			dst = binary.LittleEndian.AppendUint16(dst, v)
			i = j
		}
		return colEncRLE, dst
	case varintLen < 2*len(vals):
		for _, v := range vals {
			dst = binary.AppendUvarint(dst, uint64(v))
		}
		return colEncVarint, dst
	default:
		for _, v := range vals {
			dst = binary.LittleEndian.AppendUint16(dst, v)
		}
		return colEncRaw, dst
	}
}

// encodeByteCol run-length encodes byte-wide values, raw when not
// strictly smaller.
func encodeByteCol[T ~uint8](dst []byte, vals []T) (byte, []byte) {
	for i := 0; i < len(vals); {
		v := vals[i]
		j := i + 1
		for j < len(vals) && vals[j] == v {
			j++
		}
		dst = binary.AppendUvarint(dst, uint64(j-i))
		dst = append(dst, byte(v))
		i = j
	}
	if len(dst) >= len(vals) {
		dst = dst[:0]
		for _, v := range vals {
			dst = append(dst, byte(v))
		}
		return colEncRaw, dst
	}
	return colEncRLE, dst
}

var (
	errColTruncated = errors.New("trace: col: truncated column payload")
	errColTrailing  = errors.New("trace: col: trailing bytes in column payload")
	errColRawSize   = errors.New("trace: col: raw column size mismatch")
)

// decodeTimeCol fills out from a time column payload, rejecting negative
// timestamps like the row decoder.
func decodeTimeCol(enc byte, p []byte, out []sim.Time) error {
	switch enc {
	case colEncRaw:
		if len(p) != 8*len(out) {
			return errColRawSize
		}
		for i := range out {
			t := sim.Time(binary.LittleEndian.Uint64(p[8*i:]))
			if t < 0 {
				return fmt.Errorf("trace: col: negative timestamp %d", t)
			}
			out[i] = t
		}
		return nil
	case colEncDelta:
		var prev int64
		for i := range out {
			// One- and two-byte deltas dominate real traces; decode them
			// without the general Uvarint loop.
			var u uint64
			if len(p) >= 2 && p[0] < 0x80 {
				u, p = uint64(p[0]), p[1:]
			} else if len(p) >= 3 && p[1] < 0x80 {
				u, p = uint64(p[0]&0x7f)|uint64(p[1])<<7, p[2:]
			} else {
				v, n := binary.Uvarint(p)
				if n <= 0 {
					return errColTruncated
				}
				u, p = v, p[n:]
			}
			prev += unzigzag(u)
			if prev < 0 {
				return fmt.Errorf("trace: col: negative timestamp %d", prev)
			}
			out[i] = sim.Time(prev)
		}
		if len(p) != 0 {
			return errColTrailing
		}
		return nil
	}
	return fmt.Errorf("trace: col: bad time encoding %d", enc)
}

// decodeSectorCol fills out from a sector column payload.
func decodeSectorCol(enc byte, p []byte, out []uint32) error {
	switch enc {
	case colEncRaw:
		if len(p) != 4*len(out) {
			return errColRawSize
		}
		for i := range out {
			out[i] = binary.LittleEndian.Uint32(p[4*i:])
		}
		return nil
	case colEncDelta:
		var prev int64
		for i := range out {
			var u uint64
			if len(p) >= 2 && p[0] < 0x80 {
				u, p = uint64(p[0]), p[1:]
			} else if len(p) >= 3 && p[1] < 0x80 {
				u, p = uint64(p[0]&0x7f)|uint64(p[1])<<7, p[2:]
			} else {
				v, n := binary.Uvarint(p)
				if n <= 0 {
					return errColTruncated
				}
				u, p = v, p[n:]
			}
			// prev stays in [0, 2^32) after each step, so the sum
			// cannot wrap int64 silently: any overflow lands negative
			// and is rejected here.
			prev += unzigzag(u)
			if prev < 0 || prev > math.MaxUint32 {
				return fmt.Errorf("trace: col: sector %d out of range", prev)
			}
			out[i] = uint32(prev)
		}
		if len(p) != 0 {
			return errColTrailing
		}
		return nil
	}
	return fmt.Errorf("trace: col: bad sector encoding %d", enc)
}

// decodeU16Col fills out from a 16-bit column payload.
func decodeU16Col(enc byte, p []byte, out []uint16) error {
	switch enc {
	case colEncRaw:
		if len(p) != 2*len(out) {
			return errColRawSize
		}
		for i := range out {
			out[i] = binary.LittleEndian.Uint16(p[2*i:])
		}
		return nil
	case colEncVarint:
		for i := range out {
			var u uint64
			if len(p) >= 2 && p[0] < 0x80 {
				u, p = uint64(p[0]), p[1:]
			} else if len(p) >= 3 && p[1] < 0x80 {
				u, p = uint64(p[0]&0x7f)|uint64(p[1])<<7, p[2:]
			} else {
				v, n := binary.Uvarint(p)
				if n <= 0 {
					return errColTruncated
				}
				u, p = v, p[n:]
			}
			if u > math.MaxUint16 {
				return fmt.Errorf("trace: col: value %d overflows 16 bits", u)
			}
			out[i] = uint16(u)
		}
		if len(p) != 0 {
			return errColTrailing
		}
		return nil
	case colEncRLE:
		i := 0
		for i < len(out) {
			u, n := binary.Uvarint(p)
			if n <= 0 {
				return errColTruncated
			}
			p = p[n:]
			if u == 0 || u > uint64(len(out)-i) {
				return fmt.Errorf("trace: col: run length %d exceeds block", u)
			}
			if len(p) < 2 {
				return errColTruncated
			}
			v := binary.LittleEndian.Uint16(p)
			p = p[2:]
			run := out[i : i+int(u)]
			for j := range run {
				run[j] = v
			}
			i += int(u)
		}
		if len(p) != 0 {
			return errColTrailing
		}
		return nil
	}
	return fmt.Errorf("trace: col: bad 16-bit encoding %d", enc)
}

// decodeByteCol fills out from a byte-wide column payload.
func decodeByteCol[T ~uint8](enc byte, p []byte, out []T) error {
	switch enc {
	case colEncRaw:
		if len(p) != len(out) {
			return errColRawSize
		}
		for i := range out {
			out[i] = T(p[i])
		}
		return nil
	case colEncRLE:
		i := 0
		for i < len(out) {
			u, n := binary.Uvarint(p)
			if n <= 0 {
				return errColTruncated
			}
			p = p[n:]
			if u == 0 || u > uint64(len(out)-i) {
				return fmt.Errorf("trace: col: run length %d exceeds block", u)
			}
			if len(p) == 0 {
				return errColTruncated
			}
			v := T(p[0])
			p = p[1:]
			for j := 0; j < int(u); j++ {
				out[i] = v
				i++
			}
		}
		if len(p) != 0 {
			return errColTrailing
		}
		return nil
	}
	return fmt.Errorf("trace: col: bad byte encoding %d", enc)
}

// validateOps rejects op flags outside the enum, matching the row
// decoder's per-record check.
func validateOps(ops []Op) error {
	for _, op := range ops {
		if op > Write {
			return fmt.Errorf("trace: col: invalid op %d", op)
		}
	}
	return nil
}

// validateOrigins rejects origin tags outside the enum.
func validateOrigins(origins []Origin) error {
	for _, o := range origins {
		if int(o) >= len(originNames) {
			return fmt.Errorf("trace: col: invalid origin %d", o)
		}
	}
	return nil
}

// validateTimes rejects negative timestamps in an aliased raw column.
func validateTimes(ts []sim.Time) error {
	for _, t := range ts {
		if t < 0 {
			return fmt.Errorf("trace: col: negative timestamp %d", t)
		}
	}
	return nil
}

// ColWriter encodes records to the columnar trace format. It is a Sink,
// a BatchSink, and a ColSink; records accumulate into colBlockLen-record
// blocks that are column-encoded on flush. Call Flush when the stream
// ends — an empty stream still writes the magic, the columnar encoding
// of an empty trace.
type ColWriter struct {
	bw     *bufio.Writer
	batch  ColBatch
	colbuf [colColumns][]byte
	off    int64
	magic  bool
	werr   error
}

// NewColWriter returns a streaming encoder for the columnar trace
// format.
func NewColWriter(w io.Writer) *ColWriter {
	return &ColWriter{bw: bufio.NewWriterSize(w, batchBytes)}
}

// write appends p to the stream, tracking the file offset for payload
// alignment and latching the first error.
func (w *ColWriter) write(p []byte) {
	if w.werr != nil {
		return
	}
	if _, err := w.bw.Write(p); err != nil {
		w.werr = fmt.Errorf("trace: col: write: %w", err)
		return
	}
	w.off += int64(len(p))
}

// pad advances the stream to the next colAlign boundary.
func (w *ColWriter) pad() {
	if rem := int(w.off % colAlign); rem != 0 {
		w.write(colPadding[:colAlign-rem])
	}
}

// writeMagic emits the file magic once.
func (w *ColWriter) writeMagic() {
	if !w.magic {
		w.magic = true
		w.write(colMagic[:])
	}
}

// flushBlock column-encodes and emits the pending block, if any.
func (w *ColWriter) flushBlock() error {
	if w.werr != nil {
		return w.werr
	}
	n := w.batch.Len()
	if n == 0 {
		return nil
	}
	w.writeMagic()
	b := &w.batch
	var enc [colColumns]byte
	enc[0], w.colbuf[0] = encodeTimeCol(w.colbuf[0][:0], b.Times)
	enc[1], w.colbuf[1] = encodeSectorCol(w.colbuf[1][:0], b.Sectors)
	enc[2], w.colbuf[2] = encodeU16Col(w.colbuf[2][:0], b.Counts)
	enc[3], w.colbuf[3] = encodeU16Col(w.colbuf[3][:0], b.Pendings)
	enc[4], w.colbuf[4] = encodeByteCol(w.colbuf[4][:0], b.Ops)
	enc[5], w.colbuf[5] = encodeByteCol(w.colbuf[5][:0], b.Nodes)
	enc[6], w.colbuf[6] = encodeByteCol(w.colbuf[6][:0], b.Origins)
	var hdr [colHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(n))
	for i := 0; i < colColumns; i++ {
		hdr[4+5*i] = enc[i]
		binary.LittleEndian.PutUint32(hdr[4+5*i+1:], uint32(len(w.colbuf[i])))
	}
	w.write(hdr[:])
	for i := range w.colbuf {
		w.pad()
		w.write(w.colbuf[i])
	}
	w.batch.Reset()
	return w.werr
}

// Add encodes one record.
func (w *ColWriter) Add(r Record) error {
	w.batch.AppendRecord(r)
	if w.batch.Len() >= colBlockLen {
		return w.flushBlock()
	}
	return w.werr
}

// AddBatch encodes a whole record batch.
func (w *ColWriter) AddBatch(recs []Record) error {
	for len(recs) > 0 {
		room := colBlockLen - w.batch.Len()
		if room > len(recs) {
			room = len(recs)
		}
		w.batch.AppendRecords(recs[:room])
		recs = recs[room:]
		if w.batch.Len() >= colBlockLen {
			if err := w.flushBlock(); err != nil {
				return err
			}
		}
	}
	return w.werr
}

// AddCols encodes a columnar batch without materializing records.
func (w *ColWriter) AddCols(cols *ColBatch) error {
	for i, n := 0, cols.Len(); i < n; {
		room := colBlockLen - w.batch.Len()
		if room > n-i {
			room = n - i
		}
		part := cols.Slice(i, i+room)
		w.batch.AppendCols(&part)
		i += room
		if w.batch.Len() >= colBlockLen {
			if err := w.flushBlock(); err != nil {
				return err
			}
		}
	}
	return w.werr
}

// Flush encodes any pending partial block and flushes the underlying
// writer.
func (w *ColWriter) Flush() error {
	if err := w.flushBlock(); err != nil {
		return err
	}
	w.writeMagic()
	if w.werr != nil {
		return w.werr
	}
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("trace: col: flush: %w", err)
	}
	return nil
}

// ColReader decodes the columnar trace format incrementally. It is a
// Source, a BatchSource, a span source, and a ColSource — columnar
// consumers get views of each decoded block without transposing back to
// records. An empty stream decodes as an empty trace, mirroring the
// binary reader.
type ColReader struct {
	br      *bufio.Reader
	batch   ColBatch
	pos     int
	view    ColBatch
	recs    []Record // span materialization scratch
	payload []byte
	off     int64
	started bool
	eof     bool
	err     error
}

// NewColReader returns a streaming decoder for the columnar trace
// format.
func NewColReader(r io.Reader) *ColReader {
	return &ColReader{br: bufio.NewReaderSize(r, batchBytes)}
}

// start consumes and checks the file magic.
func (d *ColReader) start() error {
	d.started = true
	var m [len(colMagic)]byte
	n, err := io.ReadFull(d.br, m[:])
	if err == io.EOF && n == 0 {
		d.eof = true // empty stream: empty trace
		return io.EOF
	}
	if err != nil {
		return fmt.Errorf("trace: col: short magic: %w", err)
	}
	if m != colMagic {
		return errors.New("trace: col: bad magic")
	}
	d.off = int64(len(m))
	return nil
}

// colSizeBound is the largest plausible payload size for a count-record
// column; anything larger is rejected before allocation.
func colSizeBound(i, count int) int {
	w := colRawWidth[i]
	if w < colMaxValBytes+1 {
		w = colMaxValBytes + 1
	}
	return w * count
}

// decodeBlock reads and decodes the next block into d.batch.
func (d *ColReader) decodeBlock() error {
	if d.err != nil {
		return d.err
	}
	if d.eof {
		return io.EOF
	}
	if !d.started {
		if err := d.start(); err != nil {
			if err == io.EOF {
				return io.EOF
			}
			d.err = err
			return err
		}
	}
	var hdr [colHeaderLen]byte
	if _, err := io.ReadFull(d.br, hdr[:]); err != nil {
		if err == io.EOF {
			d.eof = true
			return io.EOF
		}
		d.err = fmt.Errorf("trace: col: block header: %w", err)
		return d.err
	}
	d.off += colHeaderLen
	count := int(binary.LittleEndian.Uint32(hdr[0:]))
	if count <= 0 || count > colMaxBlockLen {
		d.err = fmt.Errorf("trace: col: bad block count %d", count)
		return d.err
	}
	d.batch.resize(count)
	for i := 0; i < colColumns; i++ {
		enc := hdr[4+5*i]
		size := int(binary.LittleEndian.Uint32(hdr[4+5*i+1:]))
		if size > colSizeBound(i, count) {
			d.err = fmt.Errorf("trace: col: column %d size %d exceeds bound", i, size)
			return d.err
		}
		if rem := int(d.off % colAlign); rem != 0 {
			if _, err := io.ReadFull(d.br, hdr[:colAlign-rem]); err != nil {
				d.err = fmt.Errorf("trace: col: column %d padding: %w", i, err)
				return d.err
			}
			d.off += int64(colAlign - rem)
		}
		if cap(d.payload) < size {
			d.payload = make([]byte, size)
		}
		p := d.payload[:size]
		if _, err := io.ReadFull(d.br, p); err != nil {
			d.err = fmt.Errorf("trace: col: column %d payload: %w", i, err)
			return d.err
		}
		d.off += int64(size)
		if err := decodeColInto(i, enc, p, &d.batch); err != nil {
			d.err = err
			return d.err
		}
	}
	d.pos = 0
	return nil
}

// decodeColInto dispatches a column payload to its typed decoder and
// validates enum columns.
func decodeColInto(i int, enc byte, p []byte, b *ColBatch) error {
	switch i {
	case 0:
		return decodeTimeCol(enc, p, b.Times)
	case 1:
		return decodeSectorCol(enc, p, b.Sectors)
	case 2:
		return decodeU16Col(enc, p, b.Counts)
	case 3:
		return decodeU16Col(enc, p, b.Pendings)
	case 4:
		if err := decodeByteCol(enc, p, b.Ops); err != nil {
			return err
		}
		return validateOps(b.Ops)
	case 5:
		return decodeByteCol(enc, p, b.Nodes)
	default:
		if err := decodeByteCol(enc, p, b.Origins); err != nil {
			return err
		}
		return validateOrigins(b.Origins)
	}
}

// NextCols returns a view of up to max records of the current block,
// valid until the next call.
func (d *ColReader) NextCols(max int) (*ColBatch, error) {
	if max <= 0 {
		max = DefaultBatchLen
	}
	if d.pos >= d.batch.Len() {
		if err := d.decodeBlock(); err != nil {
			return nil, err
		}
	}
	j := d.pos + max
	if j > d.batch.Len() {
		j = d.batch.Len()
	}
	d.view = d.batch.Slice(d.pos, j)
	d.pos = j
	return &d.view, nil
}

// Next decodes the next record, returning io.EOF at a clean end of
// stream.
func (d *ColReader) Next() (Record, error) {
	if d.pos >= d.batch.Len() {
		if err := d.decodeBlock(); err != nil {
			return Record{}, err
		}
	}
	r := d.batch.Record(d.pos)
	d.pos++
	return r, nil
}

// NextBatch materializes up to len(buf) records from decoded blocks.
func (d *ColReader) NextBatch(buf []Record) (int, error) {
	n := 0
	for n < len(buf) {
		if d.pos >= d.batch.Len() {
			if err := d.decodeBlock(); err != nil {
				if err == io.EOF && n > 0 {
					return n, io.EOF
				}
				return n, err
			}
		}
		m := d.batch.Len() - d.pos
		if m > len(buf)-n {
			m = len(buf) - n
		}
		for i := 0; i < m; i++ {
			buf[n+i] = d.batch.Record(d.pos + i)
		}
		n += m
		d.pos += m
	}
	return n, nil
}

// NextSpan materializes up to max records into an internal scratch
// buffer and returns a view of it, valid until the next call.
func (d *ColReader) NextSpan(max int) ([]Record, error) {
	if max > DefaultBatchLen {
		max = DefaultBatchLen
	}
	if d.recs == nil {
		d.recs = make([]Record, DefaultBatchLen)
	}
	n, err := d.NextBatch(d.recs[:max])
	return d.recs[:n], err
}

// WriteCol encodes a whole trace in the columnar format; the columnar
// sibling of WriteAll.
func WriteCol(w io.Writer, recs []Record) error {
	cw := NewColWriter(w)
	if err := cw.AddBatch(recs); err != nil {
		return err
	}
	return cw.Flush()
}

// ReadCol decodes a whole columnar trace; the columnar sibling of
// ReadAll.
func ReadCol(r io.Reader) ([]Record, error) {
	return Collect(NewColReader(r))
}
