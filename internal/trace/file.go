package trace

import (
	"fmt"
	"io"
	"os"
)

// Format names a trace file encoding.
const (
	// FormatBinary is the compact fixed-record binary encoding.
	FormatBinary = "bin"
	// FormatText is the tab-separated interchange encoding.
	FormatText = "text"
	// FormatAuto sniffs the encoding from the file's first bytes.
	FormatAuto = "auto"
)

// FileSource is a Source reading a trace file; Close releases the file.
// It remembers the resolved format so callers can report what they read.
type FileSource struct {
	src    Source
	f      *os.File
	format string
}

// Next yields the next record of the file.
func (s *FileSource) Next() (Record, error) { return s.src.Next() }

// Close closes the underlying file.
func (s *FileSource) Close() error { return s.f.Close() }

// Format reports the resolved encoding, FormatBinary or FormatText.
func (s *FileSource) Format() string { return s.format }

// OpenFileSource opens a trace file as a streaming Source. format is
// FormatBinary, FormatText, or FormatAuto (sniff); the empty string means
// FormatAuto. It is the shared open/sniff path of essanalyze, essreplay,
// and esssynth.
func OpenFileSource(path, format string) (*FileSource, error) {
	switch format {
	case FormatBinary, FormatText, FormatAuto:
	case "":
		format = FormatAuto
	default:
		return nil, fmt.Errorf("trace: unknown format %q (want %s, %s, or %s)",
			format, FormatBinary, FormatText, FormatAuto)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	if format == FormatAuto {
		format, err = sniffFormat(f)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("trace: %s: %w", path, err)
		}
	}
	s := &FileSource{f: f, format: format}
	if format == FormatText {
		s.src = NewTextReader(f)
	} else {
		s.src = NewReader(f)
	}
	return s, nil
}

// sniffFormat decides between the binary and text encodings by examining
// the first bytes of f, then rewinds it. The text format is pure
// printable ASCII with tabs and newlines (it opens with a header line);
// binary records contain NUL padding and timestamp bytes within the first
// RecordSize bytes.
func sniffFormat(f *os.File) (string, error) {
	var buf [256]byte
	n, err := f.Read(buf[:])
	if err != nil && err != io.EOF {
		return "", err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return "", err
	}
	if n == 0 {
		// An empty file is a valid empty trace in either encoding.
		return FormatBinary, nil
	}
	for _, b := range buf[:n] {
		if b == '\t' || b == '\n' || b == '\r' {
			continue
		}
		if b < 0x20 || b > 0x7e {
			return FormatBinary, nil
		}
	}
	return FormatText, nil
}
