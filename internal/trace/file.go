package trace

import (
	"fmt"
	"io"
	"os"
)

// Format names a trace file encoding.
const (
	// FormatBinary is the compact fixed-record binary encoding.
	FormatBinary = "bin"
	// FormatText is the tab-separated interchange encoding.
	FormatText = "text"
	// FormatAuto sniffs the encoding from the file's first bytes.
	FormatAuto = "auto"
)

// FileSource is a Source reading a trace file; Close releases the file.
// It remembers the resolved format so callers can report what they read.
// It is also a BatchSource: binary files decode whole 64 KiB buffers per
// NextBatch, text files fall back to a per-record fill.
type FileSource struct {
	src    Source
	batch  BatchSource
	f      *os.File
	format string
}

// Next yields the next record of the file.
func (s *FileSource) Next() (Record, error) { return s.src.Next() }

// NextBatch yields up to len(buf) records of the file.
func (s *FileSource) NextBatch(buf []Record) (int, error) {
	if s.batch == nil {
		s.batch = ToBatchSource(s.src)
	}
	return s.batch.NextBatch(buf)
}

// Close closes the underlying file.
func (s *FileSource) Close() error { return s.f.Close() }

// Format reports the resolved encoding, FormatBinary or FormatText.
func (s *FileSource) Format() string { return s.format }

// OpenFileSource opens a trace file as a streaming Source. format is
// FormatBinary, FormatText, or FormatAuto (sniff); the empty string means
// FormatAuto. It is the shared open/sniff path of essanalyze, essreplay,
// and esssynth.
func OpenFileSource(path, format string) (*FileSource, error) {
	switch format {
	case FormatBinary, FormatText, FormatAuto:
	case "":
		format = FormatAuto
	default:
		return nil, fmt.Errorf("trace: unknown format %q (want %s, %s, or %s)",
			format, FormatBinary, FormatText, FormatAuto)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	if format == FormatAuto {
		format, err = sniffFormat(f)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("trace: %s: %w", path, err)
		}
	}
	s := &FileSource{f: f, format: format}
	if format == FormatText {
		s.src = NewTextReader(f)
	} else {
		s.src = NewReader(f)
	}
	return s, nil
}

// OpenFileChunks opens a binary trace file as n record-aligned,
// time-contiguous chunk sources covering the file in order, so independent
// workers can analyze one file in parallel and fold their accumulators
// back together with the exact concatenation merges. Fewer than n chunks
// come back when the file holds fewer than n records. It fails — and the
// caller should fall back to the sequential single-source path — when the
// file is text-encoded, is not a whole number of records long, or is
// empty.
func OpenFileChunks(path string, n int) ([]*FileSource, error) {
	if n < 1 {
		n = 1
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	format, err := sniffFormat(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("trace: %s: %w", path, err)
	}
	if format != FormatBinary {
		f.Close()
		return nil, fmt.Errorf("trace: %s: chunked reads need the binary format", path)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	f.Close()
	size := st.Size()
	if size == 0 || size%RecordSize != 0 {
		return nil, fmt.Errorf("trace: %s: %d bytes is not a whole number of %d-byte records",
			path, size, RecordSize)
	}
	total := size / RecordSize
	if int64(n) > total {
		n = int(total)
	}
	per := (total + int64(n) - 1) / int64(n)
	chunks := make([]*FileSource, 0, n)
	for start := int64(0); start < total; start += per {
		count := per
		if start+count > total {
			count = total - start
		}
		cf, err := os.Open(path)
		if err != nil {
			closeFileSources(chunks)
			return nil, err
		}
		if _, err := cf.Seek(start*RecordSize, io.SeekStart); err != nil {
			cf.Close()
			closeFileSources(chunks)
			return nil, err
		}
		lr := io.LimitReader(cf, count*RecordSize)
		chunks = append(chunks, &FileSource{src: NewReader(lr), f: cf, format: FormatBinary})
	}
	return chunks, nil
}

func closeFileSources(srcs []*FileSource) {
	for _, s := range srcs {
		s.Close()
	}
}

// sniffFormat decides between the binary and text encodings by examining
// the first bytes of f, then rewinds it. The text format is pure
// printable ASCII with tabs and newlines (it opens with a header line);
// binary records contain NUL padding and timestamp bytes within the first
// RecordSize bytes.
func sniffFormat(f *os.File) (string, error) {
	var buf [256]byte
	n, err := f.Read(buf[:])
	if err != nil && err != io.EOF {
		return "", err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return "", err
	}
	if n == 0 {
		// An empty file is a valid empty trace in either encoding.
		return FormatBinary, nil
	}
	for _, b := range buf[:n] {
		if b == '\t' || b == '\n' || b == '\r' {
			continue
		}
		if b < 0x20 || b > 0x7e {
			return FormatBinary, nil
		}
	}
	return FormatText, nil
}
