package trace

import (
	"bufio"
	"fmt"
	"io"
	"os"
)

// Format names a trace file encoding.
const (
	// FormatBinary is the compact fixed-record binary encoding.
	FormatBinary = "bin"
	// FormatText is the tab-separated interchange encoding.
	FormatText = "text"
	// FormatAuto sniffs the encoding from the file's first bytes.
	FormatAuto = "auto"
	// FormatCol (declared in colcodec.go) is the compressed columnar
	// encoding.
)

// FileSource is a Source reading a trace file; Close releases the file.
// It remembers the resolved format so callers can report what they read.
// It is also a BatchSource: binary files decode whole 64 KiB buffers per
// NextBatch, text files fall back to a per-record fill.
type FileSource struct {
	src    Source
	batch  BatchSource
	col    ColSource    // non-nil when the file is columnar
	unmap  func() error // releases an mmap-backed columnar view
	f      *os.File
	format string
}

// Next yields the next record of the file.
func (s *FileSource) Next() (Record, error) { return s.src.Next() }

// NextBatch yields up to len(buf) records of the file.
func (s *FileSource) NextBatch(buf []Record) (int, error) {
	if s.batch == nil {
		s.batch = ToBatchSource(s.src)
	}
	return s.batch.NextBatch(buf)
}

// Close closes the underlying file, releasing the mapping first when
// the source is mmap-backed.
func (s *FileSource) Close() error {
	if s.unmap != nil {
		if err := s.unmap(); err != nil {
			s.f.Close()
			return err
		}
		s.unmap = nil
	}
	return s.f.Close()
}

// Format reports the resolved encoding: FormatBinary, FormatText, or
// FormatCol.
func (s *FileSource) Format() string { return s.format }

// colNative reveals the inner columnar source when the file is
// columnar, nil otherwise; the AsColSource probe.
func (s *FileSource) colNative() ColSource { return s.col }

// OpenFileSource opens a trace file as a streaming Source. format is
// FormatBinary, FormatText, FormatCol, or FormatAuto (sniff); the empty
// string means FormatAuto. It is the shared open/sniff path of
// essanalyze, essreplay, and esssynth, and is NewReaderSource plus the
// file lifecycle. Columnar files are memory-mapped where the platform
// allows, so column views alias the page cache with no decode pass;
// when mapping fails the streaming columnar decoder takes over.
func OpenFileSource(path, format string) (*FileSource, error) {
	switch format {
	case FormatBinary, FormatText, FormatCol, FormatAuto, "":
	default:
		return nil, fmt.Errorf("trace: unknown format %q (want %s, %s, %s, or %s)",
			format, FormatBinary, FormatText, FormatCol, FormatAuto)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	rs, err := NewReaderSource(f, format)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("trace: %s: %w", path, err)
	}
	if rs.Format() == FormatCol {
		if ms, unmap, merr := newColMmapFile(f); merr == nil {
			return &FileSource{src: ms, col: ms, unmap: unmap, f: f, format: FormatCol}, nil
		}
		// Mapping failed (unsupported platform, exotic file): rs has
		// consumed nothing material — its buffered reader still holds
		// the stream — so the streaming decoder serves the file.
		return &FileSource{src: rs, col: rs.colNative(), f: f, format: FormatCol}, nil
	}
	return &FileSource{src: rs, f: f, format: rs.Format()}, nil
}

// OpenFileChunks opens a binary trace file as n record-aligned,
// time-contiguous chunk sources covering the file in order, so independent
// workers can analyze one file in parallel and fold their accumulators
// back together with the exact concatenation merges. Fewer than n chunks
// come back when the file holds fewer than n records. It fails — and the
// caller should fall back to the sequential single-source path — when the
// file is text- or columnar-encoded, is not a whole number of records
// long, or is empty. (For columnar files the sequential fallback is the
// fast path anyway: it reads the mmap-backed columnar source.)
func OpenFileChunks(path string, n int) ([]*FileSource, error) {
	if n < 1 {
		n = 1
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	format, err := sniffReader(bufio.NewReader(f))
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("trace: %s: %w", path, err)
	}
	if format != FormatBinary {
		f.Close()
		return nil, fmt.Errorf("trace: %s: chunked reads need the binary format", path)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	f.Close()
	size := st.Size()
	if size == 0 || size%RecordSize != 0 {
		return nil, fmt.Errorf("trace: %s: %d bytes is not a whole number of %d-byte records",
			path, size, RecordSize)
	}
	total := size / RecordSize
	if int64(n) > total {
		n = int(total)
	}
	per := (total + int64(n) - 1) / int64(n)
	chunks := make([]*FileSource, 0, n)
	for start := int64(0); start < total; start += per {
		count := per
		if start+count > total {
			count = total - start
		}
		cf, err := os.Open(path)
		if err != nil {
			closeFileSources(chunks)
			return nil, err
		}
		if _, err := cf.Seek(start*RecordSize, io.SeekStart); err != nil {
			cf.Close()
			closeFileSources(chunks)
			return nil, err
		}
		lr := io.LimitReader(cf, count*RecordSize)
		chunks = append(chunks, &FileSource{src: NewReader(lr), f: cf, format: FormatBinary})
	}
	return chunks, nil
}

func closeFileSources(srcs []*FileSource) {
	for _, s := range srcs {
		s.Close()
	}
}
