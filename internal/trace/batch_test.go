package trace

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// TestQuickBatchWriterMatchesPerRecord pins the batch encoder to the
// per-record encoder byte for byte.
func TestQuickBatchWriterMatchesPerRecord(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		recs := mkRandTraces(rng)[0]
		var perRecord bytes.Buffer
		w := NewWriter(&perRecord)
		for _, r := range recs {
			if err := w.Add(r); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		var batched bytes.Buffer
		bw := NewWriter(&batched)
		if err := bw.AddBatch(recs); err != nil {
			return false
		}
		if err := bw.Flush(); err != nil {
			return false
		}
		return bytes.Equal(perRecord.Bytes(), batched.Bytes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBatchReaderMatchesPerRecord decodes the same encoding through
// NextBatch with an awkward buffer size and through Next, and requires
// identical records.
func TestQuickBatchReaderMatchesPerRecord(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		recs := mkRandTraces(rng)[0]
		var buf bytes.Buffer
		if err := WriteAll(&buf, recs); err != nil {
			return false
		}
		var perRecord []Record
		r := NewReader(bytes.NewReader(buf.Bytes()))
		for {
			rec, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return false
			}
			perRecord = append(perRecord, rec)
		}
		// A 7-record buffer forces many refills and a ragged final batch.
		br := NewReader(bytes.NewReader(buf.Bytes()))
		var batched []Record
		scratch := make([]Record, 7)
		for {
			n, err := br.NextBatch(scratch)
			batched = append(batched, scratch[:n]...)
			if err == io.EOF {
				break
			}
			if err != nil {
				return false
			}
		}
		return reflect.DeepEqual(perRecord, batched)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestBatchReaderTruncatedFile ensures a trailing partial record errors on
// the batch path the same way the per-record path reports it.
func TestBatchReaderTruncatedFile(t *testing.T) {
	recs := mkRandTraces(rand.New(rand.NewSource(3)))[0]
	if len(recs) == 0 {
		recs = []Record{{Sector: 1, Count: 2}}
	}
	var buf bytes.Buffer
	if err := WriteAll(&buf, recs); err != nil {
		t.Fatal(err)
	}
	truncated := buf.Bytes()[:buf.Len()-3]
	br := NewReader(bytes.NewReader(truncated))
	scratch := make([]Record, DefaultBatchLen)
	got := 0
	var err error
	for {
		var n int
		n, err = br.NextBatch(scratch)
		got += n
		if err != nil {
			break
		}
	}
	if err == io.EOF || err == nil {
		t.Fatalf("truncated read: n=%d err=%v", got, err)
	}
	if got != len(recs)-1 {
		t.Fatalf("salvaged %d of %d whole records", got, len(recs)-1)
	}
}

// TestBatchAdapters round-trips records through every Source/Sink ↔
// BatchSource/BatchSink adapter pairing.
func TestBatchAdapters(t *testing.T) {
	recs := mkRandTraces(rand.New(rand.NewSource(11)))[0]

	// Source → BatchSource → Source.
	perRecord := FromBatchSource(ToBatchSource(SliceSource(recs)))
	var round []Record
	for {
		r, err := perRecord.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		round = append(round, r)
	}
	if len(round) != len(recs) || (len(recs) > 0 && !reflect.DeepEqual(round, recs)) {
		t.Fatalf("source adapter round trip: %d of %d records", len(round), len(recs))
	}

	// Sink → BatchSink → Sink.
	var c Collector
	sink := FromBatchSink(ToBatchSink(&c))
	for _, r := range recs {
		if err := sink.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	if len(c.Recs) != len(recs) || (len(recs) > 0 && !reflect.DeepEqual(c.Recs, recs)) {
		t.Fatalf("sink adapter round trip: %d of %d records", len(c.Recs), len(recs))
	}

	// CopyBatches moves everything at batch granularity.
	var c2 Collector
	n, err := CopyBatches(&c2, ToBatchSource(SliceSource(recs)))
	if err != nil || n != len(recs) {
		t.Fatalf("CopyBatches: n=%d err=%v", n, err)
	}
}

// TestCollectorPreSize checks the capacity hint eliminates regrowth
// without changing semantics.
func TestCollectorPreSize(t *testing.T) {
	recs := mkRandTraces(rand.New(rand.NewSource(13)))[0]
	c := NewCollector(len(recs))
	if err := c.AddBatch(recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) > 0 && cap(c.Recs) != len(recs) {
		t.Fatalf("cap %d, want exactly %d", cap(c.Recs), len(recs))
	}
	got, err := CollectSize(SliceSource(recs), len(recs))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("collected %d of %d", len(got), len(recs))
	}
}
