package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"essio/internal/sim"
)

func TestRecordSizes(t *testing.T) {
	r := Record{Count: 2}
	if r.Bytes() != 1024 {
		t.Fatalf("Bytes = %d, want 1024", r.Bytes())
	}
	if r.KB() != 1 {
		t.Fatalf("KB = %d, want 1", r.KB())
	}
	r.Count = 3 // 1536 B rounds up to 2 KB
	if r.KB() != 2 {
		t.Fatalf("KB = %d, want 2", r.KB())
	}
	r = Record{Sector: 100, Count: 8}
	if r.End() != 108 {
		t.Fatalf("End = %d, want 108", r.End())
	}
}

func TestOpAndOriginStrings(t *testing.T) {
	if Read.String() != "R" || Write.String() != "W" {
		t.Fatal("Op strings wrong")
	}
	if OriginSwap.String() != "swap" || OriginTrace.String() != "trace" {
		t.Fatal("Origin strings wrong")
	}
	if Origin(200).String() == "" {
		t.Fatal("out-of-range origin must still format")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	in := Record{
		Time: sim.Time(123456789), Sector: 987654, Count: 32,
		Pending: 7, Op: Write, Node: 13, Origin: OriginSwap,
	}
	var buf [RecordSize]byte
	n := in.Marshal(buf[:])
	if n != RecordSize {
		t.Fatalf("Marshal wrote %d, want %d", n, RecordSize)
	}
	out, err := UnmarshalRecord(buf[:])
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v want %+v", out, in)
	}
}

func TestUnmarshalShort(t *testing.T) {
	if _, err := UnmarshalRecord(make([]byte, 3)); err == nil {
		t.Fatal("want error for short record")
	}
}

func TestQuickCodecRoundTrip(t *testing.T) {
	f := func(tm int64, sector uint32, count, pending uint16, op bool, node uint8, origin uint8) bool {
		in := Record{
			Time: sim.Time(tm) & (1<<62 - 1), Sector: sector, Count: count,
			Pending: pending, Node: node, Origin: Origin(origin % 7),
		}
		if op {
			in.Op = Write
		}
		var buf [RecordSize]byte
		in.Marshal(buf[:])
		out, err := UnmarshalRecord(buf[:])
		return err == nil && out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteReadStream(t *testing.T) {
	recs := make([]Record, 100)
	rng := rand.New(rand.NewSource(5))
	for i := range recs {
		recs[i] = Record{
			Time:   sim.Time(i * 1000),
			Sector: rng.Uint32() % 1024000,
			Count:  uint16(rng.Intn(64) + 1),
			Op:     Op(rng.Intn(2)),
			Node:   uint8(rng.Intn(16)),
			Origin: Origin(rng.Intn(7)),
		}
	}
	var buf bytes.Buffer
	if err := WriteAll(&buf, recs); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 100*RecordSize {
		t.Fatalf("stream length = %d, want %d", buf.Len(), 100*RecordSize)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatal("stream round trip mismatch")
	}
}

func TestReadTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, []Record{{Time: 1}, {Time: 2}}); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-5]
	if _, err := ReadAll(bytes.NewReader(trunc)); err == nil {
		t.Fatal("want error for truncated stream")
	}
}

func TestMergeSortsByTime(t *testing.T) {
	a := []Record{{Time: 10, Node: 0}, {Time: 30, Node: 0}}
	b := []Record{{Time: 20, Node: 1}, {Time: 30, Node: 1}}
	m := Merge(a, b)
	if len(m) != 4 {
		t.Fatalf("len = %d", len(m))
	}
	wantTimes := []sim.Time{10, 20, 30, 30}
	for i, r := range m {
		if r.Time != wantTimes[i] {
			t.Fatalf("m[%d].Time = %d, want %d", i, r.Time, wantTimes[i])
		}
	}
	// Equal times break ties by node.
	if m[2].Node != 0 || m[3].Node != 1 {
		t.Fatalf("tie-break by node failed: %+v %+v", m[2], m[3])
	}
}

func TestQuickMergeSorted(t *testing.T) {
	f := func(ts1, ts2 []uint32) bool {
		mk := func(ts []uint32, node uint8) []Record {
			rs := make([]Record, len(ts))
			for i, v := range ts {
				rs[i] = Record{Time: sim.Time(v), Node: node}
			}
			return rs
		}
		m := Merge(mk(ts1, 0), mk(ts2, 1))
		if len(m) != len(ts1)+len(ts2) {
			return false
		}
		for i := 1; i < len(m); i++ {
			if m[i].Time < m[i-1].Time {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRingBasics(t *testing.T) {
	g := NewRing(4)
	for i := 0; i < 3; i++ {
		g.Append(Record{Time: sim.Time(i)})
	}
	if g.Len() != 3 || g.Dropped() != 0 || g.Total() != 3 {
		t.Fatalf("Len=%d Dropped=%d Total=%d", g.Len(), g.Dropped(), g.Total())
	}
	out := g.Drain(2)
	if len(out) != 2 || out[0].Time != 0 || out[1].Time != 1 {
		t.Fatalf("Drain(2) = %v", out)
	}
	if g.Len() != 1 {
		t.Fatalf("Len after drain = %d", g.Len())
	}
}

func TestRingOverflowDropsOldest(t *testing.T) {
	g := NewRing(3)
	for i := 0; i < 5; i++ {
		g.Append(Record{Time: sim.Time(i)})
	}
	if g.Dropped() != 2 || g.Total() != 5 {
		t.Fatalf("Dropped=%d Total=%d", g.Dropped(), g.Total())
	}
	out := g.Drain(0)
	if len(out) != 3 {
		t.Fatalf("Drain all = %d records", len(out))
	}
	for i, r := range out {
		if r.Time != sim.Time(i+2) {
			t.Fatalf("out[%d].Time = %d, want %d (oldest dropped)", i, r.Time, i+2)
		}
	}
}

func TestRingWrapAround(t *testing.T) {
	g := NewRing(4)
	for round := 0; round < 10; round++ {
		for i := 0; i < 3; i++ {
			g.Append(Record{Time: sim.Time(round*10 + i)})
		}
		out := g.Drain(0)
		if len(out) != 3 {
			t.Fatalf("round %d: drained %d", round, len(out))
		}
		for i, r := range out {
			if r.Time != sim.Time(round*10+i) {
				t.Fatalf("round %d: out[%d] = %v", round, i, r)
			}
		}
	}
	if g.Dropped() != 0 {
		t.Fatalf("unexpected drops: %d", g.Dropped())
	}
}

func TestRingPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for capacity 0")
		}
	}()
	NewRing(0)
}

func TestRecordString(t *testing.T) {
	r := Record{Time: sim.Time(1500000), Sector: 42, Count: 2, Op: Read, Origin: OriginData}
	s := r.String()
	if s == "" || s[0] == ' ' {
		t.Fatalf("String = %q", s)
	}
}

func TestTextRoundTrip(t *testing.T) {
	recs := []Record{
		{Time: sim.Time(1500000), Sector: 42, Count: 2, Pending: 3, Op: Read, Node: 5, Origin: OriginSwap},
		{Time: sim.Time(2750000), Sector: 1023999, Count: 64, Op: Write, Origin: OriginTrace},
	}
	var buf bytes.Buffer
	if err := WriteText(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("round trip:\n got %v\nwant %v", got, recs)
	}
}

func TestReadTextSkipsHeaderAndComments(t *testing.T) {
	in := "time_s\top\tsector\tcount\tpending\tnode\torigin\n" +
		"# a comment\n" +
		"\n" +
		"1.000000\tW\t100\t2\t0\t0\tlog\n"
	recs, err := ReadText(strings.NewReader(in))
	if err != nil || len(recs) != 1 {
		t.Fatalf("recs = %v, %v", recs, err)
	}
	if recs[0].Origin != OriginLog || recs[0].Op != Write {
		t.Fatalf("rec = %+v", recs[0])
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := []string{
		"1.0\tW\t100\n",                    // too few fields
		"x\tW\t100\t2\t0\t0\tlog\n",        // bad time
		"1.0\tQ\t100\t2\t0\t0\tlog\n",      // bad op
		"1.0\tW\tfoo\t2\t0\t0\tlog\n",      // bad sector
		"1.0\tW\t100\t2\t0\t0\tnonsense\n", // bad origin
		"1.0\tW\t100\t2\t0\t999\tlog\n",    // node overflow
	}
	for i, in := range cases {
		if _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Fatalf("case %d: want error for %q", i, in)
		}
	}
}

func TestQuickTextRoundTrip(t *testing.T) {
	f := func(sector uint32, count, pending uint16, op bool, node uint8, origin uint8, usec uint32) bool {
		in := Record{
			Time: sim.Time(usec), Sector: sector, Count: count, Pending: pending,
			Node: node, Origin: Origin(origin % 7),
		}
		if op {
			in.Op = Write
		}
		var buf bytes.Buffer
		if err := WriteText(&buf, []Record{in}); err != nil {
			return false
		}
		out, err := ReadText(&buf)
		return err == nil && len(out) == 1 && out[0] == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
