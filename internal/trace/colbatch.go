// Columnar record batches: the struct-of-arrays counterpart of the
// []Record batch layer. A ColBatch keeps each record field in its own
// slice, so an accumulator that touches two fields of every record scans
// two dense arrays instead of dragging all RecordSize bytes of each
// record through cache — the layout the vectorized AddCols fast paths of
// the analysis accumulators iterate. ColSource and ColSink move column
// views across stage boundaries with the same zero-copy discipline as
// record spans: a view is valid only until the next call into the
// source, and must never be retained.

package trace

import (
	"io"

	"essio/internal/sim"
)

// ColBatch is a batch of records in struct-of-arrays (columnar) layout.
// All seven column slices are always the same length; Len is the record
// count. The zero value is an empty batch.
type ColBatch struct {
	// Times holds Record.Time per record.
	Times []sim.Time
	// Sectors holds Record.Sector per record.
	Sectors []uint32
	// Counts holds Record.Count per record.
	Counts []uint16
	// Pendings holds Record.Pending per record.
	Pendings []uint16
	// Ops holds Record.Op per record.
	Ops []Op
	// Nodes holds Record.Node per record.
	Nodes []uint8
	// Origins holds Record.Origin per record.
	Origins []Origin
}

// Len reports the number of records in the batch.
func (b *ColBatch) Len() int { return len(b.Times) }

// Reset empties the batch, keeping the column capacity for reuse.
func (b *ColBatch) Reset() {
	b.Times = b.Times[:0]
	b.Sectors = b.Sectors[:0]
	b.Counts = b.Counts[:0]
	b.Pendings = b.Pendings[:0]
	b.Ops = b.Ops[:0]
	b.Nodes = b.Nodes[:0]
	b.Origins = b.Origins[:0]
}

// growCol returns s with length n, reallocating when capacity is short.
// Existing contents are not preserved; callers overwrite every element.
func growCol[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// resize sets every column to length n for a decoder to fill in place.
func (b *ColBatch) resize(n int) {
	b.Times = growCol(b.Times, n)
	b.Sectors = growCol(b.Sectors, n)
	b.Counts = growCol(b.Counts, n)
	b.Pendings = growCol(b.Pendings, n)
	b.Ops = growCol(b.Ops, n)
	b.Nodes = growCol(b.Nodes, n)
	b.Origins = growCol(b.Origins, n)
}

// AppendRecord transposes one record onto the columns.
func (b *ColBatch) AppendRecord(r Record) {
	b.Times = append(b.Times, r.Time)
	b.Sectors = append(b.Sectors, r.Sector)
	b.Counts = append(b.Counts, r.Count)
	b.Pendings = append(b.Pendings, r.Pending)
	b.Ops = append(b.Ops, r.Op)
	b.Nodes = append(b.Nodes, r.Node)
	b.Origins = append(b.Origins, r.Origin)
}

// AppendRecords transposes a whole record slice onto the columns.
func (b *ColBatch) AppendRecords(recs []Record) {
	for _, r := range recs {
		b.AppendRecord(r)
	}
}

// AppendCols appends every column of o onto b.
func (b *ColBatch) AppendCols(o *ColBatch) {
	b.Times = append(b.Times, o.Times...)
	b.Sectors = append(b.Sectors, o.Sectors...)
	b.Counts = append(b.Counts, o.Counts...)
	b.Pendings = append(b.Pendings, o.Pendings...)
	b.Ops = append(b.Ops, o.Ops...)
	b.Nodes = append(b.Nodes, o.Nodes...)
	b.Origins = append(b.Origins, o.Origins...)
}

// Record reassembles record i from the columns.
func (b *ColBatch) Record(i int) Record {
	return Record{
		Time:    b.Times[i],
		Sector:  b.Sectors[i],
		Count:   b.Counts[i],
		Pending: b.Pendings[i],
		Op:      b.Ops[i],
		Node:    b.Nodes[i],
		Origin:  b.Origins[i],
	}
}

// AppendTo materializes the batch as records appended to dst.
func (b *ColBatch) AppendTo(dst []Record) []Record {
	for i := range b.Times {
		dst = append(dst, b.Record(i))
	}
	return dst
}

// Slice returns a view of records [i, j) sharing the column backing
// arrays; like a record span, the view is only as durable as the batch
// it came from.
func (b *ColBatch) Slice(i, j int) ColBatch {
	return ColBatch{
		Times:    b.Times[i:j],
		Sectors:  b.Sectors[i:j],
		Counts:   b.Counts[i:j],
		Pendings: b.Pendings[i:j],
		Ops:      b.Ops[i:j],
		Nodes:    b.Nodes[i:j],
		Origins:  b.Origins[i:j],
	}
}

// ColSource is a pull iterator over columnar batches. NextCols returns a
// view of up to max records that is valid only until the next call —
// the same zero-copy contract as record spans — io.EOF at a clean end
// of stream, and a terminal error otherwise. Sources of this package
// never return an empty view with a nil error.
type ColSource interface {
	NextCols(max int) (*ColBatch, error)
}

// ColSink is a push consumer of columnar batches. AddCols consumes every
// record of cols or returns the first error; cols must not be retained.
type ColSink interface {
	AddCols(cols *ColBatch) error
}

// colNativeSource is implemented by wrappers (file and reader sources)
// that can reveal a columnar-native inner source; it returns nil when
// the wrapped stream is row-encoded.
type colNativeSource interface{ colNative() ColSource }

// AsColSource reports the columnar-native view of src, if it has one:
// src itself when it is a ColSource, or the inner columnar decoder of a
// file or reader source opened on a columnar stream. Row-backed sources
// report false; Copy uses this probe to pick the all-columnar fast path
// only when no transpose would be needed.
func AsColSource(src Source) (ColSource, bool) {
	switch s := src.(type) {
	case colNativeSource:
		if cs := s.colNative(); cs != nil {
			return cs, true
		}
	case ColSource:
		return s, true
	}
	return nil, false
}

// CopyCols streams every record from src into dst at column granularity
// and reports how many records were transferred; the columnar form of
// Copy. No record is ever materialized: views move straight from the
// decoder (or mapped file) into the sink's column scans.
func CopyCols(dst ColSink, src ColSource) (int, error) {
	n := 0
	for {
		cols, err := src.NextCols(DefaultBatchLen)
		if cols != nil && cols.Len() > 0 {
			if aerr := dst.AddCols(cols); aerr != nil {
				return n, aerr
			}
			n += cols.Len()
		}
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
	}
}

// ToColSource adapts src to the columnar interface: columnar-native
// sources are returned unchanged, everything else is read through the
// span layer and transposed one batch at a time.
func ToColSource(src Source) ColSource {
	if cs, ok := AsColSource(src); ok {
		return cs
	}
	return &colBatcher{in: newSpanReader(src, DefaultBatchLen)}
}

// colBatcher transposes record spans into a reused columnar buffer, the
// compatibility path for row sources under columnar consumers.
type colBatcher struct {
	in   *spanReader
	span []Record
	pos  int
	buf  ColBatch
}

func (c *colBatcher) NextCols(max int) (*ColBatch, error) {
	if max <= 0 {
		max = DefaultBatchLen
	}
	if c.pos >= len(c.span) {
		span, err := c.in.nextSpan()
		if err != nil {
			return nil, err
		}
		// The buffered span is fully consumed before the next nextSpan
		// call refills it, so holding it across NextCols calls is safe.
		c.span, c.pos = span, 0 //essvet:ignore spanretain
	}
	n := len(c.span) - c.pos
	if n > max {
		n = max
	}
	c.buf.Reset()
	c.buf.AppendRecords(c.span[c.pos : c.pos+n])
	c.pos += n
	return &c.buf, nil
}

// FromColSource adapts a columnar source back to the per-record
// interfaces; sources that already serve records are returned unchanged.
func FromColSource(src ColSource) Source {
	if s, ok := src.(Source); ok {
		return s
	}
	return &colUnpacker{src: src}
}

// colUnpacker materializes columnar views one record (or span) at a
// time.
type colUnpacker struct {
	src  ColSource
	cols *ColBatch
	pos  int
	recs []Record // span materialization scratch
}

// fill buffers the next non-empty view.
func (u *colUnpacker) fill() error {
	cols, err := u.src.NextCols(DefaultBatchLen)
	if err != nil {
		return err
	}
	// The buffered view is fully consumed before the next NextCols call
	// invalidates it, so holding it across calls is safe.
	u.cols, u.pos = cols, 0 //essvet:ignore spanretain
	return nil
}

func (u *colUnpacker) Next() (Record, error) {
	if u.cols == nil || u.pos >= u.cols.Len() {
		if err := u.fill(); err != nil {
			return Record{}, err
		}
	}
	r := u.cols.Record(u.pos)
	u.pos++
	return r, nil
}

func (u *colUnpacker) NextBatch(buf []Record) (int, error) {
	n := 0
	for n < len(buf) {
		if u.cols == nil || u.pos >= u.cols.Len() {
			if err := u.fill(); err != nil {
				if err == io.EOF && n > 0 {
					return n, io.EOF
				}
				return n, err
			}
		}
		m := u.cols.Len() - u.pos
		if m > len(buf)-n {
			m = len(buf) - n
		}
		for i := 0; i < m; i++ {
			buf[n+i] = u.cols.Record(u.pos + i)
		}
		n += m
		u.pos += m
	}
	return n, nil
}

func (u *colUnpacker) NextSpan(max int) ([]Record, error) {
	if max > DefaultBatchLen {
		max = DefaultBatchLen
	}
	if u.recs == nil {
		u.recs = make([]Record, DefaultBatchLen)
	}
	n, err := u.NextBatch(u.recs[:max])
	return u.recs[:n], err
}

// SliceColSource adapts an in-memory columnar batch to the Source
// interface. The returned Source is also a ColSource serving sub-views
// of b without copying, a BatchSource, and a span source, so both row
// and columnar consumers read it at full width.
func SliceColSource(b *ColBatch) Source { return &colSliceSource{b: b} }

// colSliceSource iterates an in-memory columnar batch.
type colSliceSource struct {
	b    *ColBatch
	i    int
	view ColBatch
	recs []Record // span materialization scratch
}

func (s *colSliceSource) Next() (Record, error) {
	if s.i >= s.b.Len() {
		return Record{}, io.EOF
	}
	r := s.b.Record(s.i)
	s.i++
	return r, nil
}

func (s *colSliceSource) NextCols(max int) (*ColBatch, error) {
	if s.i >= s.b.Len() {
		return nil, io.EOF
	}
	if max <= 0 {
		max = DefaultBatchLen
	}
	j := s.i + max
	if j > s.b.Len() {
		j = s.b.Len()
	}
	s.view = s.b.Slice(s.i, j)
	s.i = j
	return &s.view, nil
}

func (s *colSliceSource) NextBatch(buf []Record) (int, error) {
	n := s.b.Len() - s.i
	if n > len(buf) {
		n = len(buf)
	}
	for i := 0; i < n; i++ {
		buf[i] = s.b.Record(s.i + i)
	}
	s.i += n
	if s.i >= s.b.Len() {
		return n, io.EOF
	}
	return n, nil
}

func (s *colSliceSource) NextSpan(max int) ([]Record, error) {
	if s.i >= s.b.Len() {
		return nil, io.EOF
	}
	if max > DefaultBatchLen {
		max = DefaultBatchLen
	}
	if s.recs == nil {
		s.recs = make([]Record, DefaultBatchLen)
	}
	n, err := s.NextBatch(s.recs[:max])
	return s.recs[:n], err
}
