package trace

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"essio/internal/sim"
)

// sortMergeOracle is the original sort-everything Merge, kept as the
// reference the streaming k-way merge must reproduce exactly.
func sortMergeOracle(traces ...[]Record) []Record {
	total := 0
	for _, t := range traces {
		total += len(t)
	}
	out := make([]Record, 0, total)
	for _, t := range traces {
		out = append(out, t...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time < out[j].Time
		}
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Sector < out[j].Sector
	})
	return out
}

// mkRandTraces builds per-node traces with deliberately clustered keys so
// ties across nodes and equal (Time, Node, Sector) keys are common.
func mkRandTraces(rng *rand.Rand) [][]Record {
	nodes := 1 + rng.Intn(5)
	traces := make([][]Record, nodes)
	for n := range traces {
		recs := make([]Record, rng.Intn(200))
		for i := range recs {
			recs[i] = Record{
				Time:    sim.Time(rng.Intn(20)) * sim.Time(sim.Second),
				Sector:  uint32(rng.Intn(8)) * 1000,
				Count:   uint16(rng.Intn(64) + 1),
				Pending: uint16(rng.Intn(4)),
				Op:      Op(rng.Intn(2)),
				Node:    uint8(n),
				Origin:  Origin(rng.Intn(7)),
			}
		}
		traces[n] = recs
	}
	return traces
}

func TestQuickMergeMatchesSortOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		traces := mkRandTraces(rng)
		want := sortMergeOracle(traces...)
		got := Merge(traces...)
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMergeSourcesMatchesSortOracle(t *testing.T) {
	// Pre-sorted inputs streamed through MergeSources directly: identical
	// to the stable sort of the concatenation, one buffered record per
	// input.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		traces := mkRandTraces(rng)
		for _, tr := range traces {
			sort.SliceStable(tr, func(a, b int) bool { return less(tr[a], tr[b]) })
		}
		want := sortMergeOracle(traces...)
		srcs := make([]Source, len(traces))
		for i, tr := range traces {
			srcs[i] = SliceSource(tr)
		}
		got, err := Collect(MergeSources(srcs...))
		if err != nil {
			return false
		}
		if len(want) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeUnsortedInputFallsBackToSort(t *testing.T) {
	// A deliberately reversed input must still come out fully sorted.
	in := []Record{
		{Time: 3 * sim.Time(sim.Second)},
		{Time: 2 * sim.Time(sim.Second)},
		{Time: 1 * sim.Time(sim.Second)},
	}
	keep := append([]Record(nil), in...)
	m := Merge(in)
	for i := 1; i < len(m); i++ {
		if m[i].Time < m[i-1].Time {
			t.Fatalf("unsorted merge output: %v", m)
		}
	}
	// The caller's slice must not be reordered in place.
	if !reflect.DeepEqual(in, keep) {
		t.Fatalf("Merge mutated its input: %v", in)
	}
}

func TestStreamingReaderMatchesReadAll(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		recs := mkRandTraces(rng)[0]
		var buf bytes.Buffer
		if err := WriteAll(&buf, recs); err != nil {
			return false
		}
		// Batch read.
		batch, err := ReadAll(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return false
		}
		// Incremental read, one record per Next.
		r := NewReader(bytes.NewReader(buf.Bytes()))
		var streamed []Record
		for {
			rec, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return false
			}
			streamed = append(streamed, rec)
		}
		return reflect.DeepEqual(batch, streamed) && len(streamed) == len(recs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamingWriterMatchesWriteAll(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		recs := mkRandTraces(rng)[0]
		var batch bytes.Buffer
		if err := WriteAll(&batch, recs); err != nil {
			return false
		}
		var streamed bytes.Buffer
		w := NewWriter(&streamed)
		if _, err := Copy(w, SliceSource(recs)); err != nil {
			return false
		}
		if err := w.Flush(); err != nil {
			return false
		}
		return bytes.Equal(batch.Bytes(), streamed.Bytes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamingTextRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		recs := mkRandTraces(rng)[0]
		var batch bytes.Buffer
		if err := WriteText(&batch, recs); err != nil {
			return false
		}
		var streamed bytes.Buffer
		w := NewTextWriter(&streamed)
		if _, err := Copy(w, SliceSource(recs)); err != nil {
			return false
		}
		if err := w.Flush(); err != nil {
			return false
		}
		if !bytes.Equal(batch.Bytes(), streamed.Bytes()) {
			return false
		}
		// Incremental parse returns what the batch parser returns.
		batchRecs, err := ReadText(bytes.NewReader(batch.Bytes()))
		if err != nil {
			return false
		}
		var incr []Record
		tr := NewTextReader(bytes.NewReader(streamed.Bytes()))
		for {
			rec, err := tr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return false
			}
			incr = append(incr, rec)
		}
		return reflect.DeepEqual(batchRecs, incr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTeeFansOut(t *testing.T) {
	recs := mkRandTraces(rand.New(rand.NewSource(7)))[0]
	var a, b Collector
	n, err := Copy(Tee(&a, &b), SliceSource(recs))
	if err != nil {
		t.Fatal(err)
	}
	if n != len(recs) {
		t.Fatalf("copied %d of %d", n, len(recs))
	}
	if !reflect.DeepEqual(a.Recs, b.Recs) || len(a.Recs) != len(recs) {
		t.Fatalf("tee diverged: %d vs %d", len(a.Recs), len(b.Recs))
	}
}

func TestSinkFuncAndCollect(t *testing.T) {
	recs := mkRandTraces(rand.New(rand.NewSource(9)))[0]
	count := 0
	if _, err := Copy(SinkFunc(func(Record) error { count++; return nil }), SliceSource(recs)); err != nil {
		t.Fatal(err)
	}
	if count != len(recs) {
		t.Fatalf("sink saw %d of %d", count, len(recs))
	}
	got, err := Collect(SliceSource(recs))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) && len(recs) > 0 {
		t.Fatal("collect diverged")
	}
}
