// Memory-mapped columnar source: decodes columnar blocks straight out
// of a byte view of the file. Raw-encoded columns are not decoded at
// all — when the host is little-endian and the payload is naturally
// aligned (the writer pads every payload to an 8-byte file offset, and
// an mmap base is page-aligned, so alignment holds by construction) the
// column view aliases the mapped bytes in place. Compressed columns
// decode into a reused scratch batch. Either way NextCols hands the
// accumulators dense column views with no per-record work.

package trace

import (
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"unsafe"

	"encoding/binary"

	"essio/internal/sim"
)

// hostLittleEndian gates the unsafe raw-column aliasing: the on-disk
// layout is little-endian, so on any other host raw columns take the
// decode-copy path instead.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// alignedTo reports whether p's backing array is aligned for a load of
// width bytes.
func alignedTo(p []byte, width int) bool {
	return uintptr(unsafe.Pointer(&p[0]))%uintptr(width) == 0
}

// mappedColSource decodes columnar blocks from an in-memory byte image,
// aliasing raw columns zero-copy.
type mappedColSource struct {
	data []byte
	off  int
	own  ColBatch // decode buffers for compressed columns
	cur  ColBatch // current block: views of data (raw) or own (decoded)
	pos  int
	view ColBatch
	recs []Record // span materialization scratch
	err  error
	eof  bool
}

// newMappedColSource builds a columnar source over a complete file
// image, verifying the magic up front. An empty image is an empty
// trace.
func newMappedColSource(data []byte) (*mappedColSource, error) {
	if len(data) == 0 {
		return &mappedColSource{eof: true}, nil
	}
	if len(data) < len(colMagic) || [len(colMagic)]byte(data[:len(colMagic)]) != colMagic {
		return nil, errors.New("trace: col: bad magic")
	}
	return &mappedColSource{data: data, off: len(colMagic)}, nil
}

// decodeBlock parses the next block, aliasing aligned raw columns and
// decoding the rest into m.own.
func (m *mappedColSource) decodeBlock() error {
	if m.err != nil {
		return m.err
	}
	if m.eof || m.off >= len(m.data) {
		m.eof = true
		return io.EOF
	}
	if len(m.data)-m.off < colHeaderLen {
		m.err = errors.New("trace: col: truncated block header")
		return m.err
	}
	hdr := m.data[m.off : m.off+colHeaderLen]
	off := m.off + colHeaderLen
	count := int(binary.LittleEndian.Uint32(hdr[0:]))
	if count <= 0 || count > colMaxBlockLen {
		m.err = fmt.Errorf("trace: col: bad block count %d", count)
		return m.err
	}
	m.own.resize(count)
	for i := 0; i < colColumns; i++ {
		enc := hdr[4+5*i]
		size := int(binary.LittleEndian.Uint32(hdr[4+5*i+1:]))
		if size > colSizeBound(i, count) {
			m.err = fmt.Errorf("trace: col: column %d size %d exceeds bound", i, size)
			return m.err
		}
		if rem := off % colAlign; rem != 0 {
			off += colAlign - rem
		}
		if off > len(m.data) || len(m.data)-off < size {
			m.err = errColTruncated
			return m.err
		}
		p := m.data[off : off+size]
		off += size
		if err := m.loadCol(i, enc, p, count); err != nil {
			m.err = err
			return m.err
		}
	}
	m.off = off
	m.pos = 0
	return nil
}

// loadCol installs column i of the current block into m.cur, aliasing p
// when the raw fast path applies.
func (m *mappedColSource) loadCol(i int, enc byte, p []byte, count int) error {
	raw := enc == colEncRaw && len(p) == colRawWidth[i]*count && hostLittleEndian
	switch i {
	case 0:
		if raw && alignedTo(p, 8) {
			m.cur.Times = unsafe.Slice((*sim.Time)(unsafe.Pointer(&p[0])), count)
			return validateTimes(m.cur.Times)
		}
		if err := decodeTimeCol(enc, p, m.own.Times); err != nil {
			return err
		}
		m.cur.Times = m.own.Times
	case 1:
		if raw && alignedTo(p, 4) {
			m.cur.Sectors = unsafe.Slice((*uint32)(unsafe.Pointer(&p[0])), count)
			return nil
		}
		if err := decodeSectorCol(enc, p, m.own.Sectors); err != nil {
			return err
		}
		m.cur.Sectors = m.own.Sectors
	case 2:
		if raw && alignedTo(p, 2) {
			m.cur.Counts = unsafe.Slice((*uint16)(unsafe.Pointer(&p[0])), count)
			return nil
		}
		if err := decodeU16Col(enc, p, m.own.Counts); err != nil {
			return err
		}
		m.cur.Counts = m.own.Counts
	case 3:
		if raw && alignedTo(p, 2) {
			m.cur.Pendings = unsafe.Slice((*uint16)(unsafe.Pointer(&p[0])), count)
			return nil
		}
		if err := decodeU16Col(enc, p, m.own.Pendings); err != nil {
			return err
		}
		m.cur.Pendings = m.own.Pendings
	case 4:
		if enc == colEncRaw && len(p) == count {
			m.cur.Ops = unsafe.Slice((*Op)(unsafe.Pointer(&p[0])), count)
		} else {
			if err := decodeByteCol(enc, p, m.own.Ops); err != nil {
				return err
			}
			m.cur.Ops = m.own.Ops
		}
		return validateOps(m.cur.Ops)
	case 5:
		if enc == colEncRaw && len(p) == count {
			// []byte and []uint8 are the same type: a plain reslice,
			// no unsafe needed.
			m.cur.Nodes = p[:count:count]
			return nil
		}
		if err := decodeByteCol(enc, p, m.own.Nodes); err != nil {
			return err
		}
		m.cur.Nodes = m.own.Nodes
	default:
		if enc == colEncRaw && len(p) == count {
			m.cur.Origins = unsafe.Slice((*Origin)(unsafe.Pointer(&p[0])), count)
		} else {
			if err := decodeByteCol(enc, p, m.own.Origins); err != nil {
				return err
			}
			m.cur.Origins = m.own.Origins
		}
		return validateOrigins(m.cur.Origins)
	}
	return nil
}

// NextCols returns a view of up to max records of the current block,
// valid until the next call.
func (m *mappedColSource) NextCols(max int) (*ColBatch, error) {
	if max <= 0 {
		max = DefaultBatchLen
	}
	if m.pos >= m.cur.Len() {
		if err := m.decodeBlock(); err != nil {
			return nil, err
		}
	}
	j := m.pos + max
	if j > m.cur.Len() {
		j = m.cur.Len()
	}
	m.view = m.cur.Slice(m.pos, j)
	m.pos = j
	return &m.view, nil
}

// Next materializes the next record, returning io.EOF at a clean end of
// stream.
func (m *mappedColSource) Next() (Record, error) {
	if m.pos >= m.cur.Len() {
		if err := m.decodeBlock(); err != nil {
			return Record{}, err
		}
	}
	r := m.cur.Record(m.pos)
	m.pos++
	return r, nil
}

// NextBatch materializes up to len(buf) records.
func (m *mappedColSource) NextBatch(buf []Record) (int, error) {
	n := 0
	for n < len(buf) {
		if m.pos >= m.cur.Len() {
			if err := m.decodeBlock(); err != nil {
				if err == io.EOF && n > 0 {
					return n, io.EOF
				}
				return n, err
			}
		}
		k := m.cur.Len() - m.pos
		if k > len(buf)-n {
			k = len(buf) - n
		}
		for i := 0; i < k; i++ {
			buf[n+i] = m.cur.Record(m.pos + i)
		}
		n += k
		m.pos += k
	}
	return n, nil
}

// NextSpan materializes up to max records into an internal scratch
// buffer and returns a view of it, valid until the next call.
func (m *mappedColSource) NextSpan(max int) ([]Record, error) {
	if max > DefaultBatchLen {
		max = DefaultBatchLen
	}
	if m.recs == nil {
		m.recs = make([]Record, DefaultBatchLen)
	}
	n, err := m.NextBatch(m.recs[:max])
	return m.recs[:n], err
}

// newColMmapFile maps f and builds a zero-copy columnar source over the
// mapping, returning the unmap function the owner must call on close.
func newColMmapFile(f *os.File) (*mappedColSource, func() error, error) {
	data, unmap, err := mmapFile(f)
	if err != nil {
		return nil, nil, err
	}
	src, err := newMappedColSource(data)
	if err != nil {
		unmap()
		return nil, nil, err
	}
	return src, unmap, nil
}

// mmapSizeOK guards the int conversion of a file size.
func mmapSizeOK(size int64) bool {
	return size >= 0 && size <= math.MaxInt && int64(int(size)) == size
}
