package trace

import (
	"io"
	"testing"

	"essio/internal/obs"
	"essio/internal/sim"
)

func obsRecs(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{Time: sim.Time(i), Sector: uint32(i), Node: uint8(i % 4)}
	}
	return recs
}

// TestObserveCopyBatched proves the source and sink wrappers count every
// record exactly once along the batched Copy fast path, and that the
// wrappers preserve the span capability (batch counters advance).
func TestObserveCopyBatched(t *testing.T) {
	const n = 3*DefaultBatchLen + 17
	reg := obs.New(obs.Counters)
	src := ObserveSource(SliceSource(obsRecs(n)), reg.Stage("source"))
	dst := ObserveSink(NewCollector(n), reg.Stage("sink"))

	copied, err := Copy(dst, src)
	if err != nil {
		t.Fatal(err)
	}
	if copied != n {
		t.Fatalf("copied %d, want %d", copied, n)
	}
	s := reg.Snapshot()
	for _, stage := range []string{"source", "sink"} {
		if got := s.Counter("pipeline/" + stage + "/records"); got != n {
			t.Errorf("%s records = %d, want %d", stage, got, n)
		}
		if got := s.Counter("pipeline/" + stage + "/bytes"); got != n*RecordSize {
			t.Errorf("%s bytes = %d, want %d", stage, got, n*RecordSize)
		}
		if got := s.Counter("pipeline/" + stage + "/batches"); got != 4 {
			t.Errorf("%s batches = %d, want 4 (span path lost?)", stage, got)
		}
	}
}

// TestObservePerRecord proves the unbatched wrappers count on the
// per-record path too, and errors are not counted.
func TestObservePerRecord(t *testing.T) {
	reg := obs.New(obs.Counters)
	// A bare Source (no batch capability) via an adapter func type.
	plain := &plainSource{recs: obsRecs(5)}
	src := ObserveSource(plain, reg.Stage("src"))
	if _, ok := src.(BatchSource); ok {
		t.Fatalf("plain source wrapper grew batch capability it cannot honor")
	}
	var got int
	dst := ObserveSink(SinkFunc(func(Record) error { got++; return nil }), reg.Stage("dst"))
	if _, err := Copy(dst, src); err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	if got != 5 || s.Counter("pipeline/src/records") != 5 || s.Counter("pipeline/dst/records") != 5 {
		t.Errorf("per-record counts: sink saw %d, src ctr %d, dst ctr %d, want 5 each",
			got, s.Counter("pipeline/src/records"), s.Counter("pipeline/dst/records"))
	}
	if s.Counter("pipeline/src/batches") != 0 {
		t.Errorf("plain path counted batches")
	}
}

// TestObserveNilStage proves nil stages return the original values.
func TestObserveNilStage(t *testing.T) {
	src := SliceSource(nil)
	if ObserveSource(src, nil) != src {
		t.Errorf("ObserveSource(nil stage) wrapped")
	}
	c := NewCollector(0)
	if ObserveSink(c, nil) != Sink(c) {
		t.Errorf("ObserveSink(nil stage) wrapped")
	}
}

// plainSource is a Source with no batch or span capability.
type plainSource struct {
	recs []Record
	i    int
}

func (p *plainSource) Next() (Record, error) {
	if p.i >= len(p.recs) {
		return Record{}, io.EOF
	}
	r := p.recs[p.i]
	p.i++
	return r, nil
}
