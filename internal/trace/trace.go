// Package trace defines the I/O trace record produced by the instrumented
// disk device driver, along with in-kernel ring buffering and a compact
// binary on-disk format.
//
// The record layout follows Berry & El-Ghazawi (IPPS 1996): every read or
// write request sent to the disk generates a trace entry consisting of a
// timestamp, the disk sector number requested, a flag indicating a read or a
// write, and a count of the remaining I/O requests to be processed. We
// additionally record the request length in sectors (needed to reproduce the
// request-size figures), the node the request was observed on, and a
// ground-truth origin tag that the analysis code can use to validate the
// paper's *inferred* classification of request sizes.
package trace

import (
	"encoding/binary"
	"fmt"
	"io"

	"essio/internal/sim"
)

// Op distinguishes read requests from write requests.
type Op uint8

const (
	// Read is a disk read request.
	Read Op = 0
	// Write is a disk write request.
	Write Op = 1
)

func (o Op) String() string {
	if o == Read {
		return "R"
	}
	return "W"
}

// Origin is a ground-truth tag describing which kernel mechanism generated a
// request. The original study could only infer these categories from request
// sizes; the simulator records them so the inference can be validated.
type Origin uint8

const (
	// OriginUnknown marks records whose source was not tagged.
	OriginUnknown Origin = iota
	// OriginData is explicit file data I/O on behalf of an application.
	OriginData
	// OriginMeta is filesystem metadata I/O (superblock, bitmaps, inodes,
	// directories, indirect blocks).
	OriginMeta
	// OriginPaging is demand paging of program text/data from its file.
	OriginPaging
	// OriginSwap is anonymous-page traffic to and from the swap partition.
	OriginSwap
	// OriginLog is system logging activity (syslogd/klogd and kernel
	// bookkeeping writes).
	OriginLog
	// OriginTrace is the instrumentation's own trace-flush traffic.
	OriginTrace
)

var originNames = [...]string{"unknown", "data", "meta", "paging", "swap", "log", "trace"}

func (o Origin) String() string {
	if int(o) < len(originNames) {
		return originNames[o]
	}
	return fmt.Sprintf("origin(%d)", uint8(o))
}

// SectorSize is the physical sector size in bytes of the simulated IDE disk.
const SectorSize = 512

// Record is one instrumented driver observation of a physical disk request.
type Record struct {
	// Time is the virtual timestamp at which the request was handed to
	// the disk.
	Time sim.Time
	// Sector is the starting disk sector of the request.
	Sector uint32
	// Count is the length of the request in sectors.
	Count uint16
	// Pending is the number of further I/O requests waiting in the
	// driver queue when this one was issued.
	Pending uint16
	// Op is the read/write flag.
	Op Op
	// Node identifies the cluster node whose disk observed the request.
	Node uint8
	// Origin is the ground-truth source tag (see Origin).
	Origin Origin
}

// Bytes reports the request length in bytes.
func (r Record) Bytes() int { return int(r.Count) * SectorSize }

// KB reports the request length in whole kilobytes (rounding up), the unit
// the paper's figures use.
func (r Record) KB() int { return (r.Bytes() + 1023) / 1024 }

// End reports the first sector past the request.
func (r Record) End() uint32 { return r.Sector + uint32(r.Count) }

func (r Record) String() string {
	return fmt.Sprintf("%.6f %s sector=%d count=%d pend=%d node=%d %s",
		r.Time.Seconds(), r.Op, r.Sector, r.Count, r.Pending, r.Node, r.Origin)
}

// recordSize is the fixed encoded size of a Record in bytes.
const recordSize = 8 + 4 + 2 + 2 + 1 + 1 + 1 + 1 // time, sector, count, pending, op, node, origin, pad

// Marshal encodes r into buf, which must be at least RecordSize bytes, and
// returns the number of bytes written.
func (r Record) Marshal(buf []byte) int {
	binary.LittleEndian.PutUint64(buf[0:], uint64(r.Time))
	binary.LittleEndian.PutUint32(buf[8:], r.Sector)
	binary.LittleEndian.PutUint16(buf[12:], r.Count)
	binary.LittleEndian.PutUint16(buf[14:], r.Pending)
	buf[16] = byte(r.Op)
	buf[17] = r.Node
	buf[18] = byte(r.Origin)
	buf[19] = 0
	return recordSize
}

// RecordSize is the fixed encoded record length in bytes.
const RecordSize = recordSize

// UnmarshalRecord decodes one record from buf, rejecting encodings no
// Marshal call can produce (negative timestamp, unknown op or origin) so
// corrupted or hostile trace files surface as errors instead of leaking
// impossible records into analysis.
func UnmarshalRecord(buf []byte) (Record, error) {
	if len(buf) < recordSize {
		return Record{}, fmt.Errorf("trace: short record: %d bytes", len(buf))
	}
	r := Record{
		Time:    sim.Time(binary.LittleEndian.Uint64(buf[0:])),
		Sector:  binary.LittleEndian.Uint32(buf[8:]),
		Count:   binary.LittleEndian.Uint16(buf[12:]),
		Pending: binary.LittleEndian.Uint16(buf[14:]),
		Op:      Op(buf[16]),
		Node:    buf[17],
		Origin:  Origin(buf[18]),
	}
	if r.Time < 0 {
		return Record{}, fmt.Errorf("trace: negative timestamp %d", int64(r.Time))
	}
	if r.Op > Write {
		return Record{}, fmt.Errorf("trace: invalid op %d", uint8(r.Op))
	}
	if int(r.Origin) >= len(originNames) {
		return Record{}, fmt.Errorf("trace: invalid origin %d", uint8(r.Origin))
	}
	return r, nil
}

// WriteAll encodes records to w in the binary trace format. It is the
// batch form of the streaming Writer sink and encodes whole 64 KiB
// buffers per write call.
func WriteAll(w io.Writer, recs []Record) error {
	tw := NewWriter(w)
	if err := tw.AddBatch(recs); err != nil {
		return err
	}
	return tw.Flush()
}

// ReadAll decodes all records from r until EOF. It is the batch form of
// the streaming Reader source.
func ReadAll(r io.Reader) ([]Record, error) {
	return Collect(NewReader(r))
}

// Merge combines per-node traces into one slice sorted by (Time, Node,
// Sector), stable with respect to input order of equal keys. It is the
// batch form of the streaming k-way MergeSlices/MergeSources merge.
func Merge(traces ...[]Record) []Record {
	total := 0
	for _, t := range traces {
		total += len(t)
	}
	out := &Collector{Recs: make([]Record, 0, total)}
	// Slice sources never fail, so the merge cannot either.
	if _, err := Copy(out, MergeSlices(traces...)); err != nil {
		panic("trace: merge: " + err.Error())
	}
	return out.Recs
}

// Ring is a bounded in-kernel trace buffer, the analogue of the kernel
// message facility the study buffered trace entries through. When the ring
// overflows, the oldest unconsumed records are discarded and counted.
type Ring struct {
	buf     []Record
	start   int // index of oldest record
	n       int // number of stored records
	dropped uint64
	total   uint64
}

// NewRing returns a ring holding at most capacity records.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		panic("trace: ring capacity must be positive")
	}
	return &Ring{buf: make([]Record, capacity)}
}

// Append stores r, evicting the oldest record if the ring is full.
func (g *Ring) Append(r Record) {
	g.total++
	if g.n == len(g.buf) {
		g.start = (g.start + 1) % len(g.buf)
		g.n--
		g.dropped++
	}
	g.buf[(g.start+g.n)%len(g.buf)] = r
	g.n++
}

// Len reports the number of unconsumed records.
func (g *Ring) Len() int { return g.n }

// Dropped reports how many records were lost to overflow.
func (g *Ring) Dropped() uint64 { return g.dropped }

// Total reports how many records were ever appended.
func (g *Ring) Total() uint64 { return g.total }

// Drain removes and returns up to max records in arrival order. max <= 0
// drains everything.
func (g *Ring) Drain(max int) []Record {
	if max <= 0 || max > g.n {
		max = g.n
	}
	out := make([]Record, max)
	for i := 0; i < max; i++ {
		out[i] = g.buf[(g.start+i)%len(g.buf)]
	}
	g.start = (g.start + max) % len(g.buf)
	g.n -= max
	return out
}
