// The k-way merge as a loser tree (tournament tree of losers), the
// classic replacement-selection structure: after the winner is emitted,
// replacing it replays exactly one match per tree level against the
// stored losers — ceil(log2 k) record comparisons, no interface
// dispatch, and no boxing of heap items through `any`. Inputs are read
// through spanReader, so slice-backed and file-backed sources feed the
// tree in whole batches.

package trace

import "io"

// mergeSpanLen bounds how many records the merge buffers per input: one
// span of at most this many records replaces the single buffered record
// of the old heap merge.
const mergeSpanLen = 1024

// mergeInput is one leaf of the loser tree: a span-buffered input stream
// and its current head record.
type mergeInput struct {
	in   *spanReader
	span []Record
	pos  int
	cur  Record
	ok   bool // cur holds a live record
}

// advance loads the next record of the input into cur, refilling the span
// buffer as needed; ok reports liveness afterwards.
func (m *mergeInput) advance() error {
	if m.pos < len(m.span) {
		m.cur = m.span[m.pos]
		m.pos++
		return nil
	}
	span, err := m.in.nextSpan()
	if err == io.EOF {
		m.ok = false
		return nil
	}
	if err != nil {
		m.ok = false
		return err
	}
	// Each input owns its spanReader and drains the buffered span before
	// the next refill, so holding it across advance calls is safe.
	m.span, m.pos = span, 1 //essvet:ignore spanretain
	m.cur = span[0]
	return nil
}

// mergeSource streams the k-way merge of its inputs in (Time, Node,
// Sector) order with ties broken by input index, reproducing a stable
// sort of the concatenated inputs. It implements both Source and
// BatchSource; NextBatch extracts a whole buffer of winners per call.
type mergeSource struct {
	ins  []mergeInput
	tree []int // [0] overall winner; [1..k-1] the loser of each match
	init bool
	err  error // deferred terminal error once buffered records drain
}

// MergeSources returns a Source yielding the records of all inputs merged
// by (Time, Node, Sector). Each input must already be ordered by that key
// (per-node driver traces are, since rings preserve arrival order); ties
// across inputs resolve in input order, matching the stable sort the
// batch Merge performs. Memory use is one bounded span buffer per input
// regardless of trace length. The returned Source is also a BatchSource,
// so batch-aware consumers drain it a buffer of records at a time.
func MergeSources(srcs ...Source) Source {
	m := &mergeSource{ins: make([]mergeInput, len(srcs)), tree: make([]int, len(srcs))}
	for i, s := range srcs {
		m.ins[i].in = newSpanReader(s, mergeSpanLen)
		m.ins[i].ok = true // until the first advance says otherwise
	}
	return m
}

// beats reports whether input a wins the match against input b: exhausted
// inputs lose to everything, equal records resolve to the lower input
// index (stability).
func (m *mergeSource) beats(a, b int) bool {
	ia, ib := &m.ins[a], &m.ins[b]
	if !ia.ok {
		return false
	}
	if !ib.ok {
		return true
	}
	if less(ia.cur, ib.cur) {
		return true
	}
	if less(ib.cur, ia.cur) {
		return false
	}
	return a < b
}

// build plays the initial tournament of the subtree rooted at node,
// storing each match's loser and returning its winner. Leaves occupy
// implicit nodes k..2k-1 (leaf i at node k+i).
func (m *mergeSource) build(node int) int {
	k := len(m.ins)
	if node >= k {
		return node - k
	}
	a := m.build(2 * node)
	b := m.build(2*node + 1)
	if m.beats(a, b) {
		m.tree[node] = b
		return a
	}
	m.tree[node] = a
	return b
}

// fix replays the matches from leaf's parent to the root after the leaf's
// head record changed: one comparison per level.
func (m *mergeSource) fix(leaf int) {
	k := len(m.ins)
	w := leaf
	for node := (k + leaf) / 2; node > 0; node /= 2 {
		if m.beats(m.tree[node], w) {
			m.tree[node], w = w, m.tree[node]
		}
	}
	m.tree[0] = w
}

// start loads every input's first record and plays the initial
// tournament.
func (m *mergeSource) start() error {
	m.init = true
	for i := range m.ins {
		if err := m.ins[i].advance(); err != nil {
			return err
		}
	}
	if len(m.ins) > 1 {
		m.tree[0] = m.build(1)
	}
	return nil
}

func (m *mergeSource) Next() (Record, error) {
	if !m.init {
		if err := m.start(); err != nil {
			return Record{}, err
		}
	}
	if m.err != nil {
		return Record{}, m.err
	}
	if len(m.ins) == 0 {
		return Record{}, io.EOF
	}
	w := m.tree[0]
	in := &m.ins[w]
	if !in.ok {
		return Record{}, io.EOF
	}
	r := in.cur
	if err := in.advance(); err != nil {
		m.err = err
		return Record{}, err
	}
	if len(m.ins) > 1 {
		m.fix(w)
	}
	return r, nil
}

// runnerUp returns the strongest rival of winner w: the best loser on
// w's leaf-to-root path, which is the input that would win the
// tournament if w paused. -1 when there is no rival (k == 1).
func (m *mergeSource) runnerUp(w int) int {
	k := len(m.ins)
	ru := -1
	for node := (k + w) / 2; node > 0; node /= 2 {
		c := m.tree[node]
		if ru < 0 || m.beats(c, ru) {
			ru = c
		}
	}
	return ru
}

// NextBatch fills buf with merged records, amortizing the per-record
// interface dispatch of the output side over whole buffers. Column-run
// copying: per-node traces are long sorted runs, so after each
// tournament the winner's buffered span keeps winning for many records —
// those are bulk-copied against the fixed runner-up with one comparison
// each, and the tree is replayed once per run instead of once per
// record.
func (m *mergeSource) NextBatch(buf []Record) (int, error) {
	if !m.init {
		if err := m.start(); err != nil {
			return 0, err
		}
	}
	if m.err != nil {
		return 0, m.err
	}
	if len(m.ins) == 0 {
		return 0, io.EOF
	}
	n := 0
	for n < len(buf) {
		w := m.tree[0]
		in := &m.ins[w]
		if !in.ok {
			m.err = io.EOF
			return n, io.EOF
		}
		buf[n] = in.cur
		n++
		if ru := m.runnerUp(w); ru < 0 || !m.ins[ru].ok {
			// No live rival: drain the winner's span freely.
			for n < len(buf) && in.pos < len(in.span) {
				buf[n] = in.span[in.pos]
				n++
				in.pos++
			}
		} else {
			// Copy while the winner's next record still beats the
			// runner-up's fixed head, preserving (Time, Node, Sector)
			// order and input-index stability on ties.
			rc := m.ins[ru].cur
			for n < len(buf) && in.pos < len(in.span) {
				h := in.span[in.pos]
				if !less(h, rc) && (less(rc, h) || w > ru) {
					break
				}
				buf[n] = h
				n++
				in.pos++
			}
		}
		if err := in.advance(); err != nil {
			// Records already extracted are valid; surface the error on
			// the next call.
			m.err = err
			return n, nil
		}
		if len(m.ins) > 1 {
			m.fix(w)
		}
	}
	return n, nil
}
