package asciiplot

import (
	"strings"
	"testing"

	"essio/internal/analysis"
)

func TestScatterRendersPoints(t *testing.T) {
	pts := []analysis.Point{{T: 0, V: 0}, {T: 50, V: 5}, {T: 100, V: 10}}
	out := Scatter("title", "time", "value", pts, 40, 10)
	if !strings.Contains(out, "title") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "n=3") {
		t.Fatal("missing point count")
	}
	if strings.Count(out, ".")+strings.Count(out, ":") < 3 {
		t.Fatalf("points not rendered:\n%s", out)
	}
	// Axis extremes labeled.
	if !strings.Contains(out, "10") || !strings.Contains(out, "0") {
		t.Fatal("axis labels missing")
	}
}

func TestScatterEmptyAndDegenerate(t *testing.T) {
	out := Scatter("t", "x", "y", nil, 40, 10)
	if !strings.Contains(out, "(no data)") {
		t.Fatal("empty scatter must say so")
	}
	// Single point (degenerate ranges) must not panic.
	out = Scatter("t", "x", "y", []analysis.Point{{T: 1, V: 1}}, 40, 10)
	if out == "" {
		t.Fatal("degenerate scatter empty")
	}
	// Tiny requested sizes are clamped.
	out = Scatter("t", "x", "y", []analysis.Point{{T: 1, V: 1}, {T: 2, V: 2}}, 1, 1)
	if out == "" {
		t.Fatal("clamped scatter empty")
	}
}

func TestScatterDensityGlyphs(t *testing.T) {
	// Many coincident points escalate . -> : -> * -> #.
	var pts []analysis.Point
	for i := 0; i < 100; i++ {
		pts = append(pts, analysis.Point{T: 0, V: 0})
	}
	pts = append(pts, analysis.Point{T: 1, V: 1})
	out := Scatter("t", "x", "y", pts, 20, 8)
	if !strings.Contains(out, "#") {
		t.Fatalf("dense cell should use #:\n%s", out)
	}
}

func TestBars(t *testing.T) {
	out := Bars("chart", []string{"a", "bb"}, []float64{50, 100}, 20)
	if !strings.Contains(out, "chart") || !strings.Contains(out, "bb") {
		t.Fatalf("bars malformed:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("want title + 2 bars, got %d lines", len(lines))
	}
	// The 100% bar must be longer than the 50% bar.
	if strings.Count(lines[1], "#") >= strings.Count(lines[2], "#") {
		t.Fatal("bar lengths not proportional")
	}
	// All-zero values must not divide by zero.
	if Bars("z", []string{"a"}, []float64{0}, 10) == "" {
		t.Fatal("zero bars empty")
	}
}

func TestBandChart(t *testing.T) {
	bands := []analysis.Band{
		{Lo: 0, Hi: 100000, Count: 90, Pct: 90},
		{Lo: 100000, Hi: 200000, Count: 10, Pct: 10},
	}
	out := BandChart("Figure 7", bands, 30)
	if !strings.Contains(out, "Figure 7") || !strings.Contains(out, "90.00%") {
		t.Fatalf("band chart malformed:\n%s", out)
	}
	if !strings.Contains(out, "0K- 100K") {
		t.Fatalf("band labels malformed:\n%s", out)
	}
}

func TestNeedles(t *testing.T) {
	heat := []analysis.Heat{
		{Sector: 50000, PerSec: 2.0, Count: 100},
		{Sector: 990000, PerSec: 0.5, Count: 25},
	}
	out := Needles("Figure 8", heat, 1024000, 40, 6)
	if !strings.Contains(out, "Figure 8") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "|") {
		t.Fatal("no needles rendered")
	}
	if !strings.Contains(out, "1024000") {
		t.Fatal("axis not labeled with disk size")
	}
	// Empty heat handled.
	if !strings.Contains(Needles("x", nil, 100, 20, 4), "(no data)") {
		t.Fatal("empty needles must say so")
	}
}
