// Package asciiplot renders the study's figures as terminal plots: scatter
// plots (request size / sector number versus time), bar charts (spatial
// locality bands), and needle plots (temporal locality heat).
package asciiplot

import (
	"fmt"
	"math"
	"strings"

	"essio/internal/analysis"
)

// Scatter renders points on a w×h character grid with axis annotations.
// Marks density with ., :, * and # as points per cell grow.
func Scatter(title, xlabel, ylabel string, pts []analysis.Point, w, h int) string {
	if w < 16 {
		w = 16
	}
	if h < 6 {
		h = 6
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if len(pts) == 0 {
		b.WriteString("  (no data)\n")
		return b.String()
	}
	minX, maxX := pts[0].T, pts[0].T
	minY, maxY := pts[0].V, pts[0].V
	for _, p := range pts {
		minX = math.Min(minX, p.T)
		maxX = math.Max(maxX, p.T)
		minY = math.Min(minY, p.V)
		maxY = math.Max(maxY, p.V)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]int, h)
	for i := range grid {
		grid[i] = make([]int, w)
	}
	for _, p := range pts {
		x := int(float64(w-1) * (p.T - minX) / (maxX - minX))
		y := int(float64(h-1) * (p.V - minY) / (maxY - minY))
		grid[h-1-y][x]++
	}
	glyph := func(c int) byte {
		switch {
		case c == 0:
			return ' '
		case c == 1:
			return '.'
		case c <= 3:
			return ':'
		case c <= 9:
			return '*'
		default:
			return '#'
		}
	}
	yHi := fmt.Sprintf("%.0f", maxY)
	yLo := fmt.Sprintf("%.0f", minY)
	pad := len(yHi)
	if len(yLo) > pad {
		pad = len(yLo)
	}
	for row := 0; row < h; row++ {
		label := strings.Repeat(" ", pad)
		if row == 0 {
			label = fmt.Sprintf("%*s", pad, yHi)
		}
		if row == h-1 {
			label = fmt.Sprintf("%*s", pad, yLo)
		}
		line := make([]byte, w)
		for col := 0; col < w; col++ {
			line[col] = glyph(grid[row][col])
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, line)
	}
	fmt.Fprintf(&b, "%s +%s+\n", strings.Repeat(" ", pad), strings.Repeat("-", w))
	fmt.Fprintf(&b, "%s  %-*.0f%*.0f\n", strings.Repeat(" ", pad), w/2, minX, w-w/2, maxX)
	fmt.Fprintf(&b, "%s  x: %s   y: %s   n=%d\n", strings.Repeat(" ", pad), xlabel, ylabel, len(pts))
	return b.String()
}

// Bars renders a horizontal bar chart of labeled percentages.
func Bars(title string, labels []string, values []float64, width int) string {
	if width < 10 {
		width = 10
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	maxV := 0.0
	for _, v := range values {
		if v > maxV {
			maxV = v
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	labW := 0
	for _, l := range labels {
		if len(l) > labW {
			labW = len(l)
		}
	}
	for i, v := range values {
		n := int(float64(width) * v / maxV)
		fmt.Fprintf(&b, "%*s |%s%s %6.2f%%\n", labW, labels[i],
			strings.Repeat("#", n), strings.Repeat(" ", width-n), v)
	}
	return b.String()
}

// BandChart renders Figure 7-style spatial locality bands.
func BandChart(title string, bands []analysis.Band, width int) string {
	labels := make([]string, len(bands))
	values := make([]float64, len(bands))
	for i, band := range bands {
		labels[i] = fmt.Sprintf("%4dK-%4dK", band.Lo/1000, band.Hi/1000)
		values[i] = band.Pct
	}
	return Bars(title, labels, values, width)
}

// Needles renders Figure 8-style temporal heat: access frequency per sector
// position, downsampled onto a fixed-width axis.
func Needles(title string, heat []analysis.Heat, diskSectors uint32, width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if len(heat) == 0 {
		b.WriteString("  (no data)\n")
		return b.String()
	}
	cols := make([]float64, width)
	for _, h := range heat {
		c := int(uint64(h.Sector) * uint64(width) / uint64(diskSectors))
		if c >= width {
			c = width - 1
		}
		cols[c] += h.PerSec
	}
	maxV := 0.0
	for _, v := range cols {
		if v > maxV {
			maxV = v
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	for row := height; row >= 1; row-- {
		thresh := maxV * float64(row) / float64(height)
		line := make([]byte, width)
		for c, v := range cols {
			if v >= thresh && v > 0 {
				line[c] = '|'
			} else {
				line[c] = ' '
			}
		}
		marker := "       "
		if row == height {
			marker = fmt.Sprintf("%6.2f ", maxV)
		}
		fmt.Fprintf(&b, "%s|%s|\n", marker, line)
	}
	fmt.Fprintf(&b, "       +%s+\n", strings.Repeat("-", width))
	fmt.Fprintf(&b, "       0%*d\n", width, diskSectors)
	fmt.Fprintf(&b, "       x: sector   y: accesses/sec\n")
	return b.String()
}
