// Package profiling wires Go's pprof collectors behind the -cpuprofile
// and -memprofile flags the analysis CLIs share, so the overhead claims
// of the observability layer (and any pipeline hot spot) can be checked
// with `go tool pprof` instead of guesswork.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath and schedules a heap profile
// into memPath; either path may be empty to skip that profile. The
// returned stop function must run exactly once at process exit — it
// stops the CPU profile and writes the heap snapshot after a final GC.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpu *os.File
	if cpuPath != "" {
		cpu, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpu); err != nil {
			cpu.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	return func() error {
		if cpu != nil {
			pprof.StopCPUProfile()
			if err := cpu.Close(); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		if memPath == "" {
			return nil
		}
		f, err := os.Create(memPath)
		if err != nil {
			return fmt.Errorf("profiling: %w", err)
		}
		defer f.Close()
		runtime.GC() // settle the heap so the profile shows live objects
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("profiling: %w", err)
		}
		return nil
	}, nil
}
