// Package essd is the long-running trace service: the whole batch
// surface of the reproduction — single-pass characterization, workload
// model fitting, experiment execution — served over HTTP/JSON by an
// always-on daemon. It is the repo's "millions of users" story: live
// trace ingestion with streamed results, content-addressed model
// caching, and admission-controlled experiment multiplexing over the
// existing RunConcurrentObs worker pool.
//
// Endpoints:
//
//	POST /v1/traces            chunked trace stream in (binary or text,
//	                           sniffed), NDJSON progress + final
//	                           characterization out; the report bytes
//	                           equal `essanalyze` output exactly
//	POST /v1/models            fit-and-cache a WorkloadModel, keyed by
//	                           sha256 of the canonical binary encoding
//	GET  /v1/models/{hash}     cached model JSON
//	POST /v1/experiments       enqueue an experiment config; 429 +
//	                           Retry-After when the queue is full
//	GET  /v1/experiments/{id}  status / result summary / obs snapshot
//	GET  /metrics              the daemon's own registry, Prometheus text
//	GET  /healthz              ok | draining
//
// The daemon lives outside the determinism boundary: it uses wall
// clocks, goroutines, and the network freely (the essvet determinism
// allowlist exempts it), but everything it runs — experiments, fits,
// characterizations — is the same deterministic machinery the CLIs
// use, and the /metrics page keeps wall-domain series (wall/*) strictly
// apart from sim-domain series (sched/*, in virtual time).
package essd

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"essio/internal/experiment"
	"essio/internal/obs"
)

// Config parameterizes the daemon. Zero fields take defaults.
type Config struct {
	// Workers is the experiment worker-pool size (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the experiment run queue; a full queue answers
	// 429 with Retry-After (default 16).
	QueueDepth int
	// MaxIngest bounds concurrently served trace/model uploads; excess
	// streams are rejected 429 (default 0 = unlimited).
	MaxIngest int
	// RequestTimeout bounds one upload's processing time; exceeded
	// ingests abort with an NDJSON error event (default 0 = none).
	RequestTimeout time.Duration
	// RetryAfter is the hint returned with 429 responses (default 1s).
	RetryAfter time.Duration
	// MaxStoredTraces bounds the ingested-trace retention store
	// (default 64 traces); beyond it, ingests report stored:false.
	MaxStoredTraces int
	// ObsLevel sets the daemon registries' collection level (default
	// Full, so the wall latency histograms populate).
	ObsLevel obs.Level
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxStoredTraces <= 0 {
		c.MaxStoredTraces = 64
	}
	if c.ObsLevel == obs.Unset {
		c.ObsLevel = obs.Full
	}
}

// Server is the daemon: an http.Handler plus the experiment worker
// pool behind it. Create with NewServer, serve with net/http, stop
// with Shutdown.
type Server struct {
	cfg  Config
	mux  *http.ServeMux
	wall *lockedRegistry // wall-clock domain: wall/* series
	sim  *lockedRegistry // deterministic domain: sched/* series

	traces *traceStore
	models *modelCache

	queue  chan *job
	jobs   sync.Map // id → *job
	nextID atomic.Int64
	wg     sync.WaitGroup

	// admission guards enqueue against a concurrent Shutdown closing
	// the queue; draining also flips /healthz and rejects new work.
	admission sync.Mutex
	draining  bool

	ingestSem chan struct{} // nil when MaxIngest == 0

	// runBatch executes one dequeued experiment batch; tests stub it to
	// control run latency without simulating anything.
	runBatch func(cfgs []experiment.Config, workers int, reg *obs.Registry) ([]*experiment.Result, error)
}

// NewServer builds the daemon and starts its experiment workers.
func NewServer(cfg Config) *Server {
	cfg.fill()
	s := &Server{
		cfg:      cfg,
		mux:      http.NewServeMux(),
		wall:     newLockedRegistry(cfg.ObsLevel),
		sim:      newLockedRegistry(cfg.ObsLevel),
		traces:   newTraceStore(cfg.MaxStoredTraces),
		models:   newModelCache(),
		queue:    make(chan *job, cfg.QueueDepth),
		runBatch: experiment.RunConcurrentObs,
	}
	if cfg.MaxIngest > 0 {
		s.ingestSem = make(chan struct{}, cfg.MaxIngest)
	}
	s.mux.HandleFunc("POST /v1/traces", s.instrument("ingest", s.handleTraces))
	s.mux.HandleFunc("POST /v1/models", s.instrument("models", s.handleModelFit))
	s.mux.HandleFunc("GET /v1/models/{hash}", s.instrument("models", s.handleModelGet))
	s.mux.HandleFunc("POST /v1/experiments", s.instrument("experiments", s.handleExperimentPost))
	s.mux.HandleFunc("GET /v1/experiments/{id}", s.instrument("experiments", s.handleExperimentGet))
	s.mux.HandleFunc("GET /v1/experiments/{id}/iotrace", s.instrument("experiments", s.handleExperimentIOTrace))
	s.mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.expWorker()
	}
	return s
}

// ServeHTTP dispatches to the daemon's endpoints.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// instrument wraps a handler with per-endpoint request counting and
// wall-latency observation.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.wall.count("wall/http/"+name+"/requests", 1)
		h(w, r)
		s.wall.observe("wall/http/"+name+"/latency_us", latencyBuckets(),
			time.Since(start).Microseconds())
	}
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	s.admission.Lock()
	defer s.admission.Unlock()
	return s.draining
}

// Shutdown drains the daemon gracefully: new work is rejected (503 on
// POSTs, draining on /healthz), queued and in-flight experiment runs
// finish, then the workers exit. It returns ctx's error if the drain
// outlives the context. In-flight HTTP requests are the
// http.Server.Shutdown caller's concern; call this after (or instead
// of) it.
func (s *Server) Shutdown(ctx context.Context) error {
	s.admission.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.admission.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// handleHealthz answers ok while admitting, draining (503) afterwards.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleMetrics renders both metric domains as one Prometheus text
// page. The snapshots merge cleanly because the name spaces are
// disjoint by construction: wall/* never appears in the sim registry
// and sched/* never appears in the wall registry.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.wall.gaugeSet("wall/store/traces", int64(s.traces.len()))
	s.wall.gaugeSet("wall/store/models", int64(s.models.len()))
	snap := s.wall.snapshot()
	snap.Merge(s.sim.snapshot())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, snap.Text())
}

// reject429 answers an over-capacity request with Retry-After.
func (s *Server) reject429(w http.ResponseWriter, what string) {
	w.Header().Set("Retry-After",
		strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
	http.Error(w, what+" at capacity, retry later", http.StatusTooManyRequests)
}

// acquireIngest claims an upload slot, reporting false (and counting
// the rejection) when the daemon is saturated.
func (s *Server) acquireIngest() bool {
	if s.ingestSem == nil {
		return true
	}
	select {
	case s.ingestSem <- struct{}{}:
		return true
	default:
		s.wall.count("wall/ingest/rejected", 1)
		return false
	}
}

func (s *Server) releaseIngest() {
	if s.ingestSem != nil {
		<-s.ingestSem
	}
}

// queryBool parses a boolean-ish query parameter ("1", "true", "yes").
func queryBool(r *http.Request, name string) bool {
	switch r.URL.Query().Get(name) {
	case "1", "true", "yes", "on":
		return true
	}
	return false
}

// queryInt parses an integer query parameter, def when absent/garbled.
func queryInt(r *http.Request, name string, def int) int {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return def
	}
	return n
}
