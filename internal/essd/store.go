package essd

import (
	"crypto/sha256"
	"encoding/hex"
	"hash"
	"sync"

	"essio/internal/trace"
)

// contentHasher folds the canonical binary encoding of a record stream
// into a sha256. Text uploads hash identically to their binary
// re-encoding, so the content address names the trace, not the wire
// format it happened to arrive in.
type contentHasher struct {
	h   hash.Hash
	buf [trace.RecordSize]byte
}

func newContentHasher() *contentHasher {
	return &contentHasher{h: sha256.New()}
}

func (c *contentHasher) addBatch(recs []trace.Record) {
	for _, r := range recs {
		r.Marshal(c.buf[:])
		c.h.Write(c.buf[:])
	}
}

// sum renders the content address, "sha256:<hex>".
func (c *contentHasher) sum() string {
	return "sha256:" + hex.EncodeToString(c.h.Sum(nil))
}

// HashRecords computes the content address of an in-memory trace — the
// key POST /v1/models caches under. Exposed so tests and clients can
// predict cache keys.
func HashRecords(recs []trace.Record) string {
	c := newContentHasher()
	c.addBatch(recs)
	return c.sum()
}

// traceStore retains ingested traces by content address so later
// /v1/models fits can reference them without re-uploading. Bounded:
// when full, new ingests simply aren't retained (the ingest response
// reports stored:false) — admission control for memory, not an error.
type traceStore struct {
	mu     sync.Mutex
	max    int
	traces map[string][]trace.Record
}

func newTraceStore(max int) *traceStore {
	return &traceStore{max: max, traces: make(map[string][]trace.Record)}
}

// put retains recs under key; reports whether it was (or already was)
// stored.
func (s *traceStore) put(key string, recs []trace.Record) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.traces[key]; ok {
		return true
	}
	if len(s.traces) >= s.max {
		return false
	}
	s.traces[key] = recs
	return true
}

func (s *traceStore) get(key string) ([]trace.Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	recs, ok := s.traces[key]
	return recs, ok
}

func (s *traceStore) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.traces)
}

// modelCache holds fitted WorkloadModel JSON documents keyed by the
// content address of the trace they were fitted from. The cache is
// content-addressed and first-fit-wins: refitting byte-identical input
// is a hit regardless of who uploaded it.
type modelCache struct {
	mu     sync.Mutex
	models map[string][]byte
}

func newModelCache() *modelCache {
	return &modelCache{models: make(map[string][]byte)}
}

func (c *modelCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.models[key]
	return b, ok
}

// putIfAbsent caches doc under key unless a fit raced us there first;
// it returns the canonical cached document either way.
func (c *modelCache) putIfAbsent(key string, doc []byte) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	if b, ok := c.models[key]; ok {
		return b
	}
	c.models[key] = doc
	return doc
}

func (c *modelCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.models)
}
