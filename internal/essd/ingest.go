package essd

import (
	"encoding/json"
	"io"
	"net/http"
	"time"

	"essio/internal/characterize"
	"essio/internal/trace"
)

// ingestEvent is one NDJSON line of a /v1/traces response. The stream
// carries periodic progress events while the upload is decoded and
// ends with either a done event (whose Characterization field is the
// essanalyze report, byte for byte) or an error event.
type ingestEvent struct {
	Event            string `json:"event"`
	Records          int    `json:"records,omitempty"`
	Bytes            int64  `json:"bytes,omitempty"`
	Hash             string `json:"hash,omitempty"`
	Stored           bool   `json:"stored,omitempty"`
	Characterization string `json:"characterization,omitempty"`
	Error            string `json:"error,omitempty"`
}

// defaultProgressEvery is how many records pass between progress
// events; override per request with ?progress=N.
const defaultProgressEvery = 1 << 16

// handleTraces ingests one chunked trace stream (binary or text,
// sniffed like the CLIs) and streams characterization back while
// decoding. Query parameters mirror essanalyze's flags: label, nodes,
// disk, hist, spatial, temporal, queue, origins, format; plus store=1
// to retain the trace for later /v1/models?trace=<hash> fits and
// progress=N to tune event cadence.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	if !s.acquireIngest() {
		s.reject429(w, "ingest")
		return
	}
	defer s.releaseIngest()
	s.wall.gaugeAdd("wall/ingest/active", 1)
	defer s.wall.gaugeAdd("wall/ingest/active", -1)
	start := time.Now()

	opts := characterize.Options{
		Label:       r.URL.Query().Get("label"),
		Nodes:       queryInt(r, "nodes", 16),
		Hist:        queryBool(r, "hist"),
		Spatial:     queryBool(r, "spatial"),
		Temporal:    queryBool(r, "temporal"),
		Queue:       queryBool(r, "queue"),
		Origins:     queryBool(r, "origins"),
		DiskSectors: uint32(queryInt(r, "disk", 1024000)),
	}
	if opts.Label == "" {
		opts.Label = "trace"
	}
	src, err := trace.NewReaderSource(r.Body, r.URL.Query().Get("format"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	emit := func(ev ingestEvent) {
		// A failed write means the client went away; the next context
		// check ends the stream, so the error carries no information.
		_ = enc.Encode(ev)
		if flusher != nil {
			flusher.Flush()
		}
	}

	var deadline time.Time
	if s.cfg.RequestTimeout > 0 {
		deadline = start.Add(s.cfg.RequestTimeout)
	}
	store := queryBool(r, "store")
	progressEvery := queryInt(r, "progress", defaultProgressEvery)
	if progressEvery <= 0 {
		progressEvery = defaultProgressEvery
	}

	set := characterize.New(opts)
	sink := set.Sink().(trace.BatchSink)
	hasher := newContentHasher()
	var retained []trace.Record
	buf := make([]trace.Record, trace.DefaultBatchLen)
	records, nextProgress := 0, progressEvery
	for {
		if err := r.Context().Err(); err != nil {
			return // client went away; nothing left to tell it
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			emit(ingestEvent{Event: "error", Records: records, Error: "request timeout"})
			return
		}
		n, err := src.NextBatch(buf)
		if n > 0 {
			// Sink errors cannot happen: every accumulator Add returns
			// nil by construction (essvet sinkerr would flag real ones).
			_ = sink.AddBatch(buf[:n])
			hasher.addBatch(buf[:n])
			if store {
				// Element-wise append (note the ...): buf is reused by the
				// next NextBatch refill, so retaining it whole would alias
				// recycled memory — exactly what essvet spanretain flags.
				// Copying the records breaks the alias.
				retained = append(retained, buf[:n]...)
			}
			records += n
			if records >= nextProgress {
				emit(ingestEvent{Event: "progress", Records: records,
					Bytes: int64(records) * trace.RecordSize})
				nextProgress += progressEvery
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			emit(ingestEvent{Event: "error", Records: records, Error: err.Error()})
			return
		}
	}

	hash := hasher.sum()
	stored := false
	if store {
		stored = s.traces.put(hash, retained)
	}
	s.wall.count("wall/ingest/records", uint64(records))
	s.wall.count("wall/ingest/bytes", uint64(records)*trace.RecordSize)
	s.wall.count("wall/ingest/streams", 1)
	s.wall.observe("wall/ingest/latency_us", latencyBuckets(),
		time.Since(start).Microseconds())
	emit(ingestEvent{
		Event:            "done",
		Records:          records,
		Bytes:            int64(records) * trace.RecordSize,
		Hash:             hash,
		Stored:           stored,
		Characterization: set.Report(records),
	})
}
