package essd

import (
	"sync"

	"essio/internal/obs"
)

// lockedRegistry wraps an obs.Registry for concurrent handlers. The
// registry itself is deliberately single-threaded (the simulator never
// needs locking); the daemon is the one place metrics are updated from
// many goroutines, so the lock lives here, at the server boundary,
// instead of leaking into the deterministic layer.
//
// The daemon keeps two of these, and the split is load-bearing: the
// wall registry holds metrics derived from real time and real traffic
// (request counts, ingested bytes, wall-clock latency histograms,
// queue depth) under the wall/ prefix, while the sim registry holds
// only metrics merged out of deterministic experiment runs (the
// sched/* scheduler family, in virtual microseconds). A /metrics
// scrape merges the two snapshots, but no value ever crosses from one
// domain to the other, so the sim side stays reproducible run to run.
type lockedRegistry struct {
	mu  sync.Mutex
	reg *obs.Registry
}

func newLockedRegistry(l obs.Level) *lockedRegistry {
	return &lockedRegistry{reg: obs.New(l)}
}

// count adds n to the named counter.
func (l *lockedRegistry) count(name string, n uint64) {
	l.mu.Lock()
	l.reg.Counter(name).Add(n)
	l.mu.Unlock()
}

// gaugeAdd shifts the named gauge by d (high-water tracked).
func (l *lockedRegistry) gaugeAdd(name string, d int64) {
	l.mu.Lock()
	l.reg.Gauge(name).Add(d)
	l.mu.Unlock()
}

// gaugeSet sets the named gauge to v.
func (l *lockedRegistry) gaugeSet(name string, v int64) {
	l.mu.Lock()
	l.reg.Gauge(name).Set(v)
	l.mu.Unlock()
}

// observe records v into the named histogram, creating it with bounds
// on first use.
func (l *lockedRegistry) observe(name string, bounds []int64, v int64) {
	l.mu.Lock()
	l.reg.Histogram(name, bounds).Observe(v)
	l.mu.Unlock()
}

// merge folds a foreign registry (a per-run scheduler registry) in.
func (l *lockedRegistry) merge(o *obs.Registry) {
	l.mu.Lock()
	l.reg.Merge(o)
	l.mu.Unlock()
}

// snapshot captures the current state.
func (l *lockedRegistry) snapshot() *obs.Snapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.reg.Snapshot()
}

// latencyBuckets is the shared wall-latency histogram geometry:
// exponential from 64 µs to ~67 s.
func latencyBuckets() []int64 { return obs.ExpBuckets(64, 4, 11) }
