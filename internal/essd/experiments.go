package essd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"essio/internal/experiment"
	"essio/internal/iotrace"
	"essio/internal/obs"
	"essio/internal/sim"
)

// expRequest is the POST /v1/experiments body: an experiment.Config in
// JSON clothing. Small selects experiment.SmallConfig scaling (the
// test-sized problems), which is what a multiplexing service wants by
// default for interactive callers.
type expRequest struct {
	Kind   string `json:"kind"`
	Nodes  int    `json:"nodes,omitempty"`
	Seed   int64  `json:"seed,omitempty"`
	Shards int    `json:"shards,omitempty"`
	Small  bool   `json:"small,omitempty"`
	// Obs is the per-run simulation metric level: off, counters, full,
	// or trace (which additionally collects the per-request I/O journal
	// served at GET /v1/experiments/{id}/iotrace).
	Obs string `json:"obs,omitempty"`
}

// expStatus is the GET /v1/experiments/{id} response.
type expStatus struct {
	ID       string  `json:"id"`
	Kind     string  `json:"kind"`
	Status   string  `json:"status"` // queued | running | done | failed
	Error    string  `json:"error,omitempty"`
	Seed     int64   `json:"seed"`
	Nodes    int     `json:"nodes"`
	Shards   int     `json:"shards,omitempty"`
	Queue    int     `json:"queue_depth,omitempty"`
	Records  int     `json:"records,omitempty"`
	Duration float64 `json:"duration_sec,omitempty"`
	Finished bool    `json:"finished,omitempty"`
	Summary  string  `json:"summary,omitempty"`
	// ObsSnapshot is the run's deterministic cluster metric snapshot
	// (Result.Obs), per request — same seed, same snapshot.
	ObsSnapshot *obs.Snapshot `json:"obs,omitempty"`
}

// job is one queued experiment run.
type job struct {
	id  string
	cfg experiment.Config

	mu       sync.Mutex
	status   string
	err      string
	records  int
	duration sim.Duration
	finished bool
	summary  string
	snap     *obs.Snapshot
	// iotraceJSON is the run's merged I/O journal rendered as Chrome
	// trace-event JSON, present only when the run collected at obs trace.
	iotraceJSON []byte
}

func (j *job) setStatus(st string) {
	j.mu.Lock()
	j.status = st
	j.mu.Unlock()
}

func (j *job) view(queueDepth int) expStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return expStatus{
		ID:          j.id,
		Kind:        string(j.cfg.Kind),
		Status:      j.status,
		Error:       j.err,
		Seed:        j.cfg.Seed,
		Nodes:       j.cfg.Nodes,
		Shards:      j.cfg.Shards,
		Queue:       queueDepth,
		Records:     j.records,
		Duration:    j.duration.Seconds(),
		Finished:    j.finished,
		Summary:     j.summary,
		ObsSnapshot: j.snap,
	}
}

// handleExperimentPost validates and enqueues one experiment config.
// Admission control is a non-blocking send into the bounded queue: a
// full queue answers 429 with Retry-After and the request is never
// partially admitted.
func (s *Server) handleExperimentPost(w http.ResponseWriter, r *http.Request) {
	var req expRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad experiment config: "+err.Error(), http.StatusBadRequest)
		return
	}
	kind := experiment.Kind(req.Kind)
	valid := false
	for _, k := range experiment.Kinds {
		if k == kind {
			valid = true
			break
		}
	}
	if !valid {
		http.Error(w, fmt.Sprintf("unknown experiment kind %q", req.Kind), http.StatusBadRequest)
		return
	}

	var cfg experiment.Config
	if req.Small {
		cfg = experiment.SmallConfig(kind, req.Nodes)
	} else {
		cfg = experiment.Config{Kind: kind, Nodes: req.Nodes}
	}
	if req.Seed != 0 {
		cfg.Seed = req.Seed
	}
	cfg.Shards = req.Shards
	if lvl := obs.ParseLevel(req.Obs); lvl != obs.Unset {
		cfg.ObsLevel = lvl
	}

	j := &job{id: fmt.Sprintf("e%d", s.nextID.Add(1)), cfg: cfg, status: "queued"}

	s.admission.Lock()
	if s.draining {
		s.admission.Unlock()
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	select {
	case s.queue <- j:
		s.jobs.Store(j.id, j)
		s.wall.count("wall/exp/enqueued", 1)
		s.wall.gaugeAdd("wall/exp/queue_depth", 1)
		s.admission.Unlock()
	default:
		s.admission.Unlock()
		s.wall.count("wall/exp/rejected", 1)
		s.reject429(w, "experiment queue")
		return
	}

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	_ = json.NewEncoder(w).Encode(j.view(len(s.queue)))
}

// handleExperimentGet reports a job's status and, once done, its
// result summary and obs snapshot.
func (s *Server) handleExperimentGet(w http.ResponseWriter, r *http.Request) {
	v, ok := s.jobs.Load(r.PathValue("id"))
	if !ok {
		http.Error(w, "no such experiment "+r.PathValue("id"), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v.(*job).view(len(s.queue)))
}

// handleExperimentIOTrace serves a finished run's per-request I/O
// journal as Chrome trace-event JSON (Perfetto-loadable). The journal
// only exists when the run was submitted with obs=trace: a done run
// without one answers 404 with a hint, an unfinished run answers 409.
func (s *Server) handleExperimentIOTrace(w http.ResponseWriter, r *http.Request) {
	v, ok := s.jobs.Load(r.PathValue("id"))
	if !ok {
		http.Error(w, "no such experiment "+r.PathValue("id"), http.StatusNotFound)
		return
	}
	j := v.(*job)
	j.mu.Lock()
	status, trace := j.status, j.iotraceJSON
	j.mu.Unlock()
	switch {
	case status != "done":
		http.Error(w, "experiment is "+status+", not done", http.StatusConflict)
	case len(trace) == 0:
		http.Error(w, "no iotrace collected (run with \"obs\": \"trace\")", http.StatusNotFound)
	default:
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(trace)
	}
}

// expWorker is one slot of the multiplexing pool: it claims queued
// jobs and runs each as a one-config RunConcurrentObs batch, folding
// the scheduler's deterministic sched/* metrics into the daemon's sim
// registry. Workers exit when Shutdown closes the queue, after
// finishing whatever was already admitted — that is the drain.
func (s *Server) expWorker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.wall.gaugeAdd("wall/exp/queue_depth", -1)
		s.wall.gaugeAdd("wall/exp/inflight", 1)
		j.setStatus("running")
		start := time.Now()
		reg := obs.New(obs.Counters)
		results, err := s.runBatch([]experiment.Config{j.cfg}, 1, reg)
		s.sim.merge(reg)
		s.wall.observe("wall/exp/run_wall_us", latencyBuckets(),
			time.Since(start).Microseconds())
		s.wall.gaugeAdd("wall/exp/inflight", -1)

		j.mu.Lock()
		if err != nil {
			j.status = "failed"
			j.err = err.Error()
			s.wall.count("wall/exp/failed", 1)
		} else {
			res := results[0]
			j.status = "done"
			j.records = len(res.Merged)
			j.duration = res.Duration
			j.finished = res.Finished
			j.summary = experiment.Table1(map[experiment.Kind]*experiment.Result{res.Kind: res})
			j.snap = res.Obs
			if len(res.IOTrace) > 0 {
				var buf bytes.Buffer
				if werr := iotrace.WriteChrome(&buf, res.IOTrace); werr == nil {
					j.iotraceJSON = buf.Bytes()
				}
			}
			s.wall.count("wall/exp/completed", 1)
		}
		j.mu.Unlock()
	}
}
