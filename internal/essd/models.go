package essd

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"time"

	"essio/internal/model"
	"essio/internal/trace"
)

// handleModelFit fits a WorkloadModel and caches it by the content
// address of the trace it was fitted from. Two input forms:
//
//	POST /v1/models                      body is a trace stream
//	POST /v1/models?trace=sha256:...     fit a previously-ingested trace
//
// Fit parameters come from query params label, nodes, disk, band
// (essynth fit's flags). The cache is content-addressed: a refit of
// byte-identical input answers from cache (X-Essd-Cache: hit) without
// fitting, and GET /v1/models/{hash} serves the same document.
func (s *Server) handleModelFit(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	if !s.acquireIngest() {
		s.reject429(w, "model fitting")
		return
	}
	defer s.releaseIngest()
	start := time.Now()

	label := r.URL.Query().Get("label")
	if label == "" {
		label = "upload"
	}
	nodes := queryInt(r, "nodes", 0)
	disk := uint32(queryInt(r, "disk", 1024000))
	band := uint32(queryInt(r, "band", 0))

	var (
		hash string
		doc  []byte
		hit  bool
	)
	if key := r.URL.Query().Get("trace"); key != "" {
		recs, ok := s.traces.get(key)
		if !ok {
			http.Error(w, fmt.Sprintf("trace %s not in store (ingest with ?store=1 first)", key),
				http.StatusNotFound)
			return
		}
		hash = key
		if doc, hit = s.models.get(hash); !hit {
			m := model.FitSlice(label, recs, nodes, disk, band)
			var err error
			if doc, err = renderModel(m); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			doc = s.models.putIfAbsent(hash, doc)
		}
	} else {
		// One streaming pass feeds the content hasher and the fitter
		// together; the cache answers by hash once the stream ends. A
		// cache hit costs one wasted fit but never two copies of the
		// upload in memory.
		src, err := trace.NewReaderSource(r.Body, r.URL.Query().Get("format"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		fitter := model.NewFitter(label, nodes, disk, band)
		hasher := newContentHasher()
		buf := make([]trace.Record, trace.DefaultBatchLen)
		for {
			n, nerr := src.NextBatch(buf)
			if n > 0 {
				// Fitter adds never fail.
				_ = fitter.AddBatch(buf[:n])
				hasher.addBatch(buf[:n])
			}
			if nerr == io.EOF {
				break
			}
			if nerr != nil {
				http.Error(w, nerr.Error(), http.StatusBadRequest)
				return
			}
		}
		hash = hasher.sum()
		if doc, hit = s.models.get(hash); !hit {
			if doc, err = renderModel(fitter.Model()); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			doc = s.models.putIfAbsent(hash, doc)
		}
	}

	if hit {
		s.wall.count("wall/models/cache_hits", 1)
	} else {
		s.wall.count("wall/models/cache_misses", 1)
		s.wall.observe("wall/models/fit_latency_us", latencyBuckets(),
			time.Since(start).Microseconds())
	}
	writeModel(w, hash, doc, hit)
}

// handleModelGet serves a cached model document by content address.
func (s *Server) handleModelGet(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	doc, ok := s.models.get(hash)
	if !ok {
		http.Error(w, "no cached model for "+hash, http.StatusNotFound)
		return
	}
	s.wall.count("wall/models/cache_hits", 1)
	writeModel(w, hash, doc, true)
}

// renderModel serializes a fitted model exactly as esssynth fit writes
// it, so cached documents are drop-in model files.
func renderModel(m *model.WorkloadModel) ([]byte, error) {
	var b bytes.Buffer
	if err := m.WriteJSON(&b); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

func writeModel(w http.ResponseWriter, hash string, doc []byte, hit bool) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Essd-Model-Hash", hash)
	if hit {
		w.Header().Set("X-Essd-Cache", "hit")
	} else {
		w.Header().Set("X-Essd-Cache", "miss")
	}
	_, _ = w.Write(doc)
}
