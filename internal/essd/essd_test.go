package essd

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"essio/internal/characterize"
	"essio/internal/experiment"
	"essio/internal/obs"
	"essio/internal/sim"
	"essio/internal/trace"
)

// testRecords fabricates a deterministic trace with enough variety to
// exercise every characterization section: mixed ops, origins, sizes,
// sectors across bands, and non-trivial queue depths.
func testRecords(n int) []trace.Record {
	recs := make([]trace.Record, n)
	for i := range recs {
		recs[i] = trace.Record{
			Time:    sim.Time(1000 * (i + 1)),
			Sector:  uint32((i * 7919) % 1024000),
			Count:   uint16(2 + (i%8)*2),
			Pending: uint16(i % 5),
			Op:      trace.Op(i % 2),
			Node:    uint8(i % 4),
			Origin:  trace.Origin(1 + i%6),
		}
	}
	return recs
}

func encodeBinary(t *testing.T, recs []trace.Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	if err := w.AddBatch(recs); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	return buf.Bytes()
}

// lastEvent posts body to url and returns the final NDJSON event.
func lastEvent(t *testing.T, client *http.Client, url string, body io.Reader) ingestEvent {
	t.Helper()
	resp, err := client.Post(url, "application/octet-stream", body)
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	var last ingestEvent
	dec := json.NewDecoder(resp.Body)
	for {
		var ev ingestEvent
		if err := dec.Decode(&ev); err == io.EOF {
			break
		} else if err != nil {
			t.Fatalf("decode event: %v", err)
		}
		last = ev
	}
	return last
}

// TestIngestMatchesBatchCharacterization is the core round-trip: a
// streamed upload's characterization must equal the batch CLI path
// byte for byte, for both wire formats, and both must hash to the same
// content address.
func TestIngestMatchesBatchCharacterization(t *testing.T) {
	recs := testRecords(5000)
	opts := characterize.DefaultOptions()
	opts.Label = "e1"
	opts.Hist, opts.Spatial, opts.Temporal, opts.Queue, opts.Origins = true, true, true, true, true
	want, n, err := characterize.Characterize(trace.SliceSource(recs), opts)
	if err != nil {
		t.Fatalf("batch characterize: %v", err)
	}
	if n != len(recs) {
		t.Fatalf("batch characterize consumed %d records, want %d", n, len(recs))
	}

	ts := httptest.NewServer(NewServer(Config{}))
	defer ts.Close()
	url := ts.URL + "/v1/traces?label=e1&hist=1&spatial=1&temporal=1&queue=1&origins=1"

	done := lastEvent(t, ts.Client(), url, bytes.NewReader(encodeBinary(t, recs)))
	if done.Event != "done" {
		t.Fatalf("final event %q (error %q), want done", done.Event, done.Error)
	}
	if done.Records != len(recs) {
		t.Errorf("streamed %d records, want %d", done.Records, len(recs))
	}
	if done.Characterization != want {
		t.Errorf("streamed characterization diverges from batch output:\n--- streamed ---\n%s--- batch ---\n%s",
			done.Characterization, want)
	}
	if want := HashRecords(recs); done.Hash != want {
		t.Errorf("hash %s, want %s", done.Hash, want)
	}

	// The text encoding of the same records must characterize and hash
	// identically: the content address names the trace, not the format.
	var text bytes.Buffer
	if err := trace.WriteText(&text, recs); err != nil {
		t.Fatalf("write text: %v", err)
	}
	textDone := lastEvent(t, ts.Client(), url, &text)
	if textDone.Characterization != want || textDone.Hash != done.Hash {
		t.Errorf("text upload diverges: hash %s vs %s", textDone.Hash, done.Hash)
	}

	// So must the columnar encoding: the sniffer recognizes the column
	// magic, and the characterization flows through the zero-copy column
	// views — still byte-identical and content-addressed the same.
	var col bytes.Buffer
	if err := trace.WriteCol(&col, recs); err != nil {
		t.Fatalf("write col: %v", err)
	}
	colDone := lastEvent(t, ts.Client(), url, &col)
	if colDone.Event != "done" {
		t.Fatalf("columnar upload final event %q (error %q), want done", colDone.Event, colDone.Error)
	}
	if colDone.Records != len(recs) {
		t.Errorf("columnar upload streamed %d records, want %d", colDone.Records, len(recs))
	}
	if colDone.Characterization != want {
		t.Errorf("columnar upload characterization diverges from batch output:\n--- columnar ---\n%s--- batch ---\n%s",
			colDone.Characterization, want)
	}
	if colDone.Hash != done.Hash {
		t.Errorf("columnar upload hash %s, want %s", colDone.Hash, done.Hash)
	}
}

func TestIngestEmptyTrace(t *testing.T) {
	ts := httptest.NewServer(NewServer(Config{}))
	defer ts.Close()
	done := lastEvent(t, ts.Client(), ts.URL+"/v1/traces", strings.NewReader(""))
	if done.Event != "done" || done.Records != 0 {
		t.Fatalf("got event %q records %d, want done/0", done.Event, done.Records)
	}
	if done.Characterization != "empty trace\n" {
		t.Errorf("characterization %q, want empty trace", done.Characterization)
	}
}

// TestModelCacheByContentHash exercises miss → hit on re-upload, GET
// by hash, and fitting from a stored ingest without re-uploading.
func TestModelCacheByContentHash(t *testing.T) {
	recs := testRecords(2000)
	body := encodeBinary(t, recs)
	ts := httptest.NewServer(NewServer(Config{}))
	defer ts.Close()

	post := func(url string, body io.Reader) (*http.Response, []byte) {
		resp, err := ts.Client().Post(url, "application/octet-stream", body)
		if err != nil {
			t.Fatalf("post: %v", err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp, b
	}

	resp, doc := post(ts.URL+"/v1/models?label=e1", bytes.NewReader(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fit status %d: %s", resp.StatusCode, doc)
	}
	if got := resp.Header.Get("X-Essd-Cache"); got != "miss" {
		t.Errorf("first fit cache header %q, want miss", got)
	}
	hash := resp.Header.Get("X-Essd-Model-Hash")
	if want := HashRecords(recs); hash != want {
		t.Errorf("model hash %s, want %s", hash, want)
	}

	resp2, doc2 := post(ts.URL+"/v1/models?label=e1", bytes.NewReader(body))
	if got := resp2.Header.Get("X-Essd-Cache"); got != "hit" {
		t.Errorf("refit cache header %q, want hit", got)
	}
	if !bytes.Equal(doc, doc2) {
		t.Error("refit returned a different document than the cached fit")
	}

	getResp, err := ts.Client().Get(ts.URL + "/v1/models/" + hash)
	if err != nil {
		t.Fatalf("get model: %v", err)
	}
	got, _ := io.ReadAll(getResp.Body)
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusOK || !bytes.Equal(got, doc) {
		t.Errorf("GET /v1/models/%s status %d, doc match %v", hash, getResp.StatusCode, bytes.Equal(got, doc))
	}

	// Fit from a retained ingest: upload with store=1, then reference by
	// hash. Same content address → cache hit, no body needed.
	done := lastEvent(t, ts.Client(), ts.URL+"/v1/traces?store=1", bytes.NewReader(body))
	if !done.Stored {
		t.Fatalf("ingest with store=1 not stored")
	}
	resp3, doc3 := post(ts.URL+"/v1/models?trace="+done.Hash, nil)
	if resp3.StatusCode != http.StatusOK || resp3.Header.Get("X-Essd-Cache") != "hit" {
		t.Errorf("stored-trace fit: status %d cache %q, want 200/hit",
			resp3.StatusCode, resp3.Header.Get("X-Essd-Cache"))
	}
	if !bytes.Equal(doc3, doc) {
		t.Error("stored-trace fit returned a different document")
	}

	missResp, _ := post(ts.URL+"/v1/models?trace=sha256:nope", nil)
	if missResp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown stored trace: status %d, want 404", missResp.StatusCode)
	}
}

// blockingBatch returns a runBatch stub that signals each pickup on
// started and holds the worker until release is closed.
func blockingBatch(started chan string, release chan struct{}) func([]experiment.Config, int, *obs.Registry) ([]*experiment.Result, error) {
	return func(cfgs []experiment.Config, workers int, reg *obs.Registry) ([]*experiment.Result, error) {
		started <- string(cfgs[0].Kind)
		<-release
		res := make([]*experiment.Result, len(cfgs))
		for i, c := range cfgs {
			res[i] = &experiment.Result{Kind: c.Kind, Nodes: c.Nodes, Finished: true}
		}
		return res, nil
	}
}

func postExperiment(t *testing.T, ts *httptest.Server, body string) *http.Response {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/v1/experiments", "application/json",
		strings.NewReader(body))
	if err != nil {
		t.Fatalf("post experiment: %v", err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func experimentStatus(t *testing.T, ts *httptest.Server, id string) expStatus {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/experiments/" + id)
	if err != nil {
		t.Fatalf("get experiment: %v", err)
	}
	defer resp.Body.Close()
	var st expStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode status: %v", err)
	}
	return st
}

// TestExperimentAdmissionControl saturates a one-worker, depth-one
// queue and requires the next request to bounce with 429 + Retry-After
// while the admitted ones still complete correctly.
func TestExperimentAdmissionControl(t *testing.T) {
	srv := NewServer(Config{Workers: 1, QueueDepth: 1, RetryAfter: 3 * time.Second})
	started := make(chan string, 4)
	release := make(chan struct{})
	srv.runBatch = blockingBatch(started, release)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	r1 := postExperiment(t, ts, `{"kind":"baseline","small":true}`)
	if r1.StatusCode != http.StatusAccepted {
		t.Fatalf("first enqueue status %d, want 202", r1.StatusCode)
	}
	var first expStatus
	if err := json.NewDecoder(r1.Body).Decode(&first); err != nil {
		t.Fatalf("decode enqueue response: %v", err)
	}
	<-started // worker is now wedged on job 1; queue is empty

	r2 := postExperiment(t, ts, `{"kind":"ppm","small":true}`)
	if r2.StatusCode != http.StatusAccepted {
		t.Fatalf("second enqueue status %d, want 202 (queue has room)", r2.StatusCode)
	}

	r3 := postExperiment(t, ts, `{"kind":"nbody","small":true}`)
	if r3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third enqueue status %d, want 429", r3.StatusCode)
	}
	if got := r3.Header.Get("Retry-After"); got != "3" {
		t.Errorf("Retry-After %q, want 3", got)
	}

	bad := postExperiment(t, ts, `{"kind":"warp-drive"}`)
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown kind status %d, want 400", bad.StatusCode)
	}

	close(release)
	<-started // job 2 picked up
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := experimentStatus(t, ts, first.ID)
		if st.Status == "done" {
			if !st.Finished {
				t.Errorf("job %s done but finished=false", first.ID)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in status %q", first.ID, st.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestExperimentRunsRealBaseline drives the actual deterministic
// machinery end to end: enqueue a small baseline run and poll until
// its records, duration, and obs snapshot come back.
func TestExperimentRunsRealBaseline(t *testing.T) {
	ts := httptest.NewServer(NewServer(Config{Workers: 1}))
	defer ts.Close()

	resp := postExperiment(t, ts, `{"kind":"baseline","small":true,"nodes":2,"seed":7,"obs":"counters"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("enqueue status %d, want 202", resp.StatusCode)
	}
	var st expStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if st.Seed != 7 {
		t.Errorf("seed %d, want 7", st.Seed)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		got := experimentStatus(t, ts, st.ID)
		if got.Status == "done" {
			if got.Records == 0 {
				t.Error("baseline run produced zero records")
			}
			if got.Duration <= 0 {
				t.Errorf("duration %v, want > 0", got.Duration)
			}
			if got.ObsSnapshot == nil {
				t.Error("no obs snapshot on completed run")
			}
			if got.Summary == "" {
				t.Error("no summary on completed run")
			}
			break
		}
		if got.Status == "failed" {
			t.Fatalf("baseline run failed: %s", got.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("baseline run stuck in status %q", got.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}

	if resp, err := ts.Client().Get(ts.URL + "/v1/experiments/e999"); err != nil {
		t.Fatalf("get missing experiment: %v", err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("missing experiment status %d, want 404", resp.StatusCode)
		}
	}
}

// TestGracefulShutdownDrains verifies Shutdown's contract: admitted
// work finishes, new work is refused with 503, and the call returns
// once the pool is idle.
func TestGracefulShutdownDrains(t *testing.T) {
	srv := NewServer(Config{Workers: 1, QueueDepth: 4})
	started := make(chan string, 4)
	release := make(chan struct{})
	srv.runBatch = blockingBatch(started, release)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp := postExperiment(t, ts, `{"kind":"baseline","small":true}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("enqueue status %d", resp.StatusCode)
	}
	var st expStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode: %v", err)
	}
	<-started

	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- srv.Shutdown(t.Context()) }()
	for !srv.Draining() {
		time.Sleep(time.Millisecond)
	}

	if hz, err := ts.Client().Get(ts.URL + "/healthz"); err != nil {
		t.Fatalf("healthz: %v", err)
	} else {
		hz.Body.Close()
		if hz.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("draining healthz status %d, want 503", hz.StatusCode)
		}
	}
	if r := postExperiment(t, ts, `{"kind":"ppm","small":true}`); r.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post while draining status %d, want 503", r.StatusCode)
	}
	if ing, err := ts.Client().Post(ts.URL+"/v1/traces", "application/octet-stream",
		strings.NewReader("")); err != nil {
		t.Fatalf("ingest while draining: %v", err)
	} else {
		ing.Body.Close()
		if ing.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("ingest while draining status %d, want 503", ing.StatusCode)
		}
	}

	select {
	case err := <-shutdownErr:
		t.Fatalf("Shutdown returned %v before in-flight run finished", err)
	default:
	}

	close(release)
	select {
	case err := <-shutdownErr:
		if err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown did not return after drain")
	}
	if got := experimentStatus(t, ts, st.ID); got.Status != "done" {
		t.Errorf("drained job status %q, want done", got.Status)
	}
}

// TestIngestAdmissionControl holds the single upload slot open with a
// pipe and requires concurrent uploads (trace and model alike — they
// share the semaphore) to bounce with 429.
func TestIngestAdmissionControl(t *testing.T) {
	ts := httptest.NewServer(NewServer(Config{MaxIngest: 1}))
	defer ts.Close()

	pr, pw := io.Pipe()
	firstDone := make(chan ingestEvent, 1)
	go func() {
		firstDone <- lastEvent(t, ts.Client(), ts.URL+"/v1/traces", pr)
	}()

	// The slot is held once the handler is reading the pipe; until then
	// rivals may still sneak in, so poll for the first 429.
	recs := encodeBinary(t, testRecords(8))
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := ts.Client().Post(ts.URL+"/v1/models", "application/octet-stream",
			bytes.NewReader(recs))
		if err != nil {
			t.Fatalf("rival post: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			if resp.Header.Get("Retry-After") == "" {
				t.Error("429 without Retry-After")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("never saw a 429 while the upload slot was held")
		}
		time.Sleep(2 * time.Millisecond)
	}

	if _, err := pw.Write(encodeBinary(t, testRecords(4))); err != nil {
		t.Fatalf("pipe write: %v", err)
	}
	pw.Close()
	done := <-firstDone
	if done.Event != "done" || done.Records != 4 {
		t.Errorf("held upload finished with event %q records %d, want done/4", done.Event, done.Records)
	}
}

// TestMetricsExposition checks the scrape page carries both domains:
// wall/* daemon series and sched/* sim series, merged but disjoint.
func TestMetricsExposition(t *testing.T) {
	ts := httptest.NewServer(NewServer(Config{Workers: 1}))
	defer ts.Close()

	lastEvent(t, ts.Client(), ts.URL+"/v1/traces", bytes.NewReader(encodeBinary(t, testRecords(100))))
	resp := postExperiment(t, ts, `{"kind":"baseline","small":true,"nodes":2,"obs":"counters"}`)
	var st expStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode: %v", err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for experimentStatus(t, ts, st.ID).Status != "done" {
		if time.Now().After(deadline) {
			t.Fatal("experiment never completed")
		}
		time.Sleep(10 * time.Millisecond)
	}

	mresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	page := string(body)
	for _, want := range []string{
		"essio_wall_ingest_streams",
		"essio_wall_ingest_records",
		"essio_wall_http_ingest_requests",
		"essio_wall_exp_completed",
		"essio_sched_runs",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("metrics page missing %q", want)
		}
	}
	// Every series must live in exactly one domain: wall-clock metrics
	// under wall/*, deterministic scheduler metrics under sched/*.
	for _, line := range strings.Split(page, "\n") {
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		i := strings.IndexAny(line, " {")
		if i < 0 {
			t.Fatalf("unparseable metrics line %q", line)
		}
		name := line[:i]
		if !strings.HasPrefix(name, "essio_wall_") && !strings.HasPrefix(name, "essio_sched_") {
			t.Errorf("metric %q outside wall/sched domains", name)
		}
	}
}

// TestExperimentIOTraceEndpoint covers the three answers of
// GET /v1/experiments/{id}/iotrace: 409 while the run is in flight,
// 404 with a hint when the run finished without collecting a journal,
// and the Chrome trace-event JSON once a trace-level run is done.
func TestExperimentIOTraceEndpoint(t *testing.T) {
	ts := httptest.NewServer(NewServer(Config{Workers: 1}))
	defer ts.Close()

	getTrace := func(id string) (int, []byte) {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + "/v1/experiments/" + id + "/iotrace")
		if err != nil {
			t.Fatalf("get iotrace: %v", err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read iotrace body: %v", err)
		}
		return resp.StatusCode, body
	}

	if code, _ := getTrace("e999"); code != http.StatusNotFound {
		t.Errorf("unknown job iotrace status %d, want 404", code)
	}

	wait := func(id string) {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for {
			st := experimentStatus(t, ts, id)
			if st.Status == "done" {
				return
			}
			if st.Status == "failed" {
				t.Fatalf("run %s failed: %s", id, st.Error)
			}
			if time.Now().After(deadline) {
				t.Fatalf("run %s stuck in status %q", id, st.Status)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// A counters-level run finishes without a journal: 404 plus a hint.
	resp := postExperiment(t, ts, `{"kind":"baseline","small":true,"nodes":2,"obs":"counters"}`)
	var plain expStatus
	if err := json.NewDecoder(resp.Body).Decode(&plain); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if code, _ := getTrace(plain.ID); code != http.StatusConflict {
		// The run may already be done on a fast machine; both answers
		// are legal before we wait, so only the post-wait check is hard.
		_ = code
	}
	wait(plain.ID)
	code, body := getTrace(plain.ID)
	if code != http.StatusNotFound || !strings.Contains(string(body), "obs") {
		t.Errorf("counters-level run iotrace = %d %q, want 404 with obs=trace hint", code, body)
	}

	// A trace-level run serves Perfetto-loadable Chrome JSON.
	resp = postExperiment(t, ts, `{"kind":"baseline","small":true,"nodes":2,"obs":"trace"}`)
	var traced expStatus
	if err := json.NewDecoder(resp.Body).Decode(&traced); err != nil {
		t.Fatalf("decode: %v", err)
	}
	wait(traced.ID)
	code, body = getTrace(traced.ID)
	if code != http.StatusOK {
		t.Fatalf("trace-level run iotrace status %d: %s", code, body)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("iotrace body is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" || len(doc.TraceEvents) == 0 {
		t.Errorf("iotrace doc unit=%q events=%d, want ms and > 0", doc.DisplayTimeUnit, len(doc.TraceEvents))
	}
}
