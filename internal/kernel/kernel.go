// Package kernel assembles one Beowulf node: CPU, 16 MB of memory split
// between the buffer cache and the paging pool, a 500 MB IDE disk behind the
// instrumented driver, an ext2-like root filesystem, a swap partition, and
// the background daemons (update, syslogd, klogd, tracelogd) whose activity
// is the paper's quiescent baseline workload.
//
// Disk layout (absolute sectors), chosen to reproduce the paper's spatial
// characteristics:
//
//	0 ..  40,959    boot/kernel reserve (no runtime traffic)
//	40,960 .. 106,495    swap partition (32 MB; first-fit slots put the
//	                     paging hot spot near sector ~45,000, as observed)
//	106,496 .. 1,023,999 root filesystem (user programs and data allocate
//	                     first-fit from the low groups; /var/log is pinned
//	                     into the last group, so logging hits sectors just
//	                     under 1,000,000)
package kernel

import (
	"fmt"
	"math/rand"
	"strings"

	"essio/internal/blockio"
	"essio/internal/buffercache"
	"essio/internal/disk"
	"essio/internal/driver"
	"essio/internal/extfs"
	"essio/internal/iotrace"
	"essio/internal/obs"
	"essio/internal/procfs"
	"essio/internal/sim"
	"essio/internal/trace"
	"essio/internal/vfs"
	"essio/internal/vm"
)

// Config sets a node's hardware and policy parameters. Zero values take the
// defaults from DefaultConfig.
type Config struct {
	NodeID uint8

	// Seed parameterizes the node's private random stream (daemon jitter).
	// The cluster passes its experiment seed through; the stream itself is
	// derived from (Seed, NodeID), so every node draws independently and
	// identically at any shard layout.
	Seed int64

	// Hardware.
	MemoryBytes int     // total RAM (default 16 MB)
	MIPS        float64 // integer op rate (default 40 MIPS, 486DX4/100)
	MFLOPS      float64 // floating-point rate (default 4 MFLOPS)
	Disk        disk.Params

	// Memory split.
	CacheBlocks    int // buffer cache capacity in 1 KB blocks (default 2048)
	KernelReserved int // bytes reserved for the kernel itself (default 2 MB)

	// Disk layout.
	SwapStartSector uint32
	SwapSectors     uint32
	FSStartSector   uint32
	FSBlocks        uint32

	// Policy.
	Quantum            sim.Duration // CPU time slice (default 100 ms)
	UpdateInterval     sim.Duration // dirty-buffer flush period (default 7 s)
	SyslogInterval     sim.Duration // default 2.5 s
	KlogInterval       sim.Duration // default 5 s
	UtmpInterval       sim.Duration // default 5 s
	TraceFlushInterval sim.Duration // tracelogd drain period (default 2 s)
	TraceRingRecords   int          // kernel trace ring capacity (default 8192)

	// Elevator/read-ahead knobs (for ablations).
	MaxRequestSectors int          // 0 = blockio default; <0 disables merging
	PlugDelay         sim.Duration // <0 disables plugging
	ReadAheadBlocks   int          // -1 = cache default

	// DisableSelfTrace turns off the tracelogd daemon so instrumentation
	// self-traffic never reaches the disk (ablation).
	DisableSelfTrace bool

	// WriteThrough switches the buffer cache to write-through (ablation
	// against the default write-back + update-daemon policy).
	WriteThrough bool

	// ObsLevel sets the node's metric collection level (obs.Unset takes
	// the default, Counters). Switchable later through the driver ioctl —
	// see Node.SetObsLevel.
	ObsLevel obs.Level

	// TraceEvents caps the per-request I/O journal ring (0 takes
	// iotrace.DefaultCapacity). The journal only collects at obs level
	// Trace.
	TraceEvents int
}

// DefaultConfig returns the Beowulf prototype node configuration.
func DefaultConfig(nodeID uint8) Config {
	return Config{
		NodeID:             nodeID,
		MemoryBytes:        16 << 20,
		MIPS:               40,
		MFLOPS:             4,
		Disk:               disk.DefaultParams(),
		CacheBlocks:        2048,
		KernelReserved:     2 << 20,
		SwapStartSector:    40960,
		SwapSectors:        65536,
		FSStartSector:      106496,
		FSBlocks:           (1024000 - 106496) / 2,
		Quantum:            100 * sim.Millisecond,
		UpdateInterval:     7 * sim.Second,
		SyslogInterval:     2500 * sim.Millisecond,
		KlogInterval:       5 * sim.Second,
		UtmpInterval:       5 * sim.Second,
		TraceFlushInterval: 2 * sim.Second,
		TraceRingRecords:   8192,
		ReadAheadBlocks:    -1,
	}
}

// Collector is a driver sink that captures every record (the "measurement
// workstation" view: lossless, unlike the in-kernel ring).
type Collector struct {
	recs []trace.Record
	// stage observes the trace pipeline's "source" flow — every record
	// entering the analysis path from the driver. Nil records nothing.
	stage *obs.Stage
}

// Append implements driver.Sink.
func (c *Collector) Append(r trace.Record) {
	c.recs = append(c.recs, r)
	c.stage.Observe(1, trace.RecordSize)
}

// Records returns the captured trace (shared slice; callers must not
// modify).
func (c *Collector) Records() []trace.Record { return c.recs }

// Reset discards captured records.
func (c *Collector) Reset() { c.recs = nil }

// fanout duplicates driver records into several sinks.
type fanout []driver.Sink

func (f fanout) Append(r trace.Record) {
	for _, s := range f {
		s.Append(r)
	}
}

// Node is one booted cluster node.
type Node struct {
	E   *sim.Engine
	Cfg Config

	Disk      *disk.Disk
	Queue     *blockio.Queue
	Ring      *trace.Ring
	Collector *Collector
	Driver    *driver.Driver
	BC        *buffercache.Cache
	FS        *extfs.FS
	Swap      *vm.SwapArea
	Pager     *vm.Pager
	CPU       *CPU
	Proc      *procfs.FS
	// Obs is the node's metric registry: the driver, disk, buffer cache,
	// and trace collector all record into it, and its snapshot is exposed
	// through /proc ("metrics", "metrics.json") like the paper's own
	// instrumentation.
	Obs *obs.Registry
	// AppIO collects application-level (explicit) file operations from
	// user processes — the library-instrumentation view the paper
	// contrasts with its driver-level traces. Daemon I/O is system
	// activity and is deliberately not recorded here.
	AppIO *vfs.Collector
	// Journal is the node's per-request I/O event ring (obs level Trace):
	// the vfs, buffer cache, driver, and pvm layers append request-journey
	// spans into it. Merged across nodes by cluster.IOTrace.
	Journal *iotrace.Journal

	booted        *sim.Completion
	procSeq       int
	nprocs        int
	exitedWQ      *sim.WaitQueue
	framesPending int // user frame count, carried from NewNode to Boot
	// rng is the node-private random stream (daemon jitter). Seeded from
	// (Config.Seed, NodeID) rather than taken from the engine, so the
	// draw order is a node-local matter and shard layout cannot change it.
	rng *rand.Rand
	// update is the dirty-buffer flush ticker, retained so Close-time
	// accounting (and ablations) can stop the recurring closure instead of
	// leaking it into a long-running engine.
	update *sim.Ticker
}

// Rand returns the node's private deterministic random stream.
func (n *Node) Rand() *rand.Rand { return n.rng }

// NewNode wires a node's hardware and kernel structures onto engine e. Call
// Boot to format the disk and start the daemons.
func NewNode(e *sim.Engine, cfg Config) *Node {
	def := DefaultConfig(cfg.NodeID)
	if cfg.MemoryBytes == 0 {
		cfg.MemoryBytes = def.MemoryBytes
	}
	if cfg.MIPS == 0 {
		cfg.MIPS = def.MIPS
	}
	if cfg.MFLOPS == 0 {
		cfg.MFLOPS = def.MFLOPS
	}
	if cfg.Disk.Sectors == 0 {
		cfg.Disk = def.Disk
	}
	if cfg.CacheBlocks == 0 {
		cfg.CacheBlocks = def.CacheBlocks
	}
	if cfg.KernelReserved == 0 {
		cfg.KernelReserved = def.KernelReserved
	}
	if cfg.SwapSectors == 0 {
		cfg.SwapStartSector = def.SwapStartSector
		cfg.SwapSectors = def.SwapSectors
	}
	if cfg.FSBlocks == 0 {
		cfg.FSStartSector = def.FSStartSector
		cfg.FSBlocks = def.FSBlocks
	}
	if cfg.Quantum == 0 {
		cfg.Quantum = def.Quantum
	}
	if cfg.UpdateInterval == 0 {
		cfg.UpdateInterval = def.UpdateInterval
	}
	if cfg.SyslogInterval == 0 {
		cfg.SyslogInterval = def.SyslogInterval
	}
	if cfg.KlogInterval == 0 {
		cfg.KlogInterval = def.KlogInterval
	}
	if cfg.UtmpInterval == 0 {
		cfg.UtmpInterval = def.UtmpInterval
	}
	if cfg.TraceFlushInterval == 0 {
		cfg.TraceFlushInterval = def.TraceFlushInterval
	}
	if cfg.TraceRingRecords == 0 {
		cfg.TraceRingRecords = def.TraceRingRecords
	}
	if cfg.ObsLevel == obs.Unset {
		cfg.ObsLevel = obs.Counters
	}

	n := &Node{E: e, Cfg: cfg}
	// Golden-ratio mixing keeps per-node streams distinct while remaining
	// a pure function of (seed, node).
	n.rng = rand.New(rand.NewSource(int64(uint64(cfg.Seed) ^ (uint64(cfg.NodeID)+1)*0x9E3779B97F4A7C15)))
	n.Disk = disk.New(e, cfg.Disk)
	var qopts []blockio.Option
	if cfg.MaxRequestSectors < 0 {
		qopts = append(qopts, blockio.WithMaxSectors(0))
	} else if cfg.MaxRequestSectors > 0 {
		qopts = append(qopts, blockio.WithMaxSectors(cfg.MaxRequestSectors))
	}
	if cfg.PlugDelay < 0 {
		qopts = append(qopts, blockio.WithPlugDelay(0))
	} else if cfg.PlugDelay > 0 {
		qopts = append(qopts, blockio.WithPlugDelay(cfg.PlugDelay))
	}
	n.Queue = blockio.New(e, qopts...)
	n.Ring = trace.NewRing(cfg.TraceRingRecords)
	n.Collector = &Collector{}
	n.Driver = driver.New(e, n.Disk, n.Queue, cfg.NodeID, fanout{n.Ring, n.Collector})
	n.BC = buffercache.New(e, n.Queue, cfg.CacheBlocks)
	n.Obs = obs.New(cfg.ObsLevel)
	n.Driver.Instrument(n.Obs)
	n.BC.Instrument(n.Obs)
	n.Journal = iotrace.New(cfg.NodeID, n.Obs, cfg.TraceEvents)
	n.Driver.SetJournal(n.Journal)
	n.BC.SetJournal(n.Journal)
	n.Collector.stage = n.Obs.Stage("source")
	if cfg.ReadAheadBlocks >= 0 {
		n.BC.SetReadAhead(cfg.ReadAheadBlocks)
	}
	if cfg.WriteThrough {
		n.BC.SetWriteThrough(true)
	}
	n.Swap = vm.NewSwapArea(cfg.SwapStartSector, int(cfg.SwapSectors)/vm.SectorsPerPage)
	frames := (cfg.MemoryBytes - cfg.KernelReserved - cfg.CacheBlocks*buffercache.BlockSize) / vm.PageSize
	if frames < 16 {
		panic(fmt.Sprintf("kernel: only %d user frames; memory too small", frames))
	}
	// The pager's filesystem is attached during Boot (after mkfs).
	n.CPU = NewCPU(e, cfg.Quantum)
	n.Proc = procfs.New()
	n.AppIO = &vfs.Collector{}
	n.booted = sim.NewCompletion(e)
	n.exitedWQ = sim.NewWaitQueue(e)
	n.framesPending = frames
	return n
}

// Booted returns a completion that fires when the node finishes booting.
func (n *Node) Booted() *sim.Completion { return n.booted }

// Boot spawns the init process: format the filesystem, build the standard
// tree, and start the daemons. Returns the node for chaining.
func (n *Node) Boot() *Node {
	n.E.Spawn(fmt.Sprintf("node%d/init", n.Cfg.NodeID), func(p *sim.Proc) {
		if err := n.bootInit(p); err != nil {
			n.booted.CompleteErr(fmt.Errorf("node %d boot: %w", n.Cfg.NodeID, err))
			return
		}
		n.booted.Complete()
	})
	return n
}

func (n *Node) bootInit(p *sim.Proc) error {
	fs, err := extfs.Mkfs(p, n.BC, n.Cfg.FSStartSector/buffercache.SectorsPerBlock, n.Cfg.FSBlocks)
	if err != nil {
		return err
	}
	n.FS = fs
	n.Pager = vm.NewPager(n.E, n.Queue, n.BC, fs, n.framesPending, n.Swap)

	for _, dir := range []string{"/etc", "/usr", "/usr/bin", "/home", "/var", "/var/log", "/tmp"} {
		if _, err := fs.Mkdir(p, dir); err != nil {
			return err
		}
	}
	// System files: /etc at the low groups, logs pinned to the last group
	// (high sectors).
	last := fs.LastGroup()
	if _, err := fs.CreateIn(p, "/etc/utmp", 0); err != nil {
		return err
	}
	for _, f := range []string{"/var/log/messages", "/var/log/kern.log", "/var/log/iotrace"} {
		if _, err := fs.CreateIn(p, f, last); err != nil {
			return err
		}
	}
	if err := fs.Sync(p); err != nil {
		return err
	}

	n.Proc.Register("iotrace", procfs.NewTraceFile(n.Ring))
	// The request journal rides out the same way, as Chrome trace-event
	// JSON (empty journal renders as an empty traceEvents array).
	n.Proc.Register("iotrace.json", procfs.NewTextFile(func() string {
		var sb strings.Builder
		if err := iotrace.WriteChrome(&sb, n.Journal.Events()); err != nil {
			return ""
		}
		return sb.String() + "\n"
	}))
	// The node's metric snapshot rides out of the kernel the same way the
	// trace does: as proc files, in Prometheus text and JSON form.
	n.Proc.Register("metrics", procfs.NewTextFile(func() string {
		return n.Obs.Snapshot().Text()
	}))
	n.Proc.Register("metrics.json", procfs.NewTextFile(func() string {
		b, err := n.Obs.Snapshot().JSON()
		if err != nil {
			return ""
		}
		return string(b) + "\n"
	}))
	n.Proc.Register("meminfo", procfs.NewTextFile(func() string {
		return fmt.Sprintf("frames: %d free: %d resident: %d swap: %d/%d\n",
			n.Pager.Frames(), n.Pager.FreeFrames(), n.Pager.ResidentPages(),
			n.Swap.InUse(), n.Swap.Slots())
	}))

	n.startDaemons()
	return nil
}

// EnableTracing turns the driver instrumentation on at the given level via
// the ioctl path.
func (n *Node) EnableTracing(l driver.Level) {
	_, _ = n.Driver.Ioctl(driver.IoctlTraceOn, int(l))
}

// DisableTracing turns instrumentation off.
func (n *Node) DisableTracing() {
	_, _ = n.Driver.Ioctl(driver.IoctlTraceOff, 0)
}

// SetObsLevel switches the node's metric collection level through the
// driver ioctl — the same run-time knob the study used for its tracing —
// and returns the prior level.
func (n *Node) SetObsLevel(l obs.Level) obs.Level {
	prior, _ := n.Driver.Ioctl(driver.IoctlObsLevel, int(l))
	return obs.Level(prior)
}

// Trace returns all records captured by the lossless collector.
func (n *Node) Trace() []trace.Record { return n.Collector.Records() }

// ResetTrace clears the collector (e.g. after boot, before an experiment).
func (n *Node) ResetTrace() { n.Collector.Reset() }
