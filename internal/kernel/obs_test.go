package kernel

import (
	"strings"
	"testing"

	"essio/internal/driver"
	"essio/internal/obs"
	"essio/internal/sim"
)

// TestMetricsProcFiles proves the node's metric snapshot is readable
// through /proc in both exposition formats, with real boot-time I/O
// already counted.
func TestMetricsProcFiles(t *testing.T) {
	e, n := bootNode(t, DefaultConfig(0))
	e.Run(e.Now().Add(time30s))
	var text, js string
	e.Spawn("read", func(p *sim.Proc) {
		for name, out := range map[string]*string{"metrics": &text, "metrics.json": &js} {
			f, err := n.Proc.Open(name)
			if err != nil {
				t.Errorf("open %s: %v", name, err)
				return
			}
			buf := make([]byte, 1<<20)
			m, err := f.Read(p, buf)
			if err != nil {
				t.Errorf("read %s: %v", name, err)
				return
			}
			*out = string(buf[:m])
		}
	})
	e.Run(e.Now().Add(sim.Second))

	if !strings.Contains(text, "# TYPE essio_driver_requests counter") {
		t.Errorf("metrics text missing driver counter:\n%s", text)
	}
	snap, err := obs.ParseJSON(strings.NewReader(js))
	if err != nil {
		t.Fatalf("metrics.json does not parse: %v", err)
	}
	if snap.Counter("driver/requests") == 0 {
		t.Error("driver/requests = 0 after 30 s of daemon activity")
	}
	if snap.Counter("bcache/writebacks") == 0 {
		t.Error("bcache/writebacks = 0 after 30 s of daemon activity")
	}
}

const time30s = 30 * sim.Second

// TestSetObsLevelIoctl proves the ioctl path switches the live registry
// level and reports the prior one, and that Off actually stops counting.
func TestSetObsLevelIoctl(t *testing.T) {
	e, n := bootNode(t, DefaultConfig(0))
	if prior := n.SetObsLevel(obs.Off); prior != obs.Counters {
		t.Fatalf("prior level = %v, want counters (the default)", prior)
	}
	before := n.Obs.Snapshot().Counter("driver/requests")
	e.Run(e.Now().Add(time30s))
	if got := n.Obs.Snapshot().Counter("driver/requests"); got != before {
		t.Errorf("driver/requests advanced %d -> %d at level off", before, got)
	}
	if prior := n.SetObsLevel(obs.Full); prior != obs.Off {
		t.Fatalf("prior level = %v, want off", prior)
	}
	e.Run(e.Now().Add(time30s))
	if got := n.Obs.Snapshot().Counter("driver/requests"); got == before {
		t.Error("driver/requests still frozen after switching back to full")
	}
	if n.Obs.Snapshot().Hist("driver/queue_residency_us").Count == 0 {
		t.Error("no residency observations at level full")
	}
}

// TestCollectorSourceStage proves the trace pipeline's source stage counts
// exactly the records the lossless collector captured.
func TestCollectorSourceStage(t *testing.T) {
	e, n := bootNode(t, DefaultConfig(0))
	n.ResetTrace()
	n.EnableTracing(driver.LevelFull)
	e.Run(e.Now().Add(time30s))
	n.DisableTracing()
	got := n.Obs.Snapshot().Counter("pipeline/source/records")
	if want := uint64(len(n.Trace())); got != want || want == 0 {
		t.Errorf("pipeline/source/records = %d, want %d (and nonzero)", got, want)
	}
}
