package kernel

import (
	"essio/internal/sim"
)

// CPU models the node's single 486 processor: compute requests are served
// round-robin in fixed time quanta, so concurrent processes stretch each
// other's virtual run time exactly as multiprogramming stretched the paper's
// combined experiment.
type CPU struct {
	e       *sim.Engine
	quantum sim.Duration
	running bool
	queue   []*cpuJob
	busy    sim.Duration // accumulated busy time
}

type cpuJob struct {
	remaining sim.Duration
	done      *sim.Completion
}

// NewCPU returns a CPU with the given scheduling quantum.
func NewCPU(e *sim.Engine, quantum sim.Duration) *CPU {
	if quantum <= 0 {
		panic("kernel: CPU quantum must be positive")
	}
	return &CPU{e: e, quantum: quantum}
}

// Use blocks p while d of CPU time is consumed, shared round-robin with
// other users.
func (c *CPU) Use(p *sim.Proc, d sim.Duration) {
	if d <= 0 {
		return
	}
	j := &cpuJob{remaining: d, done: sim.NewCompletion(c.e)}
	c.queue = append(c.queue, j)
	c.kick()
	j.done.Wait(p)
}

// kick starts serving the head job if the CPU is idle.
func (c *CPU) kick() {
	if c.running || len(c.queue) == 0 {
		return
	}
	c.running = true
	j := c.queue[0]
	c.queue = c.queue[1:]
	slice := j.remaining
	if slice > c.quantum {
		slice = c.quantum
	}
	c.e.After(slice, func() {
		c.busy += slice
		j.remaining -= slice
		c.running = false
		if j.remaining <= 0 {
			j.done.Complete()
		} else {
			c.queue = append(c.queue, j)
		}
		c.kick()
	})
}

// BusyTime reports total CPU time consumed.
func (c *CPU) BusyTime() sim.Duration { return c.busy }

// QueueLen reports the number of waiting jobs (excluding the one running).
func (c *CPU) QueueLen() int { return len(c.queue) }
