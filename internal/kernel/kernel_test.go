package kernel

import (
	"testing"

	"essio/internal/driver"
	"essio/internal/sim"
	"essio/internal/trace"
	"essio/internal/vm"
)

// bootNode boots a default node and waits for init to finish.
func bootNode(t *testing.T, cfg Config) (*sim.Engine, *Node) {
	t.Helper()
	e := sim.NewEngine(int64(cfg.NodeID) + 1)
	t.Cleanup(e.Close)
	n := NewNode(e, cfg).Boot()
	e.Spawn("waitboot", func(p *sim.Proc) {
		if err := n.Booted().Wait(p); err != nil {
			t.Errorf("boot: %v", err)
		}
	})
	e.Run(e.Now().Add(5 * sim.Minute))
	if !n.Booted().IsComplete() {
		t.Fatal("node did not boot within 5 virtual minutes")
	}
	return e, n
}

func TestBootCreatesSystemTree(t *testing.T) {
	e, n := bootNode(t, DefaultConfig(0))
	e.Spawn("check", func(p *sim.Proc) {
		for _, path := range []string{"/etc/utmp", "/var/log/messages", "/var/log/kern.log", "/var/log/iotrace"} {
			if _, err := n.FS.Lookup(p, path); err != nil {
				t.Errorf("missing %s: %v", path, err)
			}
		}
	})
	e.Run(e.Now().Add(2 * sim.Minute))
	if n.Pager == nil || n.FS == nil {
		t.Fatal("node subsystems not initialized")
	}
}

func TestLogFilesPlacedHighUtmpLow(t *testing.T) {
	e, n := bootNode(t, DefaultConfig(0))
	var utmpSec, logSec uint32
	e.Spawn("check", func(p *sim.Proc) {
		// Force a block to exist in each file.
		inoU, _ := n.FS.Lookup(p, "/etc/utmp")
		n.FS.WriteAt(p, inoU, 0, make([]byte, 512), trace.OriginLog)
		inoL, _ := n.FS.Lookup(p, "/var/log/messages")
		n.FS.WriteAt(p, inoL, 0, make([]byte, 512), trace.OriginLog)
		utmpSec, _ = n.FS.BlockOfFile(p, inoU, 0)
		logSec, _ = n.FS.BlockOfFile(p, inoL, 0)
	})
	e.Run(e.Now().Add(2 * sim.Minute))
	if utmpSec == 0 || logSec == 0 {
		t.Fatal("files not mapped")
	}
	if utmpSec > 300000 {
		t.Fatalf("/etc/utmp at sector %d, want low", utmpSec)
	}
	if logSec < 900000 {
		t.Fatalf("/var/log/messages at sector %d, want just under 1,000,000", logSec)
	}
}

func TestBaselineIsSmallWritesAtLowAndHighSectors(t *testing.T) {
	e, n := bootNode(t, DefaultConfig(0))
	n.ResetTrace()
	n.EnableTracing(driver.LevelFull)
	start := e.Now()
	e.Run(start.Add(10 * sim.Minute))
	n.DisableTracing()
	recs := n.Trace()
	if len(recs) == 0 {
		t.Fatal("no baseline activity traced")
	}
	reads, writes, small := 0, 0, 0
	var low, high bool
	for _, r := range recs {
		if r.Op == trace.Read {
			reads++
		} else {
			writes++
		}
		if r.KB() <= 2 {
			small++
		}
		if r.Sector < 300000 {
			low = true
		}
		if r.Sector > 900000 {
			high = true
		}
	}
	if float64(writes)/float64(len(recs)) < 0.95 {
		t.Fatalf("baseline writes = %d/%d; paper reports ~100%% writes", writes, len(recs))
	}
	if float64(small)/float64(len(recs)) < 0.7 {
		t.Fatalf("small (<=2 KB) requests = %d/%d; 1 KB should dominate", small, len(recs))
	}
	if !low || !high {
		t.Fatalf("baseline sectors low=%v high=%v; want activity at both ends", low, high)
	}
	// Rate sanity: the paper measured 0.9 req/s; accept a broad band.
	rate := float64(len(recs)) / (10 * 60)
	if rate < 0.2 || rate > 5 {
		t.Fatalf("baseline rate = %.2f req/s, outside plausible band", rate)
	}
}

func TestTracelogdProducesSelfTraffic(t *testing.T) {
	e, n := bootNode(t, DefaultConfig(0))
	n.ResetTrace()
	n.EnableTracing(driver.LevelFull)
	e.Run(e.Now().Add(10 * sim.Minute))
	found := false
	for _, r := range n.Trace() {
		if r.Origin == trace.OriginTrace {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no instrumentation self-traffic; tracelogd inactive?")
	}
}

func TestDisableSelfTrace(t *testing.T) {
	cfg := DefaultConfig(0)
	cfg.DisableSelfTrace = true
	e, n := bootNode(t, cfg)
	n.ResetTrace()
	n.EnableTracing(driver.LevelFull)
	e.Run(e.Now().Add(10 * sim.Minute))
	for _, r := range n.Trace() {
		if r.Origin == trace.OriginTrace {
			t.Fatal("self-trace traffic present despite DisableSelfTrace")
		}
	}
}

func TestCPURoundRobinFairness(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Close()
	cpu := NewCPU(e, 100*sim.Millisecond)
	var aDone, bDone sim.Time
	e.Spawn("a", func(p *sim.Proc) {
		cpu.Use(p, 1*sim.Second)
		aDone = p.Now()
	})
	e.Spawn("b", func(p *sim.Proc) {
		cpu.Use(p, 1*sim.Second)
		bDone = p.Now()
	})
	e.Run(e.Now().Add(2 * sim.Minute))
	// Two 1 s jobs sharing one CPU: both finish close to 2 s, not one at
	// 1 s and the other at 2 s.
	if aDone < sim.Time(1900*sim.Millisecond) || bDone < sim.Time(1900*sim.Millisecond) {
		t.Fatalf("aDone=%v bDone=%v; round robin should interleave", aDone, bDone)
	}
	if cpu.BusyTime() != 2*sim.Second {
		t.Fatalf("BusyTime = %v", cpu.BusyTime())
	}
}

func TestCPUQuantumPanics(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for zero quantum")
		}
	}()
	NewCPU(e, 0)
}

func TestSpawnProgramPagesInAndExits(t *testing.T) {
	e, n := bootNode(t, DefaultConfig(0))
	prog := &Program{
		Name:      "hello",
		ImagePath: "/usr/bin/hello",
		TextBytes: 64 * 1024,
		DataBytes: 16 * 1024,
		Main: func(ctx *Process) {
			ctx.ComputeFlops(1e6)
			heap := ctx.Alloc("heap", 128*1024)
			if err := heap.TouchRange(ctx.P(), 0, 128*1024, true); err != nil {
				t.Error(err)
			}
		},
	}
	e.Spawn("install", func(p *sim.Proc) {
		if err := n.InstallImage(p, prog); err != nil {
			t.Errorf("install: %v", err)
		}
	})
	e.Run(e.Now().Add(2 * sim.Minute))
	n.ResetTrace()
	n.EnableTracing(driver.LevelFull)
	pr := n.Spawn(prog)
	var exitErr error
	gotExit := false
	e.Spawn("wait", func(p *sim.Proc) {
		exitErr = pr.Done().Wait(p)
		gotExit = true
	})
	e.Run(e.Now().Add(10 * sim.Minute))
	if !gotExit {
		t.Fatal("program did not exit")
	}
	if exitErr != nil {
		t.Fatalf("exit error: %v", exitErr)
	}
	if s := n.Pager.Stats(); s.FileFaults == 0 {
		t.Fatalf("no demand loading happened: %+v", s)
	}
	if n.Pager.FreeFrames() != n.Pager.Frames() {
		t.Fatalf("frames leaked: %d/%d free", n.Pager.FreeFrames(), n.Pager.Frames())
	}
}

func TestSpawnMissingImageFails(t *testing.T) {
	e, n := bootNode(t, DefaultConfig(0))
	pr := n.Spawn(&Program{
		Name: "ghost", ImagePath: "/usr/bin/ghost", TextBytes: 4096,
		Main: func(ctx *Process) {},
	})
	var exitErr error
	e.Spawn("wait", func(p *sim.Proc) { exitErr = pr.Done().Wait(p) })
	e.Run(e.Now().Add(2 * sim.Minute))
	if exitErr == nil {
		t.Fatal("want exec error for missing image")
	}
}

func TestMultiprogrammingStretchesRuntime(t *testing.T) {
	mkProg := func(name string) *Program {
		return &Program{
			Name: name, ImagePath: "/usr/bin/" + name, TextBytes: 32 * 1024,
			Main: func(ctx *Process) {
				for i := 0; i < 20; i++ {
					ctx.ComputeFlops(4e6) // 1 s of CPU at 4 MFLOPS
				}
			},
		}
	}
	runOne := func(progs ...*Program) sim.Duration {
		e, n := bootNode(t, DefaultConfig(0))
		defer e.Close()
		e.Spawn("install", func(p *sim.Proc) {
			for _, pr := range progs {
				if err := n.InstallImage(p, pr); err != nil {
					t.Errorf("install: %v", err)
				}
			}
		})
		e.Run(e.Now().Add(2 * sim.Minute))
		start := e.Now()
		var end sim.Time
		done := 0
		for _, pr := range progs {
			proc := n.Spawn(pr)
			e.Spawn("wait", func(p *sim.Proc) {
				proc.Done().Wait(p)
				done++
				if p.Now() > end {
					end = p.Now()
				}
			})
		}
		e.Run(start.Add(30 * sim.Minute))
		if done != len(progs) {
			t.Fatalf("%d/%d programs finished", done, len(progs))
		}
		return end.Sub(start)
	}
	solo := runOne(mkProg("solo"))
	duo := runOne(mkProg("a"), mkProg("b"))
	if duo < solo+solo/2 {
		t.Fatalf("solo=%v duo=%v; two CPU-bound programs should stretch each other", solo, duo)
	}
}

func TestMemInfoProcFile(t *testing.T) {
	e, n := bootNode(t, DefaultConfig(0))
	e.Spawn("read", func(p *sim.Proc) {
		f, err := n.Proc.Open("meminfo")
		if err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 256)
		m, err := f.Read(p, buf)
		if err != nil || m == 0 {
			t.Errorf("meminfo read = %d, %v", m, err)
		}
	})
	e.Run(e.Now().Add(2 * sim.Minute))
	_ = n
}

func TestHeavyPagingUsesSwapPartition(t *testing.T) {
	cfg := DefaultConfig(0)
	// Shrink memory so a modest working set thrashes: with 8 MB RAM and
	// 2 MB cache + 2 MB kernel, ~1000 user frames remain.
	cfg.MemoryBytes = 8 << 20
	e, n := bootNode(t, cfg)
	prog := &Program{
		Name: "hog", ImagePath: "/usr/bin/hog", TextBytes: 32 * 1024,
		Main: func(ctx *Process) {
			hog := ctx.Alloc("hog", 8<<20) // 2048 pages > 1000 frames
			for pass := 0; pass < 2; pass++ {
				for off := 0; off < 8<<20; off += vm.PageSize {
					if err := hog.TouchRange(ctx.P(), off, vm.PageSize, true); err != nil {
						t.Error(err)
						return
					}
					ctx.ComputeFlops(1000)
				}
			}
		},
	}
	e.Spawn("install", func(p *sim.Proc) {
		if err := n.InstallImage(p, prog); err != nil {
			t.Error(err)
		}
	})
	e.Run(e.Now().Add(2 * sim.Minute))
	n.ResetTrace()
	n.EnableTracing(driver.LevelFull)
	pr := n.Spawn(prog)
	finished := false
	e.Spawn("wait", func(p *sim.Proc) {
		if err := pr.Done().Wait(p); err != nil {
			t.Errorf("hog: %v", err)
		}
		finished = true
	})
	e.Run(e.Now().Add(60 * sim.Minute))
	if !finished {
		t.Fatal("hog did not finish")
	}
	swapSeen := false
	for _, r := range n.Trace() {
		if r.Origin == trace.OriginSwap {
			swapSeen = true
			if r.Sector < n.Cfg.SwapStartSector || r.Sector >= n.Cfg.SwapStartSector+n.Cfg.SwapSectors {
				t.Fatalf("swap I/O at sector %d outside partition", r.Sector)
			}
			if r.KB() != 4 {
				t.Fatalf("swap request %d KB, want 4", r.KB())
			}
		}
	}
	if !swapSeen {
		t.Fatal("no swap traffic under 2x overcommit")
	}
}

func TestTraceRingOverflowIsCounted(t *testing.T) {
	// A tiny kernel ring under load must drop oldest records (the real
	// transport's failure mode) while the lossless collector keeps all.
	cfg := DefaultConfig(0)
	cfg.TraceRingRecords = 8
	cfg.TraceFlushInterval = 60 * sim.Second // let the ring back up
	e, n := bootNode(t, cfg)
	n.ResetTrace()
	n.EnableTracing(driver.LevelFull)
	e.Run(e.Now().Add(3 * sim.Minute))
	collected := len(n.Trace())
	if collected <= 8 {
		t.Skipf("only %d requests; not enough load to overflow", collected)
	}
	if n.Ring.Dropped() == 0 {
		t.Fatalf("ring never dropped despite %d records through an 8-slot ring", collected)
	}
	if int(n.Ring.Total()) != collected {
		t.Fatalf("ring saw %d records, collector %d", n.Ring.Total(), collected)
	}
}

func TestIoctlThroughNode(t *testing.T) {
	e, n := bootNode(t, DefaultConfig(0))
	n.EnableTracing(driver.LevelBasic)
	if n.Driver.Level() != driver.LevelBasic {
		t.Fatalf("level = %v", n.Driver.Level())
	}
	n.DisableTracing()
	if n.Driver.Level() != driver.LevelOff {
		t.Fatalf("level = %v", n.Driver.Level())
	}
	_ = e
}

func TestProcfsListsEntries(t *testing.T) {
	_, n := bootNode(t, DefaultConfig(0))
	names := n.Proc.Names()
	want := map[string]bool{"iotrace": false, "meminfo": false}
	for _, nm := range names {
		if _, ok := want[nm]; ok {
			want[nm] = true
		}
	}
	for nm, ok := range want {
		if !ok {
			t.Fatalf("proc entry %q missing (have %v)", nm, names)
		}
	}
}

func TestBaselineDeterministicAcrossBoots(t *testing.T) {
	run := func() int {
		e := sim.NewEngine(99)
		defer e.Close()
		n := NewNode(e, DefaultConfig(0)).Boot()
		e.Run(e.Now().Add(5 * sim.Minute))
		if !n.Booted().IsComplete() {
			t.Fatal("boot timeout")
		}
		n.ResetTrace()
		n.EnableTracing(driver.LevelFull)
		e.Run(e.Now().Add(5 * sim.Minute))
		return len(n.Trace())
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("baseline records differ across identical boots: %d vs %d", a, b)
	}
}
