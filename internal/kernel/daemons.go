package kernel

import (
	"fmt"

	"essio/internal/sim"
	"essio/internal/trace"
	"essio/internal/vfs"
)

// startDaemons launches the background system activity that constitutes the
// paper's quiescent baseline: periodic dirty-buffer write-back (update),
// system logging at low and high sector numbers (syslogd/klogd/utmp), and
// the trace logger that drains /proc/iotrace to disk — the instrumentation's
// own measurable self-traffic.
func (n *Node) startDaemons() {
	name := func(d string) string { return fmt.Sprintf("node%d/%s", n.Cfg.NodeID, d) }

	// update: flush aged dirty buffers. Engine-context periodic task; the
	// ticker is retained so shutdown can stop the recurring closure.
	n.update = n.E.Every(n.Cfg.UpdateInterval, func() {
		n.BC.WritebackAll(trace.OriginMeta)
	})

	// syslogd: append short log lines to /var/log/messages (high sectors).
	n.E.Spawn(name("syslogd"), func(p *sim.Proc) {
		t := vfs.NewTable(n.FS)
		fd, err := t.Open(p, "/var/log/messages")
		if err != nil {
			return
		}
		t.SetOrigin(fd, trace.OriginLog)
		seq := 0
		for {
			jitter := sim.Duration(n.rng.Int63n(int64(n.Cfg.SyslogInterval) / 2))
			p.Sleep(n.Cfg.SyslogInterval/2 + jitter)
			seq++
			line := fmt.Sprintf("%10.3f node%d syslogd[12]: periodic status report seq=%d load ok\n",
				p.Now().Seconds(), n.Cfg.NodeID, seq)
			if _, err := t.Append(p, fd, []byte(line)); err != nil {
				return
			}
		}
	})

	// klogd: kernel messages to /var/log/kern.log (high sectors).
	n.E.Spawn(name("klogd"), func(p *sim.Proc) {
		t := vfs.NewTable(n.FS)
		fd, err := t.Open(p, "/var/log/kern.log")
		if err != nil {
			return
		}
		t.SetOrigin(fd, trace.OriginLog)
		seq := 0
		for {
			jitter := sim.Duration(n.rng.Int63n(int64(n.Cfg.KlogInterval) / 2))
			p.Sleep(n.Cfg.KlogInterval/2 + jitter)
			seq++
			line := fmt.Sprintf("%10.3f kernel: scsi/ide heartbeat %d buffers ok\n",
				p.Now().Seconds(), seq)
			if _, err := t.Append(p, fd, []byte(line)); err != nil {
				return
			}
		}
	})

	// utmp/wtmp-style bookkeeping: rewrites a fixed low-sector block, the
	// source of the baseline's low-sector horizontal line.
	n.E.Spawn(name("utmp"), func(p *sim.Proc) {
		t := vfs.NewTable(n.FS)
		fd, err := t.Open(p, "/etc/utmp")
		if err != nil {
			return
		}
		t.SetOrigin(fd, trace.OriginLog)
		rec := make([]byte, 384)
		for {
			jitter := sim.Duration(n.rng.Int63n(int64(n.Cfg.UtmpInterval) / 2))
			p.Sleep(n.Cfg.UtmpInterval/2 + jitter)
			copy(rec, fmt.Sprintf("utmp@%f", p.Now().Seconds()))
			if _, err := t.Lseek(p, fd, 0, vfs.SeekSet); err != nil {
				return
			}
			if _, err := t.Write(p, fd, rec); err != nil {
				return
			}
		}
	})

	// tracelogd: drain /proc/iotrace into /var/log/iotrace. This is the
	// study's transport path; its writes are tagged OriginTrace and are
	// themselves traced (the paper notes instrumentation logging accounts
	// for much of the measured write traffic).
	if !n.Cfg.DisableSelfTrace {
		n.E.Spawn(name("tracelogd"), func(p *sim.Proc) {
			pf, err := n.Proc.Open("iotrace")
			if err != nil {
				return
			}
			t := vfs.NewTable(n.FS)
			fd, err := t.Open(p, "/var/log/iotrace")
			if err != nil {
				return
			}
			t.SetOrigin(fd, trace.OriginTrace)
			buf := make([]byte, 512*trace.RecordSize)
			for {
				p.Sleep(n.Cfg.TraceFlushInterval)
				for {
					m, err := pf.Read(p, buf)
					if err != nil || m == 0 {
						break
					}
					if _, err := t.Append(p, fd, buf[:m]); err != nil {
						return
					}
					if m < len(buf) {
						break
					}
				}
			}
		})
	}
}
