package kernel

import (
	"fmt"

	"essio/internal/sim"
	"essio/internal/trace"
	"essio/internal/vfs"
	"essio/internal/vm"
)

// Program describes an executable to run: its on-disk image (text +
// initialized data, demand-paged) and its entry function.
type Program struct {
	Name string
	// ImagePath is the executable file; InstallImage creates it.
	ImagePath string
	// TextBytes and DataBytes are the file-backed segment sizes.
	TextBytes int
	DataBytes int
	// Main is the program body.
	Main func(ctx *Process)
}

// InstallImage writes an executable image file of the program's size into
// the filesystem (done once per node before the experiment, like copying
// binaries onto the cluster).
func (n *Node) InstallImage(p *sim.Proc, prog *Program) error {
	if prog.TextBytes <= 0 {
		return fmt.Errorf("kernel: program %q has no text", prog.Name)
	}
	ino, err := n.FS.Create(p, prog.ImagePath)
	if err != nil {
		return err
	}
	// Fill with a deterministic pattern chunk by chunk.
	chunk := make([]byte, 8192)
	for i := range chunk {
		chunk[i] = byte(i * 31)
	}
	total := prog.TextBytes + prog.DataBytes
	for off := 0; off < total; off += len(chunk) {
		m := len(chunk)
		if off+m > total {
			m = total - off
		}
		if _, err := n.FS.WriteAt(p, ino, int64(off), chunk[:m], trace.OriginData); err != nil {
			return err
		}
	}
	return n.FS.Sync(p)
}

// Process is a running user program: an address space, a descriptor table,
// and cost-model accounting against the node CPU.
type Process struct {
	node *Node
	p    *sim.Proc
	prog *Program
	AS   *vm.AddressSpace
	FD   *vfs.Table
	Text *vm.Segment
	Data *vm.Segment

	textCursor int // round-robin text page toucher
	exited     bool
	done       *sim.Completion
	err        error
}

// Spawn starts a program on the node. The returned process's Done
// completion fires at exit.
func (n *Node) Spawn(prog *Program) *Process {
	n.procSeq++
	ctx := &Process{
		node: n,
		prog: prog,
		done: sim.NewCompletion(n.E),
	}
	n.nprocs++
	n.E.Spawn(fmt.Sprintf("node%d/%s.%d", n.Cfg.NodeID, prog.Name, n.procSeq), func(p *sim.Proc) {
		ctx.p = p
		ctx.err = ctx.run()
		ctx.exited = true
		n.nprocs--
		n.exitedWQ.WakeAll()
		ctx.done.CompleteErr(ctx.err)
	})
	return ctx
}

// run sets up the address space, demand-loads the program entry, executes
// Main, and tears everything down.
func (c *Process) run() (err error) {
	n := c.node
	ino, lerr := n.FS.Lookup(c.p, c.prog.ImagePath)
	if lerr != nil {
		return fmt.Errorf("exec %s: %w", c.prog.Name, lerr)
	}
	c.AS = n.Pager.NewAddressSpace(c.prog.Name)
	c.FD = vfs.NewTable(n.FS)
	c.FD.SetTracer(n.AppIO)
	c.FD.SetJournal(n.Journal)
	c.Text = c.AS.AddFileSegment("text", ino, 0, c.prog.TextBytes)
	if c.prog.DataBytes > 0 {
		c.Data = c.AS.AddFileSegment("data", ino, int64(c.prog.TextBytes), c.prog.DataBytes)
	}
	defer func() {
		c.AS.Release(c.p)
		if r := recover(); r != nil {
			err = fmt.Errorf("process %s: %v", c.prog.Name, r)
		}
	}()
	// Demand-load the program: fault in text (and initialized data) pages
	// with a little CPU between faults, producing the early burst of 4 KB
	// paging reads the paper describes as "building the working set".
	for off := 0; off < c.prog.TextBytes; off += vm.PageSize {
		if err := c.Text.Touch(c.p, off, false); err != nil {
			return err
		}
		n.CPU.Use(c.p, 200*sim.Microsecond)
	}
	if c.Data != nil {
		for off := 0; off < c.prog.DataBytes; off += vm.PageSize {
			if err := c.Data.Touch(c.p, off, true); err != nil {
				return err
			}
			n.CPU.Use(c.p, 200*sim.Microsecond)
		}
	}
	c.prog.Main(c)
	return nil
}

// Done returns a completion firing at process exit (with its error).
func (c *Process) Done() *sim.Completion { return c.done }

// Err reports the exit error (nil while running or on clean exit).
func (c *Process) Err() error { return c.err }

// P exposes the simulated process handle.
func (c *Process) P() *sim.Proc { return c.p }

// Node returns the owning node.
func (c *Process) Node() *Node { return c.node }

// Alloc maps an anonymous data region (heap arrays).
func (c *Process) Alloc(name string, bytes int) *vm.Segment {
	return c.AS.AddAnonSegment(name, bytes)
}

// ComputeFlops consumes CPU time for n floating-point operations under the
// node's MFLOPS rating, keeping a sliver of the text working set referenced.
func (c *Process) ComputeFlops(n float64) {
	c.compute(sim.DurationOf(n / (c.node.Cfg.MFLOPS * 1e6)))
}

// ComputeOps consumes CPU time for n integer/logic operations under the
// node's MIPS rating.
func (c *Process) ComputeOps(n float64) {
	c.compute(sim.DurationOf(n / (c.node.Cfg.MIPS * 1e6)))
}

// ComputeTime consumes a raw amount of CPU time.
func (c *Process) ComputeTime(d sim.Duration) { c.compute(d) }

func (c *Process) compute(d sim.Duration) {
	if d <= 0 {
		return
	}
	// Touch the next text page round-robin so resident code keeps its
	// reference bit and instruction fetches of an evicted working set
	// fault back in, as on the real machine.
	if c.Text != nil && c.prog.TextBytes > 0 {
		off := (c.textCursor * vm.PageSize) % c.prog.TextBytes
		c.textCursor++
		if err := c.Text.Touch(c.p, off, false); err != nil {
			panic(err)
		}
	}
	c.node.CPU.Use(c.p, d)
}

// Sleep suspends the process without consuming CPU.
func (c *Process) Sleep(d sim.Duration) { c.p.Sleep(d) }

// Now reports virtual time.
func (c *Process) Now() sim.Time { return c.p.Now() }
