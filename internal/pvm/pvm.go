// Package pvm provides the message-passing library of the Beowulf
// prototype, modeled on PVM 3: tasks with task identifiers, tagged
// asynchronous sends, blocking receives with (source, tag) wildcards,
// multicast, and a barrier built from messages. Transfers ride the shared
// ethernet model, so communication time reflects serialization on the two
// 10 Mb/s rails.
package pvm

import (
	"fmt"

	"essio/internal/ethernet"
	"essio/internal/iotrace"
	"essio/internal/sim"
)

// TID identifies a task.
type TID int

// AnySource and AnyTag are receive wildcards.
const (
	AnySource TID = -1
	AnyTag    int = -1
)

// Message is a delivered message.
type Message struct {
	From    TID
	Tag     int
	Bytes   int // modeled wire size
	Payload interface{}
}

// Task is one endpoint (one rank on one node). A task's mailbox and wait
// queue live on its node's engine and are only touched from that engine's
// context (delivery closures and the task's own receives), which is what
// lets tasks on different shards exchange messages without shared locks.
type Task struct {
	sys    *System
	tid    TID
	node   int
	e      *sim.Engine
	mbox   []Message
	wq     *sim.WaitQueue
	exited bool
	idseq  int
	msgseq uint64
}

// TID returns the task identifier.
func (t *Task) TID() TID { return t.tid }

// Node returns the node index the task runs on.
func (t *Task) Node() int { return t.node }

// Engine returns the engine the task's node runs on.
func (t *Task) Engine() *sim.Engine { return t.e }

// NextID allocates a task-scoped identifier that is unique across the
// system (the task identifier forms the high bits). Services built on PVM
// (PIOUS file handles, for one) use it instead of a shared counter, which
// would be a cross-shard data race.
func (t *Task) NextID() int {
	t.idseq++
	return int(t.tid)<<16 | t.idseq
}

// System is the PVM daemon ensemble for a cluster.
type System struct {
	engineOf func(node int) *sim.Engine
	net      *ethernet.Net
	sharded  bool
	tasks    map[TID]*Task
	next     TID
	// localCost is the per-message local delivery cost used when sender
	// and receiver share a node (no wire traffic).
	localCost sim.Duration
	// journalOf maps a node index to its I/O journal (nil when tracing
	// is not wired); sends journal a net.send on the sender's node and
	// a matching net.recv on the receiver's.
	journalOf func(node int) *iotrace.Journal
}

// SetJournals wires per-node I/O journals into the message layer; nil
// detaches. The sender's journal gets an instant net.send at transmit
// time; the receiver's gets a net.recv span covering the wire (delivery
// time minus send time), both carrying the same message journey ID, so
// the critical-path extractor can cross nodes.
func (s *System) SetJournals(journalOf func(node int) *iotrace.Journal) {
	s.journalOf = journalOf
}

// New creates a PVM system over an inline network, with every node on
// engine e.
func New(e *sim.Engine, net *ethernet.Net) *System {
	return &System{
		engineOf:  func(int) *sim.Engine { return e },
		net:       net,
		tasks:     make(map[TID]*Task),
		next:      1,
		localCost: 50 * sim.Microsecond,
	}
}

// NewDistributed creates a PVM system whose nodes are spread over several
// engines of one Shards group: engineOf maps a node index to its engine,
// and remote transfers ride net.Transmit so rail reservations happen at
// window barriers. Enroll must only be called from coordinator context
// (between Shards.Run windows), never from a running process.
func NewDistributed(engineOf func(node int) *sim.Engine, net *ethernet.Net) *System {
	return &System{
		engineOf:  engineOf,
		net:       net,
		sharded:   true,
		tasks:     make(map[TID]*Task),
		next:      1,
		localCost: 50 * sim.Microsecond,
	}
}

// Enroll registers a new task on a node (pvm_mytid). Coordinator/setup
// context only in distributed systems: the task map is read without locks
// from every shard during windows.
func (s *System) Enroll(node int) *Task {
	e := s.engineOf(node)
	t := &Task{sys: s, tid: s.next, node: node, e: e, wq: sim.NewWaitQueue(e)}
	s.next++
	s.tasks[t.tid] = t
	return t
}

// Exit retires a task (pvm_exit): later deliveries to it are dropped. The
// task map itself is append-only — the flag lives on the task and is only
// touched from its own engine, so an exit on one shard never races a send
// from another.
func (s *System) Exit(t *Task) {
	t.exited = true
}

// Tasks reports the number of live (enrolled, not exited) tasks.
func (s *System) Tasks() int {
	n := 0
	for _, t := range s.tasks {
		if !t.exited {
			n++
		}
	}
	return n
}

// Send transmits asynchronously (pvm_send): the payload is buffered and the
// sender continues; delivery happens after the modeled network delay. The
// delivery closure runs on the destination node's engine and checks the
// exit flag there, so sends to just-exited tasks are dropped identically
// at any shard count.
func (s *System) Send(from *Task, to TID, tag int, bytes int, payload interface{}) error {
	dst, ok := s.tasks[to]
	if !ok {
		return fmt.Errorf("pvm: send to unknown tid %d", to)
	}
	msg := Message{From: from.tid, Tag: tag, Bytes: bytes, Payload: payload}
	// Journal the send on the sender's node. The message journey ID is
	// minted from a sender-task counter (engine-serialized, so
	// deterministic at any shard count) in the message namespace.
	var msgID uint64
	var sentAt sim.Time
	if s.journalOf != nil {
		if j := s.journalOf(from.node); j.Enabled() {
			from.msgseq++
			msgID = iotrace.MsgIDBit | uint64(from.tid)<<32 | from.msgseq
			sentAt = from.e.Now()
			j.Add(sentAt, 0, iotrace.StageNetSend, msgID, int64(bytes))
		}
	}
	deliver := func() {
		if dst.exited {
			return
		}
		if msgID != 0 {
			if j := s.journalOf(dst.node); j.Enabled() {
				j.Add(dst.e.Now(), dst.e.Now().Sub(sentAt), iotrace.StageNetRecv, msgID, int64(bytes))
			}
		}
		dst.mbox = append(dst.mbox, msg)
		dst.wq.WakeAll()
	}
	if dst.node == from.node {
		dst.e.After(s.localCost, deliver)
		return nil
	}
	if !s.sharded {
		_, err := s.net.Send(bytes+64, deliver) // +64 for PVM header
		return err
	}
	return s.net.Transmit(from.e, from.node, dst.e, bytes+64, deliver)
}

// Mcast sends to several destinations (pvm_mcast).
func (s *System) Mcast(from *Task, tos []TID, tag int, bytes int, payload interface{}) error {
	for _, to := range tos {
		if to == from.tid {
			continue
		}
		if err := s.Send(from, to, tag, bytes, payload); err != nil {
			return err
		}
	}
	return nil
}

// Recv blocks until a message matching (src, tag) arrives (pvm_recv).
// Wildcards: AnySource, AnyTag.
func (s *System) Recv(p *sim.Proc, t *Task, src TID, tag int) Message {
	for {
		for i, m := range t.mbox {
			if (src == AnySource || m.From == src) && (tag == AnyTag || m.Tag == tag) {
				t.mbox = append(t.mbox[:i], t.mbox[i+1:]...)
				return m
			}
		}
		t.wq.Sleep(p)
	}
}

// TryRecv is the non-blocking probe-and-receive (pvm_nrecv). ok reports
// whether a message was returned.
func (s *System) TryRecv(t *Task, src TID, tag int) (Message, bool) {
	for i, m := range t.mbox {
		if (src == AnySource || m.From == src) && (tag == AnyTag || m.Tag == tag) {
			t.mbox = append(t.mbox[:i], t.mbox[i+1:]...)
			return m, true
		}
	}
	return Message{}, false
}

// Group is a static task group used for barriers and exchanges.
type Group struct {
	sys     *System
	members []*Task
}

// NewGroup forms a group from tasks; member order defines ranks.
func (s *System) NewGroup(members []*Task) *Group {
	return &Group{sys: s, members: members}
}

// Size reports the group size.
func (g *Group) Size() int { return len(g.members) }

// Rank returns t's rank within the group, or -1.
func (g *Group) Rank(t *Task) int {
	for i, m := range g.members {
		if m == t {
			return i
		}
	}
	return -1
}

// Member returns the task at a rank.
func (g *Group) Member(rank int) *Task { return g.members[rank] }

// barrier tags (reserved high values).
const (
	tagBarrierArrive  = 1<<30 + 1
	tagBarrierRelease = 1<<30 + 2
)

// Barrier blocks t until every group member arrives (pvm_barrier): members
// report to rank 0, which then multicasts the release.
func (g *Group) Barrier(p *sim.Proc, t *Task) error {
	rank := g.Rank(t)
	if rank < 0 {
		return fmt.Errorf("pvm: task %d not in group", t.tid)
	}
	root := g.members[0]
	if rank == 0 {
		for i := 1; i < len(g.members); i++ {
			g.sys.Recv(p, t, AnySource, tagBarrierArrive)
		}
		tos := make([]TID, 0, len(g.members)-1)
		for _, m := range g.members[1:] {
			tos = append(tos, m.tid)
		}
		return g.sys.Mcast(t, tos, tagBarrierRelease, 8, nil)
	}
	if err := g.sys.Send(t, root.tid, tagBarrierArrive, 8, nil); err != nil {
		return err
	}
	g.sys.Recv(p, t, root.tid, tagBarrierRelease)
	return nil
}
