package pvm

import (
	"testing"

	"essio/internal/ethernet"
	"essio/internal/sim"
)

func newSys(t *testing.T) (*sim.Engine, *System) {
	t.Helper()
	e := sim.NewEngine(1)
	t.Cleanup(e.Close)
	return e, New(e, ethernet.New(e, ethernet.DefaultParams()))
}

func TestSendRecvAcrossNodes(t *testing.T) {
	e, s := newSys(t)
	a := s.Enroll(0)
	b := s.Enroll(1)
	var got Message
	var when sim.Time
	e.Spawn("recv", func(p *sim.Proc) {
		got = s.Recv(p, b, a.TID(), 7)
		when = p.Now()
	})
	e.Spawn("send", func(p *sim.Proc) {
		if err := s.Send(a, b.TID(), 7, 5000, "payload"); err != nil {
			t.Error(err)
		}
	})
	e.RunUntilIdle()
	if got.Payload != "payload" || got.From != a.TID() || got.Tag != 7 {
		t.Fatalf("got %+v", got)
	}
	if when <= 0 {
		t.Fatal("cross-node message arrived instantly")
	}
}

func TestLocalDeliveryFasterThanRemote(t *testing.T) {
	e, s := newSys(t)
	a := s.Enroll(0)
	local := s.Enroll(0)
	remote := s.Enroll(1)
	var tLocal, tRemote sim.Time
	e.Spawn("rl", func(p *sim.Proc) {
		s.Recv(p, local, AnySource, AnyTag)
		tLocal = p.Now()
	})
	e.Spawn("rr", func(p *sim.Proc) {
		s.Recv(p, remote, AnySource, AnyTag)
		tRemote = p.Now()
	})
	e.Spawn("send", func(p *sim.Proc) {
		s.Send(a, local.TID(), 1, 5000, nil)
		s.Send(a, remote.TID(), 1, 5000, nil)
	})
	e.RunUntilIdle()
	if tLocal >= tRemote {
		t.Fatalf("local %v not faster than remote %v", tLocal, tRemote)
	}
}

func TestRecvFiltersBySourceAndTag(t *testing.T) {
	e, s := newSys(t)
	a := s.Enroll(0)
	b := s.Enroll(1)
	c := s.Enroll(2)
	var order []string
	e.Spawn("recv", func(p *sim.Proc) {
		m := s.Recv(p, c, b.TID(), AnyTag) // must skip a's earlier message
		order = append(order, m.Payload.(string))
		m = s.Recv(p, c, AnySource, 9)
		order = append(order, m.Payload.(string))
	})
	e.Spawn("send", func(p *sim.Proc) {
		s.Send(a, c.TID(), 9, 100, "from-a")
		p.Sleep(10 * sim.Millisecond)
		s.Send(b, c.TID(), 5, 100, "from-b")
	})
	e.RunUntilIdle()
	if len(order) != 2 || order[0] != "from-b" || order[1] != "from-a" {
		t.Fatalf("order = %v", order)
	}
}

func TestTryRecv(t *testing.T) {
	e, s := newSys(t)
	a := s.Enroll(0)
	b := s.Enroll(1)
	if _, ok := s.TryRecv(b, AnySource, AnyTag); ok {
		t.Fatal("TryRecv on empty mailbox succeeded")
	}
	e.Spawn("send", func(p *sim.Proc) {
		s.Send(a, b.TID(), 1, 10, 42)
	})
	e.RunUntilIdle()
	m, ok := s.TryRecv(b, AnySource, AnyTag)
	if !ok || m.Payload != 42 {
		t.Fatalf("TryRecv = %+v, %v", m, ok)
	}
}

func TestSendToUnknownTask(t *testing.T) {
	_, s := newSys(t)
	a := s.Enroll(0)
	if err := s.Send(a, TID(999), 0, 10, nil); err == nil {
		t.Fatal("want error for unknown tid")
	}
}

func TestMcastReachesAllButSelf(t *testing.T) {
	e, s := newSys(t)
	tasks := make([]*Task, 4)
	tids := make([]TID, 4)
	for i := range tasks {
		tasks[i] = s.Enroll(i)
		tids[i] = tasks[i].TID()
	}
	got := 0
	for _, tk := range tasks[1:] {
		tk := tk
		e.Spawn("r", func(p *sim.Proc) {
			s.Recv(p, tk, AnySource, 3)
			got++
		})
	}
	e.Spawn("send", func(p *sim.Proc) {
		if err := s.Mcast(tasks[0], tids, 3, 100, nil); err != nil {
			t.Error(err)
		}
	})
	e.RunUntilIdle()
	if got != 3 {
		t.Fatalf("mcast reached %d, want 3", got)
	}
	if len(tasks[0].mbox) != 0 {
		t.Fatal("mcast delivered to sender")
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	e, s := newSys(t)
	const n = 5
	tasks := make([]*Task, n)
	for i := range tasks {
		tasks[i] = s.Enroll(i % 3)
	}
	g := s.NewGroup(tasks)
	if g.Size() != n {
		t.Fatalf("Size = %d", g.Size())
	}
	var releases []sim.Time
	var lastArrive sim.Time
	for i, tk := range tasks {
		i, tk := i, tk
		e.Spawn("m", func(p *sim.Proc) {
			p.Sleep(sim.Duration(i+1) * 100 * sim.Millisecond)
			if p.Now() > lastArrive {
				lastArrive = p.Now()
			}
			if err := g.Barrier(p, tk); err != nil {
				t.Error(err)
				return
			}
			releases = append(releases, p.Now())
		})
	}
	e.RunUntilIdle()
	if len(releases) != n {
		t.Fatalf("%d released", len(releases))
	}
	for _, r := range releases {
		if r < lastArrive {
			t.Fatalf("release at %v before last arrival %v", r, lastArrive)
		}
	}
}

func TestBarrierRepeats(t *testing.T) {
	e, s := newSys(t)
	tasks := []*Task{s.Enroll(0), s.Enroll(1)}
	g := s.NewGroup(tasks)
	rounds := 0
	for _, tk := range tasks {
		tk := tk
		e.Spawn("m", func(p *sim.Proc) {
			for r := 0; r < 3; r++ {
				if err := g.Barrier(p, tk); err != nil {
					t.Error(err)
					return
				}
			}
			rounds++
		})
	}
	e.RunUntilIdle()
	if rounds != 2 {
		t.Fatalf("rounds = %d", rounds)
	}
}

func TestBarrierNonMember(t *testing.T) {
	e, s := newSys(t)
	g := s.NewGroup([]*Task{s.Enroll(0)})
	outsider := s.Enroll(1)
	var err error
	e.Spawn("o", func(p *sim.Proc) {
		err = g.Barrier(p, outsider)
	})
	e.RunUntilIdle()
	if err == nil {
		t.Fatal("want error for non-member barrier")
	}
}

func TestExitRemovesTask(t *testing.T) {
	_, s := newSys(t)
	a := s.Enroll(0)
	if s.Tasks() != 1 {
		t.Fatal("enroll failed")
	}
	s.Exit(a)
	if s.Tasks() != 0 {
		t.Fatal("exit failed")
	}
}

func TestGroupRankAndMember(t *testing.T) {
	_, s := newSys(t)
	a, b := s.Enroll(0), s.Enroll(1)
	g := s.NewGroup([]*Task{a, b})
	if g.Rank(a) != 0 || g.Rank(b) != 1 {
		t.Fatal("ranks wrong")
	}
	if g.Member(1) != b {
		t.Fatal("member wrong")
	}
	if g.Rank(s.Enroll(2)) != -1 {
		t.Fatal("outsider rank should be -1")
	}
}
