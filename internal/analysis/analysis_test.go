package analysis

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"essio/internal/sim"
	"essio/internal/trace"
)

func mkRecs(n int) []trace.Record {
	rng := rand.New(rand.NewSource(2))
	recs := make([]trace.Record, n)
	for i := range recs {
		recs[i] = trace.Record{
			Time:   sim.Time(i) * sim.Time(sim.Second),
			Sector: rng.Uint32() % 1024000,
			Count:  uint16(2 * (rng.Intn(16) + 1)),
			Op:     trace.Op(rng.Intn(2)),
			Node:   uint8(rng.Intn(4)),
			Origin: trace.Origin(rng.Intn(7)),
		}
	}
	return recs
}

func TestSummarize(t *testing.T) {
	recs := []trace.Record{
		{Op: trace.Read}, {Op: trace.Write}, {Op: trace.Write}, {Op: trace.Write},
	}
	s := Summarize("x", recs, 10*sim.Second, 2)
	if s.Reads != 1 || s.Writes != 3 {
		t.Fatalf("reads/writes = %d/%d", s.Reads, s.Writes)
	}
	if s.ReadPct != 25 || s.WritePct != 75 {
		t.Fatalf("pcts = %v/%v", s.ReadPct, s.WritePct)
	}
	if s.TotalPerDisk != 2 {
		t.Fatalf("TotalPerDisk = %v", s.TotalPerDisk)
	}
	if s.ReqPerSec != 0.2 {
		t.Fatalf("ReqPerSec = %v", s.ReqPerSec)
	}
	if s.String() == "" {
		t.Fatal("empty string form")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize("empty", nil, 0, 0)
	if s.ReadPct != 0 || s.ReqPerSec != 0 {
		t.Fatalf("%+v", s)
	}
}

func TestSeriesStartAtZero(t *testing.T) {
	recs := []trace.Record{
		{Time: sim.Time(5 * sim.Second), Sector: 100, Count: 2},
		{Time: sim.Time(7 * sim.Second), Sector: 200, Count: 8},
	}
	ss := SizeSeries(recs)
	if len(ss) != 2 || ss[0].T != 0 || ss[1].T != 2 {
		t.Fatalf("size series = %v", ss)
	}
	if ss[0].V != 1 || ss[1].V != 4 {
		t.Fatalf("sizes = %v", ss)
	}
	sec := SectorSeries(recs)
	if sec[1].V != 200 {
		t.Fatalf("sector series = %v", sec)
	}
	if SizeSeries(nil) != nil || SectorSeries(nil) != nil {
		t.Fatal("empty input must give nil")
	}
}

func TestSizeHistogramAndClasses(t *testing.T) {
	recs := []trace.Record{
		{Count: 2}, {Count: 2}, {Count: 8}, {Count: 32}, {Count: 6},
	}
	h := SizeHistogram(recs)
	if h[1] != 2 || h[4] != 1 || h[16] != 1 || h[3] != 1 {
		t.Fatalf("hist = %v", h)
	}
	c := ClassifySizes(recs)
	if c.Block1K != 2 || c.Page4K != 1 || c.Large != 1 || c.Other != 1 {
		t.Fatalf("classes = %+v", c)
	}
}

func TestSpatialBandsSumTo100(t *testing.T) {
	recs := mkRecs(500)
	bands := SpatialBands(recs, 100000, 1024000)
	if len(bands) != 11 {
		t.Fatalf("bands = %d", len(bands))
	}
	var pct float64
	count := 0
	for _, b := range bands {
		pct += b.Pct
		count += b.Count
	}
	if math.Abs(pct-100) > 1e-9 {
		t.Fatalf("percentages sum to %v", pct)
	}
	if count != 500 {
		t.Fatalf("counts sum to %d", count)
	}
}

func TestQuickBandsConserveCounts(t *testing.T) {
	f := func(sectors []uint32) bool {
		recs := make([]trace.Record, len(sectors))
		for i, s := range sectors {
			recs[i] = trace.Record{Sector: s % 1024000}
		}
		bands := SpatialBands(recs, 100000, 1024000)
		total := 0
		for _, b := range bands {
			total += b.Count
		}
		return total == len(recs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPareto(t *testing.T) {
	// 90 requests in one band, 10 spread across nine others.
	bands := make([]Band, 10)
	bands[0].Count = 90
	for i := 1; i < 10; i++ {
		bands[i].Count = 1
	}
	// Wait: 90+9 = 99; 80% = 79.2 <= 90, so one band suffices.
	frac := Pareto(bands, 0.8)
	if frac != 0.1 {
		t.Fatalf("Pareto = %v, want 0.1", frac)
	}
	if Pareto(make([]Band, 5), 0.8) != 0 {
		t.Fatal("empty bands should report 0")
	}
	// Uniform traffic: 80% of traffic needs 80% of bands.
	uni := make([]Band, 10)
	for i := range uni {
		uni[i].Count = 10
	}
	if f := Pareto(uni, 0.8); f != 0.8 {
		t.Fatalf("uniform Pareto = %v", f)
	}
}

func TestTemporalHeatAndHottest(t *testing.T) {
	recs := []trace.Record{
		{Sector: 100, Time: 0}, {Sector: 100, Time: 1}, {Sector: 100, Time: 2},
		{Sector: 500, Time: 3}, {Sector: 500, Time: 4},
		{Sector: 900, Time: 5},
	}
	heat := TemporalHeat(recs, 10*sim.Second)
	if len(heat) != 3 {
		t.Fatalf("heat = %v", heat)
	}
	// Sorted by sector.
	if heat[0].Sector != 100 || heat[2].Sector != 900 {
		t.Fatalf("heat order = %v", heat)
	}
	if heat[0].PerSec != 0.3 {
		t.Fatalf("PerSec = %v", heat[0].PerSec)
	}
	hot := Hottest(heat, 2)
	if hot[0].Sector != 100 || hot[1].Sector != 500 {
		t.Fatalf("hottest = %v", hot)
	}
	if len(Hottest(heat, 99)) != 3 {
		t.Fatal("Hottest must clamp k")
	}
}

func TestInterAccess(t *testing.T) {
	recs := []trace.Record{
		{Sector: 10, Time: 0},
		{Sector: 10, Time: sim.Time(4 * sim.Second)},
		{Sector: 10, Time: sim.Time(6 * sim.Second)},
		{Sector: 99, Time: sim.Time(1 * sim.Second)},
	}
	mean, sectors := InterAccess(recs)
	// Gaps: 4s and 2s -> mean 3s; one revisited sector.
	if mean != 3*sim.Second || sectors != 1 {
		t.Fatalf("mean = %v sectors = %d", mean, sectors)
	}
	if m, s := InterAccess(nil); m != 0 || s != 0 {
		t.Fatal("empty InterAccess")
	}
}

func TestWindowAndFilters(t *testing.T) {
	recs := mkRecs(100)
	w := Window(recs, sim.Time(10*sim.Second), sim.Time(20*sim.Second))
	for _, r := range w {
		if r.Time < sim.Time(10*sim.Second) || r.Time >= sim.Time(20*sim.Second) {
			t.Fatalf("record %v outside window", r)
		}
	}
	if len(w) != 10 {
		t.Fatalf("window has %d records", len(w))
	}
	reads := FilterOp(recs, trace.Read)
	writes := FilterOp(recs, trace.Write)
	if len(reads)+len(writes) != len(recs) {
		t.Fatal("op filter lost records")
	}
	n0 := FilterNode(recs, 0)
	for _, r := range n0 {
		if r.Node != 0 {
			t.Fatal("node filter leaked")
		}
	}
}

func TestRatePerSecond(t *testing.T) {
	recs := []trace.Record{
		{Time: 0}, {Time: sim.Time(100 * sim.Millisecond)},
		{Time: sim.Time(2 * sim.Second)},
	}
	pts := RatePerSecond(recs)
	if len(pts) != 3 {
		t.Fatalf("pts = %v", pts)
	}
	if pts[0].V != 2 || pts[1].V != 0 || pts[2].V != 1 {
		t.Fatalf("rates = %v", pts)
	}
	if RatePerSecond(nil) != nil {
		t.Fatal("empty rate")
	}
}

func TestOriginBreakdown(t *testing.T) {
	recs := []trace.Record{
		{Origin: trace.OriginSwap}, {Origin: trace.OriginSwap}, {Origin: trace.OriginLog},
	}
	m := OriginBreakdown(recs)
	if m[trace.OriginSwap] != 2 || m[trace.OriginLog] != 1 {
		t.Fatalf("breakdown = %v", m)
	}
}

func TestSpatialBandsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for zero band width")
		}
	}()
	SpatialBands(nil, 0, 100)
}

func TestPendingStats(t *testing.T) {
	recs := []trace.Record{
		{Pending: 0}, {Pending: 3}, {Pending: 1}, {Pending: 0},
	}
	q := PendingStats(recs)
	if q.MeanPending != 1.0 || q.MaxPending != 3 || q.BusyFrac != 0.5 {
		t.Fatalf("QueueStats = %+v", q)
	}
	if z := PendingStats(nil); z.MeanPending != 0 || z.MaxPending != 0 {
		t.Fatalf("empty = %+v", z)
	}
}
