// Package analysis computes the workload-characterization metrics of the
// study from driver traces: read/write mix and request rates (Table 1),
// request-size and sector time series (Figures 1–6), spatial locality as
// percentage of requests per sector band (Figure 7), and temporal locality
// as per-sector access frequency (Figure 8).
package analysis

import (
	"fmt"
	"sort"

	"essio/internal/sim"
	"essio/internal/trace"
)

// Summary is one row of the paper's Table 1.
type Summary struct {
	Label    string
	Nodes    int
	Duration sim.Duration
	Reads    int
	Writes   int
	// ReadPct and WritePct are percentages of total requests.
	ReadPct  float64
	WritePct float64
	// ReqPerSec is the average request rate per disk.
	ReqPerSec float64
	// TotalPerDisk is the average number of requests per disk.
	TotalPerDisk float64
}

// Summarize builds a Table 1 row from a merged multi-node trace. It is
// the batch form of the streaming SummaryAcc.
func Summarize(label string, recs []trace.Record, duration sim.Duration, nodes int) Summary {
	a := NewSummaryAcc(label, duration, nodes)
	feed(a, recs)
	return a.Summary()
}

// feed pushes a slice through a sink; accumulators never fail.
func feed(s trace.Sink, recs []trace.Record) {
	for _, r := range recs {
		if err := s.Add(r); err != nil {
			panic("analysis: accumulator failed: " + err.Error())
		}
	}
}

func (s Summary) String() string {
	return fmt.Sprintf("%-10s reads %5.1f%%  writes %5.1f%%  %7.2f req/s  %9.0f total (avg/disk, %d nodes, %.0fs)",
		s.Label, s.ReadPct, s.WritePct, s.ReqPerSec, s.TotalPerDisk, s.Nodes, s.Duration.Seconds())
}

// Point is one (time, value) observation.
type Point struct {
	T float64 // seconds since trace start
	V float64
}

// SizeSeries extracts the request-size-vs-time scatter (Figures 2–5): one
// point per request, value in KB.
func SizeSeries(recs []trace.Record) []Point {
	if len(recs) == 0 {
		return nil
	}
	t0 := recs[0].Time
	out := make([]Point, len(recs))
	for i, r := range recs {
		out[i] = Point{T: r.Time.Sub(t0).Seconds(), V: float64(r.KB())}
	}
	return out
}

// SectorSeries extracts the sector-vs-time scatter (Figures 1 and 6).
func SectorSeries(recs []trace.Record) []Point {
	if len(recs) == 0 {
		return nil
	}
	t0 := recs[0].Time
	out := make([]Point, len(recs))
	for i, r := range recs {
		out[i] = Point{T: r.Time.Sub(t0).Seconds(), V: float64(r.Sector)}
	}
	return out
}

// SizeHistogram counts requests per KB size class. It is the batch form
// of the streaming SizeHistAcc.
func SizeHistogram(recs []trace.Record) map[int]int {
	a := NewSizeHistAcc()
	feed(a, recs)
	return a.Histogram()
}

// SizeClasses buckets requests into the paper's three primary categories
// plus a residual: 1 KB block I/O, 4 KB paging, >=8 KB large/streaming, and
// other.
type SizeClasses struct {
	Block1K int
	Page4K  int
	Large   int // >= 8 KB (16/32 KB cache-scale requests and up)
	Other   int
}

// ClassifySizes computes the size-class split. It is the batch form of
// the streaming SizeClassAcc.
func ClassifySizes(recs []trace.Record) SizeClasses {
	a := NewSizeClassAcc()
	feed(a, recs)
	return a.Classes()
}

// OriginBreakdown counts requests per ground-truth origin, used to validate
// the size-based inference. It is the batch form of the streaming
// OriginAcc.
func OriginBreakdown(recs []trace.Record) map[trace.Origin]int {
	a := NewOriginAcc()
	feed(a, recs)
	return a.Breakdown()
}

// Band is one spatial-locality bucket (Figure 7).
type Band struct {
	Lo, Hi uint32 // sector range [Lo, Hi)
	Count  int
	Pct    float64
}

// SpatialBands buckets requests into fixed-width sector bands over the
// whole disk (the paper uses 100 K-sector bands on a ~1 M-sector disk).
// It is the batch form of the streaming BandsAcc.
func SpatialBands(recs []trace.Record, bandSectors, diskSectors uint32) []Band {
	a := NewBandsAcc(bandSectors, diskSectors)
	feed(a, recs)
	return a.Bands()
}

// Pareto reports the smallest fraction of bands that carries the given
// fraction of requests — the "80/20 rule" check the paper makes on spatial
// locality.
func Pareto(bands []Band, trafficFrac float64) (bandFrac float64) {
	sorted := append([]Band(nil), bands...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Count > sorted[j].Count })
	total := 0
	for _, b := range sorted {
		total += b.Count
	}
	if total == 0 {
		return 0
	}
	need := trafficFrac * float64(total)
	acc := 0.0
	for i, b := range sorted {
		acc += float64(b.Count)
		if acc >= need {
			return float64(i+1) / float64(len(sorted))
		}
	}
	return 1
}

// Heat is per-sector access frequency (Figure 8).
type Heat struct {
	Sector uint32
	PerSec float64
	Count  int
}

// TemporalHeat computes access frequency per starting sector, averaged over
// the run, exactly as the paper presents temporal locality. It is the
// batch form of the streaming HeatAcc.
func TemporalHeat(recs []trace.Record, duration sim.Duration) []Heat {
	a := NewHeatAcc()
	feed(a, recs)
	return a.Heat(duration)
}

// heatFromCounts finalizes a per-sector count map into the sorted Heat
// slice both TemporalHeat and HeatAcc return.
func heatFromCounts(counts map[uint32]int, duration sim.Duration) []Heat {
	out := make([]Heat, 0, len(counts))
	secs := duration.Seconds()
	for sec, c := range counts {
		h := Heat{Sector: sec, Count: c}
		if secs > 0 {
			h.PerSec = float64(c) / secs
		}
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Sector < out[j].Sector })
	return out
}

// Hottest returns the k most frequently accessed sectors, most frequent
// first (ties broken by lower sector).
func Hottest(heat []Heat, k int) []Heat {
	sorted := append([]Heat(nil), heat...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Count != sorted[j].Count {
			return sorted[i].Count > sorted[j].Count
		}
		return sorted[i].Sector < sorted[j].Sector
	})
	if k > len(sorted) {
		k = len(sorted)
	}
	return sorted[:k]
}

// InterAccess computes the mean time between consecutive accesses to the
// same sector, over sectors accessed at least twice (the paper's "average
// time between consecutive accesses to the same sector" metric).
func InterAccess(recs []trace.Record) (mean sim.Duration, sectors int) {
	a := NewInterAccessAcc()
	feed(a, recs)
	return a.Result()
}

// Window restricts a trace to records in [from, to).
func Window(recs []trace.Record, from, to sim.Time) []trace.Record {
	var out []trace.Record
	for _, r := range recs {
		if r.Time >= from && r.Time < to {
			out = append(out, r)
		}
	}
	return out
}

// FilterOp keeps only records with the given op.
func FilterOp(recs []trace.Record, op trace.Op) []trace.Record {
	var out []trace.Record
	for _, r := range recs {
		if r.Op == op {
			out = append(out, r)
		}
	}
	return out
}

// FilterNode keeps only one node's records.
func FilterNode(recs []trace.Record, node uint8) []trace.Record {
	var out []trace.Record
	for _, r := range recs {
		if r.Node == node {
			out = append(out, r)
		}
	}
	return out
}

// RatePerSecond buckets requests into 1-second bins (activity profiles).
// It is the batch form of the streaming RateAcc.
func RatePerSecond(recs []trace.Record) []Point {
	a := NewRateAcc()
	feed(a, recs)
	return a.Points()
}

// QueueStats summarizes the driver-queue depth the instrumentation records
// with every request (the paper's "count of the remaining I/O requests to
// be processed").
type QueueStats struct {
	MeanPending float64
	MaxPending  int
	// BusyFrac is the fraction of requests issued while others waited.
	BusyFrac float64
}

// PendingStats computes queue-depth statistics from a trace. It is the
// batch form of the streaming PendingAcc.
func PendingStats(recs []trace.Record) QueueStats {
	a := NewPendingAcc()
	feed(a, recs)
	return a.Stats()
}
