package analysis

// Columnar-vs-row equivalence: every accumulator's AddCols must leave
// exactly the same internal state as folding the records one at a time
// through Add, for any chunking of the stream into column batches. The
// row path is the oracle; reflect.DeepEqual over the accumulator structs
// (maps, counters, flags — everything) is the strictest check available.

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"essio/internal/sim"
	"essio/internal/trace"
)

// mkColStream builds a randomized trace with the clustered shapes the
// column codec optimizes for: repeated sizes, bursts in time, runs of
// the same op/origin, sector revisits.
func mkColStream(rng *rand.Rand) []trace.Record {
	recs := make([]trace.Record, rng.Intn(600))
	var t sim.Time
	for i := range recs {
		t += sim.Time(rng.Intn(int(sim.Second / 4)))
		recs[i] = trace.Record{
			Time:    t,
			Sector:  uint32(rng.Intn(32)) * 1000,
			Count:   uint16([]int{2, 8, 8, 8, 32, 200}[rng.Intn(6)]),
			Pending: uint16(rng.Intn(5)),
			Op:      trace.Op(rng.Intn(2)),
			Node:    uint8(rng.Intn(3)),
			Origin:  trace.Origin(rng.Intn(7)),
		}
	}
	return recs
}

// feedCols plays recs into sink in randomly sized column batches.
func feedCols(t *testing.T, rng *rand.Rand, sink trace.ColSink, recs []trace.Record) {
	t.Helper()
	var b trace.ColBatch
	for len(recs) > 0 {
		n := 1 + rng.Intn(len(recs))
		b.Reset()
		b.AppendRecords(recs[:n])
		if err := sink.AddCols(&b); err != nil {
			t.Fatal(err)
		}
		recs = recs[n:]
	}
}

func TestQuickColsMatchRows(t *testing.T) {
	cases := []struct {
		name string
		mk   func() (rows interface{ Add(trace.Record) error }, cols trace.ColSink)
	}{
		{"SummaryAcc", func() (interface{ Add(trace.Record) error }, trace.ColSink) {
			return NewSummaryAcc("wl", 10*sim.Second, 3), NewSummaryAcc("wl", 10*sim.Second, 3)
		}},
		{"SizeHistAcc", func() (interface{ Add(trace.Record) error }, trace.ColSink) {
			return NewSizeHistAcc(), NewSizeHistAcc()
		}},
		{"SizeClassAcc", func() (interface{ Add(trace.Record) error }, trace.ColSink) {
			return NewSizeClassAcc(), NewSizeClassAcc()
		}},
		{"OriginAcc", func() (interface{ Add(trace.Record) error }, trace.ColSink) {
			return NewOriginAcc(), NewOriginAcc()
		}},
		{"BandsAcc", func() (interface{ Add(trace.Record) error }, trace.ColSink) {
			return NewBandsAcc(1<<13, 1<<15), NewBandsAcc(1<<13, 1<<15)
		}},
		{"HeatAcc", func() (interface{ Add(trace.Record) error }, trace.ColSink) {
			return NewHeatAcc(), NewHeatAcc()
		}},
		{"RateAcc", func() (interface{ Add(trace.Record) error }, trace.ColSink) {
			return NewRateAcc(), NewRateAcc()
		}},
		{"PendingAcc", func() (interface{ Add(trace.Record) error }, trace.ColSink) {
			return NewPendingAcc(), NewPendingAcc()
		}},
		{"InterAccessAcc", func() (interface{ Add(trace.Record) error }, trace.ColSink) {
			return NewInterAccessAcc(), NewInterAccessAcc()
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				recs := mkColStream(rng)
				rows, cols := tc.mk()
				for _, r := range recs {
					if err := rows.Add(r); err != nil {
						return false
					}
				}
				feedCols(t, rng, cols, recs)
				if !reflect.DeepEqual(rows, cols) {
					t.Logf("row state:  %+v", rows)
					t.Logf("col state:  %+v", cols)
					return false
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestQuickRateAnchoredColsMatchRows re-runs the rate check with an
// explicit anchor, the configuration parallel drivers use.
func TestQuickRateAnchoredColsMatchRows(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		recs := mkColStream(rng)
		rows, cols := NewRateAcc(), NewRateAcc()
		rows.SetAnchor(sim.Time(3 * sim.Second))
		cols.SetAnchor(sim.Time(3 * sim.Second))
		for _, r := range recs {
			if err := rows.Add(r); err != nil {
				return false
			}
		}
		feedCols(t, rng, cols, recs)
		return reflect.DeepEqual(rows, cols)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
