// Runtime merge-propagation checks for every accumulator of this
// package, the behavioral complement to the essvet mergefields
// analyzer: core.MergeDrops perturbs each field of a shard-1 donor and
// asserts the perturbation survives Merge into a shard-0 receiver.
package analysis_test

import (
	"testing"

	"essio/internal/analysis"
	"essio/internal/core"
	"essio/internal/sim"
	"essio/internal/trace"
)

// feedRecords plays a two-shard workload into any record sink with an
// Add method; shard 1 continues shard 0 in time, as chunked parallel
// passes arrange.
func feedRecords(add func(trace.Record) error, shard int) {
	base := sim.Time(shard) * sim.Time(5*sim.Second)
	for i := 0; i < 40; i++ {
		add(trace.Record{
			Time:    base + sim.Time(i)*sim.Time(sim.Second/8),
			Sector:  uint32(1000*i + shard*64),
			Count:   uint16(8 + i%3),
			Pending: uint16(i % 5),
			Op:      trace.Op(i % 2),
			Node:    uint8(i % 2),
			Origin:  trace.Origin(i % 7),
		})
	}
}

func TestAccumulatorMergesPropagateEveryField(t *testing.T) {
	cases := []struct {
		name   string
		newAcc func() any
		feed   func(acc any, shard int)
		ignore []string
	}{
		{
			name:   "SummaryAcc",
			newAcc: func() any { return analysis.NewSummaryAcc("wl", sim.Duration(10*sim.Second), 2) },
			feed:   func(acc any, shard int) { feedRecords(acc.(*analysis.SummaryAcc).Add, shard) },
		},
		{
			name:   "SizeHistAcc",
			newAcc: func() any { return analysis.NewSizeHistAcc() },
			feed:   func(acc any, shard int) { feedRecords(acc.(*analysis.SizeHistAcc).Add, shard) },
		},
		{
			name:   "SizeClassAcc",
			newAcc: func() any { return analysis.NewSizeClassAcc() },
			feed:   func(acc any, shard int) { feedRecords(acc.(*analysis.SizeClassAcc).Add, shard) },
		},
		{
			name:   "OriginAcc",
			newAcc: func() any { return analysis.NewOriginAcc() },
			feed:   func(acc any, shard int) { feedRecords(acc.(*analysis.OriginAcc).Add, shard) },
		},
		{
			name:   "BandsAcc",
			newAcc: func() any { return analysis.NewBandsAcc(1<<16, 1<<20) },
			feed:   func(acc any, shard int) { feedRecords(acc.(*analysis.BandsAcc).Add, shard) },
		},
		{
			name:   "HeatAcc",
			newAcc: func() any { return analysis.NewHeatAcc() },
			feed:   func(acc any, shard int) { feedRecords(acc.(*analysis.HeatAcc).Add, shard) },
		},
		{
			name:   "RateAcc",
			newAcc: func() any { return analysis.NewRateAcc() },
			feed: func(acc any, shard int) {
				a := acc.(*analysis.RateAcc)
				a.SetAnchor(0) // shards of one pass share the anchor
				feedRecords(a.Add, shard)
			},
			// anchored is only read on the empty-receiver adopt path;
			// with live records on both sides, b.any gates the merge.
			ignore: []string{"anchored"},
		},
		{
			name:   "PendingAcc",
			newAcc: func() any { return analysis.NewPendingAcc() },
			feed:   func(acc any, shard int) { feedRecords(acc.(*analysis.PendingAcc).Add, shard) },
		},
		{
			name:   "InterAccessAcc",
			newAcc: func() any { return analysis.NewInterAccessAcc() },
			feed:   func(acc any, shard int) { feedRecords(acc.(*analysis.InterAccessAcc).Add, shard) },
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			drops, err := core.MergeDrops(tc.newAcc, tc.feed, tc.ignore...)
			if err != nil {
				t.Fatal(err)
			}
			if len(drops) > 0 {
				t.Fatalf("%s.Merge drops state of fields %v", tc.name, drops)
			}
		})
	}
}
