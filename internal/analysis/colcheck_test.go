package analysis_test

import (
	"testing"

	"essio/internal/analysis"
	"essio/internal/core"
	"essio/internal/sim"
	"essio/internal/trace"
)

// colSampleBatch builds a columnar workload exercising every column:
// increasing times, mixed ops, varied sizes and queue depths, two
// nodes, and all origin tags.
func colSampleBatch() *trace.ColBatch {
	b := new(trace.ColBatch)
	for i := 0; i < 48; i++ {
		b.AppendRecord(trace.Record{
			Time:    sim.Time(i) * sim.Time(sim.Second/8),
			Sector:  uint32(1000 * i),
			Count:   uint16(8 + i%3),
			Pending: uint16(i % 5),
			Op:      trace.Op(i % 2),
			Node:    uint8(i % 2),
			Origin:  trace.Origin(i % 7),
		})
	}
	return b
}

// TestAddColsPropagatesEveryColumn runs the ColDrops mutation check
// over all nine analysis accumulators. The fields lists are exactly the
// Record fields each Add reads — the essvet colparity wants sets — and
// none of the AddCols implementations carries a //essvet:colignore
// marker, so every ignore list is empty; the two exemption lists stay
// byte-mirrored at zero entries each.
func TestAddColsPropagatesEveryColumn(t *testing.T) {
	cases := []struct {
		name   string
		acc    func() any
		fields []string
	}{
		{"SummaryAcc", func() any {
			return analysis.NewSummaryAcc("wl", sim.Duration(10*sim.Second), 2)
		}, []string{"Op", "Time"}},
		{"SizeHistAcc", func() any { return analysis.NewSizeHistAcc() }, []string{"Count"}},
		{"SizeClassAcc", func() any { return analysis.NewSizeClassAcc() }, []string{"Count"}},
		{"OriginAcc", func() any { return analysis.NewOriginAcc() }, []string{"Origin"}},
		{"BandsAcc", func() any { return analysis.NewBandsAcc(1<<16, 1<<20) }, []string{"Sector"}},
		{"HeatAcc", func() any { return analysis.NewHeatAcc() }, []string{"Sector"}},
		{"RateAcc", func() any { return analysis.NewRateAcc() }, []string{"Time"}},
		{"PendingAcc", func() any { return analysis.NewPendingAcc() }, []string{"Pending"}},
		{"InterAccessAcc", func() any { return analysis.NewInterAccessAcc() }, []string{"Sector", "Time"}},
	}
	batch := colSampleBatch()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			drops, err := core.ColDrops(tc.acc, batch, tc.fields)
			if err != nil {
				t.Fatal(err)
			}
			if len(drops) > 0 {
				t.Fatalf("%s.AddCols drops columns of fields %v", tc.name, drops)
			}
		})
	}
}
