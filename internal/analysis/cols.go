// Columnar fast paths: every accumulator consumes trace.ColBatch views
// directly, scanning only the columns its metric reads. The inner loops
// are branch-light passes over dense arrays — no per-record interface
// dispatch, no struct field gathers — and map-backed accumulators batch
// their map traffic per run of equal values, which on real traces
// (near-constant request sizes, second-granularity bins) collapses one
// map operation per record to one per thousands. Each AddCols is
// semantically identical to folding Add over the batch; the equivalence
// suite in cols_test.go checks that record for record.

package analysis

import (
	"essio/internal/sim"
	"essio/internal/trace"
)

// AddCols counts a columnar batch: one scan over ops, one over times.
func (a *SummaryAcc) AddCols(cols *trace.ColBatch) error {
	if cols.Len() == 0 {
		return nil
	}
	w := 0
	for _, op := range cols.Ops {
		if op != trace.Read {
			w++
		}
	}
	a.s.Writes += w
	a.s.Reads += cols.Len() - w
	first, last := cols.Times[0], cols.Times[0]
	for _, t := range cols.Times[1:] {
		if t < first {
			first = t
		}
		if t > last {
			last = t
		}
	}
	if !a.any || first < a.first {
		a.first = first
	}
	if !a.any || last > a.last {
		a.last = last
	}
	a.any = true
	return nil
}

// colKB is Record.KB over a raw count column value.
func colKB(count uint16) int {
	return (int(count)*trace.SectorSize + 1023) / 1024
}

// AddCols bins a columnar batch by size. Request sizes are highly
// repetitive, so the map increment is batched per run of equal counts.
func (a *SizeHistAcc) AddCols(cols *trace.ColBatch) error {
	counts := cols.Counts
	for i := 0; i < len(counts); {
		c := counts[i]
		j := i + 1
		for j < len(counts) && counts[j] == c {
			j++
		}
		a.h[colKB(c)] += j - i
		i = j
	}
	return nil
}

// AddCols classifies a columnar batch by the paper's size categories in
// one scan over the count column.
func (a *SizeClassAcc) AddCols(cols *trace.ColBatch) error {
	for _, c := range cols.Counts {
		switch kb := colKB(c); {
		case kb <= 1:
			a.c.Block1K++
		case kb == 4:
			a.c.Page4K++
		case kb >= 8:
			a.c.Large++
		default:
			a.c.Other++
		}
	}
	return nil
}

// AddCols counts a columnar batch per origin through a dense
// batch-local table — origins are single bytes — then folds the nonzero
// entries into the map once per batch.
func (a *OriginAcc) AddCols(cols *trace.ColBatch) error {
	var counts [256]int
	for _, o := range cols.Origins {
		counts[o]++
	}
	for o, c := range counts {
		if c != 0 {
			a.m[trace.Origin(o)] += c
		}
	}
	return nil
}

// AddCols buckets a columnar batch's sector column into bands: a
// division and a bounds clamp per record, no map in sight.
func (a *BandsAcc) AddCols(cols *trace.ColBatch) error {
	last := len(a.bands) - 1
	for _, sec := range cols.Sectors {
		bi := int(sec / a.bandSectors)
		if bi > last {
			bi = last
		}
		a.bands[bi].Count++
	}
	a.total += cols.Len()
	return nil
}

// AddCols counts a columnar batch's sector column.
func (a *HeatAcc) AddCols(cols *trace.ColBatch) error {
	for _, sec := range cols.Sectors {
		a.counts[sec]++
	}
	return nil
}

// Observe counts one access to sector; the column-scan entry point the
// Profiler's fused node-0 pass uses.
func (a *HeatAcc) Observe(sector uint32) { a.counts[sector]++ }

// AddCols bins a columnar batch's time column. The float bin expression
// is kept identical to Add — bit-equal binning at second boundaries —
// but the map increment is batched per run of records landing in the
// same bin, which for second-granularity bins over µs timestamps is
// nearly the whole batch.
func (a *RateAcc) AddCols(cols *trace.ColBatch) error {
	times := cols.Times
	if len(times) == 0 {
		return nil
	}
	if !a.any {
		a.any = true
		if !a.anchored {
			a.t0 = times[0]
			a.anchored = true
		}
	}
	run, runBin := 0, 0
	for _, t := range times {
		b := int(t.Sub(a.t0).Seconds())
		if run == 0 || b == runBin {
			runBin = b
			run++
			continue
		}
		a.bins[runBin] += run
		if runBin > a.maxBin {
			a.maxBin = runBin
		}
		runBin, run = b, 1
	}
	a.bins[runBin] += run
	if runBin > a.maxBin {
		a.maxBin = runBin
	}
	return nil
}

// AddCols summarizes a columnar batch's queue-depth column in one scan.
func (a *PendingAcc) AddCols(cols *trace.ColBatch) error {
	sum, busy, maxp := 0, 0, a.q.MaxPending
	for _, p := range cols.Pendings {
		pi := int(p)
		sum += pi
		if pi > maxp {
			maxp = pi
		}
		if pi > 0 {
			busy++
		}
	}
	a.sum += sum
	a.busy += busy
	a.q.MaxPending = maxp
	a.n += cols.Len()
	return nil
}

// AddCols observes a columnar batch sector by sector; the revisit map
// is inherently per-record, but the scan still skips the six unused
// columns.
func (a *InterAccessAcc) AddCols(cols *trace.ColBatch) error {
	for i, sec := range cols.Sectors {
		a.Observe(sec, cols.Times[i])
	}
	return nil
}

// Observe records one access; the column-scan form of Add.
func (a *InterAccessAcc) Observe(sector uint32, t sim.Time) {
	e, ok := a.m[sector]
	if ok {
		a.total += t.Sub(e.last)
		a.n++
		e.last = t
		e.revisited = true
	} else {
		e = interAccess{first: t, last: t}
	}
	a.m[sector] = e
}
