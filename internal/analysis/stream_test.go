package analysis

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"essio/internal/sim"
	"essio/internal/trace"
)

// The oracles below are the original slice-based implementations, kept in
// the tests as the reference every streaming accumulator must match
// exactly on randomized traces.

func summarizeOracle(label string, recs []trace.Record, duration sim.Duration, nodes int) Summary {
	s := Summary{Label: label, Nodes: nodes, Duration: duration}
	for _, r := range recs {
		if r.Op == trace.Read {
			s.Reads++
		} else {
			s.Writes++
		}
	}
	total := s.Reads + s.Writes
	if total > 0 {
		s.ReadPct = 100 * float64(s.Reads) / float64(total)
		s.WritePct = 100 * float64(s.Writes) / float64(total)
	}
	if nodes > 0 {
		s.TotalPerDisk = float64(total) / float64(nodes)
		if duration > 0 {
			s.ReqPerSec = s.TotalPerDisk / duration.Seconds()
		}
	}
	return s
}

func sizeHistogramOracle(recs []trace.Record) map[int]int {
	h := make(map[int]int)
	for _, r := range recs {
		h[r.KB()]++
	}
	return h
}

func classifySizesOracle(recs []trace.Record) SizeClasses {
	var c SizeClasses
	for _, r := range recs {
		switch kb := r.KB(); {
		case kb <= 1:
			c.Block1K++
		case kb == 4:
			c.Page4K++
		case kb >= 8:
			c.Large++
		default:
			c.Other++
		}
	}
	return c
}

func spatialBandsOracle(recs []trace.Record, bandSectors, diskSectors uint32) []Band {
	nb := int((diskSectors + bandSectors - 1) / bandSectors)
	bands := make([]Band, nb)
	for i := range bands {
		bands[i].Lo = uint32(i) * bandSectors
		bands[i].Hi = bands[i].Lo + bandSectors
	}
	total := 0
	for _, r := range recs {
		bi := int(r.Sector / bandSectors)
		if bi >= nb {
			bi = nb - 1
		}
		bands[bi].Count++
		total++
	}
	if total > 0 {
		for i := range bands {
			bands[i].Pct = 100 * float64(bands[i].Count) / float64(total)
		}
	}
	return bands
}

func temporalHeatOracle(recs []trace.Record, duration sim.Duration) []Heat {
	counts := make(map[uint32]int)
	for _, r := range recs {
		counts[r.Sector]++
	}
	out := make([]Heat, 0, len(counts))
	secs := duration.Seconds()
	for sec, c := range counts {
		h := Heat{Sector: sec, Count: c}
		if secs > 0 {
			h.PerSec = float64(c) / secs
		}
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Sector < out[j].Sector })
	return out
}

func ratePerSecondOracle(recs []trace.Record) []Point {
	if len(recs) == 0 {
		return nil
	}
	t0 := recs[0].Time
	bins := make(map[int]int)
	maxBin := 0
	for _, r := range recs {
		b := int(r.Time.Sub(t0).Seconds())
		bins[b]++
		if b > maxBin {
			maxBin = b
		}
	}
	out := make([]Point, maxBin+1)
	for i := range out {
		out[i] = Point{T: float64(i), V: float64(bins[i])}
	}
	return out
}

func pendingStatsOracle(recs []trace.Record) QueueStats {
	var q QueueStats
	if len(recs) == 0 {
		return q
	}
	var sum, busy int
	for _, r := range recs {
		p := int(r.Pending)
		sum += p
		if p > q.MaxPending {
			q.MaxPending = p
		}
		if p > 0 {
			busy++
		}
	}
	q.MeanPending = float64(sum) / float64(len(recs))
	q.BusyFrac = float64(busy) / float64(len(recs))
	return q
}

func interAccessOracle(recs []trace.Record) (sim.Duration, int) {
	last := make(map[uint32]sim.Time)
	var total sim.Duration
	n := 0
	seen := make(map[uint32]bool)
	for _, r := range recs {
		if t, ok := last[r.Sector]; ok {
			total += r.Time.Sub(t)
			n++
			seen[r.Sector] = true
		}
		last[r.Sector] = r.Time
	}
	if n == 0 {
		return 0, 0
	}
	return total / sim.Duration(n), len(seen)
}

// randTrace builds a randomized trace with clustered sectors and times so
// revisits, shared bins, and ties are common.
func randTrace(rng *rand.Rand) []trace.Record {
	recs := make([]trace.Record, rng.Intn(300))
	for i := range recs {
		recs[i] = trace.Record{
			Time:    sim.Time(rng.Intn(30)) * sim.Time(sim.Second),
			Sector:  uint32(rng.Intn(40)) * 25000,
			Count:   uint16(rng.Intn(64) + 1),
			Pending: uint16(rng.Intn(5)),
			Op:      trace.Op(rng.Intn(2)),
			Node:    uint8(rng.Intn(4)),
			Origin:  trace.Origin(rng.Intn(7)),
		}
	}
	return recs
}

// TestQuickAccumulatorsMatchBatch is the streaming-equivalence property:
// every accumulator, fed record by record, produces exactly what its
// batch counterpart computes on the whole slice.
func TestQuickAccumulatorsMatchBatch(t *testing.T) {
	f := func(seed int64, durSecs uint16, nodes uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		recs := randTrace(rng)
		duration := sim.Duration(durSecs) * sim.Second

		if !reflect.DeepEqual(Summarize("q", recs, duration, int(nodes)),
			summarizeOracle("q", recs, duration, int(nodes))) {
			return false
		}
		if !reflect.DeepEqual(SizeHistogram(recs), sizeHistogramOracle(recs)) {
			return false
		}
		if ClassifySizes(recs) != classifySizesOracle(recs) {
			return false
		}
		if !reflect.DeepEqual(SpatialBands(recs, 100000, 1024000),
			spatialBandsOracle(recs, 100000, 1024000)) {
			return false
		}
		if !reflect.DeepEqual(TemporalHeat(recs, duration), temporalHeatOracle(recs, duration)) {
			return false
		}
		if !reflect.DeepEqual(RatePerSecond(recs), ratePerSecondOracle(recs)) {
			return false
		}
		if PendingStats(recs) != pendingStatsOracle(recs) {
			return false
		}
		gm, gs := InterAccess(recs)
		wm, ws := interAccessOracle(recs)
		return gm == wm && gs == ws
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestTeeSinglePass checks that one pass over a source can feed several
// accumulators at once through a Tee and still match the batch results.
func TestTeeSinglePass(t *testing.T) {
	recs := randTrace(rand.New(rand.NewSource(42)))
	sum := NewSummaryAcc("tee", 30*sim.Second, 4)
	hist := NewSizeHistAcc()
	classes := NewSizeClassAcc()
	pend := NewPendingAcc()
	if _, err := trace.Copy(trace.Tee(sum, hist, classes, pend), trace.SliceSource(recs)); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sum.Summary(), Summarize("tee", recs, 30*sim.Second, 4)) {
		t.Fatal("summary diverged")
	}
	if !reflect.DeepEqual(hist.Histogram(), SizeHistogram(recs)) {
		t.Fatal("histogram diverged")
	}
	if classes.Classes() != ClassifySizes(recs) {
		t.Fatal("classes diverged")
	}
	if pend.Stats() != PendingStats(recs) {
		t.Fatal("pending diverged")
	}
}

// TestSummaryAccSpan checks the observed-span bookkeeping essanalyze uses
// when no external duration is known.
func TestSummaryAccSpan(t *testing.T) {
	a := NewSummaryAcc("span", 0, 1)
	a.Add(trace.Record{Time: sim.Time(5 * sim.Second)})
	a.Add(trace.Record{Time: sim.Time(2 * sim.Second)})
	a.Add(trace.Record{Time: sim.Time(9 * sim.Second)})
	if a.Span() != 7*sim.Second {
		t.Fatalf("span = %v", a.Span())
	}
	a.SetDuration(a.Span())
	if s := a.Summary(); s.ReqPerSec == 0 || s.Duration != 7*sim.Second {
		t.Fatalf("summary = %+v", s)
	}
}
