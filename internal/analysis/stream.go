// Streaming accumulators: every metric of the package rebuilt as an
// incremental trace.Sink, so a single pass over a trace Source — a file
// reader, a k-way node merge — computes any combination of metrics in
// bounded memory. The slice-based functions of analysis.go are thin
// wrappers over these.
//
// Every accumulator also has an exact Merge method folding another
// accumulator of the same kind into it, which is what lets a multi-core
// driver shard one trace across workers — per-node shards or
// time-contiguous chunks — and recombine per-worker accumulator sets into
// results identical to a single sequential pass. Merge methods whose
// metric is order-sensitive (RateAcc binning, InterAccessAcc gaps,
// SummaryAcc span) document which sharding they are exact under.

package analysis

import (
	"essio/internal/sim"
	"essio/internal/trace"
)

// SummaryAcc incrementally builds a Table 1 Summary. It also tracks the
// observed time span so callers analyzing a bare trace file can use
// Span() when no external duration is known.
type SummaryAcc struct {
	s           Summary
	first, last sim.Time
	any         bool
}

// NewSummaryAcc returns an accumulator for a Table 1 row over the given
// observation duration and node count.
func NewSummaryAcc(label string, duration sim.Duration, nodes int) *SummaryAcc {
	return &SummaryAcc{s: Summary{Label: label, Nodes: nodes, Duration: duration}}
}

// Add counts one record.
func (a *SummaryAcc) Add(r trace.Record) error {
	if r.Op == trace.Read {
		a.s.Reads++
	} else {
		a.s.Writes++
	}
	if !a.any || r.Time < a.first {
		a.first = r.Time
	}
	if !a.any || r.Time > a.last {
		a.last = r.Time
	}
	a.any = true
	return nil
}

// Merge folds another summary accumulator into a. Counts add and the
// observed span extends to cover both, so the merge is exact under any
// partition of the trace.
func (a *SummaryAcc) Merge(b *SummaryAcc) {
	a.s.Reads += b.s.Reads
	a.s.Writes += b.s.Writes
	if b.any {
		if !a.any || b.first < a.first {
			a.first = b.first
		}
		if !a.any || b.last > a.last {
			a.last = b.last
		}
		a.any = true
	}
}

// Span reports the observed time span between the earliest and latest
// record seen.
func (a *SummaryAcc) Span() sim.Duration { return a.last.Sub(a.first) }

// SetDuration overrides the observation duration before Summary is read.
func (a *SummaryAcc) SetDuration(d sim.Duration) { a.s.Duration = d }

// Summary finalizes the row.
func (a *SummaryAcc) Summary() Summary {
	s := a.s
	total := s.Reads + s.Writes
	if total > 0 {
		s.ReadPct = 100 * float64(s.Reads) / float64(total)
		s.WritePct = 100 * float64(s.Writes) / float64(total)
	}
	if s.Nodes > 0 {
		s.TotalPerDisk = float64(total) / float64(s.Nodes)
		if s.Duration > 0 {
			s.ReqPerSec = s.TotalPerDisk / s.Duration.Seconds()
		}
	}
	return s
}

// SizeHistAcc incrementally counts requests per KB size class.
type SizeHistAcc struct {
	h map[int]int
}

// NewSizeHistAcc returns an empty size histogram accumulator.
func NewSizeHistAcc() *SizeHistAcc { return &SizeHistAcc{h: make(map[int]int)} }

// Add counts one record.
func (a *SizeHistAcc) Add(r trace.Record) error {
	a.h[r.KB()]++
	return nil
}

// Merge folds another histogram into a; exact under any partition.
func (a *SizeHistAcc) Merge(b *SizeHistAcc) {
	for kb, c := range b.h {
		a.h[kb] += c
	}
}

// Histogram returns the counts per KB class.
func (a *SizeHistAcc) Histogram() map[int]int { return a.h }

// SizeClassAcc incrementally buckets requests into the paper's size
// categories.
type SizeClassAcc struct {
	c SizeClasses
}

// NewSizeClassAcc returns an empty size-class accumulator.
func NewSizeClassAcc() *SizeClassAcc { return &SizeClassAcc{} }

// Add classifies one record.
func (a *SizeClassAcc) Add(r trace.Record) error {
	switch kb := r.KB(); {
	case kb <= 1:
		a.c.Block1K++
	case kb == 4:
		a.c.Page4K++
	case kb >= 8:
		a.c.Large++
	default:
		a.c.Other++
	}
	return nil
}

// Merge folds another size-class accumulator into a; exact under any
// partition.
func (a *SizeClassAcc) Merge(b *SizeClassAcc) {
	a.c.Block1K += b.c.Block1K
	a.c.Page4K += b.c.Page4K
	a.c.Large += b.c.Large
	a.c.Other += b.c.Other
}

// Classes returns the size-class split.
func (a *SizeClassAcc) Classes() SizeClasses { return a.c }

// OriginAcc incrementally counts requests per ground-truth origin.
type OriginAcc struct {
	m map[trace.Origin]int
}

// NewOriginAcc returns an empty origin accumulator.
func NewOriginAcc() *OriginAcc { return &OriginAcc{m: make(map[trace.Origin]int)} }

// Add counts one record.
func (a *OriginAcc) Add(r trace.Record) error {
	a.m[r.Origin]++
	return nil
}

// Merge folds another origin accumulator into a; exact under any
// partition.
func (a *OriginAcc) Merge(b *OriginAcc) {
	for o, c := range b.m {
		a.m[o] += c
	}
}

// Breakdown returns the counts per origin.
func (a *OriginAcc) Breakdown() map[trace.Origin]int { return a.m }

// BandsAcc incrementally buckets requests into fixed-width sector bands
// (Figure 7).
type BandsAcc struct {
	bandSectors uint32
	bands       []Band
	total       int
}

// NewBandsAcc returns a spatial-band accumulator over a disk of
// diskSectors sectors split into bandSectors-wide bands.
func NewBandsAcc(bandSectors, diskSectors uint32) *BandsAcc {
	if bandSectors == 0 {
		panic("analysis: zero band width")
	}
	nb := int((diskSectors + bandSectors - 1) / bandSectors)
	bands := make([]Band, nb)
	for i := range bands {
		bands[i].Lo = uint32(i) * bandSectors
		bands[i].Hi = bands[i].Lo + bandSectors
	}
	return &BandsAcc{bandSectors: bandSectors, bands: bands}
}

// Add buckets one record.
func (a *BandsAcc) Add(r trace.Record) error {
	bi := int(r.Sector / a.bandSectors)
	if bi >= len(a.bands) {
		bi = len(a.bands) - 1
	}
	a.bands[bi].Count++
	a.total++
	return nil
}

// Merge folds another band accumulator into a; both must share the band
// geometry (same width and disk size). Exact under any partition.
func (a *BandsAcc) Merge(b *BandsAcc) {
	if a.bandSectors != b.bandSectors || len(a.bands) != len(b.bands) {
		panic("analysis: merge of band accumulators with different geometry")
	}
	for i := range b.bands {
		a.bands[i].Count += b.bands[i].Count
	}
	a.total += b.total
}

// Bands finalizes the percentages and returns the band distribution.
func (a *BandsAcc) Bands() []Band {
	out := append([]Band(nil), a.bands...)
	if a.total > 0 {
		for i := range out {
			out[i].Pct = 100 * float64(out[i].Count) / float64(a.total)
		}
	}
	return out
}

// HeatAcc incrementally counts accesses per starting sector (Figure 8).
type HeatAcc struct {
	counts map[uint32]int
}

// NewHeatAcc returns an empty temporal-heat accumulator.
func NewHeatAcc() *HeatAcc { return &HeatAcc{counts: make(map[uint32]int)} }

// Add counts one record.
func (a *HeatAcc) Add(r trace.Record) error {
	a.counts[r.Sector]++
	return nil
}

// Merge folds another heat accumulator into a; exact under any partition.
func (a *HeatAcc) Merge(b *HeatAcc) {
	for sec, c := range b.counts {
		a.counts[sec] += c
	}
}

// Heat finalizes per-sector access frequency averaged over duration.
func (a *HeatAcc) Heat(duration sim.Duration) []Heat {
	return heatFromCounts(a.counts, duration)
}

// RateAcc incrementally buckets requests into 1-second bins anchored at
// the first record seen (activity profiles). For sharded passes,
// SetAnchor pins the bin origin to the merged stream's first record time
// so every shard bins identically and Merge is exact.
type RateAcc struct {
	t0       sim.Time
	anchored bool
	any      bool
	bins     map[int]int
	maxBin   int
}

// NewRateAcc returns an empty request-rate accumulator.
func NewRateAcc() *RateAcc { return &RateAcc{bins: make(map[int]int)} }

// SetAnchor pins the time origin of the 1-second bins. A parallel driver
// anchors every worker at the merged stream's first record time, making
// per-shard binning — and therefore Merge — bit-identical to the
// sequential pass. Must be called before the first Add.
func (a *RateAcc) SetAnchor(t0 sim.Time) {
	a.t0 = t0
	a.anchored = true
}

// Add bins one record.
func (a *RateAcc) Add(r trace.Record) error {
	if !a.any {
		a.any = true
		if !a.anchored {
			a.t0 = r.Time
			a.anchored = true
		}
	}
	b := int(r.Time.Sub(a.t0).Seconds())
	a.bins[b]++
	if b > a.maxBin {
		a.maxBin = b
	}
	return nil
}

// Merge folds another rate accumulator into a. Exact when both sides are
// anchored at the same origin (or either is empty), which is how the
// parallel drivers arrange their shards; merging differently-anchored
// non-empty accumulators would silently misalign bins, so it panics.
func (a *RateAcc) Merge(b *RateAcc) {
	if !b.any {
		return
	}
	if !a.any {
		a.t0 = b.t0
		a.anchored = true
		a.any = true
	} else if a.t0 != b.t0 {
		panic("analysis: merge of rate accumulators with different anchors")
	}
	for bin, c := range b.bins {
		a.bins[bin] += c
	}
	if b.maxBin > a.maxBin {
		a.maxBin = b.maxBin
	}
}

// Points finalizes the per-second request counts.
func (a *RateAcc) Points() []Point {
	if !a.any {
		return nil
	}
	out := make([]Point, a.maxBin+1)
	for i := range out {
		out[i] = Point{T: float64(i), V: float64(a.bins[i])}
	}
	return out
}

// PendingAcc incrementally summarizes the driver-queue depth recorded with
// every request.
type PendingAcc struct {
	q         QueueStats
	sum, busy int
	n         int
}

// NewPendingAcc returns an empty queue-depth accumulator.
func NewPendingAcc() *PendingAcc { return &PendingAcc{} }

// Add counts one record.
func (a *PendingAcc) Add(r trace.Record) error {
	p := int(r.Pending)
	a.sum += p
	if p > a.q.MaxPending {
		a.q.MaxPending = p
	}
	if p > 0 {
		a.busy++
	}
	a.n++
	return nil
}

// Merge folds another queue-depth accumulator into a; exact under any
// partition.
func (a *PendingAcc) Merge(b *PendingAcc) {
	a.sum += b.sum
	a.busy += b.busy
	a.n += b.n
	if b.q.MaxPending > a.q.MaxPending {
		a.q.MaxPending = b.q.MaxPending
	}
}

// Stats finalizes the queue-depth statistics.
func (a *PendingAcc) Stats() QueueStats {
	q := a.q
	if a.n > 0 {
		q.MeanPending = float64(a.sum) / float64(a.n)
		q.BusyFrac = float64(a.busy) / float64(a.n)
	}
	return q
}

// interAccess is one sector's revisit state: the first and most recent
// access times within the shard this accumulator saw, and whether the
// sector has been revisited. One map entry per sector replaces the two
// parallel maps (last-time and seen) the accumulator used to keep,
// halving per-sector map overhead on heat-heavy traces, and the first
// field is what makes time-contiguous shard merges exact.
type interAccess struct {
	first, last sim.Time
	revisited   bool
}

// InterAccessAcc incrementally computes the mean time between consecutive
// accesses to the same sector.
type InterAccessAcc struct {
	m     map[uint32]interAccess
	total sim.Duration
	n     int
}

// NewInterAccessAcc returns an empty inter-access accumulator.
func NewInterAccessAcc() *InterAccessAcc {
	return &InterAccessAcc{m: make(map[uint32]interAccess)}
}

// Add observes one record.
func (a *InterAccessAcc) Add(r trace.Record) error {
	a.Observe(r.Sector, r.Time)
	return nil
}

// Merge folds another inter-access accumulator into a. Exact when b saw a
// time-contiguous continuation of a's stream (per-sector record order
// preserved across the split, as record-contiguous chunking or disjoint
// node sharding both guarantee): within-shard gaps are already counted and
// the gap spanning the boundary is reconstructed from a's last and b's
// first access per sector.
func (a *InterAccessAcc) Merge(b *InterAccessAcc) {
	a.total += b.total
	a.n += b.n
	for sec, eb := range b.m {
		ea, ok := a.m[sec]
		if !ok {
			a.m[sec] = eb
			continue
		}
		a.total += eb.first.Sub(ea.last)
		a.n++
		ea.last = eb.last
		ea.revisited = true
		a.m[sec] = ea
	}
}

// Result finalizes the mean gap and the number of revisited sectors.
func (a *InterAccessAcc) Result() (mean sim.Duration, sectors int) {
	if a.n == 0 {
		return 0, 0
	}
	for _, e := range a.m {
		if e.revisited {
			sectors++
		}
	}
	return a.total / sim.Duration(a.n), sectors
}
