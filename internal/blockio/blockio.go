// Package blockio implements the kernel block-request layer sitting between
// the buffer cache / VM and the disk device driver: a request queue with
// Linux-1.x-style elevator ordering, adjacent-request merging, and queue
// plugging.
//
// Merging is what turns streams of 1 KB buffer-cache blocks into the larger
// physical requests the paper observes: back/front merges grow requests up
// to MaxSectors (32 KB), and plugging holds a briefly idle queue open so a
// burst of contiguous submissions can coalesce before dispatch.
package blockio

import (
	"fmt"
	"sort"

	"essio/internal/sim"
	"essio/internal/trace"
)

// DefaultMaxSectors caps a merged request at 64 sectors (32 KB), matching
// the largest request sizes the paper reports for the combined workload.
const DefaultMaxSectors = 64

// DefaultPlugDelay is how long a newly busied queue stays plugged to let
// contiguous submissions merge before the first dispatch.
const DefaultPlugDelay = 2 * sim.Millisecond

// Segment is one contiguous caller buffer within a request, typically a
// single 1 KB buffer-cache block or a 4 KB page. Its completion fires when
// the physical request containing it finishes.
type Segment struct {
	Sector uint32
	Buf    []byte
	Done   *sim.Completion
	// Req is the I/O request journey that submitted this segment (0 for
	// untagged system I/O); the driver journals per-segment queue wait
	// against it. Queued is this segment's own submit time — a segment
	// merged into an older request entered the queue later than the
	// request did.
	Req    uint64
	Queued sim.Time
}

// Request is a physical disk request: one or more contiguous segments with
// a common direction.
type Request struct {
	Sector uint32
	Count  int // total length in sectors
	Write  bool
	Origin trace.Origin
	Segs   []*Segment
	// Queued is the virtual time the request entered the queue; the driver
	// measures queue residency (dispatch time minus Queued) against it.
	Queued sim.Time
}

// End reports the first sector past the request.
func (r *Request) End() uint32 { return r.Sector + uint32(r.Count) }

// Stats counts queue activity.
type Stats struct {
	Submitted   uint64 // segments submitted
	Requests    uint64 // physical requests created
	BackMerges  uint64
	FrontMerges uint64
	Dispatched  uint64
}

// Queue is the block request queue for one disk.
type Queue struct {
	e          *sim.Engine
	maxSectors int
	plugDelay  sim.Duration

	queued  []*Request // elevator order: ascending start sector
	plugged bool
	busy    bool // a request is at the driver
	headPos uint32
	start   func(*Request)
	stats   Stats
}

// Option configures a Queue.
type Option func(*Queue)

// WithMaxSectors caps merged request size in sectors. n <= 0 disables
// merging entirely (every segment becomes its own request), which the
// ablation benchmarks use.
func WithMaxSectors(n int) Option { return func(q *Queue) { q.maxSectors = n } }

// WithPlugDelay sets the plug window; 0 disables plugging.
func WithPlugDelay(d sim.Duration) Option { return func(q *Queue) { q.plugDelay = d } }

// New returns an empty queue. The owner must call SetStart before the first
// Submit.
func New(e *sim.Engine, opts ...Option) *Queue {
	q := &Queue{e: e, maxSectors: DefaultMaxSectors, plugDelay: DefaultPlugDelay}
	for _, o := range opts {
		o(q)
	}
	return q
}

// SetStart registers the driver dispatch function. The driver must call
// Done exactly once for each dispatched request.
func (q *Queue) SetStart(fn func(*Request)) { q.start = fn }

// Stats returns a copy of the queue statistics.
func (q *Queue) Stats() Stats { return q.stats }

// Len reports the number of queued (not yet dispatched) requests.
func (q *Queue) Len() int { return len(q.queued) }

// Submit enqueues a block transfer of buf (whose length must be a positive
// multiple of the sector size) at the given sector, returning a completion
// that fires when the covering physical request finishes. Adjacent requests
// in the same direction merge up to the request size cap.
func (q *Queue) Submit(sector uint32, buf []byte, write bool, origin trace.Origin) (*sim.Completion, error) {
	return q.SubmitReq(sector, buf, write, origin, 0)
}

// SubmitReq is Submit carrying the I/O request journey ID that caused
// the transfer, for per-request tracing; req 0 marks untagged system
// I/O and is what plain Submit passes.
func (q *Queue) SubmitReq(sector uint32, buf []byte, write bool, origin trace.Origin, req uint64) (*sim.Completion, error) {
	if q.start == nil {
		return nil, fmt.Errorf("blockio: queue has no driver attached")
	}
	if len(buf) == 0 || len(buf)%trace.SectorSize != 0 {
		return nil, fmt.Errorf("blockio: buffer length %d not a positive sector multiple", len(buf))
	}
	count := len(buf) / trace.SectorSize
	seg := &Segment{Sector: sector, Buf: buf, Done: sim.NewCompletion(q.e), Req: req, Queued: q.e.Now()}
	q.stats.Submitted++

	if !q.merge(seg, count, write) {
		r := &Request{Sector: sector, Count: count, Write: write, Origin: origin,
			Segs: []*Segment{seg}, Queued: q.e.Now()}
		q.insert(r)
		q.stats.Requests++
	}

	if !q.busy && !q.plugged {
		if q.plugDelay > 0 {
			q.plugged = true
			q.e.After(q.plugDelay, q.Unplug)
		} else {
			q.kick()
		}
	}
	return seg.Done, nil
}

// merge tries to attach seg to an existing queued request; it reports
// whether it succeeded.
func (q *Queue) merge(seg *Segment, count int, write bool) bool {
	if q.maxSectors <= 0 {
		return false
	}
	for _, r := range q.queued {
		if r.Write != write || r.Count+count > q.maxSectors {
			continue
		}
		switch {
		case r.End() == seg.Sector: // back merge
			r.Segs = append(r.Segs, seg)
			r.Count += count
			q.stats.BackMerges++
			return true
		case seg.Sector+uint32(count) == r.Sector: // front merge
			r.Segs = append([]*Segment{seg}, r.Segs...)
			r.Sector = seg.Sector
			r.Count += count
			q.stats.FrontMerges++
			return true
		}
	}
	return false
}

// insert places r in elevator (ascending sector) order.
func (q *Queue) insert(r *Request) {
	i := sort.Search(len(q.queued), func(i int) bool { return q.queued[i].Sector >= r.Sector })
	q.queued = append(q.queued, nil)
	copy(q.queued[i+1:], q.queued[i:])
	q.queued[i] = r
}

// Unplug opens a plugged queue and starts dispatching.
func (q *Queue) Unplug() {
	q.plugged = false
	q.kick()
}

// kick dispatches the next request if the driver is idle.
func (q *Queue) kick() {
	if q.busy || q.plugged || len(q.queued) == 0 {
		return
	}
	// One-way elevator: continue the upward sweep from the last dispatch
	// position, wrapping to the lowest request when the sweep is done.
	idx := sort.Search(len(q.queued), func(i int) bool { return q.queued[i].Sector >= q.headPos })
	if idx == len(q.queued) {
		idx = 0
	}
	r := q.queued[idx]
	q.queued = append(q.queued[:idx], q.queued[idx+1:]...)
	q.headPos = r.End()
	q.busy = true
	q.stats.Dispatched++
	q.start(r)
}

// Done must be called by the driver when a dispatched request completes; it
// fires every segment completion and dispatches the next request.
func (q *Queue) Done(r *Request, err error) {
	for _, s := range r.Segs {
		s.Done.CompleteErr(err)
	}
	q.busy = false
	q.kick()
}

// Idle reports whether nothing is queued or in flight.
func (q *Queue) Idle() bool { return !q.busy && len(q.queued) == 0 }
