package blockio

import (
	"math/rand"
	"testing"
	"testing/quick"

	"essio/internal/sim"
	"essio/internal/trace"
)

// fakeDriver records dispatched requests and completes them after a fixed
// service time.
type fakeDriver struct {
	e       *sim.Engine
	q       *Queue
	service sim.Duration
	reqs    []*Request
}

func attachFake(e *sim.Engine, q *Queue, service sim.Duration) *fakeDriver {
	d := &fakeDriver{e: e, q: q, service: service}
	q.SetStart(func(r *Request) {
		d.reqs = append(d.reqs, r)
		e.After(service, func() { q.Done(r, nil) })
	})
	return d
}

func buf(kb int) []byte { return make([]byte, kb*1024) }

func TestSubmitWithoutDriverFails(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Close()
	q := New(e)
	if _, err := q.Submit(0, buf(1), false, trace.OriginData); err == nil {
		t.Fatal("want error without driver")
	}
}

func TestBadBufferRejected(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Close()
	q := New(e)
	attachFake(e, q, sim.Millisecond)
	if _, err := q.Submit(0, nil, false, trace.OriginData); err == nil {
		t.Fatal("want error for empty buffer")
	}
	if _, err := q.Submit(0, make([]byte, 100), false, trace.OriginData); err == nil {
		t.Fatal("want error for unaligned buffer")
	}
}

func TestSingleRequestDispatchesAndCompletes(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Close()
	q := New(e)
	d := attachFake(e, q, 5*sim.Millisecond)
	var doneAt sim.Time
	e.Spawn("io", func(p *sim.Proc) {
		c, err := q.Submit(100, buf(1), false, trace.OriginData)
		if err != nil {
			t.Error(err)
			return
		}
		if err := c.Wait(p); err != nil {
			t.Error(err)
		}
		doneAt = p.Now()
	})
	e.RunUntilIdle()
	if len(d.reqs) != 1 {
		t.Fatalf("dispatched %d requests, want 1", len(d.reqs))
	}
	want := sim.Time(DefaultPlugDelay + 5*sim.Millisecond)
	if doneAt != want {
		t.Fatalf("completed at %v, want %v (plug + service)", doneAt, want)
	}
	if !q.Idle() {
		t.Fatal("queue should be idle")
	}
}

func TestBackMergeContiguousStream(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Close()
	q := New(e)
	d := attachFake(e, q, sim.Millisecond)
	// Sixteen contiguous 1 KB blocks submitted while plugged must merge
	// into one 16 KB request.
	for i := 0; i < 16; i++ {
		if _, err := q.Submit(uint32(1000+2*i), buf(1), true, trace.OriginData); err != nil {
			t.Fatal(err)
		}
	}
	e.RunUntilIdle()
	if len(d.reqs) != 1 {
		t.Fatalf("dispatched %d requests, want 1 merged", len(d.reqs))
	}
	if d.reqs[0].Count != 32 || d.reqs[0].Sector != 1000 {
		t.Fatalf("merged request = sector %d count %d", d.reqs[0].Sector, d.reqs[0].Count)
	}
	st := q.Stats()
	if st.BackMerges != 15 {
		t.Fatalf("BackMerges = %d, want 15", st.BackMerges)
	}
}

func TestFrontMerge(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Close()
	q := New(e)
	d := attachFake(e, q, sim.Millisecond)
	if _, err := q.Submit(1002, buf(1), false, trace.OriginData); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit(1000, buf(1), false, trace.OriginData); err != nil {
		t.Fatal(err)
	}
	e.RunUntilIdle()
	if len(d.reqs) != 1 {
		t.Fatalf("dispatched %d, want 1", len(d.reqs))
	}
	if d.reqs[0].Sector != 1000 || d.reqs[0].Count != 4 {
		t.Fatalf("front merge produced sector %d count %d", d.reqs[0].Sector, d.reqs[0].Count)
	}
	if q.Stats().FrontMerges != 1 {
		t.Fatalf("FrontMerges = %d", q.Stats().FrontMerges)
	}
}

func TestNoMergeAcrossDirections(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Close()
	q := New(e)
	d := attachFake(e, q, sim.Millisecond)
	if _, err := q.Submit(1000, buf(1), false, trace.OriginData); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit(1002, buf(1), true, trace.OriginData); err != nil {
		t.Fatal(err)
	}
	e.RunUntilIdle()
	if len(d.reqs) != 2 {
		t.Fatalf("dispatched %d, want 2 (no R/W merge)", len(d.reqs))
	}
}

func TestMergeRespectsCap(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Close()
	q := New(e, WithMaxSectors(8)) // 4 KB cap
	d := attachFake(e, q, sim.Millisecond)
	for i := 0; i < 8; i++ {
		if _, err := q.Submit(uint32(2*i), buf(1), false, trace.OriginData); err != nil {
			t.Fatal(err)
		}
	}
	e.RunUntilIdle()
	if len(d.reqs) != 2 {
		t.Fatalf("dispatched %d, want 2 capped requests", len(d.reqs))
	}
	for _, r := range d.reqs {
		if r.Count != 8 {
			t.Fatalf("request count %d, want 8", r.Count)
		}
	}
}

func TestMergeDisabled(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Close()
	q := New(e, WithMaxSectors(0))
	d := attachFake(e, q, sim.Millisecond)
	for i := 0; i < 4; i++ {
		if _, err := q.Submit(uint32(2*i), buf(1), false, trace.OriginData); err != nil {
			t.Fatal(err)
		}
	}
	e.RunUntilIdle()
	if len(d.reqs) != 4 {
		t.Fatalf("dispatched %d, want 4 unmerged", len(d.reqs))
	}
}

func TestElevatorOrdersAscending(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Close()
	q := New(e, WithMaxSectors(0))
	d := attachFake(e, q, sim.Millisecond)
	for _, s := range []uint32{9000, 1000, 5000, 3000} {
		if _, err := q.Submit(s, buf(1), false, trace.OriginData); err != nil {
			t.Fatal(err)
		}
	}
	e.RunUntilIdle()
	if len(d.reqs) != 4 {
		t.Fatalf("dispatched %d", len(d.reqs))
	}
	want := []uint32{1000, 3000, 5000, 9000}
	for i, r := range d.reqs {
		if r.Sector != want[i] {
			t.Fatalf("dispatch order %d = sector %d, want %d", i, r.Sector, want[i])
		}
	}
}

func TestElevatorSweepWraps(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Close()
	q := New(e, WithMaxSectors(0), WithPlugDelay(0))
	var order []uint32
	q.SetStart(func(r *Request) {
		order = append(order, r.Sector)
		e.After(10*sim.Millisecond, func() { q.Done(r, nil) })
	})
	// First request dispatches immediately (no plug); while it is in
	// flight, submit one below and one above the head position.
	if _, err := q.Submit(5000, buf(1), false, trace.OriginData); err != nil {
		t.Fatal(err)
	}
	e.After(sim.Millisecond, func() {
		if _, err := q.Submit(1000, buf(1), false, trace.OriginData); err != nil {
			t.Error(err)
		}
		if _, err := q.Submit(8000, buf(1), false, trace.OriginData); err != nil {
			t.Error(err)
		}
	})
	e.RunUntilIdle()
	// Sweep continues upward from 5002 -> 8000, then wraps to 1000.
	want := []uint32{5000, 8000, 1000}
	for i, s := range order {
		if s != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestAllSegmentsComplete(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Close()
	q := New(e)
	attachFake(e, q, sim.Millisecond)
	const n = 10
	done := 0
	for i := 0; i < n; i++ {
		c, err := q.Submit(uint32(100+2*i), buf(1), true, trace.OriginData)
		if err != nil {
			t.Fatal(err)
		}
		e.Spawn("w", func(p *sim.Proc) {
			if err := c.Wait(p); err != nil {
				t.Error(err)
			}
			done++
		})
	}
	e.RunUntilIdle()
	if done != n {
		t.Fatalf("done = %d, want %d", done, n)
	}
}

// Property: no segments are ever lost or duplicated — the total sectors
// dispatched equals the total sectors submitted, for arbitrary submission
// patterns.
func TestQuickConservation(t *testing.T) {
	f := func(sectors []uint16, writes []bool) bool {
		if len(sectors) == 0 {
			return true
		}
		if len(sectors) > 50 {
			sectors = sectors[:50]
		}
		e := sim.NewEngine(3)
		defer e.Close()
		q := New(e)
		var dispatched int
		q.SetStart(func(r *Request) {
			dispatched += r.Count
			segTotal := 0
			for _, s := range r.Segs {
				segTotal += len(s.Buf) / trace.SectorSize
			}
			if segTotal != r.Count {
				t.Errorf("segment sectors %d != request count %d", segTotal, r.Count)
			}
			e.After(sim.Millisecond, func() { q.Done(r, nil) })
		})
		submitted := 0
		for i, s := range sectors {
			w := i < len(writes) && writes[i]
			sec := uint32(s) * 2 // even sectors, 1 KB blocks
			if _, err := q.Submit(sec, buf(1), w, trace.OriginData); err != nil {
				return false
			}
			submitted += 2
		}
		e.RunUntilIdle()
		return dispatched == submitted && q.Idle()
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: merged requests are always contiguous runs of their segments.
func TestQuickMergedContiguity(t *testing.T) {
	f := func(starts []uint16) bool {
		if len(starts) > 40 {
			starts = starts[:40]
		}
		e := sim.NewEngine(4)
		defer e.Close()
		q := New(e)
		ok := true
		q.SetStart(func(r *Request) {
			next := r.Sector
			for _, s := range r.Segs {
				if s.Sector != next {
					ok = false
				}
				next += uint32(len(s.Buf) / trace.SectorSize)
			}
			if next != r.End() {
				ok = false
			}
			e.After(sim.Millisecond, func() { q.Done(r, nil) })
		})
		for _, s := range starts {
			if _, err := q.Submit(uint32(s)*2, buf(1), true, trace.OriginData); err != nil {
				return false
			}
		}
		e.RunUntilIdle()
		return ok
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestErrorPropagatesToSegments(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Close()
	q := New(e)
	q.SetStart(func(r *Request) {
		e.After(sim.Millisecond, func() { q.Done(r, errFake) })
	})
	var got error
	e.Spawn("w", func(p *sim.Proc) {
		c, err := q.Submit(0, buf(1), false, trace.OriginData)
		if err != nil {
			t.Error(err)
			return
		}
		got = c.Wait(p)
	})
	e.RunUntilIdle()
	if got != errFake {
		t.Fatalf("segment error = %v, want errFake", got)
	}
}

var errFake = &fakeErr{}

type fakeErr struct{}

func (*fakeErr) Error() string { return "fake I/O error" }
