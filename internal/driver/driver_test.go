package driver

import (
	"bytes"
	"testing"

	"essio/internal/blockio"
	"essio/internal/disk"
	"essio/internal/sim"
	"essio/internal/trace"
)

type rig struct {
	e    *sim.Engine
	disk *disk.Disk
	q    *blockio.Queue
	drv  *Driver
	ring *trace.Ring
}

func newRig(t *testing.T, qopts ...blockio.Option) *rig {
	t.Helper()
	e := sim.NewEngine(1)
	t.Cleanup(e.Close)
	d := disk.New(e, disk.DefaultParams())
	q := blockio.New(e, qopts...)
	ring := trace.NewRing(1 << 16)
	drv := New(e, d, q, 3, ring)
	drv.SetLevel(LevelFull)
	return &rig{e: e, disk: d, q: q, drv: drv, ring: ring}
}

func (r *rig) submitAndWait(t *testing.T, sector uint32, buf []byte, write bool, origin trace.Origin) {
	t.Helper()
	r.e.Spawn("io", func(p *sim.Proc) {
		c, err := r.q.Submit(sector, buf, write, origin)
		if err != nil {
			t.Error(err)
			return
		}
		if err := c.Wait(p); err != nil {
			t.Error(err)
		}
	})
	r.e.RunUntilIdle()
}

func TestTraceRecordFields(t *testing.T) {
	r := newRig(t)
	buf := make([]byte, 2048)
	r.submitAndWait(t, 1234, buf, true, trace.OriginSwap)
	recs := r.ring.Drain(0)
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	rec := recs[0]
	if rec.Sector != 1234 || rec.Count != 4 || rec.Op != trace.Write {
		t.Fatalf("record = %+v", rec)
	}
	if rec.Node != 3 || rec.Origin != trace.OriginSwap {
		t.Fatalf("record = %+v", rec)
	}
	if rec.Time <= 0 {
		t.Fatalf("timestamp = %v; tracing happens at issue, after the plug delay", rec.Time)
	}
}

func TestLevelOffEmitsNothing(t *testing.T) {
	r := newRig(t)
	r.drv.SetLevel(LevelOff)
	r.submitAndWait(t, 100, make([]byte, 1024), false, trace.OriginData)
	if r.ring.Len() != 0 {
		t.Fatalf("ring has %d records with tracing off", r.ring.Len())
	}
	if r.drv.Stats().Requests != 1 {
		t.Fatal("request must still be serviced")
	}
}

func TestLevelBasicOmitsExtendedFields(t *testing.T) {
	r := newRig(t)
	r.drv.SetLevel(LevelBasic)
	r.submitAndWait(t, 100, make([]byte, 1024), false, trace.OriginSwap)
	recs := r.ring.Drain(0)
	if len(recs) != 1 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0].Count != 0 || recs[0].Origin != trace.OriginUnknown {
		t.Fatalf("basic level leaked extended fields: %+v", recs[0])
	}
	if recs[0].Sector != 100 || recs[0].Op != trace.Read {
		t.Fatalf("basic record wrong: %+v", recs[0])
	}
}

func TestIoctlControl(t *testing.T) {
	r := newRig(t)
	if _, err := r.drv.Ioctl(IoctlTraceOff, 0); err != nil {
		t.Fatal(err)
	}
	if r.drv.Level() != LevelOff {
		t.Fatal("ioctl off failed")
	}
	if _, err := r.drv.Ioctl(IoctlTraceOn, int(LevelBasic)); err != nil {
		t.Fatal(err)
	}
	if r.drv.Level() != LevelBasic {
		t.Fatal("ioctl on(basic) failed")
	}
	if _, err := r.drv.Ioctl(IoctlTraceOn, 999); err != nil {
		t.Fatal(err)
	}
	if r.drv.Level() != LevelFull {
		t.Fatal("out-of-range level must clamp to full")
	}
	r.submitAndWait(t, 10, make([]byte, 1024), false, trace.OriginData)
	n, err := r.drv.Ioctl(IoctlTraceStat, 0)
	if err != nil || n != 1 {
		t.Fatalf("TraceStat = %d, %v", n, err)
	}
	if _, err := r.drv.Ioctl(0xdead, 0); err == nil {
		t.Fatal("unknown ioctl must error")
	}
}

func TestDataActuallyTransferred(t *testing.T) {
	r := newRig(t)
	in := bytes.Repeat([]byte{0x5A}, 1024)
	r.submitAndWait(t, 2000, in, true, trace.OriginData)
	out := make([]byte, 1024)
	r.submitAndWait(t, 2000, out, false, trace.OriginData)
	if !bytes.Equal(in, out) {
		t.Fatal("read-back mismatch")
	}
}

func TestPendingCountsReflectQueueDepth(t *testing.T) {
	r := newRig(t)
	// Submit several distant (unmergeable) requests in one plug window:
	// the first dispatched record should see the rest still pending.
	for i := 0; i < 5; i++ {
		if _, err := r.q.Submit(uint32(i*100000), make([]byte, 1024), false, trace.OriginData); err != nil {
			t.Fatal(err)
		}
	}
	r.e.RunUntilIdle()
	recs := r.ring.Drain(0)
	if len(recs) != 5 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0].Pending != 4 {
		t.Fatalf("first record pending = %d, want 4", recs[0].Pending)
	}
	if recs[4].Pending != 0 {
		t.Fatalf("last record pending = %d, want 0", recs[4].Pending)
	}
}

func TestRequestBeyondCapacityFails(t *testing.T) {
	r := newRig(t)
	var got error
	r.e.Spawn("io", func(p *sim.Proc) {
		c, err := r.q.Submit(r.disk.Sectors()-1, make([]byte, 2048), false, trace.OriginData)
		if err != nil {
			t.Error(err)
			return
		}
		got = c.Wait(p)
	})
	r.e.RunUntilIdle()
	if got == nil {
		t.Fatal("want I/O error past capacity")
	}
	if r.drv.Stats().IOErrors != 1 {
		t.Fatalf("IOErrors = %d", r.drv.Stats().IOErrors)
	}
}

func TestStatsCountReadsWrites(t *testing.T) {
	r := newRig(t)
	r.submitAndWait(t, 0, make([]byte, 1024), false, trace.OriginData)
	r.submitAndWait(t, 5000, make([]byte, 2048), true, trace.OriginData)
	s := r.drv.Stats()
	if s.Reads != 1 || s.Writes != 1 || s.Sectors != 6 || s.Requests != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestMergedRequestTracedOnce(t *testing.T) {
	r := newRig(t)
	for i := 0; i < 8; i++ {
		if _, err := r.q.Submit(uint32(3000+2*i), make([]byte, 1024), true, trace.OriginData); err != nil {
			t.Fatal(err)
		}
	}
	r.e.RunUntilIdle()
	recs := r.ring.Drain(0)
	if len(recs) != 1 {
		t.Fatalf("merged burst produced %d trace records, want 1 physical request", len(recs))
	}
	if recs[0].KB() != 8 {
		t.Fatalf("merged request size = %d KB, want 8", recs[0].KB())
	}
}

func TestDeterministicTraces(t *testing.T) {
	run := func() []trace.Record {
		e := sim.NewEngine(9)
		defer e.Close()
		d := disk.New(e, disk.DefaultParams())
		q := blockio.New(e)
		ring := trace.NewRing(1 << 12)
		drv := New(e, d, q, 0, ring)
		drv.SetLevel(LevelFull)
		for i := 0; i < 30; i++ {
			sector := uint32((i * 99991) % 1000000)
			if _, err := q.Submit(sector&^1, make([]byte, 1024), i%3 == 0, trace.OriginData); err != nil {
				t.Fatal(err)
			}
		}
		e.RunUntilIdle()
		return ring.Drain(0)
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}
