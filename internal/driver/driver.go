// Package driver implements the instrumented IDE disk device driver that is
// the measurement instrument of Berry & El-Ghazawi's study.
//
// The driver sits between the block request queue and the disk: it receives
// each dispatched physical request, and — when instrumentation is enabled —
// emits a trace entry consisting of a timestamp, the disk sector number
// requested, a read/write flag, and a count of the remaining I/O requests to
// be processed, exactly as the paper describes. Entries go to a pluggable
// sink (in the full system, the kernel message ring exposed via the proc
// filesystem). The instrumentation level is controlled at run time through
// an ioctl-style call, so traces can be turned on and off without
// "rebooting" the simulated node.
package driver

import (
	"fmt"

	"essio/internal/blockio"
	"essio/internal/disk"
	"essio/internal/iotrace"
	"essio/internal/obs"
	"essio/internal/sim"
	"essio/internal/trace"
)

// Level selects how much the driver records.
type Level int

const (
	// LevelOff disables tracing.
	LevelOff Level = iota
	// LevelBasic records timestamp, sector, and read/write flag.
	LevelBasic
	// LevelFull additionally records request length, pending-queue count,
	// and the ground-truth origin tag.
	LevelFull
)

// Ioctl command numbers, in the spirit of the study's ioctl control knob.
const (
	IoctlTraceOff  = 0x4500
	IoctlTraceOn   = 0x4501 // argument: desired Level (LevelBasic/LevelFull)
	IoctlTraceStat = 0x4502 // returns number of records emitted
	IoctlObsLevel  = 0x4503 // argument: desired obs.Level; returns the prior level
)

// Sink receives trace records as the driver emits them. *trace.Ring
// satisfies it.
type Sink interface {
	Append(trace.Record)
}

// Stats counts driver activity.
type Stats struct {
	Requests uint64
	Reads    uint64
	Writes   uint64
	Sectors  uint64
	Traced   uint64
	IOErrors uint64
}

// Driver is one node's instrumented disk driver.
type Driver struct {
	e       *sim.Engine
	disk    *disk.Disk
	queue   *blockio.Queue
	node    uint8
	level   Level
	sink    Sink
	stats   Stats
	reg     *obs.Registry
	om      driverMetrics
	journal *iotrace.Journal
}

// SetJournal attaches the node's per-request I/O journal; nil detaches.
// At dispatch the driver journals each segment's queue wait, and the
// physical request's disk positioning and transfer spans.
func (v *Driver) SetJournal(j *iotrace.Journal) { v.journal = j }

// driverMetrics holds the driver's observability handles; the zero
// value records nothing.
type driverMetrics struct {
	requests      *obs.Counter
	reads, writes *obs.Counter
	sectors       *obs.Counter
	traced        *obs.Counter
	ioErrors      *obs.Counter
	queueDepth    *obs.Gauge
	residencyUS   *obs.Histogram
}

// Instrument registers the driver's metrics in reg and makes reg the
// target of the IoctlObsLevel run-time switch. Queue residency — how
// long a request sat in the elevator before dispatch — is recorded at
// Full, in microseconds of virtual time.
func (v *Driver) Instrument(reg *obs.Registry) {
	v.reg = reg
	v.om = driverMetrics{
		requests:    reg.Counter("driver/requests"),
		reads:       reg.Counter("driver/reads"),
		writes:      reg.Counter("driver/writes"),
		sectors:     reg.Counter("driver/sectors"),
		traced:      reg.Counter("driver/traced"),
		ioErrors:    reg.Counter("driver/io_errors"),
		queueDepth:  reg.Gauge("driver/queue_depth"),
		residencyUS: reg.Histogram("driver/queue_residency_us", obs.ExpBuckets(64, 2, 12)),
	}
	v.disk.Instrument(reg)
}

// New wires a driver to its disk and request queue. It installs itself as
// the queue's dispatch target.
func New(e *sim.Engine, d *disk.Disk, q *blockio.Queue, node uint8, sink Sink) *Driver {
	v := &Driver{e: e, disk: d, queue: q, node: node, sink: sink}
	q.SetStart(v.start)
	return v
}

// Level reports the current instrumentation level.
func (v *Driver) Level() Level { return v.level }

// SetLevel changes the instrumentation level directly (tests and the ioctl
// path both use it).
func (v *Driver) SetLevel(l Level) { v.level = l }

// Stats returns a copy of the driver statistics.
func (v *Driver) Stats() Stats { return v.stats }

// Ioctl implements the run-time control interface. For IoctlTraceOn the
// argument selects the level; other commands ignore it. It returns a result
// value (records emitted, for IoctlTraceStat) and an error for unknown
// commands.
func (v *Driver) Ioctl(cmd, arg int) (int, error) {
	switch cmd {
	case IoctlTraceOff:
		v.level = LevelOff
		return 0, nil
	case IoctlTraceOn:
		l := Level(arg)
		if l <= LevelOff || l > LevelFull {
			l = LevelFull
		}
		v.level = l
		return 0, nil
	case IoctlTraceStat:
		return int(v.stats.Traced), nil
	case IoctlObsLevel:
		prior := v.reg.Level()
		v.reg.SetLevel(obs.Level(arg))
		return int(prior), nil
	default:
		return 0, fmt.Errorf("driver: unknown ioctl 0x%x", cmd)
	}
}

// start services one physical request: it emits the trace entry at issue
// time, then models the disk service delay and moves the data at completion.
func (v *Driver) start(r *blockio.Request) {
	v.stats.Requests++
	v.stats.Sectors += uint64(r.Count)
	if r.Write {
		v.stats.Writes++
		v.om.writes.Inc()
	} else {
		v.stats.Reads++
		v.om.reads.Inc()
	}
	v.om.requests.Inc()
	v.om.sectors.Add(uint64(r.Count))
	v.om.queueDepth.Set(int64(v.queue.Len()))
	v.om.residencyUS.Observe(int64(v.e.Now().Sub(r.Queued)))

	if v.level > LevelOff && v.sink != nil {
		rec := trace.Record{
			Time:   v.e.Now(),
			Sector: r.Sector,
			Op:     trace.Read,
			Node:   v.node,
		}
		if r.Write {
			rec.Op = trace.Write
		}
		if v.level >= LevelFull {
			rec.Count = uint16(r.Count)
			rec.Pending = uint16(v.queue.Len())
			rec.Origin = r.Origin
		}
		v.sink.Append(rec)
		v.stats.Traced++
		v.om.traced.Inc()
	}

	if v.journal.Enabled() {
		// Per-segment queue wait: a merged segment entered the queue at
		// its own submit time, not the covering request's.
		now := v.e.Now()
		for _, s := range r.Segs {
			v.journal.Add(now, now.Sub(s.Queued), iotrace.StageQueueWait, s.Req, int64(s.Sector))
		}
	}

	det, err := v.disk.ServiceDetail(r.Sector, r.Count, r.Write)
	dur := det.Total()
	if err != nil {
		v.stats.IOErrors++
		v.om.ioErrors.Inc()
		// Fail asynchronously so completion ordering matches real drivers.
		v.e.After(0, func() { v.queue.Done(r, err) })
		return
	}
	if v.journal.Enabled() {
		// The physical request's mechanical spans, attributed to the
		// journey of its first segment — merged journeys share the
		// mechanical work, and charging it once avoids double counting.
		now := v.e.Now()
		req := r.Segs[0].Req
		v.journal.Add(now.Add(det.Pos()), det.Pos(), iotrace.StageDiskPos, req, int64(r.Sector))
		v.journal.Add(now.Add(dur), det.Xfer, iotrace.StageDiskTransfer, req, int64(r.Count)*trace.SectorSize)
	}
	v.e.After(dur, func() {
		var ioErr error
		for _, s := range r.Segs {
			if r.Write {
				ioErr = v.disk.WriteAt(s.Sector, s.Buf)
			} else {
				ioErr = v.disk.ReadAt(s.Sector, s.Buf)
			}
			if ioErr != nil {
				break
			}
		}
		if ioErr != nil {
			v.stats.IOErrors++
			v.om.ioErrors.Inc()
		}
		v.queue.Done(r, ioErr)
	})
}
