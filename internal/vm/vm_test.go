package vm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"essio/internal/blockio"
	"essio/internal/buffercache"
	"essio/internal/disk"
	"essio/internal/driver"
	"essio/internal/extfs"
	"essio/internal/sim"
	"essio/internal/trace"
)

type rig struct {
	e         *sim.Engine
	q         *blockio.Queue
	ring      *trace.Ring
	bc        *buffercache.Cache
	fs        *extfs.FS
	pg        *Pager
	pagerDisk *disk.Disk
}

// newRig builds a pager with the given frame count over a real disk stack.
func newRig(t *testing.T, frames int, withFS bool) *rig {
	t.Helper()
	e := sim.NewEngine(1)
	t.Cleanup(e.Close)
	d := disk.New(e, disk.DefaultParams())
	q := blockio.New(e)
	ring := trace.NewRing(1 << 18)
	drv := driver.New(e, d, q, 0, ring)
	drv.SetLevel(driver.LevelFull)
	bc := buffercache.New(e, q, 1024)
	r := &rig{e: e, q: q, ring: ring, bc: bc, pagerDisk: d}
	if withFS {
		e.Spawn("mkfs", func(p *sim.Proc) {
			fs, err := extfs.Mkfs(p, bc, 0, 2*extfs.BlocksPerGroup)
			if err != nil {
				t.Errorf("mkfs: %v", err)
				return
			}
			r.fs = fs
		})
		e.RunUntilIdle()
		ring.Drain(0) // discard mkfs traffic
	}
	swap := NewSwapArea(900000, 2048) // 8 MB swap high on the disk
	r.pg = NewPager(e, q, bc, r.fs, frames, swap)
	return r
}

func (r *rig) run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	r.e.Spawn("test", fn)
	r.e.RunUntilIdle()
}

// countOrigin tallies drained trace records by origin.
func countOrigin(recs []trace.Record) map[trace.Origin]int {
	m := map[trace.Origin]int{}
	for _, rec := range recs {
		m[rec.Origin]++
	}
	return m
}

func TestZeroFillNoIO(t *testing.T) {
	r := newRig(t, 64, false)
	r.run(t, func(p *sim.Proc) {
		as := r.pg.NewAddressSpace("a")
		seg := as.AddAnonSegment("heap", 10*PageSize)
		for i := 0; i < 10; i++ {
			if err := seg.Touch(p, i*PageSize, false); err != nil {
				t.Fatal(err)
			}
		}
	})
	if n := len(r.ring.Drain(0)); n != 0 {
		t.Fatalf("zero-fill generated %d disk requests, want 0", n)
	}
	s := r.pg.Stats()
	if s.ZeroFills != 10 || s.Faults != 10 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestResidentTouchIsFree(t *testing.T) {
	r := newRig(t, 64, false)
	r.run(t, func(p *sim.Proc) {
		as := r.pg.NewAddressSpace("a")
		seg := as.AddAnonSegment("heap", PageSize)
		for i := 0; i < 100; i++ {
			if err := seg.Touch(p, 0, false); err != nil {
				t.Fatal(err)
			}
		}
	})
	if s := r.pg.Stats(); s.Faults != 1 {
		t.Fatalf("Faults = %d, want 1", s.Faults)
	}
}

func TestSwapOutProducesPageSizedWrites(t *testing.T) {
	// 8 frames, 16 dirty pages: must swap, each I/O exactly 4 KB.
	r := newRig(t, 8, false)
	r.run(t, func(p *sim.Proc) {
		as := r.pg.NewAddressSpace("a")
		seg := as.AddAnonSegment("heap", 16*PageSize)
		for i := 0; i < 16; i++ {
			if err := seg.Touch(p, i*PageSize, true); err != nil {
				t.Fatal(err)
			}
		}
	})
	recs := r.ring.Drain(0)
	if len(recs) == 0 {
		t.Fatal("no swap traffic despite memory pressure")
	}
	for _, rec := range recs {
		if rec.Origin != trace.OriginSwap {
			t.Fatalf("unexpected origin %v", rec.Origin)
		}
		if rec.Op != trace.Write {
			t.Fatalf("first pass should only swap out, got %v", rec)
		}
		if rec.KB() != 4 {
			t.Fatalf("swap request = %d KB, want 4", rec.KB())
		}
	}
	if s := r.pg.Stats(); s.SwapOuts == 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestThrashingSwapsInAndOut(t *testing.T) {
	r := newRig(t, 8, false)
	r.run(t, func(p *sim.Proc) {
		as := r.pg.NewAddressSpace("a")
		seg := as.AddAnonSegment("heap", 16*PageSize)
		for pass := 0; pass < 3; pass++ {
			for i := 0; i < 16; i++ {
				if err := seg.Touch(p, i*PageSize, true); err != nil {
					t.Fatal(err)
				}
			}
		}
	})
	s := r.pg.Stats()
	if s.SwapIns == 0 || s.SwapOuts == 0 {
		t.Fatalf("stats = %+v; want both swap directions", s)
	}
	recs := r.ring.Drain(0)
	reads, writes := 0, 0
	for _, rec := range recs {
		if rec.Op == trace.Read {
			reads++
		} else {
			writes++
		}
	}
	if reads == 0 || writes == 0 {
		t.Fatalf("reads=%d writes=%d", reads, writes)
	}
}

func TestCleanPagesDropWithoutIO(t *testing.T) {
	r := newRig(t, 8, false)
	r.run(t, func(p *sim.Proc) {
		as := r.pg.NewAddressSpace("a")
		seg := as.AddAnonSegment("heap", 32*PageSize)
		// Read-only touches: pages are clean, eviction must be free.
		for i := 0; i < 32; i++ {
			if err := seg.Touch(p, i*PageSize, false); err != nil {
				t.Fatal(err)
			}
		}
	})
	if n := len(r.ring.Drain(0)); n != 0 {
		t.Fatalf("clean eviction generated %d I/Os", n)
	}
	if s := r.pg.Stats(); s.DropClean == 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestClockPrefersUnreferenced(t *testing.T) {
	r := newRig(t, 4, false)
	r.run(t, func(p *sim.Proc) {
		as := r.pg.NewAddressSpace("a")
		seg := as.AddAnonSegment("heap", 8*PageSize)
		// Fill memory with pages 0-3.
		for i := 0; i < 4; i++ {
			if err := seg.Touch(p, i*PageSize, false); err != nil {
				t.Fatal(err)
			}
		}
		// First eviction round clears every reference bit and evicts
		// one page (all were equally referenced — clock cannot tell
		// them apart yet).
		if err := seg.Touch(p, 4*PageSize, false); err != nil {
			t.Fatal(err)
		}
		// Now give page 1 a second chance by re-referencing it...
		if !seg.Resident(1 * PageSize) {
			t.Skip("page 1 was the first-round victim; scenario needs it resident")
		}
		if err := seg.Touch(p, 1*PageSize, false); err != nil {
			t.Fatal(err)
		}
		// ...and fault in another page. The victim must be one of the
		// unreferenced pages, never the freshly referenced page 1.
		if err := seg.Touch(p, 5*PageSize, false); err != nil {
			t.Fatal(err)
		}
		if !seg.Resident(1 * PageSize) {
			t.Fatal("referenced page evicted while unreferenced pages were available")
		}
	})
}

func TestFileBackedFaultReadsFromFile(t *testing.T) {
	r := newRig(t, 64, true)
	var ino uint32
	r.run(t, func(p *sim.Proc) {
		var err error
		ino, err = r.fs.Create(p, "/prog")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.fs.WriteAt(p, ino, 0, make([]byte, 8*PageSize), trace.OriginData); err != nil {
			t.Fatal(err)
		}
		if err := r.fs.Sync(p); err != nil {
			t.Fatal(err)
		}
	})
	// Fault through a cold buffer cache so paging must hit the disk:
	// remount on a fresh stack over the same platters.
	q2 := blockio.New(r.e)
	ring2 := trace.NewRing(1 << 16)
	drv2 := driver.New(r.e, r.pagerDisk, q2, 0, ring2)
	drv2.SetLevel(driver.LevelFull)
	bc2 := buffercache.New(r.e, q2, 1024)
	r.run(t, func(p *sim.Proc) {
		fs2, err := extfs.Mount(p, bc2, 0)
		if err != nil {
			t.Fatal(err)
		}
		pg2 := NewPager(r.e, q2, bc2, fs2, 64, NewSwapArea(900000, 256))
		ring2.Drain(0) // drop mount traffic
		as := pg2.NewAddressSpace("a")
		text := as.AddFileSegment("text", ino, 0, 8*PageSize)
		for i := 0; i < 8; i++ {
			if err := text.Touch(p, i*PageSize, false); err != nil {
				t.Fatal(err)
			}
		}
		if s := pg2.Stats(); s.FileFaults != 8 {
			t.Errorf("FileFaults = %d, want 8", s.FileFaults)
		}
	})
	recs := ring2.Drain(0)
	if len(recs) == 0 {
		t.Fatal("no paging I/O for file-backed faults")
	}
	// Metadata reads (inode table, bitmaps) are expected on a cold cache;
	// everything else must be paging reads, and contiguously allocated
	// file blocks must arrive as 4 KB requests.
	four := 0
	for _, rec := range recs {
		if rec.Origin == trace.OriginMeta {
			continue
		}
		if rec.Origin != trace.OriginPaging || rec.Op != trace.Read {
			t.Fatalf("unexpected record %v", rec)
		}
		if rec.KB() == 4 {
			four++
		}
	}
	if four == 0 {
		t.Fatalf("no 4 KB paging requests observed: %v", recs)
	}
}

func TestFileFaultHitsBufferCache(t *testing.T) {
	r := newRig(t, 64, true)
	var ino uint32
	r.run(t, func(p *sim.Proc) {
		var err error
		ino, err = r.fs.Create(p, "/prog")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.fs.WriteAt(p, ino, 0, make([]byte, 2*PageSize), trace.OriginData); err != nil {
			t.Fatal(err)
		}
		// Do not sync: contents are still in the buffer cache, so the
		// fault should be served without disk reads.
	})
	r.ring.Drain(0)
	r.run(t, func(p *sim.Proc) {
		as := r.pg.NewAddressSpace("a")
		text := as.AddFileSegment("text", ino, 0, 2*PageSize)
		if err := text.TouchRange(p, 0, 2*PageSize, false); err != nil {
			t.Fatal(err)
		}
	})
	for _, rec := range r.ring.Drain(0) {
		if rec.Op == trace.Read {
			t.Fatalf("cache-resident file fault caused a disk read: %v", rec)
		}
	}
}

func TestSwapSlotReuseCreatesHotSpot(t *testing.T) {
	r := newRig(t, 4, false)
	r.run(t, func(p *sim.Proc) {
		as := r.pg.NewAddressSpace("a")
		seg := as.AddAnonSegment("heap", 12*PageSize)
		for pass := 0; pass < 4; pass++ {
			for i := 0; i < 12; i++ {
				if err := seg.Touch(p, i*PageSize, true); err != nil {
					t.Fatal(err)
				}
			}
		}
	})
	// First-fit slot allocation keeps swap traffic near the area start.
	recs := r.ring.Drain(0)
	maxSector := uint32(0)
	for _, rec := range recs {
		if rec.Sector > maxSector {
			maxSector = rec.Sector
		}
	}
	areaStart := uint32(900000)
	if maxSector >= areaStart+uint32(64*SectorsPerPage) {
		t.Fatalf("swap traffic spread to sector %d; first-fit should stay near %d", maxSector, areaStart)
	}
	if r.pg.swapAreaInUse() > 12 {
		t.Fatalf("slots in use = %d, want <= working set", r.pg.swapAreaInUse())
	}
}

// swapAreaInUse is a test hook.
func (pg *Pager) swapAreaInUse() int { return pg.swap.InUse() }

func TestReleaseFreesEverything(t *testing.T) {
	r := newRig(t, 8, false)
	r.run(t, func(p *sim.Proc) {
		as := r.pg.NewAddressSpace("a")
		seg := as.AddAnonSegment("heap", 16*PageSize)
		for i := 0; i < 16; i++ {
			if err := seg.Touch(p, i*PageSize, true); err != nil {
				t.Fatal(err)
			}
		}
		as.Release(p)
	})
	if r.pg.FreeFrames() != r.pg.Frames() {
		t.Fatalf("FreeFrames = %d, want all %d back", r.pg.FreeFrames(), r.pg.Frames())
	}
	if r.pg.swapAreaInUse() != 0 {
		t.Fatalf("swap slots leaked: %d", r.pg.swapAreaInUse())
	}
	if r.pg.ResidentPages() != 0 {
		t.Fatalf("resident pages leaked: %d", r.pg.ResidentPages())
	}
}

func TestTwoAddressSpacesCompete(t *testing.T) {
	r := newRig(t, 8, false)
	done := 0
	r.e.Spawn("a", func(p *sim.Proc) {
		as := r.pg.NewAddressSpace("a")
		seg := as.AddAnonSegment("heap", 8*PageSize)
		for pass := 0; pass < 3; pass++ {
			for i := 0; i < 8; i++ {
				if err := seg.Touch(p, i*PageSize, true); err != nil {
					t.Error(err)
					return
				}
			}
		}
		done++
	})
	r.e.Spawn("b", func(p *sim.Proc) {
		as := r.pg.NewAddressSpace("b")
		seg := as.AddAnonSegment("heap", 8*PageSize)
		for pass := 0; pass < 3; pass++ {
			for i := 0; i < 8; i++ {
				if err := seg.Touch(p, i*PageSize, true); err != nil {
					t.Error(err)
					return
				}
			}
		}
		done++
	})
	r.e.RunUntilIdle()
	if done != 2 {
		t.Fatalf("done = %d; paging under competition deadlocked?", done)
	}
	if s := r.pg.Stats(); s.SwapOuts == 0 {
		t.Fatalf("no swapping under 2x overcommit: %+v", s)
	}
}

func TestTouchOutOfRange(t *testing.T) {
	r := newRig(t, 8, false)
	r.run(t, func(p *sim.Proc) {
		as := r.pg.NewAddressSpace("a")
		seg := as.AddAnonSegment("heap", PageSize)
		if err := seg.Touch(p, PageSize, false); err == nil {
			t.Error("want error touching past segment end")
		}
		if err := seg.Touch(p, -1, false); err == nil {
			t.Error("want error for negative offset")
		}
		if err := seg.TouchRange(p, 0, 2*PageSize, false); err == nil {
			t.Error("want error for range past end")
		}
	})
}

func TestOutOfSwapFails(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Close()
	d := disk.New(e, disk.DefaultParams())
	q := blockio.New(e)
	drv := driver.New(e, d, q, 0, trace.NewRing(4096))
	drv.SetLevel(driver.LevelOff)
	bc := buffercache.New(e, q, 64)
	pg := NewPager(e, q, bc, nil, 2, NewSwapArea(900000, 2))
	var firstErr error
	e.Spawn("t", func(p *sim.Proc) {
		as := pg.NewAddressSpace("a")
		seg := as.AddAnonSegment("heap", 16*PageSize)
		for i := 0; i < 16; i++ {
			if err := seg.Touch(p, i*PageSize, true); err != nil {
				firstErr = err
				return
			}
		}
	})
	e.RunUntilIdle()
	if firstErr == nil {
		t.Fatal("want out-of-swap error")
	}
}

func TestPagerPanicsOnTinyConfig(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for frames < 2")
		}
	}()
	NewPager(e, blockio.New(e), nil, nil, 1, nil)
}

// Property: under random touch/release sequences the pager's frame
// accounting never leaks — free + resident always equals the total, no page
// is both resident and swap-backed, and releasing everything restores all
// frames and swap slots.
func TestQuickPagerInvariants(t *testing.T) {
	f := func(ops []uint16) bool {
		e := sim.NewEngine(31)
		defer e.Close()
		d := disk.New(e, disk.DefaultParams())
		q := blockio.New(e)
		drv := driver.New(e, d, q, 0, trace.NewRing(1<<14))
		drv.SetLevel(driver.LevelOff)
		bc := buffercache.New(e, q, 64)
		pg := NewPager(e, q, bc, nil, 16, NewSwapArea(900000, 512))
		ok := true
		e.Spawn("t", func(p *sim.Proc) {
			as := pg.NewAddressSpace("q")
			segs := []*Segment{
				as.AddAnonSegment("a", 12*PageSize),
				as.AddAnonSegment("b", 12*PageSize),
			}
			n := len(ops)
			if n > 80 {
				n = 80
			}
			for i := 0; i < n; i++ {
				op := ops[i]
				seg := segs[int(op)%len(segs)]
				page := (int(op) / 2) % 12
				if err := seg.Touch(p, page*PageSize, op%3 == 0); err != nil {
					ok = false
					return
				}
				if pg.FreeFrames()+pg.ResidentPages() != pg.Frames() {
					ok = false
					return
				}
			}
			as.Release(p)
			if pg.FreeFrames() != pg.Frames() || pg.ResidentPages() != 0 {
				ok = false
			}
			if pg.swapAreaInUse() != 0 {
				ok = false
			}
		})
		e.RunUntilIdle()
		return ok
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(17))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentReleaseThenTouchFails(t *testing.T) {
	r := newRig(t, 8, false)
	r.run(t, func(p *sim.Proc) {
		as := r.pg.NewAddressSpace("a")
		seg := as.AddAnonSegment("x", 4*PageSize)
		if err := seg.TouchRange(p, 0, 4*PageSize, true); err != nil {
			t.Fatal(err)
		}
		before := r.pg.FreeFrames()
		seg.Release(p)
		if r.pg.FreeFrames() != before+4 {
			t.Fatalf("FreeFrames %d -> %d; release must return 4 frames", before, r.pg.FreeFrames())
		}
		if err := seg.Touch(p, 0, false); err == nil {
			t.Fatal("touch of released segment must fail")
		}
		// Remaining segments in the AS stay usable.
		other := as.AddAnonSegment("y", PageSize)
		if err := other.Touch(p, 0, true); err != nil {
			t.Fatal(err)
		}
	})
}
