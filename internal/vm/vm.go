// Package vm implements the node's virtual memory system: 4 KB demand
// paging over a fixed pool of physical page frames, with file-backed pages
// read through the buffer cache (text/initialized data) and anonymous pages
// written to a dedicated swap partition on eviction.
//
// This subsystem generates the paper's 4 KB request class: every hard page
// fault and every swap-out is one 4 KB disk request. The swap slot allocator
// is deliberately first-fit, which concentrates swap traffic into the low
// slots of the partition and produces the disk hot spot the paper's temporal
// locality analysis finds near sector 45,000.
package vm

import (
	"fmt"

	"essio/internal/blockio"
	"essio/internal/buffercache"
	"essio/internal/extfs"
	"essio/internal/sim"
	"essio/internal/trace"
)

// PageSize is the page size in bytes.
const PageSize = 4096

// SectorsPerPage is how many disk sectors one page covers.
const SectorsPerPage = PageSize / trace.SectorSize

// blocksPerPage is how many buffer-cache blocks one page covers.
const blocksPerPage = PageSize / buffercache.BlockSize

// backing says where a non-resident page's contents live.
type backing uint8

const (
	backZero backing = iota // never written: zero-fill on fault, no I/O
	backFile                // read from the segment's file
	backSwap                // read from its swap slot
)

// page is the per-page state.
type page struct {
	seg        *Segment
	idx        int
	resident   bool
	dirty      bool
	referenced bool
	busy       bool
	back       backing
	swapSlot   int32
	wq         *sim.WaitQueue
}

// Stats counts paging activity.
type Stats struct {
	ZeroFills  uint64 // anonymous first touches (no I/O)
	FileFaults uint64 // 4 KB reads from files
	SwapIns    uint64 // 4 KB reads from swap
	SwapOuts   uint64 // 4 KB writes to swap
	DropClean  uint64 // clean evictions (no I/O)
	Faults     uint64 // total hard+soft faults (non-resident touches)
}

// SwapArea manages slots in the swap partition.
type SwapArea struct {
	startSector uint32
	slots       int
	used        []bool
	inUse       int
}

// NewSwapArea returns a swap area of the given size starting at an absolute
// disk sector.
func NewSwapArea(startSector uint32, slots int) *SwapArea {
	if slots <= 0 {
		panic("vm: swap area needs at least one slot")
	}
	return &SwapArea{startSector: startSector, slots: slots, used: make([]bool, slots)}
}

// alloc finds a free slot first-fit; -1 when full.
func (s *SwapArea) alloc() int32 {
	for i, u := range s.used {
		if !u {
			s.used[i] = true
			s.inUse++
			return int32(i)
		}
	}
	return -1
}

func (s *SwapArea) release(slot int32) {
	if slot >= 0 && s.used[slot] {
		s.used[slot] = false
		s.inUse--
	}
}

// SectorOf maps a slot to its absolute disk sector.
func (s *SwapArea) SectorOf(slot int32) uint32 {
	return s.startSector + uint32(slot)*SectorsPerPage
}

// InUse reports the number of allocated slots.
func (s *SwapArea) InUse() int { return s.inUse }

// Slots reports the total slot count.
func (s *SwapArea) Slots() int { return s.slots }

// Pager is one node's physical memory and paging engine.
type Pager struct {
	e       *sim.Engine
	q       *blockio.Queue     // swap I/O goes straight to the block layer
	bc      *buffercache.Cache // file-backed faults go through the cache
	fs      *extfs.FS
	frames  int
	free    int
	clock   []*page // resident pages, circular scan
	hand    int
	swap    *SwapArea
	waitq   *sim.WaitQueue
	stats   Stats
	scratch []byte
}

// NewPager builds a pager with the given number of physical frames. fs may
// be nil if no file-backed segments will be mapped.
func NewPager(e *sim.Engine, q *blockio.Queue, bc *buffercache.Cache, fs *extfs.FS, frames int, swap *SwapArea) *Pager {
	if frames < 2 {
		panic("vm: need at least 2 frames")
	}
	return &Pager{
		e: e, q: q, bc: bc, fs: fs,
		frames: frames, free: frames,
		swap:    swap,
		waitq:   sim.NewWaitQueue(e),
		scratch: make([]byte, PageSize),
	}
}

// Stats returns a copy of the paging statistics.
func (pg *Pager) Stats() Stats { return pg.stats }

// FreeFrames reports currently free physical frames.
func (pg *Pager) FreeFrames() int { return pg.free }

// Frames reports the total physical frames.
func (pg *Pager) Frames() int { return pg.frames }

// ResidentPages reports the number of resident pages.
func (pg *Pager) ResidentPages() int { return len(pg.clock) }

// AddressSpace is a process's set of mapped segments.
type AddressSpace struct {
	pg   *Pager
	name string
	segs []*Segment
}

// NewAddressSpace creates an empty address space.
func (pg *Pager) NewAddressSpace(name string) *AddressSpace {
	return &AddressSpace{pg: pg, name: name}
}

// Segment is a contiguous mapped region.
type Segment struct {
	as       *AddressSpace
	name     string
	pages    []*page
	ino      uint32 // file backing (0 = anonymous)
	offset   int64  // file offset of page 0
	size     int
	released bool
}

// Name returns the segment name.
func (s *Segment) Name() string { return s.name }

// Pages reports the page count.
func (s *Segment) Pages() int { return len(s.pages) }

// Size reports the mapped size in bytes.
func (s *Segment) Size() int { return s.size }

// AddAnonSegment maps size bytes of zero-fill anonymous memory (heap, bss,
// stack).
func (as *AddressSpace) AddAnonSegment(name string, size int) *Segment {
	return as.addSegment(name, 0, 0, size)
}

// AddFileSegment maps size bytes of the file at ino starting at offset
// (program text and initialized data, demand-loaded).
func (as *AddressSpace) AddFileSegment(name string, ino uint32, offset int64, size int) *Segment {
	return as.addSegment(name, ino, offset, size)
}

func (as *AddressSpace) addSegment(name string, ino uint32, offset int64, size int) *Segment {
	if size <= 0 {
		panic("vm: segment size must be positive")
	}
	npages := (size + PageSize - 1) / PageSize
	s := &Segment{as: as, name: name, ino: ino, offset: offset, size: size}
	s.pages = make([]*page, npages)
	for i := range s.pages {
		b := backZero
		if ino != 0 {
			b = backFile
		}
		s.pages[i] = &page{seg: s, idx: i, back: b, swapSlot: -1, wq: sim.NewWaitQueue(as.pg.e)}
	}
	as.segs = append(as.segs, s)
	return s
}

// Touch accesses the page containing byte offset off. write marks it dirty.
// A fault blocks the caller for the duration of the paging I/O.
func (s *Segment) Touch(p *sim.Proc, off int, write bool) error {
	if s.released {
		return fmt.Errorf("vm: touch of released segment %q", s.name)
	}
	if off < 0 || off >= s.size {
		return fmt.Errorf("vm: touch at %d outside segment %q of %d bytes", off, s.name, s.size)
	}
	return s.as.pg.touchPage(p, s.pages[off/PageSize], write)
}

// TouchRange accesses every page overlapping [off, off+length).
func (s *Segment) TouchRange(p *sim.Proc, off, length int, write bool) error {
	if length <= 0 {
		return nil
	}
	first := off / PageSize
	last := (off + length - 1) / PageSize
	for i := first; i <= last; i++ {
		if i < 0 || i >= len(s.pages) {
			return fmt.Errorf("vm: range [%d,+%d) outside segment %q", off, length, s.name)
		}
		if err := s.as.pg.touchPage(p, s.pages[i], write); err != nil {
			return err
		}
	}
	return nil
}

// Resident reports whether the page containing off is in memory (tests).
func (s *Segment) Resident(off int) bool {
	return s.pages[off/PageSize].resident
}

// Release unmaps every segment, freeing frames and swap slots. Busy pages
// (paging I/O in flight) are waited out.
func (as *AddressSpace) Release(p *sim.Proc) {
	for _, s := range as.segs {
		s.release(p)
	}
	as.pg.waitq.WakeAll()
	as.segs = nil
}

// Release unmaps one segment (free/munmap of a large allocation), freeing
// its frames and swap slots. Touching the segment afterwards is an error.
func (s *Segment) Release(p *sim.Proc) {
	s.release(p)
	for i, seg := range s.as.segs {
		if seg == s {
			s.as.segs = append(s.as.segs[:i], s.as.segs[i+1:]...)
			break
		}
	}
	s.as.pg.waitq.WakeAll()
}

func (s *Segment) release(p *sim.Proc) {
	for _, pa := range s.pages {
		for pa.busy {
			pa.wq.Sleep(p)
		}
		if pa.resident {
			s.as.pg.removeResident(pa)
			s.as.pg.free++
		}
		if pa.swapSlot >= 0 {
			s.as.pg.swap.release(pa.swapSlot)
			pa.swapSlot = -1
		}
		pa.resident = false
		pa.dirty = false
	}
	s.released = true
}

// touchPage is the fault handler.
func (pg *Pager) touchPage(p *sim.Proc, pa *page, write bool) error {
	for pa.busy {
		pa.wq.Sleep(p)
	}
	if pa.resident {
		pa.referenced = true
		if write {
			pa.dirty = true
		}
		return nil
	}
	pg.stats.Faults++
	pa.busy = true
	err := pg.pageIn(p, pa)
	pa.busy = false
	pa.wq.WakeAll()
	if err != nil {
		return err
	}
	pa.resident = true
	pa.referenced = true
	pa.dirty = write
	pg.addResident(pa)
	return nil
}

// pageIn obtains a frame and loads the page contents.
func (pg *Pager) pageIn(p *sim.Proc, pa *page) error {
	if err := pg.getFrame(p); err != nil {
		return err
	}
	switch pa.back {
	case backZero:
		pg.stats.ZeroFills++
		return nil
	case backFile:
		pg.stats.FileFaults++
		return pg.readFilePage(p, pa)
	case backSwap:
		pg.stats.SwapIns++
		sector := pg.swap.SectorOf(pa.swapSlot)
		done, err := pg.q.Submit(sector, pg.scratch, false, trace.OriginSwap)
		if err != nil {
			pg.free++
			return err
		}
		if err := done.Wait(p); err != nil {
			pg.free++
			return err
		}
		// Early-Linux style: the swap slot is released on swap-in and
		// re-allocated at the next swap-out.
		pg.swap.release(pa.swapSlot)
		pa.swapSlot = -1
		pa.back = backZero
		return nil
	}
	return fmt.Errorf("vm: unknown backing %d", pa.back)
}

// readFilePage reads one page from the segment's file through the buffer
// cache. The blocks are prefetched in one burst so contiguous blocks merge
// into a single 4 KB physical request.
func (pg *Pager) readFilePage(p *sim.Proc, pa *page) error {
	if pg.fs == nil {
		return fmt.Errorf("vm: file-backed segment %q without filesystem", pa.seg.name)
	}
	off := pa.seg.offset + int64(pa.idx)*PageSize
	fileBlock := uint32(off / buffercache.BlockSize)
	if err := pg.fs.PrefetchFile(p, pa.seg.ino, fileBlock, blocksPerPage, trace.OriginPaging); err != nil {
		pg.free++
		return err
	}
	n := pa.seg.size - pa.idx*PageSize
	if n > PageSize {
		n = PageSize
	}
	if _, err := pg.fs.ReadAt(p, pa.seg.ino, off, pg.scratch[:n], trace.OriginPaging); err != nil {
		pg.free++
		return err
	}
	return nil
}

// getFrame secures one free frame, evicting via the clock algorithm when
// none are free.
func (pg *Pager) getFrame(p *sim.Proc) error {
	for pg.free == 0 {
		if err := pg.evictOne(p); err != nil {
			return err
		}
	}
	pg.free--
	return nil
}

// evictOne runs the clock (second chance) scan and evicts one page.
func (pg *Pager) evictOne(p *sim.Proc) error {
	if len(pg.clock) == 0 {
		// All frames are transiently held by in-flight faults; wait.
		pg.waitq.Sleep(p)
		return nil
	}
	// Bounded sweep: after two full passes everything has lost its
	// reference bit, so the scan must find a victim.
	for sweep := 0; sweep < 2*len(pg.clock)+1; sweep++ {
		if pg.hand >= len(pg.clock) {
			pg.hand = 0
		}
		pa := pg.clock[pg.hand]
		if pa.busy {
			pg.hand++
			continue
		}
		if pa.referenced {
			pa.referenced = false
			pg.hand++
			continue
		}
		// Victim found.
		if !pa.dirty {
			pg.stats.DropClean++
			pg.removeResident(pa)
			pa.resident = false
			pg.free++
			pg.waitq.WakeAll()
			return nil
		}
		return pg.swapOut(p, pa)
	}
	// Everything busy: wait for some I/O to finish.
	pg.waitq.Sleep(p)
	return nil
}

// swapOut writes a dirty page to swap and frees its frame.
func (pg *Pager) swapOut(p *sim.Proc, pa *page) error {
	if pg.swap == nil {
		return fmt.Errorf("vm: dirty page in %q with no swap configured", pa.seg.name)
	}
	slot := pg.swap.alloc()
	if slot < 0 {
		return fmt.Errorf("vm: out of swap space (%d slots)", pg.swap.Slots())
	}
	pa.busy = true
	done, err := pg.q.Submit(pg.swap.SectorOf(slot), pg.scratch, true, trace.OriginSwap)
	if err == nil {
		err = done.Wait(p)
	}
	pa.busy = false
	pa.wq.WakeAll()
	if err != nil {
		pg.swap.release(slot)
		return err
	}
	pg.stats.SwapOuts++
	pa.swapSlot = slot
	pa.back = backSwap
	pa.dirty = false
	pg.removeResident(pa)
	pa.resident = false
	pg.free++
	pg.waitq.WakeAll()
	return nil
}

// addResident inserts a page into the clock list.
func (pg *Pager) addResident(pa *page) {
	pg.clock = append(pg.clock, pa)
}

// removeResident deletes a page from the clock list.
func (pg *Pager) removeResident(pa *page) {
	for i, q := range pg.clock {
		if q == pa {
			pg.clock = append(pg.clock[:i], pg.clock[i+1:]...)
			if pg.hand > i {
				pg.hand--
			}
			return
		}
	}
}
