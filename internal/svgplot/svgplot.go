// Package svgplot renders the study's figures as standalone SVG documents —
// the publication-quality counterpart to package asciiplot, still using only
// the standard library.
package svgplot

import (
	"fmt"
	"math"
	"strings"

	"essio/internal/analysis"
)

// geometry shared by the plots.
const (
	width   = 640
	height  = 400
	marginL = 70
	marginR = 20
	marginT = 40
	marginB = 50
)

func header(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`,
		width, height, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>`)
	fmt.Fprintf(&b, `<text x="%d" y="24" font-family="sans-serif" font-size="16" font-weight="bold">%s</text>`,
		marginL, escape(title))
	return b.String()
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// axis draws the plot frame with min/max labels.
func axis(b *strings.Builder, xlabel, ylabel string, minX, maxX, minY, maxY float64) {
	pw := width - marginL - marginR
	ph := height - marginT - marginB
	fmt.Fprintf(b, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="black"/>`,
		marginL, marginT, pw, ph)
	fm := `<text x="%v" y="%v" font-family="sans-serif" font-size="11"%s>%s</text>`
	fmt.Fprintf(b, fm, marginL, height-marginB+16, "", fmtNum(minX))
	fmt.Fprintf(b, fm, width-marginR-40, height-marginB+16, "", fmtNum(maxX))
	fmt.Fprintf(b, fm, 4, height-marginB, "", fmtNum(minY))
	fmt.Fprintf(b, fm, 4, marginT+12, "", fmtNum(maxY))
	fmt.Fprintf(b, fm, (width-len(xlabel)*6)/2, height-12, "", escape(xlabel))
	fmt.Fprintf(b, `<text x="14" y="%d" font-family="sans-serif" font-size="11" transform="rotate(-90 14 %d)">%s</text>`,
		height/2, height/2, escape(ylabel))
}

func fmtNum(v float64) string {
	if math.Abs(v) >= 10000 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.4g", v)
}

// Scatter renders a point cloud.
func Scatter(title, xlabel, ylabel string, pts []analysis.Point) string {
	var b strings.Builder
	b.WriteString(header(title))
	if len(pts) == 0 {
		b.WriteString("</svg>")
		return b.String()
	}
	minX, maxX := pts[0].T, pts[0].T
	minY, maxY := pts[0].V, pts[0].V
	for _, p := range pts {
		minX = math.Min(minX, p.T)
		maxX = math.Max(maxX, p.T)
		minY = math.Min(minY, p.V)
		maxY = math.Max(maxY, p.V)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	axis(&b, xlabel, ylabel, minX, maxX, minY, maxY)
	pw := float64(width - marginL - marginR)
	ph := float64(height - marginT - marginB)
	for _, p := range pts {
		x := float64(marginL) + pw*(p.T-minX)/(maxX-minX)
		y := float64(height-marginB) - ph*(p.V-minY)/(maxY-minY)
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="1.4" fill="black" fill-opacity="0.55"/>`, x, y)
	}
	b.WriteString("</svg>")
	return b.String()
}

// Bars renders Figure 7-style band percentages as a vertical bar chart.
func Bars(title, xlabel string, bands []analysis.Band) string {
	var b strings.Builder
	b.WriteString(header(title))
	if len(bands) == 0 {
		b.WriteString("</svg>")
		return b.String()
	}
	maxPct := 0.0
	for _, band := range bands {
		maxPct = math.Max(maxPct, band.Pct)
	}
	if maxPct == 0 {
		maxPct = 1
	}
	axis(&b, xlabel, "% of requests", 0, float64(bands[len(bands)-1].Hi), 0, maxPct)
	pw := float64(width - marginL - marginR)
	ph := float64(height - marginT - marginB)
	bw := pw / float64(len(bands))
	for i, band := range bands {
		h := ph * band.Pct / maxPct
		x := float64(marginL) + bw*float64(i)
		y := float64(height-marginB) - h
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="#4477aa" stroke="black" stroke-width="0.5"/>`,
			x+1, y, bw-2, h)
		if band.Pct > 0.01 {
			fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="9" text-anchor="middle">%.1f</text>`,
				x+bw/2, y-3, band.Pct)
		}
	}
	b.WriteString("</svg>")
	return b.String()
}

// Needles renders Figure 8-style per-sector frequency spikes.
func Needles(title string, heat []analysis.Heat, diskSectors uint32) string {
	var b strings.Builder
	b.WriteString(header(title))
	if len(heat) == 0 {
		b.WriteString("</svg>")
		return b.String()
	}
	maxV := 0.0
	for _, h := range heat {
		maxV = math.Max(maxV, h.PerSec)
	}
	if maxV == 0 {
		maxV = 1
	}
	axis(&b, "sector", "accesses/sec", 0, float64(diskSectors), 0, maxV)
	pw := float64(width - marginL - marginR)
	ph := float64(height - marginT - marginB)
	for _, h := range heat {
		x := float64(marginL) + pw*float64(h.Sector)/float64(diskSectors)
		hgt := ph * h.PerSec / maxV
		y := float64(height - marginB)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black" stroke-width="1"/>`,
			x, y, x, y-hgt)
	}
	b.WriteString("</svg>")
	return b.String()
}
