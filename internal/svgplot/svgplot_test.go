package svgplot

import (
	"strings"
	"testing"

	"essio/internal/analysis"
)

func checkSVG(t *testing.T, s string) {
	t.Helper()
	if !strings.HasPrefix(s, "<svg") || !strings.HasSuffix(s, "</svg>") {
		t.Fatalf("not a complete SVG document: %.80s ... %.40s", s, s[len(s)-40:])
	}
	if strings.Count(s, "<svg") != 1 {
		t.Fatal("nested svg elements")
	}
}

func TestScatterSVG(t *testing.T) {
	pts := []analysis.Point{{T: 0, V: 1}, {T: 10, V: 4}, {T: 20, V: 16}}
	s := Scatter("Figure 3. Request Size (wavelet)", "time (s)", "KB", pts)
	checkSVG(t, s)
	if strings.Count(s, "<circle") != 3 {
		t.Fatalf("want 3 points, got %d", strings.Count(s, "<circle"))
	}
	if !strings.Contains(s, "Figure 3") {
		t.Fatal("title missing")
	}
	// Empty input still yields a valid document.
	checkSVG(t, Scatter("empty", "x", "y", nil))
}

func TestScatterDegenerate(t *testing.T) {
	s := Scatter("one", "x", "y", []analysis.Point{{T: 5, V: 5}})
	checkSVG(t, s)
	if !strings.Contains(s, "<circle") {
		t.Fatal("single point not rendered")
	}
}

func TestBarsSVG(t *testing.T) {
	bands := []analysis.Band{
		{Lo: 0, Hi: 100000, Count: 90, Pct: 90},
		{Lo: 100000, Hi: 200000, Count: 10, Pct: 10},
	}
	s := Bars("Figure 7", "sector band", bands)
	checkSVG(t, s)
	if strings.Count(s, "<rect") < 3 { // frame + 2 bars + background
		t.Fatalf("bars missing:\n%s", s)
	}
	checkSVG(t, Bars("empty", "x", nil))
}

func TestNeedlesSVG(t *testing.T) {
	heat := []analysis.Heat{
		{Sector: 45000, PerSec: 2.0},
		{Sector: 990000, PerSec: 0.5},
	}
	s := Needles("Figure 8", heat, 1024000)
	checkSVG(t, s)
	if strings.Count(s, "<line") != 2 {
		t.Fatalf("want 2 needles, got %d", strings.Count(s, "<line"))
	}
	checkSVG(t, Needles("empty", nil, 1024000))
}

func TestTitleEscaping(t *testing.T) {
	s := Scatter(`a<b>&"c"`, "x", "y", nil)
	checkSVG(t, s)
	if strings.Contains(s, "a<b>") {
		t.Fatal("title not escaped")
	}
}
