package disk

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"essio/internal/sim"
)

func newDisk(t *testing.T) (*sim.Engine, *Disk) {
	t.Helper()
	e := sim.NewEngine(1)
	t.Cleanup(e.Close)
	return e, New(e, DefaultParams())
}

func TestDefaultParamsCapacity(t *testing.T) {
	p := DefaultParams()
	if got := int64(p.Sectors) * SectorSize; got != 500*1024*1024*1048576/1048576 && got != 524288000 {
		t.Fatalf("capacity = %d bytes, want 500 MB (524288000)", got)
	}
}

func TestServiceTimePositiveAndBounded(t *testing.T) {
	_, d := newDisk(t)
	dur, err := d.Service(1000, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if dur <= 0 {
		t.Fatalf("service time %v not positive", dur)
	}
	// One 1 KB request must finish well under 100 ms on this class of disk.
	if dur > 100*sim.Millisecond {
		t.Fatalf("service time %v implausibly large", dur)
	}
}

func TestSequentialFasterThanRandom(t *testing.T) {
	e, d := newDisk(t)
	_ = e
	var seq sim.Duration
	for i := 0; i < 100; i++ {
		dur, err := d.Service(uint32(5000+2*i), 2, false)
		if err != nil {
			t.Fatal(err)
		}
		seq += dur
	}
	_, d2 := newDisk(t)
	rng := rand.New(rand.NewSource(9))
	var rnd sim.Duration
	for i := 0; i < 100; i++ {
		dur, err := d2.Service(rng.Uint32()%(d2.Sectors()-2), 2, false)
		if err != nil {
			t.Fatal(err)
		}
		rnd += dur
	}
	if seq >= rnd {
		t.Fatalf("sequential %v not faster than random %v", seq, rnd)
	}
}

func TestLargerRequestsAmortizeOverhead(t *testing.T) {
	// 32 sectors in one request must be cheaper than 16 requests of 2.
	_, d := newDisk(t)
	one, err := d.Service(10000, 32, false)
	if err != nil {
		t.Fatal(err)
	}
	_, d2 := newDisk(t)
	var many sim.Duration
	for i := 0; i < 16; i++ {
		dur, err := d2.Service(uint32(10000+2*i), 2, false)
		if err != nil {
			t.Fatal(err)
		}
		many += dur
	}
	if one >= many {
		t.Fatalf("one big request %v not cheaper than many small %v", one, many)
	}
}

func TestServiceErrors(t *testing.T) {
	_, d := newDisk(t)
	if _, err := d.Service(0, 0, false); err == nil {
		t.Fatal("want error for zero count")
	}
	if _, err := d.Service(d.Sectors()-1, 2, false); err == nil {
		t.Fatal("want error past capacity")
	}
}

func TestStatsAccumulate(t *testing.T) {
	_, d := newDisk(t)
	if _, err := d.Service(0, 2, false); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Service(100, 4, true); err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.Reads != 1 || s.Writes != 1 {
		t.Fatalf("Reads=%d Writes=%d", s.Reads, s.Writes)
	}
	if s.SectorsRead != 2 || s.SectorsWritten != 4 {
		t.Fatalf("SectorsRead=%d SectorsWritten=%d", s.SectorsRead, s.SectorsWritten)
	}
	if s.BusyTime <= 0 || s.TransferTime <= 0 {
		t.Fatalf("BusyTime=%v TransferTime=%v", s.BusyTime, s.TransferTime)
	}
	if s.BusyTime < s.SeekTime+s.RotTime+s.TransferTime {
		t.Fatal("BusyTime must include seek+rot+transfer")
	}
}

func TestReadUnwrittenIsZero(t *testing.T) {
	_, d := newDisk(t)
	buf := make([]byte, 2*SectorSize)
	for i := range buf {
		buf[i] = 0xFF
	}
	if err := d.ReadAt(42, buf); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("byte %d = %x, want 0", i, b)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	_, d := newDisk(t)
	in := make([]byte, 3*SectorSize)
	rng := rand.New(rand.NewSource(3))
	rng.Read(in)
	if err := d.WriteAt(500, in); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, len(in))
	if err := d.ReadAt(500, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(in, out) {
		t.Fatal("data round trip mismatch")
	}
	if d.StoredSectors() != 3 {
		t.Fatalf("StoredSectors = %d, want 3", d.StoredSectors())
	}
}

func TestPartialOverwrite(t *testing.T) {
	_, d := newDisk(t)
	a := bytes.Repeat([]byte{0xAA}, 2*SectorSize)
	if err := d.WriteAt(10, a); err != nil {
		t.Fatal(err)
	}
	b := bytes.Repeat([]byte{0xBB}, SectorSize)
	if err := d.WriteAt(11, b); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 2*SectorSize)
	if err := d.ReadAt(10, out); err != nil {
		t.Fatal(err)
	}
	if out[0] != 0xAA || out[SectorSize] != 0xBB {
		t.Fatalf("overwrite failed: %x %x", out[0], out[SectorSize])
	}
}

func TestUnalignedBuffersRejected(t *testing.T) {
	_, d := newDisk(t)
	if err := d.ReadAt(0, make([]byte, 100)); err == nil {
		t.Fatal("want error for unaligned read")
	}
	if err := d.WriteAt(0, make([]byte, 100)); err == nil {
		t.Fatal("want error for unaligned write")
	}
}

func TestBoundsChecks(t *testing.T) {
	_, d := newDisk(t)
	buf := make([]byte, SectorSize)
	if err := d.ReadAt(d.Sectors(), buf); err == nil {
		t.Fatal("want error reading past end")
	}
	if err := d.WriteAt(d.Sectors()-1+1, buf); err == nil {
		t.Fatal("want error writing past end")
	}
}

func TestDeterministicServiceTimes(t *testing.T) {
	run := func() []sim.Duration {
		e := sim.NewEngine(77)
		defer e.Close()
		d := New(e, DefaultParams())
		var out []sim.Duration
		for i := 0; i < 50; i++ {
			sector := uint32((i * 73331) % int(d.Sectors()-8))
			dur, err := d.Service(sector, 8, i%2 == 0)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, dur)
			e.Run(e.Now().Add(dur))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestQuickDataRoundTrip(t *testing.T) {
	e := sim.NewEngine(5)
	defer e.Close()
	d := New(e, DefaultParams())
	f := func(sector uint32, nsec uint8, fill byte) bool {
		n := int(nsec%8) + 1
		sector %= d.Sectors() - uint32(n)
		in := bytes.Repeat([]byte{fill}, n*SectorSize)
		if err := d.WriteAt(sector, in); err != nil {
			return false
		}
		out := make([]byte, len(in))
		if err := d.ReadAt(sector, out); err != nil {
			return false
		}
		return bytes.Equal(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickServiceMonotoneInCount(t *testing.T) {
	// For a fixed start sector and head state, transferring more sectors
	// never takes less time.
	f := func(nsecSmall, extra uint8) bool {
		small := int(nsecSmall%32) + 1
		big := small + int(extra%32) + 1
		mk := func(n int) sim.Duration {
			e := sim.NewEngine(11)
			defer e.Close()
			d := New(e, DefaultParams())
			dur, err := d.Service(20000, n, false)
			if err != nil {
				return -1
			}
			return dur
		}
		return mk(small) <= mk(big)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidConstruction(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Close()
	for _, p := range []Params{
		{},
		{Sectors: 100, SectorsPerTrack: 0, Heads: 1, RPM: 100, TransferRate: 1},
		{Sectors: 100, SectorsPerTrack: 10, Heads: 1, RPM: 0, TransferRate: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("New(%+v) did not panic", p)
				}
			}()
			New(e, p)
		}()
	}
}

func TestBadSectorInjection(t *testing.T) {
	_, d := newDisk(t)
	d.MarkBad(1000, 10)
	// Overlapping requests fail.
	if _, err := d.Service(1005, 2, false); err == nil {
		t.Fatal("want media error inside bad range")
	}
	if _, err := d.Service(995, 12, true); err == nil {
		t.Fatal("want media error spanning bad range")
	}
	// Adjacent requests succeed.
	if _, err := d.Service(990, 10, false); err != nil {
		t.Fatalf("request before bad range failed: %v", err)
	}
	if _, err := d.Service(1010, 4, false); err != nil {
		t.Fatalf("request after bad range failed: %v", err)
	}
	if d.Stats().MediaErrors != 2 {
		t.Fatalf("MediaErrors = %d", d.Stats().MediaErrors)
	}
	d.ClearBad()
	if _, err := d.Service(1005, 2, false); err != nil {
		t.Fatalf("cleared defect still fails: %v", err)
	}
}
