// Package disk models the node-local IDE disk drive of the Beowulf
// prototype: 500 MB of 512-byte sectors behind a single head assembly, with
// seek, rotational, and media-transfer timing plus per-request controller
// overhead (IDE programmed I/O on a 486 was CPU-driven and far from free).
//
// The model is deliberately mechanical rather than stochastic: rotational
// position is derived from the virtual clock and the spindle speed, and seek
// time from the cylinder distance, so identical request sequences always
// produce identical service times.
package disk

import (
	"fmt"
	"math"

	"essio/internal/obs"
	"essio/internal/sim"
)

// SectorSize is the sector size in bytes.
const SectorSize = 512

// Params describes the drive's geometry and timing.
type Params struct {
	// Sectors is the total logical capacity in sectors.
	Sectors uint32
	// SectorsPerTrack and Heads define the logical geometry used for
	// seek/rotation computations.
	SectorsPerTrack int
	Heads           int
	// RPM is the spindle speed.
	RPM float64
	// TrackSeek is the single-cylinder seek time; FullSeek is the
	// full-stroke seek time. Intermediate distances interpolate with a
	// square-root curve, the usual first-order arm model.
	TrackSeek sim.Duration
	FullSeek  sim.Duration
	// TransferRate is the media rate in bytes per second.
	TransferRate float64
	// Overhead is fixed per-request controller + PIO setup cost.
	Overhead sim.Duration
}

// DefaultParams returns parameters for the 500 MB IDE drives of the Beowulf
// prototype nodes (early-1990s 3.5" IDE class: 4500 RPM, ~2 MB/s media
// rate, ~12 ms average seek).
func DefaultParams() Params {
	return Params{
		Sectors:         1024000, // 500 MB
		SectorsPerTrack: 63,
		Heads:           16,
		RPM:             4500,
		TrackSeek:       3 * sim.Millisecond,
		FullSeek:        25 * sim.Millisecond,
		TransferRate:    2.0e6,
		Overhead:        800 * sim.Microsecond,
	}
}

// Stats accumulates operation counts and timing.
type Stats struct {
	Reads          uint64
	Writes         uint64
	SectorsRead    uint64
	SectorsWritten uint64
	BusyTime       sim.Duration
	SeekTime       sim.Duration
	RotTime        sim.Duration
	TransferTime   sim.Duration
	MediaErrors    uint64
}

// Disk is one simulated drive. Timing and data are separate concerns: the
// driver asks for a service time and schedules completion itself, while
// ReadAt/WriteAt move bytes instantaneously. Sector contents are stored
// sparsely; never-written sectors read as zeros.
type Disk struct {
	e       *sim.Engine
	p       Params
	headCyl int
	data    map[uint32][]byte // sector -> 512-byte content
	bad     []badRange
	stats   Stats
	om      diskMetrics
}

// diskMetrics holds the disk's observability handles; the zero value
// (nil handles) records nothing.
type diskMetrics struct {
	reads, writes *obs.Counter
	sectors       *obs.Counter
	mediaErrs     *obs.Counter
	seekCylinders *obs.Histogram
	serviceMicros *obs.Histogram
}

// Instrument registers the disk's metrics in reg: operation counters
// under disk/, plus (at Full) seek-distance and service-time
// distributions — the arm-movement view behind the paper's access
// locality findings.
func (d *Disk) Instrument(reg *obs.Registry) {
	d.om = diskMetrics{
		reads:         reg.Counter("disk/reads"),
		writes:        reg.Counter("disk/writes"),
		sectors:       reg.Counter("disk/sectors"),
		mediaErrs:     reg.Counter("disk/media_errors"),
		seekCylinders: reg.Histogram("disk/seek_cylinders", obs.ExpBuckets(1, 2, 11)),
		serviceMicros: reg.Histogram("disk/service_us", obs.ExpBuckets(256, 2, 10)),
	}
}

// badRange is an injected media defect.
type badRange struct {
	start uint32
	count uint32
}

// New returns a disk bound to engine e.
func New(e *sim.Engine, p Params) *Disk {
	if p.Sectors == 0 || p.SectorsPerTrack <= 0 || p.Heads <= 0 {
		panic("disk: invalid geometry")
	}
	if p.TransferRate <= 0 || p.RPM <= 0 {
		panic("disk: invalid rates")
	}
	return &Disk{e: e, p: p, data: make(map[uint32][]byte)}
}

// Params returns the drive parameters.
func (d *Disk) Params() Params { return d.p }

// MarkBad injects a media defect: any request overlapping [sector,
// sector+count) fails with a media error (failure-injection testing).
func (d *Disk) MarkBad(sector, count uint32) {
	d.bad = append(d.bad, badRange{start: sector, count: count})
}

// ClearBad removes all injected defects.
func (d *Disk) ClearBad() { d.bad = nil }

// badOverlap reports whether a request overlaps an injected defect.
func (d *Disk) badOverlap(sector uint32, count int) bool {
	end := sector + uint32(count)
	for _, b := range d.bad {
		if sector < b.start+b.count && b.start < end {
			return true
		}
	}
	return false
}

// Stats returns a copy of the accumulated statistics.
func (d *Disk) Stats() Stats { return d.stats }

// Sectors reports the drive capacity in sectors.
func (d *Disk) Sectors() uint32 { return d.p.Sectors }

// cylinderOf maps a logical sector to its cylinder.
func (d *Disk) cylinderOf(sector uint32) int {
	perCyl := d.p.SectorsPerTrack * d.p.Heads
	return int(sector) / perCyl
}

// rotation returns the spindle period.
func (d *Disk) rotation() sim.Duration {
	return sim.DurationOf(60.0 / d.p.RPM)
}

// seekTime returns the arm movement time for a cylinder distance.
func (d *Disk) seekTime(dist int) sim.Duration {
	if dist <= 0 {
		return 0
	}
	maxCyl := int(d.p.Sectors)/(d.p.SectorsPerTrack*d.p.Heads) - 1
	if maxCyl < 1 {
		maxCyl = 1
	}
	frac := math.Sqrt(float64(dist) / float64(maxCyl))
	return d.p.TrackSeek + sim.Duration(frac*float64(d.p.FullSeek-d.p.TrackSeek))
}

// rotationalDelay returns the wait for the target sector to pass under the
// head, given the head arrives at arrival.
func (d *Disk) rotationalDelay(arrival sim.Time, sector uint32) sim.Duration {
	rot := d.rotation()
	if rot <= 0 {
		return 0
	}
	// Angular position of the spindle at arrival, in sector units of the
	// target track.
	spt := uint32(d.p.SectorsPerTrack)
	cur := (uint64(arrival) % uint64(rot)) * uint64(spt) / uint64(rot)
	want := uint64(sector % spt)
	delta := (want + uint64(spt) - cur) % uint64(spt)
	return sim.Duration(delta * uint64(rot) / uint64(spt))
}

// transferTime returns the media transfer time for count sectors.
func (d *Disk) transferTime(count int) sim.Duration {
	return sim.DurationOf(float64(count*SectorSize) / d.p.TransferRate)
}

// Detail decomposes one request's service time into its mechanical
// phases: controller overhead, seek, rotational delay, and media
// transfer. Positioning (overhead+seek+rot) plus Xfer is the total.
type Detail struct {
	Overhead, Seek, Rot, Xfer sim.Duration
}

// Total is the full service time the decomposition sums to.
func (dt Detail) Total() sim.Duration { return dt.Overhead + dt.Seek + dt.Rot + dt.Xfer }

// Pos is the positioning portion: everything before the transfer starts.
func (dt Detail) Pos() sim.Duration { return dt.Overhead + dt.Seek + dt.Rot }

// Service computes the full service time for a request starting now,
// advances the head model, and accounts statistics. The caller (the device
// driver) is responsible for serializing requests and scheduling the
// completion event.
func (d *Disk) Service(sector uint32, count int, write bool) (sim.Duration, error) {
	dt, err := d.ServiceDetail(sector, count, write)
	return dt.Total(), err
}

// ServiceDetail is Service returning the per-phase decomposition, which
// the per-request tracing layer journals as positioning and transfer
// spans.
func (d *Disk) ServiceDetail(sector uint32, count int, write bool) (Detail, error) {
	if count <= 0 {
		return Detail{}, fmt.Errorf("disk: non-positive sector count %d", count)
	}
	if sector+uint32(count) > d.p.Sectors || sector+uint32(count) < sector {
		return Detail{}, fmt.Errorf("disk: request [%d,+%d) beyond capacity %d", sector, count, d.p.Sectors)
	}
	if d.badOverlap(sector, count) {
		d.stats.MediaErrors++
		d.om.mediaErrs.Inc()
		return Detail{}, fmt.Errorf("disk: media error at sector %d (+%d)", sector, count)
	}
	cyl := d.cylinderOf(sector)
	dist := abs(cyl - d.headCyl)
	seek := d.seekTime(dist)
	d.headCyl = d.cylinderOf(sector + uint32(count) - 1)
	rotAt := d.e.Now().Add(d.p.Overhead + seek)
	rot := d.rotationalDelay(rotAt, sector)
	xfer := d.transferTime(count)
	total := d.p.Overhead + seek + rot + xfer

	if write {
		d.stats.Writes++
		d.stats.SectorsWritten += uint64(count)
		d.om.writes.Inc()
	} else {
		d.stats.Reads++
		d.stats.SectorsRead += uint64(count)
		d.om.reads.Inc()
	}
	d.stats.BusyTime += total
	d.stats.SeekTime += seek
	d.stats.RotTime += rot
	d.stats.TransferTime += xfer
	d.om.sectors.Add(uint64(count))
	d.om.seekCylinders.Observe(int64(dist))
	d.om.serviceMicros.Observe(int64(total))
	return Detail{Overhead: d.p.Overhead, Seek: seek, Rot: rot, Xfer: xfer}, nil
}

// ReadAt copies stored sector contents into buf, whose length must be a
// multiple of the sector size. Unwritten sectors read as zeros.
func (d *Disk) ReadAt(sector uint32, buf []byte) error {
	if len(buf)%SectorSize != 0 {
		return fmt.Errorf("disk: read buffer %d not sector-aligned", len(buf))
	}
	n := uint32(len(buf) / SectorSize)
	if sector+n > d.p.Sectors || sector+n < sector {
		return fmt.Errorf("disk: read [%d,+%d) beyond capacity", sector, n)
	}
	for i := uint32(0); i < n; i++ {
		dst := buf[i*SectorSize : (i+1)*SectorSize]
		if src, ok := d.data[sector+i]; ok {
			copy(dst, src)
		} else {
			for j := range dst {
				dst[j] = 0
			}
		}
	}
	return nil
}

// WriteAt stores buf at the given sector; buf must be sector-aligned.
func (d *Disk) WriteAt(sector uint32, buf []byte) error {
	if len(buf)%SectorSize != 0 {
		return fmt.Errorf("disk: write buffer %d not sector-aligned", len(buf))
	}
	n := uint32(len(buf) / SectorSize)
	if sector+n > d.p.Sectors || sector+n < sector {
		return fmt.Errorf("disk: write [%d,+%d) beyond capacity", sector, n)
	}
	for i := uint32(0); i < n; i++ {
		s, ok := d.data[sector+i]
		if !ok {
			s = make([]byte, SectorSize)
			d.data[sector+i] = s
		}
		copy(s, buf[i*SectorSize:(i+1)*SectorSize])
	}
	return nil
}

// StoredSectors reports how many distinct sectors hold written data (used by
// tests and capacity accounting).
func (d *Disk) StoredSectors() int { return len(d.data) }

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
