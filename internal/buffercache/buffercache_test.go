package buffercache

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"essio/internal/blockio"
	"essio/internal/disk"
	"essio/internal/driver"
	"essio/internal/sim"
	"essio/internal/trace"
)

type rig struct {
	e     *sim.Engine
	disk  *disk.Disk
	q     *blockio.Queue
	ring  *trace.Ring
	cache *Cache
}

func newRig(t *testing.T, capacity int) *rig {
	t.Helper()
	e := sim.NewEngine(1)
	t.Cleanup(e.Close)
	d := disk.New(e, disk.DefaultParams())
	q := blockio.New(e)
	ring := trace.NewRing(1 << 16)
	drv := driver.New(e, d, q, 0, ring)
	drv.SetLevel(driver.LevelFull)
	return &rig{e: e, disk: d, q: q, ring: ring, cache: New(e, q, capacity)}
}

// run executes fn as a simulated process and drains the engine.
func (r *rig) run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	r.e.Spawn("test", fn)
	r.e.RunUntilIdle()
}

func TestReadMissThenHit(t *testing.T) {
	r := newRig(t, 64)
	r.run(t, func(p *sim.Proc) {
		if _, err := r.cache.ReadBlock(p, 10, trace.OriginData); err != nil {
			t.Error(err)
		}
		if _, err := r.cache.ReadBlock(p, 10, trace.OriginData); err != nil {
			t.Error(err)
		}
	})
	s := r.cache.Stats()
	if s.Misses != 1 || s.Hits != 1 {
		t.Fatalf("Misses=%d Hits=%d, want 1/1", s.Misses, s.Hits)
	}
	if got := len(r.ring.Drain(0)); got != 1 {
		t.Fatalf("%d physical reads, want 1", got)
	}
}

func TestWriteThenReadBack(t *testing.T) {
	r := newRig(t, 64)
	in := bytes.Repeat([]byte{0xC3}, BlockSize)
	r.run(t, func(p *sim.Proc) {
		if err := r.cache.WriteBlock(p, 7, in, trace.OriginData); err != nil {
			t.Error(err)
		}
		got, err := r.cache.ReadBlock(p, 7, trace.OriginData)
		if err != nil {
			t.Error(err)
		}
		if !bytes.Equal(got, in) {
			t.Error("read-after-write mismatch")
		}
	})
	// Write-back: nothing hits the disk until a flush.
	if got := len(r.ring.Drain(0)); got != 0 {
		t.Fatalf("%d physical I/Os before flush, want 0", got)
	}
	if r.cache.DirtyCount() != 1 {
		t.Fatalf("DirtyCount = %d", r.cache.DirtyCount())
	}
}

func TestSyncPersistsToDisk(t *testing.T) {
	r := newRig(t, 64)
	in := bytes.Repeat([]byte{0x7E}, BlockSize)
	r.run(t, func(p *sim.Proc) {
		if err := r.cache.WriteBlock(p, 5, in, trace.OriginData); err != nil {
			t.Error(err)
		}
		if err := r.cache.Sync(p); err != nil {
			t.Error(err)
		}
	})
	if r.cache.DirtyCount() != 0 {
		t.Fatalf("DirtyCount after sync = %d", r.cache.DirtyCount())
	}
	out := make([]byte, BlockSize)
	if err := r.disk.ReadAt(5*SectorsPerBlock, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, in) {
		t.Fatal("disk contents wrong after sync")
	}
}

func TestWritebackAllAsync(t *testing.T) {
	r := newRig(t, 64)
	r.run(t, func(p *sim.Proc) {
		for i := uint32(0); i < 5; i++ {
			if err := r.cache.WriteBlock(p, i, make([]byte, BlockSize), trace.OriginData); err != nil {
				t.Error(err)
			}
		}
	})
	n := r.cache.WritebackAll(trace.OriginLog)
	if n != 5 {
		t.Fatalf("WritebackAll = %d, want 5", n)
	}
	r.e.RunUntilIdle()
	if r.cache.DirtyCount() != 0 {
		t.Fatalf("DirtyCount = %d after writeback completes", r.cache.DirtyCount())
	}
	// Contiguous dirty blocks must have merged into one physical write.
	recs := r.ring.Drain(0)
	if len(recs) != 1 || recs[0].KB() != 5 {
		t.Fatalf("writeback produced %d requests (first %v); want one 5 KB request", len(recs), recs)
	}
}

func TestRedirtyDuringFlightStaysDirty(t *testing.T) {
	r := newRig(t, 64)
	r.run(t, func(p *sim.Proc) {
		if err := r.cache.WriteBlock(p, 9, bytes.Repeat([]byte{1}, BlockSize), trace.OriginData); err != nil {
			t.Error(err)
		}
	})
	r.cache.WritebackAll(trace.OriginData) // write in flight
	// Re-dirty while the write-back is still in flight.
	r.e.Spawn("redirty", func(p *sim.Proc) {
		if err := r.cache.WriteBlock(p, 9, bytes.Repeat([]byte{2}, BlockSize), trace.OriginData); err != nil {
			t.Error(err)
		}
	})
	r.e.RunUntilIdle()
	if r.cache.DirtyCount() != 1 {
		t.Fatalf("DirtyCount = %d; re-dirtied block must stay dirty", r.cache.DirtyCount())
	}
}

func TestEvictionLRU(t *testing.T) {
	r := newRig(t, 4)
	r.run(t, func(p *sim.Proc) {
		for i := uint32(0); i < 4; i++ {
			if _, err := r.cache.ReadBlock(p, i, trace.OriginData); err != nil {
				t.Error(err)
			}
		}
		// Touch block 0 so block 1 is LRU.
		if _, err := r.cache.ReadBlock(p, 0, trace.OriginData); err != nil {
			t.Error(err)
		}
		if _, err := r.cache.ReadBlock(p, 100, trace.OriginData); err != nil {
			t.Error(err)
		}
	})
	if r.cache.Len() != 4 {
		t.Fatalf("Len = %d, want capacity 4", r.cache.Len())
	}
	r.ring.Drain(0)
	// Block 0 must still be a hit; block 1 must re-miss.
	r.run(t, func(p *sim.Proc) {
		if _, err := r.cache.ReadBlock(p, 0, trace.OriginData); err != nil {
			t.Error(err)
		}
		if _, err := r.cache.ReadBlock(p, 1, trace.OriginData); err != nil {
			t.Error(err)
		}
	})
	recs := r.ring.Drain(0)
	if len(recs) != 1 || recs[0].Sector != 1*SectorsPerBlock {
		t.Fatalf("expected exactly one re-read of block 1, got %v", recs)
	}
}

func TestDirtyEvictionFlushesFirst(t *testing.T) {
	r := newRig(t, 2)
	in := bytes.Repeat([]byte{0xAB}, BlockSize)
	r.run(t, func(p *sim.Proc) {
		// Fill the whole cache with dirty blocks so the next allocation
		// has no clean victim and must flush block 50 (the LRU) first.
		if err := r.cache.WriteBlock(p, 50, in, trace.OriginData); err != nil {
			t.Error(err)
		}
		if err := r.cache.WriteBlock(p, 60, bytes.Repeat([]byte{0xCD}, BlockSize), trace.OriginData); err != nil {
			t.Error(err)
		}
		if _, err := r.cache.ReadBlock(p, 0, trace.OriginData); err != nil {
			t.Error(err)
		}
	})
	out := make([]byte, BlockSize)
	if err := r.disk.ReadAt(50*SectorsPerBlock, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, in) {
		t.Fatal("dirty block lost on eviction")
	}
}

func TestPrefetchAvoidsLaterMiss(t *testing.T) {
	r := newRig(t, 64)
	r.run(t, func(p *sim.Proc) {
		blocks := []uint32{20, 21, 22, 23}
		if err := r.cache.Prefetch(p, blocks, trace.OriginData); err != nil {
			t.Error(err)
		}
		p.Sleep(100 * sim.Millisecond) // let the reads land
		for _, b := range blocks {
			if _, err := r.cache.ReadBlock(p, b, trace.OriginData); err != nil {
				t.Error(err)
			}
		}
	})
	s := r.cache.Stats()
	if s.Prefetches != 4 {
		t.Fatalf("Prefetches = %d, want 4", s.Prefetches)
	}
	if s.Misses != 0 || s.Hits != 4 {
		t.Fatalf("Misses=%d Hits=%d after prefetch", s.Misses, s.Hits)
	}
	// The four contiguous prefetches must merge into one physical read.
	recs := r.ring.Drain(0)
	if len(recs) != 1 || recs[0].KB() != 4 {
		t.Fatalf("prefetch produced %v, want one 4 KB read", recs)
	}
}

func TestReadDuringPrefetchWaits(t *testing.T) {
	r := newRig(t, 64)
	r.run(t, func(p *sim.Proc) {
		if err := r.cache.Prefetch(p, []uint32{30}, trace.OriginData); err != nil {
			t.Error(err)
		}
		// Immediately read the same block: must wait for the in-flight
		// I/O, not issue a second one.
		if _, err := r.cache.ReadBlock(p, 30, trace.OriginData); err != nil {
			t.Error(err)
		}
	})
	recs := r.ring.Drain(0)
	if len(recs) != 1 {
		t.Fatalf("%d physical reads, want 1", len(recs))
	}
}

func TestUpdateBlockReadModifyWrite(t *testing.T) {
	r := newRig(t, 16)
	r.run(t, func(p *sim.Proc) {
		if err := r.cache.WriteBlock(p, 3, make([]byte, BlockSize), trace.OriginData); err != nil {
			t.Error(err)
		}
		if err := r.cache.Sync(p); err != nil {
			t.Error(err)
		}
		if err := r.cache.UpdateBlock(p, 3, trace.OriginMeta, func(d []byte) { d[100] = 0xEE }); err != nil {
			t.Error(err)
		}
		got, err := r.cache.ReadBlock(p, 3, trace.OriginData)
		if err != nil {
			t.Error(err)
		}
		if got[100] != 0xEE {
			t.Error("update not visible")
		}
	})
	if r.cache.DirtyCount() != 1 {
		t.Fatalf("DirtyCount = %d after update", r.cache.DirtyCount())
	}
}

func TestWriteBlockWrongSize(t *testing.T) {
	r := newRig(t, 16)
	r.run(t, func(p *sim.Proc) {
		if err := r.cache.WriteBlock(p, 0, make([]byte, 100), trace.OriginData); err == nil {
			t.Error("want error for short write")
		}
	})
}

func TestInvalidate(t *testing.T) {
	r := newRig(t, 16)
	r.run(t, func(p *sim.Proc) {
		if _, err := r.cache.ReadBlock(p, 8, trace.OriginData); err != nil {
			t.Error(err)
		}
		if err := r.cache.WriteBlock(p, 9, make([]byte, BlockSize), trace.OriginData); err != nil {
			t.Error(err)
		}
	})
	if !r.cache.Invalidate(8) {
		t.Fatal("clean block must invalidate")
	}
	if r.cache.Invalidate(9) {
		t.Fatal("dirty block must not invalidate")
	}
	if r.cache.Invalidate(12345) {
		t.Fatal("absent block must not invalidate")
	}
}

// Property: for arbitrary write/read interleavings, the cache returns the
// most recently written contents for each block (read-your-writes).
func TestQuickReadYourWrites(t *testing.T) {
	f := func(ops []uint16) bool {
		e := sim.NewEngine(6)
		defer e.Close()
		d := disk.New(e, disk.DefaultParams())
		q := blockio.New(e)
		drv := driver.New(e, d, q, 0, trace.NewRing(4096))
		drv.SetLevel(driver.LevelOff)
		cache := New(e, q, 8)
		want := map[uint32]byte{}
		ok := true
		e.Spawn("t", func(p *sim.Proc) {
			for i, op := range ops {
				if i > 60 {
					break
				}
				block := uint32(op % 16)
				if op%3 == 0 { // write
					val := byte(i + 1)
					data := bytes.Repeat([]byte{val}, BlockSize)
					if err := cache.WriteBlock(p, block, data, trace.OriginData); err != nil {
						ok = false
						return
					}
					want[block] = val
				} else { // read
					got, err := cache.ReadBlock(p, block, trace.OriginData)
					if err != nil {
						ok = false
						return
					}
					if got[0] != want[block] {
						ok = false
						return
					}
				}
				if op%7 == 0 {
					cache.WritebackAll(trace.OriginData)
				}
			}
			if err := cache.Sync(p); err != nil {
				ok = false
			}
		})
		e.RunUntilIdle()
		// After sync, disk holds the latest contents too.
		for block, val := range want {
			out := make([]byte, BlockSize)
			if err := d.ReadAt(block*SectorsPerBlock, out); err != nil {
				return false
			}
			if out[0] != val {
				return false
			}
		}
		return ok
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(8))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCapacityPanic(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for capacity < 2")
		}
	}()
	New(e, blockio.New(e), 1)
}

// Regression test: under heavy contention (full cache, many processes
// faulting on overlapping blocks), getOrCreate used to create duplicate
// buffers for one key after parking, and evicting the orphan then deleted
// the live buffer's map entry. Every block must stay resident after its
// ReadBlock returns.
func TestContendedCacheNoOrphans(t *testing.T) {
	e := sim.NewEngine(13)
	defer e.Close()
	d := disk.New(e, disk.DefaultParams())
	q := blockio.New(e)
	drv := driver.New(e, d, q, 0, trace.NewRing(1<<16))
	drv.SetLevel(driver.LevelOff)
	cache := New(e, q, 4) // tiny: constant eviction pressure
	done := 0
	for pid := 0; pid < 6; pid++ {
		pid := pid
		e.Spawn("hammer", func(p *sim.Proc) {
			for i := 0; i < 40; i++ {
				block := uint32((pid + i) % 10)
				if i%3 == 0 {
					err := cache.UpdateBlock(p, block, trace.OriginMeta, func(d []byte) {
						d[0] = byte(pid)
					})
					if err != nil {
						t.Errorf("update: %v", err)
						return
					}
				} else {
					if _, err := cache.ReadBlock(p, block, trace.OriginData); err != nil {
						t.Errorf("read: %v", err)
						return
					}
				}
				if i%5 == 0 {
					cache.WritebackAll(trace.OriginMeta)
				}
			}
			done++
		})
	}
	e.RunUntilIdle()
	if done != 6 {
		t.Fatalf("%d/6 hammers finished", done)
	}
	if cache.Len() > 4 {
		t.Fatalf("cache over capacity: %d", cache.Len())
	}
}

func TestWriteThroughHitsDiskImmediately(t *testing.T) {
	r := newRig(t, 64)
	r.cache.SetWriteThrough(true)
	r.run(t, func(p *sim.Proc) {
		if err := r.cache.WriteBlock(p, 11, bytes.Repeat([]byte{0x44}, BlockSize), trace.OriginData); err != nil {
			t.Error(err)
		}
	})
	recs := r.ring.Drain(0)
	if len(recs) != 1 || recs[0].Op != trace.Write {
		t.Fatalf("write-through produced %v, want one immediate write", recs)
	}
	if r.cache.DirtyCount() != 0 {
		t.Fatalf("DirtyCount = %d after write-through completes", r.cache.DirtyCount())
	}
	// Contents really on the platters.
	out := make([]byte, BlockSize)
	if err := r.disk.ReadAt(11*SectorsPerBlock, out); err != nil {
		t.Fatal(err)
	}
	if out[0] != 0x44 {
		t.Fatal("write-through data not on disk")
	}
}
