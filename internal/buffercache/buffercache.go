// Package buffercache implements the kernel's 1 KB-block buffer cache, the
// layer responsible for the dominant 1 KB request class the paper observes:
// all filesystem I/O passes through fixed 1 KB buffers, small requests
// therefore hit the disk as 1 KB transfers, and sequential streams grow to
// multi-kilobyte physical requests only through read-ahead plus elevator
// merging.
//
// The cache is write-back: writes dirty buffers in memory, and a periodic
// "update" daemon (see package kernel) pushes aged dirty buffers to disk,
// which is why the paper's baseline shows bursts of 1 KB writes even with no
// user load.
package buffercache

import (
	"container/list"
	"fmt"
	"sort"

	"essio/internal/blockio"
	"essio/internal/iotrace"
	"essio/internal/obs"
	"essio/internal/sim"
	"essio/internal/trace"
)

// BlockSize is the buffer/block size in bytes (Linux 1.x ext2 default).
const BlockSize = 1024

// SectorsPerBlock is how many 512 B sectors one block covers.
const SectorsPerBlock = BlockSize / trace.SectorSize

// DefaultReadAhead is the read-ahead window in blocks (16 KB), the source of
// the paper's "requests approaching 16 KB" during streaming reads.
const DefaultReadAhead = 16

// Stats counts cache activity.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Prefetches uint64
	Writebacks uint64
	Evictions  uint64
	FlushWaits uint64
}

// buffer is one cached block.
type buffer struct {
	block  uint32
	data   []byte
	valid  bool
	dirty  bool
	busy   bool // I/O in flight
	gen    uint64
	origin trace.Origin // who dirtied this buffer (for write-back tagging)
	req    uint64       // I/O journey that dirtied this buffer (write-back attribution)
	elem   *list.Element
	wq     *sim.WaitQueue
}

// Cache is one node's buffer cache over one block queue.
type Cache struct {
	e            *sim.Engine
	q            *blockio.Queue
	capacity     int
	blocks       map[uint32]*buffer
	lru          *list.List // front = most recently used
	stats        Stats
	readAhead    int
	writeThrough bool
	om           cacheMetrics
	journal      *iotrace.Journal
}

// SetJournal attaches the node's per-request I/O journal; nil detaches.
// The cache journals hits, miss fills, and writebacks; delayed writes
// are attributed to the journey that dirtied the buffer (buffer.req),
// which is how causal attribution survives write-back.
func (c *Cache) SetJournal(j *iotrace.Journal) { c.journal = j }

// cacheMetrics holds the cache's observability handles; the zero value
// records nothing.
type cacheMetrics struct {
	hits       *obs.Counter
	misses     *obs.Counter
	prefetches *obs.Counter
	writebacks *obs.Counter
	evictions  *obs.Counter
	flushWaits *obs.Counter
	resident   *obs.Gauge
	dirty      *obs.Gauge
}

// Instrument registers the cache's metrics in reg: the hit/miss/
// writeback counters mirror Stats live, and two gauges track residency
// and dirty-buffer population with high-water marks.
func (c *Cache) Instrument(reg *obs.Registry) {
	c.om = cacheMetrics{
		hits:       reg.Counter("bcache/hits"),
		misses:     reg.Counter("bcache/misses"),
		prefetches: reg.Counter("bcache/prefetches"),
		writebacks: reg.Counter("bcache/writebacks"),
		evictions:  reg.Counter("bcache/evictions"),
		flushWaits: reg.Counter("bcache/flush_waits"),
		resident:   reg.Gauge("bcache/resident"),
		dirty:      reg.Gauge("bcache/dirty"),
	}
}

// New returns a cache of capacity blocks over queue q.
func New(e *sim.Engine, q *blockio.Queue, capacity int) *Cache {
	if capacity < 2 {
		panic("buffercache: capacity must be at least 2 blocks")
	}
	return &Cache{
		e: e, q: q, capacity: capacity,
		blocks:    make(map[uint32]*buffer),
		lru:       list.New(),
		readAhead: DefaultReadAhead,
	}
}

// SetReadAhead changes the read-ahead window in blocks (0 disables).
func (c *Cache) SetReadAhead(blocks int) { c.readAhead = blocks }

// SetWriteThrough switches the cache to write-through: every write is
// submitted to disk immediately instead of waiting for the update daemon
// (ablation against the default write-back policy).
func (c *Cache) SetWriteThrough(on bool) { c.writeThrough = on }

// ReadAhead reports the current read-ahead window in blocks.
func (c *Cache) ReadAhead() int { return c.readAhead }

// Stats returns a copy of the statistics.
func (c *Cache) Stats() Stats { return c.stats }

// DirtyCount reports how many buffers are dirty.
func (c *Cache) DirtyCount() int {
	n := 0
	for _, b := range c.blocks {
		if b.dirty {
			n++
		}
	}
	return n
}

// Len reports the number of resident buffers.
func (c *Cache) Len() int { return len(c.blocks) }

func (c *Cache) touch(b *buffer) { c.lru.MoveToFront(b.elem) }

// getOrCreate returns the buffer for block, evicting as needed. The caller
// decides validity/IO. May sleep (eviction of a dirty buffer flushes it).
func (c *Cache) getOrCreate(p *sim.Proc, block uint32) (*buffer, error) {
	for {
		// Re-check on every iteration: flushing or waiting below parks
		// this process, and another process may have created (or
		// evicted) this block's buffer in the meantime. Creating a
		// second buffer for the same key would orphan the first in the
		// LRU list and corrupt the cache.
		if b, ok := c.blocks[block]; ok {
			c.touch(b)
			return b, nil
		}
		if len(c.blocks) < c.capacity {
			break
		}
		victim := c.findVictim()
		if victim == nil {
			// Everything is busy; wait for the oldest busy buffer.
			oldest := c.lru.Back().Value.(*buffer)
			c.stats.FlushWaits++
			c.om.flushWaits.Inc()
			oldest.wq.Sleep(p)
			continue
		}
		if victim.dirty {
			c.stats.FlushWaits++
			c.om.flushWaits.Inc()
			if err := c.flushBuffer(p, victim); err != nil {
				return nil, err
			}
			continue // state may have changed while sleeping
		}
		c.evict(victim)
	}
	b := &buffer{block: block, data: make([]byte, BlockSize), wq: sim.NewWaitQueue(c.e)}
	b.elem = c.lru.PushFront(b)
	c.blocks[block] = b
	c.om.resident.Set(int64(len(c.blocks)))
	return b, nil
}

// findVictim returns the least recently used non-busy buffer, preferring
// clean ones.
func (c *Cache) findVictim() *buffer {
	var dirty *buffer
	for e := c.lru.Back(); e != nil; e = e.Prev() {
		b := e.Value.(*buffer)
		if b.busy {
			continue
		}
		if !b.dirty {
			return b
		}
		if dirty == nil {
			dirty = b
		}
	}
	return dirty
}

var EvictDebug func(block uint32)

// MissDebug, when set, observes read misses (test instrumentation).
var MissDebug func(block uint32)

func (c *Cache) evict(b *buffer) {
	if EvictDebug != nil {
		EvictDebug(b.block)
	}
	c.lru.Remove(b.elem)
	if cur, ok := c.blocks[b.block]; ok && cur == b {
		delete(c.blocks, b.block)
	}
	c.stats.Evictions++
	c.om.evictions.Inc()
	c.om.resident.Set(int64(len(c.blocks)))
}

// flushBuffer synchronously writes one dirty buffer.
func (c *Cache) flushBuffer(p *sim.Proc, b *buffer) error {
	gen := b.gen
	b.busy = true
	origin := b.origin
	if origin == trace.OriginUnknown {
		origin = trace.OriginMeta
	}
	req, start := b.req, c.e.Now()
	done, err := c.q.SubmitReq(b.block*SectorsPerBlock, b.data, true, origin, req)
	if err != nil {
		b.busy = false
		return err
	}
	c.stats.Writebacks++
	c.om.writebacks.Inc()
	werr := done.Wait(p)
	b.busy = false
	if werr == nil && c.journal.Enabled() {
		c.journal.Add(c.e.Now(), c.e.Now().Sub(start), iotrace.StageWriteback, req, int64(b.block))
	}
	if werr == nil && b.gen == gen {
		b.dirty = false
		c.om.dirty.Add(-1)
	}
	b.wq.WakeAll()
	return werr
}

// ReadBlock returns the contents of a block, reading it from disk on a
// miss. The returned slice aliases the cache buffer; callers must copy out
// what they keep and must not retain it across sleeps.
func (c *Cache) ReadBlock(p *sim.Proc, block uint32, origin trace.Origin) ([]byte, error) {
	for {
		b, err := c.getOrCreate(p, block)
		if err != nil {
			return nil, err
		}
		if b.busy {
			b.wq.Sleep(p)
			continue // re-lookup: the buffer may have been reused
		}
		if b.valid {
			c.stats.Hits++
			c.om.hits.Inc()
			if c.journal.Enabled() {
				c.journal.Add(c.e.Now(), 0, iotrace.StageCacheHit, p.IOTag(), int64(block))
			}
			c.touch(b)
			return b.data, nil
		}
		// Miss: read it in.
		if MissDebug != nil {
			MissDebug(block)
		}
		c.stats.Misses++
		c.om.misses.Inc()
		b.busy = true
		start := c.e.Now()
		done, err := c.q.SubmitReq(block*SectorsPerBlock, b.data, false, origin, p.IOTag())
		if err != nil {
			b.busy = false
			b.wq.WakeAll()
			return nil, err
		}
		rerr := done.Wait(p)
		b.busy = false
		b.valid = rerr == nil
		b.wq.WakeAll()
		if rerr != nil {
			c.evict(b)
			return nil, rerr
		}
		if c.journal.Enabled() {
			c.journal.Add(c.e.Now(), c.e.Now().Sub(start), iotrace.StageCacheMiss, p.IOTag(), int64(block))
		}
		c.touch(b)
		return b.data, nil
	}
}

// Prefetch starts asynchronous reads for any of the given blocks that are
// not resident. It may sleep while making room but does not wait for the
// reads themselves.
func (c *Cache) Prefetch(p *sim.Proc, blocks []uint32, origin trace.Origin) error {
	for _, blk := range blocks {
		if b, ok := c.blocks[blk]; ok && (b.valid || b.busy) {
			continue
		}
		b, err := c.getOrCreate(p, blk)
		if err != nil {
			return err
		}
		if b.valid || b.busy {
			continue
		}
		b.busy = true
		req, start := p.IOTag(), c.e.Now()
		done, err := c.q.SubmitReq(blk*SectorsPerBlock, b.data, false, origin, req)
		if err != nil {
			b.busy = false
			return err
		}
		c.stats.Prefetches++
		c.om.prefetches.Inc()
		bb := b
		done.OnComplete(func(ioErr error) {
			bb.busy = false
			bb.valid = ioErr == nil
			if ioErr == nil && c.journal.Enabled() {
				c.journal.Add(c.e.Now(), c.e.Now().Sub(start), iotrace.StageCacheMiss, req, int64(bb.block))
			}
			bb.wq.WakeAll()
			if ioErr != nil && bb.elem != nil {
				if cur, ok := c.blocks[bb.block]; ok && cur == bb {
					c.evict(bb)
				}
			}
		})
	}
	return nil
}

// WriteBlock replaces the contents of a block in the cache and marks it
// dirty (write-back). data must be exactly one block long.
func (c *Cache) WriteBlock(p *sim.Proc, block uint32, data []byte, origin trace.Origin) error {
	if len(data) != BlockSize {
		return fmt.Errorf("buffercache: write of %d bytes, want %d", len(data), BlockSize)
	}
	for {
		b, err := c.getOrCreate(p, block)
		if err != nil {
			return err
		}
		if b.busy {
			b.wq.Sleep(p)
			continue
		}
		copy(b.data, data)
		b.valid = true
		if !b.dirty {
			b.dirty = true
			c.om.dirty.Add(1)
		}
		b.gen++
		b.origin = origin
		b.req = p.IOTag()
		c.touch(b)
		c.maybeWriteThrough(b)
		return nil
	}
}

// maybeWriteThrough submits an immediate asynchronous write when the cache
// is in write-through mode.
func (c *Cache) maybeWriteThrough(b *buffer) {
	if !c.writeThrough || b.busy || !b.dirty {
		return
	}
	gen := b.gen
	b.busy = true
	req, start := b.req, c.e.Now()
	done, err := c.q.SubmitReq(b.block*SectorsPerBlock, b.data, true, b.origin, req)
	if err != nil {
		b.busy = false
		return
	}
	c.stats.Writebacks++
	c.om.writebacks.Inc()
	bb := b
	done.OnComplete(func(ioErr error) {
		bb.busy = false
		if ioErr == nil && bb.gen == gen {
			bb.dirty = false
			c.om.dirty.Add(-1)
		}
		if ioErr == nil && c.journal.Enabled() {
			c.journal.Add(c.e.Now(), c.e.Now().Sub(start), iotrace.StageWriteback, req, int64(bb.block))
		}
		bb.wq.WakeAll()
	})
}

// UpdateBlock applies fn to the cached contents of a block (reading it
// first if needed) and marks it dirty — the read-modify-write path for
// partial-block writes and metadata updates.
func (c *Cache) UpdateBlock(p *sim.Proc, block uint32, origin trace.Origin, fn func(data []byte)) error {
	data, err := c.ReadBlock(p, block, origin)
	if err != nil {
		return err
	}
	b := c.blocks[block]
	if b == nil {
		// ReadBlock always leaves the block resident; see getOrCreate.
		panic(fmt.Sprintf("buffercache: block %d vanished after ReadBlock", block))
	}
	fn(data)
	if !b.dirty {
		b.dirty = true
		c.om.dirty.Add(1)
	}
	b.gen++
	b.origin = origin
	b.req = p.IOTag()
	c.maybeWriteThrough(b)
	return nil
}

// WritebackAll asynchronously submits every dirty, idle buffer for writing,
// as the periodic update daemon does. Each buffer is tagged with the origin
// that dirtied it; origin is the fallback for untagged buffers. It returns
// the number of buffers submitted. Engine-context safe.
func (c *Cache) WritebackAll(origin trace.Origin) int {
	n := 0
	for e := c.lru.Back(); e != nil; e = e.Prev() {
		b := e.Value.(*buffer)
		if !b.dirty || b.busy {
			continue
		}
		gen := b.gen
		b.busy = true
		worigin := b.origin
		if worigin == trace.OriginUnknown {
			worigin = origin
		}
		req, start := b.req, c.e.Now()
		done, err := c.q.SubmitReq(b.block*SectorsPerBlock, b.data, true, worigin, req)
		if err != nil {
			b.busy = false
			continue
		}
		c.stats.Writebacks++
		c.om.writebacks.Inc()
		n++
		bb := b
		done.OnComplete(func(ioErr error) {
			bb.busy = false
			if ioErr == nil && bb.gen == gen {
				bb.dirty = false
				c.om.dirty.Add(-1)
			}
			if ioErr == nil && c.journal.Enabled() {
				c.journal.Add(c.e.Now(), c.e.Now().Sub(start), iotrace.StageWriteback, req, int64(bb.block))
			}
			bb.wq.WakeAll()
		})
	}
	return n
}

// Sync flushes every dirty buffer and waits for all of them (fsync/unmount
// path).
func (c *Cache) Sync(p *sim.Proc) error {
	for {
		var victim *buffer
		for e := c.lru.Back(); e != nil; e = e.Prev() {
			b := e.Value.(*buffer)
			if b.dirty && !b.busy {
				victim = b
				break
			}
		}
		if victim == nil {
			// Wait out any in-flight writebacks.
			busy := false
			for e := c.lru.Back(); e != nil; e = e.Prev() {
				b := e.Value.(*buffer)
				if b.busy {
					busy = true
					b.wq.Sleep(p)
					break
				}
			}
			if !busy {
				return nil
			}
			continue
		}
		if err := c.flushBuffer(p, victim); err != nil {
			return err
		}
	}
}

// InvalidateClean drops every clean, idle buffer, returning the count
// dropped. Experiments call it between software installation and
// measurement so programs start from a cold cache, as they would on a
// machine whose binaries were installed long before the run.
func (c *Cache) InvalidateClean() int {
	n := 0
	var victims []*buffer
	for _, b := range c.blocks {
		if !b.dirty && !b.busy && b.valid {
			victims = append(victims, b)
		}
	}
	// Evict in block order, not map order: eviction reshapes the LRU list
	// and free list, so a map-ordered sweep would leave the cache in a
	// different state on every run and desynchronize seeded experiments.
	sort.Slice(victims, func(i, j int) bool { return victims[i].block < victims[j].block })
	for _, b := range victims {
		c.evict(b)
		n++
	}
	return n
}

// Invalidate drops a clean resident block (used by tests and unmount).
// Dirty or busy blocks are left alone and reported as false.
func (c *Cache) Invalidate(block uint32) bool {
	b, ok := c.blocks[block]
	if !ok || b.dirty || b.busy {
		return false
	}
	c.evict(b)
	return true
}
