package ppm

import (
	"fmt"

	"essio/internal/apps"
	"essio/internal/kernel"
	"essio/internal/pvm"
)

// Params configures the PPM workload.
type Params struct {
	// NX, NY are the per-grid dimensions (240×480 in the study).
	NX, NY int
	// Grids is the number of grids per processor (4 in the study).
	Grids int
	// Steps is the number of hydro steps to run.
	Steps int
	// ScratchBytes sizes the end-of-run analysis buffers; at the default
	// the process footprint just crosses physical memory, producing the
	// brief burst of 4 KB paging near the end of the run that the paper's
	// Figure 2 shows.
	ScratchBytes int
	// OutputPath receives the end-of-run statistical summary.
	OutputPath string
	// Team couples the ranks; each step exchanges boundary strips with
	// ring neighbors. Nil runs serially.
	Team *apps.Team
}

// DefaultParams matches the study's configuration, with a step count that
// lands the run near the paper's ~240 s under the 486 cost model.
func DefaultParams() Params {
	return Params{
		NX: 240, NY: 480, Grids: 4, Steps: 6,
		ScratchBytes: 5 << 20,
		OutputPath:   "/home/ppm.out",
	}
}

// ProgramSpec sizes the executable: a simulation code of moderate size with
// no significant input data.
func ProgramSpec(pr Params) (textBytes, dataBytes int) {
	return 512 << 10, 128 << 10
}

// flopsPerCellSweep is the cost-model estimate of PPM work per cell per
// 1-D sweep: reconstruction (4 vars), limiting, one Riemann solve, update.
const flopsPerCellSweep = 150

// Program builds the runnable PPM program.
func Program(pr Params) *kernel.Program {
	text, data := ProgramSpec(pr)
	return &kernel.Program{
		Name:      "ppm",
		ImagePath: "/usr/bin/ppm",
		TextBytes: text,
		DataBytes: data,
		Main:      func(ctx *kernel.Process) { runMain(ctx, pr) },
	}
}

// haloTag is the PVM message tag for boundary exchange.
const haloTag = 77

func runMain(ctx *kernel.Process, pr Params) {
	p := ctx.P()
	var task *pvm.Task
	var group *pvm.Group
	rank := 0
	if pr.Team != nil {
		task, group, rank = pr.Team.Join(p, int(ctx.Node().Cfg.NodeID))
		if err := group.Barrier(p, task); err != nil {
			panic(apps.RankError(rank, err))
		}
		defer func() {
			if err := group.Barrier(p, task); err != nil {
				panic(apps.RankError(rank, err))
			}
		}()
	}
	if err := run(ctx, pr, task, group, rank); err != nil {
		panic(apps.RankError(rank, err))
	}
}

func run(ctx *kernel.Process, pr Params, task *pvm.Task, group *pvm.Group, rank int) error {
	p := ctx.P()
	cellBytes := 4 * 4 // four float32 conserved variables

	grids := make([]*Grid, pr.Grids)
	arrays := make([]*apps.Array, pr.Grids)
	for i := range grids {
		grids[i] = NewGrid(pr.NX, pr.NY)
		arrays[i] = apps.NewArray(ctx, fmt.Sprintf("grid%d", i), pr.NX*pr.NY, cellBytes)
		// Initial conditions differ per (rank, grid) — a stacked domain.
		grids[i].InitBlast(float64(rank*pr.Grids+i) * 0.7)
		if err := arrays[i].TouchAll(p, true); err != nil {
			return err
		}
		ctx.ComputeFlops(float64(10 * pr.NX * pr.NY))
	}

	rowBytes := pr.NX * cellBytes
	for step := 0; step < pr.Steps; step++ {
		dt := grids[0].CFL(0.4)
		for gi, g := range grids {
			// X sweep: rows in order; each row is touched read+write.
			for y := 0; y < pr.NY; y++ {
				if err := arrays[gi].Touch(p, y*pr.NX, (y+1)*pr.NX, true); err != nil {
					return err
				}
				if y%64 == 0 {
					ctx.ComputeFlops(float64(64 * pr.NX * flopsPerCellSweep))
				}
			}
			g.SweepX(dt)
			// Y sweep: column passes touch one page per row.
			for y := 0; y < pr.NY; y++ {
				if err := arrays[gi].Touch(p, y*pr.NX, (y+1)*pr.NX, true); err != nil {
					return err
				}
				if y%64 == 0 {
					ctx.ComputeFlops(float64(64 * pr.NX * flopsPerCellSweep))
				}
			}
			g.SweepY(dt)
		}
		// Ring halo exchange: send the top row of the last grid to the
		// next rank and receive the corresponding strip from the
		// previous one.
		if group != nil && group.Size() > 1 {
			next := group.Member((rank + 1) % group.Size()).TID()
			top := make([]float32, pr.NX)
			copy(top, grids[pr.Grids-1].Rho[(pr.NY-1)*pr.NX:])
			if err := pr.Team.PV.Send(task, next, haloTag, rowBytes, top); err != nil {
				return err
			}
			m := pr.Team.PV.Recv(p, task, pvm.AnySource, haloTag)
			strip := m.Payload.([]float32)
			// Install the neighbor strip as the bottom boundary row of
			// the first grid.
			copy(grids[0].Rho[:pr.NX], strip)
			if err := arrays[0].Touch(p, 0, pr.NX, true); err != nil {
				return err
			}
		}
	}

	// End of run: assemble statistics. The temporary analysis buffers are
	// the brief paging activity near the end of the paper's Figure 2.
	scratchBytes := pr.ScratchBytes
	if scratchBytes <= 0 {
		scratchBytes = 512 << 10
	}
	scratch := apps.NewArray(ctx, "analysis", scratchBytes/8, 8)
	if err := scratch.TouchAll(p, true); err != nil {
		return err
	}
	ctx.ComputeFlops(float64(4 * pr.NX * pr.NY))

	out, err := ctx.FD.CreateIn(p, pr.OutputPath, -1)
	if err != nil {
		return err
	}
	for i, g := range grids {
		if _, err := ctx.FD.Write(p, out, []byte(g.Checkpoint(i))); err != nil {
			return err
		}
	}
	total := fmt.Sprintf("rank=%d steps=%d grids=%d cells=%d\n",
		rank, pr.Steps, pr.Grids, pr.Grids*pr.NX*pr.NY)
	if _, err := ctx.FD.Write(p, out, []byte(total)); err != nil {
		return err
	}
	return ctx.FD.Close(out)
}
