// Package ppm implements the piecewise parabolic method astrophysics
// workload: a 2-D compressible Euler solver on structured, logically
// rectangular grids (four 240×480 grids per processor in the study), of the
// kind used for supernova explosion and accretion-flow simulations.
//
// The solver is a genuine finite-volume scheme with dimensionally split
// sweeps: piecewise parabolic (PPM) interface reconstruction with the
// standard monotonicity limiter, and an HLL Riemann flux in place of the
// original characteristic tracing (documented substitution — the memory and
// compute structure per sweep is the same).
package ppm

import (
	"fmt"
	"math"
)

// Gamma is the ratio of specific heats for the ideal-gas law.
const Gamma = 1.4

// Grid holds conserved variables (density, x/y momentum, total energy) on
// an NX×NY mesh, stored row-major with float32 like the REAL*4 production
// codes of the era.
type Grid struct {
	NX, NY int
	Rho    []float32
	MX     []float32
	MY     []float32
	E      []float32
}

// NewGrid allocates a grid.
func NewGrid(nx, ny int) *Grid {
	if nx < 8 || ny < 8 {
		panic("ppm: grid too small")
	}
	n := nx * ny
	return &Grid{
		NX: nx, NY: ny,
		Rho: make([]float32, n),
		MX:  make([]float32, n),
		MY:  make([]float32, n),
		E:   make([]float32, n),
	}
}

func (g *Grid) idx(x, y int) int { return y*g.NX + x }

// SetPrimitive sets one cell from primitive variables (ρ, vx, vy, p).
func (g *Grid) SetPrimitive(x, y int, rho, vx, vy, p float64) {
	i := g.idx(x, y)
	g.Rho[i] = float32(rho)
	g.MX[i] = float32(rho * vx)
	g.MY[i] = float32(rho * vy)
	g.E[i] = float32(p/(Gamma-1) + 0.5*rho*(vx*vx+vy*vy))
}

// InitBlast fills the grid with a dense hot circular region in an ambient
// medium — the non-spherical accretion / nova outburst class of problem.
// phase shifts the blast center so different grids hold different data.
func (g *Grid) InitBlast(phase float64) {
	cx := 0.5 + 0.2*math.Sin(phase)
	cy := 0.5 + 0.2*math.Cos(phase)
	for y := 0; y < g.NY; y++ {
		for x := 0; x < g.NX; x++ {
			fx := (float64(x) + 0.5) / float64(g.NX)
			fy := (float64(y) + 0.5) / float64(g.NY)
			dx, dy := fx-cx, fy-cy
			r2 := dx*dx + dy*dy
			if r2 < 0.01 {
				g.SetPrimitive(x, y, 4.0, 0, 0, 10.0)
			} else {
				g.SetPrimitive(x, y, 1.0, 0, 0, 0.1)
			}
		}
	}
}

// InitUniform fills the grid with a constant state (testing).
func (g *Grid) InitUniform(rho, vx, vy, p float64) {
	for y := 0; y < g.NY; y++ {
		for x := 0; x < g.NX; x++ {
			g.SetPrimitive(x, y, rho, vx, vy, p)
		}
	}
}

// InitSodX sets a Sod shock tube along x, mirrored so periodic boundaries
// conserve exactly: left state in the middle half, right state outside.
func (g *Grid) InitSodX() {
	for y := 0; y < g.NY; y++ {
		for x := 0; x < g.NX; x++ {
			if x >= g.NX/4 && x < 3*g.NX/4 {
				g.SetPrimitive(x, y, 1.0, 0, 0, 1.0)
			} else {
				g.SetPrimitive(x, y, 0.125, 0, 0, 0.1)
			}
		}
	}
}

// TotalMass returns the summed density (cell volume 1).
func (g *Grid) TotalMass() float64 {
	var s float64
	for _, v := range g.Rho {
		s += float64(v)
	}
	return s
}

// TotalEnergy returns the summed total energy.
func (g *Grid) TotalEnergy() float64 {
	var s float64
	for _, v := range g.E {
		s += float64(v)
	}
	return s
}

// MaxDensity returns the peak density.
func (g *Grid) MaxDensity() float64 {
	var m float64
	for _, v := range g.Rho {
		if float64(v) > m {
			m = float64(v)
		}
	}
	return m
}

// MinDensity returns the minimum density (positivity checks).
func (g *Grid) MinDensity() float64 {
	m := math.Inf(1)
	for _, v := range g.Rho {
		if float64(v) < m {
			m = float64(v)
		}
	}
	return m
}

// CFL returns a stable time step for the current state (dx = 1/NX).
func (g *Grid) CFL(cfl float64) float64 {
	maxSpeed := 1e-12
	for i := range g.Rho {
		rho := float64(g.Rho[i])
		if rho <= 0 {
			continue
		}
		vx := float64(g.MX[i]) / rho
		vy := float64(g.MY[i]) / rho
		p := pressure(rho, float64(g.MX[i]), float64(g.MY[i]), float64(g.E[i]))
		if p <= 0 {
			continue
		}
		c := math.Sqrt(Gamma * p / rho)
		if s := math.Abs(vx) + c; s > maxSpeed {
			maxSpeed = s
		}
		if s := math.Abs(vy) + c; s > maxSpeed {
			maxSpeed = s
		}
	}
	dx := 1.0 / float64(g.NX)
	return cfl * dx / maxSpeed
}

func pressure(rho, mx, my, e float64) float64 {
	return (Gamma - 1) * (e - 0.5*(mx*mx+my*my)/rho)
}

// state is a 1-D strip of conserved variables used by the sweeps.
type state struct {
	rho, mu, mv, e []float64 // mu = momentum along the sweep, mv transverse
}

func newState(n int) *state {
	return &state{
		rho: make([]float64, n), mu: make([]float64, n),
		mv: make([]float64, n), e: make([]float64, n),
	}
}

// ppmFaces computes limited parabolic interface values for one variable:
// left and right face values per cell (periodic).
func ppmFaces(a, aL, aR []float64) {
	n := len(a)
	at := func(i int) float64 { return a[((i%n)+n)%n] }
	// Fourth-order interface interpolation.
	for i := 0; i < n; i++ {
		face := (7.0/12.0)*(at(i)+at(i+1)) - (1.0/12.0)*(at(i-1)+at(i+2))
		aR[i] = face       // right face of cell i
		aL[(i+1)%n] = face // left face of cell i+1
	}
	// PPM monotonicity limiting (Colella & Woodward 1984, eq. 1.10).
	for i := 0; i < n; i++ {
		ai := a[i]
		l, r := aL[i], aR[i]
		if (r-ai)*(ai-l) <= 0 {
			l, r = ai, ai // local extremum: flatten
		} else {
			d := r - l
			mid := ai - 0.5*(l+r)
			if d*mid > d*d/6 {
				l = 3*ai - 2*r
			}
			if -d*d/6 > d*mid {
				r = 3*ai - 2*l
			}
		}
		aL[i], aR[i] = l, r
	}
}

// hll computes the HLL flux between left/right conserved states for the
// 1-D Euler equations (sweep-aligned momentum mu, transverse mv).
func hll(rL, muL, mvL, eL, rR, muR, mvR, eR float64) (fr, fmu, fmv, fe float64) {
	flux := func(r, mu, mv, e float64) (float64, float64, float64, float64) {
		u := mu / r
		p := pressure(r, mu, mv, e)
		return mu, mu*u + p, mv * u, (e + p) * u
	}
	uL, uR := muL/rL, muR/rR
	pL := math.Max(pressure(rL, muL, mvL, eL), 1e-12)
	pR := math.Max(pressure(rR, muR, mvR, eR), 1e-12)
	cL := math.Sqrt(Gamma * pL / rL)
	cR := math.Sqrt(Gamma * pR / rR)
	sL := math.Min(uL-cL, uR-cR)
	sR := math.Max(uL+cL, uR+cR)
	fLr, fLmu, fLmv, fLe := flux(rL, muL, mvL, eL)
	fRr, fRmu, fRmv, fRe := flux(rR, muR, mvR, eR)
	switch {
	case sL >= 0:
		return fLr, fLmu, fLmv, fLe
	case sR <= 0:
		return fRr, fRmu, fRmv, fRe
	default:
		inv := 1 / (sR - sL)
		fr = (sR*fLr - sL*fRr + sL*sR*(rR-rL)) * inv
		fmu = (sR*fLmu - sL*fRmu + sL*sR*(muR-muL)) * inv
		fmv = (sR*fLmv - sL*fRmv + sL*sR*(mvR-mvL)) * inv
		fe = (sR*fLe - sL*fRe + sL*sR*(eR-eL)) * inv
		return
	}
}

// sweep1D advances one strip by dt with cell size dx (periodic boundaries).
func sweep1D(s *state, dtdx float64) {
	n := len(s.rho)
	// Reconstruct each variable.
	vars := [][]float64{s.rho, s.mu, s.mv, s.e}
	faceL := make([][]float64, 4)
	faceR := make([][]float64, 4)
	for v := 0; v < 4; v++ {
		faceL[v] = make([]float64, n)
		faceR[v] = make([]float64, n)
		ppmFaces(vars[v], faceL[v], faceR[v])
	}
	// Interface fluxes: between cell i and i+1 use cell i's right face
	// and cell i+1's left face.
	fr := make([]float64, n)
	fmu := make([]float64, n)
	fmv := make([]float64, n)
	fe := make([]float64, n)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		rL := math.Max(faceR[0][i], 1e-12)
		rR := math.Max(faceL[0][j], 1e-12)
		fr[i], fmu[i], fmv[i], fe[i] = hll(
			rL, faceR[1][i], faceR[2][i], math.Max(faceR[3][i], 1e-12),
			rR, faceL[1][j], faceL[2][j], math.Max(faceL[3][j], 1e-12),
		)
	}
	// Conservative update.
	for i := 0; i < n; i++ {
		im := (i - 1 + n) % n
		s.rho[i] -= dtdx * (fr[i] - fr[im])
		s.mu[i] -= dtdx * (fmu[i] - fmu[im])
		s.mv[i] -= dtdx * (fmv[i] - fmv[im])
		s.e[i] -= dtdx * (fe[i] - fe[im])
	}
}

// SweepX advances every row by dt.
func (g *Grid) SweepX(dt float64) {
	dx := 1.0 / float64(g.NX)
	s := newState(g.NX)
	for y := 0; y < g.NY; y++ {
		base := y * g.NX
		for x := 0; x < g.NX; x++ {
			s.rho[x] = float64(g.Rho[base+x])
			s.mu[x] = float64(g.MX[base+x])
			s.mv[x] = float64(g.MY[base+x])
			s.e[x] = float64(g.E[base+x])
		}
		sweep1D(s, dt/dx)
		for x := 0; x < g.NX; x++ {
			g.Rho[base+x] = float32(s.rho[x])
			g.MX[base+x] = float32(s.mu[x])
			g.MY[base+x] = float32(s.mv[x])
			g.E[base+x] = float32(s.e[x])
		}
	}
}

// SweepY advances every column by dt.
func (g *Grid) SweepY(dt float64) {
	dy := 1.0 / float64(g.NY)
	s := newState(g.NY)
	for x := 0; x < g.NX; x++ {
		for y := 0; y < g.NY; y++ {
			i := g.idx(x, y)
			s.rho[y] = float64(g.Rho[i])
			s.mu[y] = float64(g.MY[i]) // sweep-aligned momentum is y
			s.mv[y] = float64(g.MX[i])
			s.e[y] = float64(g.E[i])
		}
		sweep1D(s, dt/dy)
		for y := 0; y < g.NY; y++ {
			i := g.idx(x, y)
			g.Rho[i] = float32(s.rho[y])
			g.MY[i] = float32(s.mu[y])
			g.MX[i] = float32(s.mv[y])
			g.E[i] = float32(s.e[y])
		}
	}
}

// Step advances the grid by one dimensionally split step (X then Y).
func (g *Grid) Step(dt float64) {
	g.SweepX(dt)
	g.SweepY(dt)
}

// Checkpoint summarizes the state for the end-of-run statistics file.
func (g *Grid) Checkpoint(id int) string {
	return fmt.Sprintf("grid=%d mass=%.6e energy=%.6e rhomax=%.4f rhomin=%.4f\n",
		id, g.TotalMass(), g.TotalEnergy(), g.MaxDensity(), g.MinDensity())
}
