package ppm

import (
	"math"
	"testing"
)

func TestUniformStatePreserved(t *testing.T) {
	g := NewGrid(32, 32)
	g.InitUniform(1.0, 0.3, -0.2, 2.5)
	mass0 := g.TotalMass()
	for i := 0; i < 5; i++ {
		g.Step(g.CFL(0.4))
	}
	// A constant state is an exact solution: density must stay constant.
	for i, v := range g.Rho {
		if math.Abs(float64(v)-1.0) > 1e-4 {
			t.Fatalf("cell %d density drifted to %v", i, v)
		}
	}
	if math.Abs(g.TotalMass()-mass0) > 1e-3 {
		t.Fatalf("mass drifted %v -> %v", mass0, g.TotalMass())
	}
}

func TestSodTubeConservesAndStaysPositive(t *testing.T) {
	g := NewGrid(128, 8)
	g.InitSodX()
	mass0, e0 := g.TotalMass(), g.TotalEnergy()
	for i := 0; i < 30; i++ {
		dt := g.CFL(0.4)
		g.SweepX(dt) // pure 1-D problem
	}
	if g.MinDensity() <= 0 {
		t.Fatalf("density went non-positive: %v", g.MinDensity())
	}
	relMass := math.Abs(g.TotalMass()-mass0) / mass0
	relE := math.Abs(g.TotalEnergy()-e0) / e0
	// float32 storage: conservation to ~1e-4 is expected.
	if relMass > 1e-3 || relE > 1e-3 {
		t.Fatalf("conservation violated: mass %v energy %v", relMass, relE)
	}
	// The shock must have moved material: the profile is no longer the
	// initial step.
	moved := false
	for x := 0; x < g.NX; x++ {
		v := float64(g.Rho[4*g.NX+x])
		if v > 0.13 && v < 0.95 {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("no wave structure developed in Sod problem")
	}
}

func TestBlastConserves2D(t *testing.T) {
	g := NewGrid(48, 48)
	g.InitBlast(0)
	mass0, e0 := g.TotalMass(), g.TotalEnergy()
	for i := 0; i < 10; i++ {
		g.Step(g.CFL(0.4))
	}
	if g.MinDensity() <= 0 {
		t.Fatalf("negative density: %v", g.MinDensity())
	}
	if rel := math.Abs(g.TotalMass()-mass0) / mass0; rel > 1e-3 {
		t.Fatalf("mass error %v", rel)
	}
	if rel := math.Abs(g.TotalEnergy()-e0) / e0; rel > 1e-3 {
		t.Fatalf("energy error %v", rel)
	}
	// The blast wave must have propagated: ambient cells well outside the
	// initial hot region (radius 0.1 around the phase-0 center (0.5,0.7), checked beyond r=0.122)
	// get compressed above their initial density of 1.
	disturbed := false
	for y := 0; y < g.NY; y++ {
		for x := 0; x < g.NX; x++ {
			fx := (float64(x) + 0.5) / float64(g.NX)
			fy := (float64(y) + 0.5) / float64(g.NY)
			dx, dy := fx-0.5, fy-0.7
			if dx*dx+dy*dy > 0.015 && float64(g.Rho[y*g.NX+x]) > 1.02 {
				disturbed = true
			}
		}
	}
	if !disturbed {
		t.Fatal("blast wave did not propagate into the ambient medium")
	}
}

func TestCFLPositiveAndStable(t *testing.T) {
	g := NewGrid(32, 32)
	g.InitBlast(1)
	dt := g.CFL(0.4)
	if dt <= 0 || dt > 1 {
		t.Fatalf("dt = %v", dt)
	}
	// Halving resolution doubles dt (same state).
	g2 := NewGrid(64, 64)
	g2.InitBlast(1)
	dt2 := g2.CFL(0.4)
	if dt2 >= dt {
		t.Fatalf("finer grid must have smaller dt: %v vs %v", dt2, dt)
	}
}

func TestPPMFacesLimiting(t *testing.T) {
	// A monotone profile must produce face values bounded by neighbors.
	n := 32
	a := make([]float64, n)
	for i := range a {
		a[i] = float64(i * i)
	}
	aL := make([]float64, n)
	aR := make([]float64, n)
	ppmFaces(a, aL, aR)
	for i := 2; i < n-2; i++ {
		lo := math.Min(a[i-1], math.Min(a[i], a[i+1]))
		hi := math.Max(a[i-1], math.Max(a[i], a[i+1]))
		if aL[i] < lo-1e-9 || aL[i] > hi+1e-9 || aR[i] < lo-1e-9 || aR[i] > hi+1e-9 {
			t.Fatalf("cell %d: faces (%v,%v) escape [%v,%v]", i, aL[i], aR[i], lo, hi)
		}
	}
	// A local extremum must be flattened to the cell average.
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	b[10] = 5
	ppmFaces(b, aL, aR)
	if aL[10] != b[10] || aR[10] != b[10] {
		t.Fatalf("extremum not flattened: %v %v", aL[10], aR[10])
	}
}

func TestHLLConsistency(t *testing.T) {
	// Identical left/right states give the exact physical flux.
	rho, mu, mv, e := 1.0, 0.5, -0.3, 2.0
	fr, fmu, fmv, fe := hll(rho, mu, mv, e, rho, mu, mv, e)
	u := mu / rho
	p := pressure(rho, mu, mv, e)
	if math.Abs(fr-mu) > 1e-12 {
		t.Fatalf("mass flux %v, want %v", fr, mu)
	}
	if math.Abs(fmu-(mu*u+p)) > 1e-12 {
		t.Fatalf("momentum flux %v", fmu)
	}
	if math.Abs(fmv-mv*u) > 1e-12 {
		t.Fatalf("transverse flux %v", fmv)
	}
	if math.Abs(fe-(e+p)*u) > 1e-12 {
		t.Fatalf("energy flux %v", fe)
	}
}

func TestGridTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for tiny grid")
		}
	}()
	NewGrid(2, 2)
}

func TestSweepSymmetry(t *testing.T) {
	// A blast at the center must stay x-symmetric under X sweeps.
	g := NewGrid(64, 8)
	for y := 0; y < g.NY; y++ {
		for x := 0; x < g.NX; x++ {
			if x >= 28 && x < 36 {
				g.SetPrimitive(x, y, 2, 0, 0, 5)
			} else {
				g.SetPrimitive(x, y, 1, 0, 0, 1)
			}
		}
	}
	for i := 0; i < 8; i++ {
		g.SweepX(g.CFL(0.4))
	}
	for x := 0; x < g.NX/2; x++ {
		a := float64(g.Rho[x])
		b := float64(g.Rho[g.NX-1-x+(0)*g.NX])
		// Mirror about the center between cells 31 and 32.
		bm := float64(g.Rho[63-x])
		_ = b
		if math.Abs(a-bm) > 1e-3 {
			t.Fatalf("asymmetry at x=%d: %v vs %v", x, a, bm)
		}
	}
}

func TestCheckpointFormat(t *testing.T) {
	g := NewGrid(16, 16)
	g.InitUniform(1, 0, 0, 1)
	s := g.Checkpoint(3)
	if len(s) == 0 || s[len(s)-1] != '\n' {
		t.Fatalf("checkpoint = %q", s)
	}
}
