// Package apps provides the shared runtime for the three NASA ESS
// application kernels (PPM, wavelet, N-body): team formation over PVM, and
// simulated-memory arrays whose accesses drive the node's demand-paging
// system while the actual numerics run on ordinary Go slices.
package apps

import (
	"fmt"

	"essio/internal/kernel"
	"essio/internal/pvm"
	"essio/internal/sim"
	"essio/internal/vm"
)

// Team coordinates one parallel application across the cluster: each rank
// joins at startup; once all expected ranks have joined, a PVM group ordered
// by node number exists and every member proceeds.
type Team struct {
	PV    *pvm.System
	size  int
	tasks []*pvm.Task
	group *pvm.Group
	ready *sim.WaitQueue
}

// NewTeam prepares a team of the given size.
func NewTeam(pv *pvm.System, size int, e *sim.Engine) *Team {
	if size <= 0 {
		panic("apps: team size must be positive")
	}
	return &Team{PV: pv, size: size, ready: sim.NewWaitQueue(e)}
}

// Join enrolls the calling rank; it blocks until the whole team has joined
// and returns the task, the group, and this rank's index (ordered by join).
func (t *Team) Join(p *sim.Proc, node int) (*pvm.Task, *pvm.Group, int) {
	task := t.PV.Enroll(node)
	t.tasks = append(t.tasks, task)
	rank := len(t.tasks) - 1
	if len(t.tasks) == t.size {
		t.group = t.PV.NewGroup(t.tasks)
		t.ready.WakeAll()
	} else {
		for t.group == nil {
			t.ready.Sleep(p)
		}
	}
	return task, t.group, rank
}

// Size reports the team size.
func (t *Team) Size() int { return t.size }

// Array couples a Go-visible element size with a simulated-memory segment:
// numerics operate on real Go slices while Touch calls charge the VM for
// the corresponding page accesses.
type Array struct {
	Seg      *vm.Segment
	ElemSize int
}

// NewArray maps an anonymous segment of n elements on the process.
func NewArray(ctx *kernel.Process, name string, n, elemSize int) *Array {
	return &Array{Seg: ctx.Alloc(name, n*elemSize), ElemSize: elemSize}
}

// Touch accesses elements [i, j) for read or write.
func (a *Array) Touch(p *sim.Proc, i, j int, write bool) error {
	if j <= i {
		return nil
	}
	return a.Seg.TouchRange(p, i*a.ElemSize, (j-i)*a.ElemSize, write)
}

// TouchAll accesses the whole array.
func (a *Array) TouchAll(p *sim.Proc, write bool) error {
	return a.Seg.TouchRange(p, 0, a.Seg.Size(), write)
}

// Elems reports the element count.
func (a *Array) Elems() int { return a.Seg.Size() / a.ElemSize }

// RankError decorates an application error with its rank.
func RankError(rank int, err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("rank %d: %w", rank, err)
}
