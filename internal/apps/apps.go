// Package apps provides the shared runtime for the three NASA ESS
// application kernels (PPM, wavelet, N-body): team formation over PVM, and
// simulated-memory arrays whose accesses drive the node's demand-paging
// system while the actual numerics run on ordinary Go slices.
package apps

import (
	"fmt"

	"essio/internal/kernel"
	"essio/internal/pvm"
	"essio/internal/sim"
	"essio/internal/vm"
)

// Team coordinates one parallel application across the cluster. Tasks are
// enrolled for every rank up front (NewTeam runs in coordinator context,
// before the ranks start), rank i living on node i; Join hands the calling
// rank its pre-enrolled task and synchronizes the whole team through a
// message-based PVM barrier, so formation works identically whether the
// ranks share one engine or are sharded across many.
type Team struct {
	PV    *pvm.System
	tasks []*pvm.Task
	group *pvm.Group
}

// NewTeam prepares a team of the given size, enrolling one task per node
// (rank = node). Call from setup context, before the cluster runs.
func NewTeam(pv *pvm.System, size int) *Team {
	if size <= 0 {
		panic("apps: team size must be positive")
	}
	t := &Team{PV: pv}
	for node := 0; node < size; node++ {
		t.tasks = append(t.tasks, pv.Enroll(node))
	}
	t.group = pv.NewGroup(t.tasks)
	return t
}

// Join hands the rank running on node its task and blocks until every team
// member has joined (a PVM barrier); it returns the task, the group, and
// the rank's index (= node).
func (t *Team) Join(p *sim.Proc, node int) (*pvm.Task, *pvm.Group, int) {
	task := t.tasks[node]
	if err := t.group.Barrier(p, task); err != nil {
		panic("apps: team join barrier: " + err.Error())
	}
	return task, t.group, node
}

// Size reports the team size.
func (t *Team) Size() int { return len(t.tasks) }

// Array couples a Go-visible element size with a simulated-memory segment:
// numerics operate on real Go slices while Touch calls charge the VM for
// the corresponding page accesses.
type Array struct {
	Seg      *vm.Segment
	ElemSize int
}

// NewArray maps an anonymous segment of n elements on the process.
func NewArray(ctx *kernel.Process, name string, n, elemSize int) *Array {
	return &Array{Seg: ctx.Alloc(name, n*elemSize), ElemSize: elemSize}
}

// Touch accesses elements [i, j) for read or write.
func (a *Array) Touch(p *sim.Proc, i, j int, write bool) error {
	if j <= i {
		return nil
	}
	return a.Seg.TouchRange(p, i*a.ElemSize, (j-i)*a.ElemSize, write)
}

// TouchAll accesses the whole array.
func (a *Array) TouchAll(p *sim.Proc, write bool) error {
	return a.Seg.TouchRange(p, 0, a.Seg.Size(), write)
}

// Elems reports the element count.
func (a *Array) Elems() int { return a.Seg.Size() / a.ElemSize }

// RankError decorates an application error with its rank.
func RankError(rank int, err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("rank %d: %w", rank, err)
}
