package apps

import (
	"errors"
	"testing"

	"essio/internal/ethernet"
	"essio/internal/pvm"
	"essio/internal/sim"
)

func TestTeamJoinReleasesTogether(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Close()
	pv := pvm.New(e, ethernet.New(e, ethernet.DefaultParams()))
	team := NewTeam(pv, 3)
	var joined []int
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn("rank", func(p *sim.Proc) {
			p.Sleep(sim.Duration(i+1) * sim.Second)
			task, group, rank := team.Join(p, i)
			if task == nil || group == nil {
				t.Error("nil task or group")
				return
			}
			if group.Size() != 3 {
				t.Errorf("group size %d", group.Size())
			}
			joined = append(joined, rank)
		})
	}
	e.RunUntilIdle()
	if len(joined) != 3 {
		t.Fatalf("joined = %v", joined)
	}
	// Ranks are assigned in join order (sleep order here).
	for i, r := range []int{0, 1, 2} {
		found := false
		for _, j := range joined {
			if j == r {
				found = true
			}
		}
		if !found {
			t.Fatalf("rank %d missing (joined %v, i=%d)", r, joined, i)
		}
	}
	if team.Size() != 3 {
		t.Fatalf("Size = %d", team.Size())
	}
}

func TestTeamSizePanics(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for zero team")
		}
	}()
	NewTeam(pvm.New(e, ethernet.New(e, ethernet.DefaultParams())), 0)
}

func TestRankError(t *testing.T) {
	if RankError(3, nil) != nil {
		t.Fatal("nil error must stay nil")
	}
	err := RankError(3, errors.New("boom"))
	if err == nil || err.Error() != "rank 3: boom" {
		t.Fatalf("err = %v", err)
	}
}
