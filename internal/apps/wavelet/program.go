package wavelet

import (
	"fmt"

	"essio/internal/apps"
	"essio/internal/kernel"
	"essio/internal/sim"
	"essio/internal/trace"
)

// Params configures the wavelet workload.
type Params struct {
	// N is the square image dimension (512 in the study).
	N int
	// Levels is the decomposition depth.
	Levels int
	// Filter selects Haar or D4.
	Filter Filter
	// Workspaces is the number of N²-double correlation buffers the
	// registration phase cycles through; together with the program's
	// large initialized-data segment this sets the working-set size.
	Workspaces int
	// Iterations is the number of multi-resolution correlation passes
	// (the registration application's main loop around the transform).
	Iterations int
	// ImagePath and OutputPath are per-node files.
	ImagePath  string
	OutputPath string
	// Team, when set, joins all ranks in a barrier at start and finish.
	Team *apps.Team
}

// DefaultParams matches the study: a 512×512 byte image, 5 levels, and a
// memory footprint that exceeds the node's 16 MB.
func DefaultParams() Params {
	return Params{
		N:          512,
		Levels:     5,
		Filter:     D4,
		Workspaces: 4,
		Iterations: 200,
		ImagePath:  "/home/landsat.img",
		OutputPath: "/home/wavelet.out",
	}
}

// ProgramSpec describes the executable: the wavelet/registration code had a
// large program space — generous text plus a big initialized data segment
// (filter banks, resampling tables) whose demand load is the early burst of
// 4 KB paging reads the paper highlights.
func ProgramSpec(pr Params) (textBytes, dataBytes int) {
	return 1 << 20, 4 << 20
}

// InstallInputs writes the node's input image file.
func InstallInputs(p *sim.Proc, n *kernel.Node, pr Params) error {
	img := SyntheticImage(pr.N, int64(n.Cfg.NodeID))
	ino, err := n.FS.Create(p, pr.ImagePath)
	if err != nil {
		return err
	}
	if _, err := n.FS.WriteAt(p, ino, 0, img, trace.OriginData); err != nil {
		return err
	}
	return n.FS.Sync(p)
}

// Program builds the runnable wavelet program.
func Program(pr Params) *kernel.Program {
	text, data := ProgramSpec(pr)
	return &kernel.Program{
		Name:      "wavelet",
		ImagePath: "/usr/bin/wavelet",
		TextBytes: text,
		DataBytes: data,
		Main:      func(ctx *kernel.Process) { runMain(ctx, pr) },
	}
}

func runMain(ctx *kernel.Process, pr Params) {
	p := ctx.P()
	var rank int
	if pr.Team != nil {
		task, group, r := pr.Team.Join(p, int(ctx.Node().Cfg.NodeID))
		rank = r
		if err := group.Barrier(p, task); err != nil {
			panic(apps.RankError(rank, err))
		}
		defer func() {
			if err := group.Barrier(p, task); err != nil {
				panic(apps.RankError(rank, err))
			}
		}()
	}
	if err := run(ctx, pr); err != nil {
		panic(apps.RankError(rank, err))
	}
}

func run(ctx *kernel.Process, pr Params) error {
	p := ctx.P()
	n := pr.N

	// Working arrays in simulated memory: the image grid, the in-place
	// coefficient grid, and the registration workspaces.
	origArr := apps.NewArray(ctx, "image", n*n, 8)
	coefArr := apps.NewArray(ctx, "coeff", n*n, 8)
	works := make([]*apps.Array, pr.Workspaces)
	for i := range works {
		works[i] = apps.NewArray(ctx, fmt.Sprintf("work%d", i), n*n, 8)
	}

	// Phase A: prime the correlation workspaces (anonymous first touch,
	// then real sweeps that push the working set against physical
	// memory).
	for _, w := range works {
		if err := w.TouchAll(p, true); err != nil {
			return err
		}
		ctx.ComputeFlops(float64(2 * n * n))
	}

	// Phase A2: build the resampling pyramids and filter banks — pure
	// compute that places the image read near the 50-second mark of the
	// run, as the paper's Figure 3 shows.
	for range works {
		ctx.ComputeFlops(80e6 / float64(len(works)))
	}

	// Phase B: read the input image as a byte stream — the sequential
	// read the paper sees as request sizes approaching 16 KB.
	img := make([]byte, n*n)
	fd, err := ctx.FD.Open(p, pr.ImagePath)
	if err != nil {
		return err
	}
	for off := 0; off < len(img); {
		m, err := ctx.FD.Read(p, fd, img[off:min(off+4096, len(img))])
		if err != nil {
			return err
		}
		if m == 0 {
			return fmt.Errorf("wavelet: short image file at %d", off)
		}
		// Unpack bytes into the float grid.
		if err := origArr.Touch(p, off, off+m, true); err != nil {
			return err
		}
		ctx.ComputeOps(float64(3 * m))
		off += m
	}
	ctx.FD.Close(fd)
	grid, err := FromBytes(img, n)
	if err != nil {
		return err
	}

	// Phase C: the forward transform. Each level sweeps rows then
	// columns of the shrinking top-left subregion; the column pass
	// touches one page per row, so early (large) levels keep the whole
	// grid in the working set and later levels quiesce — the paper's
	// mid-run lull.
	if err := grid.Forward(pr.Levels, pr.Filter); err != nil {
		return err
	}
	size := n
	for l := 0; l < pr.Levels; l++ {
		// Row pass.
		for y := 0; y < size; y++ {
			if err := coefArr.Touch(p, y*n, y*n+size, true); err != nil {
				return err
			}
		}
		ctx.ComputeFlops(float64(14 * size * size))
		// Column pass (page-per-row access pattern).
		for y := 0; y < size; y++ {
			if err := coefArr.Touch(p, y*n, y*n+size, true); err != nil {
				return err
			}
		}
		ctx.ComputeFlops(float64(14 * size * size))
		size /= 2
	}

	// Phase D: multi-resolution registration iterations — correlations
	// between the decomposed image and reference workspaces. This is the
	// application's compute bulk; its broad sweeps cause the limited
	// ongoing paging that maintains the working set.
	for it := 0; it < pr.Iterations; it++ {
		w := works[it%len(works)]
		res := 512
		if pr.N < res {
			res = pr.N
		}
		for y := 0; y < res; y += 8 {
			row := y * n
			if err := coefArr.Touch(p, row, row+res, false); err != nil {
				return err
			}
			if err := w.Touch(p, row, row+res, true); err != nil {
				return err
			}
		}
		ctx.ComputeFlops(float64(30 * n * n / 2))
	}

	// Phase E: write the results — per-subband statistics plus a
	// quantized coefficient dump, the heavier activity at the end of the
	// run.
	stats := grid.Stats(pr.Levels)
	out, err := ctx.FD.CreateIn(p, pr.OutputPath, -1)
	if err != nil {
		return err
	}
	for _, s := range stats {
		line := fmt.Sprintf("level=%d band=%s energy=%.4e max=%.4f\n", s.Level, s.Name, s.Energy, s.Max)
		if _, err := ctx.FD.Write(p, out, []byte(line)); err != nil {
			return err
		}
	}
	// Quantized top-left quadrant coefficient dump.
	q := n / 2
	dump := make([]byte, 0, q*q*2)
	for y := 0; y < q; y++ {
		for x := 0; x < q; x++ {
			v := int16(grid.Data[y*n+x])
			dump = append(dump, byte(v), byte(v>>8))
		}
		if err := coefArr.Touch(p, y*n, y*n+q, false); err != nil {
			return err
		}
	}
	if _, err := ctx.FD.Write(p, out, dump); err != nil {
		return err
	}
	ctx.ComputeOps(float64(len(dump)))
	return ctx.FD.Close(out)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
