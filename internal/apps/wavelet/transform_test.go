package wavelet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randGrid(n int, seed int64) *Grid {
	g := NewGrid(n)
	rng := rand.New(rand.NewSource(seed))
	for i := range g.Data {
		g.Data[i] = rng.Float64()*255 - 128
	}
	return g
}

func maxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestPerfectReconstructionHaar(t *testing.T) {
	g := randGrid(64, 1)
	orig := append([]float64(nil), g.Data...)
	if err := g.Forward(4, Haar); err != nil {
		t.Fatal(err)
	}
	if err := g.Inverse(4, Haar); err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(g.Data, orig); d > 1e-9 {
		t.Fatalf("Haar reconstruction error %g", d)
	}
}

func TestPerfectReconstructionD4(t *testing.T) {
	g := randGrid(64, 2)
	orig := append([]float64(nil), g.Data...)
	if err := g.Forward(3, D4); err != nil {
		t.Fatal(err)
	}
	if err := g.Inverse(3, D4); err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(g.Data, orig); d > 1e-9 {
		t.Fatalf("D4 reconstruction error %g", d)
	}
}

func TestEnergyConservation(t *testing.T) {
	for _, f := range []Filter{Haar, D4} {
		g := randGrid(128, 3)
		before := g.Energy()
		if err := g.Forward(5, f); err != nil {
			t.Fatal(err)
		}
		after := g.Energy()
		if math.Abs(before-after)/before > 1e-10 {
			t.Fatalf("%v transform not orthogonal: %g -> %g", f, before, after)
		}
	}
}

func TestConstantImageConcentratesInLL(t *testing.T) {
	g := NewGrid(64)
	for i := range g.Data {
		g.Data[i] = 100
	}
	if err := g.Forward(3, Haar); err != nil {
		t.Fatal(err)
	}
	stats := g.Stats(3)
	var ll, detail float64
	for _, s := range stats {
		if s.Name == "LL" {
			ll += s.Energy
		} else {
			detail += s.Energy
		}
	}
	if detail > 1e-9*ll {
		t.Fatalf("constant image leaked energy into detail bands: %g vs %g", detail, ll)
	}
}

func TestStatsCoverWholeGrid(t *testing.T) {
	g := randGrid(64, 5)
	if err := g.Forward(3, D4); err != nil {
		t.Fatal(err)
	}
	total := g.Energy()
	var sum float64
	for _, s := range g.Stats(3) {
		sum += s.Energy
	}
	if math.Abs(total-sum)/total > 1e-12 {
		t.Fatalf("subband energies %g do not sum to total %g", sum, total)
	}
}

func TestForwardTooDeepFails(t *testing.T) {
	g := NewGrid(8)
	if err := g.Forward(10, Haar); err == nil {
		t.Fatal("want error for excessive depth")
	}
}

func TestFromBytesValidation(t *testing.T) {
	if _, err := FromBytes(make([]byte, 10), 4); err == nil {
		t.Fatal("want size mismatch error")
	}
	g, err := FromBytes([]byte{1, 2, 3, 4}, 2)
	if err != nil || g.Data[3] != 4 {
		t.Fatalf("FromBytes = %v, %v", g, err)
	}
}

func TestQuick1DRoundTrip(t *testing.T) {
	f := func(vals []float64, useD4 bool) bool {
		n := len(vals) &^ 3
		if n < 8 {
			return true
		}
		if n > 256 {
			n = 256
		}
		data := append([]float64(nil), vals[:n]...)
		for i, v := range data {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				data[i] = float64(i)
			}
		}
		orig := append([]float64(nil), data...)
		filt := Haar
		if useD4 {
			filt = D4
		}
		tmp := make([]float64, n)
		fwd1D(data, tmp, n, filt)
		inv1D(data, tmp, n, filt)
		for i := range data {
			tol := 1e-9 * math.Max(1, math.Abs(orig[i]))
			if math.Abs(data[i]-orig[i]) > tol {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(9))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSyntheticImageDeterministicAndVaried(t *testing.T) {
	a := SyntheticImage(128, 3)
	b := SyntheticImage(128, 3)
	c := SyntheticImage(128, 4)
	if len(a) != 128*128 {
		t.Fatalf("len = %d", len(a))
	}
	same, diff := true, false
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if a[i] != c[i] {
			diff = true
		}
	}
	if !same {
		t.Fatal("same seed produced different images")
	}
	if !diff {
		t.Fatal("different seeds produced identical images")
	}
	// The image must have real structure (nonzero detail energy).
	g, err := FromBytes(a, 128)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Forward(3, Haar); err != nil {
		t.Fatal(err)
	}
	var detail float64
	for _, s := range g.Stats(3) {
		if s.Name != "LL" {
			detail += s.Energy
		}
	}
	if detail < 1000 {
		t.Fatalf("synthetic image too flat: detail energy %g", detail)
	}
}
