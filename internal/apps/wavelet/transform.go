// Package wavelet implements the NASA Goddard wavelet decomposition
// workload: a multi-level 2-D separable discrete wavelet transform of a
// 512×512-byte satellite image (Landsat-TM class), as used for image
// registration and compression. The transform itself is a real orthogonal
// DWT (Haar or Daubechies-4); the surrounding program reproduces the
// application's memory behaviour — a working set of image pyramids and
// correlation workspaces well beyond the node's 16 MB — which is what makes
// this the paging-heavy workload of the study.
package wavelet

import (
	"fmt"
	"math"
)

// h4 and g4 hold the Daubechies-4 low/high-pass analysis filters.
var h4, g4 [4]float64

func init() {
	s3 := math.Sqrt(3)
	den := 4 * math.Sqrt2
	h4 = [4]float64{(1 + s3) / den, (3 + s3) / den, (3 - s3) / den, (1 - s3) / den}
	for i := 0; i < 4; i++ {
		sign := 1.0
		if i%2 == 1 {
			sign = -1
		}
		g4[i] = sign * h4[3-i]
	}
}

// Filter selects the wavelet family.
type Filter int

const (
	// Haar is the 2-tap orthonormal Haar filter.
	Haar Filter = iota
	// D4 is the 4-tap Daubechies filter.
	D4
)

func (f Filter) String() string {
	if f == D4 {
		return "daubechies4"
	}
	return "haar"
}

// fwd1D transforms data[0:n] one level in place: the first n/2 outputs are
// smooth (low-pass) coefficients, the next n/2 are detail coefficients.
// Periodic boundary handling. n must be even.
func fwd1D(data, tmp []float64, n int, f Filter) {
	half := n / 2
	switch f {
	case Haar:
		r := math.Sqrt2 / 2
		for i := 0; i < half; i++ {
			a, b := data[2*i], data[2*i+1]
			tmp[i] = (a + b) * r
			tmp[half+i] = (a - b) * r
		}
	case D4:
		for i := 0; i < half; i++ {
			var s, d float64
			for k := 0; k < 4; k++ {
				v := data[(2*i+k)%n]
				s += h4[k] * v
				d += g4[k] * v
			}
			tmp[i] = s
			tmp[half+i] = d
		}
	}
	copy(data[:n], tmp[:n])
}

// inv1D inverts fwd1D.
func inv1D(data, tmp []float64, n int, f Filter) {
	half := n / 2
	switch f {
	case Haar:
		r := math.Sqrt2 / 2
		for i := 0; i < half; i++ {
			s, d := data[i], data[half+i]
			tmp[2*i] = (s + d) * r
			tmp[2*i+1] = (s - d) * r
		}
	case D4:
		for i := 0; i < n; i++ {
			tmp[i] = 0
		}
		for i := 0; i < half; i++ {
			s, d := data[i], data[half+i]
			for k := 0; k < 4; k++ {
				tmp[(2*i+k)%n] += h4[k]*s + g4[k]*d
			}
		}
	}
	copy(data[:n], tmp[:n])
}

// Grid is a square float64 image.
type Grid struct {
	N    int
	Data []float64 // row-major N×N
}

// NewGrid allocates an N×N grid.
func NewGrid(n int) *Grid {
	return &Grid{N: n, Data: make([]float64, n*n)}
}

// FromBytes builds a grid from a row-major byte image.
func FromBytes(img []byte, n int) (*Grid, error) {
	if len(img) != n*n {
		return nil, fmt.Errorf("wavelet: image is %d bytes, want %d", len(img), n*n)
	}
	g := NewGrid(n)
	for i, b := range img {
		g.Data[i] = float64(b)
	}
	return g, nil
}

// Forward applies levels of 2-D separable DWT in place. After level L the
// smooth subband occupies the top-left (N>>L)×(N>>L) corner. Returns an
// error if the grid is too small for the requested depth.
func (g *Grid) Forward(levels int, f Filter) error {
	n := g.N
	for l := 0; l < levels; l++ {
		if n < 2 || n%2 != 0 {
			return fmt.Errorf("wavelet: cannot transform %d more level(s) at size %d", levels-l, n)
		}
		tmp := make([]float64, n)
		row := make([]float64, n)
		// Rows.
		for y := 0; y < n; y++ {
			copy(row, g.Data[y*g.N:y*g.N+n])
			fwd1D(row, tmp, n, f)
			copy(g.Data[y*g.N:y*g.N+n], row)
		}
		// Columns.
		col := make([]float64, n)
		for x := 0; x < n; x++ {
			for y := 0; y < n; y++ {
				col[y] = g.Data[y*g.N+x]
			}
			fwd1D(col, tmp, n, f)
			for y := 0; y < n; y++ {
				g.Data[y*g.N+x] = col[y]
			}
		}
		n /= 2
	}
	return nil
}

// Inverse undoes Forward with the same parameters.
func (g *Grid) Inverse(levels int, f Filter) error {
	sizes := make([]int, 0, levels)
	n := g.N
	for l := 0; l < levels; l++ {
		if n < 2 || n%2 != 0 {
			return fmt.Errorf("wavelet: invalid inverse depth %d at size %d", levels, n)
		}
		sizes = append(sizes, n)
		n /= 2
	}
	for l := levels - 1; l >= 0; l-- {
		n := sizes[l]
		tmp := make([]float64, n)
		col := make([]float64, n)
		for x := 0; x < n; x++ {
			for y := 0; y < n; y++ {
				col[y] = g.Data[y*g.N+x]
			}
			inv1D(col, tmp, n, f)
			for y := 0; y < n; y++ {
				g.Data[y*g.N+x] = col[y]
			}
		}
		row := make([]float64, n)
		for y := 0; y < n; y++ {
			copy(row, g.Data[y*g.N:y*g.N+n])
			inv1D(row, tmp, n, f)
			copy(g.Data[y*g.N:y*g.N+n], row)
		}
	}
	return nil
}

// Energy returns the L2 norm squared (orthogonal transforms preserve it).
func (g *Grid) Energy() float64 {
	var e float64
	for _, v := range g.Data {
		e += v * v
	}
	return e
}

// SubbandStats summarizes one subband.
type SubbandStats struct {
	Level  int
	Name   string // LL, LH, HL, HH
	Energy float64
	Max    float64
}

// Stats reports per-subband energies after a Forward of the given depth —
// the "coefficient summary" the application writes as its result.
func (g *Grid) Stats(levels int) []SubbandStats {
	var out []SubbandStats
	region := func(level int, name string, x0, y0, w, hgt int) {
		var e, mx float64
		for y := y0; y < y0+hgt; y++ {
			for x := x0; x < x0+w; x++ {
				v := g.Data[y*g.N+x]
				e += v * v
				if a := math.Abs(v); a > mx {
					mx = a
				}
			}
		}
		out = append(out, SubbandStats{Level: level, Name: name, Energy: e, Max: mx})
	}
	n := g.N
	for l := 1; l <= levels; l++ {
		half := n / 2
		region(l, "LH", 0, half, half, half)
		region(l, "HL", half, 0, half, half)
		region(l, "HH", half, half, half, half)
		n = half
	}
	region(levels, "LL", 0, 0, n, n)
	return out
}

// SyntheticImage builds a deterministic 8-bit test image with smooth
// gradients, a few bright features, and texture — enough structure for the
// subband statistics to be non-trivial. seed varies the content per node.
func SyntheticImage(n int, seed int64) []byte {
	img := make([]byte, n*n)
	s := float64(seed%97) + 1
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			fx, fy := float64(x)/float64(n), float64(y)/float64(n)
			v := 96*fx + 64*fy // gradient
			v += 48 * math.Sin(fx*12*math.Pi+s) * math.Cos(fy*9*math.Pi)
			// A bright blob (cloud/landmark).
			dx, dy := fx-0.6, fy-0.35
			v += 80 * math.Exp(-(dx*dx+dy*dy)*90)
			// Deterministic fine texture.
			v += float64(((x*73856093)^(y*19349663)^int(seed*2654435761))%17) - 8
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			img[y*n+x] = byte(v)
		}
	}
	return img
}
