package nbody

import (
	"math"
	"testing"
)

func TestPlummerDeterministic(t *testing.T) {
	a := NewPlummer(256, 7)
	b := NewPlummer(256, 7)
	for i := range a.Particles {
		if a.Particles[i] != b.Particles[i] {
			t.Fatal("same seed produced different particles")
		}
	}
	c := NewPlummer(256, 8)
	same := true
	for i := range a.Particles {
		if a.Particles[i].Pos != c.Particles[i].Pos {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical particles")
	}
	// Total mass normalized to 1.
	var m float64
	for i := range a.Particles {
		m += a.Particles[i].Mass
	}
	if math.Abs(m-1) > 1e-12 {
		t.Fatalf("total mass %v", m)
	}
}

func TestTreeContainsAllParticles(t *testing.T) {
	s := NewPlummer(512, 1)
	s.BuildTree()
	var mass float64
	countLeaves := 0
	for i := range s.nodes {
		if s.nodes[i].leaf && s.nodes[i].part >= 0 {
			countLeaves++
		}
	}
	mass = s.nodes[0].mass
	if countLeaves != 512 {
		t.Fatalf("tree holds %d particles, want 512", countLeaves)
	}
	if math.Abs(mass-1) > 1e-12 {
		t.Fatalf("root mass %v, want 1", mass)
	}
	// Root COM equals the direct center of mass.
	com := s.CenterOfMass()
	for d := 0; d < 3; d++ {
		if math.Abs(s.nodes[0].com[d]-com[d]) > 1e-9 {
			t.Fatalf("root com %v vs direct %v", s.nodes[0].com, com)
		}
	}
}

func TestTreeForceMatchesDirect(t *testing.T) {
	s := NewPlummer(400, 3)
	s.Theta = 0.3 // tight opening angle for accuracy
	s.BuildTree()
	var worst float64
	for _, pi := range []int{0, 17, 111, 399} {
		s.Force(pi)
		approx := s.Particles[pi].Acc
		exact := s.DirectForce(pi)
		var diff, norm float64
		for d := 0; d < 3; d++ {
			diff += (approx[d] - exact[d]) * (approx[d] - exact[d])
			norm += exact[d] * exact[d]
		}
		rel := math.Sqrt(diff / (norm + 1e-30))
		if rel > worst {
			worst = rel
		}
	}
	if worst > 0.05 {
		t.Fatalf("worst relative force error %.3f at theta=0.3", worst)
	}
}

func TestThetaTradesAccuracyForWork(t *testing.T) {
	tight := NewPlummer(512, 5)
	tight.Theta = 0.2
	tight.BuildTree()
	tight.Force(0)
	tightCount := tight.Interactions

	loose := NewPlummer(512, 5)
	loose.Theta = 1.0
	loose.BuildTree()
	loose.Force(0)
	looseCount := loose.Interactions

	if looseCount >= tightCount {
		t.Fatalf("loose theta (%d) should do less work than tight (%d)", looseCount, tightCount)
	}
}

func TestInteractionCountSubQuadratic(t *testing.T) {
	s := NewPlummer(1024, 2)
	s.BuildTree()
	for i := range s.Particles {
		s.Force(i)
	}
	n := uint64(len(s.Particles))
	if s.Interactions >= n*n/2 {
		t.Fatalf("interactions %d not sub-quadratic for n=%d", s.Interactions, n)
	}
	if s.Interactions < n {
		t.Fatalf("interactions %d suspiciously low", s.Interactions)
	}
}

func TestStepMovesSystemStably(t *testing.T) {
	s := NewPlummer(256, 4)
	ke0 := s.KineticEnergy()
	var total uint64
	for i := 0; i < 5; i++ {
		total += s.Step(0.005)
	}
	if total == 0 {
		t.Fatal("no interactions during steps")
	}
	ke := s.KineticEnergy()
	if math.IsNaN(ke) || ke > 100*ke0+1 {
		t.Fatalf("kinetic energy exploded: %v -> %v", ke0, ke)
	}
	// Particles actually moved.
	moved := false
	ref := NewPlummer(256, 4)
	for i := range s.Particles {
		if s.Particles[i].Pos != ref.Particles[i].Pos {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("no particle moved")
	}
}

func TestBoundsContainEverything(t *testing.T) {
	s := NewPlummer(128, 9)
	center, half := s.bounds()
	for i := range s.Particles {
		for d := 0; d < 3; d++ {
			if math.Abs(s.Particles[i].Pos[d]-center[d]) > half {
				t.Fatalf("particle %d outside root box", i)
			}
		}
	}
}

func TestSummaryFormat(t *testing.T) {
	s := NewPlummer(64, 1)
	s.Step(0.01)
	out := s.Summary(3)
	if len(out) == 0 || out[len(out)-1] != '\n' {
		t.Fatalf("summary = %q", out)
	}
}
