// Package nbody implements the oct-tree N-body astrophysics workload: a
// Barnes–Hut gravitational simulation with 8 K particles per processor, the
// configuration the study reports as 303 million total particle
// interactions across the run. Simulation codes of this class have almost
// no explicit I/O — just final statistics — which is exactly the low-I/O
// profile the paper observes.
package nbody

import (
	"fmt"
	"math"
	"math/rand"
)

// Particle is one body.
type Particle struct {
	Pos  [3]float64
	Vel  [3]float64
	Acc  [3]float64
	Mass float64
}

// System is one rank's particle set and tree parameters.
type System struct {
	Particles []Particle
	// Theta is the Barnes–Hut opening angle.
	Theta float64
	// Eps is the gravitational softening length.
	Eps float64
	// Interactions counts particle-node interactions evaluated.
	Interactions uint64

	nodes []node
}

// node is one oct-tree cell in the array-allocated tree.
type node struct {
	center [3]float64
	half   float64
	com    [3]float64
	mass   float64
	// children holds indices into nodes; -1 = empty. Leaf nodes store a
	// particle index in part (-1 for internal nodes).
	children [8]int32
	part     int32
	leaf     bool
}

// NewPlummer builds a deterministic Plummer-like sphere of n equal-mass
// particles in virial-ish equilibrium.
func NewPlummer(n int, seed int64) *System {
	rng := rand.New(rand.NewSource(seed))
	s := &System{
		Particles: make([]Particle, n),
		Theta:     0.6,
		Eps:       0.01,
	}
	for i := range s.Particles {
		p := &s.Particles[i]
		p.Mass = 1.0 / float64(n)
		// Plummer radius sampling.
		x := rng.Float64()
		r := 1.0 / math.Sqrt(math.Pow(x, -2.0/3.0)-1)
		if r > 5 {
			r = 5
		}
		u, v := rng.Float64(), rng.Float64()
		theta := math.Acos(2*u - 1)
		phi := 2 * math.Pi * v
		p.Pos[0] = r * math.Sin(theta) * math.Cos(phi)
		p.Pos[1] = r * math.Sin(theta) * math.Sin(phi)
		p.Pos[2] = r * math.Cos(theta)
		// Modest isotropic velocities.
		ve := 0.3 * math.Sqrt(2) * math.Pow(1+r*r, -0.25)
		u, v = rng.Float64(), rng.Float64()
		theta = math.Acos(2*u - 1)
		phi = 2 * math.Pi * v
		p.Vel[0] = ve * math.Sin(theta) * math.Cos(phi)
		p.Vel[1] = ve * math.Sin(theta) * math.Sin(phi)
		p.Vel[2] = ve * math.Cos(theta)
	}
	return s
}

// bounds returns a cube containing all particles.
func (s *System) bounds() (center [3]float64, half float64) {
	lo := [3]float64{math.Inf(1), math.Inf(1), math.Inf(1)}
	hi := [3]float64{math.Inf(-1), math.Inf(-1), math.Inf(-1)}
	for i := range s.Particles {
		for d := 0; d < 3; d++ {
			v := s.Particles[i].Pos[d]
			if v < lo[d] {
				lo[d] = v
			}
			if v > hi[d] {
				hi[d] = v
			}
		}
	}
	for d := 0; d < 3; d++ {
		center[d] = (lo[d] + hi[d]) / 2
		if h := (hi[d] - lo[d]) / 2; h > half {
			half = h
		}
	}
	half *= 1.001
	if half == 0 {
		half = 1
	}
	return
}

func newNode(center [3]float64, half float64) node {
	n := node{center: center, half: half, part: -1, leaf: true}
	for i := range n.children {
		n.children[i] = -1
	}
	return n
}

// BuildTree (re)builds the oct-tree over the current particle positions and
// returns the node count.
func (s *System) BuildTree() int {
	center, half := s.bounds()
	s.nodes = s.nodes[:0]
	s.nodes = append(s.nodes, newNode(center, half))
	for i := range s.Particles {
		s.insert(0, int32(i), 0)
	}
	s.computeMoments(0)
	return len(s.nodes)
}

func (s *System) octant(ni int, pos [3]float64) int {
	o := 0
	for d := 0; d < 3; d++ {
		if pos[d] >= s.nodes[ni].center[d] {
			o |= 1 << d
		}
	}
	return o
}

func (s *System) childBox(ni, oct int) ([3]float64, float64) {
	h := s.nodes[ni].half / 2
	c := s.nodes[ni].center
	for d := 0; d < 3; d++ {
		if oct&(1<<d) != 0 {
			c[d] += h
		} else {
			c[d] -= h
		}
	}
	return c, h
}

const maxDepth = 48

func (s *System) insert(ni, pi int32, depth int) {
	nd := &s.nodes[ni]
	if nd.leaf {
		if nd.part < 0 {
			nd.part = pi
			return
		}
		if depth >= maxDepth {
			// Coincident particles: merge into the node's moments via a
			// secondary slot chain is unnecessary; drop to COM handling
			// by keeping the first particle and accumulating mass later.
			// In practice the deterministic initializer never collides.
			return
		}
		// Split: push the resident particle down.
		old := nd.part
		nd.part = -1
		nd.leaf = false
		s.pushDown(ni, old, depth)
		s.pushDown(ni, pi, depth)
		return
	}
	s.pushDown(ni, pi, depth)
}

func (s *System) pushDown(ni, pi int32, depth int) {
	oct := s.octant(int(ni), s.Particles[pi].Pos)
	ci := s.nodes[ni].children[oct]
	if ci < 0 {
		c, h := s.childBox(int(ni), oct)
		s.nodes = append(s.nodes, newNode(c, h))
		ci = int32(len(s.nodes) - 1)
		s.nodes[ni].children[oct] = ci
	}
	s.insert(ci, pi, depth+1)
}

// computeMoments fills mass and center-of-mass bottom-up.
func (s *System) computeMoments(ni int32) (mass float64, com [3]float64) {
	nd := &s.nodes[ni]
	if nd.leaf {
		if nd.part >= 0 {
			p := &s.Particles[nd.part]
			nd.mass = p.Mass
			nd.com = p.Pos
		}
		return nd.mass, nd.com
	}
	for _, ci := range nd.children {
		if ci < 0 {
			continue
		}
		m, c := s.computeMoments(ci)
		nd.mass += m
		for d := 0; d < 3; d++ {
			nd.com[d] += m * c[d]
		}
	}
	if nd.mass > 0 {
		for d := 0; d < 3; d++ {
			nd.com[d] /= nd.mass
		}
	}
	return nd.mass, nd.com
}

// accumulate adds the softened gravitational pull of (mass at com) on p.
func accumulate(p *Particle, com [3]float64, mass, eps float64) {
	var dx [3]float64
	r2 := eps * eps
	for d := 0; d < 3; d++ {
		dx[d] = com[d] - p.Pos[d]
		r2 += dx[d] * dx[d]
	}
	inv := 1 / math.Sqrt(r2)
	f := mass * inv * inv * inv
	for d := 0; d < 3; d++ {
		p.Acc[d] += f * dx[d]
	}
}

// Force computes the Barnes–Hut acceleration on particle pi, returning the
// number of interactions evaluated.
func (s *System) Force(pi int) int {
	p := &s.Particles[pi]
	p.Acc = [3]float64{}
	count := 0
	var walk func(ni int32)
	walk = func(ni int32) {
		nd := &s.nodes[ni]
		if nd.mass == 0 {
			return
		}
		if nd.leaf {
			if nd.part >= 0 && int(nd.part) != pi {
				accumulate(p, nd.com, nd.mass, s.Eps)
				count++
			}
			return
		}
		var r2 float64
		for d := 0; d < 3; d++ {
			dx := nd.com[d] - p.Pos[d]
			r2 += dx * dx
		}
		size := 2 * nd.half
		if size*size < s.Theta*s.Theta*r2 {
			accumulate(p, nd.com, nd.mass, s.Eps)
			count++
			return
		}
		for _, ci := range nd.children {
			if ci >= 0 {
				walk(ci)
			}
		}
	}
	walk(0)
	s.Interactions += uint64(count)
	return count
}

// DirectForce computes the exact O(n) pairwise acceleration on particle pi
// (testing reference).
func (s *System) DirectForce(pi int) [3]float64 {
	p := s.Particles[pi]
	p.Acc = [3]float64{}
	for j := range s.Particles {
		if j == pi {
			continue
		}
		accumulate(&p, s.Particles[j].Pos, s.Particles[j].Mass, s.Eps)
	}
	return p.Acc
}

// Step advances the system by one leapfrog (kick-drift-kick) step,
// rebuilding the tree and recomputing all forces. It returns the
// interactions evaluated this step.
func (s *System) Step(dt float64) uint64 {
	before := s.Interactions
	s.BuildTree()
	for i := range s.Particles {
		s.Force(i)
	}
	for i := range s.Particles {
		p := &s.Particles[i]
		for d := 0; d < 3; d++ {
			p.Vel[d] += p.Acc[d] * dt
			p.Pos[d] += p.Vel[d] * dt
		}
	}
	return s.Interactions - before
}

// KineticEnergy sums ½mv².
func (s *System) KineticEnergy() float64 {
	var e float64
	for i := range s.Particles {
		p := &s.Particles[i]
		v2 := p.Vel[0]*p.Vel[0] + p.Vel[1]*p.Vel[1] + p.Vel[2]*p.Vel[2]
		e += 0.5 * p.Mass * v2
	}
	return e
}

// CenterOfMass returns the system center of mass.
func (s *System) CenterOfMass() [3]float64 {
	var com [3]float64
	var m float64
	for i := range s.Particles {
		p := &s.Particles[i]
		m += p.Mass
		for d := 0; d < 3; d++ {
			com[d] += p.Mass * p.Pos[d]
		}
	}
	for d := 0; d < 3; d++ {
		com[d] /= m
	}
	return com
}

// Summary is the end-of-run statistics line.
func (s *System) Summary(rank int) string {
	com := s.CenterOfMass()
	return fmt.Sprintf("rank=%d n=%d interactions=%d ke=%.6e com=(%.4f,%.4f,%.4f)\n",
		rank, len(s.Particles), s.Interactions, s.KineticEnergy(), com[0], com[1], com[2])
}
