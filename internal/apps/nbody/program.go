package nbody

import (
	"essio/internal/apps"
	"essio/internal/kernel"
	"essio/internal/pvm"
)

// Params configures the N-body workload.
type Params struct {
	// Particles per processor (8192 in the study).
	Particles int
	// Steps of leapfrog integration.
	Steps int
	// Theta is the opening angle.
	Theta float64
	// WorkBytes sizes the interaction-list / locally-essential-tree
	// buffers. The default pushes the footprint just past physical
	// memory, giving the light swap traffic (and ~13%% read share) the
	// paper measured for the tree code.
	WorkBytes int
	// OutputPath receives the final statistics.
	OutputPath string
	// Team couples ranks: per-step center-of-mass exchange and barriers.
	Team *apps.Team
}

// DefaultParams matches the study: 8 K particles per processor with a step
// count that lands total interactions near the reported 303 million on 16
// ranks.
func DefaultParams() Params {
	return Params{
		Particles:  8192,
		Steps:      5,
		Theta:      0.6,
		WorkBytes:  10<<20 + 352<<10,
		OutputPath: "/home/nbody.out",
	}
}

// ProgramSpec sizes the executable: a compact tree code, slightly larger
// working text than PPM (tree walking plus integrator), no input data.
func ProgramSpec(pr Params) (textBytes, dataBytes int) {
	return 640 << 10, 64 << 10
}

// flopsPerInteraction is the cost-model estimate per particle-node
// interaction (distance, rsqrt, accumulate).
const flopsPerInteraction = 25

// comTag is the PVM tag for the per-step center-of-mass exchange.
const comTag = 88

// Program builds the runnable N-body program.
func Program(pr Params) *kernel.Program {
	text, data := ProgramSpec(pr)
	return &kernel.Program{
		Name:      "nbody",
		ImagePath: "/usr/bin/nbody",
		TextBytes: text,
		DataBytes: data,
		Main:      func(ctx *kernel.Process) { runMain(ctx, pr) },
	}
}

func runMain(ctx *kernel.Process, pr Params) {
	p := ctx.P()
	var task *pvm.Task
	var group *pvm.Group
	rank := 0
	if pr.Team != nil {
		task, group, rank = pr.Team.Join(p, int(ctx.Node().Cfg.NodeID))
		if err := group.Barrier(p, task); err != nil {
			panic(apps.RankError(rank, err))
		}
		defer func() {
			if err := group.Barrier(p, task); err != nil {
				panic(apps.RankError(rank, err))
			}
		}()
	}
	if err := run(ctx, pr, task, group, rank); err != nil {
		panic(apps.RankError(rank, err))
	}
}

func run(ctx *kernel.Process, pr Params, task *pvm.Task, group *pvm.Group, rank int) error {
	p := ctx.P()
	sys := NewPlummer(pr.Particles, int64(rank)+1)
	sys.Theta = pr.Theta

	// Simulated memory: the particle array (pos/vel/acc/mass = 80 B) and
	// the tree node pool (~2 nodes per particle, 96 B each).
	partArr := apps.NewArray(ctx, "particles", pr.Particles, 80)
	treeArr := apps.NewArray(ctx, "tree", 2*pr.Particles, 96)
	if err := partArr.TouchAll(p, true); err != nil {
		return err
	}
	ctx.ComputeFlops(float64(40 * pr.Particles))
	var workArr *apps.Array
	if pr.WorkBytes > 0 {
		workArr = apps.NewArray(ctx, "ilist", pr.WorkBytes/8, 8)
	}

	const chunk = 256
	for step := 0; step < pr.Steps; step++ {
		// Tree build: every particle read, node pool written.
		nodes := sys.BuildTree()
		if err := partArr.TouchAll(p, false); err != nil {
			return err
		}
		touchNodes := nodes
		if touchNodes > treeArr.Elems() {
			touchNodes = treeArr.Elems()
		}
		if err := treeArr.Touch(p, 0, touchNodes, true); err != nil {
			return err
		}
		ctx.ComputeOps(float64(60 * pr.Particles))

		// Force walk in chunks: particles written, tree read, with the
		// real interaction count driving the CPU cost model.
		for i := 0; i < pr.Particles; i += chunk {
			end := i + chunk
			if end > pr.Particles {
				end = pr.Particles
			}
			inter := 0
			for j := i; j < end; j++ {
				inter += sys.Force(j)
			}
			if err := partArr.Touch(p, i, end, true); err != nil {
				return err
			}
			if err := treeArr.Touch(p, 0, touchNodes/2, false); err != nil {
				return err
			}
			ctx.ComputeFlops(float64(inter * flopsPerInteraction))
		}

		// Integrate.
		for i := range sys.Particles {
			pt := &sys.Particles[i]
			for d := 0; d < 3; d++ {
				pt.Vel[d] += pt.Acc[d] * 0.01
				pt.Pos[d] += pt.Vel[d] * 0.01
			}
		}
		if err := partArr.TouchAll(p, true); err != nil {
			return err
		}
		ctx.ComputeFlops(float64(12 * pr.Particles))

		// Refill a rotating slice of the interaction-list buffers: the
		// footprint slightly exceeds physical memory, so this causes the
		// occasional page swap the paper observes.
		if workArr != nil {
			span := workArr.Elems() / pr.Steps
			lo := (step * span) % workArr.Elems()
			hi := lo + span
			if hi > workArr.Elems() {
				hi = workArr.Elems()
			}
			if err := workArr.Touch(p, lo, hi, true); err != nil {
				return err
			}
			ctx.ComputeOps(float64(hi - lo))
		}

		// Exchange center-of-mass summaries with the other ranks (the
		// locally-essential-tree handshake, small messages).
		if group != nil && group.Size() > 1 {
			com := sys.CenterOfMass()
			tids := make([]pvm.TID, 0, group.Size()-1)
			for r := 0; r < group.Size(); r++ {
				if r != rank {
					tids = append(tids, group.Member(r).TID())
				}
			}
			if err := pr.Team.PV.Mcast(task, tids, comTag, 32, com); err != nil {
				return err
			}
			for range tids {
				pr.Team.PV.Recv(p, task, pvm.AnySource, comTag)
			}
		}
	}

	// Free the interaction lists, then compute the summary over every
	// particle: the list growth of the final steps displaced part of the
	// particle array, so the summary pass faults a handful of pages back
	// from swap — the tree code's modest read share in the paper's
	// Table 1.
	if workArr != nil {
		workArr.Seg.Release(p)
	}
	if err := partArr.TouchAll(p, false); err != nil {
		return err
	}
	ctx.ComputeFlops(float64(10 * pr.Particles))

	// Write the short statistical summary — the only explicit output.
	out, err := ctx.FD.CreateIn(p, pr.OutputPath, -1)
	if err != nil {
		return err
	}
	if _, err := ctx.FD.Write(p, out, []byte(sys.Summary(rank))); err != nil {
		return err
	}
	return ctx.FD.Close(out)
}
