// Goodness-of-fit between two fitted workload models: the validation layer
// that closes the fit → generate → re-fit loop. Distance compares the
// distributions a generator is supposed to reproduce — request sizes,
// inter-arrival gaps, spatial bands — with the statistics appropriate to
// each (Kolmogorov–Smirnov for the continuous-ish distributions,
// chi-square for the banded categorical one, relative error for scalar
// rates).

package model

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// DistanceReport quantifies how far apart two workload models are.
type DistanceReport struct {
	// SizeKS is the Kolmogorov–Smirnov distance between the aggregate
	// request-size distributions (sup-norm of the CDF difference, in
	// [0,1]).
	SizeKS float64
	// InterArrivalKS is the KS distance between the log-bucketed
	// inter-arrival distributions of the merged streams.
	InterArrivalKS float64
	// BandChi2 is the chi-square statistic of B's spatial band counts
	// against A's band distribution, with BandDF degrees of freedom and
	// upper-tail p-value BandP. Under the hypothesis that B's requests
	// were drawn from A's band distribution, BandP is uniform on (0,1);
	// values near zero reject the fit.
	BandChi2 float64
	BandDF   int
	BandP    float64
	// ReadFracErr is |readFraction(A) − readFraction(B)|.
	ReadFracErr float64
	// RateErr is the relative error of B's mean request rate against
	// A's, after normalizing both to per-node rates so traces generated
	// at different node counts compare fairly.
	RateErr float64
	// SeqErr is |seqP(A) − seqP(B)|, the sequential-continuation
	// mismatch.
	SeqErr float64
}

func (r DistanceReport) String() string {
	return fmt.Sprintf("size KS %.4f | inter-arrival KS %.4f | band chi2 %.1f (df %d, p %.3f) | read-frac err %.4f | rate err %.1f%% | seq err %.4f",
		r.SizeKS, r.InterArrivalKS, r.BandChi2, r.BandDF, r.BandP, r.ReadFracErr, 100*r.RateErr, r.SeqErr)
}

// Tolerance bounds a DistanceReport; zero fields accept anything.
type Tolerance struct {
	SizeKS         float64
	InterArrivalKS float64
	MinBandP       float64
	ReadFracErr    float64
	RateErr        float64
	SeqErr         float64
}

// DefaultTolerance is the acceptance bound used by cmd/esssynth validate
// and the self-consistency tests: KS ≤ 0.1 on sizes (the paper's size
// classes are the primary characterization), looser bounds on the noisier
// statistics.
func DefaultTolerance() Tolerance {
	return Tolerance{
		SizeKS:         0.10,
		InterArrivalKS: 0.20,
		MinBandP:       1e-3,
		ReadFracErr:    0.05,
		RateErr:        0.25,
		SeqErr:         0.10,
	}
}

// Check reports nil when r is within tol, or an error naming every
// exceeded bound.
func (r DistanceReport) Check(tol Tolerance) error {
	var fails []string
	if tol.SizeKS > 0 && r.SizeKS > tol.SizeKS {
		fails = append(fails, fmt.Sprintf("size KS %.4f > %.4f", r.SizeKS, tol.SizeKS))
	}
	if tol.InterArrivalKS > 0 && r.InterArrivalKS > tol.InterArrivalKS {
		fails = append(fails, fmt.Sprintf("inter-arrival KS %.4f > %.4f", r.InterArrivalKS, tol.InterArrivalKS))
	}
	if tol.MinBandP > 0 && r.BandP < tol.MinBandP {
		fails = append(fails, fmt.Sprintf("band p-value %.2g < %.2g", r.BandP, tol.MinBandP))
	}
	if tol.ReadFracErr > 0 && r.ReadFracErr > tol.ReadFracErr {
		fails = append(fails, fmt.Sprintf("read-frac err %.4f > %.4f", r.ReadFracErr, tol.ReadFracErr))
	}
	if tol.RateErr > 0 && r.RateErr > tol.RateErr {
		fails = append(fails, fmt.Sprintf("rate err %.1f%% > %.1f%%", 100*r.RateErr, 100*tol.RateErr))
	}
	if tol.SeqErr > 0 && r.SeqErr > tol.SeqErr {
		fails = append(fails, fmt.Sprintf("seq err %.4f > %.4f", r.SeqErr, tol.SeqErr))
	}
	if len(fails) > 0 {
		return fmt.Errorf("model: distance exceeds tolerance: %s", strings.Join(fails, "; "))
	}
	return nil
}

// Distance computes the goodness-of-fit of model b against reference
// model a. The comparison is symmetric except for the band chi-square,
// which tests b's observed band counts against a's distribution.
func Distance(a, b *WorkloadModel) DistanceReport {
	var r DistanceReport
	r.SizeKS = ksDistance(a.sizeDist(), b.sizeDist())
	r.InterArrivalKS = ksDistance(a.InterArrivalUS, b.InterArrivalUS)
	r.BandChi2, r.BandDF, r.BandP = bandChi2(a, b)
	r.ReadFracErr = math.Abs(a.ReadFraction - b.ReadFraction)
	ra := a.perNodeRate()
	rb := b.perNodeRate()
	if ra > 0 {
		r.RateErr = math.Abs(ra-rb) / ra
	} else if rb > 0 {
		r.RateErr = 1
	}
	r.SeqErr = math.Abs(a.SeqP - b.SeqP)
	return r
}

// perNodeRate is the mean request rate per node, the node-count-invariant
// form of MeanRate.
func (m *WorkloadModel) perNodeRate() float64 {
	if m.Nodes == 0 {
		return m.MeanRate
	}
	return m.MeanRate / float64(m.Nodes)
}

// sizeDist collapses the per-origin mixture into one aggregate
// request-size distribution.
func (m *WorkloadModel) sizeDist() []HistBin {
	agg := make(map[int]float64)
	for _, o := range m.Origins {
		for _, b := range o.SizeSectors {
			agg[b.V] += o.P * b.P
		}
	}
	out := make([]HistBin, 0, len(agg))
	for v, p := range agg {
		out = append(out, HistBin{V: v, P: p})
	}
	sortBinsByV(out)
	return out
}

// ksDistance is the Kolmogorov–Smirnov statistic between two discrete
// distributions given as sorted histograms: the maximum absolute CDF
// difference over the union of their supports.
func ksDistance(a, b []HistBin) float64 {
	vals := make([]int, 0, len(a)+len(b))
	for _, x := range a {
		vals = append(vals, x.V)
	}
	for _, x := range b {
		vals = append(vals, x.V)
	}
	sort.Ints(vals)

	var max, ca, cb float64
	ia, ib := 0, 0
	prev := math.MinInt64
	for _, v := range vals {
		if v == prev {
			continue
		}
		prev = v
		for ia < len(a) && a[ia].V <= v {
			ca += a[ia].P
			ia++
		}
		for ib < len(b) && b[ib].V <= v {
			cb += b[ib].P
			ib++
		}
		if d := math.Abs(ca - cb); d > max {
			max = d
		}
	}
	return max
}

// bandChi2 tests b's observed band counts against a's band distribution.
// Expected counts below 0.5 are floored (Haldane-style continuity) so
// bands that a never observed but b did contribute a finite penalty.
// Band placements are clustered — a sequential run picks its band once
// and every continuation lands in the same band — so the independent
// trials behind the counts are run starts, not requests, and the run
// lengths are themselves random (geometric with mean 1/(1−SeqP), so the
// cluster-size design effect is E[L²]/E[L]² = 1+SeqP). The test uses the
// effective sample size n·(1−SeqP)/(1+SeqP) to keep the statistic
// calibrated.
func bandChi2(a, b *WorkloadModel) (chi2 float64, df int, p float64) {
	type cell struct{ pa, pb float64 }
	cells := make(map[uint32]*cell)
	for _, band := range a.Bands {
		cells[band.Lo] = &cell{pa: band.P}
	}
	for _, band := range b.Bands {
		c := cells[band.Lo]
		if c == nil {
			c = &cell{}
			cells[band.Lo] = c
		}
		c.pb = band.P
	}
	nb := float64(b.Requests) * (1 - b.SeqP) / (1 + b.SeqP)
	if nb < 2 || len(cells) < 2 {
		return 0, 0, 1
	}
	for _, c := range cells {
		exp := c.pa * nb
		if exp < 0.5 {
			exp = 0.5
		}
		obs := c.pb * nb
		chi2 += (obs - exp) * (obs - exp) / exp
	}
	df = len(cells) - 1
	p = chi2PValue(chi2, df)
	return chi2, df, p
}

// chi2PValue is the upper-tail probability of a chi-square statistic with
// df degrees of freedom: Q(df/2, x/2), the regularized upper incomplete
// gamma function.
func chi2PValue(x float64, df int) float64 {
	if df <= 0 || x <= 0 {
		return 1
	}
	return gammaQ(float64(df)/2, x/2)
}

// gammaQ computes the regularized upper incomplete gamma function
// Q(a, x) = Γ(a, x)/Γ(a), by series expansion for x < a+1 and by
// continued fraction otherwise (Numerical Recipes' gammp/gammq split).
func gammaQ(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 1
	}
	if x < a+1 {
		return 1 - gammaPSeries(a, x)
	}
	return gammaQContinuedFraction(a, x)
}

// gammaPSeries evaluates P(a, x) by its power series.
func gammaPSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < 500; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-14 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaQContinuedFraction evaluates Q(a, x) by modified Lentz's method.
func gammaQContinuedFraction(a, x float64) float64 {
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-14 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}
