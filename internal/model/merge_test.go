package model

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"essio/internal/sim"
	"essio/internal/trace"
)

// mkMergedStream builds one time-ordered multi-node stream with clustered
// keys, the shape a k-way node merge produces.
func mkMergedStream(rng *rand.Rand) []trace.Record {
	recs := make([]trace.Record, rng.Intn(400))
	for i := range recs {
		recs[i] = trace.Record{
			Time:    sim.Time(rng.Intn(25)) * sim.Time(sim.Second),
			Sector:  uint32(rng.Intn(10)) * 50000,
			Count:   uint16(rng.Intn(64) + 1),
			Pending: uint16(rng.Intn(4)),
			Op:      trace.Op(rng.Intn(2)),
			Node:    uint8(rng.Intn(4)),
			Origin:  trace.Origin(rng.Intn(7)),
		}
	}
	sort.SliceStable(recs, func(a, b int) bool { return trace.Less(recs[a], recs[b]) })
	return recs
}

// TestQuickFitterMergeMatchesSequential splits a merged stream at an
// arbitrary point — the chunked-file sharding shape — and requires the
// folded fitters to produce exactly the sequential model.
func TestQuickFitterMergeMatchesSequential(t *testing.T) {
	const diskSectors = 1024000
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		recs := mkMergedStream(rng)
		want := FitSlice("t", recs, 0, diskSectors, 0)
		cuts := []int{0, len(recs)}
		if len(recs) > 1 {
			cuts = append(cuts, 1, rng.Intn(len(recs)), len(recs)-1)
		}
		for _, cut := range cuts {
			a := NewFitter("t", 0, diskSectors, 0)
			b := NewFitter("t", 0, diskSectors, 0)
			if len(recs) > 0 {
				a.SetAnchor(recs[0].Time)
				b.SetAnchor(recs[0].Time)
			}
			a.AddBatch(recs[:cut])
			b.AddBatch(recs[cut:])
			a.Merge(b)
			if got := a.Model(); !reflect.DeepEqual(got, want) {
				t.Logf("cut=%d seed=%d:\n got %+v\nwant %+v", cut, seed, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestFitterMergeThreeWay folds three consecutive shards in order.
func TestFitterMergeThreeWay(t *testing.T) {
	const diskSectors = 1024000
	rng := rand.New(rand.NewSource(23))
	recs := mkMergedStream(rng)
	for len(recs) < 9 {
		recs = mkMergedStream(rng)
	}
	want := FitSlice("t", recs, 0, diskSectors, 0)
	third := len(recs) / 3
	parts := [][]trace.Record{recs[:third], recs[third : 2*third], recs[2*third:]}
	fitters := make([]*Fitter, len(parts))
	for i, part := range parts {
		fitters[i] = NewFitter("t", 0, diskSectors, 0)
		fitters[i].SetAnchor(recs[0].Time)
		fitters[i].AddBatch(part)
	}
	for _, f := range fitters[1:] {
		fitters[0].Merge(f)
	}
	if got := fitters[0].Model(); !reflect.DeepEqual(got, want) {
		t.Fatalf("three-way merge diverged:\n got %+v\nwant %+v", got, want)
	}
}
