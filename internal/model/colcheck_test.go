package model_test

import (
	"testing"

	"essio/internal/core"
	"essio/internal/model"
	"essio/internal/sim"
	"essio/internal/trace"
)

// fitBatch builds a columnar workload exercising every column.
func fitBatch() *trace.ColBatch {
	b := new(trace.ColBatch)
	for i := 0; i < 48; i++ {
		b.AppendRecord(trace.Record{
			Time:    sim.Time(i) * sim.Time(sim.Second/8),
			Sector:  uint32(1000 * i),
			Count:   uint16(8 + i%3),
			Pending: uint16(i % 5),
			Op:      trace.Op(i % 2),
			Node:    uint8(i % 2),
			Origin:  trace.Origin(i % 7),
		})
	}
	return b
}

// TestFitterAddColsPropagatesEveryColumn runs the ColDrops mutation
// check over the model fitter. Its row path reads all seven Record
// fields and its AddCols (which reassembles records with cols.Record)
// carries no //essvet:colignore marker, so the field list is complete
// and the ignore list empty — byte-mirroring the static markers.
func TestFitterAddColsPropagatesEveryColumn(t *testing.T) {
	drops, err := core.ColDrops(
		func() any {
			f := model.NewFitter("wl", 2, 1<<20, 0)
			f.SetAnchor(0)
			return f
		},
		fitBatch(),
		[]string{"Time", "Sector", "Count", "Pending", "Op", "Node", "Origin"},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(drops) > 0 {
		t.Fatalf("Fitter.AddCols drops columns of fields %v", drops)
	}
}
