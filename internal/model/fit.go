package model

import (
	"math"
	"math/bits"
	"sort"

	"essio/internal/sim"
	"essio/internal/trace"
)

// DefaultBandSectors is the paper's 100 K-sector spatial bucket, the
// default band width for fitted models.
const DefaultBandSectors = 100000

// Fitter fits a WorkloadModel from a trace in one streaming pass. It
// implements trace.Sink, so it composes with trace.Tee: the same pass that
// feeds the analysis accumulators can fit the generative model. Feed it
// records in merged (Time, Node, Sector) order — the order every Source in
// the pipeline produces — and call Model when the stream ends.
type Fitter struct {
	// Construction-time configuration: every shard of a parallel pass is
	// built with identical values (Merge asserts the band geometry), so
	// Merge keeps the receiver's copy.
	label       string //essvet:mergeignore identical across shards by construction
	nodes       int    //essvet:mergeignore identical across shards by construction (0 = infer from trace)
	diskSectors uint32 //essvet:mergeignore identical across shards by construction
	bandSectors uint32

	n           int
	reads       int
	first, last sim.Time
	any         bool
	anchor      sim.Time // time origin of the per-second bins
	anchored    bool
	seenNodes   [4]uint64 // bitmap of observed node IDs

	perOrigin map[trace.Origin]*originAcc
	secBins   map[int]int // per-second request counts, anchored at anchor
	maxSec    int

	bandCounts []int
	bandHeat   []map[uint32]int // per-band distinct-sector counts

	// lastEnd tracks per-disk tail state for the back-to-back
	// sequentiality check; firstSector remembers each disk's first request
	// so Merge can replay the check across a shard boundary.
	lastEnd       map[uint8]uint32
	firstSector   map[uint8]uint32
	seq, seqTotal int

	pending map[int]int
	inter   map[int]int         // log2(µs) bucketed inter-arrival gaps
	secGaps map[int]map[int]int // gap buckets per second, for state split
}

type originAcc struct {
	count int
	reads int
	sizes map[int]int // request length in sectors → count
}

// NewFitter returns a model fitter for one workload. nodes 0 infers the
// node count from the records seen; diskSectors must be the traced disk
// size; bandSectors 0 uses DefaultBandSectors.
func NewFitter(label string, nodes int, diskSectors, bandSectors uint32) *Fitter {
	if diskSectors == 0 {
		panic("model: zero disk size")
	}
	if bandSectors == 0 {
		bandSectors = DefaultBandSectors
	}
	nb := int((diskSectors + bandSectors - 1) / bandSectors)
	return &Fitter{
		label:       label,
		nodes:       nodes,
		diskSectors: diskSectors,
		bandSectors: bandSectors,
		perOrigin:   make(map[trace.Origin]*originAcc),
		secBins:     make(map[int]int),
		bandCounts:  make([]int, nb),
		bandHeat:    make([]map[uint32]int, nb),
		lastEnd:     make(map[uint8]uint32),
		firstSector: make(map[uint8]uint32),
		pending:     make(map[int]int),
		inter:       make(map[int]int),
		secGaps:     make(map[int]map[int]int),
	}
}

// SetAnchor pins the time origin of the per-second arrival bins. A
// sharded pass anchors every fitter at the first record time of the whole
// stream so per-shard binning — and therefore Merge — matches the
// sequential fit. Must be called before the first Add.
func (f *Fitter) SetAnchor(t0 sim.Time) {
	f.anchor = t0
	f.anchored = true
}

// recordGap folds one merged-stream inter-arrival gap ending at time t
// into the overall and state-split histograms.
func (f *Fitter) recordGap(gb int, t sim.Time) {
	f.inter[gb]++
	sec := int(t.Sub(f.anchor).Seconds())
	sg := f.secGaps[sec]
	if sg == nil {
		sg = make(map[int]int)
		f.secGaps[sec] = sg
	}
	sg[gb]++
}

// Add folds one record into every fitted distribution.
func (f *Fitter) Add(r trace.Record) error {
	if f.any {
		// Inter-arrival gap of the merged stream, recorded overall and
		// per second (of the later record) so Model can split gaps by
		// arrival state.
		f.recordGap(gapBucket(r.Time.Sub(f.last)), r.Time)
	} else {
		f.first = r.Time
		if !f.anchored {
			f.anchor = r.Time
			f.anchored = true
		}
	}
	f.last = r.Time
	f.any = true
	f.n++
	if r.Op == trace.Read {
		f.reads++
	}
	f.seenNodes[r.Node/64] |= 1 << (r.Node % 64)

	oa := f.perOrigin[r.Origin]
	if oa == nil {
		oa = &originAcc{sizes: make(map[int]int)}
		f.perOrigin[r.Origin] = oa
	}
	oa.count++
	if r.Op == trace.Read {
		oa.reads++
	}
	oa.sizes[int(r.Count)]++

	b := int(r.Time.Sub(f.anchor).Seconds())
	f.secBins[b]++
	if b > f.maxSec {
		f.maxSec = b
	}

	bi := int(r.Sector / f.bandSectors)
	if bi >= len(f.bandCounts) {
		bi = len(f.bandCounts) - 1
	}
	f.bandCounts[bi]++
	if f.bandHeat[bi] == nil {
		f.bandHeat[bi] = make(map[uint32]int)
	}
	f.bandHeat[bi][r.Sector]++

	if end, ok := f.lastEnd[r.Node]; ok {
		f.seqTotal++
		if r.Sector == end {
			f.seq++
		}
	} else {
		f.firstSector[r.Node] = r.Sector
	}
	f.lastEnd[r.Node] = r.End()

	f.pending[int(r.Pending)]++
	return nil
}

// AddBatch folds a whole batch of records into the fit, amortizing the
// per-record interface dispatch of batched copies.
func (f *Fitter) AddBatch(recs []trace.Record) error {
	for _, r := range recs {
		f.Add(r)
	}
	return nil
}

// AddCols folds a columnar batch into the fit. Every fitted statistic
// couples consecutive records (inter-arrival gaps, per-disk run
// lengths), so the fold is inherently sequential; records are
// reassembled from the columns and pushed through the exact per-record
// path, which keeps columnar inputs bit-identical to row inputs.
func (f *Fitter) AddCols(cols *trace.ColBatch) error {
	for i, n := 0, cols.Len(); i < n; i++ {
		f.Add(cols.Record(i))
	}
	return nil
}

// Merge folds another fitter into f, leaving f exactly as if it had
// consumed both record streams in one sequential pass. It is exact when o
// saw a time-contiguous continuation of f's merged stream — the shape
// chunked trace-file analysis produces — and both fitters share an anchor
// (SetAnchor); the inter-arrival gap spanning the boundary is
// reconstructed from f's last and o's first record, and the per-disk
// sequentiality check is replayed across the seam.
func (f *Fitter) Merge(o *Fitter) {
	if o.n == 0 {
		return
	}
	if f.n == 0 {
		f.anchor, f.anchored = o.anchor, o.anchored
	} else if f.anchor != o.anchor {
		panic("model: merge of fitters with different anchors")
	}
	if !f.any {
		f.first = o.first
	} else {
		// The gap between the two shards belongs to the merged stream.
		f.recordGap(gapBucket(o.first.Sub(f.last)), o.first)
	}
	f.last = o.last
	f.any = true
	f.n += o.n
	f.reads += o.reads
	for i, w := range o.seenNodes {
		f.seenNodes[i] |= w
	}

	for origin, ob := range o.perOrigin {
		oa := f.perOrigin[origin]
		if oa == nil {
			oa = &originAcc{sizes: make(map[int]int)}
			f.perOrigin[origin] = oa
		}
		oa.count += ob.count
		oa.reads += ob.reads
		for sz, c := range ob.sizes {
			oa.sizes[sz] += c
		}
	}

	for sec, c := range o.secBins {
		f.secBins[sec] += c
	}
	if o.maxSec > f.maxSec {
		f.maxSec = o.maxSec
	}
	for sec, gaps := range o.secGaps {
		sg := f.secGaps[sec]
		if sg == nil {
			sg = make(map[int]int)
			f.secGaps[sec] = sg
		}
		for gb, c := range gaps {
			sg[gb] += c
		}
	}

	if len(o.bandCounts) != len(f.bandCounts) || o.bandSectors != f.bandSectors {
		panic("model: merge of fitters with different band geometry")
	}
	for i, c := range o.bandCounts {
		f.bandCounts[i] += c
		if bh := o.bandHeat[i]; bh != nil {
			if f.bandHeat[i] == nil {
				f.bandHeat[i] = make(map[uint32]int, len(bh))
			}
			for sec, c := range bh {
				f.bandHeat[i][sec] += c
			}
		}
	}

	f.seq += o.seq
	f.seqTotal += o.seqTotal
	for node, sector := range o.firstSector {
		if end, ok := f.lastEnd[node]; ok {
			f.seqTotal++
			if sector == end {
				f.seq++
			}
		} else {
			f.firstSector[node] = sector
		}
	}
	for node, end := range o.lastEnd {
		f.lastEnd[node] = end
	}

	for p, c := range o.pending {
		f.pending[p] += c
	}
	for gb, c := range o.inter {
		f.inter[gb] += c
	}
}

// gapBucket maps an inter-arrival gap to its log2 microsecond bucket; -1
// holds zero gaps.
func gapBucket(d sim.Duration) int {
	if d <= 0 {
		return -1
	}
	return bits.Len64(uint64(d)) - 1
}

// GapBucketLow reports the smallest gap (µs) a bucket covers, the inverse
// of the fitter's log2 bucketing; generators and distance computations use
// it to place a bucket on the time axis.
func GapBucketLow(v int) sim.Duration {
	if v < 0 {
		return 0
	}
	return sim.Duration(1) << uint(v)
}

// Records reports how many records have been fitted so far.
func (f *Fitter) Records() int { return f.n }

// Model finalizes the fit.
func (f *Fitter) Model() *WorkloadModel {
	m := &WorkloadModel{
		FormatVersion: Version,
		Label:         f.label,
		Nodes:         f.nodes,
		DiskSectors:   f.diskSectors,
		BandSectors:   f.bandSectors,
		Requests:      f.n,
	}
	if m.Nodes == 0 {
		for _, w := range f.seenNodes {
			m.Nodes += bits.OnesCount64(w)
		}
		if m.Nodes == 0 {
			m.Nodes = 1
		}
	}
	if f.n == 0 {
		return m
	}
	m.DurationSec = f.last.Sub(f.first).Seconds()
	m.ReadFraction = float64(f.reads) / float64(f.n)
	if m.DurationSec > 0 {
		m.MeanRate = float64(f.n) / m.DurationSec
	} else {
		m.MeanRate = float64(f.n)
	}
	if f.seqTotal > 0 {
		m.SeqP = float64(f.seq) / float64(f.seqTotal)
	}

	// Mixture components, sorted by origin for stable serialization.
	origins := make([]trace.Origin, 0, len(f.perOrigin))
	for o := range f.perOrigin {
		origins = append(origins, o)
	}
	sort.Slice(origins, func(i, j int) bool { return origins[i] < origins[j] })
	for _, o := range origins {
		oa := f.perOrigin[o]
		m.Origins = append(m.Origins, OriginModel{
			Origin:       o.String(),
			P:            float64(oa.count) / float64(f.n),
			ReadFraction: float64(oa.reads) / float64(oa.count),
			SizeSectors:  histFromCounts(oa.sizes),
		})
	}

	m.Arrival = fitArrival(f.secBins, f.secGaps, f.maxSec)

	for i, c := range f.bandCounts {
		if c == 0 {
			continue
		}
		lo := uint32(i) * f.bandSectors
		hi := lo + f.bandSectors
		if hi > f.diskSectors {
			hi = f.diskSectors
		}
		m.Bands = append(m.Bands, BandModel{
			Lo:      lo,
			Hi:      hi,
			P:       float64(c) / float64(f.n),
			Sectors: len(f.bandHeat[i]),
			ZipfS:   fitZipf(f.bandHeat[i]),
		})
	}

	m.InterArrivalUS = histFromCounts(f.inter)
	m.Pending = histFromCounts(f.pending)
	return m
}

// fitArrival fits the two-state modulated arrival process from per-second
// request counts: seconds above the mean count are the burst state.
func fitArrival(bins map[int]int, secGaps map[int]map[int]int, maxSec int) ArrivalModel {
	nsec := maxSec + 1
	total := 0
	for _, c := range bins {
		total += c
	}
	mean := float64(total) / float64(nsec)

	var a ArrivalModel
	burst := func(s int) bool { return float64(bins[s]) > mean }

	var baseSum, burstSum float64
	baseN, burstN := 0, 0
	for s := 0; s < nsec; s++ {
		if burst(s) {
			burstSum += float64(bins[s])
			burstN++
		} else {
			baseSum += float64(bins[s])
			baseN++
		}
	}
	if baseN > 0 {
		a.BaseRate = baseSum / float64(baseN)
	}
	if burstN > 0 {
		a.BurstRate = burstSum / float64(burstN)
	} else {
		// No burst seconds: the load is smooth; both states share the
		// mean so the generator degenerates to plain Poisson arrivals.
		a.BurstRate = a.BaseRate
	}
	a.PBase = float64(baseN) / float64(nsec)

	// Transition probabilities from consecutive-second state pairs.
	b2u, u2b := 0, 0 // base→burst, burst→base
	baseFrom, burstFrom := 0, 0
	for s := 0; s < nsec-1; s++ {
		if burst(s) {
			burstFrom++
			if !burst(s + 1) {
				u2b++
			}
		} else {
			baseFrom++
			if burst(s + 1) {
				b2u++
			}
		}
	}
	if baseFrom > 0 {
		a.PBaseToBurst = float64(b2u) / float64(baseFrom)
	}
	if burstFrom > 0 {
		a.PBurstToBase = float64(u2b) / float64(burstFrom)
	}

	// State-conditional gap distributions: each second's gaps go to the
	// histogram of that second's state.
	baseGaps := make(map[int]int)
	burstGaps := make(map[int]int)
	for s, gaps := range secGaps {
		dst := baseGaps
		if burst(s) {
			dst = burstGaps
		}
		for gb, c := range gaps {
			dst[gb] += c
		}
	}
	a.BaseGapUS = histFromCounts(baseGaps)
	a.BurstGapUS = histFromCounts(burstGaps)
	return a
}

// fitZipf fits the exponent of count(rank) ~ rank^-s by least squares on
// the log-log rank-frequency curve of a band's sector counts. Bands with
// fewer than two distinct sectors, or no skew, fit s = 0 (uniform).
func fitZipf(counts map[uint32]int) float64 {
	if len(counts) < 2 {
		return 0
	}
	cs := make([]int, 0, len(counts))
	for _, c := range counts {
		cs = append(cs, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(cs)))

	var sx, sy, sxx, sxy float64
	n := float64(len(cs))
	for i, c := range cs {
		x := math.Log(float64(i + 1))
		y := math.Log(float64(c))
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	s := -(n*sxy - sx*sy) / den
	// Clamp to a sane generator range: negative slopes mean no skew,
	// and exponents beyond 4 are indistinguishable from "one hot
	// sector" at any realistic band population.
	if s < 0 || math.IsNaN(s) {
		return 0
	}
	if s > 4 {
		return 4
	}
	return s
}

// Fit drains src through a new Fitter and returns the fitted model; the
// one-call form of the streaming fitter.
func Fit(label string, src trace.Source, nodes int, diskSectors, bandSectors uint32) (*WorkloadModel, error) {
	f := NewFitter(label, nodes, diskSectors, bandSectors)
	if _, err := trace.Copy(f, src); err != nil {
		return nil, err
	}
	return f.Model(), nil
}

// FitSlice fits a model from an in-memory trace, the batch form of Fit.
func FitSlice(label string, recs []trace.Record, nodes int, diskSectors, bandSectors uint32) *WorkloadModel {
	m, err := Fit(label, trace.SliceSource(recs), nodes, diskSectors, bandSectors)
	if err != nil {
		// Slice sources and fitters never fail.
		panic("model: fit slice: " + err.Error())
	}
	return m
}
