package model

import (
	"bytes"
	"flag"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"essio/internal/sim"
	"essio/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

// makeTrace builds a deterministic, time-ordered trace mixing the three
// request populations the paper characterizes: steady 1 KB log writes,
// bursty 4 KB paging, and sequential 16 KB data reads.
func makeTrace(n int, seed int64) []trace.Record {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]trace.Record, 0, n)
	t := sim.Time(0)
	seqEnd := uint32(0)
	for i := 0; i < n; i++ {
		var r trace.Record
		r.Node = uint8(rng.Intn(4))
		switch x := rng.Float64(); {
		case x < 0.4: // logging: 1 KB writes high on the disk
			r.Op = trace.Write
			r.Origin = trace.OriginLog
			r.Count = 2
			r.Sector = 1000000 + uint32(rng.Intn(500))*2
			t = t.Add(sim.Duration(20000 + rng.Intn(400000)))
		case x < 0.7: // paging: 4 KB in the swap area, arriving in bursts
			r.Op = trace.Write
			if rng.Float64() < 0.3 {
				r.Op = trace.Read
			}
			r.Origin = trace.OriginSwap
			r.Count = 8
			r.Sector = 40000 + uint32(rng.Intn(100))*8
			t = t.Add(sim.Duration(rng.Intn(3000)))
		default: // data: 16 KB sequential read runs in the file area
			r.Op = trace.Read
			r.Origin = trace.OriginData
			r.Count = 32
			if seqEnd != 0 && rng.Float64() < 0.7 {
				r.Sector = seqEnd
			} else {
				r.Sector = 150000 + uint32(rng.Intn(1000))*32
			}
			seqEnd = r.Sector + 32
			t = t.Add(sim.Duration(rng.Intn(20000)))
		}
		r.Time = t
		r.Pending = uint16(rng.Intn(4))
		recs = append(recs, r)
	}
	return recs
}

func TestFitterBasics(t *testing.T) {
	recs := makeTrace(5000, 7)
	m := FitSlice("test", recs, 0, 1024000, 0)

	if m.Requests != len(recs) {
		t.Fatalf("Requests = %d, want %d", m.Requests, len(recs))
	}
	if m.Nodes != 4 {
		t.Errorf("inferred Nodes = %d, want 4", m.Nodes)
	}
	if m.BandSectors != DefaultBandSectors {
		t.Errorf("BandSectors = %d, want default %d", m.BandSectors, DefaultBandSectors)
	}

	reads := 0
	for _, r := range recs {
		if r.Op == trace.Read {
			reads++
		}
	}
	wantRF := float64(reads) / float64(len(recs))
	if math.Abs(m.ReadFraction-wantRF) > 1e-12 {
		t.Errorf("ReadFraction = %v, want %v", m.ReadFraction, wantRF)
	}

	var sumP float64
	for _, o := range m.Origins {
		sumP += o.P
		if len(o.SizeSectors) == 0 {
			t.Errorf("origin %s has empty size distribution", o.Origin)
		}
		var sp float64
		for _, b := range o.SizeSectors {
			sp += b.P
		}
		if math.Abs(sp-1) > 1e-9 {
			t.Errorf("origin %s size probabilities sum to %v", o.Origin, sp)
		}
	}
	if math.Abs(sumP-1) > 1e-9 {
		t.Errorf("origin mixture sums to %v", sumP)
	}
	if len(m.Origins) != 3 {
		t.Errorf("got %d origins, want 3", len(m.Origins))
	}

	var bandP float64
	for _, b := range m.Bands {
		bandP += b.P
		if b.Hi <= b.Lo {
			t.Errorf("band [%d,%d) empty", b.Lo, b.Hi)
		}
	}
	if math.Abs(bandP-1) > 1e-9 {
		t.Errorf("band probabilities sum to %v", bandP)
	}

	if m.SeqP <= 0 || m.SeqP >= 1 {
		t.Errorf("SeqP = %v, want in (0,1)", m.SeqP)
	}
	if m.Arrival.BurstRate < m.Arrival.BaseRate {
		t.Errorf("burst rate %v below base rate %v", m.Arrival.BurstRate, m.Arrival.BaseRate)
	}
	if m.MeanRate <= 0 {
		t.Errorf("MeanRate = %v", m.MeanRate)
	}
}

func TestFitterMatchesTeePass(t *testing.T) {
	// The fitter is a Sink: fitting through a Tee alongside another
	// consumer must equal fitting alone.
	recs := makeTrace(1000, 3)
	alone := FitSlice("x", recs, 0, 1024000, 0)

	teed := NewFitter("x", 0, 1024000, 0)
	var collect trace.Collector
	if _, err := trace.Copy(trace.Tee(&collect, teed), trace.SliceSource(recs)); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(alone, teed.Model()) {
		t.Fatal("fit through Tee differs from fit alone")
	}
	if len(collect.Recs) != len(recs) {
		t.Fatalf("tee delivered %d records, want %d", len(collect.Recs), len(recs))
	}
}

func TestModelJSONRoundTrip(t *testing.T) {
	m := FitSlice("rt", makeTrace(2000, 11), 0, 1024000, 0)
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatal("JSON round trip changed the model")
	}
}

func TestModelGoldenJSON(t *testing.T) {
	// A fixed small trace must serialize to exactly the checked-in
	// golden file, so accidental format changes (field renames, bucket
	// changes) are caught. Regenerate with -update after intentional
	// format changes, bumping Version.
	m := FitSlice("golden", makeTrace(200, 42), 0, 1024000, 0)
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "model_golden.json")
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("golden mismatch: fitted model serializes differently than %s; run 'go test ./internal/model -run Golden -update' if the format change is intentional", path)
	}
}

func TestReadJSONRejectsBadModels(t *testing.T) {
	cases := []string{
		``,
		`{`,
		`{"format_version": 99}`,
		`{"format_version": 1, "nodes": 1, "band_sectors": 100}`,                   // zero disk
		`{"format_version": 1, "nodes": 0, "disk_sectors": 10, "band_sectors": 1}`, // zero nodes
	}
	for _, c := range cases {
		if _, err := ReadJSON(bytes.NewReader([]byte(c))); err == nil {
			t.Errorf("ReadJSON(%q) accepted invalid model", c)
		}
	}
}

func TestEmptyFit(t *testing.T) {
	m := NewFitter("empty", 0, 1000, 100).Model()
	if m.Requests != 0 || m.Nodes != 1 {
		t.Fatalf("empty fit: %+v", m)
	}
}

func TestGapBucketInverse(t *testing.T) {
	for _, d := range []sim.Duration{0, 1, 2, 3, 1000, 1 << 20} {
		b := gapBucket(d)
		lo := GapBucketLow(b)
		if d == 0 {
			if b != -1 || lo != 0 {
				t.Errorf("zero gap: bucket %d low %v", b, lo)
			}
			continue
		}
		if lo > d || d >= 2*lo {
			t.Errorf("gap %v: bucket %d covers [%v,%v)", d, b, lo, 2*lo)
		}
	}
}
