package model

import (
	"math"
	"testing"
)

func TestDistanceSelfIsZero(t *testing.T) {
	m := FitSlice("self", makeTrace(3000, 5), 0, 1024000, 0)
	d := Distance(m, m)
	if d.SizeKS != 0 || d.InterArrivalKS != 0 || d.ReadFracErr != 0 || d.RateErr != 0 || d.SeqErr != 0 {
		t.Fatalf("self distance not zero: %v", d)
	}
	if d.BandP < 0.999 {
		t.Fatalf("self band p-value = %v, want ~1", d.BandP)
	}
	if err := d.Check(DefaultTolerance()); err != nil {
		t.Fatal(err)
	}
}

func TestKSDistance(t *testing.T) {
	a := []HistBin{{V: 1, P: 0.5}, {V: 2, P: 0.5}}
	b := []HistBin{{V: 1, P: 0.2}, {V: 2, P: 0.8}}
	if got := ksDistance(a, b); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("KS = %v, want 0.3", got)
	}
	// Disjoint supports: maximal separation.
	c := []HistBin{{V: 10, P: 1}}
	d := []HistBin{{V: 20, P: 1}}
	if got := ksDistance(c, d); math.Abs(got-1) > 1e-12 {
		t.Errorf("disjoint KS = %v, want 1", got)
	}
	if got := ksDistance(a, a); got != 0 {
		t.Errorf("identical KS = %v, want 0", got)
	}
}

func TestChi2PValue(t *testing.T) {
	// df=2: the survival function is exactly exp(-x/2).
	for _, x := range []float64{0.1, 1, 2.5, 10} {
		want := math.Exp(-x / 2)
		if got := chi2PValue(x, 2); math.Abs(got-want) > 1e-9 {
			t.Errorf("Q(chi2=%v, df=2) = %v, want %v", x, got, want)
		}
	}
	// df=1 median: chi2 ≈ 0.4549 at p = 0.5.
	if got := chi2PValue(0.454936, 1); math.Abs(got-0.5) > 1e-4 {
		t.Errorf("Q(0.4549, 1) = %v, want 0.5", got)
	}
	if got := chi2PValue(0, 5); got != 1 {
		t.Errorf("Q(0, 5) = %v, want 1", got)
	}
	// Large statistic: p must collapse toward zero.
	if got := chi2PValue(1000, 3); got > 1e-100 {
		t.Errorf("Q(1000, 3) = %v, want ~0", got)
	}
}

func TestDistanceDetectsMixShift(t *testing.T) {
	a := FitSlice("a", makeTrace(3000, 5), 0, 1024000, 0)
	b := FitSlice("b", makeTrace(3000, 5), 0, 1024000, 0)
	// Flip b to all-writes and move its traffic scale.
	for i := range b.Origins {
		b.Origins[i].ReadFraction = 0
	}
	b.ReadFraction = 0
	b.MeanRate = a.MeanRate * 3
	d := Distance(a, b)
	if d.ReadFracErr < 0.2 {
		t.Errorf("read-frac err %v too small for an all-write flip", d.ReadFracErr)
	}
	if d.RateErr < 1.5 {
		t.Errorf("rate err %v too small for a 3x rate shift", d.RateErr)
	}
	if err := d.Check(DefaultTolerance()); err == nil {
		t.Error("tolerance check passed on a grossly shifted model")
	}
}

func TestBandChi2RejectsRelocatedTraffic(t *testing.T) {
	a := FitSlice("a", makeTrace(4000, 9), 0, 1024000, 0)
	b := FitSlice("b", makeTrace(4000, 9), 0, 1024000, 0)
	// Relocate all of b's traffic into one band a barely uses.
	b.Bands = []BandModel{{Lo: 900000, Hi: 1000000, P: 1, Sectors: 10}}
	d := Distance(a, b)
	if d.BandP > 1e-6 {
		t.Errorf("band p-value %v too large for fully relocated traffic", d.BandP)
	}
}
