// Runtime merge-propagation check for the model fitter, the behavioral
// complement to the essvet mergefields analyzer.
package model_test

import (
	"testing"

	"essio/internal/core"
	"essio/internal/model"
	"essio/internal/sim"
	"essio/internal/trace"
)

func feedFitter(acc any, shard int) {
	f := acc.(*model.Fitter)
	f.SetAnchor(0) // shards of one pass share the anchor
	base := sim.Time(shard) * sim.Time(5*sim.Second)
	for i := 0; i < 40; i++ {
		f.Add(trace.Record{
			Time:    base + sim.Time(i)*sim.Time(sim.Second/8),
			Sector:  uint32(1000*i + shard*64),
			Count:   uint16(8 + i%3),
			Pending: uint16(i % 5),
			Op:      trace.Op(i % 2),
			Node:    uint8(i % 2),
			Origin:  trace.Origin(i % 7),
		})
	}
}

func TestFitterMergePropagatesEveryField(t *testing.T) {
	drops, err := core.MergeDrops(
		func() any { return model.NewFitter("wl", 2, 1<<20, 0) },
		feedFitter,
		// label, nodes, and diskSectors are construction-time
		// configuration carrying //essvet:mergeignore in fit.go; the two
		// exemption lists must stay in lockstep. any and anchored are
		// receiver-adoption flags only read when the receiver is empty —
		// o.n == 0 gates donor emptiness — so a live-vs-live merge
		// cannot observe them.
		"label", "nodes", "diskSectors", "any", "anchored",
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(drops) > 0 {
		t.Fatalf("Fitter.Merge drops state of fields %v", drops)
	}
}
