package model

// The Fitter's columnar entry point is a sequential unpack — gap and
// run-length features couple consecutive records, so there is no
// vectorized shortcut — and must therefore leave bit-identical state to
// the row fold for any batch chunking.

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"essio/internal/trace"
)

func TestQuickFitterColsMatchRows(t *testing.T) {
	const diskSectors = 1024000
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		recs := mkMergedStream(rng)
		rows := NewFitter("t", 0, diskSectors, 0)
		cols := NewFitter("t", 0, diskSectors, 0)
		for _, r := range recs {
			if err := rows.Add(r); err != nil {
				return false
			}
		}
		var b trace.ColBatch
		rest := recs
		for len(rest) > 0 {
			n := 1 + rng.Intn(len(rest))
			b.Reset()
			b.AppendRecords(rest[:n])
			if err := cols.AddCols(&b); err != nil {
				return false
			}
			rest = rest[n:]
		}
		if !reflect.DeepEqual(rows, cols) {
			return false
		}
		return reflect.DeepEqual(rows.Model(), cols.Model())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
