// Package model turns a measured workload into a generative statistical
// model. Where internal/core characterizes a trace (the paper's tables and
// figures), this package fits the distributions behind those numbers —
// per-origin request-size mixtures, the read/write mix, a burst-aware
// two-state arrival process, the spatial band distribution with per-band
// hot-sector skew, and run-length sequentiality — into a WorkloadModel
// that internal/synth can sample to produce new, arbitrarily long,
// arbitrarily scaled traces with the same statistical shape.
//
// Models are plain JSON so they can be saved, diffed, and
// version-controlled alongside the experiments that produced them. The
// companion Distance computes goodness-of-fit between two models, closing
// the loop: fit a model, generate a synthetic trace, fit the synthetic
// trace, and check the two models agree.
package model

import (
	"encoding/json"
	"fmt"
	"io"
)

// Version is the serialization format version stamped into every model.
const Version = 1

// HistBin is one bin of a discrete empirical distribution: value V occurs
// with probability P. Histograms are stored sorted by V with P summing to
// 1 over the bins.
type HistBin struct {
	V int     `json:"v"`
	P float64 `json:"p"`
}

// OriginModel is the per-origin component of the request mixture: how
// often this origin appears, its read share, and its request-size
// distribution (in sectors, the driver's native unit).
type OriginModel struct {
	// Origin is the trace.Origin name ("data", "meta", "paging", ...).
	Origin string `json:"origin"`
	// P is the fraction of all requests carrying this origin tag.
	P float64 `json:"p"`
	// ReadFraction is the fraction of this origin's requests that are
	// reads.
	ReadFraction float64 `json:"read_fraction"`
	// SizeSectors is the distribution of request lengths in sectors.
	SizeSectors []HistBin `json:"size_sectors"`
}

// ArrivalModel is a two-state Markov-modulated arrival process fitted
// from the per-second request-count profile: seconds alternate between a
// base state and a burst state, each with its own Poisson rate, with
// per-second transition probabilities between the states. This captures
// the bursty, quiescent-then-active profiles the activity figures show
// without storing the profile itself.
type ArrivalModel struct {
	// BaseRate and BurstRate are aggregate (all nodes) request rates per
	// second in each state.
	BaseRate  float64 `json:"base_rate"`
	BurstRate float64 `json:"burst_rate"`
	// PBase is the stationary fraction of seconds spent in the base
	// state.
	PBase float64 `json:"p_base"`
	// PBaseToBurst and PBurstToBase are the per-second transition
	// probabilities.
	PBaseToBurst float64 `json:"p_base_to_burst"`
	PBurstToBase float64 `json:"p_burst_to_base"`
	// BaseGapUS and BurstGapUS are the state-conditional inter-arrival
	// gap distributions (log2-bucketed microseconds, bucket v covering
	// [2^v, 2^(v+1)), v=-1 for zero gaps). Generators draw gaps from the
	// current state's distribution, reproducing both the second-scale
	// burst structure and the sub-second clustering of the measured
	// stream.
	BaseGapUS  []HistBin `json:"base_gap_us"`
	BurstGapUS []HistBin `json:"burst_gap_us"`
}

// BandModel is one spatial band of the disk with its traffic share and a
// Zipf-like fit of how skewed accesses are toward the band's hottest
// sectors.
type BandModel struct {
	// Lo and Hi delimit the band's sector range [Lo, Hi).
	Lo uint32 `json:"lo"`
	Hi uint32 `json:"hi"`
	// P is the fraction of all requests landing in this band.
	P float64 `json:"p"`
	// Sectors is the number of distinct starting sectors observed.
	Sectors int `json:"sectors"`
	// ZipfS is the fitted exponent of the rank-frequency power law
	// count(rank) ~ rank^-s over the band's sectors (0 = uniform).
	ZipfS float64 `json:"zipf_s"`
}

// WorkloadModel is the complete generative model of one traced workload.
// Everything a generator needs to emit a statistically similar trace is
// here; everything else (absolute sector positions of individual hot
// spots, exact request interleavings) is deliberately not.
type WorkloadModel struct {
	FormatVersion int    `json:"format_version"`
	Label         string `json:"label"`
	// Nodes is the node count of the measured system; generators scale
	// rates when asked for a different count.
	Nodes int `json:"nodes"`
	// DurationSec is the observed trace time span in seconds.
	DurationSec float64 `json:"duration_sec"`
	// DiskSectors is the per-node disk size in sectors.
	DiskSectors uint32 `json:"disk_sectors"`
	// BandSectors is the spatial band width used for Bands.
	BandSectors uint32 `json:"band_sectors"`
	// Requests is the number of records the model was fitted from.
	Requests int `json:"requests"`

	// ReadFraction is the overall read share of the mix.
	ReadFraction float64 `json:"read_fraction"`
	// MeanRate is the overall aggregate request rate per second.
	MeanRate float64 `json:"mean_rate"`
	// SeqP is the probability that a request begins exactly where the
	// previous request on the same disk ended — the continuation
	// parameter of a geometric run-length model of physical
	// sequentiality.
	SeqP float64 `json:"seq_p"`

	// Origins is the request mixture, one component per observed origin,
	// sorted by origin name for stable serialization.
	Origins []OriginModel `json:"origins"`
	// Arrival is the fitted burst-aware arrival process.
	Arrival ArrivalModel `json:"arrival"`
	// Bands is the spatial distribution, one entry per band with
	// traffic, ordered by Lo.
	Bands []BandModel `json:"bands"`
	// InterArrivalUS is the distribution of gaps between consecutive
	// requests of the merged stream, in log2-bucketed microseconds: bin
	// value v covers gaps in [2^v, 2^(v+1)) µs, v=-1 covers zero gaps.
	InterArrivalUS []HistBin `json:"inter_arrival_us"`
	// Pending is the distribution of the driver-queue depth recorded
	// with each request.
	Pending []HistBin `json:"pending"`
}

// WriteJSON serializes the model as indented JSON, the on-disk format of
// cmd/esssynth fit.
func (m *WorkloadModel) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		return fmt.Errorf("model: encode: %w", err)
	}
	return nil
}

// ReadJSON deserializes a model written by WriteJSON.
func ReadJSON(r io.Reader) (*WorkloadModel, error) {
	var m WorkloadModel
	dec := json.NewDecoder(r)
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("model: decode: %w", err)
	}
	if m.FormatVersion != Version {
		return nil, fmt.Errorf("model: format version %d, want %d", m.FormatVersion, Version)
	}
	if err := m.validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// validate rejects models a generator cannot sample from.
func (m *WorkloadModel) validate() error {
	if m.DiskSectors == 0 {
		return fmt.Errorf("model: zero disk size")
	}
	if m.BandSectors == 0 {
		return fmt.Errorf("model: zero band width")
	}
	if m.Nodes <= 0 {
		return fmt.Errorf("model: node count %d", m.Nodes)
	}
	for _, o := range m.Origins {
		if len(o.SizeSectors) == 0 {
			return fmt.Errorf("model: origin %s has no size distribution", o.Origin)
		}
	}
	for _, b := range m.Bands {
		if b.Hi <= b.Lo {
			return fmt.Errorf("model: empty band [%d,%d)", b.Lo, b.Hi)
		}
	}
	return nil
}

// String summarizes the model in one line.
func (m *WorkloadModel) String() string {
	return fmt.Sprintf("model %s: %d requests over %.0fs on %d node(s), %.1f%% reads, %.2f req/s (base %.2f burst %.2f), seq %.1f%%, %d origins, %d bands",
		m.Label, m.Requests, m.DurationSec, m.Nodes, 100*m.ReadFraction, m.MeanRate,
		m.Arrival.BaseRate, m.Arrival.BurstRate, 100*m.SeqP, len(m.Origins), len(m.Bands))
}

// histFromCounts normalizes a value→count map into a sorted HistBin
// slice.
func histFromCounts(counts map[int]int) []HistBin {
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return nil
	}
	out := make([]HistBin, 0, len(counts))
	for v, c := range counts {
		out = append(out, HistBin{V: v, P: float64(c) / float64(total)})
	}
	sortBinsByV(out)
	return out
}

func sortBinsByV(bins []HistBin) {
	// Insertion sort: histograms are small and often nearly sorted.
	for i := 1; i < len(bins); i++ {
		for j := i; j > 0 && bins[j].V < bins[j-1].V; j-- {
			bins[j], bins[j-1] = bins[j-1], bins[j]
		}
	}
}
