package ethernet

import (
	"testing"

	"essio/internal/sim"
)

func TestSendDeliversAfterDelay(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Close()
	n := New(e, DefaultParams())
	var at sim.Time
	want, err := n.Send(1000, func() { at = e.Now() })
	if err != nil {
		t.Fatal(err)
	}
	e.RunUntilIdle()
	if at != want {
		t.Fatalf("delivered at %v, Send predicted %v", at, want)
	}
	if at <= 0 {
		t.Fatal("delivery must take time")
	}
	// 1000 B + overhead at 1.25 MB/s ≈ 0.8 ms + latency.
	if at < sim.Time(800*sim.Microsecond) || at > sim.Time(3*sim.Millisecond) {
		t.Fatalf("delivery at %v outside plausible window", at)
	}
}

func TestBiggerMessagesTakeLonger(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Close()
	n := New(e, DefaultParams())
	t1, _ := n.Send(100, func() {})
	e.RunUntilIdle()
	e2 := sim.NewEngine(1)
	defer e2.Close()
	n2 := New(e2, DefaultParams())
	t2, _ := n2.Send(100000, func() {})
	e2.RunUntilIdle()
	if t2 <= t1 {
		t.Fatalf("100 KB (%v) not slower than 100 B (%v)", t2, t1)
	}
}

func TestRailsSerializeAndParallelize(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Close()
	p := DefaultParams()
	p.Rails = 1
	n1 := New(e, p)
	a1, _ := n1.Send(10000, func() {})
	b1, _ := n1.Send(10000, func() {})
	if b1 <= a1 {
		t.Fatalf("single rail must serialize: %v then %v", a1, b1)
	}

	p.Rails = 2
	n2 := New(e, p)
	a2, _ := n2.Send(10000, func() {})
	b2, _ := n2.Send(10000, func() {})
	if b2 != a2 {
		t.Fatalf("two rails should carry two messages concurrently: %v vs %v", a2, b2)
	}
}

func TestStats(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Close()
	n := New(e, DefaultParams())
	n.Send(3000, func() {})
	s := n.Stats()
	if s.Messages != 1 || s.Bytes != 3000 || s.Frames != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestNegativeSizeRejected(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Close()
	n := New(e, DefaultParams())
	if _, err := n.Send(-1, func() {}); err == nil {
		t.Fatal("want error for negative size")
	}
}

func TestBadParamsPanic(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	New(e, Params{})
}
