// Package ethernet models the Beowulf prototype's interconnect: two
// parallel 10 Mb/s Ethernet segments (channel bonding was one of Beowulf's
// signature tricks). Each segment is a shared serial medium: frames queue
// for transmission time proportional to their size, and a message is
// delivered after serialization plus propagation delay. Transfers pick the
// segment that frees up first.
package ethernet

import (
	"fmt"

	"essio/internal/sim"
)

// Params configures the network.
type Params struct {
	Rails     int          // parallel segments (default 2)
	Bandwidth float64      // bytes/second per segment (default 10 Mb/s = 1.25e6)
	Latency   sim.Duration // per-message propagation + stack delay
	FrameSize int          // maximum frame payload (default 1500)
}

// DefaultParams is the dual-10 Mb/s configuration.
func DefaultParams() Params {
	return Params{
		Rails:     2,
		Bandwidth: 1.25e6,
		Latency:   300 * sim.Microsecond,
		FrameSize: 1500,
	}
}

// Stats counts network activity.
type Stats struct {
	Messages uint64
	Bytes    uint64
	Frames   uint64
}

// Net is the shared cluster network.
type Net struct {
	e     *sim.Engine
	p     Params
	rails []sim.Time // per-rail busy-until
	stats Stats
}

// New builds a network on engine e.
func New(e *sim.Engine, p Params) *Net {
	if p.Rails <= 0 || p.Bandwidth <= 0 || p.FrameSize <= 0 {
		panic("ethernet: invalid parameters")
	}
	return &Net{e: e, p: p, rails: make([]sim.Time, p.Rails)}
}

// Stats returns a copy of the counters.
func (n *Net) Stats() Stats { return n.stats }

// Params returns the configuration.
func (n *Net) Params() Params { return n.p }

// Send schedules delivery of a message of the given size and invokes
// deliver (engine context) when the last frame arrives. The sender is not
// blocked; PVM buffers sends. Returns the delivery time.
func (n *Net) Send(bytes int, deliver func()) (sim.Time, error) {
	if bytes < 0 {
		return 0, fmt.Errorf("ethernet: negative message size %d", bytes)
	}
	if bytes == 0 {
		bytes = 1
	}
	frames := (bytes + n.p.FrameSize - 1) / n.p.FrameSize
	// Pick the rail that frees first.
	best := 0
	for i, bu := range n.rails {
		if bu < n.rails[best] {
			best = i
		}
	}
	start := n.rails[best]
	if now := n.e.Now(); start < now {
		start = now
	}
	// Frame overhead: preamble+header+gap ~ 38 bytes per frame.
	wire := bytes + frames*38
	txTime := sim.DurationOf(float64(wire) / n.p.Bandwidth)
	n.rails[best] = start.Add(txTime)
	arrive := n.rails[best].Add(n.p.Latency)
	n.stats.Messages++
	n.stats.Bytes += uint64(bytes)
	n.stats.Frames += uint64(frames)
	n.e.At(arrive, deliver)
	return arrive, nil
}
