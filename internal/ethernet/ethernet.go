// Package ethernet models the Beowulf prototype's interconnect: two
// parallel 10 Mb/s Ethernet segments (channel bonding was one of Beowulf's
// signature tricks). Each segment is a shared serial medium: frames queue
// for transmission time proportional to their size, and a message is
// delivered after serialization plus propagation delay. Transfers pick the
// segment that frees up first.
package ethernet

import (
	"fmt"
	"sort"

	"essio/internal/sim"
)

// Params configures the network.
type Params struct {
	Rails     int          // parallel segments (default 2)
	Bandwidth float64      // bytes/second per segment (default 10 Mb/s = 1.25e6)
	Latency   sim.Duration // per-message propagation + stack delay
	FrameSize int          // maximum frame payload (default 1500)
}

// DefaultParams is the dual-10 Mb/s configuration.
func DefaultParams() Params {
	return Params{
		Rails:     2,
		Bandwidth: 1.25e6,
		Latency:   300 * sim.Microsecond,
		FrameSize: 1500,
	}
}

// Stats counts network activity.
type Stats struct {
	Messages uint64
	Bytes    uint64
	Frames   uint64
}

// txReq is a message staged by Transmit during a window, carrying the
// sender's (time, node, sequence) stamp so the barrier can serialize the
// shared rails in a shard-count-invariant order.
type txReq struct {
	at      sim.Time
	node    int
	seq     uint64
	bytes   int
	dst     *sim.Engine
	deliver func()
}

// Net is the shared cluster network. It exists in one of two modes: inline
// (New), where Send reserves rail time at the instant of the call on a
// single engine, and sharded (NewSharded), where Transmit stages requests
// per shard and the rail model runs single-threaded at each window barrier
// — the rails are the one piece of state every node shares, so they are
// modeled as a sim.BarrierService.
type Net struct {
	e      *sim.Engine // inline mode (nil when sharded)
	sh     *sim.Shards // sharded mode (nil when inline)
	p      Params
	rails  []sim.Time // per-rail busy-until
	staged [][]txReq  // sharded mode: per-shard request staging
	batch  []txReq    // sharded mode: barrier scratch buffer
	stats  Stats
}

// New builds an inline network on engine e.
func New(e *sim.Engine, p Params) *Net {
	if p.Rails <= 0 || p.Bandwidth <= 0 || p.FrameSize <= 0 {
		panic("ethernet: invalid parameters")
	}
	return &Net{e: e, p: p, rails: make([]sim.Time, p.Rails)}
}

// NewSharded builds a network spanning a Shards group and registers it as
// a barrier service. The propagation latency must cover the group's
// lookahead, or deliveries could land inside a window some shard already
// ran past.
func NewSharded(sh *sim.Shards, p Params) *Net {
	if p.Rails <= 0 || p.Bandwidth <= 0 || p.FrameSize <= 0 {
		panic("ethernet: invalid parameters")
	}
	if p.Latency < sh.Lookahead() {
		panic("ethernet: latency below the shard lookahead window")
	}
	n := &Net{sh: sh, p: p, rails: make([]sim.Time, p.Rails), staged: make([][]txReq, sh.Size())}
	sh.AddService(n)
	return n
}

// Stats returns a copy of the counters.
func (n *Net) Stats() Stats { return n.stats }

// Params returns the configuration.
func (n *Net) Params() Params { return n.p }

// Send schedules delivery of a message of the given size and invokes
// deliver (engine context) when the last frame arrives. The sender is not
// blocked; PVM buffers sends. Returns the delivery time.
func (n *Net) Send(bytes int, deliver func()) (sim.Time, error) {
	if n.sh != nil {
		panic("ethernet: Send on a sharded net; use Transmit")
	}
	if bytes < 0 {
		return 0, fmt.Errorf("ethernet: negative message size %d", bytes)
	}
	arrive := n.reserve(n.e.Now(), bytes)
	n.e.At(arrive, deliver)
	return arrive, nil
}

// reserve runs the shared-rail model for one message sent at the given
// time: pick the rail freeing first, serialize the frames, and return the
// delivery time. Inline Send and the sharded barrier share this path so
// both modes compute identical timings.
func (n *Net) reserve(sendAt sim.Time, bytes int) sim.Time {
	if bytes == 0 {
		bytes = 1
	}
	frames := (bytes + n.p.FrameSize - 1) / n.p.FrameSize
	// Pick the rail that frees first.
	best := 0
	for i, bu := range n.rails {
		if bu < n.rails[best] {
			best = i
		}
	}
	start := n.rails[best]
	if start < sendAt {
		start = sendAt
	}
	// Frame overhead: preamble+header+gap ~ 38 bytes per frame.
	wire := bytes + frames*38
	txTime := sim.DurationOf(float64(wire) / n.p.Bandwidth)
	n.rails[best] = start.Add(txTime)
	arrive := n.rails[best].Add(n.p.Latency)
	n.stats.Messages++
	n.stats.Bytes += uint64(bytes)
	n.stats.Frames += uint64(frames)
	return arrive
}

// Transmit schedules delivery of a message from a node on engine src to an
// endpoint on engine dst. In sharded mode the request is staged in the
// sender shard's buffer and the rail model runs at the next barrier, so
// the delivery time is not known at call time; inline mode degenerates to
// Send. The sender is never blocked.
func (n *Net) Transmit(src *sim.Engine, node int, dst *sim.Engine, bytes int, deliver func()) error {
	if bytes < 0 {
		return fmt.Errorf("ethernet: negative message size %d", bytes)
	}
	if n.sh == nil {
		_, err := n.Send(bytes, deliver)
		return err
	}
	shard := src.Shard()
	n.staged[shard] = append(n.staged[shard], txReq{
		at: src.Now(), node: node, seq: src.Stamp(),
		bytes: bytes, dst: dst, deliver: deliver,
	})
	return nil
}

// Window implements sim.BarrierService: it serializes every request staged
// during the window onto the shared rails in (time, node, sequence) order
// — a total order independent of the shard layout — and injects the
// deliveries.
func (n *Net) Window(end sim.Time) {
	n.batch = n.batch[:0]
	for i := range n.staged {
		n.batch = append(n.batch, n.staged[i]...)
		for j := range n.staged[i] {
			n.staged[i][j].deliver = nil
		}
		n.staged[i] = n.staged[i][:0]
	}
	if len(n.batch) == 0 {
		return
	}
	sort.Slice(n.batch, func(i, j int) bool {
		a, b := n.batch[i], n.batch[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.node != b.node {
			return a.node < b.node
		}
		return a.seq < b.seq
	})
	for _, r := range n.batch {
		arrive := n.reserve(r.at, r.bytes)
		n.sh.Inject(r.dst, arrive, r.node, r.seq, r.deliver)
	}
	for i := range n.batch {
		n.batch[i].deliver = nil
	}
}
