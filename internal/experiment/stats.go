package experiment

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"essio/internal/analysis"
)

// Repeated runs the same experiment across several seeds and aggregates the
// Table 1 metrics, giving the reproduction error bars the original
// single-run study could not report.
type Repeated struct {
	Kind    Kind
	Seeds   []int64
	Results []*Result

	ReadPct   Dist
	ReqPerSec Dist
	PerDisk   Dist
	DurationS Dist
}

// Dist is a small sample summary.
type Dist struct {
	Mean, Std, Min, Max float64
	N                   int
}

func newDist(samples []float64) Dist {
	d := Dist{N: len(samples), Min: math.Inf(1), Max: math.Inf(-1)}
	if d.N == 0 {
		d.Min, d.Max = 0, 0
		return d
	}
	var sum float64
	for _, s := range samples {
		sum += s
		d.Min = math.Min(d.Min, s)
		d.Max = math.Max(d.Max, s)
	}
	d.Mean = sum / float64(d.N)
	var ss float64
	for _, s := range samples {
		ss += (s - d.Mean) * (s - d.Mean)
	}
	if d.N > 1 {
		d.Std = math.Sqrt(ss / float64(d.N-1))
	}
	return d
}

func (d Dist) String() string {
	return fmt.Sprintf("%.2f ± %.2f [%.2f, %.2f]", d.Mean, d.Std, d.Min, d.Max)
}

// RunSeeds executes cfg once per seed (overriding cfg.Seed) on a bounded
// worker pool — each seed's simulation engine is independent and
// deterministic, so seeds run concurrently — and aggregates the results
// in seed order. The first failing seed cancels the remaining work; when
// seeds are given in ascending order the reported failure is always the
// lowest failing seed (see RunConcurrent).
func RunSeeds(cfg Config, seeds []int64) (*Repeated, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("experiment: no seeds given")
	}
	cfgs := make([]Config, len(seeds))
	for i, seed := range seeds {
		cfgs[i] = cfg
		cfgs[i].Seed = seed
	}
	results, err := RunConcurrent(cfgs, 0)
	if err != nil {
		var ie *IndexedError
		if errors.As(err, &ie) {
			return nil, fmt.Errorf("seed %d: %w", seeds[ie.Index], ie.Err)
		}
		return nil, err
	}
	rep := &Repeated{Kind: cfg.Kind, Seeds: seeds, Results: results}
	var readPcts, rates, totals, durs []float64
	for _, res := range results {
		s := analysis.Summarize(string(cfg.Kind), res.Merged, res.Duration, res.Nodes)
		readPcts = append(readPcts, s.ReadPct)
		rates = append(rates, s.ReqPerSec)
		totals = append(totals, s.TotalPerDisk)
		durs = append(durs, res.Duration.Seconds())
	}
	rep.ReadPct = newDist(readPcts)
	rep.ReqPerSec = newDist(rates)
	rep.PerDisk = newDist(totals)
	rep.DurationS = newDist(durs)
	return rep, nil
}

// String renders the aggregate.
func (r *Repeated) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s over %d seeds:\n", r.Kind, len(r.Seeds))
	fmt.Fprintf(&b, "  reads%%     %s\n", r.ReadPct)
	fmt.Fprintf(&b, "  req/s/disk %s\n", r.ReqPerSec)
	fmt.Fprintf(&b, "  total/disk %s\n", r.PerDisk)
	fmt.Fprintf(&b, "  duration s %s\n", r.DurationS)
	return b.String()
}
