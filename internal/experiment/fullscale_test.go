package experiment

import (
	"testing"

	"essio/internal/analysis"
	"essio/internal/trace"
)

// TestFullScaleShapes runs every experiment at the paper's full scale
// (16 nodes, full application parameters) and asserts the qualitative
// criteria of DESIGN.md §3 — who reads, who pages, where the traffic lands.
// Skipped under -short; takes a few minutes of wall time.
func TestFullScaleShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale shape verification")
	}
	results := map[Kind]*Result{}
	for _, k := range Kinds {
		res, err := Run(Config{Kind: k, Nodes: 16})
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if !res.Finished {
			t.Fatalf("%s did not finish", k)
		}
		results[k] = res
		s := analysis.Summarize(string(k), res.Merged, res.Duration, res.Nodes)
		t.Logf("%s", s.String())
	}

	// E0 baseline: ~100% writes, ~0.9 req/s, 1 KB dominant, low+high sectors.
	base := analysis.Summarize("b", results[Baseline].Merged, results[Baseline].Duration, 16)
	if base.WritePct < 99 {
		t.Errorf("baseline writes %.1f%%, want ~100%%", base.WritePct)
	}
	if base.ReqPerSec < 0.4 || base.ReqPerSec > 1.6 {
		t.Errorf("baseline rate %.2f req/s, paper ~0.9", base.ReqPerSec)
	}
	bc := analysis.ClassifySizes(results[Baseline].Merged)
	if bc.Large != 0 {
		t.Errorf("baseline has %d large requests, want none", bc.Large)
	}
	var low, high bool
	for _, r := range results[Baseline].Merged {
		if r.Sector < 300000 {
			low = true
		}
		if r.Sector > 950000 {
			high = true
		}
	}
	if !low || !high {
		t.Errorf("baseline sectors low=%v high=%v", low, high)
	}

	// E1 PPM: ~240 s, write-dominated, low rate, brief end-of-run paging.
	ppmRes := results[PPM]
	if d := ppmRes.Duration.Seconds(); d < 180 || d > 340 {
		t.Errorf("ppm duration %.0fs, paper ~240s", d)
	}
	ppmSum := analysis.Summarize("p", ppmRes.Merged, ppmRes.Duration, 16)
	if ppmSum.ReadPct > 10 {
		t.Errorf("ppm reads %.1f%%, paper 4%%", ppmSum.ReadPct)
	}
	if ppmSum.ReqPerSec > 3 {
		t.Errorf("ppm rate %.2f req/s, should be low", ppmSum.ReqPerSec)
	}
	swaps := analysis.OriginBreakdown(ppmRes.Merged)[trace.OriginSwap]
	if swaps == 0 {
		t.Error("ppm shows no end-of-run paging at all")
	} else {
		// The paging burst must fall in the last quarter of the run.
		t0 := ppmRes.Merged[0].Time
		for _, r := range ppmRes.Merged {
			if r.Origin == trace.OriginSwap &&
				r.Time.Sub(t0).Seconds() < 0.6*ppmRes.Duration.Seconds() {
				t.Errorf("ppm paging at %.0fs, expected only near the end", r.Time.Sub(t0).Seconds())
				break
			}
		}
	}

	// E2 wavelet: reads ~49%, heavy 4 KB paging, >=16 KB streaming reads.
	wRes := results[Wavelet]
	wSum := analysis.Summarize("w", wRes.Merged, wRes.Duration, 16)
	if wSum.ReadPct < 35 || wSum.ReadPct > 65 {
		t.Errorf("wavelet reads %.1f%%, paper 49%%", wSum.ReadPct)
	}
	wc := analysis.ClassifySizes(wRes.Merged)
	if wc.Page4K < wc.Block1K {
		t.Errorf("wavelet 4KB (%d) should dominate 1KB (%d)", wc.Page4K, wc.Block1K)
	}
	maxKB := 0
	var firstBigRead float64
	t0 := wRes.Merged[0].Time
	for _, r := range wRes.Merged {
		if r.KB() > maxKB {
			maxKB = r.KB()
		}
		if firstBigRead == 0 && r.Op == trace.Read && r.Origin == trace.OriginData && r.KB() >= 8 {
			firstBigRead = r.Time.Sub(t0).Seconds()
		}
	}
	if maxKB < 16 {
		t.Errorf("wavelet max request %d KB, want >=16 (read-ahead)", maxKB)
	}
	if firstBigRead < 20 || firstBigRead > 120 {
		t.Errorf("wavelet image read at %.0fs, paper ~50s", firstBigRead)
	}

	// E3 N-body: modest read share, low rate, some page swaps.
	nRes := results[NBody]
	nSum := analysis.Summarize("n", nRes.Merged, nRes.Duration, 16)
	if nSum.ReadPct < 2 || nSum.ReadPct > 30 {
		t.Errorf("nbody reads %.1f%%, paper 13%%", nSum.ReadPct)
	}
	if nSum.ReqPerSec > 5 {
		t.Errorf("nbody rate %.2f req/s, should be low", nSum.ReqPerSec)
	}
	if analysis.OriginBreakdown(nRes.Merged)[trace.OriginSwap] == 0 {
		t.Error("nbody shows no page swaps; paper reports a few")
	}

	// E4 combined: ~700 s, busier than parts, 16-32 KB requests, low-sector
	// concentration, low+high hot spots.
	cRes := results[Combined]
	if d := cRes.Duration.Seconds(); d < 450 || d > 1100 {
		t.Errorf("combined duration %.0fs, paper ~700s", d)
	}
	cSum := analysis.Summarize("c", cRes.Merged, cRes.Duration, 16)
	if cSum.TotalPerDisk <= wSum.TotalPerDisk {
		t.Errorf("combined %.0f req/disk not busier than wavelet alone %.0f",
			cSum.TotalPerDisk, wSum.TotalPerDisk)
	}
	cMax := 0
	for _, r := range cRes.Merged {
		if r.KB() > cMax {
			cMax = r.KB()
		}
	}
	if cMax < 16 || cMax > 32 {
		t.Errorf("combined max request %d KB, paper 16-32 KB", cMax)
	}
	bands := analysis.SpatialBands(cRes.Merged, 100000, cRes.DiskSectors)
	lowPct := bands[0].Pct + bands[1].Pct
	if lowPct < 70 {
		t.Errorf("combined low-band share %.1f%%, want dominant", lowPct)
	}
	if frac := analysis.Pareto(bands, 0.8); frac > 0.35 {
		t.Errorf("combined Pareto: 80%% of traffic in %.0f%% of bands; paper ~80/20", 100*frac)
	}
	heat := analysis.TemporalHeat(analysis.FilterNode(cRes.Merged, 0), cRes.Duration)
	hot := analysis.Hottest(heat, 5)
	if len(hot) < 2 {
		t.Fatal("no hot spots")
	}
	// The paper finds the most revisited sectors at a low disk position
	// and just under 1,000,000. Require both regions among the top spots.
	var lowHot, highHot bool
	for _, h := range hot {
		if h.Sector < 300000 {
			lowHot = true
		}
		if h.Sector > 950000 {
			highHot = true
		}
	}
	if !lowHot || !highHot {
		t.Errorf("top-5 hot spots %v lack a low+high pair; paper: ~45K and just under 1M", hot)
	}
	t.Logf("combined hot spots (disk 0): %v", hot)
}
