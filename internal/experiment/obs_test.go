package experiment

import (
	"strings"
	"testing"

	"essio/internal/obs"
	"essio/internal/sim"
)

func obsBaselineConfig() Config {
	cfg := SmallConfig(Baseline, 2)
	cfg.BaselineDuration = 120 * sim.Second
	return cfg
}

// TestRunCollectsObs proves an experiment returns the merged metric
// snapshot and the procfs exposition, with the I/O stack actually
// counted, and that same-seed runs produce byte-identical snapshots.
func TestRunCollectsObs(t *testing.T) {
	cfg := obsBaselineConfig()
	cfg.ObsLevel = obs.Full
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Obs == nil {
		t.Fatal("Result.Obs is nil")
	}
	for _, name := range []string{
		"driver/requests", "disk/writes", "bcache/writebacks",
		"pipeline/source/records", "sim/events_fired",
	} {
		if res.Obs.Counter(name) == 0 {
			t.Errorf("counter %s = 0 after a traced baseline run", name)
		}
	}
	if res.Obs.Counter("pipeline/source/records") != uint64(len(res.Merged)) {
		t.Errorf("pipeline/source/records = %d, want %d traced records",
			res.Obs.Counter("pipeline/source/records"), len(res.Merged))
	}
	if res.Obs.Hist("driver/queue_residency_us").Count == 0 {
		t.Error("no queue residency observations at full collection")
	}
	if !strings.Contains(res.ProcMetrics, "# TYPE essio_driver_requests counter") {
		t.Errorf("ProcMetrics missing driver counter:\n%.400s", res.ProcMetrics)
	}

	again, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := res.Obs.JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := again.Obs.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("same-seed runs produced different metric snapshots")
	}
}

// TestRunObsLevelOff proves the level knob reaches every node: an Off run
// still traces (the driver ioctl path is independent) but counts nothing.
func TestRunObsLevelOff(t *testing.T) {
	cfg := obsBaselineConfig()
	cfg.ObsLevel = obs.Off
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Merged) == 0 {
		t.Error("tracing should be unaffected by the metric level")
	}
	if got := res.Obs.Counter("driver/requests"); got != 0 {
		t.Errorf("driver/requests = %d at level off, want 0", got)
	}
}

// TestRunConcurrentObsSchedulerMetrics proves the batch scheduler records
// its shape: run counts, simulated virtual time, and pool occupancy.
func TestRunConcurrentObsSchedulerMetrics(t *testing.T) {
	cfgs := []Config{obsBaselineConfig(), obsBaselineConfig()}
	reg := obs.New(obs.Counters)
	results, err := RunConcurrentObs(cfgs, 2, reg)
	if err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	if got := s.Counter("sched/runs"); got != 2 {
		t.Errorf("sched/runs = %d, want 2", got)
	}
	want := uint64(results[0].Duration) + uint64(results[1].Duration)
	if got := s.Counter("sched/virt_us"); got != want {
		t.Errorf("sched/virt_us = %d, want %d", got, want)
	}
	if s.Counter("sched/failures") != 0 {
		t.Errorf("sched/failures = %d, want 0", s.Counter("sched/failures"))
	}
	if g := s.Gauge("sched/peak_workers"); g.Max < 1 || g.Max > 2 {
		t.Errorf("sched/peak_workers max = %d, want 1..2", g.Max)
	}
}
