package experiment

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"essio/internal/obs"
)

// IndexedError reports which config of a concurrent batch failed.
type IndexedError struct {
	// Index is the position of the failed config in the input slice.
	Index int
	Err   error
}

func (e *IndexedError) Error() string { return fmt.Sprintf("run %d: %v", e.Index, e.Err) }

// Unwrap exposes the underlying run error.
func (e *IndexedError) Unwrap() error { return e.Err }

// RunConcurrent executes each config on a bounded worker pool — every
// simulated cluster is an independent deterministic engine, so runs are
// embarrassingly parallel — and returns results in input order. workers
// <= 0 uses GOMAXPROCS.
//
// On failure the remaining unstarted configs are cancelled and the error
// of the lowest-index failure is returned as an *IndexedError, regardless
// of the order in which workers observed failures: workers claim configs
// in ascending index order, so every config below a failed index has
// already run to completion, making the reported failure deterministic.
// The result slice still carries every successful run.
func RunConcurrent(cfgs []Config, workers int) ([]*Result, error) {
	return RunConcurrentObs(cfgs, workers, nil)
}

// RunConcurrentObs is RunConcurrent with scheduler observability: after
// the pool drains, reg records the batch shape — runs completed and
// failed, total virtual time simulated, per-run virtual runtimes (at
// Full), and worker occupancy. All of it except the occupancy peak is
// derived from the deterministic results in input order; the peak
// reflects real scheduling and may vary between invocations. A nil reg
// runs unobserved.
func RunConcurrentObs(cfgs []Config, workers int, reg *obs.Registry) ([]*Result, error) {
	results := make([]*Result, len(cfgs))
	if len(cfgs) == 0 {
		return results, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	errs := make([]error, len(cfgs))
	var next atomic.Int64
	var failed atomic.Bool
	var inFlight, peak atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cfgs) || failed.Load() {
					return
				}
				n := inFlight.Add(1)
				for p := peak.Load(); n > p && !peak.CompareAndSwap(p, n); p = peak.Load() {
				}
				res, err := Run(cfgs[i])
				inFlight.Add(-1)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					continue
				}
				results[i] = res
			}
		}()
	}
	wg.Wait()
	lastPeakWorkers.Store(peak.Load())
	if reg != nil {
		runtimes := reg.Histogram("sched/run_virt_us", obs.ExpBuckets(1<<20, 4, 10))
		for _, res := range results {
			if res == nil {
				continue
			}
			reg.Counter("sched/runs").Inc()
			reg.Counter("sched/virt_us").Add(uint64(res.Duration))
			runtimes.Observe(int64(res.Duration))
		}
		for _, err := range errs {
			if err != nil {
				reg.Counter("sched/failures").Inc()
			}
		}
		reg.Gauge("sched/workers").Set(int64(workers))
		reg.Gauge("sched/peak_workers").Set(peak.Load())
	}
	for i, err := range errs {
		if err != nil {
			return results, &IndexedError{Index: i, Err: err}
		}
	}
	return results, nil
}

// lastPeakWorkers records the peak number of simultaneously running
// experiments of the most recent RunConcurrent call; tests use it to
// assert the pool actually overlaps work.
var lastPeakWorkers atomic.Int64

// RunAll executes one experiment per kind concurrently (the paper's five
// by default) and returns the results keyed by kind. mk builds the config
// for each kind.
func RunAll(kinds []Kind, mk func(Kind) Config) (map[Kind]*Result, error) {
	return RunAllWorkers(kinds, mk, 0)
}

// RunAllWorkers is RunAll on a pool of the given size; workers <= 0 uses
// GOMAXPROCS.
func RunAllWorkers(kinds []Kind, mk func(Kind) Config, workers int) (map[Kind]*Result, error) {
	cfgs := make([]Config, len(kinds))
	for i, k := range kinds {
		cfgs[i] = mk(k)
		cfgs[i].Kind = k
	}
	results, err := RunConcurrent(cfgs, workers)
	if err != nil {
		var ie *IndexedError
		if errors.As(err, &ie) {
			return nil, fmt.Errorf("experiment %s: %w", kinds[ie.Index], ie.Err)
		}
		return nil, err
	}
	out := make(map[Kind]*Result, len(kinds))
	for i, k := range kinds {
		out[k] = results[i]
	}
	return out, nil
}
