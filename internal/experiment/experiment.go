// Package experiment reproduces the study's four experiments: the
// quiescent baseline, each ESS application run alone on the cluster, and
// the combined multiprogramming run with all three applications at once.
// Each run boots a fresh 16-node Beowulf, installs the program images and
// input data, turns the driver instrumentation on via ioctl, excites the
// workload, and collects the per-disk traces.
package experiment

import (
	"fmt"

	"essio/internal/apps"
	"essio/internal/apps/nbody"
	"essio/internal/apps/ppm"
	"essio/internal/apps/wavelet"
	"essio/internal/cluster"
	"essio/internal/iotrace"
	"essio/internal/kernel"
	"essio/internal/obs"
	"essio/internal/sim"
	"essio/internal/trace"
	"essio/internal/vfs"
)

// Kind selects one of the paper's experiments.
type Kind string

// The five experiments.
const (
	Baseline Kind = "baseline"
	PPM      Kind = "ppm"
	Wavelet  Kind = "wavelet"
	NBody    Kind = "nbody"
	Combined Kind = "combined"
)

// Kinds lists all experiments in paper order.
var Kinds = []Kind{Baseline, PPM, Wavelet, NBody, Combined}

// Config parameterizes a run. Zero fields take paper defaults.
type Config struct {
	Kind  Kind
	Nodes int   // default 16
	Seed  int64 // default 1
	// Shards spreads the simulated nodes over that many parallel engines
	// (conservative lookahead sync); 0/1 is the sequential schedule.
	// Results are byte-identical at every setting.
	Shards int

	// BaselineDuration is how long the no-load experiment observes the
	// system (the paper used 2000 s).
	BaselineDuration sim.Duration
	// Timeout bounds application experiments in virtual time.
	Timeout sim.Duration
	// Tail keeps tracing after the last process exits so final
	// write-backs are captured.
	Tail sim.Duration

	// Application parameter overrides (zero values take defaults).
	PPM     ppm.Params
	Wavelet wavelet.Params
	NBody   nbody.Params

	// Node overrides per-node kernel configuration (ablations).
	Node func(i int) kernel.Config

	// ColdStart drops all clean cached blocks before tracing begins, so
	// even small binaries demand-load from disk (ablation; the default
	// warm start matches the paper's repeated-run measurement setting).
	ColdStart bool

	// ObsLevel sets every node's metric collection level (obs.Unset keeps
	// the kernel default, Counters; obs.Full adds histograms and spans).
	// Per-node overrides from Node win when this is Unset.
	ObsLevel obs.Level
}

// Result is a completed experiment.
type Result struct {
	Kind        Kind
	Nodes       int
	Start, End  sim.Time
	Duration    sim.Duration
	PerNode     [][]trace.Record
	Merged      []trace.Record
	DiskSectors uint32
	// Finished reports whether all application processes exited before
	// the timeout.
	Finished bool
	// AppErrors carries any per-process failures.
	AppErrors []error
	// AppEvents is the application-level (explicit) I/O the user programs
	// issued — the library-instrumentation view. Comparing it against
	// Merged quantifies the system traffic device-driver tracing adds.
	AppEvents []vfs.IOEvent
	// Obs is the cluster-wide metric snapshot taken the moment tracing
	// stopped: every node's registry merged, plus the engine's scheduler
	// metrics. Deterministic for a given seed and config.
	Obs *obs.Snapshot
	// ProcMetrics is node 0's /proc metrics file as a simulated process
	// read it — the faithful out-of-kernel exposition path. Read after
	// Obs was captured (the read itself advances virtual time), so its
	// values may trail Obs by a tick of daemon activity.
	ProcMetrics string
	// IOTrace is the per-request event journal merged across nodes in
	// (Time, Node, Seq) order — empty unless the run collected at obs
	// level Trace. IOTraceDropped counts ring-capacity evictions; when
	// non-zero the journal is a suffix of the run.
	IOTrace        []iotrace.Event
	IOTraceDropped uint64
}

// Source returns a streaming view of the merged trace: a k-way merge over
// the per-node traces, yielding records in the same (Time, Node, Sector)
// order as Merged without materializing another combined copy. Each call
// returns an independent iterator.
func (r *Result) Source() trace.Source {
	return trace.MergeSlices(r.PerNode...)
}

// BatchSource returns the same streaming merged view as Source at batch
// granularity: consumers drain whole record buffers per call instead of
// one record per call. Each call returns an independent iterator.
func (r *Result) BatchSource() trace.BatchSource {
	return trace.ToBatchSource(trace.MergeSlices(r.PerNode...))
}

func (c *Config) fill() {
	if c.Nodes == 0 {
		c.Nodes = 16
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.BaselineDuration == 0 {
		c.BaselineDuration = 2000 * sim.Second
	}
	if c.Timeout == 0 {
		c.Timeout = 4 * 60 * sim.Minute
	}
	if c.Tail == 0 {
		c.Tail = 30 * sim.Second
	}
	if c.PPM.NX == 0 {
		c.PPM = ppm.DefaultParams()
	}
	if c.Wavelet.N == 0 {
		c.Wavelet = wavelet.DefaultParams()
	}
	if c.NBody.Particles == 0 {
		c.NBody = nbody.DefaultParams()
	}
}

// Run executes the experiment and returns its traces.
func Run(cfg Config) (*Result, error) {
	cfg.fill()
	nodeCfg := cfg.Node
	if cfg.ObsLevel != obs.Unset {
		nodeCfg = func(i int) kernel.Config {
			kcfg := kernel.DefaultConfig(uint8(i))
			if cfg.Node != nil {
				kcfg = cfg.Node(i)
			}
			kcfg.ObsLevel = cfg.ObsLevel
			return kcfg
		}
	}
	c, err := cluster.New(cluster.Config{Nodes: cfg.Nodes, Seed: cfg.Seed, Shards: cfg.Shards, Node: nodeCfg})
	if err != nil {
		return nil, fmt.Errorf("experiment %s: %w", cfg.Kind, err)
	}
	defer c.Close()

	res := &Result{Kind: cfg.Kind, Nodes: cfg.Nodes, DiskSectors: c.Nodes[0].Disk.Sectors()}

	// Build the program set for this experiment.
	var progs []*kernel.Program
	switch cfg.Kind {
	case Baseline:
	case PPM:
		pr := cfg.PPM
		pr.Team = apps.NewTeam(c.PVM, cfg.Nodes)
		progs = append(progs, ppm.Program(pr))
	case Wavelet:
		pr := cfg.Wavelet
		pr.Team = apps.NewTeam(c.PVM, cfg.Nodes)
		progs = append(progs, wavelet.Program(pr))
	case NBody:
		pr := cfg.NBody
		pr.Team = apps.NewTeam(c.PVM, cfg.Nodes)
		progs = append(progs, nbody.Program(pr))
	case Combined:
		pp := cfg.PPM
		pp.Team = apps.NewTeam(c.PVM, cfg.Nodes)
		wp := cfg.Wavelet
		wp.Team = apps.NewTeam(c.PVM, cfg.Nodes)
		np := cfg.NBody
		np.Team = apps.NewTeam(c.PVM, cfg.Nodes)
		progs = append(progs, ppm.Program(pp), wavelet.Program(wp), nbody.Program(np))
	default:
		return nil, fmt.Errorf("experiment: unknown kind %q", cfg.Kind)
	}

	// Install inputs first, then program images: the wavelet input image
	// is then naturally evicted from the 2 MB buffer caches by the 5 MB
	// wavelet binary, so its streaming read hits the disk cold, while the
	// small PPM and N-body binaries stay cache-warm — reproducing the
	// paper's asymmetry (heavy paging for wavelet, almost none for the
	// simulation codes).
	needsImage := cfg.Kind == Wavelet || cfg.Kind == Combined
	if needsImage {
		done := make([]bool, len(c.Nodes))
		errs := make([]error, len(c.Nodes))
		for i, n := range c.Nodes {
			i, n := i, n
			wcfg := cfg.Wavelet
			c.SpawnOn(i, "install-image", func(p *sim.Proc) {
				errs[i] = wavelet.InstallInputs(p, n, wcfg)
				done[i] = true
			})
		}
		for {
			all := true
			for _, d := range done {
				if !d {
					all = false
					break
				}
			}
			if all {
				break
			}
			c.RunFor(sim.Second)
		}
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}
	for _, prog := range progs {
		if err := c.Install(prog); err != nil {
			return nil, err
		}
	}

	if cfg.ColdStart {
		c.DropCaches()
	}
	c.StartTracing()
	res.Start = c.Now()

	if cfg.Kind == Baseline {
		c.Run(res.Start.Add(cfg.BaselineDuration))
		res.Finished = true
	} else {
		var procs []*kernel.Process
		for _, prog := range progs {
			procs = append(procs, c.Launch(prog)...)
		}
		_, ok := c.WaitAll(procs, cfg.Timeout)
		res.Finished = ok
		for _, pr := range procs {
			if err := pr.Err(); err != nil {
				res.AppErrors = append(res.AppErrors, err)
			}
		}
		c.RunFor(cfg.Tail)
	}

	c.StopTracing()
	res.End = c.Now()
	res.Duration = res.End.Sub(res.Start)
	res.PerNode = c.Traces()
	res.Merged = trace.Merge(res.PerNode...)
	res.AppEvents = c.AppEvents()
	res.Obs = c.ObsSnapshot()
	res.IOTrace = c.IOTrace()
	res.IOTraceDropped = c.IOTraceDropped()
	res.ProcMetrics = readProcMetrics(c)
	if len(res.AppErrors) > 0 {
		return res, fmt.Errorf("experiment %s: %d process failures, first: %w",
			cfg.Kind, len(res.AppErrors), res.AppErrors[0])
	}
	return res, nil
}

// readProcMetrics reads node 0's /proc metrics file from process context,
// exactly as a measurement workstation would: open the proc entry, read
// the text out. The read runs as a spawned process, advancing virtual time
// by up to a second past the experiment's end.
func readProcMetrics(c *cluster.Cluster) string {
	var text string
	c.SpawnOn(0, "readmetrics", func(p *sim.Proc) {
		f, err := c.Nodes[0].Proc.Open("metrics")
		if err != nil {
			return
		}
		buf := make([]byte, 1<<20)
		n, err := f.Read(p, buf)
		if err != nil {
			return
		}
		text = string(buf[:n])
	})
	c.RunFor(sim.Second)
	return text
}

// SmallConfig returns a scaled-down configuration (fewer nodes, smaller
// problems) that preserves each experiment's qualitative behaviour; unit
// and integration tests use it to keep runtimes low.
func SmallConfig(kind Kind, nodes int) Config {
	cfg := Config{Kind: kind, Nodes: nodes, Seed: 1}
	cfg.fill()
	cfg.BaselineDuration = 300 * sim.Second
	cfg.Timeout = 90 * sim.Minute
	cfg.PPM.NX, cfg.PPM.NY, cfg.PPM.Grids, cfg.PPM.Steps = 64, 128, 2, 2
	cfg.Wavelet.N, cfg.Wavelet.Levels = 128, 4
	cfg.Wavelet.Workspaces, cfg.Wavelet.Iterations = 2, 4
	cfg.NBody.Particles, cfg.NBody.Steps = 1024, 2
	return cfg
}
