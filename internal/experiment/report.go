package experiment

import (
	"fmt"
	"sort"
	"strings"

	"essio/internal/analysis"
	"essio/internal/asciiplot"
	"essio/internal/svgplot"
	"essio/internal/trace"
)

// Table1 renders the paper's Table 1 from experiment results, in paper
// order, including the paper's own numbers for side-by-side comparison.
func Table1(results map[Kind]*Result) string {
	var b strings.Builder
	b.WriteString("Table 1. I/O Requests (average per disk)\n")
	b.WriteString("experiment   reads   writes   req/s    total    | paper: reads writes  req/s total\n")
	paper := map[Kind][4]string{
		Baseline: {"0%", "100%", "0.9", "1782"},
		PPM:      {"4%", "96%", "n/a", "n/a"},
		Wavelet:  {"49%", "51%", "n/a", "n/a"},
		NBody:    {"13%", "87%", "n/a", "n/a"},
		Combined: {"n/a", "n/a", "n/a", "n/a"},
	}
	for _, k := range Kinds {
		res, ok := results[k]
		if !ok {
			continue
		}
		s := analysis.Summarize(string(k), res.Merged, res.Duration, res.Nodes)
		p := paper[k]
		fmt.Fprintf(&b, "%-11s %5.1f%%  %5.1f%%  %7.2f  %8.0f | %6s %6s %6s %6s\n",
			k, s.ReadPct, s.WritePct, s.ReqPerSec, s.TotalPerDisk, p[0], p[1], p[2], p[3])
	}
	return b.String()
}

// figureSpec describes one of the paper's figures.
type figureSpec struct {
	num   int
	kind  Kind
	class string // "sectors", "sizes", "spatial", "temporal"
	title string
}

// FigureSpecs lists every figure of the evaluation in paper order.
var FigureSpecs = []figureSpec{
	{1, Baseline, "sectors", "Figure 1. I/O Requests (baseline)"},
	{2, PPM, "sizes", "Figure 2. Request Size (PPM)"},
	{3, Wavelet, "sizes", "Figure 3. Request Size (wavelet)"},
	{4, NBody, "sizes", "Figure 4. Request Size (N-Body)"},
	{5, Combined, "sizes", "Figure 5. Request Size (combined)"},
	{6, Combined, "sectors", "Figure 6. I/O Requests (combined)"},
	{7, Combined, "spatial", "Figure 7. Spatial Locality (combined)"},
	{8, Combined, "temporal", "Figure 8. Temporal Locality (combined)"},
}

// KindForFigure reports which experiment a figure number needs.
func KindForFigure(num int) (Kind, error) {
	for _, fs := range FigureSpecs {
		if fs.num == num {
			return fs.kind, nil
		}
	}
	return "", fmt.Errorf("experiment: no figure %d in the paper", num)
}

// Figure renders one of the paper's eight figures from the matching
// experiment result.
func Figure(num int, res *Result) (string, error) {
	for _, fs := range FigureSpecs {
		if fs.num != num {
			continue
		}
		if res.Kind != fs.kind {
			return "", fmt.Errorf("experiment: figure %d needs the %s experiment, got %s", num, fs.kind, res.Kind)
		}
		switch fs.class {
		case "sectors":
			pts := analysis.SectorSeries(res.Merged)
			return asciiplot.Scatter(fs.title, "time (s)", "sector", pts, 72, 20), nil
		case "sizes":
			pts := analysis.SizeSeries(res.Merged)
			return asciiplot.Scatter(fs.title, "time (s)", "request size (KB)", pts, 72, 16), nil
		case "spatial":
			bands := analysis.SpatialBands(res.Merged, 100000, res.DiskSectors)
			chart := asciiplot.BandChart(fs.title, bands, 48)
			frac := analysis.Pareto(bands, 0.8)
			return chart + fmt.Sprintf("80%% of requests fall in %.0f%% of bands (paper: ~80/20 rule)\n", 100*frac), nil
		case "temporal":
			// Temporal locality is a per-disk property; use node 0's
			// trace as the representative disk, as the paper plots one
			// disk's data.
			heat := analysis.TemporalHeat(analysis.FilterNode(res.Merged, 0), res.Duration)
			chart := asciiplot.Needles(fs.title, heat, res.DiskSectors, 72, 10)
			hot := analysis.Hottest(heat, 2)
			extra := ""
			if len(hot) == 2 {
				extra = fmt.Sprintf("hottest sector ~%d, next ~%d (paper: ~45,000 and just under 1,000,000)\n",
					hot[0].Sector, hot[1].Sector)
			}
			return chart + extra, nil
		}
	}
	return "", fmt.Errorf("experiment: no figure %d in the paper", num)
}

// SizeClassReport summarizes the request-size classes against the paper's
// three categories and validates the inference against ground-truth origin
// tags.
func SizeClassReport(res *Result) string {
	var b strings.Builder
	c := analysis.ClassifySizes(res.Merged)
	total := c.Block1K + c.Page4K + c.Large + c.Other
	if total == 0 {
		return "no requests traced\n"
	}
	fmt.Fprintf(&b, "request size classes (%s):\n", res.Kind)
	fmt.Fprintf(&b, "  1 KB block I/O      %6d (%5.1f%%)\n", c.Block1K, 100*float64(c.Block1K)/float64(total))
	fmt.Fprintf(&b, "  4 KB paging         %6d (%5.1f%%)\n", c.Page4K, 100*float64(c.Page4K)/float64(total))
	fmt.Fprintf(&b, "  >=8 KB large/stream %6d (%5.1f%%)\n", c.Large, 100*float64(c.Large)/float64(total))
	fmt.Fprintf(&b, "  other               %6d (%5.1f%%)\n", c.Other, 100*float64(c.Other)/float64(total))
	b.WriteString("ground-truth origins:\n")
	origins := analysis.OriginBreakdown(res.Merged)
	keys := make([]int, 0, len(origins))
	for o := range origins {
		keys = append(keys, int(o))
	}
	sort.Ints(keys)
	for _, o := range keys {
		fmt.Fprintf(&b, "  %-8s %6d\n", trace.Origin(o), origins[trace.Origin(o)])
	}
	return b.String()
}

// LevelsReport contrasts the two instrumentation levels: what a C-library
// instrumentation would have seen (explicit application I/O) against what
// the device-driver instrumentation actually measured — the methodological
// point of the paper (section 3.1: the total workload presented to the I/O
// subsystem includes system activity the library level never sees).
func LevelsReport(res *Result) string {
	var b strings.Builder
	appReads, appWrites := 0, 0
	var appBytes int64
	for _, ev := range res.AppEvents {
		if ev.Write {
			appWrites++
		} else {
			appReads++
		}
		appBytes += int64(ev.Bytes)
	}
	var diskBytes int64
	explicit := 0
	for _, r := range res.Merged {
		diskBytes += int64(r.Bytes())
		if r.Origin == trace.OriginData {
			explicit++
		}
	}
	fmt.Fprintf(&b, "instrumentation levels (%s):\n", res.Kind)
	fmt.Fprintf(&b, "  library level (explicit app I/O): %d calls (%d reads, %d writes), %.1f KB\n",
		appReads+appWrites, appReads, appWrites, float64(appBytes)/1024)
	fmt.Fprintf(&b, "  driver level (total disk load):   %d requests, %.1f KB\n",
		len(res.Merged), float64(diskBytes)/1024)
	if len(res.Merged) > 0 {
		fmt.Fprintf(&b, "  app-data share of disk requests:  %.1f%% — the remaining %.1f%% is\n",
			100*float64(explicit)/float64(len(res.Merged)),
			100-100*float64(explicit)/float64(len(res.Merged)))
		b.WriteString("  paging, swap, metadata, logging, and instrumentation traffic that\n")
		b.WriteString("  library-level instrumentation cannot observe.\n")
	}
	return b.String()
}

// FigureSVG renders one of the paper's figures as a standalone SVG document.
func FigureSVG(num int, res *Result) (string, error) {
	for _, fs := range FigureSpecs {
		if fs.num != num {
			continue
		}
		if res.Kind != fs.kind {
			return "", fmt.Errorf("experiment: figure %d needs the %s experiment, got %s", num, fs.kind, res.Kind)
		}
		switch fs.class {
		case "sectors":
			return svgplot.Scatter(fs.title, "time (s)", "sector", analysis.SectorSeries(res.Merged)), nil
		case "sizes":
			return svgplot.Scatter(fs.title, "time (s)", "request size (KB)", analysis.SizeSeries(res.Merged)), nil
		case "spatial":
			bands := analysis.SpatialBands(res.Merged, 100000, res.DiskSectors)
			return svgplot.Bars(fs.title, "sector band", bands), nil
		case "temporal":
			heat := analysis.TemporalHeat(analysis.FilterNode(res.Merged, 0), res.Duration)
			return svgplot.Needles(fs.title, heat, res.DiskSectors), nil
		}
	}
	return "", fmt.Errorf("experiment: no figure %d in the paper", num)
}
