package experiment

import (
	"bytes"
	"reflect"
	"runtime"
	"testing"

	"essio/internal/iotrace"
	"essio/internal/obs"
)

// chromeJSON renders a result's I/O journal as the Chrome trace-event
// bytes essmon trace and essd serve, the form the byte-identity gates
// compare.
func chromeJSON(t *testing.T, res *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := iotrace.WriteChrome(&buf, res.IOTrace); err != nil {
		t.Fatalf("render chrome trace: %v", err)
	}
	return buf.Bytes()
}

// shardCounts returns the shard counts the equality tests compare:
// sequential, two, four, and one per CPU, deduplicated.
func shardCounts() []int {
	counts := []int{1, 2, 4, runtime.NumCPU()}
	seen := map[int]bool{}
	var out []int
	for _, c := range counts {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

// TestShardedRunsByteIdentical is the sharding refactor's acceptance
// gate: every experiment must produce byte-identical results — trace
// records, application events, metric snapshot bytes, procfs text, and
// timing — at every shard count. Short mode covers the baseline and PPM;
// the full run covers all five experiments.
func TestShardedRunsByteIdentical(t *testing.T) {
	kinds := Kinds
	if testing.Short() {
		kinds = []Kind{Baseline, PPM}
	}
	for _, kind := range kinds {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			var base *Result
			var baseObs []byte
			var baseTrace []byte
			for _, shards := range shardCounts() {
				cfg := SmallConfig(kind, 4)
				cfg.Shards = shards
				// Trace level journals every request journey on top of
				// the full metric set, so this gate also proves the
				// exported trace bytes are shard-invariant.
				cfg.ObsLevel = obs.Trace
				res, err := Run(cfg)
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				obsJSON, err := res.Obs.JSON()
				if err != nil {
					t.Fatalf("shards=%d: snapshot: %v", shards, err)
				}
				traceJSON := chromeJSON(t, res)
				if shards == 1 {
					if len(res.IOTrace) == 0 {
						t.Fatal("trace-level run journaled no I/O events")
					}
					base, baseObs, baseTrace = res, obsJSON, traceJSON
					continue
				}
				if res.Start != base.Start || res.End != base.End || res.Duration != base.Duration {
					t.Errorf("shards=%d timing (%v,%v) diverges from sequential (%v,%v)",
						shards, res.Start, res.End, base.Start, base.End)
				}
				if res.Finished != base.Finished {
					t.Errorf("shards=%d Finished=%v, sequential %v", shards, res.Finished, base.Finished)
				}
				if !reflect.DeepEqual(res.PerNode, base.PerNode) {
					t.Errorf("shards=%d per-node traces diverge from sequential run", shards)
				}
				if !reflect.DeepEqual(res.Merged, base.Merged) {
					t.Errorf("shards=%d merged trace diverges from sequential run", shards)
				}
				if !reflect.DeepEqual(res.AppEvents, base.AppEvents) {
					t.Errorf("shards=%d application events diverge from sequential run", shards)
				}
				if !bytes.Equal(obsJSON, baseObs) {
					t.Errorf("shards=%d metric snapshot bytes diverge from sequential run", shards)
				}
				if res.ProcMetrics != base.ProcMetrics {
					t.Errorf("shards=%d procfs metrics text diverges from sequential run", shards)
				}
				if !bytes.Equal(traceJSON, baseTrace) {
					t.Errorf("shards=%d exported iotrace JSON diverges from sequential run", shards)
				}
			}
		})
	}
}

// TestIOTraceByteIdenticalAcrossWorkers is the worker-pool half of the
// trace determinism gate: the same trace-level config run through
// RunConcurrent pools of different sizes must export byte-identical
// Chrome trace JSON. Worker count only changes host scheduling, never
// simulated causality, so any divergence here is a shared-state leak.
func TestIOTraceByteIdenticalAcrossWorkers(t *testing.T) {
	cfg := SmallConfig(PPM, 4)
	cfg.ObsLevel = obs.Trace
	cfgs := []Config{cfg, cfg}
	var base []byte
	for _, workers := range []int{1, 4} {
		results, err := RunConcurrent(cfgs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, res := range results {
			traceJSON := chromeJSON(t, res)
			if len(res.IOTrace) == 0 {
				t.Fatalf("workers=%d run %d journaled no I/O events", workers, i)
			}
			if base == nil {
				base = traceJSON
				continue
			}
			if !bytes.Equal(traceJSON, base) {
				t.Errorf("workers=%d run %d iotrace JSON diverges", workers, i)
			}
		}
	}
}
