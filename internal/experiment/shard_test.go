package experiment

import (
	"bytes"
	"reflect"
	"runtime"
	"testing"
)

// shardCounts returns the shard counts the equality tests compare:
// sequential, two, and one per CPU, deduplicated.
func shardCounts() []int {
	counts := []int{1, 2, runtime.NumCPU()}
	seen := map[int]bool{}
	var out []int
	for _, c := range counts {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

// TestShardedRunsByteIdentical is the sharding refactor's acceptance
// gate: every experiment must produce byte-identical results — trace
// records, application events, metric snapshot bytes, procfs text, and
// timing — at every shard count. Short mode covers the baseline and PPM;
// the full run covers all five experiments.
func TestShardedRunsByteIdentical(t *testing.T) {
	kinds := Kinds
	if testing.Short() {
		kinds = []Kind{Baseline, PPM}
	}
	for _, kind := range kinds {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			var base *Result
			var baseObs []byte
			for _, shards := range shardCounts() {
				cfg := SmallConfig(kind, 4)
				cfg.Shards = shards
				res, err := Run(cfg)
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				obsJSON, err := res.Obs.JSON()
				if err != nil {
					t.Fatalf("shards=%d: snapshot: %v", shards, err)
				}
				if shards == 1 {
					base, baseObs = res, obsJSON
					continue
				}
				if res.Start != base.Start || res.End != base.End || res.Duration != base.Duration {
					t.Errorf("shards=%d timing (%v,%v) diverges from sequential (%v,%v)",
						shards, res.Start, res.End, base.Start, base.End)
				}
				if res.Finished != base.Finished {
					t.Errorf("shards=%d Finished=%v, sequential %v", shards, res.Finished, base.Finished)
				}
				if !reflect.DeepEqual(res.PerNode, base.PerNode) {
					t.Errorf("shards=%d per-node traces diverge from sequential run", shards)
				}
				if !reflect.DeepEqual(res.Merged, base.Merged) {
					t.Errorf("shards=%d merged trace diverges from sequential run", shards)
				}
				if !reflect.DeepEqual(res.AppEvents, base.AppEvents) {
					t.Errorf("shards=%d application events diverge from sequential run", shards)
				}
				if !bytes.Equal(obsJSON, baseObs) {
					t.Errorf("shards=%d metric snapshot bytes diverge from sequential run", shards)
				}
				if res.ProcMetrics != base.ProcMetrics {
					t.Errorf("shards=%d procfs metrics text diverges from sequential run", shards)
				}
			}
		})
	}
}
