package experiment

import (
	"errors"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"essio/internal/sim"
	"essio/internal/trace"
)

// quickBaseline is a baseline run small enough for multi-seed tests but
// long enough that pooled workers overlap.
func quickBaseline(nodes int) Config {
	return Config{Kind: Baseline, Nodes: nodes, BaselineDuration: 120 * sim.Second}
}

// TestRunSeedsParallelMatchesSerial checks the worker-pool scheduler
// reproduces the serial per-seed results exactly: same aggregates, same
// per-seed traces byte for byte.
func TestRunSeedsParallelMatchesSerial(t *testing.T) {
	seeds := []int64{1, 2, 3, 4}
	cfg := quickBaseline(2)

	rep, err := RunSeeds(cfg, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != len(seeds) {
		t.Fatalf("got %d results", len(rep.Results))
	}

	for i, seed := range seeds {
		c := cfg
		c.Seed = seed
		serial, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		got, want := rep.Results[i], serial
		if got.Kind != want.Kind || got.Duration != want.Duration {
			t.Fatalf("seed %d meta diverged: %+v vs %+v", seed, got.Kind, want.Kind)
		}
		if !reflect.DeepEqual(got.Merged, want.Merged) {
			t.Fatalf("seed %d merged trace diverged under parallel run", seed)
		}
	}
	if rep.PerDisk.N != len(seeds) || rep.DurationS.N != len(seeds) {
		t.Fatalf("aggregate sample sizes: %+v %+v", rep.PerDisk, rep.DurationS)
	}
}

// TestRunSeedsRunsConcurrently asserts the pool actually overlaps seeds
// (the acceptance criterion that >=4 seeds demonstrably run concurrently).
func TestRunSeedsRunsConcurrently(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs >=2 CPUs to observe overlap")
	}
	if _, err := RunSeeds(quickBaseline(2), []int64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if peak := lastPeakWorkers.Load(); peak < 2 {
		t.Fatalf("peak in-flight seeds = %d, want >= 2", peak)
	}
}

// TestRunSeedsErrorDeterministic: when seeds fail, the reported error must
// always be the lowest failing seed, no matter how the pool schedules.
func TestRunSeedsErrorDeterministic(t *testing.T) {
	cfg := Config{Kind: Kind("bogus"), Nodes: 2}
	for i := 0; i < 10; i++ {
		_, err := RunSeeds(cfg, []int64{3, 5, 7, 9})
		if err == nil {
			t.Fatal("want error for unknown kind")
		}
		if !strings.Contains(err.Error(), "seed 3:") {
			t.Fatalf("want lowest seed reported, got: %v", err)
		}
	}
}

// TestRunConcurrentIndexedError checks the failure index is exact and
// successful runs are still returned.
func TestRunConcurrentIndexedError(t *testing.T) {
	cfgs := []Config{
		quickBaseline(1),
		{Kind: Kind("bogus"), Nodes: 1},
	}
	results, err := RunConcurrent(cfgs, 1)
	if err == nil {
		t.Fatal("want error")
	}
	var ie *IndexedError
	if !errors.As(err, &ie) || ie.Index != 1 {
		t.Fatalf("want IndexedError{Index: 1}, got %v", err)
	}
	if results[0] == nil {
		t.Fatal("successful run before the failure must be returned")
	}
	if results[1] != nil {
		t.Fatal("failed run must not produce a result")
	}
}

// TestRunConcurrentCancelsAfterFailure: with one worker, everything after
// the failing config is never started.
func TestRunConcurrentCancelsAfterFailure(t *testing.T) {
	cfgs := []Config{
		{Kind: Kind("bogus"), Nodes: 1},
		quickBaseline(1),
		quickBaseline(1),
	}
	results, err := RunConcurrent(cfgs, 1)
	if err == nil {
		t.Fatal("want error")
	}
	if results[1] != nil || results[2] != nil {
		t.Fatal("configs after a failure should be cancelled, not run")
	}
}

// TestRunConcurrentEmpty pins the degenerate inputs.
func TestRunConcurrentEmpty(t *testing.T) {
	results, err := RunConcurrent(nil, 4)
	if err != nil || len(results) != 0 {
		t.Fatalf("empty batch: %v %v", results, err)
	}
	if _, err := RunSeeds(quickBaseline(1), nil); err == nil {
		t.Fatal("no seeds must error")
	}
}

// TestResultSourceMatchesMerged checks Result.Source streams exactly the
// records of the materialized Merged slice, in the same order.
func TestResultSourceMatchesMerged(t *testing.T) {
	res, err := Run(quickBaseline(2))
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := trace.Collect(res.Source())
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(res.Merged) {
		t.Fatalf("streamed %d records, merged %d", len(streamed), len(res.Merged))
	}
	for i := range streamed {
		if streamed[i] != res.Merged[i] {
			t.Fatalf("record %d diverges: %v vs %v", i, streamed[i], res.Merged[i])
		}
	}
	// A second Source call must yield an independent, equal stream.
	again, err := trace.Collect(res.Source())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(streamed, again) {
		t.Fatal("Source is not repeatable")
	}
}
