package experiment

import (
	"math"
	"strings"
	"testing"

	"essio/internal/analysis"
	"essio/internal/apps"
	"essio/internal/apps/ppm"
	"essio/internal/cluster"
	"essio/internal/sim"
	"essio/internal/trace"
)

// run executes a small-scale experiment once and caches nothing: each test
// that needs a result runs its own for isolation.
func run(t *testing.T, kind Kind, nodes int) *Result {
	t.Helper()
	res, err := Run(SmallConfig(kind, nodes))
	if err != nil {
		t.Fatalf("%s: %v", kind, err)
	}
	if !res.Finished {
		t.Fatalf("%s did not finish", kind)
	}
	return res
}

func TestBaselineShape(t *testing.T) {
	res := run(t, Baseline, 2)
	s := analysis.Summarize("baseline", res.Merged, res.Duration, res.Nodes)
	if s.WritePct < 95 {
		t.Fatalf("baseline writes = %.1f%%, paper reports ~100%%", s.WritePct)
	}
	c := analysis.ClassifySizes(res.Merged)
	if c.Block1K+c.Other < c.Page4K+c.Large {
		t.Fatalf("baseline dominated by large requests: %+v", c)
	}
	var low, high bool
	for _, r := range res.Merged {
		if r.Sector < 300000 {
			low = true
		}
		if r.Sector > 900000 {
			high = true
		}
	}
	if !low || !high {
		t.Fatalf("baseline activity low=%v high=%v; want both ends of the disk", low, high)
	}
}

func TestPPMLowIOAndWriteDominated(t *testing.T) {
	res := run(t, PPM, 2)
	s := analysis.Summarize("ppm", res.Merged, res.Duration, res.Nodes)
	// The paper: 4% reads, low overall activity (warm binary, simulation
	// with no input data).
	if s.ReadPct > 25 {
		t.Fatalf("ppm reads = %.1f%%; simulation code should be write-dominated", s.ReadPct)
	}
	if s.ReqPerSec > 10 {
		t.Fatalf("ppm rate = %.1f req/s; should be low-I/O", s.ReqPerSec)
	}
}

func TestPPMWritesResultsFile(t *testing.T) {
	c, err := cluster.New(cluster.Config{Nodes: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	pr := SmallConfig(PPM, 2).PPM
	pr.Team = apps.NewTeam(c.PVM, 2)
	prog := ppm.Program(pr)
	if err := c.Install(prog); err != nil {
		t.Fatal(err)
	}
	procs := c.Launch(prog)
	if _, ok := c.WaitAll(procs, 60*sim.Minute); !ok {
		t.Fatal("ppm did not finish")
	}
	checked := false
	// Single-shard cluster: one engine may touch every node's FS.
	c.SpawnOn(0, "check", func(p *sim.Proc) {
		for _, n := range c.Nodes {
			ino, err := n.FS.Lookup(p, pr.OutputPath)
			if err != nil {
				t.Errorf("node %d: %v", n.Cfg.NodeID, err)
				return
			}
			st, err := n.FS.Stat(p, ino)
			if err != nil || st.Size == 0 {
				t.Errorf("node %d: output empty: %+v %v", n.Cfg.NodeID, st, err)
				return
			}
			buf := make([]byte, 64)
			m, err := n.FS.ReadAt(p, ino, 0, buf, trace.OriginData)
			if err != nil || m == 0 {
				t.Errorf("node %d: read: %v", n.Cfg.NodeID, err)
				return
			}
			if !strings.Contains(string(buf[:m]), "grid=0 mass=") {
				t.Errorf("node %d: unexpected output %q", n.Cfg.NodeID, buf[:m])
				return
			}
		}
		checked = true
	})
	c.RunFor(time1)
	if !checked {
		t.Fatal("output check never ran")
	}
}

const time1 = 2 * sim.Minute

func TestWaveletReadsImageAndPages(t *testing.T) {
	res := run(t, Wavelet, 2)
	var dataReads, pagingReads int
	for _, r := range res.Merged {
		if r.Op != trace.Read {
			continue
		}
		switch r.Origin {
		case trace.OriginData:
			dataReads++
		case trace.OriginPaging:
			pagingReads++
		}
	}
	if dataReads == 0 {
		t.Fatal("wavelet never read its image from disk")
	}
	if pagingReads == 0 {
		t.Fatal("wavelet shows no demand paging despite its large program space")
	}
	s := analysis.Summarize("wavelet", res.Merged, res.Duration, res.Nodes)
	if s.ReadPct < 20 {
		t.Fatalf("wavelet reads = %.1f%%; the paper reports ~49%%", s.ReadPct)
	}
}

func TestNBodyLowIO(t *testing.T) {
	res := run(t, NBody, 2)
	s := analysis.Summarize("nbody", res.Merged, res.Duration, res.Nodes)
	if s.ReadPct > 30 {
		t.Fatalf("nbody reads = %.1f%%; paper reports 13%%", s.ReadPct)
	}
	if s.ReqPerSec > 10 {
		t.Fatalf("nbody rate = %.1f req/s; should be low-I/O", s.ReqPerSec)
	}
}

func TestCombinedBusierThanParts(t *testing.T) {
	combined := run(t, Combined, 2)
	ppmRes := run(t, PPM, 2)
	cs := analysis.Summarize("c", combined.Merged, combined.Duration, combined.Nodes)
	ps := analysis.Summarize("p", ppmRes.Merged, ppmRes.Duration, ppmRes.Nodes)
	if cs.TotalPerDisk <= ps.TotalPerDisk {
		t.Fatalf("combined total %.0f not busier than ppm alone %.0f", cs.TotalPerDisk, ps.TotalPerDisk)
	}
	// Combined must still keep the 1 KB floor.
	c := analysis.ClassifySizes(combined.Merged)
	if c.Block1K == 0 {
		t.Fatal("combined lost the 1 KB request class")
	}
	// Multiprogramming stretches each app's runtime beyond its solo time.
	if combined.Duration <= ppmRes.Duration {
		t.Fatalf("combined duration %v not longer than ppm alone %v", combined.Duration, ppmRes.Duration)
	}
}

func TestDeterministicExperiment(t *testing.T) {
	a := run(t, PPM, 2)
	b := run(t, PPM, 2)
	if len(a.Merged) != len(b.Merged) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a.Merged), len(b.Merged))
	}
	for i := range a.Merged {
		if a.Merged[i] != b.Merged[i] {
			t.Fatalf("records diverge at %d: %v vs %v", i, a.Merged[i], b.Merged[i])
		}
	}
}

func TestTable1Rendering(t *testing.T) {
	results := map[Kind]*Result{
		Baseline: run(t, Baseline, 2),
		PPM:      run(t, PPM, 2),
	}
	out := Table1(results)
	if !strings.Contains(out, "baseline") || !strings.Contains(out, "ppm") {
		t.Fatalf("table missing rows:\n%s", out)
	}
	if !strings.Contains(out, "1782") {
		t.Fatal("table missing paper reference values")
	}
	if strings.Contains(out, "wavelet") {
		t.Fatal("table contains a row for a missing result")
	}
}

func TestFigureRendering(t *testing.T) {
	res := run(t, Baseline, 2)
	fig, err := Figure(1, res)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fig, "Figure 1") || !strings.Contains(fig, "sector") {
		t.Fatalf("figure 1 malformed:\n%s", fig)
	}
	// Wrong-kind result must be rejected.
	if _, err := Figure(5, res); err == nil {
		t.Fatal("figure 5 from a baseline result must fail")
	}
	if _, err := Figure(99, res); err == nil {
		t.Fatal("unknown figure must fail")
	}
}

func TestFiguresForCombined(t *testing.T) {
	res := run(t, Combined, 2)
	for _, num := range []int{5, 6, 7, 8} {
		fig, err := Figure(num, res)
		if err != nil {
			t.Fatalf("figure %d: %v", num, err)
		}
		if len(fig) < 50 {
			t.Fatalf("figure %d suspiciously short:\n%s", num, fig)
		}
	}
	report := SizeClassReport(res)
	if !strings.Contains(report, "4 KB paging") {
		t.Fatalf("size report malformed:\n%s", report)
	}
}

func TestKindForFigure(t *testing.T) {
	k, err := KindForFigure(3)
	if err != nil || k != Wavelet {
		t.Fatalf("figure 3 -> %v, %v", k, err)
	}
	if _, err := KindForFigure(0); err == nil {
		t.Fatal("figure 0 must fail")
	}
}

func TestUnknownKindFails(t *testing.T) {
	if _, err := Run(Config{Kind: "bogus", Nodes: 2}); err == nil {
		t.Fatal("unknown kind must fail")
	}
}

func TestColdStartIncreasesReads(t *testing.T) {
	warm := run(t, PPM, 2)
	cfg := SmallConfig(PPM, 2)
	cfg.ColdStart = true
	cold, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wr := analysis.Summarize("w", warm.Merged, warm.Duration, 2).ReadPct
	cr := analysis.Summarize("c", cold.Merged, cold.Duration, 2).ReadPct
	if cr <= wr {
		t.Fatalf("cold start reads %.1f%% not above warm %.1f%%", cr, wr)
	}
}

func TestWaveletDeterministic(t *testing.T) {
	a := run(t, Wavelet, 2)
	b := run(t, Wavelet, 2)
	if len(a.Merged) != len(b.Merged) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a.Merged), len(b.Merged))
	}
	for i := range a.Merged {
		if a.Merged[i] != b.Merged[i] {
			t.Fatalf("records diverge at %d", i)
		}
	}
}

func TestSeedChangesTrace(t *testing.T) {
	a := run(t, Baseline, 2)
	cfg := SmallConfig(Baseline, 2)
	cfg.Seed = 2
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Merged) == len(b.Merged) {
		same := true
		for i := range a.Merged {
			if a.Merged[i] != b.Merged[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces (jitter not seeded?)")
		}
	}
}

func TestResultWindowsAreTraced(t *testing.T) {
	res := run(t, Baseline, 2)
	if res.Start >= res.End {
		t.Fatalf("window [%v, %v)", res.Start, res.End)
	}
	for _, r := range res.Merged {
		if r.Time < res.Start || r.Time > res.End {
			t.Fatalf("record at %v outside [%v, %v]", r.Time, res.Start, res.End)
		}
	}
	if len(res.PerNode) != 2 {
		t.Fatalf("PerNode = %d", len(res.PerNode))
	}
	total := 0
	for _, tr := range res.PerNode {
		total += len(tr)
	}
	if total != len(res.Merged) {
		t.Fatalf("merged %d != per-node sum %d", len(res.Merged), total)
	}
}

func TestAppEventsCapturedAndContrasted(t *testing.T) {
	res := run(t, Wavelet, 2)
	if len(res.AppEvents) == 0 {
		t.Fatal("no application-level I/O recorded")
	}
	// The wavelet app reads its image explicitly and writes results.
	reads, writes := 0, 0
	var bytes int64
	for _, ev := range res.AppEvents {
		if ev.Write {
			writes++
		} else {
			reads++
		}
		bytes += int64(ev.Bytes)
		if ev.Path == "" {
			t.Fatal("event without a path")
		}
	}
	if reads == 0 || writes == 0 {
		t.Fatalf("reads=%d writes=%d", reads, writes)
	}
	// Library level must see FAR less than the driver level: the app's
	// explicit bytes are a fraction of the disk traffic (paging etc.).
	var diskBytes int64
	for _, r := range res.Merged {
		diskBytes += int64(r.Bytes())
	}
	if bytes >= diskBytes {
		t.Fatalf("app bytes %d >= disk bytes %d; system traffic missing", bytes, diskBytes)
	}
	rep := LevelsReport(res)
	if !strings.Contains(rep, "library level") || !strings.Contains(rep, "driver level") {
		t.Fatalf("report malformed:\n%s", rep)
	}
}

func TestBaselineHasNoAppEvents(t *testing.T) {
	res := run(t, Baseline, 2)
	if len(res.AppEvents) != 0 {
		t.Fatalf("baseline recorded %d app events; daemons must not count", len(res.AppEvents))
	}
}

func TestRunSeedsAggregates(t *testing.T) {
	cfg := SmallConfig(PPM, 2)
	rep, err := RunSeeds(cfg, []int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 3 {
		t.Fatalf("results = %d", len(rep.Results))
	}
	if rep.PerDisk.N != 3 || rep.PerDisk.Mean <= 0 {
		t.Fatalf("PerDisk = %+v", rep.PerDisk)
	}
	if rep.PerDisk.Min > rep.PerDisk.Mean || rep.PerDisk.Max < rep.PerDisk.Mean {
		t.Fatalf("bounds wrong: %+v", rep.PerDisk)
	}
	if !strings.Contains(rep.String(), "over 3 seeds") {
		t.Fatalf("report:\n%s", rep)
	}
	if _, err := RunSeeds(cfg, nil); err == nil {
		t.Fatal("no seeds must error")
	}
}

func TestDistStats(t *testing.T) {
	d := newDist([]float64{2, 4, 6})
	if d.Mean != 4 || d.Min != 2 || d.Max != 6 || d.N != 3 {
		t.Fatalf("%+v", d)
	}
	if math.Abs(d.Std-2) > 1e-12 {
		t.Fatalf("Std = %v", d.Std)
	}
	z := newDist(nil)
	if z.N != 0 || z.Mean != 0 || z.Min != 0 || z.Max != 0 {
		t.Fatalf("%+v", z)
	}
	one := newDist([]float64{5})
	if one.Std != 0 || one.Mean != 5 {
		t.Fatalf("%+v", one)
	}
}
