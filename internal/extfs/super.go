// Package extfs implements an ext2-like filesystem over the 1 KB-block
// buffer cache: superblock, block groups with block/inode bitmaps and inode
// tables, directories, and direct/indirect block mapping.
//
// The on-disk layout matters to the reproduction: metadata lives at the
// front of each group, the first-fit allocator places ordinary files in the
// low groups (low sector numbers), and callers can pin files — notably
// /var/log — into the *last* group so that system logging hits the high
// sector numbers, which is exactly the low/high split the paper's baseline
// figure shows.
package extfs

import (
	"encoding/binary"
	"fmt"

	"essio/internal/buffercache"
	"essio/internal/sim"
	"essio/internal/trace"
)

// BlockSize is the filesystem block size in bytes.
const BlockSize = buffercache.BlockSize

// Magic identifies a formatted filesystem.
const Magic = 0xE55F5000 + 2 // "ESS FS", v2

// Layout constants.
const (
	BlocksPerGroup   = 8192
	InodesPerGroup   = 1024
	InodeSize        = 128
	inodesPerBlock   = BlockSize / InodeSize
	inodeTableBlocks = InodesPerGroup / inodesPerBlock

	// NumDirect is the number of direct block pointers per inode;
	// one single- and one double-indirect pointer follow.
	NumDirect     = 12
	ptrsPerBlock  = BlockSize / 4
	maxFileBlocks = NumDirect + ptrsPerBlock + ptrsPerBlock*ptrsPerBlock
)

// RootIno is the inode number of the root directory (2, as in ext2;
// inode numbers are 1-based and inode 1 is reserved).
const RootIno = 2

// Mode distinguishes file types.
type Mode uint16

const (
	// ModeFree marks an unallocated inode.
	ModeFree Mode = 0
	// ModeFile is a regular file.
	ModeFile Mode = 1
	// ModeDir is a directory.
	ModeDir Mode = 2
)

// superblock is the on-disk filesystem header.
type superblock struct {
	Magic          uint32
	BlocksCount    uint32 // total blocks in the partition
	GroupCount     uint32
	FreeBlocks     uint32
	FreeInodes     uint32
	FirstDataBlock uint32 // always 1 (block 0 is the boot block)
}

func (s *superblock) marshal(b []byte) {
	binary.LittleEndian.PutUint32(b[0:], s.Magic)
	binary.LittleEndian.PutUint32(b[4:], s.BlocksCount)
	binary.LittleEndian.PutUint32(b[8:], s.GroupCount)
	binary.LittleEndian.PutUint32(b[12:], s.FreeBlocks)
	binary.LittleEndian.PutUint32(b[16:], s.FreeInodes)
	binary.LittleEndian.PutUint32(b[20:], s.FirstDataBlock)
}

func (s *superblock) unmarshal(b []byte) {
	s.Magic = binary.LittleEndian.Uint32(b[0:])
	s.BlocksCount = binary.LittleEndian.Uint32(b[4:])
	s.GroupCount = binary.LittleEndian.Uint32(b[8:])
	s.FreeBlocks = binary.LittleEndian.Uint32(b[12:])
	s.FreeInodes = binary.LittleEndian.Uint32(b[16:])
	s.FirstDataBlock = binary.LittleEndian.Uint32(b[20:])
}

// groupDesc locates one block group's metadata.
type groupDesc struct {
	BlockBitmap uint32 // fs-block number of the block bitmap
	InodeBitmap uint32
	InodeTable  uint32 // first block of the inode table
	FreeBlocks  uint32
	FreeInodes  uint32
}

// gdBytes is the on-disk descriptor size; 16 bytes keeps a 64-group (512 MB)
// filesystem's descriptor table within one block. Free counts fit in uint16
// because groups hold at most 8192 blocks and 1024 inodes.
const gdBytes = 16

func (g *groupDesc) marshal(b []byte) {
	binary.LittleEndian.PutUint32(b[0:], g.BlockBitmap)
	binary.LittleEndian.PutUint32(b[4:], g.InodeBitmap)
	binary.LittleEndian.PutUint32(b[8:], g.InodeTable)
	binary.LittleEndian.PutUint16(b[12:], uint16(g.FreeBlocks))
	binary.LittleEndian.PutUint16(b[14:], uint16(g.FreeInodes))
}

func (g *groupDesc) unmarshal(b []byte) {
	g.BlockBitmap = binary.LittleEndian.Uint32(b[0:])
	g.InodeBitmap = binary.LittleEndian.Uint32(b[4:])
	g.InodeTable = binary.LittleEndian.Uint32(b[8:])
	g.FreeBlocks = uint32(binary.LittleEndian.Uint16(b[12:]))
	g.FreeInodes = uint32(binary.LittleEndian.Uint16(b[14:]))
}

// FS is a mounted filesystem instance.
type FS struct {
	e          *sim.Engine
	bc         *buffercache.Cache
	startBlock uint32 // partition offset in disk blocks
	sb         superblock
	groups     []groupDesc
}

// diskBlock converts a filesystem block number to a disk block number.
func (f *FS) diskBlock(fsBlock uint32) uint32 { return f.startBlock + fsBlock }

// readBlock reads an fs block through the cache.
func (f *FS) readBlock(p *sim.Proc, blk uint32, origin trace.Origin) ([]byte, error) {
	return f.bc.ReadBlock(p, f.diskBlock(blk), origin)
}

// updateBlock applies fn to an fs block and marks it dirty.
func (f *FS) updateBlock(p *sim.Proc, blk uint32, origin trace.Origin, fn func([]byte)) error {
	return f.bc.UpdateBlock(p, f.diskBlock(blk), origin, fn)
}

// Mkfs formats blocks filesystem blocks starting at disk block startBlock
// and returns the mounted filesystem with an empty root directory.
func Mkfs(p *sim.Proc, bc *buffercache.Cache, startBlock, blocks uint32) (*FS, error) {
	if blocks < 2*BlocksPerGroup/4 {
		return nil, fmt.Errorf("extfs: %d blocks too small", blocks)
	}
	f := &FS{e: p.Engine(), bc: bc, startBlock: startBlock}
	groupCount := (blocks - 1 + BlocksPerGroup - 1) / BlocksPerGroup
	if int(groupCount)*gdBytes > BlockSize {
		return nil, fmt.Errorf("extfs: %d groups exceed the descriptor block (max %d)",
			groupCount, BlockSize/gdBytes)
	}
	f.sb = superblock{
		Magic:          Magic,
		BlocksCount:    blocks,
		GroupCount:     groupCount,
		FirstDataBlock: 1,
	}
	// Metadata layout per group g, with base = 1 + g*BlocksPerGroup:
	// base+0: block bitmap, base+1: inode bitmap, base+2..: inode table,
	// then data blocks. Group 0's base also holds the superblock and
	// group-descriptor table at the very front, overlapping its bitmap
	// region accounting: we place them at blocks 1 and 2, so group 0's
	// metadata starts at block 3.
	f.groups = make([]groupDesc, groupCount)
	for g := uint32(0); g < groupCount; g++ {
		base := uint32(1) + g*BlocksPerGroup
		if g == 0 {
			base += 2 // superblock + descriptor table
		}
		f.groups[g] = groupDesc{
			BlockBitmap: base,
			InodeBitmap: base + 1,
			InodeTable:  base + 2,
		}
	}
	// Initialize bitmaps: mark metadata blocks used, everything else
	// free; mark out-of-range tail blocks of the last group used.
	for g := range f.groups {
		gd := &f.groups[g]
		gstart := uint32(1) + uint32(g)*BlocksPerGroup
		gend := gstart + BlocksPerGroup
		if gend > blocks {
			gend = blocks
		}
		metaEnd := gd.InodeTable + inodeTableBlocks
		free := uint32(0)
		bitmap := make([]byte, BlockSize)
		for blk := gstart; blk < gstart+BlocksPerGroup; blk++ {
			idx := blk - gstart
			used := blk < metaEnd || blk >= gend
			if g == 0 && blk < 3 {
				used = true
			}
			if used {
				bitmap[idx/8] |= 1 << (idx % 8)
			} else {
				free++
			}
		}
		gd.FreeBlocks = free
		gd.FreeInodes = InodesPerGroup
		f.sb.FreeBlocks += free
		f.sb.FreeInodes += InodesPerGroup
		if err := bc.WriteBlock(p, f.diskBlock(gd.BlockBitmap), bitmap, trace.OriginMeta); err != nil {
			return nil, err
		}
		if err := bc.WriteBlock(p, f.diskBlock(gd.InodeBitmap), make([]byte, BlockSize), trace.OriginMeta); err != nil {
			return nil, err
		}
		// Zero the inode table.
		zero := make([]byte, BlockSize)
		for b := uint32(0); b < inodeTableBlocks; b++ {
			if err := bc.WriteBlock(p, f.diskBlock(gd.InodeTable+b), zero, trace.OriginMeta); err != nil {
				return nil, err
			}
		}
	}
	// Reserve inode 1 and create the root directory as inode 2.
	if _, err := f.allocInodeIn(p, 0); err != nil { // ino 1, reserved
		return nil, err
	}
	rootIno, err := f.allocInodeIn(p, 0)
	if err != nil {
		return nil, err
	}
	if rootIno != RootIno {
		return nil, fmt.Errorf("extfs: root allocated as inode %d", rootIno)
	}
	root := inode{Mode: ModeDir, Links: 2, Mtime: uint32(p.Now().Seconds())}
	if err := f.writeInode(p, rootIno, &root); err != nil {
		return nil, err
	}
	if err := f.flushSuper(p); err != nil {
		return nil, err
	}
	return f, nil
}

// Mount reads an existing filesystem's metadata from disk.
func Mount(p *sim.Proc, bc *buffercache.Cache, startBlock uint32) (*FS, error) {
	f := &FS{e: p.Engine(), bc: bc, startBlock: startBlock}
	blk, err := f.readBlock(p, 1, trace.OriginMeta)
	if err != nil {
		return nil, err
	}
	f.sb.unmarshal(blk)
	if f.sb.Magic != Magic {
		return nil, fmt.Errorf("extfs: bad magic 0x%x at block %d", f.sb.Magic, startBlock+1)
	}
	gdBlk, err := f.readBlock(p, 2, trace.OriginMeta)
	if err != nil {
		return nil, err
	}
	if int(f.sb.GroupCount)*gdBytes > BlockSize {
		return nil, fmt.Errorf("extfs: %d groups exceed descriptor block", f.sb.GroupCount)
	}
	f.groups = make([]groupDesc, f.sb.GroupCount)
	for g := range f.groups {
		f.groups[g].unmarshal(gdBlk[g*gdBytes:])
	}
	return f, nil
}

// flushSuper writes the superblock and group descriptors.
func (f *FS) flushSuper(p *sim.Proc) error {
	sbBuf := make([]byte, BlockSize)
	f.sb.marshal(sbBuf)
	if err := f.bc.WriteBlock(p, f.diskBlock(1), sbBuf, trace.OriginMeta); err != nil {
		return err
	}
	gdBuf := make([]byte, BlockSize)
	for g := range f.groups {
		f.groups[g].marshal(gdBuf[g*gdBytes:])
	}
	return f.bc.WriteBlock(p, f.diskBlock(2), gdBuf, trace.OriginMeta)
}

// Sync flushes metadata and all dirty buffers to disk.
func (f *FS) Sync(p *sim.Proc) error {
	if err := f.flushSuper(p); err != nil {
		return err
	}
	return f.bc.Sync(p)
}

// FreeBlocks reports the count of free data blocks.
func (f *FS) FreeBlocks() uint32 { return f.sb.FreeBlocks }

// FreeInodes reports the count of free inodes.
func (f *FS) FreeInodes() uint32 { return f.sb.FreeInodes }

// Groups reports the number of block groups.
func (f *FS) Groups() int { return len(f.groups) }

// LastGroup returns the index of the final block group, the placement hint
// used to pin /var/log at high sector numbers.
func (f *FS) LastGroup() int { return len(f.groups) - 1 }

// ReadAheadWindow reports the buffer cache's read-ahead limit in blocks,
// which the VFS consults when sizing sequential prefetch.
func (f *FS) ReadAheadWindow() int { return f.bc.ReadAhead() }

// BlockToSector converts an fs block number to an absolute disk sector.
func (f *FS) BlockToSector(fsBlock uint32) uint32 {
	return (f.startBlock + fsBlock) * buffercache.SectorsPerBlock
}
