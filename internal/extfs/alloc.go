package extfs

import (
	"fmt"

	"essio/internal/sim"
	"essio/internal/trace"
)

// allocInodeIn allocates an inode, preferring the given group and scanning
// forward (wrapping) from it. Inode numbers are 1-based.
func (f *FS) allocInodeIn(p *sim.Proc, group int) (uint32, error) {
	if f.sb.FreeInodes == 0 {
		return 0, fmt.Errorf("extfs: out of inodes")
	}
	n := len(f.groups)
	for i := 0; i < n; i++ {
		g := (group + i) % n
		gd := &f.groups[g]
		if gd.FreeInodes == 0 {
			continue
		}
		var found uint32
		err := f.updateBlock(p, gd.InodeBitmap, trace.OriginMeta, func(bm []byte) {
			for idx := uint32(0); idx < InodesPerGroup; idx++ {
				if bm[idx/8]&(1<<(idx%8)) == 0 {
					bm[idx/8] |= 1 << (idx % 8)
					found = uint32(g)*InodesPerGroup + idx + 1
					return
				}
			}
		})
		if err != nil {
			return 0, err
		}
		if found != 0 {
			gd.FreeInodes--
			f.sb.FreeInodes--
			return found, nil
		}
	}
	return 0, fmt.Errorf("extfs: inode bitmaps inconsistent with superblock")
}

// freeInode releases an inode number.
func (f *FS) freeInode(p *sim.Proc, ino uint32) error {
	g, idx, err := f.inodeLoc(ino)
	if err != nil {
		return err
	}
	gd := &f.groups[g]
	cleared := false
	err = f.updateBlock(p, gd.InodeBitmap, trace.OriginMeta, func(bm []byte) {
		if bm[idx/8]&(1<<(idx%8)) != 0 {
			bm[idx/8] &^= 1 << (idx % 8)
			cleared = true
		}
	})
	if err != nil {
		return err
	}
	if !cleared {
		return fmt.Errorf("extfs: double free of inode %d", ino)
	}
	gd.FreeInodes++
	f.sb.FreeInodes++
	return nil
}

// inodeLoc maps an inode number to (group, index-within-group).
func (f *FS) inodeLoc(ino uint32) (int, uint32, error) {
	if ino == 0 || ino > uint32(len(f.groups))*InodesPerGroup {
		return 0, 0, fmt.Errorf("extfs: inode %d out of range", ino)
	}
	return int((ino - 1) / InodesPerGroup), (ino - 1) % InodesPerGroup, nil
}

// allocBlockNear allocates one data block, preferring the given group.
func (f *FS) allocBlockNear(p *sim.Proc, group int) (uint32, error) {
	if f.sb.FreeBlocks == 0 {
		return 0, fmt.Errorf("extfs: out of blocks")
	}
	n := len(f.groups)
	for i := 0; i < n; i++ {
		g := (group + i) % n
		gd := &f.groups[g]
		if gd.FreeBlocks == 0 {
			continue
		}
		var found uint32
		err := f.updateBlock(p, gd.BlockBitmap, trace.OriginMeta, func(bm []byte) {
			for idx := uint32(0); idx < BlocksPerGroup; idx++ {
				if bm[idx/8]&(1<<(idx%8)) == 0 {
					bm[idx/8] |= 1 << (idx % 8)
					found = uint32(1) + uint32(g)*BlocksPerGroup + idx
					return
				}
			}
		})
		if err != nil {
			return 0, err
		}
		if found != 0 {
			gd.FreeBlocks--
			f.sb.FreeBlocks--
			return found, nil
		}
	}
	return 0, fmt.Errorf("extfs: block bitmaps inconsistent with superblock")
}

// freeBlock releases a data block.
func (f *FS) freeBlock(p *sim.Proc, blk uint32) error {
	if blk < 1 || blk >= f.sb.BlocksCount {
		return fmt.Errorf("extfs: block %d out of range", blk)
	}
	g := int((blk - 1) / BlocksPerGroup)
	idx := (blk - 1) % BlocksPerGroup
	gd := &f.groups[g]
	cleared := false
	err := f.updateBlock(p, gd.BlockBitmap, trace.OriginMeta, func(bm []byte) {
		if bm[idx/8]&(1<<(idx%8)) != 0 {
			bm[idx/8] &^= 1 << (idx % 8)
			cleared = true
		}
	})
	if err != nil {
		return err
	}
	if !cleared {
		return fmt.Errorf("extfs: double free of block %d", blk)
	}
	gd.FreeBlocks++
	f.sb.FreeBlocks++
	return nil
}
