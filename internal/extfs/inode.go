package extfs

import (
	"encoding/binary"
	"fmt"

	"essio/internal/sim"
	"essio/internal/trace"
)

// inode is the in-memory form of an on-disk inode.
type inode struct {
	Mode  Mode
	Links uint16
	Size  uint32
	Mtime uint32
	Group uint16 // preferred allocation group for this inode's data
	// Block pointers: NumDirect direct, then single-indirect, then
	// double-indirect.
	Block [NumDirect + 2]uint32
}

func (in *inode) marshal(b []byte) {
	binary.LittleEndian.PutUint16(b[0:], uint16(in.Mode))
	binary.LittleEndian.PutUint16(b[2:], in.Links)
	binary.LittleEndian.PutUint32(b[4:], in.Size)
	binary.LittleEndian.PutUint32(b[8:], in.Mtime)
	binary.LittleEndian.PutUint16(b[12:], in.Group)
	for i, blk := range in.Block {
		binary.LittleEndian.PutUint32(b[16+4*i:], blk)
	}
}

func (in *inode) unmarshal(b []byte) {
	in.Mode = Mode(binary.LittleEndian.Uint16(b[0:]))
	in.Links = binary.LittleEndian.Uint16(b[2:])
	in.Size = binary.LittleEndian.Uint32(b[4:])
	in.Mtime = binary.LittleEndian.Uint32(b[8:])
	in.Group = binary.LittleEndian.Uint16(b[12:])
	for i := range in.Block {
		in.Block[i] = binary.LittleEndian.Uint32(b[16+4*i:])
	}
}

// inodeBlockPos locates the block and byte offset of an inode within its
// group's inode table.
func (f *FS) inodeBlockPos(ino uint32) (blk uint32, off int, err error) {
	g, idx, err := f.inodeLoc(ino)
	if err != nil {
		return 0, 0, err
	}
	gd := &f.groups[g]
	return gd.InodeTable + idx/inodesPerBlock, int(idx%inodesPerBlock) * InodeSize, nil
}

// readInode loads an inode from disk.
func (f *FS) readInode(p *sim.Proc, ino uint32) (*inode, error) {
	blk, off, err := f.inodeBlockPos(ino)
	if err != nil {
		return nil, err
	}
	data, err := f.readBlock(p, blk, trace.OriginMeta)
	if err != nil {
		return nil, err
	}
	in := &inode{}
	in.unmarshal(data[off : off+InodeSize])
	return in, nil
}

// writeInode stores an inode.
func (f *FS) writeInode(p *sim.Proc, ino uint32, in *inode) error {
	blk, off, err := f.inodeBlockPos(ino)
	if err != nil {
		return err
	}
	return f.updateBlock(p, blk, trace.OriginMeta, func(data []byte) {
		in.marshal(data[off : off+InodeSize])
	})
}

// Stat describes a file for callers outside the package.
type Stat struct {
	Ino   uint32
	Mode  Mode
	Links uint16
	Size  int64
	Mtime uint32
}

// Stat returns metadata for an inode.
func (f *FS) Stat(p *sim.Proc, ino uint32) (Stat, error) {
	in, err := f.readInode(p, ino)
	if err != nil {
		return Stat{}, err
	}
	if in.Mode == ModeFree {
		return Stat{}, fmt.Errorf("extfs: stat of free inode %d", ino)
	}
	return Stat{Ino: ino, Mode: in.Mode, Links: in.Links, Size: int64(in.Size), Mtime: in.Mtime}, nil
}

// mapBlock returns the fs block holding file block n of the inode,
// allocating the chain if alloc is set. fresh reports that the returned
// data block was allocated by this call (its on-disk contents are garbage,
// so callers must initialize it in the cache rather than read it). Returns
// 0 for unmapped holes when alloc is false.
func (f *FS) mapBlock(p *sim.Proc, in *inode, n uint32, alloc bool) (blk uint32, fresh bool, err error) {
	if n >= maxFileBlocks {
		return 0, false, fmt.Errorf("extfs: file block %d beyond maximum", n)
	}
	hint := int(in.Group)
	// Direct.
	if n < NumDirect {
		if in.Block[n] == 0 && alloc {
			blk, err := f.allocBlockNear(p, hint)
			if err != nil {
				return 0, false, err
			}
			in.Block[n] = blk
			return blk, true, nil
		}
		return in.Block[n], false, nil
	}
	n -= NumDirect
	// Single indirect.
	if n < ptrsPerBlock {
		ind := in.Block[NumDirect]
		if ind == 0 {
			if !alloc {
				return 0, false, nil
			}
			blk, err := f.allocZeroedBlock(p, hint)
			if err != nil {
				return 0, false, err
			}
			in.Block[NumDirect] = blk
			ind = blk
		}
		return f.indirectEntry(p, ind, n, alloc, hint)
	}
	n -= ptrsPerBlock
	// Double indirect.
	dbl := in.Block[NumDirect+1]
	if dbl == 0 {
		if !alloc {
			return 0, false, nil
		}
		blk, err := f.allocZeroedBlock(p, hint)
		if err != nil {
			return 0, false, err
		}
		in.Block[NumDirect+1] = blk
		dbl = blk
	}
	outer := n / ptrsPerBlock
	inner := n % ptrsPerBlock
	ind, _, err := f.indirectEntry(p, dbl, outer, alloc, hint)
	if err != nil || ind == 0 {
		return ind, false, err
	}
	return f.indirectEntry(p, ind, inner, alloc, hint)
}

// allocZeroedBlock allocates a block and zeroes it (for indirect blocks,
// whose stale contents would be interpreted as pointers).
func (f *FS) allocZeroedBlock(p *sim.Proc, hint int) (uint32, error) {
	blk, err := f.allocBlockNear(p, hint)
	if err != nil {
		return 0, err
	}
	if err := f.bc.WriteBlock(p, f.diskBlock(blk), make([]byte, BlockSize), trace.OriginMeta); err != nil {
		return 0, err
	}
	return blk, nil
}

// indirectEntry reads (and optionally allocates) entry idx of an indirect
// block. When allocating an entry for a *pointer* block (double-indirect
// interior), callers pass the result back through indirectEntry, so zeroing
// is handled by allocZeroedBlock at each level via this helper's alloc path
// allocating plain data blocks only at the leaf level; interior allocations
// happen in mapBlock.
func (f *FS) indirectEntry(p *sim.Proc, indBlock, idx uint32, alloc bool, hint int) (uint32, bool, error) {
	data, err := f.readBlock(p, indBlock, trace.OriginMeta)
	if err != nil {
		return 0, false, err
	}
	got := binary.LittleEndian.Uint32(data[4*idx:])
	if got != 0 || !alloc {
		return got, false, nil
	}
	blk, err := f.allocBlockNear(p, hint)
	if err != nil {
		return 0, false, err
	}
	err = f.updateBlock(p, indBlock, trace.OriginMeta, func(data []byte) {
		binary.LittleEndian.PutUint32(data[4*idx:], blk)
	})
	if err != nil {
		return 0, false, err
	}
	return blk, true, nil
}

// BlockOfFile reports the absolute disk sector backing byte offset off of
// the file, or 0 if that offset is a hole. The VM uses this to page
// executables directly from their files.
func (f *FS) BlockOfFile(p *sim.Proc, ino uint32, off int64) (uint32, error) {
	in, err := f.readInode(p, ino)
	if err != nil {
		return 0, err
	}
	blk, _, err := f.mapBlock(p, in, uint32(off/BlockSize), false)
	if err != nil || blk == 0 {
		return 0, err
	}
	return f.BlockToSector(blk), nil
}

// forEachBlock iterates over all mapped blocks of an inode, including its
// indirect pointer blocks (invoked with meta=true), calling fn for each.
// Used by truncate/unlink to free everything.
func (f *FS) forEachBlock(p *sim.Proc, in *inode, fn func(blk uint32, meta bool) error) error {
	for i := 0; i < NumDirect; i++ {
		if in.Block[i] != 0 {
			if err := fn(in.Block[i], false); err != nil {
				return err
			}
		}
	}
	visitInd := func(ind uint32) error {
		data, err := f.readBlock(p, ind, trace.OriginMeta)
		if err != nil {
			return err
		}
		ptrs := make([]uint32, ptrsPerBlock)
		for i := range ptrs {
			ptrs[i] = binary.LittleEndian.Uint32(data[4*i:])
		}
		for _, blk := range ptrs {
			if blk != 0 {
				if err := fn(blk, false); err != nil {
					return err
				}
			}
		}
		return fn(ind, true)
	}
	if ind := in.Block[NumDirect]; ind != 0 {
		if err := visitInd(ind); err != nil {
			return err
		}
	}
	if dbl := in.Block[NumDirect+1]; dbl != 0 {
		data, err := f.readBlock(p, dbl, trace.OriginMeta)
		if err != nil {
			return err
		}
		inds := make([]uint32, ptrsPerBlock)
		for i := range inds {
			inds[i] = binary.LittleEndian.Uint32(data[4*i:])
		}
		for _, ind := range inds {
			if ind != 0 {
				if err := visitInd(ind); err != nil {
					return err
				}
			}
		}
		if err := fn(dbl, true); err != nil {
			return err
		}
	}
	return nil
}
