package extfs

import (
	"encoding/binary"
	"fmt"
	"strings"

	"essio/internal/sim"
	"essio/internal/trace"
)

// Directory entries are packed into directory blocks ext2-style: a 8-byte
// header (inode, record length, name length, type) followed by the name,
// with record lengths chaining entries through the block. A zero inode
// marks reusable free space.
const direntHeader = 8

func direntNeed(name string) int { return (direntHeader + len(name) + 3) &^ 3 }

// DirEntry is one name in a directory.
type DirEntry struct {
	Name string
	Ino  uint32
	Mode Mode
}

func putDirent(b []byte, ino uint32, reclen int, name string, mode Mode) {
	binary.LittleEndian.PutUint32(b[0:], ino)
	binary.LittleEndian.PutUint16(b[4:], uint16(reclen))
	b[6] = byte(len(name))
	b[7] = byte(mode)
	copy(b[direntHeader:], name)
}

// Lookup resolves an absolute path to an inode number.
func (f *FS) Lookup(p *sim.Proc, path string) (uint32, error) {
	ino, _, _, err := f.namei(p, path, false)
	return ino, err
}

// namei walks path. If wantParent is set, it resolves the parent directory
// and returns (0 or child ino, parent ino, last component).
func (f *FS) namei(p *sim.Proc, path string, wantParent bool) (ino, parent uint32, last string, err error) {
	if !strings.HasPrefix(path, "/") {
		return 0, 0, "", fmt.Errorf("extfs: path %q not absolute", path)
	}
	parts := make([]string, 0, 8)
	for _, c := range strings.Split(path, "/") {
		if c != "" && c != "." {
			parts = append(parts, c)
		}
	}
	cur := uint32(RootIno)
	parent = RootIno
	for i, comp := range parts {
		if len(comp) > 255 {
			return 0, 0, "", fmt.Errorf("extfs: component %q too long", comp)
		}
		lastComp := i == len(parts)-1
		child, _, err := f.findEntry(p, cur, comp)
		if err != nil {
			return 0, 0, "", err
		}
		if lastComp {
			if wantParent {
				return child, cur, comp, nil
			}
			if child == 0 {
				return 0, 0, "", fmt.Errorf("extfs: %q not found", path)
			}
			return child, cur, comp, nil
		}
		if child == 0 {
			return 0, 0, "", fmt.Errorf("extfs: %q not found", path)
		}
		in, err := f.readInode(p, child)
		if err != nil {
			return 0, 0, "", err
		}
		if in.Mode != ModeDir {
			return 0, 0, "", fmt.Errorf("extfs: %q is not a directory", comp)
		}
		cur = child
	}
	if len(parts) == 0 {
		if wantParent {
			return RootIno, RootIno, "", nil
		}
		return RootIno, RootIno, "", nil
	}
	return cur, parent, last, nil
}

// findEntry scans a directory for name, returning (ino, file-block index).
func (f *FS) findEntry(p *sim.Proc, dirIno uint32, name string) (uint32, uint32, error) {
	din, err := f.readInode(p, dirIno)
	if err != nil {
		return 0, 0, err
	}
	if din.Mode != ModeDir {
		return 0, 0, fmt.Errorf("extfs: inode %d is not a directory", dirIno)
	}
	nblocks := din.Size / BlockSize
	for fb := uint32(0); fb < nblocks; fb++ {
		blk, _, err := f.mapBlock(p, din, fb, false)
		if err != nil {
			return 0, 0, err
		}
		if blk == 0 {
			continue
		}
		data, err := f.readBlock(p, blk, trace.OriginMeta)
		if err != nil {
			return 0, 0, err
		}
		for off := 0; off+direntHeader <= BlockSize; {
			ino := binary.LittleEndian.Uint32(data[off:])
			reclen := int(binary.LittleEndian.Uint16(data[off+4:]))
			if reclen < direntHeader {
				break
			}
			nl := int(data[off+6])
			if ino != 0 && nl == len(name) && string(data[off+direntHeader:off+direntHeader+nl]) == name {
				return ino, fb, nil
			}
			off += reclen
		}
	}
	return 0, 0, nil
}

// addEntry inserts (name, ino) into directory dirIno.
func (f *FS) addEntry(p *sim.Proc, dirIno uint32, name string, ino uint32, mode Mode) error {
	if name == "" || len(name) > 255 {
		return fmt.Errorf("extfs: bad entry name %q", name)
	}
	din, err := f.readInode(p, dirIno)
	if err != nil {
		return err
	}
	need := direntNeed(name)
	nblocks := din.Size / BlockSize
	for fb := uint32(0); fb < nblocks; fb++ {
		blk, _, err := f.mapBlock(p, din, fb, false)
		if err != nil {
			return err
		}
		if blk == 0 {
			continue
		}
		inserted := false
		err = f.updateBlock(p, blk, trace.OriginMeta, func(data []byte) {
			for off := 0; off+direntHeader <= BlockSize; {
				entIno := binary.LittleEndian.Uint32(data[off:])
				reclen := int(binary.LittleEndian.Uint16(data[off+4:]))
				if reclen < direntHeader {
					return
				}
				if entIno == 0 && reclen >= need {
					putDirent(data[off:], ino, reclen, name, mode)
					inserted = true
					return
				}
				if entIno != 0 {
					nl := int(data[off+6])
					ideal := (direntHeader + nl + 3) &^ 3
					if reclen-ideal >= need {
						binary.LittleEndian.PutUint16(data[off+4:], uint16(ideal))
						putDirent(data[off+ideal:], ino, reclen-ideal, name, mode)
						inserted = true
						return
					}
				}
				off += reclen
			}
		})
		if err != nil {
			return err
		}
		if inserted {
			return nil
		}
	}
	// No room: append a fresh directory block.
	blk, _, err := f.mapBlock(p, din, nblocks, true)
	if err != nil {
		return err
	}
	buf := make([]byte, BlockSize)
	putDirent(buf, ino, BlockSize, name, mode)
	if err := f.bc.WriteBlock(p, f.diskBlock(blk), buf, trace.OriginMeta); err != nil {
		return err
	}
	din.Size += BlockSize
	din.Mtime = uint32(p.Now().Seconds())
	return f.writeInode(p, dirIno, din)
}

// removeEntry deletes name from directory dirIno, returning the inode it
// referenced.
func (f *FS) removeEntry(p *sim.Proc, dirIno uint32, name string) (uint32, error) {
	din, err := f.readInode(p, dirIno)
	if err != nil {
		return 0, err
	}
	nblocks := din.Size / BlockSize
	for fb := uint32(0); fb < nblocks; fb++ {
		blk, _, err := f.mapBlock(p, din, fb, false)
		if err != nil {
			return 0, err
		}
		if blk == 0 {
			continue
		}
		var removed uint32
		err = f.updateBlock(p, blk, trace.OriginMeta, func(data []byte) {
			for off := 0; off+direntHeader <= BlockSize; {
				entIno := binary.LittleEndian.Uint32(data[off:])
				reclen := int(binary.LittleEndian.Uint16(data[off+4:]))
				if reclen < direntHeader {
					return
				}
				nl := int(data[off+6])
				if entIno != 0 && nl == len(name) && string(data[off+direntHeader:off+direntHeader+nl]) == name {
					binary.LittleEndian.PutUint32(data[off:], 0)
					removed = entIno
					return
				}
				off += reclen
			}
		})
		if err != nil {
			return 0, err
		}
		if removed != 0 {
			return removed, nil
		}
	}
	return 0, fmt.Errorf("extfs: entry %q not found", name)
}

// Readdir lists a directory.
func (f *FS) Readdir(p *sim.Proc, dirIno uint32) ([]DirEntry, error) {
	din, err := f.readInode(p, dirIno)
	if err != nil {
		return nil, err
	}
	if din.Mode != ModeDir {
		return nil, fmt.Errorf("extfs: inode %d is not a directory", dirIno)
	}
	var out []DirEntry
	nblocks := din.Size / BlockSize
	for fb := uint32(0); fb < nblocks; fb++ {
		blk, _, err := f.mapBlock(p, din, fb, false)
		if err != nil {
			return nil, err
		}
		if blk == 0 {
			continue
		}
		data, err := f.readBlock(p, blk, trace.OriginMeta)
		if err != nil {
			return nil, err
		}
		for off := 0; off+direntHeader <= BlockSize; {
			ino := binary.LittleEndian.Uint32(data[off:])
			reclen := int(binary.LittleEndian.Uint16(data[off+4:]))
			if reclen < direntHeader {
				break
			}
			if ino != 0 {
				nl := int(data[off+6])
				out = append(out, DirEntry{
					Name: string(data[off+direntHeader : off+direntHeader+nl]),
					Ino:  ino,
					Mode: Mode(data[off+7]),
				})
			}
			off += reclen
		}
	}
	return out, nil
}

// Create makes a regular file at path (parent must exist) and returns its
// inode. Data blocks prefer the parent's group.
func (f *FS) Create(p *sim.Proc, path string) (uint32, error) {
	return f.CreateIn(p, path, -1)
}

// CreateIn makes a regular file whose data is allocated in the given block
// group (-1 means inherit the parent's group). Pinning files into specific
// groups is how the node image places /var/log at high sector numbers.
func (f *FS) CreateIn(p *sim.Proc, path string, group int) (uint32, error) {
	existing, parent, name, err := f.namei(p, path, true)
	if err != nil {
		return 0, err
	}
	if existing != 0 {
		return 0, fmt.Errorf("extfs: %q already exists", path)
	}
	if name == "" {
		return 0, fmt.Errorf("extfs: cannot create root")
	}
	if group < 0 {
		pg, _, err := f.inodeLoc(parent)
		if err != nil {
			return 0, err
		}
		group = pg
	}
	if group >= len(f.groups) {
		group = len(f.groups) - 1
	}
	ino, err := f.allocInodeIn(p, group)
	if err != nil {
		return 0, err
	}
	in := inode{Mode: ModeFile, Links: 1, Mtime: uint32(p.Now().Seconds()), Group: uint16(group)}
	if err := f.writeInode(p, ino, &in); err != nil {
		return 0, err
	}
	if err := f.addEntry(p, parent, name, ino, ModeFile); err != nil {
		return 0, err
	}
	return ino, nil
}

// Mkdir creates a directory at path.
func (f *FS) Mkdir(p *sim.Proc, path string) (uint32, error) {
	existing, parent, name, err := f.namei(p, path, true)
	if err != nil {
		return 0, err
	}
	if existing != 0 {
		return 0, fmt.Errorf("extfs: %q already exists", path)
	}
	if name == "" {
		return 0, fmt.Errorf("extfs: cannot create root")
	}
	pg, _, err := f.inodeLoc(parent)
	if err != nil {
		return 0, err
	}
	ino, err := f.allocInodeIn(p, pg)
	if err != nil {
		return 0, err
	}
	in := inode{Mode: ModeDir, Links: 2, Mtime: uint32(p.Now().Seconds()), Group: uint16(pg)}
	if err := f.writeInode(p, ino, &in); err != nil {
		return 0, err
	}
	if err := f.addEntry(p, parent, name, ino, ModeDir); err != nil {
		return 0, err
	}
	return ino, nil
}

// Unlink removes a regular file: drops its directory entry and, when the
// link count reaches zero, frees its blocks and inode.
func (f *FS) Unlink(p *sim.Proc, path string) error {
	ino, parent, name, err := f.namei(p, path, true)
	if err != nil {
		return err
	}
	if ino == 0 {
		return fmt.Errorf("extfs: %q not found", path)
	}
	in, err := f.readInode(p, ino)
	if err != nil {
		return err
	}
	if in.Mode != ModeFile {
		return fmt.Errorf("extfs: unlink of non-file %q", path)
	}
	if _, err := f.removeEntry(p, parent, name); err != nil {
		return err
	}
	if in.Links > 0 {
		in.Links--
	}
	if in.Links == 0 {
		if err := f.truncateInode(p, in); err != nil {
			return err
		}
		in.Mode = ModeFree
		if err := f.writeInode(p, ino, in); err != nil {
			return err
		}
		return f.freeInode(p, ino)
	}
	return f.writeInode(p, ino, in)
}
