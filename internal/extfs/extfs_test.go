package extfs

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"essio/internal/blockio"
	"essio/internal/buffercache"
	"essio/internal/disk"
	"essio/internal/driver"
	"essio/internal/sim"
	"essio/internal/trace"
)

// testBlocks gives a 3-group (24 MB) filesystem, large enough to exercise
// cross-group allocation but quick to format.
const testBlocks = 3 * BlocksPerGroup

type rig struct {
	e    *sim.Engine
	disk *disk.Disk
	bc   *buffercache.Cache
	fs   *FS
}

func newRig(t *testing.T) *rig {
	t.Helper()
	e := sim.NewEngine(1)
	t.Cleanup(e.Close)
	d := disk.New(e, disk.DefaultParams())
	q := blockio.New(e)
	drv := driver.New(e, d, q, 0, trace.NewRing(1<<18))
	drv.SetLevel(driver.LevelOff)
	bc := buffercache.New(e, q, 2048)
	r := &rig{e: e, disk: d, bc: bc}
	r.run(t, func(p *sim.Proc) {
		fs, err := Mkfs(p, bc, 0, testBlocks)
		if err != nil {
			t.Fatalf("mkfs: %v", err)
		}
		r.fs = fs
	})
	return r
}

func (r *rig) run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	r.e.Spawn("test", fn)
	r.e.RunUntilIdle()
}

func TestMkfsAndMountRoundTrip(t *testing.T) {
	r := newRig(t)
	if r.fs.Groups() != 3 {
		t.Fatalf("Groups = %d, want 3", r.fs.Groups())
	}
	freeBlocks, freeInodes := r.fs.FreeBlocks(), r.fs.FreeInodes()
	r.run(t, func(p *sim.Proc) {
		if err := r.fs.Sync(p); err != nil {
			t.Fatal(err)
		}
		m, err := Mount(p, r.bc, 0)
		if err != nil {
			t.Fatalf("mount: %v", err)
		}
		if m.FreeBlocks() != freeBlocks || m.FreeInodes() != freeInodes {
			t.Fatalf("mounted free counts %d/%d, want %d/%d",
				m.FreeBlocks(), m.FreeInodes(), freeBlocks, freeInodes)
		}
		st, err := m.Stat(p, RootIno)
		if err != nil {
			t.Fatal(err)
		}
		if st.Mode != ModeDir {
			t.Fatalf("root mode = %d", st.Mode)
		}
	})
}

func TestMountBadMagic(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Close()
	d := disk.New(e, disk.DefaultParams())
	q := blockio.New(e)
	drv := driver.New(e, d, q, 0, trace.NewRing(16))
	drv.SetLevel(driver.LevelOff)
	bc := buffercache.New(e, q, 64)
	e.Spawn("t", func(p *sim.Proc) {
		if _, err := Mount(p, bc, 0); err == nil {
			t.Error("mount of unformatted disk must fail")
		}
	})
	e.RunUntilIdle()
}

func TestCreateLookupWriteRead(t *testing.T) {
	r := newRig(t)
	payload := []byte("hello, beowulf")
	r.run(t, func(p *sim.Proc) {
		ino, err := r.fs.Create(p, "/data.txt")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.fs.WriteAt(p, ino, 0, payload, trace.OriginData); err != nil {
			t.Fatal(err)
		}
		got, err := r.fs.Lookup(p, "/data.txt")
		if err != nil || got != ino {
			t.Fatalf("Lookup = %d, %v; want %d", got, err, ino)
		}
		buf := make([]byte, 100)
		n, err := r.fs.ReadAt(p, ino, 0, buf, trace.OriginData)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(payload) || !bytes.Equal(buf[:n], payload) {
			t.Fatalf("read %q (%d bytes)", buf[:n], n)
		}
		st, err := r.fs.Stat(p, ino)
		if err != nil || st.Size != int64(len(payload)) {
			t.Fatalf("Stat = %+v, %v", st, err)
		}
	})
}

func TestSubdirectories(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		if _, err := r.fs.Mkdir(p, "/var"); err != nil {
			t.Fatal(err)
		}
		if _, err := r.fs.Mkdir(p, "/var/log"); err != nil {
			t.Fatal(err)
		}
		ino, err := r.fs.Create(p, "/var/log/messages")
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.fs.Lookup(p, "/var/log/messages")
		if err != nil || got != ino {
			t.Fatalf("Lookup = %d, %v", got, err)
		}
		ents, err := r.fs.Readdir(p, RootIno)
		if err != nil {
			t.Fatal(err)
		}
		if len(ents) != 1 || ents[0].Name != "var" || ents[0].Mode != ModeDir {
			t.Fatalf("root entries = %v", ents)
		}
	})
}

func TestLookupErrors(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		if _, err := r.fs.Lookup(p, "/missing"); err == nil {
			t.Error("want error for missing file")
		}
		if _, err := r.fs.Lookup(p, "relative"); err == nil {
			t.Error("want error for relative path")
		}
		if _, err := r.fs.Create(p, "/a/b/c"); err == nil {
			t.Error("want error creating under missing parent")
		}
		if _, err := r.fs.Create(p, "/"); err == nil {
			t.Error("want error creating root")
		}
		ino, err := r.fs.Create(p, "/f")
		if err != nil {
			t.Fatal(err)
		}
		_ = ino
		if _, err := r.fs.Create(p, "/f"); err == nil {
			t.Error("want error creating existing file")
		}
		if _, err := r.fs.Lookup(p, "/f/x"); err == nil {
			t.Error("want error traversing through file")
		}
	})
}

func TestLargeFileIndirectBlocks(t *testing.T) {
	r := newRig(t)
	// 300 KB spans direct (12 KB), single indirect (+256 KB), and the
	// start of the double indirect range.
	const size = 300 * 1024
	in := make([]byte, size)
	rng := rand.New(rand.NewSource(4))
	rng.Read(in)
	r.run(t, func(p *sim.Proc) {
		ino, err := r.fs.Create(p, "/big")
		if err != nil {
			t.Fatal(err)
		}
		if n, err := r.fs.WriteAt(p, ino, 0, in, trace.OriginData); err != nil || n != size {
			t.Fatalf("WriteAt = %d, %v", n, err)
		}
		out := make([]byte, size)
		if n, err := r.fs.ReadAt(p, ino, 0, out, trace.OriginData); err != nil || n != size {
			t.Fatalf("ReadAt = %d, %v", n, err)
		}
		if !bytes.Equal(in, out) {
			t.Fatal("large file round trip mismatch")
		}
	})
}

func TestPersistenceAcrossRemount(t *testing.T) {
	r := newRig(t)
	payload := bytes.Repeat([]byte{0x42}, 5000)
	r.run(t, func(p *sim.Proc) {
		ino, err := r.fs.Create(p, "/persist")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.fs.WriteAt(p, ino, 0, payload, trace.OriginData); err != nil {
			t.Fatal(err)
		}
		if err := r.fs.Sync(p); err != nil {
			t.Fatal(err)
		}
	})
	// Remount through a *fresh* cache over the same disk, so every read
	// must come from the platters.
	q2 := blockio.New(r.e)
	drv2 := driver.New(r.e, r.disk, q2, 0, trace.NewRing(1<<16))
	drv2.SetLevel(driver.LevelOff)
	bc2 := buffercache.New(r.e, q2, 2048)
	r.run(t, func(p *sim.Proc) {
		m, err := Mount(p, bc2, 0)
		if err != nil {
			t.Fatal(err)
		}
		ino, err := m.Lookup(p, "/persist")
		if err != nil {
			t.Fatal(err)
		}
		out := make([]byte, len(payload))
		if n, err := m.ReadAt(p, ino, 0, out, trace.OriginData); err != nil || n != len(payload) {
			t.Fatalf("ReadAt = %d, %v", n, err)
		}
		if !bytes.Equal(out, payload) {
			t.Fatal("persisted data mismatch")
		}
	})
}

func TestHolesReadZero(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		ino, err := r.fs.Create(p, "/sparse")
		if err != nil {
			t.Fatal(err)
		}
		// Write 1 byte at 50 KB; everything before is a hole.
		if _, err := r.fs.WriteAt(p, ino, 50*1024, []byte{0xFF}, trace.OriginData); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 1024)
		for i := range buf {
			buf[i] = 0xAA
		}
		if n, err := r.fs.ReadAt(p, ino, 10*1024, buf, trace.OriginData); err != nil || n != len(buf) {
			t.Fatalf("ReadAt = %d, %v", n, err)
		}
		for i, b := range buf {
			if b != 0 {
				t.Fatalf("hole byte %d = %x", i, b)
			}
		}
	})
}

func TestReadPastEOF(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		ino, err := r.fs.Create(p, "/short")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.fs.WriteAt(p, ino, 0, []byte("abc"), trace.OriginData); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 10)
		n, err := r.fs.ReadAt(p, ino, 0, buf, trace.OriginData)
		if err != nil || n != 3 {
			t.Fatalf("read at 0 = %d, %v", n, err)
		}
		n, err = r.fs.ReadAt(p, ino, 100, buf, trace.OriginData)
		if err != nil || n != 0 {
			t.Fatalf("read past EOF = %d, %v", n, err)
		}
	})
}

func TestUnlinkFreesSpace(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		// Force the root directory's first block to exist before the
		// snapshot (directories never shrink).
		if _, err := r.fs.Create(p, "/anchor"); err != nil {
			t.Fatal(err)
		}
		freeB, freeI := r.fs.FreeBlocks(), r.fs.FreeInodes()
		ino, err := r.fs.Create(p, "/victim")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.fs.WriteAt(p, ino, 0, make([]byte, 64*1024), trace.OriginData); err != nil {
			t.Fatal(err)
		}
		if r.fs.FreeBlocks() >= freeB {
			t.Fatal("write did not consume blocks")
		}
		if err := r.fs.Unlink(p, "/victim"); err != nil {
			t.Fatal(err)
		}
		if r.fs.FreeBlocks() != freeB || r.fs.FreeInodes() != freeI {
			t.Fatalf("free counts %d/%d after unlink, want %d/%d",
				r.fs.FreeBlocks(), r.fs.FreeInodes(), freeB, freeI)
		}
		if _, err := r.fs.Lookup(p, "/victim"); err == nil {
			t.Fatal("unlinked file still resolvable")
		}
	})
}

func TestUnlinkDirectoryRejected(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		if _, err := r.fs.Mkdir(p, "/d"); err != nil {
			t.Fatal(err)
		}
		if err := r.fs.Unlink(p, "/d"); err == nil {
			t.Fatal("unlink of directory must fail")
		}
	})
}

func TestTruncate(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		ino, err := r.fs.Create(p, "/t")
		if err != nil {
			t.Fatal(err)
		}
		free := r.fs.FreeBlocks()
		if _, err := r.fs.WriteAt(p, ino, 0, make([]byte, 20*1024), trace.OriginData); err != nil {
			t.Fatal(err)
		}
		if err := r.fs.Truncate(p, ino); err != nil {
			t.Fatal(err)
		}
		if r.fs.FreeBlocks() != free {
			t.Fatalf("FreeBlocks = %d after truncate, want %d", r.fs.FreeBlocks(), free)
		}
		st, err := r.fs.Stat(p, ino)
		if err != nil || st.Size != 0 {
			t.Fatalf("Stat = %+v, %v", st, err)
		}
	})
}

func TestManyDirectoryEntries(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		names := map[string]uint32{}
		for i := 0; i < 200; i++ {
			name := "/file_" + string(rune('a'+i%26)) + string(rune('0'+i/26%10)) + string(rune('0'+i/260))
			if _, ok := names[name[1:]]; ok {
				continue
			}
			ino, err := r.fs.Create(p, name)
			if err != nil {
				t.Fatalf("create %q (#%d): %v", name, i, err)
			}
			names[name[1:]] = ino
		}
		ents, err := r.fs.Readdir(p, RootIno)
		if err != nil {
			t.Fatal(err)
		}
		if len(ents) != len(names) {
			t.Fatalf("Readdir = %d entries, want %d", len(ents), len(names))
		}
		for _, e := range ents {
			if names[e.Name] != e.Ino {
				t.Fatalf("entry %q -> %d, want %d", e.Name, e.Ino, names[e.Name])
			}
		}
	})
}

func TestDirentSlotReuse(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		if _, err := r.fs.Create(p, "/a"); err != nil {
			t.Fatal(err)
		}
		if _, err := r.fs.Create(p, "/b"); err != nil {
			t.Fatal(err)
		}
		if err := r.fs.Unlink(p, "/a"); err != nil {
			t.Fatal(err)
		}
		if _, err := r.fs.Create(p, "/c"); err != nil {
			t.Fatal(err)
		}
		ents, err := r.fs.Readdir(p, RootIno)
		if err != nil {
			t.Fatal(err)
		}
		if len(ents) != 2 {
			t.Fatalf("entries = %v", ents)
		}
	})
}

func TestCreateInLastGroupPlacesHighSectors(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		low, err := r.fs.Create(p, "/low")
		if err != nil {
			t.Fatal(err)
		}
		high, err := r.fs.CreateIn(p, "/high", r.fs.LastGroup())
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, 4096)
		if _, err := r.fs.WriteAt(p, low, 0, data, trace.OriginData); err != nil {
			t.Fatal(err)
		}
		if _, err := r.fs.WriteAt(p, high, 0, data, trace.OriginData); err != nil {
			t.Fatal(err)
		}
		lowSec, err := r.fs.BlockOfFile(p, low, 0)
		if err != nil {
			t.Fatal(err)
		}
		highSec, err := r.fs.BlockOfFile(p, high, 0)
		if err != nil {
			t.Fatal(err)
		}
		// The files must land in their respective block groups.
		groupOfSector := func(sec uint32) int {
			return int((sec/2 - 1) / BlocksPerGroup)
		}
		if g := groupOfSector(lowSec); g != 0 {
			t.Fatalf("low file in group %d (sector %d), want 0", g, lowSec)
		}
		if g := groupOfSector(highSec); g != r.fs.LastGroup() {
			t.Fatalf("high file in group %d (sector %d), want %d", g, highSec, r.fs.LastGroup())
		}
	})
}

func TestBlockOfFileAndFileSectors(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		ino, err := r.fs.Create(p, "/m")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.fs.WriteAt(p, ino, 0, make([]byte, 8*1024), trace.OriginData); err != nil {
			t.Fatal(err)
		}
		sec, err := r.fs.BlockOfFile(p, ino, 0)
		if err != nil || sec == 0 {
			t.Fatalf("BlockOfFile = %d, %v", sec, err)
		}
		secs, err := r.fs.FileSectors(p, ino, 0, 8)
		if err != nil {
			t.Fatal(err)
		}
		if len(secs) != 8 {
			t.Fatalf("FileSectors = %d entries, want 8", len(secs))
		}
		if secs[0] != sec {
			t.Fatalf("FileSectors[0] = %d, BlockOfFile = %d", secs[0], sec)
		}
		// A hole must be skipped.
		hole, err := r.fs.BlockOfFile(p, ino, 1<<20)
		if err != nil || hole != 0 {
			t.Fatalf("hole sector = %d, %v", hole, err)
		}
	})
}

// Property-style test: random offset writes tracked against a shadow buffer
// always read back identically.
func TestRandomWritesMatchShadow(t *testing.T) {
	r := newRig(t)
	const fileSize = 128 * 1024
	shadow := make([]byte, fileSize)
	rng := rand.New(rand.NewSource(11))
	r.run(t, func(p *sim.Proc) {
		ino, err := r.fs.Create(p, "/rand")
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 60; i++ {
			off := rng.Intn(fileSize - 4096)
			n := rng.Intn(4096) + 1
			chunk := make([]byte, n)
			rng.Read(chunk)
			if _, err := r.fs.WriteAt(p, ino, int64(off), chunk, trace.OriginData); err != nil {
				t.Fatal(err)
			}
			copy(shadow[off:off+n], chunk)
		}
		out := make([]byte, fileSize)
		n, err := r.fs.ReadAt(p, ino, 0, out, trace.OriginData)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out[:n], shadow[:n]) {
			t.Fatal("shadow mismatch")
		}
	})
}

func TestWriteToDirectoryRejected(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		if _, err := r.fs.WriteAt(p, RootIno, 0, []byte("x"), trace.OriginData); err == nil {
			t.Fatal("write to directory must fail")
		}
		if err := r.fs.Truncate(p, RootIno); err == nil {
			t.Fatal("truncate of directory must fail")
		}
	})
}

// Regression test: with a nonzero partition offset, partial-block writes
// must address the same disk blocks as full-block writes (a missing
// diskBlock() conversion once sent read-modify-writes to the wrong sectors).
func TestPartitionOffsetPartialWrites(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Close()
	d := disk.New(e, disk.DefaultParams())
	q := blockio.New(e)
	drv := driver.New(e, d, q, 0, trace.NewRing(1<<16))
	drv.SetLevel(driver.LevelOff)
	bc := buffercache.New(e, q, 2048)
	const startBlock = 53248 // fs begins 104 MB into the disk
	var fs *FS
	e.Spawn("t", func(p *sim.Proc) {
		var err error
		fs, err = Mkfs(p, bc, startBlock, testBlocks)
		if err != nil {
			t.Error(err)
			return
		}
		ino, err := fs.Create(p, "/log")
		if err != nil {
			t.Error(err)
			return
		}
		// Build a file from many small appends (partial-block writes).
		line := []byte("0123456789abcdef0123456789abcdef\n")
		off := int64(0)
		for i := 0; i < 100; i++ {
			if _, err := fs.WriteAt(p, ino, off, line, trace.OriginData); err != nil {
				t.Error(err)
				return
			}
			off += int64(len(line))
		}
		if err := fs.Sync(p); err != nil {
			t.Error(err)
			return
		}
		// The first data block must live inside the partition.
		sec, err := fs.BlockOfFile(p, ino, 0)
		if err != nil {
			t.Error(err)
			return
		}
		if sec < startBlock*2 {
			t.Errorf("data sector %d before partition start %d", sec, startBlock*2)
		}
		// Read back through a cold cache to prove the bytes landed where
		// the mapping says.
		buf := make([]byte, len(line))
		if !bc.Invalidate(startBlock + (sec/2 - startBlock)) {
			// The block may be dirty from other metadata; a plain
			// read-back via the fs is still a valid check.
			_ = sec
		}
		if _, err := fs.ReadAt(p, ino, 0, buf, trace.OriginData); err != nil {
			t.Error(err)
			return
		}
		if string(buf) != string(line) {
			t.Errorf("read back %q", buf)
		}
	})
	e.RunUntilIdle()
	if fs == nil {
		t.Fatal("fs not created")
	}
}

func TestCheckCleanFilesystem(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		rep, err := r.fs.Check(p)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Ok() {
			t.Fatalf("fresh fs inconsistent: %v", rep.Problems)
		}
		if rep.Dirs != 1 || rep.Files != 0 {
			t.Fatalf("report = %+v", rep)
		}
	})
}

func TestCheckAfterWorkload(t *testing.T) {
	r := newRig(t)
	rng := rand.New(rand.NewSource(21))
	r.run(t, func(p *sim.Proc) {
		// Random create/write/unlink/mkdir churn.
		var files []string
		for i := 0; i < 120; i++ {
			switch rng.Intn(4) {
			case 0, 1: // create + write
				name := fmt.Sprintf("/f%d", i)
				ino, err := r.fs.Create(p, name)
				if err != nil {
					t.Fatal(err)
				}
				size := rng.Intn(40 * 1024)
				if size > 0 {
					if _, err := r.fs.WriteAt(p, ino, 0, make([]byte, size), trace.OriginData); err != nil {
						t.Fatal(err)
					}
				}
				files = append(files, name)
			case 2: // unlink one
				if len(files) > 0 {
					k := rng.Intn(len(files))
					if err := r.fs.Unlink(p, files[k]); err != nil {
						t.Fatal(err)
					}
					files = append(files[:k], files[k+1:]...)
				}
			case 3: // mkdir
				if _, err := r.fs.Mkdir(p, fmt.Sprintf("/d%d", i)); err != nil {
					t.Fatal(err)
				}
			}
		}
		rep, err := r.fs.Check(p)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Ok() {
			t.Fatalf("fs inconsistent after churn: %v", rep.Problems)
		}
		if rep.Files != len(files) {
			t.Fatalf("fsck found %d files, want %d", rep.Files, len(files))
		}
	})
}

func TestCheckDetectsCorruption(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *sim.Proc) {
		ino, err := r.fs.Create(p, "/victim")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.fs.WriteAt(p, ino, 0, make([]byte, 4096), trace.OriginData); err != nil {
			t.Fatal(err)
		}
		// Corrupt: clear the file's first data block in the bitmap by
		// freeing it behind the filesystem's back.
		in, err := r.fs.readInode(p, ino)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.fs.freeBlock(p, in.Block[0]); err != nil {
			t.Fatal(err)
		}
		rep, err := r.fs.Check(p)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Ok() {
			t.Fatal("fsck missed a reachable-but-free block")
		}
	})
}
