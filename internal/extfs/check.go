package extfs

import (
	"fmt"

	"essio/internal/sim"
	"essio/internal/trace"
)

// CheckReport summarizes a filesystem consistency scan (fsck).
type CheckReport struct {
	Files      int
	Dirs       int
	UsedBlocks int // data + indirect blocks reachable from inodes
	MetaBlocks int // fixed metadata (superblock, bitmaps, inode tables)
	FreeBlocks int
	Problems   []string
}

// Ok reports whether the scan found no inconsistencies.
func (r *CheckReport) Ok() bool { return len(r.Problems) == 0 }

func (r *CheckReport) problemf(format string, args ...interface{}) {
	r.Problems = append(r.Problems, fmt.Sprintf(format, args...))
}

// Check walks the directory tree from the root and cross-checks it against
// the allocation bitmaps: every reachable block must be marked used, no
// block may be referenced twice, every allocated inode must be reachable,
// and the free counters must match the bitmaps. It is the moral equivalent
// of fsck -n (read-only).
func (f *FS) Check(p *sim.Proc) (*CheckReport, error) {
	rep := &CheckReport{}
	blockRefs := make(map[uint32]int)
	inodeSeen := make(map[uint32]bool)

	// Walk the tree.
	var walk func(ino uint32, path string) error
	walk = func(ino uint32, path string) error {
		if inodeSeen[ino] {
			rep.problemf("inode %d reachable twice (at %s)", ino, path)
			return nil
		}
		inodeSeen[ino] = true
		in, err := f.readInode(p, ino)
		if err != nil {
			return err
		}
		switch in.Mode {
		case ModeFile:
			rep.Files++
		case ModeDir:
			rep.Dirs++
		default:
			rep.problemf("inode %d (%s) has mode %d", ino, path, in.Mode)
			return nil
		}
		err = f.forEachBlock(p, in, func(blk uint32, meta bool) error {
			blockRefs[blk]++
			if blockRefs[blk] > 1 {
				rep.problemf("block %d multiply referenced (at %s)", blk, path)
			}
			if blk < 1 || blk >= f.sb.BlocksCount {
				rep.problemf("block %d out of range (at %s)", blk, path)
			}
			return nil
		})
		if err != nil {
			return err
		}
		if in.Mode == ModeDir {
			ents, err := f.Readdir(p, ino)
			if err != nil {
				return err
			}
			for _, e := range ents {
				if err := walk(e.Ino, path+"/"+e.Name); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := walk(RootIno, ""); err != nil {
		return rep, err
	}
	rep.UsedBlocks = len(blockRefs)

	// Cross-check the bitmaps.
	freeBlocks, freeInodes := 0, 0
	for g := range f.groups {
		gd := &f.groups[g]
		gstart := uint32(1) + uint32(g)*BlocksPerGroup
		gend := gstart + BlocksPerGroup
		if gend > f.sb.BlocksCount {
			gend = f.sb.BlocksCount
		}
		metaEnd := gd.InodeTable + inodeTableBlocks
		bm, err := f.readBlock(p, gd.BlockBitmap, trace.OriginMeta)
		if err != nil {
			return rep, err
		}
		bitmap := append([]byte(nil), bm...)
		for blk := gstart; blk < gend; blk++ {
			idx := blk - gstart
			used := bitmap[idx/8]&(1<<(idx%8)) != 0
			isMeta := blk < metaEnd || (g == 0 && blk < 3)
			_, reachable := blockRefs[blk]
			switch {
			case isMeta:
				rep.MetaBlocks++
				if !used {
					rep.problemf("metadata block %d marked free", blk)
				}
			case reachable && !used:
				rep.problemf("reachable block %d marked free", blk)
			case !reachable && used:
				rep.problemf("block %d marked used but unreachable", blk)
			case !used:
				freeBlocks++
			}
		}
		ibm, err := f.readBlock(p, gd.InodeBitmap, trace.OriginMeta)
		if err != nil {
			return rep, err
		}
		ibitmap := append([]byte(nil), ibm...)
		for idx := uint32(0); idx < InodesPerGroup; idx++ {
			ino := uint32(g)*InodesPerGroup + idx + 1
			used := ibitmap[idx/8]&(1<<(idx%8)) != 0
			if !used {
				freeInodes++
				if inodeSeen[ino] {
					rep.problemf("reachable inode %d marked free", ino)
				}
				continue
			}
			if ino == 1 { // reserved
				continue
			}
			if !inodeSeen[ino] {
				rep.problemf("inode %d allocated but unreachable", ino)
			}
		}
	}
	rep.FreeBlocks = freeBlocks
	if uint32(freeBlocks) != f.sb.FreeBlocks {
		rep.problemf("superblock free blocks %d, bitmap says %d", f.sb.FreeBlocks, freeBlocks)
	}
	if uint32(freeInodes) != f.sb.FreeInodes {
		rep.problemf("superblock free inodes %d, bitmap says %d", f.sb.FreeInodes, freeInodes)
	}
	return rep, nil
}
