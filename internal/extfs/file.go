package extfs

import (
	"fmt"

	"essio/internal/sim"
	"essio/internal/trace"
)

// ReadAt reads up to len(buf) bytes from the file at byte offset off,
// returning the number of bytes read. Reads past end-of-file return 0.
// Holes read as zeros. origin tags the physical I/O this read induces.
func (f *FS) ReadAt(p *sim.Proc, ino uint32, off int64, buf []byte, origin trace.Origin) (int, error) {
	in, err := f.readInode(p, ino)
	if err != nil {
		return 0, err
	}
	if in.Mode != ModeFile && in.Mode != ModeDir {
		return 0, fmt.Errorf("extfs: read of free inode %d", ino)
	}
	size := int64(in.Size)
	if off >= size {
		return 0, nil
	}
	if max := size - off; int64(len(buf)) > max {
		buf = buf[:max]
	}
	read := 0
	for read < len(buf) {
		fb := uint32((off + int64(read)) / BlockSize)
		bo := int((off + int64(read)) % BlockSize)
		n := BlockSize - bo
		if n > len(buf)-read {
			n = len(buf) - read
		}
		blk, _, err := f.mapBlock(p, in, fb, false)
		if err != nil {
			return read, err
		}
		if blk == 0 { // hole
			for i := 0; i < n; i++ {
				buf[read+i] = 0
			}
		} else {
			data, err := f.readBlock(p, blk, origin)
			if err != nil {
				return read, err
			}
			copy(buf[read:read+n], data[bo:bo+n])
		}
		read += n
	}
	return read, nil
}

// WriteAt writes data at byte offset off, extending the file as needed, and
// returns the number of bytes written.
func (f *FS) WriteAt(p *sim.Proc, ino uint32, off int64, data []byte, origin trace.Origin) (int, error) {
	in, err := f.readInode(p, ino)
	if err != nil {
		return 0, err
	}
	if in.Mode != ModeFile {
		return 0, fmt.Errorf("extfs: write to non-file inode %d", ino)
	}
	written := 0
	for written < len(data) {
		pos := off + int64(written)
		fb := uint32(pos / BlockSize)
		bo := int(pos % BlockSize)
		n := BlockSize - bo
		if n > len(data)-written {
			n = len(data) - written
		}
		blk, fresh, err := f.mapBlock(p, in, fb, true)
		if err != nil {
			return written, err
		}
		switch {
		case bo == 0 && n == BlockSize:
			// Full-block overwrite: no read-modify-write needed.
			if err := f.bc.WriteBlock(p, f.diskBlock(blk), data[written:written+BlockSize], origin); err != nil {
				return written, err
			}
		case fresh:
			// Newly allocated block: its disk contents are garbage, so
			// initialize it in the cache instead of reading it.
			full := make([]byte, BlockSize)
			copy(full[bo:bo+n], data[written:written+n])
			if err := f.bc.WriteBlock(p, f.diskBlock(blk), full, origin); err != nil {
				return written, err
			}
		default:
			w := data[written : written+n]
			if err := f.updateBlock(p, blk, origin, func(d []byte) {
				copy(d[bo:bo+n], w)
			}); err != nil {
				return written, err
			}
		}
		written += n
	}
	end := off + int64(written)
	if end > int64(in.Size) {
		in.Size = uint32(end)
	}
	in.Mtime = uint32(p.Now().Seconds())
	if err := f.writeInode(p, ino, in); err != nil {
		return written, err
	}
	return written, nil
}

// Truncate discards all data of a regular file, freeing its blocks.
func (f *FS) Truncate(p *sim.Proc, ino uint32) error {
	in, err := f.readInode(p, ino)
	if err != nil {
		return err
	}
	if in.Mode != ModeFile {
		return fmt.Errorf("extfs: truncate of non-file inode %d", ino)
	}
	if err := f.truncateInode(p, in); err != nil {
		return err
	}
	in.Size = 0
	in.Mtime = uint32(p.Now().Seconds())
	return f.writeInode(p, ino, in)
}

// truncateInode frees every data and indirect block of an inode.
func (f *FS) truncateInode(p *sim.Proc, in *inode) error {
	err := f.forEachBlock(p, in, func(blk uint32, meta bool) error {
		return f.freeBlock(p, blk)
	})
	if err != nil {
		return err
	}
	for i := range in.Block {
		in.Block[i] = 0
	}
	return nil
}

// FileSectors returns the absolute disk sectors backing file blocks
// [fromBlock, fromBlock+count), skipping holes. The VFS read-ahead path uses
// it to prefetch upcoming file blocks.
func (f *FS) FileSectors(p *sim.Proc, ino uint32, fromBlock, count uint32) ([]uint32, error) {
	in, err := f.readInode(p, ino)
	if err != nil {
		return nil, err
	}
	fileBlocks := (in.Size + BlockSize - 1) / BlockSize
	var out []uint32
	for fb := fromBlock; fb < fromBlock+count && fb < fileBlocks; fb++ {
		blk, _, err := f.mapBlock(p, in, fb, false)
		if err != nil {
			return out, err
		}
		if blk != 0 {
			out = append(out, f.BlockToSector(blk))
		}
	}
	return out, nil
}

// PrefetchFile starts asynchronous reads of file blocks [fromBlock,
// fromBlock+count) through the buffer cache.
func (f *FS) PrefetchFile(p *sim.Proc, ino uint32, fromBlock, count uint32, origin trace.Origin) error {
	in, err := f.readInode(p, ino)
	if err != nil {
		return err
	}
	fileBlocks := (in.Size + BlockSize - 1) / BlockSize
	var blocks []uint32
	for fb := fromBlock; fb < fromBlock+count && fb < fileBlocks; fb++ {
		blk, _, err := f.mapBlock(p, in, fb, false)
		if err != nil {
			return err
		}
		if blk != 0 {
			blocks = append(blocks, f.diskBlock(blk))
		}
	}
	return f.bc.Prefetch(p, blocks, origin)
}
