// Package iotrace is the reproduction's per-request causal I/O tracing
// layer: a deterministic event journal that follows every I/O request
// end to end — app op → vfs → buffer cache (hit/miss/writeback) →
// driver queue → disk positioning/transfer, and across nodes through
// pvm/ethernet for collective phases. Where internal/obs aggregates
// spans into counters and histograms, iotrace keeps the individual
// journeys, which is what per-request latency breakdowns, critical-path
// extraction, and Perfetto timelines need.
//
// Determinism follows the obs playbook exactly:
//
//   - No wall clocks. Every event carries the simulation clock
//     (sim.Time, microseconds), so two same-seed runs journal identical
//     events and the essvet determinism analyzer stays clean.
//   - Per-node journals, engine-serialized. A node's journal is only
//     appended to from that node's engine, so append order is the
//     node's deterministic event order regardless of shard layout.
//   - Total order on merge. Merge sorts by (Time, Node, Seq): Time
//     orders across nodes, Node breaks simultaneous cross-node ties,
//     and Seq (the per-node append counter) orders same-node
//     same-time events by their deterministic execution order. The
//     merged journal — and hence the exported Chrome JSON — is
//     byte-identical at any shard or worker count.
//
// Collection is gated on the owning obs.Registry being at obs.Trace,
// the level above Full added for this journal: when the registry sits
// below Trace every Add reduces to one nil/level comparison, so the
// instrumented hot paths cost nothing measurable with tracing off.
package iotrace

import (
	"sort"

	"essio/internal/obs"
	"essio/internal/sim"
)

// Stage identifies which layer of the I/O stack an event came from.
type Stage uint8

const (
	// StageAppRead / StageAppWrite bracket one application file op
	// (vfs read, write, or append); Arg is the byte count moved. This
	// is the root span of a request journey: its Req identifies the
	// journey, and every deeper event the op causes carries the same
	// Req.
	StageAppRead Stage = iota + 1
	StageAppWrite
	// StageCacheHit is an instant event (Dur 0): the buffer cache
	// satisfied a block read without disk I/O. Arg is the block number.
	StageCacheHit
	// StageCacheMiss spans a block read's cache fill: from the miss to
	// the disk read completing. Arg is the block number.
	StageCacheMiss
	// StageWriteback spans one dirty block's trip to disk — sync flush,
	// write-through, or update-daemon writeback. Req is the journey
	// that dirtied the block (0 once attribution is lost), so delayed
	// writes remain causally attributed. Arg is the block number.
	StageWriteback
	// StageQueueWait spans one request's time in the elevator queue,
	// from submit to driver dispatch. Arg is the starting sector.
	StageQueueWait
	// StageDiskPos spans the mechanical positioning of one physical
	// request: controller overhead + seek + rotational delay. Arg is
	// the starting sector.
	StageDiskPos
	// StageDiskTransfer spans the media transfer that follows
	// positioning. Arg is the byte count moved.
	StageDiskTransfer
	// StageNetSend is an instant event: a pvm message left the sender.
	// Req is the message's own journey ID; Arg is the payload bytes.
	StageNetSend
	// StageNetRecv spans the wire: Dur is delivery time minus send
	// time, so the matching StageNetSend sits exactly at its start.
	StageNetRecv
)

// String names the stage as it appears in exports and tables.
func (s Stage) String() string {
	switch s {
	case StageAppRead:
		return "app.read"
	case StageAppWrite:
		return "app.write"
	case StageCacheHit:
		return "cache.hit"
	case StageCacheMiss:
		return "cache.miss"
	case StageWriteback:
		return "cache.writeback"
	case StageQueueWait:
		return "queue.wait"
	case StageDiskPos:
		return "disk.pos"
	case StageDiskTransfer:
		return "disk.transfer"
	case StageNetSend:
		return "net.send"
	case StageNetRecv:
		return "net.recv"
	default:
		return "unknown"
	}
}

// numStages sizes per-stage accumulator arrays (stage values are 1-based).
const numStages = int(StageNetRecv) + 1

// Event is one journaled span or instant. Time is the event's *end* (the
// moment it was journaled); a span's start is Time−Dur. Req ties events
// of one request journey together; Req 0 marks system I/O with no
// originating app op (paging, untagged daemons).
type Event struct {
	Time  sim.Time     // span end, virtual microseconds
	Dur   sim.Duration // span length; 0 for instant events
	Req   uint64       // journey ID; 0 = untagged system I/O
	Arg   int64        // stage-specific: bytes, block, or sector
	Node  uint8        // originating node
	Stage Stage
	Seq   uint32 // per-node append sequence; breaks same-time ties
}

// Start reports the span's start time (equal to Time for instants).
func (ev Event) Start() sim.Time { return ev.Time.Add(-ev.Dur) }

// Journey-ID namespaces. File-op IDs and message IDs are minted by
// different counters on different nodes; the high bit keeps the two
// spaces disjoint so a critical path can't confuse them.
const (
	// MsgIDBit marks pvm message journey IDs.
	MsgIDBit = uint64(1) << 63
)

// DefaultCapacity is the per-node ring capacity when the kernel config
// leaves it unset: 64Ki events (~2 MiB) per node.
const DefaultCapacity = 64 * 1024

// Journal is one node's event ring. It is deliberately not safe for
// concurrent use: all appends happen on the owning node's engine, which
// serializes them deterministically (the same contract obs.Registry
// has). A nil *Journal is a valid "untraced" journal: every method is a
// no-op and Enabled reports false.
type Journal struct {
	reg     *obs.Registry // collection gate, the node's obs registry
	node    uint8
	cap     int
	buf     []Event // ring storage, allocated on first Add
	head    int     // index of the oldest resident event
	n       int     // resident events
	seq     uint32  // next append sequence number
	dropped uint64  // evicted-by-capacity count
	nextReq uint64  // per-node journey-ID counter
}

// New returns a journal for the given node gated on reg's collection
// level, with the given ring capacity (≤0 selects DefaultCapacity).
func New(node uint8, reg *obs.Registry, capacity int) *Journal {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Journal{reg: reg, node: node, cap: capacity}
}

// Enabled reports whether events would currently be journaled — the
// registry is at obs.Trace. Callers on hot paths check this once before
// computing event arguments; with tracing off it is one comparison.
func (j *Journal) Enabled() bool {
	return j != nil && j.reg.Level() >= obs.Trace
}

// NewRequestID mints the next journey ID for this node. IDs are unique
// across nodes (the node number is in the high bits) and never 0.
func (j *Journal) NewRequestID() uint64 {
	if j == nil {
		return 0
	}
	j.nextReq++
	return uint64(j.node)<<40 | j.nextReq
}

// Add journals one event ending now. When the ring is full the oldest
// event is evicted (long runs stay bounded; Dropped counts evictions).
// A disabled or nil journal ignores the call.
func (j *Journal) Add(now sim.Time, dur sim.Duration, stage Stage, req uint64, arg int64) {
	if !j.Enabled() {
		return
	}
	if j.buf == nil {
		j.buf = make([]Event, j.cap)
	}
	ev := Event{Time: now, Dur: dur, Req: req, Arg: arg, Node: j.node, Stage: stage, Seq: j.seq}
	j.seq++
	if j.n == j.cap {
		j.buf[j.head] = ev
		j.head = (j.head + 1) % j.cap
		j.dropped++
		return
	}
	j.buf[(j.head+j.n)%j.cap] = ev
	j.n++
}

// Events returns the resident events oldest-first, as an independent
// copy.
func (j *Journal) Events() []Event {
	if j == nil || j.n == 0 {
		return nil
	}
	out := make([]Event, j.n)
	for i := 0; i < j.n; i++ {
		out[i] = j.buf[(j.head+i)%j.cap]
	}
	return out
}

// Len reports the number of resident events.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	return j.n
}

// Dropped reports how many events capacity eviction discarded.
func (j *Journal) Dropped() uint64 {
	if j == nil {
		return 0
	}
	return j.dropped
}

// Reset discards all resident events and the drop count but keeps the
// sequence and journey-ID counters monotonic, so IDs never repeat
// within a run even across warmup resets.
func (j *Journal) Reset() {
	if j == nil {
		return
	}
	j.head, j.n, j.dropped = 0, 0, 0
}

// Merge folds per-node event slices into one journal ordered by
// (Time, Node, Seq). That key is a total order — Seq is unique per
// node — so the sorted result is independent of input slice order and
// of shard or worker layout, the same contract as obs.Snapshot.Merge.
// (A full sort rather than a k-way merge of runs: a node's journal is
// append-ordered, not time-ordered, because the driver journals disk
// spans whose end lies in the future at dispatch.)
func Merge(perNode ...[]Event) []Event {
	total := 0
	for _, evs := range perNode {
		total += len(evs)
	}
	if total == 0 {
		return nil
	}
	out := make([]Event, 0, total)
	for _, evs := range perNode {
		out = append(out, evs...)
	}
	sort.Slice(out, func(i, k int) bool { return less(out[i], out[k]) })
	return out
}

// less is the journal's total order: (Time, Node, Seq).
func less(a, b Event) bool {
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	if a.Node != b.Node {
		return a.Node < b.Node
	}
	return a.Seq < b.Seq
}
