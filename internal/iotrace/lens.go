// Analysis lenses over the merged journal: the per-request latency
// breakdown (where do requests of each size class spend their time?)
// and the critical-path extractor for multi-node phases (which chain of
// spans bounds the phase's elapsed time?). Both are pure functions of
// the merged event slice, so they inherit its determinism.
package iotrace

import (
	"fmt"
	"strings"

	"essio/internal/sim"
)

// Size-class thresholds, matching the paper's request-size categories
// (1 KB block I/O, 4 KB paging, 16 KB cache-scale, and larger).
var classBounds = [...]int64{1024, 4096, 16384}

var classNames = [...]string{"<=1KB", "<=4KB", "<=16KB", ">16KB"}

const numClasses = len(classNames)

// BreakdownRow aggregates the journeys of one size class: how many
// requests, how many bytes they moved, and the total virtual time their
// events spent in each stage. Durations are microsecond sums across the
// class's journeys; stage work that proceeds in parallel with the app
// op (overlapped writebacks, merged queue waits) counts in full, so the
// stage columns can exceed AppUS.
type BreakdownRow struct {
	Class    string
	Requests int
	Bytes    int64
	// Per-stage totals, virtual microseconds.
	AppUS, HitCount, MissUS, WritebackUS, QueueUS, PosUS, TransferUS int64
}

// Breakdown is the per-request latency breakdown lens: journeys grouped
// into the paper's size classes, plus a System row for untagged I/O
// (paging, daemon flushes that lost attribution) and the network totals
// for collective phases.
type Breakdown struct {
	Rows [numClasses]BreakdownRow
	// System aggregates events with no originating app op (Req 0 or a
	// journey that recorded no app span).
	System BreakdownRow
	// NetMsgs / NetBytes / NetUS total the pvm message journeys.
	NetMsgs  int
	NetBytes int64
	NetUS    int64
}

// journey accumulates one request's events before classification.
type journey struct {
	bytes  int64
	app    bool
	stages [numStages]int64
	hits   int64
}

// ComputeBreakdown groups events by request journey and aggregates each
// size class's stage times. The result is independent of event order.
func ComputeBreakdown(events []Event) *Breakdown {
	b := &Breakdown{}
	for i := range b.Rows {
		b.Rows[i].Class = classNames[i]
	}
	b.System.Class = "system"
	byReq := make(map[uint64]*journey)
	for _, ev := range events {
		switch ev.Stage {
		case StageNetSend:
			b.NetMsgs++
			b.NetBytes += ev.Arg
			continue
		case StageNetRecv:
			b.NetUS += int64(ev.Dur)
			continue
		}
		j := byReq[ev.Req]
		if j == nil {
			j = &journey{}
			byReq[ev.Req] = j
		}
		switch ev.Stage {
		case StageAppRead, StageAppWrite:
			j.app = true
			j.bytes += ev.Arg
			j.stages[ev.Stage] += int64(ev.Dur)
		case StageCacheHit:
			j.hits++
		default:
			j.stages[ev.Stage] += int64(ev.Dur)
		}
	}
	// Fold journeys into class rows. Map iteration order varies, but
	// every fold is a commutative sum, so the result does not.
	for req, j := range byReq {
		row := &b.System
		if req != 0 && j.app {
			row = &b.Rows[classOf(j.bytes)]
		}
		row.Requests++
		row.Bytes += j.bytes
		row.AppUS += j.stages[StageAppRead] + j.stages[StageAppWrite]
		row.HitCount += j.hits
		row.MissUS += j.stages[StageCacheMiss]
		row.WritebackUS += j.stages[StageWriteback]
		row.QueueUS += j.stages[StageQueueWait]
		row.PosUS += j.stages[StageDiskPos]
		row.TransferUS += j.stages[StageDiskTransfer]
	}
	return b
}

// classOf buckets a journey's app bytes into a size class.
func classOf(bytes int64) int {
	for i, b := range classBounds {
		if bytes <= b {
			return i
		}
	}
	return numClasses - 1
}

// Table renders the breakdown as a fixed-width text table, one row per
// size class plus the system row.
func (b *Breakdown) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s %9s %12s %10s %6s %10s %10s %10s %10s %10s\n",
		"class", "requests", "bytes", "app_us", "hits", "miss_us", "wb_us", "queue_us", "pos_us", "xfer_us")
	rows := append(b.Rows[:len(b.Rows):len(b.Rows)], b.System)
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8s %9d %12d %10d %6d %10d %10d %10d %10d %10d\n",
			r.Class, r.Requests, r.Bytes, r.AppUS, r.HitCount, r.MissUS,
			r.WritebackUS, r.QueueUS, r.PosUS, r.TransferUS)
	}
	if b.NetMsgs > 0 {
		fmt.Fprintf(&sb, "net: %d msgs, %d bytes, %d us on the wire\n",
			b.NetMsgs, b.NetBytes, b.NetUS)
	}
	return sb.String()
}

// CriticalPath is the chain of spans that bounds a phase's elapsed
// time, walked backward from the last journaled event: within a node
// the predecessor is the previous event on that node; a net.recv jumps
// to its matching net.send on the sending node, which is how the path
// crosses nodes during collective phases.
type CriticalPath struct {
	// Steps lists the chain earliest-first.
	Steps []Event
	// StageUS totals the chain's span time per stage (indexed by Stage).
	StageUS [numStages]int64
	// Elapsed is the virtual time from the first step's start to the
	// last step's end.
	Elapsed sim.Duration
}

// ComputeCriticalPath extracts the critical path from a merged,
// (Time, Node, Seq)-ordered journal. Returns nil for an empty journal.
func ComputeCriticalPath(events []Event) *CriticalPath {
	if len(events) == 0 {
		return nil
	}
	// Index the last event per node and each net.send by message ID as
	// we walk backward.
	cp := &CriticalPath{}
	cur := len(events) - 1
	for cur >= 0 {
		ev := events[cur]
		cp.Steps = append(cp.Steps, ev)
		cp.StageUS[ev.Stage] += int64(ev.Dur)
		next := -1
		if ev.Stage == StageNetRecv {
			// Cross to the sender: the matching net.send shares Req.
			for i := cur - 1; i >= 0; i-- {
				if events[i].Stage == StageNetSend && events[i].Req == ev.Req {
					next = i
					break
				}
			}
		}
		if next < 0 {
			// Previous event on the same node whose span had ended by
			// the time this one started.
			start := ev.Start()
			for i := cur - 1; i >= 0; i-- {
				if events[i].Node == ev.Node && events[i].Time <= start {
					next = i
					break
				}
			}
		}
		cur = next
	}
	// Reverse to earliest-first.
	for i, k := 0, len(cp.Steps)-1; i < k; i, k = i+1, k-1 {
		cp.Steps[i], cp.Steps[k] = cp.Steps[k], cp.Steps[i]
	}
	first, last := cp.Steps[0], cp.Steps[len(cp.Steps)-1]
	cp.Elapsed = last.Time.Sub(first.Start())
	return cp
}

// Table renders the critical path: the per-stage time the chain spends,
// then the chain's span count and elapsed time.
func (cp *CriticalPath) Table() string {
	if cp == nil {
		return "critical path: empty journal\n"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "critical path: %d steps, %s elapsed\n", len(cp.Steps), cp.Elapsed)
	for s := Stage(1); int(s) < numStages; s++ {
		if cp.StageUS[s] == 0 {
			continue
		}
		pct := 0.0
		if cp.Elapsed > 0 {
			pct = 100 * float64(cp.StageUS[s]) / float64(cp.Elapsed)
		}
		fmt.Fprintf(&sb, "  %-15s %10d us (%.1f%%)\n", s.String(), cp.StageUS[s], pct)
	}
	return sb.String()
}
