package iotrace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"essio/internal/obs"
	"essio/internal/sim"
)

func TestJournalGatesOnTraceLevel(t *testing.T) {
	reg := obs.New(obs.Full)
	j := New(3, reg, 8)
	if j.Enabled() {
		t.Fatalf("journal enabled at Full; Trace is the journal tier")
	}
	j.Add(10, 0, StageCacheHit, 1, 42)
	if j.Len() != 0 {
		t.Fatalf("Add below Trace journaled an event")
	}
	reg.SetLevel(obs.Trace)
	if !j.Enabled() {
		t.Fatalf("journal disabled at Trace")
	}
	j.Add(10, 0, StageCacheHit, 1, 42)
	if j.Len() != 1 {
		t.Fatalf("Add at Trace journaled %d events, want 1", j.Len())
	}
	ev := j.Events()[0]
	if ev.Node != 3 || ev.Stage != StageCacheHit || ev.Arg != 42 {
		t.Fatalf("journaled event %+v lost its fields", ev)
	}
	reg.SetLevel(obs.Off)
	j.Add(11, 0, StageCacheHit, 1, 43)
	if j.Len() != 1 {
		t.Fatalf("Add after switching off journaled an event")
	}
	var nilJ *Journal
	if nilJ.Enabled() || nilJ.Len() != 0 || nilJ.Dropped() != 0 || nilJ.NewRequestID() != 0 {
		t.Fatalf("nil journal is not a no-op")
	}
	nilJ.Add(1, 0, StageCacheHit, 0, 0)
	nilJ.Reset()
}

func TestJournalRingEviction(t *testing.T) {
	reg := obs.New(obs.Trace)
	j := New(0, reg, 4)
	for i := 0; i < 6; i++ {
		j.Add(sim.Time(i), 0, StageCacheHit, 0, int64(i))
	}
	if j.Len() != 4 {
		t.Fatalf("Len = %d after overflow, want 4", j.Len())
	}
	if j.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", j.Dropped())
	}
	evs := j.Events()
	for i, ev := range evs {
		if want := int64(i + 2); ev.Arg != want {
			t.Fatalf("event %d has Arg %d, want %d (oldest evicted first)", i, ev.Arg, want)
		}
	}
	// Seq stays monotonic across eviction and Reset.
	if evs[0].Seq != 2 || evs[3].Seq != 5 {
		t.Fatalf("Seq not monotonic across eviction: %d..%d", evs[0].Seq, evs[3].Seq)
	}
	j.Reset()
	if j.Len() != 0 || j.Dropped() != 0 {
		t.Fatalf("Reset left %d events, %d dropped", j.Len(), j.Dropped())
	}
	j.Add(100, 0, StageCacheHit, 0, 0)
	if got := j.Events()[0].Seq; got != 6 {
		t.Fatalf("Seq restarted after Reset: got %d, want 6", got)
	}
}

func TestNewRequestIDNamespaces(t *testing.T) {
	reg := obs.New(obs.Trace)
	a, b := New(0, reg, 4), New(7, reg, 4)
	ids := map[uint64]bool{}
	for i := 0; i < 3; i++ {
		for _, j := range []*Journal{a, b} {
			id := j.NewRequestID()
			if id == 0 {
				t.Fatalf("minted the reserved journey ID 0")
			}
			if ids[id] {
				t.Fatalf("journey ID %d minted twice", id)
			}
			if id&MsgIDBit != 0 {
				t.Fatalf("file journey ID %d collides with the message namespace", id)
			}
			ids[id] = true
		}
	}
}

func TestMergeTotalOrder(t *testing.T) {
	n0 := []Event{
		{Time: 5, Node: 0, Seq: 0},
		{Time: 10, Node: 0, Seq: 1},
		{Time: 10, Node: 0, Seq: 2},
	}
	n1 := []Event{
		{Time: 5, Node: 1, Seq: 0},
		{Time: 7, Node: 1, Seq: 1},
		{Time: 10, Node: 1, Seq: 2},
	}
	got := Merge(n0, n1)
	want := []Event{n0[0], n1[0], n1[1], n0[1], n0[2], n1[2]}
	if len(got) != len(want) {
		t.Fatalf("merged %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merge[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	// Order of the input slices must not matter beyond the key.
	swapped := Merge(n1, n0)
	for i := range want {
		if swapped[i] != want[i] {
			t.Fatalf("merge is sensitive to input slice order at %d", i)
		}
	}
	if Merge() != nil || Merge(nil, nil) != nil {
		t.Fatalf("empty merge should be nil")
	}
}

// chromeDoc mirrors just enough of the trace-event schema to validate
// the export.
type chromeDoc struct {
	TraceEvents []struct {
		Name string `json:"name"`
		Ph   string `json:"ph"`
		TS   int64  `json:"ts"`
		Dur  int64  `json:"dur"`
		PID  int    `json:"pid"`
		TID  uint64 `json:"tid"`
	} `json:"traceEvents"`
}

func TestWriteChrome(t *testing.T) {
	events := []Event{
		{Time: 100, Dur: 40, Req: 9, Arg: 1024, Node: 0, Stage: StageAppRead, Seq: 0},
		{Time: 90, Dur: 30, Req: 9, Arg: 7, Node: 0, Stage: StageCacheMiss, Seq: 1},
		{Time: 95, Dur: 5, Req: MsgIDBit | 1, Arg: 64, Node: 1, Stage: StageNetRecv, Seq: 0},
	}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, events); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	var spans, metas int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			metas++
		case "X":
			spans++
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if spans != len(events) {
		t.Fatalf("exported %d spans, want %d", spans, len(events))
	}
	if metas != 2 {
		t.Fatalf("exported %d process metadata records, want 2 (one per node)", metas)
	}
	// ts is the span start (Time − Dur), in microseconds.
	for _, ev := range doc.TraceEvents {
		if ev.Name == "app.read" && (ev.TS != 60 || ev.Dur != 40 || ev.TID != 9) {
			t.Fatalf("app.read exported as ts=%d dur=%d tid=%d, want ts=60 dur=40 tid=9",
				ev.TS, ev.Dur, ev.TID)
		}
	}
	// The writer must be deterministic byte for byte.
	var again bytes.Buffer
	if err := WriteChrome(&again, events); err != nil {
		t.Fatalf("WriteChrome (second): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatalf("two exports of the same journal differ")
	}
}

func TestComputeBreakdown(t *testing.T) {
	rd, wr := uint64(1), uint64(2)
	events := []Event{
		// Journey 1: a 1 KB read that hit the cache.
		{Time: 10, Dur: 2, Req: rd, Arg: 1024, Stage: StageAppRead},
		{Time: 9, Dur: 0, Req: rd, Arg: 3, Stage: StageCacheHit},
		// Journey 2: an 8 KB write whose blocks missed, queued, and hit disk.
		{Time: 50, Dur: 10, Req: wr, Arg: 8192, Stage: StageAppWrite},
		{Time: 45, Dur: 5, Req: wr, Arg: 4, Stage: StageCacheMiss},
		{Time: 70, Dur: 6, Req: wr, Arg: 4, Stage: StageWriteback},
		{Time: 60, Dur: 3, Req: wr, Arg: 900, Stage: StageQueueWait},
		{Time: 65, Dur: 4, Req: wr, Arg: 900, Stage: StageDiskPos},
		{Time: 68, Dur: 2, Req: wr, Arg: 8192, Stage: StageDiskTransfer},
		// System I/O: an untagged paging request.
		{Time: 80, Dur: 7, Req: 0, Arg: 901, Stage: StageQueueWait},
		// A pvm message.
		{Time: 90, Dur: 0, Req: MsgIDBit | 5, Arg: 256, Stage: StageNetSend},
		{Time: 94, Dur: 4, Req: MsgIDBit | 5, Arg: 256, Stage: StageNetRecv},
	}
	b := ComputeBreakdown(events)
	r0 := b.Rows[0] // <=1KB
	if r0.Requests != 1 || r0.Bytes != 1024 || r0.AppUS != 2 || r0.HitCount != 1 {
		t.Fatalf("<=1KB row wrong: %+v", r0)
	}
	r2 := b.Rows[2] // <=16KB
	if r2.Requests != 1 || r2.Bytes != 8192 || r2.AppUS != 10 ||
		r2.MissUS != 5 || r2.WritebackUS != 6 || r2.QueueUS != 3 ||
		r2.PosUS != 4 || r2.TransferUS != 2 {
		t.Fatalf("<=16KB row wrong: %+v", r2)
	}
	if b.Rows[1].Requests != 0 || b.Rows[3].Requests != 0 {
		t.Fatalf("empty classes gained requests: %+v", b.Rows)
	}
	if b.System.Requests != 1 || b.System.QueueUS != 7 {
		t.Fatalf("system row wrong: %+v", b.System)
	}
	if b.NetMsgs != 1 || b.NetBytes != 256 || b.NetUS != 4 {
		t.Fatalf("net totals wrong: msgs=%d bytes=%d us=%d", b.NetMsgs, b.NetBytes, b.NetUS)
	}
	tbl := b.Table()
	for _, want := range []string{"<=1KB", ">16KB", "system", "net: 1 msgs"} {
		if !strings.Contains(tbl, want) {
			t.Fatalf("breakdown table missing %q:\n%s", want, tbl)
		}
	}
}

func TestComputeCriticalPath(t *testing.T) {
	msg := MsgIDBit | 3
	events := []Event{
		// Node 0 does a read, sends a message at t=20; node 1 receives
		// at t=30 and then does its own disk work until t=50.
		{Time: 15, Dur: 10, Req: 1, Arg: 4096, Node: 0, Stage: StageAppRead, Seq: 0},
		{Time: 20, Dur: 0, Req: msg, Arg: 128, Node: 0, Stage: StageNetSend, Seq: 1},
		{Time: 30, Dur: 10, Req: msg, Arg: 128, Node: 1, Stage: StageNetRecv, Seq: 0},
		{Time: 50, Dur: 18, Req: 2, Arg: 4096, Node: 1, Stage: StageAppWrite, Seq: 1},
	}
	cp := ComputeCriticalPath(events)
	if cp == nil {
		t.Fatalf("nil critical path for a non-empty journal")
	}
	// The chain must cross from node 1 back through the recv to the
	// send on node 0 and then to node 0's read.
	wantStages := []Stage{StageAppRead, StageNetSend, StageNetRecv, StageAppWrite}
	if len(cp.Steps) != len(wantStages) {
		t.Fatalf("critical path has %d steps, want %d: %+v", len(cp.Steps), len(wantStages), cp.Steps)
	}
	for i, st := range wantStages {
		if cp.Steps[i].Stage != st {
			t.Fatalf("step %d is %s, want %s", i, cp.Steps[i].Stage, st)
		}
	}
	if cp.Elapsed != 45 { // from t=5 (read start) to t=50
		t.Fatalf("Elapsed = %d, want 45", cp.Elapsed)
	}
	if cp.StageUS[StageNetRecv] != 10 || cp.StageUS[StageAppWrite] != 18 {
		t.Fatalf("per-stage totals wrong: %+v", cp.StageUS)
	}
	if !strings.Contains(cp.Table(), "critical path: 4 steps") {
		t.Fatalf("critical path table wrong:\n%s", cp.Table())
	}
	if ComputeCriticalPath(nil) != nil {
		t.Fatalf("empty journal should produce a nil path")
	}
}
